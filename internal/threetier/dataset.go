package threetier

import (
	"fmt"

	"nnwc/internal/rng"
	"nnwc/internal/workload"
)

// SweepSpec describes a sample-collection campaign: the set of
// configurations to run, mirroring the paper's §3.1 "one set of samples
// should be prepared for each application to characterize".
type SweepSpec struct {
	InjectionRates []float64
	MfgThreads     []int
	WebThreads     []int
	DefaultThreads []int
	// Replicates runs each configuration this many times with distinct
	// seeds and averages the indicators, like the paper's averaging of
	// collected counter values "to reduce the effect of sampling error".
	Replicates int
}

// DefaultSweep is the campaign used to build the experiment dataset: a
// coarse grid around the paper's operating point (injection rate 560,
// mfg queue 16).
func DefaultSweep() SweepSpec {
	return SweepSpec{
		InjectionRates: []float64{480, 560, 640},
		MfgThreads:     []int{8, 16, 24},
		WebThreads:     []int{8, 12, 14, 16, 18, 20, 24, 28, 32},
		DefaultThreads: []int{2, 4, 6, 8, 12, 16, 20, 24},
		Replicates:     1,
	}
}

// Size returns the number of distinct configurations in the sweep.
func (s SweepSpec) Size() int {
	return len(s.InjectionRates) * len(s.MfgThreads) * len(s.WebThreads) * len(s.DefaultThreads)
}

// Configs enumerates the sweep's configurations in deterministic order.
func (s SweepSpec) Configs() []Config {
	out := make([]Config, 0, s.Size())
	for _, rate := range s.InjectionRates {
		for _, d := range s.DefaultThreads {
			for _, m := range s.MfgThreads {
				for _, w := range s.WebThreads {
					out = append(out, Config{
						InjectionRate:  rate,
						MfgThreads:     m,
						WebThreads:     w,
						DefaultThreads: d,
					})
				}
			}
		}
	}
	return out
}

// Collect runs the sweep and returns the samples as a workload.Dataset with
// the paper's feature and indicator schema. The seed determines every
// replicate's random stream; the same (spec, sys, seed) triple always
// yields the identical dataset.
func Collect(spec SweepSpec, sys SystemParams, seed uint64) (*workload.Dataset, error) {
	return CollectConfigs(spec.Configs(), spec.Replicates, sys, seed)
}

// CollectConfigs runs an arbitrary list of configurations (e.g. one
// produced by a Design-of-Experiments planner) and returns the samples.
// Each configuration is simulated `replicates` times (minimum 1) with
// derived seeds and the indicators averaged.
func CollectConfigs(configs []Config, replicates int, sys SystemParams, seed uint64) (*workload.Dataset, error) {
	if replicates < 1 {
		replicates = 1
	}
	ds := workload.NewDataset(FeatureNames(), IndicatorNames())
	master := rng.New(seed)
	for _, cfg := range configs {
		acc := make([]float64, len(IndicatorNames()))
		for rep := 0; rep < replicates; rep++ {
			sim, err := NewSimulator(cfg, sys, master.Split())
			if err != nil {
				return nil, fmt.Errorf("threetier: collecting %+v: %w", cfg, err)
			}
			m, err := sim.Run()
			if err != nil {
				return nil, err
			}
			for i, v := range m.Indicators() {
				acc[i] += v
			}
		}
		for i := range acc {
			acc[i] /= float64(replicates)
		}
		ds.MustAppend(workload.Sample{X: cfg.Vector(), Y: acc})
	}
	return ds, nil
}
