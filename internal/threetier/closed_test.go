package threetier

import (
	"math"
	"testing"
)

// TestClosedLoopResponseTimeLaw checks the interactive response-time law
// X = N / (Z + R): a closed system's measured throughput, population,
// think time, and response time must be mutually consistent (an
// operational law — it holds for any well-measured closed system).
func TestClosedLoopResponseTimeLaw(t *testing.T) {
	sys := testParams()
	sys.MeasureTime = 60
	cfg := Config{
		Mode: ClosedLoop, Users: 200, ThinkTime: 0.5,
		MfgThreads: 16, WebThreads: 18, DefaultThreads: 8,
	}
	m, err := Run(cfg, sys, 21)
	if err != nil {
		t.Fatal(err)
	}
	// Mean response time across classes, weighted by completions.
	var rtSum float64
	var n int
	for c := 0; c < NumClasses; c++ {
		rtSum += m.ResponseTimes[c] * float64(m.Completed[c])
		n += m.Completed[c]
	}
	if n == 0 {
		t.Fatal("no completions")
	}
	meanRT := rtSum / float64(n)
	x := m.OfferedTPS // submissions per second == throughput in steady state
	want := float64(cfg.Users) / (cfg.ThinkTime + meanRT)
	if math.Abs(x-want)/want > 0.08 {
		t.Fatalf("response-time law violated: X=%v, N/(Z+R)=%v", x, want)
	}
}

// TestClosedLoopThroughputSaturates: doubling the population beyond the
// system's capacity must not double the throughput — the closed driver
// self-limits, unlike the open one.
func TestClosedLoopThroughputSaturates(t *testing.T) {
	sys := testParams()
	run := func(users int) float64 {
		cfg := Config{
			Mode: ClosedLoop, Users: users, ThinkTime: 0.2,
			MfgThreads: 8, WebThreads: 8, DefaultThreads: 4,
		}
		m, err := Run(cfg, sys, 22)
		if err != nil {
			t.Fatal(err)
		}
		var done int
		for c := 0; c < NumClasses; c++ {
			done += m.Completed[c]
		}
		return float64(done) / sys.MeasureTime
	}
	// Completion throughput, not submissions: rejected closed-loop users
	// retry after thinking, so the raw submission rate keeps climbing
	// with the population while completions cap at the bottleneck.
	x1 := run(150)
	x2 := run(600)
	if x2 > 1.4*x1 {
		t.Fatalf("throughput did not saturate: %v users→%v tps, %v users→%v tps", 150, x1, 600, x2)
	}
	if x2 < x1*0.7 {
		t.Fatalf("more users should not reduce completion rate this much: %v vs %v", x2, x1)
	}
}

// TestClosedLoopLightLoadMatchesThinkRate: with few users and an idle
// system, throughput ≈ N/(Z+R₀) with R₀ the base service time.
func TestClosedLoopLightLoad(t *testing.T) {
	sys := testParams()
	cfg := Config{
		Mode: ClosedLoop, Users: 10, ThinkTime: 1.0,
		MfgThreads: 16, WebThreads: 16, DefaultThreads: 8,
	}
	m, err := Run(cfg, sys, 23)
	if err != nil {
		t.Fatal(err)
	}
	// R is tens of milliseconds here, so X ≈ N/Z = 10.
	if math.Abs(m.OfferedTPS-10) > 1.5 {
		t.Fatalf("light-load closed throughput %v, want ≈10", m.OfferedTPS)
	}
}

func TestClosedLoopValidation(t *testing.T) {
	bad := []Config{
		{Mode: ClosedLoop, Users: 0, ThinkTime: 1, MfgThreads: 1, WebThreads: 1, DefaultThreads: 1},
		{Mode: ClosedLoop, Users: 5, ThinkTime: 0, MfgThreads: 1, WebThreads: 1, DefaultThreads: 1},
		{Mode: DriverMode(9), InjectionRate: 100, MfgThreads: 1, WebThreads: 1, DefaultThreads: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad closed config %d accepted", i)
		}
	}
	good := Config{Mode: ClosedLoop, Users: 5, ThinkTime: 0.5, MfgThreads: 1, WebThreads: 1, DefaultThreads: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if OpenLoop.String() != "open" || ClosedLoop.String() != "closed" {
		t.Fatal("mode strings wrong")
	}
	if DriverMode(9).String() == "" {
		t.Fatal("unknown mode should render")
	}
}

// TestOpenVsClosedUnderOverload: at matched demand the open system rejects
// work while the closed one queues users; both throughputs end up capped
// near the bottleneck capacity.
func TestOpenVsClosedUnderOverload(t *testing.T) {
	sys := testParams()
	open := Config{InjectionRate: 800, MfgThreads: 8, WebThreads: 8, DefaultThreads: 4}
	closed := Config{Mode: ClosedLoop, Users: 800, ThinkTime: 0.5, MfgThreads: 8, WebThreads: 8, DefaultThreads: 4}
	mo, err := Run(open, sys, 24)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := Run(closed, sys, 24)
	if err != nil {
		t.Fatal(err)
	}
	var rejOpen, doneOpen, doneClosed int
	for c := 0; c < NumClasses; c++ {
		rejOpen += mo.Rejected[c]
		doneOpen += mo.Completed[c]
		doneClosed += mc.Completed[c]
	}
	if rejOpen == 0 {
		t.Fatal("open overload should reject")
	}
	// Note the closed driver's submission rate can exceed the open one's:
	// rejected users think and retry, a retry storm. Completions, though,
	// are capped by the same bottleneck in both modes.
	ratio := float64(doneClosed) / float64(doneOpen)
	if ratio > 1.5 || ratio < 0.3 {
		t.Fatalf("open vs closed completion counts wildly different: %d vs %d", doneOpen, doneClosed)
	}
}
