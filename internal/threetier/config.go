// Package threetier is a discrete-event simulator of the paper's case-study
// system (§4): a 3-tier web service in which a driver injects transactions
// at a configurable rate into a middle-tier application server that runs
// three thread pools — an mfg queue for the manufacturing domain, a web
// queue for the web front end, and a default queue for the rest — backed by
// a database tier. The driver and the database are not CPU-bound; the
// middle tier is the system under study.
//
// The simulator replaces the proprietary commercial workload whose data the
// paper used (see DESIGN.md, substitutions): it emits exactly the paper's
// 4-input (mfg/web/default thread counts + injection rate) to 5-output
// (manufacturing, dealer-purchase, dealer-manage, dealer-browse response
// times + effective throughput) samples, and reproduces the qualitative
// phenomena the model has to learn — response-time blow-ups near pool
// saturation, interior throughput maxima from CPU contention and
// per-thread overhead, and configuration parameters that are irrelevant in
// parts of the space.
package threetier

import (
	"errors"
	"fmt"
)

// Class enumerates the four transaction types of the workload, matching the
// paper's four response-time-constrained interactions.
type Class int

const (
	// Manufacturing models the manufacturing domain transactions served by
	// the mfg queue.
	Manufacturing Class = iota
	// DealerPurchase models dealer purchase transactions (web front end +
	// default queue + database writes).
	DealerPurchase
	// DealerManage models dealer management transactions.
	DealerManage
	// DealerBrowse models read-mostly dealer browse-autos transactions.
	DealerBrowse

	// NumClasses is the number of transaction classes.
	NumClasses = 4
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Manufacturing:
		return "manufacturing"
	case DealerPurchase:
		return "dealer-purchase"
	case DealerManage:
		return "dealer-manage"
	case DealerBrowse:
		return "dealer-browse"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Pool identifies one of the middle tier's thread pools.
type Pool int

const (
	// MfgPool is the manufacturing-domain queue.
	MfgPool Pool = iota
	// WebPool is the web front-end queue.
	WebPool
	// DefaultPool handles everything else.
	DefaultPool

	// NumPools is the number of thread pools.
	NumPools = 3
)

// String implements fmt.Stringer.
func (p Pool) String() string {
	switch p {
	case MfgPool:
		return "mfg"
	case WebPool:
		return "web"
	case DefaultPool:
		return "default"
	}
	return fmt.Sprintf("Pool(%d)", int(p))
}

// DriverMode selects how the load driver generates transactions.
type DriverMode int

const (
	// OpenLoop is the paper's driver: Poisson arrivals at InjectionRate,
	// independent of the system's state.
	OpenLoop DriverMode = iota
	// ClosedLoop models a fixed population of Users, each cycling
	// think → submit → wait-for-response. Arrival pressure then adapts to
	// the system's speed, as in SPECjAppServer-style harnesses; the
	// interactive response-time law X = N/(Z+R) governs its throughput.
	ClosedLoop
)

// String implements fmt.Stringer.
func (m DriverMode) String() string {
	switch m {
	case OpenLoop:
		return "open"
	case ClosedLoop:
		return "closed"
	}
	return fmt.Sprintf("DriverMode(%d)", int(m))
}

// Config is the controllable configuration — the paper's input vector
// X = (injection rate, default queue, mfg queue, web queue). The optional
// closed-loop fields extend the simulator beyond the paper's open driver.
type Config struct {
	InjectionRate  float64 // transactions per second offered by the driver (open loop)
	MfgThreads     int
	WebThreads     int
	DefaultThreads int

	// Mode defaults to OpenLoop. In ClosedLoop, Users and ThinkTime
	// replace InjectionRate as the load specification.
	Mode      DriverMode
	Users     int     // closed-loop population size
	ThinkTime float64 // mean exponential think time in seconds
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	switch c.Mode {
	case OpenLoop:
		if c.InjectionRate <= 0 {
			return errors.New("threetier: injection rate must be positive")
		}
	case ClosedLoop:
		if c.Users < 1 {
			return errors.New("threetier: closed loop needs at least one user")
		}
		if c.ThinkTime <= 0 {
			return errors.New("threetier: closed loop needs a positive think time")
		}
	default:
		return fmt.Errorf("threetier: unknown driver mode %v", c.Mode)
	}
	if c.MfgThreads < 1 || c.WebThreads < 1 || c.DefaultThreads < 1 {
		return errors.New("threetier: every thread pool needs at least one thread")
	}
	return nil
}

// Vector returns the configuration as the paper's 4-tuple ordering
// (injection rate, default queue, mfg queue, web queue), the order used in
// the figure captions "(560, x, 16, y)".
func (c Config) Vector() []float64 {
	return []float64{c.InjectionRate, float64(c.DefaultThreads), float64(c.MfgThreads), float64(c.WebThreads)}
}

// ConfigFromVector is the inverse of Config.Vector.
func ConfigFromVector(v []float64) (Config, error) {
	if len(v) != 4 {
		return Config{}, fmt.Errorf("threetier: config vector needs 4 entries, got %d", len(v))
	}
	return Config{
		InjectionRate:  v[0],
		DefaultThreads: int(v[1] + 0.5),
		MfgThreads:     int(v[2] + 0.5),
		WebThreads:     int(v[3] + 0.5),
	}, nil
}

// stage is one visit a transaction pays to a thread pool: some CPU work
// followed by a database call made while still holding the worker thread,
// as mid-2000s application servers did.
type stage struct {
	pool    Pool
	cpuMean float64 // seconds of CPU demand at nominal speed
	dbMean  float64 // seconds of database time while holding the thread
}

// classProfile describes one transaction class: its share of the mix, its
// pipeline of pool visits, and its response-time constraint (deadline) used
// for the "effective transactions per second" indicator.
type classProfile struct {
	mix      float64
	stages   []stage
	deadline float64 // seconds
}

// SystemParams captures the simulated hardware and software environment.
// Defaults mirror the paper's Table 1 testbed: 4 dual-core Xeons with
// Hyper-Threading, i.e. 16 logical processors, and a database that is not
// CPU-bound but slows gently under very high concurrency.
type SystemParams struct {
	Cores int // logical processors executing middle-tier CPU work

	// ThreadOverhead is the fractional slowdown contributed by each
	// configured worker thread (context switching, cache pressure, lock
	// and connection contention). It stretches the whole holding time —
	// CPU and database phases — by 1 + ThreadOverhead·ΣThreads. This is
	// what makes over-provisioned pools hurt (the paper's hills).
	ThreadOverhead float64

	// QueueCap bounds each pool's wait queue, as production application
	// servers do. Arrivals that find the queue full are rejected and the
	// transaction aborts; it counts as offered but never as effective.
	QueueCap int

	// CPUVariation and DBVariation are coefficient-of-variation knobs for
	// the sampled service times (lognormal-like spread via gamma of the
	// exponential base).
	CPUVariation float64
	DBVariation  float64

	// DBSoftLimit is the outstanding-call count beyond which database
	// latency begins to stretch linearly; DBSlowdown is the stretch per
	// excess call.
	DBSoftLimit int
	DBSlowdown  float64

	// WarmupTime and MeasureTime bound the simulated interval: statistics
	// are collected only for transactions arriving inside the measurement
	// window, after the warm-up.
	WarmupTime  float64
	MeasureTime float64

	// Mix overrides the built-in transaction-class shares (manufacturing,
	// purchase, manage, browse). A nil/zero value keeps the defaults; a
	// set value must be non-negative and sum to ~1. Changing the mix is
	// how workload-drift scenarios are simulated.
	Mix []float64

	// CollectSamples keeps every measured transaction's response time in
	// completion order, enabling percentile reports and batch-means
	// confidence intervals on the metrics (at some memory cost). Off by
	// default; sweeps only need the means.
	CollectSamples bool
}

// DefaultSystemParams returns the parameters used for all experiments.
func DefaultSystemParams() SystemParams {
	return SystemParams{
		Cores:          16,
		ThreadOverhead: 0.008,
		QueueCap:       50,
		CPUVariation:   0.35,
		DBVariation:    0.45,
		DBSoftLimit:    64,
		DBSlowdown:     0.015,
		WarmupTime:     20,
		MeasureTime:    80,
	}
}

// Validate reports SystemParams errors.
func (sp SystemParams) Validate() error {
	if sp.Mix != nil {
		if len(sp.Mix) != NumClasses {
			return fmt.Errorf("threetier: mix needs %d entries, got %d", NumClasses, len(sp.Mix))
		}
		var sum float64
		for _, m := range sp.Mix {
			if m < 0 {
				return errors.New("threetier: mix shares must be non-negative")
			}
			sum += m
		}
		if sum < 0.999 || sum > 1.001 {
			return fmt.Errorf("threetier: mix sums to %g, want 1", sum)
		}
	}
	return nil
}

// profiles returns the transaction-class table. The demands are calibrated
// so that, at the paper's reference injection rate of 560 tx/s, the web
// pool needs roughly 14–18 threads and the mfg pool roughly 10–16 — the
// regions the paper's figures explore.
func profiles() [NumClasses]classProfile {
	return [NumClasses]classProfile{
		// Manufacturing orders are submitted through the web front end
		// before the manufacturing domain processes them, so a starved web
		// pool raises manufacturing response time too (the slope of
		// Figure 4) while the default queue stays irrelevant to it (the
		// parallel part of Figure 4).
		Manufacturing: {
			mix: 0.25,
			stages: []stage{
				{pool: WebPool, cpuMean: 0.003, dbMean: 0.005},
				{pool: MfgPool, cpuMean: 0.010, dbMean: 0.030},
				{pool: MfgPool, cpuMean: 0.005, dbMean: 0.012},
			},
			deadline: 0.140,
		},
		DealerPurchase: {
			mix: 0.25,
			stages: []stage{
				{pool: WebPool, cpuMean: 0.006, dbMean: 0.020},
				{pool: DefaultPool, cpuMean: 0.004, dbMean: 0.010},
			},
			deadline: 0.080,
		},
		DealerManage: {
			mix: 0.20,
			stages: []stage{
				{pool: WebPool, cpuMean: 0.005, dbMean: 0.015},
				{pool: DefaultPool, cpuMean: 0.003, dbMean: 0.008},
			},
			deadline: 0.060,
		},
		DealerBrowse: {
			mix: 0.30,
			stages: []stage{
				{pool: WebPool, cpuMean: 0.004, dbMean: 0.025},
				{pool: DefaultPool, cpuMean: 0.002, dbMean: 0.004},
			},
			deadline: 0.065,
		},
	}
}

// IndicatorNames returns the five performance-indicator names in the
// paper's order: four response times then effective throughput.
func IndicatorNames() []string {
	return []string{
		"manufacturing_rt",
		"dealer_purchase_rt",
		"dealer_manage_rt",
		"dealer_browse_rt",
		"effective_tps",
	}
}

// FeatureNames returns the four configuration-parameter names in the
// paper's tuple order.
func FeatureNames() []string {
	return []string{"injection_rate", "default_threads", "mfg_threads", "web_threads"}
}
