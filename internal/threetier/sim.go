package threetier

import (
	"container/heap"
	"fmt"
	"math"

	"nnwc/internal/rng"
	"nnwc/internal/stats"
)

// Metrics are the measured outcomes of one simulation run.
type Metrics struct {
	Config Config

	// ResponseTimes holds the mean response time per class (seconds) over
	// transactions arriving in the measurement window.
	ResponseTimes [NumClasses]float64
	// Completed counts measured transactions that finished (including
	// past their deadline); Rejected counts measured transactions dropped
	// at a full pool queue; Censored counts measured transactions still
	// in flight when the drain limit expired.
	Completed [NumClasses]int
	Rejected  [NumClasses]int
	Censored  [NumClasses]int
	// EffectiveTPS is the paper's fifth indicator: transactions per
	// second completing within their class response-time constraint.
	EffectiveTPS float64
	// OfferedTPS is the measured arrival rate in the window.
	OfferedTPS float64
	// PoolUtilization is busy-thread-seconds / (threads × window) per pool.
	PoolUtilization [NumPools]float64
	// MeanQueueLen is the time-averaged wait-queue length per pool.
	MeanQueueLen [NumPools]float64
	// Samples holds each class's measured response times in completion
	// order; populated only when SystemParams.CollectSamples is set.
	Samples [NumClasses][]float64
	// MeanPoolWait and MeanPoolService break a class's mean response time
	// down by pool: time spent waiting for a thread of that pool and time
	// spent holding one (CPU + DB phases), per completed transaction.
	// Summing a class's row across pools recovers (approximately) its
	// mean response time — the residue is censoring. This is the
	// bottleneck-attribution view tuning decisions actually need.
	MeanPoolWait    [NumClasses][NumPools]float64
	MeanPoolService [NumClasses][NumPools]float64
}

// Bottleneck returns the pool where class c waits longest.
func (m *Metrics) Bottleneck(c Class) Pool {
	best := Pool(0)
	for p := 1; p < NumPools; p++ {
		if m.MeanPoolWait[c][p] > m.MeanPoolWait[c][best] {
			best = Pool(p)
		}
	}
	return best
}

// Percentiles summarizes one class's response-time distribution. It
// requires SystemParams.CollectSamples and at least one completion.
func (m *Metrics) Percentiles(c Class) (stats.Percentiles, error) {
	if len(m.Samples[c]) == 0 {
		return stats.Percentiles{}, fmt.Errorf("threetier: no samples for %v (CollectSamples off or no completions)", c)
	}
	return stats.SummarizePercentiles(m.Samples[c]), nil
}

// ResponseCI returns a ~95%% batch-means confidence interval for one
// class's mean response time. It requires SystemParams.CollectSamples.
func (m *Metrics) ResponseCI(c Class, batches int) (stats.ConfidenceInterval, error) {
	if len(m.Samples[c]) == 0 {
		return stats.ConfidenceInterval{}, fmt.Errorf("threetier: no samples for %v (CollectSamples off or no completions)", c)
	}
	return stats.BatchMeansCI(m.Samples[c], batches)
}

// Indicators returns the five performance indicators in the paper's order
// (four response times, then effective throughput). Response times are
// reported in milliseconds so that the magnitudes of all five outputs are
// comparable in reports.
func (m *Metrics) Indicators() []float64 {
	return []float64{
		m.ResponseTimes[Manufacturing] * 1000,
		m.ResponseTimes[DealerPurchase] * 1000,
		m.ResponseTimes[DealerManage] * 1000,
		m.ResponseTimes[DealerBrowse] * 1000,
		m.EffectiveTPS,
	}
}

// event kinds.
type eventKind int

const (
	evArrival eventKind = iota
	evCPUDone
	evStageDone
)

type event struct {
	time float64
	seq  int64 // FIFO tie-break for determinism
	kind eventKind
	req  *request
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	//lint:waive floateq -- event heap needs an exact time tie-break for a deterministic total order
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)     { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)       { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any         { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peekTime() float64 { return h[0].time }

type request struct {
	class    Class
	arrival  float64
	stageIdx int
	measured bool

	queuedAt float64 // when the current stage was entered
	heldAt   float64 // when the current stage's thread was acquired
}

type pool struct {
	threads int
	busy    int
	queue   []*request
	head    int

	// accounting
	busyIntegral  float64
	queueIntegral float64
	lastUpdate    float64
}

func (p *pool) advance(now float64) {
	dt := now - p.lastUpdate
	p.busyIntegral += float64(p.busy) * dt
	p.queueIntegral += float64(p.qlen()) * dt
	p.lastUpdate = now
}

func (p *pool) qlen() int { return len(p.queue) - p.head }

func (p *pool) push(r *request) { p.queue = append(p.queue, r) }

func (p *pool) pop() *request {
	r := p.queue[p.head]
	p.queue[p.head] = nil
	p.head++
	if p.head > 1024 && p.head*2 > len(p.queue) {
		p.queue = append([]*request(nil), p.queue[p.head:]...)
		p.head = 0
	}
	return r
}

// Simulator runs the three-tier model for one configuration.
type Simulator struct {
	cfg      Config
	sys      SystemParams
	profiles [NumClasses]classProfile
	src      *rng.Source

	now    float64
	events eventHeap
	seq    int64

	pools         [NumPools]*pool
	busyCPU       int // requests currently in their CPU phase
	dbOutstanding int

	// measurement accumulators
	rtSamples   [NumClasses][]float64
	waitSum     [NumClasses][NumPools]float64
	svcSum      [NumClasses][NumPools]float64
	rtSum       [NumClasses]float64
	completed   [NumClasses]int
	effective   [NumClasses]int
	rejected    [NumClasses]int
	arrivals    int
	inFlight    int
	windowStart float64
	windowEnd   float64
}

// NewSimulator builds a simulator for the given configuration, system
// parameters, and random source.
func NewSimulator(cfg Config, sys SystemParams, src *rng.Source) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sys.Cores < 1 {
		return nil, fmt.Errorf("threetier: need at least one core, got %d", sys.Cores)
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{
		cfg:      cfg,
		sys:      sys,
		profiles: profiles(),
		src:      src,
	}
	if sys.Mix != nil {
		for c := range s.profiles {
			s.profiles[c].mix = sys.Mix[c]
		}
	}
	s.pools[MfgPool] = &pool{threads: cfg.MfgThreads}
	s.pools[WebPool] = &pool{threads: cfg.WebThreads}
	s.pools[DefaultPool] = &pool{threads: cfg.DefaultThreads}
	s.windowStart = sys.WarmupTime
	s.windowEnd = sys.WarmupTime + sys.MeasureTime
	return s, nil
}

// Run executes the simulation: warm-up, measurement window, then a bounded
// drain so in-flight measured transactions can finish. It returns the
// collected metrics.
func (s *Simulator) Run() (*Metrics, error) {
	// Prime the arrival process: one Poisson stream in open loop, or one
	// staggered first submission per virtual user in closed loop.
	switch s.cfg.Mode {
	case OpenLoop:
		s.schedule(s.src.Exp(s.cfg.InjectionRate), evArrival, nil)
	case ClosedLoop:
		for u := 0; u < s.cfg.Users; u++ {
			s.schedule(s.src.Exp(1/s.cfg.ThinkTime), evArrival, nil)
		}
	}
	drainLimit := s.windowEnd + s.sys.MeasureTime*0.5

	for len(s.events) > 0 {
		if s.events.peekTime() > drainLimit {
			break
		}
		e := heap.Pop(&s.events).(event)
		s.advanceClocks(e.time)
		s.now = e.time
		switch e.kind {
		case evArrival:
			s.onArrival()
		case evCPUDone:
			s.onCPUDone(e.req)
		case evStageDone:
			s.onStageDone(e.req)
		}
	}

	return s.collect(drainLimit), nil
}

func (s *Simulator) advanceClocks(now float64) {
	for _, p := range s.pools {
		p.advance(now)
	}
}

func (s *Simulator) schedule(at float64, kind eventKind, r *request) {
	s.seq++
	heap.Push(&s.events, event{time: at, seq: s.seq, kind: kind, req: r})
}

func (s *Simulator) onArrival() {
	// In open loop the stream self-perpetuates; in closed loop the next
	// submission is scheduled when this user's transaction finishes. Load
	// generation stops at the end of the measurement window either way.
	if s.cfg.Mode == OpenLoop && s.now < s.windowEnd {
		s.schedule(s.now+s.src.Exp(s.cfg.InjectionRate), evArrival, nil)
	}
	if s.cfg.Mode == ClosedLoop && s.now >= s.windowEnd {
		return // the user retires instead of submitting
	}
	r := &request{class: s.sampleClass(), arrival: s.now}
	if s.now >= s.windowStart && s.now < s.windowEnd {
		r.measured = true
		s.arrivals++
	}
	s.inFlight++
	s.enqueue(r)
}

func (s *Simulator) sampleClass() Class {
	u := s.src.Float64()
	var acc float64
	for c := 0; c < NumClasses; c++ {
		acc += s.profiles[c].mix
		if u < acc {
			return Class(c)
		}
	}
	return Class(NumClasses - 1)
}

// enqueue places r at its current stage's pool, starting service
// immediately when a thread is free. A full wait queue rejects the
// transaction outright (admission control), which both matches production
// application servers and keeps saturated configurations' indicators
// finite.
func (s *Simulator) enqueue(r *request) {
	r.queuedAt = s.now
	st := s.profiles[r.class].stages[r.stageIdx]
	p := s.pools[st.pool]
	switch {
	case p.busy < p.threads:
		p.busy++
		s.startCPU(r)
	case s.sys.QueueCap > 0 && p.qlen() >= s.sys.QueueCap:
		s.inFlight--
		if r.measured {
			s.rejected[r.class]++
		}
		s.userDone()
	default:
		p.push(r)
	}
}

// startCPU samples the CPU-phase duration under the current contention and
// schedules its completion. The thread is already held.
func (s *Simulator) startCPU(r *request) {
	r.heldAt = s.now
	if r.measured {
		st := s.profiles[r.class].stages[r.stageIdx]
		s.waitSum[r.class][st.pool] += s.now - r.queuedAt
	}
	st := s.profiles[r.class].stages[r.stageIdx]
	s.busyCPU++
	base := s.sampleTime(st.cpuMean, s.sys.CPUVariation)
	slow := s.cpuSlowdown()
	s.schedule(s.now+base*slow, evCPUDone, r)
}

// cpuSlowdown models processor sharing across cores plus the per-thread
// management overhead of large pools.
func (s *Simulator) cpuSlowdown() float64 {
	contention := 1.0
	if s.busyCPU > s.sys.Cores {
		contention = float64(s.busyCPU) / float64(s.sys.Cores)
	}
	return contention * s.threadStretch()
}

// threadStretch is the holding-time inflation caused by every configured
// worker thread: context switches, cache pressure, and lock/connection
// contention stretch both the CPU and the database phases.
func (s *Simulator) threadStretch() float64 {
	total := s.cfg.MfgThreads + s.cfg.WebThreads + s.cfg.DefaultThreads
	return 1 + s.sys.ThreadOverhead*float64(total)
}

func (s *Simulator) onCPUDone(r *request) {
	s.busyCPU--
	st := s.profiles[r.class].stages[r.stageIdx]
	if st.dbMean <= 0 {
		s.onStageDone(r)
		return
	}
	// Database call made while holding the worker thread.
	stretch := s.threadStretch()
	if s.dbOutstanding > s.sys.DBSoftLimit {
		stretch += s.sys.DBSlowdown * float64(s.dbOutstanding-s.sys.DBSoftLimit)
	}
	s.dbOutstanding++
	d := s.sampleTime(st.dbMean, s.sys.DBVariation) * stretch
	s.schedule(s.now+d, evStageDone, r)
}

func (s *Simulator) onStageDone(r *request) {
	st := s.profiles[r.class].stages[r.stageIdx]
	if st.dbMean > 0 {
		s.dbOutstanding--
	}
	if r.measured {
		s.svcSum[r.class][st.pool] += s.now - r.heldAt
	}
	// Release the worker thread; hand it to the next waiter if any.
	p := s.pools[st.pool]
	if p.qlen() > 0 {
		next := p.pop()
		s.startCPU(next)
	} else {
		p.busy--
	}

	r.stageIdx++
	if r.stageIdx < len(s.profiles[r.class].stages) {
		s.enqueue(r)
		return
	}
	// Transaction complete.
	s.inFlight--
	if r.measured {
		rt := s.now - r.arrival
		s.rtSum[r.class] += rt
		s.completed[r.class]++
		if s.sys.CollectSamples {
			s.rtSamples[r.class] = append(s.rtSamples[r.class], rt)
		}
		if rt <= s.profiles[r.class].deadline {
			s.effective[r.class]++
		}
	}
	s.userDone()
}

// userDone returns a closed-loop virtual user to its think state after its
// transaction completes (or is rejected). No-op in open loop.
func (s *Simulator) userDone() {
	if s.cfg.Mode != ClosedLoop {
		return
	}
	s.schedule(s.now+s.src.Exp(1/s.cfg.ThinkTime), evArrival, nil)
}

// sampleTime draws a lognormal service time with the given mean and
// coefficient of variation.
func (s *Simulator) sampleTime(mean, cv float64) float64 {
	if cv <= 0 {
		return mean
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return s.src.LogNormal(mu, math.Sqrt(sigma2))
}

func (s *Simulator) collect(drainEnd float64) *Metrics {
	m := &Metrics{Config: s.cfg}
	var effTotal int
	for c := 0; c < NumClasses; c++ {
		n := s.completed[c]
		sum := s.rtSum[c]
		// Requests still in flight after the drain are censored at the
		// drain horizon: they contribute a lower-bound response time and
		// never count as effective. This keeps saturated configurations
		// finite while preserving their "bad" signal.
		cens := s.censoredOf(Class(c), drainEnd)
		n += cens.count
		sum += cens.rtSum
		m.Censored[c] = cens.count
		m.Completed[c] = s.completed[c]
		m.Rejected[c] = s.rejected[c]
		if n > 0 {
			m.ResponseTimes[c] = sum / float64(n)
		}
		effTotal += s.effective[c]
	}
	if s.sys.CollectSamples {
		m.Samples = s.rtSamples
	}
	for c := 0; c < NumClasses; c++ {
		if s.completed[c] == 0 {
			continue
		}
		n := float64(s.completed[c])
		for p := 0; p < NumPools; p++ {
			m.MeanPoolWait[c][p] = s.waitSum[c][p] / n
			m.MeanPoolService[c][p] = s.svcSum[c][p] / n
		}
	}
	m.EffectiveTPS = float64(effTotal) / s.sys.MeasureTime
	m.OfferedTPS = float64(s.arrivals) / s.sys.MeasureTime
	window := drainEnd
	for i, p := range s.pools {
		p.advance(drainEnd)
		m.PoolUtilization[i] = p.busyIntegral / (float64(p.threads) * window)
		m.MeanQueueLen[i] = p.queueIntegral / window
	}
	return m
}

type censoredStats struct {
	count int
	rtSum float64
}

// censoredOf walks the remaining events and queues for measured requests of
// class c that never completed.
func (s *Simulator) censoredOf(c Class, horizon float64) censoredStats {
	var out censoredStats
	seen := map[*request]bool{}
	add := func(r *request) {
		if r == nil || !r.measured || r.class != c || seen[r] {
			return
		}
		seen[r] = true
		out.count++
		out.rtSum += horizon - r.arrival
	}
	for _, e := range s.events {
		add(e.req)
	}
	for _, p := range s.pools {
		for i := p.head; i < len(p.queue); i++ {
			add(p.queue[i])
		}
	}
	return out
}

// Run is a convenience wrapper: build a simulator and run it.
func Run(cfg Config, sys SystemParams, seed uint64) (*Metrics, error) {
	sim, err := NewSimulator(cfg, sys, rng.New(seed))
	if err != nil {
		return nil, err
	}
	return sim.Run()
}
