package threetier

import (
	"math"
	"testing"

	"nnwc/internal/queueing"
)

// testParams returns fast simulation windows for unit tests.
func testParams() SystemParams {
	sys := DefaultSystemParams()
	sys.WarmupTime = 3
	sys.MeasureTime = 15
	return sys
}

func TestConfigValidate(t *testing.T) {
	ok := Config{InjectionRate: 100, MfgThreads: 1, WebThreads: 1, DefaultThreads: 1}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{InjectionRate: 0, MfgThreads: 1, WebThreads: 1, DefaultThreads: 1},
		{InjectionRate: 100, MfgThreads: 0, WebThreads: 1, DefaultThreads: 1},
		{InjectionRate: 100, MfgThreads: 1, WebThreads: 0, DefaultThreads: 1},
		{InjectionRate: 100, MfgThreads: 1, WebThreads: 1, DefaultThreads: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestConfigVectorRoundTrip(t *testing.T) {
	c := Config{InjectionRate: 560, DefaultThreads: 7, MfgThreads: 16, WebThreads: 18}
	v := c.Vector()
	// Paper ordering: (injection rate, default, mfg, web).
	if v[0] != 560 || v[1] != 7 || v[2] != 16 || v[3] != 18 {
		t.Fatalf("vector %v", v)
	}
	back, err := ConfigFromVector(v)
	if err != nil {
		t.Fatal(err)
	}
	if back != c {
		t.Fatalf("round trip %+v != %+v", back, c)
	}
	if _, err := ConfigFromVector([]float64{1, 2}); err == nil {
		t.Fatal("short vector accepted")
	}
}

func TestClassAndPoolStrings(t *testing.T) {
	names := map[string]bool{}
	for c := 0; c < NumClasses; c++ {
		n := Class(c).String()
		if n == "" || names[n] {
			t.Fatalf("class name %q empty or duplicate", n)
		}
		names[n] = true
	}
	for p := 0; p < NumPools; p++ {
		n := Pool(p).String()
		if n == "" || names[n] {
			t.Fatalf("pool name %q empty or duplicate", n)
		}
		names[n] = true
	}
	if Class(99).String() == "" || Pool(99).String() == "" {
		t.Fatal("unknown ids should still render")
	}
}

func TestProfilesMixSumsToOne(t *testing.T) {
	var sum float64
	for _, p := range profiles() {
		sum += p.mix
		if len(p.stages) == 0 {
			t.Fatal("class with no stages")
		}
		if p.deadline <= 0 {
			t.Fatal("class without deadline")
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("mix sums to %v", sum)
	}
}

func TestSchemaNames(t *testing.T) {
	if len(FeatureNames()) != 4 || len(IndicatorNames()) != 5 {
		t.Fatal("schema sizes wrong")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{InjectionRate: 400, MfgThreads: 16, WebThreads: 18, DefaultThreads: 8}
	a, err := Run(cfg, testParams(), 123)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, testParams(), 123)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.ResponseTimes {
		if a.ResponseTimes[i] != b.ResponseTimes[i] {
			t.Fatal("same seed produced different response times")
		}
	}
	if a.EffectiveTPS != b.EffectiveTPS {
		t.Fatal("same seed produced different throughput")
	}
	c, err := Run(cfg, testParams(), 124)
	if err != nil {
		t.Fatal(err)
	}
	if a.ResponseTimes[0] == c.ResponseTimes[0] {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
}

func TestOfferedRateMatchesInjectionRate(t *testing.T) {
	cfg := Config{InjectionRate: 500, MfgThreads: 16, WebThreads: 20, DefaultThreads: 10}
	m, err := Run(cfg, testParams(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.OfferedTPS-500)/500 > 0.05 {
		t.Fatalf("offered %v, want ~500", m.OfferedTPS)
	}
}

func TestLowLoadResponseApproxServiceTime(t *testing.T) {
	// At very low load, queueing is negligible and the response time is
	// roughly the sum of service demands times the thread-overhead
	// stretch.
	cfg := Config{InjectionRate: 20, MfgThreads: 8, WebThreads: 8, DefaultThreads: 8}
	sys := testParams()
	m, err := Run(cfg, sys, 6)
	if err != nil {
		t.Fatal(err)
	}
	stretch := 1 + sys.ThreadOverhead*24
	for c, prof := range profiles() {
		var base float64
		for _, st := range prof.stages {
			base += st.cpuMean + st.dbMean
		}
		want := base * stretch
		got := m.ResponseTimes[c]
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("%v: low-load RT %v, want ~%v", Class(c), got, want)
		}
	}
}

func TestStarvedPoolRaisesResponseTime(t *testing.T) {
	sys := testParams()
	rich := Config{InjectionRate: 560, MfgThreads: 16, WebThreads: 20, DefaultThreads: 8}
	starved := rich
	starved.WebThreads = 6
	a, err := Run(rich, sys, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(starved, sys, 7)
	if err != nil {
		t.Fatal(err)
	}
	if b.ResponseTimes[DealerPurchase] < 2*a.ResponseTimes[DealerPurchase] {
		t.Fatalf("starving the web pool barely changed purchase RT: %v vs %v",
			b.ResponseTimes[DealerPurchase], a.ResponseTimes[DealerPurchase])
	}
	if b.EffectiveTPS > a.EffectiveTPS {
		t.Fatal("starved pool should not increase effective throughput")
	}
}

func TestDefaultQueueIrrelevantToManufacturingShape(t *testing.T) {
	// The paper's Figure 4 (parallel slopes): at an adequate web pool, the
	// default queue has little effect on manufacturing response time
	// compared to its effect on dealer purchase.
	sys := testParams()
	base := Config{InjectionRate: 560, MfgThreads: 16, WebThreads: 18, DefaultThreads: 8}
	low := base
	low.DefaultThreads = 2
	a, err := Run(base, sys, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(low, sys, 8)
	if err != nil {
		t.Fatal(err)
	}
	mfgChange := math.Abs(b.ResponseTimes[Manufacturing]-a.ResponseTimes[Manufacturing]) /
		a.ResponseTimes[Manufacturing]
	purChange := math.Abs(b.ResponseTimes[DealerPurchase]-a.ResponseTimes[DealerPurchase]) /
		a.ResponseTimes[DealerPurchase]
	if purChange < 5*mfgChange {
		t.Fatalf("default-queue starvation: purchase moved %.1f%%, mfg %.1f%% — expected purchase >> mfg",
			purChange*100, mfgChange*100)
	}
}

func TestOverProvisioningHurtsThroughput(t *testing.T) {
	// The paper's Figure 8 (hills): giant pools must cost throughput.
	sys := testParams()
	tuned := Config{InjectionRate: 560, MfgThreads: 16, WebThreads: 20, DefaultThreads: 8}
	bloated := Config{InjectionRate: 560, MfgThreads: 64, WebThreads: 64, DefaultThreads: 64}
	a, err := Run(tuned, sys, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(bloated, sys, 9)
	if err != nil {
		t.Fatal(err)
	}
	if b.EffectiveTPS > 0.8*a.EffectiveTPS {
		t.Fatalf("bloated pools kept throughput: %v vs tuned %v", b.EffectiveTPS, a.EffectiveTPS)
	}
}

func TestRejectionAccounting(t *testing.T) {
	// Under heavy starvation, rejections must appear and the effective
	// throughput must fall well below the offered rate.
	cfg := Config{InjectionRate: 560, MfgThreads: 16, WebThreads: 2, DefaultThreads: 8}
	m, err := Run(cfg, testParams(), 10)
	if err != nil {
		t.Fatal(err)
	}
	var rejected int
	for c := 0; c < NumClasses; c++ {
		rejected += m.Rejected[c]
	}
	if rejected == 0 {
		t.Fatal("no rejections under extreme starvation")
	}
	if m.EffectiveTPS > m.OfferedTPS/2 {
		t.Fatalf("effective %v should be far below offered %v", m.EffectiveTPS, m.OfferedTPS)
	}
}

func TestUtilizationBounds(t *testing.T) {
	cfg := Config{InjectionRate: 400, MfgThreads: 16, WebThreads: 16, DefaultThreads: 8}
	m, err := Run(cfg, testParams(), 11)
	if err != nil {
		t.Fatal(err)
	}
	for p, u := range m.PoolUtilization {
		if u < 0 || u > 1.0001 {
			t.Fatalf("pool %v utilization %v", Pool(p), u)
		}
	}
	for p, q := range m.MeanQueueLen {
		if q < 0 {
			t.Fatalf("pool %v mean queue length %v", Pool(p), q)
		}
	}
}

func TestIndicatorsVector(t *testing.T) {
	cfg := Config{InjectionRate: 300, MfgThreads: 16, WebThreads: 16, DefaultThreads: 8}
	m, err := Run(cfg, testParams(), 12)
	if err != nil {
		t.Fatal(err)
	}
	ind := m.Indicators()
	if len(ind) != 5 {
		t.Fatalf("%d indicators", len(ind))
	}
	// Milliseconds conversion.
	if math.Abs(ind[0]-m.ResponseTimes[Manufacturing]*1000) > 1e-9 {
		t.Fatal("indicator 0 is not ms of manufacturing RT")
	}
	if ind[4] != m.EffectiveTPS {
		t.Fatal("indicator 4 is not effective TPS")
	}
}

// TestSimulatorMatchesAnalyticSingleStage cross-validates the DES against
// the M/M/c oracle: a lightly loaded pool where CPU time dominates and
// contention is negligible behaves like an M/M/c queue with service rate
// 1/(cpu+db).
func TestSimulatorMatchesAnalyticMM_C(t *testing.T) {
	// Use browse-dominated load at low rate: almost all time is the web
	// stage. We compare the simulator's browse RT against the M/M/c
	// response time of the web pool plus its default-stage time, within a
	// generous tolerance (the simulator has lognormal service, not
	// exponential, and a second stage).
	sys := testParams()
	sys.ThreadOverhead = 0 // isolate pure queueing
	sys.CPUVariation = 1.0 // CV=1 matches the exponential assumption
	sys.DBVariation = 1.0
	sys.MeasureTime = 60

	cfg := Config{InjectionRate: 200, MfgThreads: 32, WebThreads: 6, DefaultThreads: 32}
	m, err := Run(cfg, sys, 13)
	if err != nil {
		t.Fatal(err)
	}

	// Offered load at the web pool: every class's first stage.
	profs := profiles()
	var webHold, webRate float64
	for _, p := range profs {
		st := p.stages[0]
		if st.pool == WebPool {
			webHold += p.mix * (st.cpuMean + st.dbMean)
			webRate += p.mix * cfg.InjectionRate
		}
	}
	meanService := webHold / (webRate / cfg.InjectionRate) // E[S] per web visit
	q := queueing.MMC{Lambda: webRate, Mu: 1 / meanService, C: cfg.WebThreads}
	wq, err := q.MeanWait()
	if err != nil {
		t.Fatal(err)
	}

	// Browse = web wait + web service + default stage (uncongested).
	browse := profs[DealerBrowse]
	want := wq + browse.stages[0].cpuMean + browse.stages[0].dbMean +
		browse.stages[1].cpuMean + browse.stages[1].dbMean
	got := m.ResponseTimes[DealerBrowse]
	if math.Abs(got-want)/want > 0.30 {
		t.Fatalf("DES browse RT %v, analytic ≈ %v (>30%% apart)", got, want)
	}
}

func BenchmarkSimulation(b *testing.B) {
	sys := DefaultSystemParams()
	sys.WarmupTime, sys.MeasureTime = 2, 8
	cfg := Config{InjectionRate: 560, MfgThreads: 16, WebThreads: 18, DefaultThreads: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, sys, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRejectionMatchesMMCKBlocking validates the simulator's admission
// control against the M/M/c/K oracle: with every transaction's first stage
// on a starved web pool (and the other pools effectively unbounded), the
// measured rejection fraction must match the analytic blocking
// probability of an M/M/c/K system with the pool's aggregate service rate.
func TestRejectionMatchesMMCKBlocking(t *testing.T) {
	sys := testParams()
	sys.ThreadOverhead = 0
	sys.CPUVariation = 1
	sys.DBVariation = 1
	sys.MeasureTime = 60

	cfg := Config{InjectionRate: 560, MfgThreads: 64, WebThreads: 6, DefaultThreads: 64}
	m, err := Run(cfg, sys, 99)
	if err != nil {
		t.Fatal(err)
	}

	// Aggregate mean holding time of the web pool's first-stage visits.
	profs := profiles()
	var hold float64
	for _, p := range profs {
		st := p.stages[0]
		if st.pool != WebPool {
			t.Fatal("test assumes all classes enter through the web pool")
		}
		hold += p.mix * (st.cpuMean + st.dbMean)
	}
	oracle := queueing.MMCK{
		Lambda: cfg.InjectionRate,
		Mu:     1 / hold,
		C:      cfg.WebThreads,
		K:      cfg.WebThreads + sys.QueueCap,
	}
	wantBlock, err := oracle.BlockingProbability()
	if err != nil {
		t.Fatal(err)
	}

	var rejected int
	for c := 0; c < NumClasses; c++ {
		rejected += m.Rejected[c]
	}
	measured := float64(rejected) / (m.OfferedTPS * sys.MeasureTime)
	if math.Abs(measured-wantBlock)/wantBlock > 0.12 {
		t.Fatalf("rejection fraction %.3f, M/M/c/K blocking %.3f (>12%% apart)", measured, wantBlock)
	}
	// Accepted throughput cannot exceed the pool's service capacity.
	accepted := m.OfferedTPS * (1 - measured)
	capacity := float64(cfg.WebThreads) / hold
	if accepted > capacity*1.05 {
		t.Fatalf("accepted rate %v exceeds web capacity %v", accepted, capacity)
	}
}

func TestSampleCollectionAndPercentiles(t *testing.T) {
	sys := testParams()
	sys.CollectSamples = true
	cfg := Config{InjectionRate: 400, MfgThreads: 16, WebThreads: 18, DefaultThreads: 8}
	m, err := Run(cfg, sys, 31)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < NumClasses; c++ {
		if len(m.Samples[c]) != m.Completed[c] {
			t.Fatalf("%v: %d samples vs %d completions", Class(c), len(m.Samples[c]), m.Completed[c])
		}
		p, err := m.Percentiles(Class(c))
		if err != nil {
			t.Fatal(err)
		}
		if !(p.P50 <= p.P95 && p.P95 <= p.P99) {
			t.Fatalf("%v percentiles out of order: %+v", Class(c), p)
		}
		// The median of a right-skewed queueing distribution sits below
		// the mean; allow equality tolerance.
		if p.P50 > m.ResponseTimes[c]*1.2 {
			t.Fatalf("%v: P50 %v far above mean %v", Class(c), p.P50, m.ResponseTimes[c])
		}
		ci, err := m.ResponseCI(Class(c), 20)
		if err != nil {
			t.Fatal(err)
		}
		if !ci.Contains(m.ResponseTimes[c]) {
			// The CI is over completions only while the mean includes
			// censored transactions; at this load they coincide.
			t.Fatalf("%v: CI %v±%v misses the mean %v", Class(c), ci.Mean, ci.HalfWidth, m.ResponseTimes[c])
		}
	}
}

func TestSamplesOffByDefault(t *testing.T) {
	cfg := Config{InjectionRate: 300, MfgThreads: 16, WebThreads: 16, DefaultThreads: 8}
	m, err := Run(cfg, testParams(), 32)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < NumClasses; c++ {
		if m.Samples[c] != nil {
			t.Fatal("samples collected without CollectSamples")
		}
	}
	if _, err := m.Percentiles(Manufacturing); err == nil {
		t.Fatal("Percentiles should fail without samples")
	}
	if _, err := m.ResponseCI(Manufacturing, 10); err == nil {
		t.Fatal("ResponseCI should fail without samples")
	}
}

// TestReplicateMeansWithinCI: independent-seed replications of the same
// configuration should mostly fall inside one run's batch-means CI —
// evidence the CI is calibrated for the simulator's autocorrelation.
func TestReplicateMeansWithinCI(t *testing.T) {
	sys := testParams()
	sys.CollectSamples = true
	sys.MeasureTime = 40
	cfg := Config{InjectionRate: 400, MfgThreads: 16, WebThreads: 20, DefaultThreads: 10}
	base, err := Run(cfg, sys, 33)
	if err != nil {
		t.Fatal(err)
	}
	ci, err := base.ResponseCI(DealerBrowse, 20)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	const reps = 10
	for r := 0; r < reps; r++ {
		m, err := Run(cfg, sys, 100+uint64(r))
		if err != nil {
			t.Fatal(err)
		}
		if ci.Contains(m.ResponseTimes[DealerBrowse]) {
			hits++
		}
	}
	if hits < reps/2 {
		t.Fatalf("only %d/%d replicate means fell inside the CI (%v±%v)", hits, reps, ci.Mean, ci.HalfWidth)
	}
}

func TestBreakdownSumsToResponseTime(t *testing.T) {
	cfg := Config{InjectionRate: 450, MfgThreads: 16, WebThreads: 16, DefaultThreads: 8}
	m, err := Run(cfg, testParams(), 41)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < NumClasses; c++ {
		var sum float64
		for p := 0; p < NumPools; p++ {
			if m.MeanPoolWait[c][p] < 0 || m.MeanPoolService[c][p] < 0 {
				t.Fatalf("%v/%v: negative breakdown", Class(c), Pool(p))
			}
			sum += m.MeanPoolWait[c][p] + m.MeanPoolService[c][p]
		}
		// Censored transactions contribute to ResponseTimes but not the
		// breakdown, so allow a modest residue.
		if math.Abs(sum-m.ResponseTimes[c])/m.ResponseTimes[c] > 0.10 {
			t.Fatalf("%v: breakdown %v vs response time %v", Class(c), sum, m.ResponseTimes[c])
		}
	}
}

func TestBreakdownLocatesBottleneck(t *testing.T) {
	// Starve the web pool: every class's dominant wait must be there.
	cfg := Config{InjectionRate: 560, MfgThreads: 32, WebThreads: 8, DefaultThreads: 32}
	m, err := Run(cfg, testParams(), 42)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < NumClasses; c++ {
		if m.Completed[c] == 0 {
			continue
		}
		if got := m.Bottleneck(Class(c)); got != WebPool {
			t.Fatalf("%v: bottleneck %v, want web (waits: %v)", Class(c), got, m.MeanPoolWait[c])
		}
	}
	// Flip it: starve default; dealer classes must move there, while
	// manufacturing (whose default-pool use is nil) must not.
	cfg2 := Config{InjectionRate: 560, MfgThreads: 32, WebThreads: 32, DefaultThreads: 3}
	m2, err := Run(cfg2, testParams(), 43)
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.Bottleneck(DealerPurchase); got != DefaultPool {
		t.Fatalf("purchase bottleneck %v, want default (waits: %v)", got, m2.MeanPoolWait[DealerPurchase])
	}
	if got := m2.Bottleneck(Manufacturing); got == DefaultPool {
		t.Fatal("manufacturing should not bottleneck on the default pool")
	}
}

func TestBreakdownServiceMatchesDemandAtLowLoad(t *testing.T) {
	cfg := Config{InjectionRate: 20, MfgThreads: 16, WebThreads: 16, DefaultThreads: 16}
	sys := testParams()
	m, err := Run(cfg, sys, 44)
	if err != nil {
		t.Fatal(err)
	}
	stretch := 1 + sys.ThreadOverhead*48
	for c, prof := range profiles() {
		perPool := map[Pool]float64{}
		for _, st := range prof.stages {
			perPool[st.pool] += (st.cpuMean + st.dbMean) * stretch
		}
		for p := 0; p < NumPools; p++ {
			want := perPool[Pool(p)]
			got := m.MeanPoolService[c][p]
			if want == 0 {
				if got != 0 {
					t.Fatalf("%v/%v: unexpected service time %v", Class(c), Pool(p), got)
				}
				continue
			}
			if math.Abs(got-want)/want > 0.20 {
				t.Fatalf("%v/%v: service %v, want ~%v", Class(c), Pool(p), got, want)
			}
		}
	}
}

func TestMixOverride(t *testing.T) {
	sys := testParams()
	sys.Mix = []float64{1, 0, 0, 0} // manufacturing only
	cfg := Config{InjectionRate: 300, MfgThreads: 16, WebThreads: 16, DefaultThreads: 8}
	m, err := Run(cfg, sys, 51)
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed[Manufacturing] == 0 {
		t.Fatal("no manufacturing completions with an all-mfg mix")
	}
	for _, c := range []Class{DealerPurchase, DealerManage, DealerBrowse} {
		if m.Completed[c] != 0 || m.Rejected[c] != 0 {
			t.Fatalf("%v transactions appeared despite zero share", c)
		}
	}
}

func TestMixValidation(t *testing.T) {
	bad := [][]float64{
		{0.5, 0.5},            // wrong length
		{0.5, 0.5, 0.5, 0.5},  // sums to 2
		{-0.1, 0.4, 0.4, 0.3}, // negative
	}
	cfg := Config{InjectionRate: 100, MfgThreads: 4, WebThreads: 4, DefaultThreads: 4}
	for i, mix := range bad {
		sys := testParams()
		sys.Mix = mix
		if _, err := Run(cfg, sys, 1); err == nil {
			t.Errorf("bad mix %d accepted", i)
		}
	}
	// A valid explicit mix equal to the defaults behaves.
	sys := testParams()
	sys.Mix = []float64{0.25, 0.25, 0.20, 0.30}
	if _, err := Run(cfg, sys, 1); err != nil {
		t.Fatal(err)
	}
}
