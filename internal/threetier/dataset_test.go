package threetier

import (
	"testing"
)

func tinySweep() SweepSpec {
	return SweepSpec{
		InjectionRates: []float64{300, 400},
		MfgThreads:     []int{8},
		WebThreads:     []int{12, 16},
		DefaultThreads: []int{4, 8},
		Replicates:     1,
	}
}

func TestSweepSizeAndConfigs(t *testing.T) {
	spec := tinySweep()
	if spec.Size() != 8 {
		t.Fatalf("size %d", spec.Size())
	}
	cfgs := spec.Configs()
	if len(cfgs) != 8 {
		t.Fatalf("%d configs", len(cfgs))
	}
	// Deterministic order: two calls agree.
	again := spec.Configs()
	for i := range cfgs {
		if cfgs[i] != again[i] {
			t.Fatal("Configs order not deterministic")
		}
	}
	seen := map[Config]bool{}
	for _, c := range cfgs {
		if seen[c] {
			t.Fatalf("duplicate config %+v", c)
		}
		seen[c] = true
	}
}

func TestCollectSchemaAndDeterminism(t *testing.T) {
	sys := testParams()
	sys.MeasureTime = 8
	ds, err := Collect(tinySweep(), sys, 42)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 8 {
		t.Fatalf("%d samples", ds.Len())
	}
	if ds.NumFeatures() != 4 || ds.NumTargets() != 5 {
		t.Fatal("schema wrong")
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// Deterministic end to end.
	again, err := Collect(tinySweep(), sys, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Samples {
		for j := range ds.Samples[i].Y {
			if ds.Samples[i].Y[j] != again.Samples[i].Y[j] {
				t.Fatal("Collect not deterministic")
			}
		}
	}
	// Different seed differs.
	other, err := Collect(tinySweep(), sys, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range ds.Samples {
		for j := range ds.Samples[i].Y {
			if ds.Samples[i].Y[j] != other.Samples[i].Y[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds gave identical datasets")
	}
}

func TestCollectReplicatesReduceNoise(t *testing.T) {
	// This is a statistical smoke test: averaged replicates should not
	// produce wildly different values than a single run, and the sample
	// count stays the same (replicates average, not append).
	sys := testParams()
	sys.MeasureTime = 6
	spec := tinySweep()
	spec.Replicates = 3
	ds, err := Collect(spec, sys, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != spec.Size() {
		t.Fatalf("replicates changed sample count: %d", ds.Len())
	}
	for _, s := range ds.Samples {
		for j, v := range s.Y {
			if v < 0 && j < 4 {
				t.Fatalf("negative response time %v", v)
			}
		}
	}
}

func TestCollectRejectsBadConfig(t *testing.T) {
	spec := tinySweep()
	spec.MfgThreads = []int{0}
	if _, err := Collect(spec, testParams(), 1); err == nil {
		t.Fatal("invalid sweep accepted")
	}
}

func TestDefaultSweepSane(t *testing.T) {
	spec := DefaultSweep()
	if spec.Size() < 100 {
		t.Fatalf("default sweep suspiciously small: %d", spec.Size())
	}
	for _, c := range spec.Configs() {
		if err := c.Validate(); err != nil {
			t.Fatalf("default sweep contains invalid config: %v", err)
		}
	}
}
