package httpx

import (
	"net/http"
	"strconv"
	"time"

	"nnwc/internal/obs"
	"nnwc/internal/obs/metrics"
)

// Trace-propagation headers. Dist workers stamp every coordinator
// request with them; Instrument extracts them on the server side so a
// request's span carries the cluster-wide (run, worker) identity instead
// of just a TCP peer address.
const (
	// HeaderRun carries the run/job ID the request belongs to.
	HeaderRun = "X-NNWC-Run"
	// HeaderWorker carries the sending worker's ID.
	HeaderWorker = "X-NNWC-Worker"
	// HeaderSpan carries the client-side parent span name, when any.
	HeaderSpan = "X-NNWC-Span"
)

// Server-side request metrics, shared by every instrumented listener
// (serve plane, dist coordinator). Labeled by service so one process
// hosting both keeps them apart.
var (
	httpRequestsTotal = metrics.Default().CounterVec(
		"nnwc_http_requests_total",
		"HTTP requests served, by service, route and status code.",
		"service", "route", "code")
	httpRequestMs = metrics.Default().HistogramVec(
		"nnwc_http_request_ms",
		"HTTP request wall time in milliseconds, by service and route.",
		metrics.DefMillisBuckets,
		"service", "route")
)

// InstrumentOptions parameterizes Instrument.
type InstrumentOptions struct {
	// Service labels the metrics ("serve", "dist").
	Service string
	// Route maps a request to its metrics label. The default is
	// "METHOD /path" — override for routes with high-cardinality path
	// segments (artifact hashes) so the label space stays bounded.
	Route func(r *http.Request) string
	// Trace, when enabled, receives one "http_request" event per request:
	// a server-side span carrying the route, status, latency, and the
	// propagated (run, worker) identity from the trace headers. Request
	// events are wall-clock narrative, so CanonicalizeJSONL drops them.
	Trace *obs.Trace
}

// statusRecorder captures the response status for metrics/span labels.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (s *statusRecorder) WriteHeader(code int) {
	s.code = code
	s.ResponseWriter.WriteHeader(code)
}

// Flush passes through so instrumented streaming handlers keep working.
func (s *statusRecorder) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Instrument wraps h with server-side observability: per-route request
// counts and latency histograms on the process-wide registry, plus an
// optional span event per request with the trace-header identity
// extracted. It is the one middleware both the serve plane and the dist
// coordinator mount, so "what is this server doing right now" reads the
// same way everywhere.
func Instrument(opt InstrumentOptions, h http.Handler) http.Handler {
	route := opt.Route
	if route == nil {
		route = func(r *http.Request) string { return r.Method + " " + r.URL.Path }
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(rec, r)
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		rt := route(r)
		httpRequestsTotal.Inc(opt.Service, rt, strconv.Itoa(rec.code))
		httpRequestMs.Observe(ms, opt.Service, rt)
		if opt.Trace.Enabled() {
			opt.Trace.Emit("http_request",
				obs.String("service", opt.Service),
				obs.String("route", rt),
				obs.Int("code", rec.code),
				obs.String("job", r.Header.Get(HeaderRun)),
				obs.String("worker", r.Header.Get(HeaderWorker)),
				obs.String("addr", r.RemoteAddr),
				obs.Float("ms", ms))
		}
	})
}
