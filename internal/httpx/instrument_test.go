package httpx

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"nnwc/internal/obs"
)

func TestInstrumentEmitsSpanWithTraceHeaders(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewTrace(obs.NewWriterSink(&buf))
	h := Instrument(InstrumentOptions{Service: "test", Trace: tr},
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusTeapot)
		}))
	req := httptest.NewRequest(http.MethodPost, "/dist/lease", nil)
	req.Header.Set(HeaderRun, "run-123")
	req.Header.Set(HeaderWorker, "worker-7")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	if rec.Code != http.StatusTeapot {
		t.Fatalf("status = %d, want %d", rec.Code, http.StatusTeapot)
	}
	var ev map[string]any
	if err := json.Unmarshal(buf.Bytes(), &ev); err != nil {
		t.Fatalf("decoding span event %q: %v", buf.String(), err)
	}
	for k, want := range map[string]any{
		"ev":      "http_request",
		"service": "test",
		"route":   "POST /dist/lease",
		"code":    float64(http.StatusTeapot),
		"job":     "run-123",
		"worker":  "worker-7",
	} {
		if ev[k] != want {
			t.Fatalf("event[%q] = %v, want %v (event: %v)", k, ev[k], want, ev)
		}
	}
	if _, ok := ev["ms"]; !ok {
		t.Fatalf("event missing latency field: %v", ev)
	}
}

func TestInstrumentDefaultStatusIsOK(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewTrace(obs.NewWriterSink(&buf))
	h := Instrument(InstrumentOptions{Service: "test", Trace: tr},
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte("ok")) // implicit 200, WriteHeader never called
		}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var ev map[string]any
	if err := json.Unmarshal(buf.Bytes(), &ev); err != nil {
		t.Fatal(err)
	}
	if ev["code"] != float64(http.StatusOK) {
		t.Fatalf("code = %v, want 200", ev["code"])
	}
}

func TestInstrumentRouteOverride(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewTrace(obs.NewWriterSink(&buf))
	h := Instrument(InstrumentOptions{
		Service: "test",
		Route:   func(r *http.Request) string { return "GET /artifact/{sha}" },
		Trace:   tr,
	}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/artifact/deadbeef", nil))
	var ev map[string]any
	if err := json.Unmarshal(buf.Bytes(), &ev); err != nil {
		t.Fatal(err)
	}
	if ev["route"] != "GET /artifact/{sha}" {
		t.Fatalf("route = %v, want collapsed label", ev["route"])
	}
}

func TestInstrumentNilTraceStillServes(t *testing.T) {
	h := Instrument(InstrumentOptions{Service: "test"},
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusNoContent)
		}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if rec.Code != http.StatusNoContent {
		t.Fatalf("status = %d, want 204", rec.Code)
	}
}

func TestContextTraceRoundTrip(t *testing.T) {
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	ctx := req.Context()
	if got := obs.TraceFromContext(ctx); got != nil {
		t.Fatalf("empty context carries a trace: %v", got)
	}
	var buf bytes.Buffer
	tr := obs.NewTrace(obs.NewWriterSink(&buf))
	ctx = obs.ContextWithTrace(ctx, tr)
	if got := obs.TraceFromContext(ctx); got != tr {
		t.Fatalf("trace did not round-trip through the context")
	}
}
