// Package httpx is the one place the repo constructs http.Servers. Every
// listener — the serve plane, the dist coordinator, debug endpoints —
// goes through NewServer so no server ships without connection timeouts:
// a slow or stalled client must never be able to pin a connection (and
// its goroutine) forever.
package httpx

import (
	"net/http"
	"time"
)

// Timeouts bounds a server's per-connection I/O. Zero fields take the
// production defaults below; a negative field disables that timeout
// explicitly (use sparingly — streaming endpoints only).
type Timeouts struct {
	// ReadHeader bounds reading one request's header block (default 5s).
	ReadHeader time.Duration
	// Read bounds reading one whole request, body included (default 30s).
	Read time.Duration
	// Write bounds writing one whole response (default 30s).
	Write time.Duration
	// Idle bounds how long a keep-alive connection may sit between
	// requests (default 120s).
	Idle time.Duration
}

// Default production values. Request/response bodies in this repo are
// small JSON documents or model artifacts of at most a few MB, so 30s of
// I/O is generous; 120s idle matches common load-balancer keep-alives.
const (
	DefaultReadHeaderTimeout = 5 * time.Second
	DefaultReadTimeout       = 30 * time.Second
	DefaultWriteTimeout      = 30 * time.Second
	DefaultIdleTimeout       = 120 * time.Second
)

// WithDefaults resolves zero fields to the defaults and negative fields
// to 0 (net/http's "no timeout").
func (t Timeouts) WithDefaults() Timeouts {
	t.ReadHeader = resolve(t.ReadHeader, DefaultReadHeaderTimeout)
	t.Read = resolve(t.Read, DefaultReadTimeout)
	t.Write = resolve(t.Write, DefaultWriteTimeout)
	t.Idle = resolve(t.Idle, DefaultIdleTimeout)
	return t
}

func resolve(v, def time.Duration) time.Duration {
	switch {
	case v == 0:
		return def
	case v < 0:
		return 0
	}
	return v
}

// NewServer returns an http.Server for h with every connection timeout
// set. Callers bind their own listener and call Serve, which keeps
// address selection (and "127.0.0.1:0" in tests) with the caller.
func NewServer(h http.Handler, t Timeouts) *http.Server {
	t = t.WithDefaults()
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: t.ReadHeader,
		ReadTimeout:       t.Read,
		WriteTimeout:      t.Write,
		IdleTimeout:       t.Idle,
	}
}
