package httpx

import (
	"net/http"
	"testing"
	"time"
)

func TestNewServerDefaults(t *testing.T) {
	s := NewServer(http.NewServeMux(), Timeouts{})
	if s.ReadHeaderTimeout != DefaultReadHeaderTimeout {
		t.Errorf("ReadHeaderTimeout = %s, want %s", s.ReadHeaderTimeout, DefaultReadHeaderTimeout)
	}
	if s.ReadTimeout != DefaultReadTimeout {
		t.Errorf("ReadTimeout = %s, want %s", s.ReadTimeout, DefaultReadTimeout)
	}
	if s.WriteTimeout != DefaultWriteTimeout {
		t.Errorf("WriteTimeout = %s, want %s", s.WriteTimeout, DefaultWriteTimeout)
	}
	if s.IdleTimeout != DefaultIdleTimeout {
		t.Errorf("IdleTimeout = %s, want %s", s.IdleTimeout, DefaultIdleTimeout)
	}
}

func TestNewServerOverridesAndDisable(t *testing.T) {
	s := NewServer(nil, Timeouts{Read: time.Minute, Write: -1})
	if s.ReadTimeout != time.Minute {
		t.Errorf("ReadTimeout = %s, want 1m", s.ReadTimeout)
	}
	if s.WriteTimeout != 0 {
		t.Errorf("negative Write should disable the timeout, got %s", s.WriteTimeout)
	}
	if s.IdleTimeout != DefaultIdleTimeout {
		t.Errorf("IdleTimeout = %s, want default", s.IdleTimeout)
	}
}
