package queueing

import (
	"math"
	"testing"
	"testing/quick"

	"nnwc/internal/rng"
)

func TestMM1KnownValues(t *testing.T) {
	q := MM1{Lambda: 5, Mu: 10}
	if q.Utilization() != 0.5 {
		t.Fatal("utilization wrong")
	}
	w, err := q.MeanResponseTime()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-0.2) > 1e-12 {
		t.Fatalf("W = %v, want 0.2", w)
	}
	l, err := q.MeanQueueLength()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l-1) > 1e-12 {
		t.Fatalf("L = %v, want 1", l)
	}
}

func TestMM1Unstable(t *testing.T) {
	q := MM1{Lambda: 10, Mu: 10}
	if _, err := q.MeanResponseTime(); err != ErrUnstable {
		t.Fatal("rho=1 not rejected")
	}
	if _, err := q.MeanQueueLength(); err != ErrUnstable {
		t.Fatal("rho=1 not rejected")
	}
}

func TestMMCReducesToMM1(t *testing.T) {
	// With c=1 the Erlang-C wait equals the M/M/1 wait.
	c1 := MMC{Lambda: 3, Mu: 5, C: 1}
	w1, err := c1.MeanResponseTime()
	if err != nil {
		t.Fatal(err)
	}
	m1 := MM1{Lambda: 3, Mu: 5}
	wm, err := m1.MeanResponseTime()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w1-wm) > 1e-12 {
		t.Fatalf("M/M/1 %v vs M/M/c(1) %v", wm, w1)
	}
}

func TestErlangCKnownValue(t *testing.T) {
	// Classic check: a = 2 Erlangs offered to c = 3 servers →
	// C(3, 2) ≈ 0.44444 (Erlang C table value 4/9).
	q := MMC{Lambda: 2, Mu: 1, C: 3}
	pc, err := q.ErlangC()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pc-4.0/9.0) > 1e-9 {
		t.Fatalf("Erlang C = %v, want %v", pc, 4.0/9.0)
	}
}

func TestErlangCInUnitInterval(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := rng.New(seed)
		c := 1 + src.Intn(32)
		mu := 0.5 + src.Float64()*5
		lambda := src.Float64() * float64(c) * mu * 0.95
		if lambda <= 0 {
			return true
		}
		pc, err := MMC{Lambda: lambda, Mu: mu, C: c}.ErlangC()
		if err != nil {
			return false
		}
		return pc >= 0 && pc <= 1
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMMCUnstableRejected(t *testing.T) {
	q := MMC{Lambda: 100, Mu: 1, C: 4}
	if _, err := q.ErlangC(); err != ErrUnstable {
		t.Fatal("overloaded M/M/c accepted")
	}
}

func TestMMCBadServerCount(t *testing.T) {
	if _, err := (MMC{Lambda: 1, Mu: 10, C: 0}).ErlangC(); err == nil {
		t.Fatal("c=0 accepted")
	}
}

func TestMoreServersReduceWait(t *testing.T) {
	prev := math.Inf(1)
	for c := 2; c <= 12; c++ {
		w, err := (MMC{Lambda: 1.5, Mu: 1, C: c}).MeanWait()
		if err != nil {
			t.Fatal(err)
		}
		if w >= prev {
			t.Fatalf("wait did not decrease at c=%d: %v >= %v", c, w, prev)
		}
		prev = w
	}
}

func TestLittlesLaw(t *testing.T) {
	// L = λ·W must hold by construction; verify the API is consistent.
	q := MMC{Lambda: 7, Mu: 2, C: 5}
	w, err := q.MeanResponseTime()
	if err != nil {
		t.Fatal(err)
	}
	l, err := q.MeanQueueLength()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l-7*w) > 1e-12 {
		t.Fatalf("Little's law broken: L=%v, λW=%v", l, 7*w)
	}
}

func TestResponseTimePercentileMonotone(t *testing.T) {
	q := MMC{Lambda: 10, Mu: 1, C: 12}
	prev := 0.0
	for _, p := range []float64{0.5, 0.9, 0.95, 0.99} {
		v, err := q.ResponseTimePercentileApprox(p)
		if err != nil {
			t.Fatal(err)
		}
		if v <= prev {
			t.Fatalf("percentile %v not monotone: %v <= %v", p, v, prev)
		}
		prev = v
	}
}

func TestPercentileBadInput(t *testing.T) {
	q := MMC{Lambda: 1, Mu: 1, C: 2}
	for _, p := range []float64{0, 1, -0.5, 2} {
		if _, err := q.ResponseTimePercentileApprox(p); err == nil {
			t.Fatalf("percentile %v accepted", p)
		}
	}
}

func TestWaitGrowsWithLoad(t *testing.T) {
	prev := 0.0
	for _, lambda := range []float64{2, 6, 10, 13, 15} {
		w, err := (MMC{Lambda: lambda, Mu: 1, C: 16}).MeanWait()
		if err != nil {
			t.Fatal(err)
		}
		if w < prev {
			t.Fatalf("wait decreased with load at λ=%v", lambda)
		}
		prev = w
	}
}
