// Package queueing provides closed-form results from queueing theory
// (M/M/1, M/M/c with the Erlang-C formula). The three-tier simulator's
// thread pools are, at their core, multi-server queues; these formulas act
// as an analytic oracle against which the discrete-event simulator is
// validated in tests, so the synthetic data source substituting for the
// paper's proprietary workload is itself verifiable.
package queueing

import (
	"errors"
	"math"
)

// ErrUnstable is returned when the offered load meets or exceeds capacity
// (ρ ≥ 1), where steady-state queue metrics are undefined.
var ErrUnstable = errors.New("queueing: utilization >= 1, system is unstable")

// MM1 describes a single-server queue with Poisson arrivals (rate λ) and
// exponential service (rate μ).
type MM1 struct {
	Lambda, Mu float64
}

// Utilization returns ρ = λ/μ.
func (q MM1) Utilization() float64 { return q.Lambda / q.Mu }

// MeanResponseTime returns W = 1/(μ−λ), the mean time in system.
func (q MM1) MeanResponseTime() (float64, error) {
	if q.Utilization() >= 1 {
		return 0, ErrUnstable
	}
	return 1 / (q.Mu - q.Lambda), nil
}

// MeanQueueLength returns L = ρ/(1−ρ), the mean number in system.
func (q MM1) MeanQueueLength() (float64, error) {
	rho := q.Utilization()
	if rho >= 1 {
		return 0, ErrUnstable
	}
	return rho / (1 - rho), nil
}

// MMC describes a c-server queue with Poisson arrivals (rate λ) and
// exponential service (rate μ per server).
type MMC struct {
	Lambda, Mu float64
	C          int
}

// Utilization returns ρ = λ/(c·μ).
func (q MMC) Utilization() float64 { return q.Lambda / (float64(q.C) * q.Mu) }

// ErlangC returns the probability that an arriving job must wait (all c
// servers busy), computed with a numerically stable iterative form.
func (q MMC) ErlangC() (float64, error) {
	rho := q.Utilization()
	if rho >= 1 {
		return 0, ErrUnstable
	}
	if q.C < 1 {
		return 0, errors.New("queueing: server count must be >= 1")
	}
	a := q.Lambda / q.Mu // offered load in Erlangs
	// Iteratively compute the Erlang-B blocking probability, then convert
	// to Erlang C. B(0)=1; B(k)=a·B(k−1)/(k+a·B(k−1)).
	b := 1.0
	for k := 1; k <= q.C; k++ {
		b = a * b / (float64(k) + a*b)
	}
	c := b / (1 - rho*(1-b))
	return c, nil
}

// MeanWait returns Wq, the mean time spent waiting for a server.
func (q MMC) MeanWait() (float64, error) {
	pc, err := q.ErlangC()
	if err != nil {
		return 0, err
	}
	return pc / (float64(q.C)*q.Mu - q.Lambda), nil
}

// MeanResponseTime returns W = Wq + 1/μ, the mean time in system.
func (q MMC) MeanResponseTime() (float64, error) {
	wq, err := q.MeanWait()
	if err != nil {
		return 0, err
	}
	return wq + 1/q.Mu, nil
}

// MeanQueueLength returns L = λ·W by Little's law.
func (q MMC) MeanQueueLength() (float64, error) {
	w, err := q.MeanResponseTime()
	if err != nil {
		return 0, err
	}
	return q.Lambda * w, nil
}

// ResponseTimePercentileApprox returns an approximate p-quantile (0<p<1)
// of the M/M/c response-time distribution, using the standard
// approximation that the conditional wait is exponential with rate
// cμ−λ and mixing it with the exponential service time.
func (q MMC) ResponseTimePercentileApprox(p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, errors.New("queueing: percentile must be in (0,1)")
	}
	pc, err := q.ErlangC()
	if err != nil {
		return 0, err
	}
	// P(W > t) ≈ pc·exp(−(cμ−λ)t) + (1−pc)·exp(−μt) — a crude but
	// monotone mixture; invert numerically by bisection.
	tail := func(t float64) float64 {
		return pc*math.Exp(-(float64(q.C)*q.Mu-q.Lambda)*t) + (1-pc)*math.Exp(-q.Mu*t)
	}
	lo, hi := 0.0, 1.0
	for tail(hi) > 1-p {
		hi *= 2
		if hi > 1e12 {
			return 0, errors.New("queueing: percentile search diverged")
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if tail(mid) > 1-p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}
