package queueing

import (
	"errors"
	"math"

	"nnwc/internal/stats"
)

// MMCK describes an M/M/c/K queue: c servers, system capacity K (waiting
// room K−c), Poisson arrivals at rate λ, exponential service at rate μ per
// server. Arrivals finding the system full are lost — precisely the
// admission-control behaviour of the three-tier simulator's bounded thread
// pools, which makes this the analytic oracle for their rejection rates.
type MMCK struct {
	Lambda, Mu float64
	C, K       int
}

// validate reports parameter errors.
func (q MMCK) validate() error {
	if q.C < 1 {
		return errors.New("queueing: M/M/c/K needs at least one server")
	}
	if q.K < q.C {
		return errors.New("queueing: capacity K must be >= server count c")
	}
	if q.Lambda <= 0 || q.Mu <= 0 {
		return errors.New("queueing: rates must be positive")
	}
	return nil
}

// stateProbabilities returns p_0..p_K. Because the state space is finite
// the chain is ergodic for any load, including ρ ≥ 1.
func (q MMCK) stateProbabilities() ([]float64, error) {
	if err := q.validate(); err != nil {
		return nil, err
	}
	a := q.Lambda / q.Mu
	// Build unnormalized terms iteratively for numerical stability.
	terms := make([]float64, q.K+1)
	terms[0] = 1
	for n := 1; n <= q.K; n++ {
		rate := float64(n)
		if n > q.C {
			rate = float64(q.C)
		}
		terms[n] = terms[n-1] * a / rate
	}
	var sum float64
	for _, t := range terms {
		sum += t
	}
	for n := range terms {
		terms[n] /= sum
	}
	return terms, nil
}

// BlockingProbability returns p_K, the fraction of arrivals rejected.
func (q MMCK) BlockingProbability() (float64, error) {
	p, err := q.stateProbabilities()
	if err != nil {
		return 0, err
	}
	return p[q.K], nil
}

// Throughput returns the accepted-traffic rate λ·(1 − p_K).
func (q MMCK) Throughput() (float64, error) {
	pk, err := q.BlockingProbability()
	if err != nil {
		return 0, err
	}
	return q.Lambda * (1 - pk), nil
}

// MeanNumberInSystem returns L = Σ n·p_n.
func (q MMCK) MeanNumberInSystem() (float64, error) {
	p, err := q.stateProbabilities()
	if err != nil {
		return 0, err
	}
	var l float64
	for n, pn := range p {
		l += float64(n) * pn
	}
	return l, nil
}

// MeanResponseTime returns W = L / λ_accepted (Little's law over accepted
// jobs).
func (q MMCK) MeanResponseTime() (float64, error) {
	l, err := q.MeanNumberInSystem()
	if err != nil {
		return 0, err
	}
	tput, err := q.Throughput()
	if err != nil {
		return 0, err
	}
	if stats.ExactZero(tput) {
		return 0, errors.New("queueing: zero accepted throughput")
	}
	return l / tput, nil
}

// MeanWait returns Wq = W − 1/μ.
func (q MMCK) MeanWait() (float64, error) {
	w, err := q.MeanResponseTime()
	if err != nil {
		return 0, err
	}
	wq := w - 1/q.Mu
	if wq < 0 {
		wq = 0 // numeric guard for near-zero waits
	}
	return wq, nil
}

// Utilization returns the per-server busy fraction of accepted work,
// λ(1−p_K)/(c·μ), always in [0, 1].
func (q MMCK) Utilization() (float64, error) {
	tput, err := q.Throughput()
	if err != nil {
		return 0, err
	}
	u := tput / (float64(q.C) * q.Mu)
	return math.Min(u, 1), nil
}
