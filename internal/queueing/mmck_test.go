package queueing

import (
	"math"
	"testing"
	"testing/quick"

	"nnwc/internal/rng"
)

func TestMMCKReducesToErlangB(t *testing.T) {
	// K = c (no waiting room) is the Erlang-B loss system; check against
	// the classic value B(c=2, a=1) = (1/2)/(1+1+1/2) = 0.2.
	q := MMCK{Lambda: 1, Mu: 1, C: 2, K: 2}
	pb, err := q.BlockingProbability()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pb-0.2) > 1e-12 {
		t.Fatalf("Erlang-B blocking %v, want 0.2", pb)
	}
}

func TestMMCKApproachesMMCForLargeK(t *testing.T) {
	// With a huge waiting room and ρ < 1, the M/M/c/K metrics converge to
	// the infinite-capacity M/M/c ones.
	base := MMC{Lambda: 10, Mu: 1.5, C: 8}
	wInf, err := base.MeanResponseTime()
	if err != nil {
		t.Fatal(err)
	}
	finite := MMCK{Lambda: 10, Mu: 1.5, C: 8, K: 500}
	wFin, err := finite.MeanResponseTime()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wFin-wInf)/wInf > 1e-6 {
		t.Fatalf("large-K M/M/c/K response %v, M/M/c %v", wFin, wInf)
	}
	pb, err := finite.BlockingProbability()
	if err != nil {
		t.Fatal(err)
	}
	if pb > 1e-9 {
		t.Fatalf("large-K blocking %v should vanish", pb)
	}
}

func TestMMCKStableUnderOverload(t *testing.T) {
	// Unlike M/M/c, the finite system has well-defined metrics at ρ > 1,
	// with blocking absorbing the excess.
	q := MMCK{Lambda: 100, Mu: 1, C: 8, K: 40}
	pb, err := q.BlockingProbability()
	if err != nil {
		t.Fatal(err)
	}
	if pb < 0.9 {
		t.Fatalf("overloaded blocking %v, want ≈ 1−8/100", pb)
	}
	tput, err := q.Throughput()
	if err != nil {
		t.Fatal(err)
	}
	// Accepted throughput cannot exceed service capacity c·μ.
	if tput > 8.0001 {
		t.Fatalf("throughput %v exceeds capacity", tput)
	}
	u, err := q.Utilization()
	if err != nil {
		t.Fatal(err)
	}
	if u < 0.99 {
		t.Fatalf("overloaded utilization %v, want ~1", u)
	}
}

func TestMMCKProbabilitiesSumToOne(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := rng.New(seed)
		c := 1 + src.Intn(16)
		k := c + src.Intn(100)
		q := MMCK{Lambda: 0.1 + src.Float64()*50, Mu: 0.1 + src.Float64()*5, C: c, K: k}
		p, err := q.stateProbabilities()
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range p {
			if v < 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMMCKBlockingMonotoneInLoad(t *testing.T) {
	prev := 0.0
	for _, lambda := range []float64{1, 4, 8, 12, 20} {
		pb, err := (MMCK{Lambda: lambda, Mu: 1, C: 8, K: 24}).BlockingProbability()
		if err != nil {
			t.Fatal(err)
		}
		if pb < prev {
			t.Fatalf("blocking decreased with load at λ=%v", lambda)
		}
		prev = pb
	}
}

func TestMMCKBlockingMonotoneInCapacity(t *testing.T) {
	prev := 1.0
	for _, k := range []int{8, 12, 20, 40, 80} {
		pb, err := (MMCK{Lambda: 7, Mu: 1, C: 8, K: k}).BlockingProbability()
		if err != nil {
			t.Fatal(err)
		}
		if pb > prev {
			t.Fatalf("blocking increased with capacity at K=%d", k)
		}
		prev = pb
	}
}

func TestMMCKValidation(t *testing.T) {
	bad := []MMCK{
		{Lambda: 1, Mu: 1, C: 0, K: 5},
		{Lambda: 1, Mu: 1, C: 4, K: 3},
		{Lambda: 0, Mu: 1, C: 1, K: 1},
		{Lambda: 1, Mu: 0, C: 1, K: 1},
	}
	for i, q := range bad {
		if _, err := q.BlockingProbability(); err == nil {
			t.Errorf("bad system %d accepted", i)
		}
	}
}

func TestMMCKLittleLawConsistency(t *testing.T) {
	q := MMCK{Lambda: 12, Mu: 2, C: 4, K: 20}
	l, err := q.MeanNumberInSystem()
	if err != nil {
		t.Fatal(err)
	}
	w, err := q.MeanResponseTime()
	if err != nil {
		t.Fatal(err)
	}
	tput, err := q.Throughput()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l-tput*w) > 1e-9 {
		t.Fatalf("Little's law: L=%v, λ'W=%v", l, tput*w)
	}
	wq, err := q.MeanWait()
	if err != nil {
		t.Fatal(err)
	}
	if wq < 0 || wq > w {
		t.Fatalf("wait %v outside [0, %v]", wq, w)
	}
}
