// Package plot renders the paper's figures as terminal graphics and emits
// machine-readable CSV series. Figures 5 and 6 (actual 'o' vs predicted
// 'x' per sample index) become ASCII scatter charts; Figures 4, 7 and 8
// (3-D response surfaces) become ASCII heat maps plus gnuplot-ready grids.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"

	"nnwc/internal/stats"
)

// Scatter renders one indicator's actual ('o') and predicted ('x') values
// against sample index, the layout of the paper's Figures 5 and 6. Points
// that coincide in a cell render as '*'.
type Scatter struct {
	Title         string
	YLabel        string
	Actual, Pred  []float64
	Width, Height int // character cell budget; defaults 72×16
}

// Render writes the chart to w.
func (s Scatter) Render(w io.Writer) error {
	width, height := s.Width, s.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 16
	}
	n := len(s.Actual)
	if n == 0 || n != len(s.Pred) {
		return fmt.Errorf("plot: scatter needs equal, non-zero series (got %d, %d)", len(s.Actual), len(s.Pred))
	}

	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		for _, v := range [2]float64{s.Actual[i], s.Pred[i]} {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if stats.ExactEqual(hi, lo) {
		hi = lo + 1
	}
	pad := (hi - lo) * 0.05
	lo, hi = lo-pad, hi+pad

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	cellFor := func(i int, v float64) (row, col int) {
		col = 0
		if n > 1 {
			col = i * (width - 1) / (n - 1)
		}
		row = height - 1 - int((v-lo)/(hi-lo)*float64(height-1)+0.5)
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		return row, col
	}
	put := func(i int, v float64, mark byte) {
		r, c := cellFor(i, v)
		switch grid[r][c] {
		case ' ':
			grid[r][c] = mark
		case mark:
		default:
			grid[r][c] = '*'
		}
	}
	for i := 0; i < n; i++ {
		put(i, s.Actual[i], 'o')
		put(i, s.Pred[i], 'x')
	}

	if s.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", s.Title); err != nil {
			return err
		}
	}
	axisW := 10
	for r, rowBytes := range grid {
		label := ""
		switch r {
		case 0:
			label = fmt.Sprintf("%9.3g", hi)
		case height - 1:
			label = fmt.Sprintf("%9.3g", lo)
		case (height - 1) / 2:
			label = fmt.Sprintf("%9.3g", (hi+lo)/2)
		}
		if _, err := fmt.Fprintf(w, "%*s |%s\n", axisW-1, label, string(rowBytes)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%*s +%s\n", axisW-1, "", strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%*s  1%*s%d   (sample index; o=actual x=predicted *=both)\n",
		axisW-1, s.YLabel, width-len(fmt.Sprint(n))-1, "", n); err != nil {
		return err
	}
	return nil
}

// HeatMap renders a 2-D surface as character shades, the terminal stand-in
// for the paper's 3-D diagrams. Z[i][j] corresponds to (XValues[i],
// YValues[j]); rows of the printout iterate Y (descending) and columns X.
type HeatMap struct {
	Title            string
	XLabel, YLabel   string
	XValues, YValues []float64
	Z                [][]float64
	// Marks overlays characters at grid cells, e.g. the location of a
	// recommended optimum. Keyed by [i][j] grid coordinates.
	Marks map[[2]int]byte
}

// shades from low to high.
const shadeRamp = " .:-=+*#%@"

// Render writes the heat map to w.
func (h HeatMap) Render(w io.Writer) error {
	if len(h.Z) == 0 || len(h.Z) != len(h.XValues) {
		return fmt.Errorf("plot: heat map Z rows (%d) must match XValues (%d)", len(h.Z), len(h.XValues))
	}
	for _, row := range h.Z {
		if len(row) != len(h.YValues) {
			return fmt.Errorf("plot: heat map Z columns must match YValues")
		}
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range h.Z {
		for _, v := range row {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if stats.ExactEqual(hi, lo) {
		hi = lo + 1
	}

	if h.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", h.Title); err != nil {
			return err
		}
	}
	// Y descending so larger values print on top, like a plot.
	for j := len(h.YValues) - 1; j >= 0; j-- {
		if _, err := fmt.Fprintf(w, "%8.3g |", h.YValues[j]); err != nil {
			return err
		}
		for i := range h.XValues {
			ch := shadeRamp[int((h.Z[i][j]-lo)/(hi-lo)*float64(len(shadeRamp)-1))]
			if m, ok := h.Marks[[2]int{i, j}]; ok {
				ch = m
			}
			if _, err := fmt.Fprintf(w, " %c", ch); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%8s +%s\n", "", strings.Repeat("-", 2*len(h.XValues))); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%8s  ", h.YLabel); err != nil {
		return err
	}
	for _, xv := range h.XValues {
		if _, err := fmt.Fprintf(w, "%v ", compactNum(xv)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, " (%s; shade low→high: %q)\n", h.XLabel, shadeRamp); err != nil {
		return err
	}
	return nil
}

func compactNum(v float64) string {
	if stats.ExactEqual(v, math.Trunc(v)) && math.Abs(v) < 100 {
		return fmt.Sprintf("%d", int(v))
	}
	return fmt.Sprintf("%.3g", v)
}

// WriteSurfaceCSV emits the surface as x,y,z rows (gnuplot splot format,
// with a blank line between x-blocks).
func WriteSurfaceCSV(w io.Writer, xValues, yValues []float64, z [][]float64) error {
	if _, err := fmt.Fprintln(w, "x,y,z"); err != nil {
		return err
	}
	for i, xv := range xValues {
		for j, yv := range yValues {
			if _, err := fmt.Fprintf(w, "%g,%g,%g\n", xv, yv, z[i][j]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteSeriesCSV emits index,actual,predicted rows (the data of Figures
// 5/6).
func WriteSeriesCSV(w io.Writer, actual, pred []float64) error {
	if len(actual) != len(pred) {
		return fmt.Errorf("plot: series length mismatch")
	}
	if _, err := fmt.Fprintln(w, "index,actual,predicted"); err != nil {
		return err
	}
	for i := range actual {
		if _, err := fmt.Fprintf(w, "%d,%g,%g\n", i+1, actual[i], pred[i]); err != nil {
			return err
		}
	}
	return nil
}
