package plot

import (
	"bytes"
	"strings"
	"testing"
)

func TestScatterRenders(t *testing.T) {
	var buf bytes.Buffer
	s := Scatter{
		Title:  "test chart",
		YLabel: "rt",
		Actual: []float64{1, 2, 3, 4, 5},
		Pred:   []float64{1.1, 2.2, 2.9, 4.5, 4.9},
		Width:  40,
		Height: 10,
	}
	if err := s.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "test chart") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "x") {
		t.Fatal("marks missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + axis + footer
	if len(lines) != 1+10+1+1 {
		t.Fatalf("%d lines rendered", len(lines))
	}
}

func TestScatterCoincidentPointsStar(t *testing.T) {
	var buf bytes.Buffer
	s := Scatter{Actual: []float64{5, 5}, Pred: []float64{5, 5}, Width: 10, Height: 5}
	if err := s.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Fatal("coincident points should render '*'")
	}
}

func TestScatterErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := (Scatter{}).Render(&buf); err == nil {
		t.Fatal("empty scatter accepted")
	}
	if err := (Scatter{Actual: []float64{1}, Pred: []float64{1, 2}}).Render(&buf); err == nil {
		t.Fatal("mismatched series accepted")
	}
}

func TestScatterConstantSeries(t *testing.T) {
	// A constant series must not divide by zero.
	var buf bytes.Buffer
	s := Scatter{Actual: []float64{3, 3, 3}, Pred: []float64{3, 3, 3}}
	if err := s.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestHeatMapRenders(t *testing.T) {
	var buf bytes.Buffer
	h := HeatMap{
		Title:   "surface",
		XLabel:  "default",
		YLabel:  "web",
		XValues: []float64{1, 2, 3},
		YValues: []float64{10, 20},
		Z:       [][]float64{{0, 1}, {2, 3}, {4, 5}},
	}
	if err := h.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "surface") || !strings.Contains(out, "default") {
		t.Fatal("labels missing")
	}
	// Max value renders as the densest shade.
	if !strings.Contains(out, "@") {
		t.Fatal("max shade missing")
	}
}

func TestHeatMapMarks(t *testing.T) {
	var buf bytes.Buffer
	h := HeatMap{
		XValues: []float64{1, 2},
		YValues: []float64{1, 2},
		Z:       [][]float64{{0, 0}, {0, 0}},
		Marks:   map[[2]int]byte{{1, 1}: 'X'},
	}
	if err := h.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "X") {
		t.Fatal("mark not rendered")
	}
}

func TestHeatMapShapeErrors(t *testing.T) {
	var buf bytes.Buffer
	bad := HeatMap{XValues: []float64{1}, YValues: []float64{1}, Z: [][]float64{{1}, {2}}}
	if err := bad.Render(&buf); err == nil {
		t.Fatal("row mismatch accepted")
	}
	bad2 := HeatMap{XValues: []float64{1}, YValues: []float64{1, 2}, Z: [][]float64{{1}}}
	if err := bad2.Render(&buf); err == nil {
		t.Fatal("column mismatch accepted")
	}
}

func TestHeatMapConstantSurface(t *testing.T) {
	var buf bytes.Buffer
	h := HeatMap{
		XValues: []float64{1, 2},
		YValues: []float64{1, 2},
		Z:       [][]float64{{7, 7}, {7, 7}},
	}
	if err := h.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestWriteSurfaceCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSurfaceCSV(&buf, []float64{1, 2}, []float64{3}, [][]float64{{10}, {20}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "x,y,z\n") {
		t.Fatal("header missing")
	}
	if !strings.Contains(out, "1,3,10") || !strings.Contains(out, "2,3,20") {
		t.Fatalf("rows missing:\n%s", out)
	}
	// Blank line between x-blocks (gnuplot convention).
	if !strings.Contains(out, "\n\n") {
		t.Fatal("block separator missing")
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, []float64{1, 2}, []float64{1.5, 2.5}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "index,actual,predicted\n") {
		t.Fatal("header missing")
	}
	if !strings.Contains(out, "1,1,1.5") || !strings.Contains(out, "2,2,2.5") {
		t.Fatalf("rows wrong:\n%s", out)
	}
	if err := WriteSeriesCSV(&buf, []float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched series accepted")
	}
}
