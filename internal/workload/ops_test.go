package workload

import "testing"

func TestFilter(t *testing.T) {
	ds := sampleDataset(10)
	out := ds.Filter(func(s Sample) bool { return s.X[0] >= 5 })
	if out.Len() != 5 {
		t.Fatalf("filtered to %d samples", out.Len())
	}
	for _, s := range out.Samples {
		if s.X[0] < 5 {
			t.Fatal("filter kept an excluded sample")
		}
	}
	if out.NumFeatures() != ds.NumFeatures() {
		t.Fatal("schema lost")
	}
}

func TestMerge(t *testing.T) {
	a := sampleDataset(3)
	b := sampleDataset(4)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 7 {
		t.Fatalf("merged to %d samples", m.Len())
	}
	// Originals untouched.
	if a.Len() != 3 || b.Len() != 4 {
		t.Fatal("merge mutated inputs")
	}
}

func TestMergeSchemaMismatch(t *testing.T) {
	a := sampleDataset(2)
	b := NewDataset([]string{"a", "zzz"}, a.TargetNames)
	b.MustAppend(Sample{X: []float64{1, 2}, Y: []float64{1, 2, 3}})
	if _, err := Merge(a, b); err == nil {
		t.Fatal("mismatched feature names accepted")
	}
	c := NewDataset([]string{"a"}, []string{"y1"})
	c.MustAppend(Sample{X: []float64{1}, Y: []float64{1}})
	if _, err := Merge(a, c); err == nil {
		t.Fatal("mismatched dims accepted")
	}
	d := NewDataset(a.FeatureNames, []string{"y1", "nope", "y3"})
	d.MustAppend(Sample{X: []float64{1, 2}, Y: []float64{1, 2, 3}})
	if _, err := Merge(a, d); err == nil {
		t.Fatal("mismatched target names accepted")
	}
}

func TestSelectTargets(t *testing.T) {
	ds := sampleDataset(4)
	out, err := ds.SelectTargets("y3", "y1")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumTargets() != 2 {
		t.Fatalf("%d targets", out.NumTargets())
	}
	if out.TargetNames[0] != "y3" || out.TargetNames[1] != "y1" {
		t.Fatalf("target order %v", out.TargetNames)
	}
	// Sample 2: y = (20, 40, 60) originally.
	if out.Samples[2].Y[0] != 60 || out.Samples[2].Y[1] != 20 {
		t.Fatalf("reordered values wrong: %v", out.Samples[2].Y)
	}
	if _, err := ds.SelectTargets("nope"); err == nil {
		t.Fatal("unknown target accepted")
	}
	if _, err := ds.SelectTargets(); err == nil {
		t.Fatal("empty selection accepted")
	}
}

func TestIndexLookups(t *testing.T) {
	ds := sampleDataset(1)
	j, err := ds.FeatureIndex("b")
	if err != nil || j != 1 {
		t.Fatalf("FeatureIndex: %d %v", j, err)
	}
	k, err := ds.TargetIndex("y2")
	if err != nil || k != 1 {
		t.Fatalf("TargetIndex: %d %v", k, err)
	}
	if _, err := ds.FeatureIndex("zz"); err == nil {
		t.Fatal("unknown feature accepted")
	}
	if _, err := ds.TargetIndex("zz"); err == nil {
		t.Fatal("unknown target accepted")
	}
}
