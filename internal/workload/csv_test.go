package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"nnwc/internal/rng"
)

func TestCSVRoundTrip(t *testing.T) {
	ds := sampleDataset(7)
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != ds.Len() {
		t.Fatalf("round trip lost samples: %d vs %d", back.Len(), ds.Len())
	}
	for i := range ds.Samples {
		for j := range ds.Samples[i].X {
			if ds.Samples[i].X[j] != back.Samples[i].X[j] {
				t.Fatal("X mismatch after round trip")
			}
		}
		for j := range ds.Samples[i].Y {
			if ds.Samples[i].Y[j] != back.Samples[i].Y[j] {
				t.Fatal("Y mismatch after round trip")
			}
		}
	}
	if back.FeatureNames[0] != "a" || back.TargetNames[2] != "y3" {
		t.Fatalf("names lost: %v %v", back.FeatureNames, back.TargetNames)
	}
}

func TestCSVRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := rng.New(seed)
		ds := NewDataset([]string{"f1", "f2", "f3"}, []string{"t1"})
		n := 1 + src.Intn(20)
		for i := 0; i < n; i++ {
			ds.MustAppend(Sample{
				X: []float64{src.Uniform(-1e6, 1e6), src.Norm(), src.Exp(1)},
				Y: []float64{src.Uniform(0, 1)},
			})
		}
		var buf bytes.Buffer
		if err := ds.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		for i := range ds.Samples {
			for j := range ds.Samples[i].X {
				if ds.Samples[i].X[j] != back.Samples[i].X[j] {
					return false
				}
			}
			if ds.Samples[i].Y[0] != back.Samples[i].Y[0] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCSVPreservesPrecision(t *testing.T) {
	ds := NewDataset([]string{"x"}, []string{"y"})
	vals := []float64{math.Pi, 1e-300, 1e300, -0.1, 123456789.123456789}
	for _, v := range vals {
		ds.MustAppend(Sample{X: []float64{v}, Y: []float64{v}})
	}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if back.Samples[i].X[0] != v {
			t.Fatalf("precision lost: %v became %v", v, back.Samples[i].X[0])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"no targets":           "a,b\n1,2\n",
		"no features":          "y:a,y:b\n1,2\n",
		"feature after target": "a,y:b,c\n1,2,3\n",
		"bad float":            "a,y:b\n1,zap\n",
		"short row":            "a,y:b\n1\n",
		"empty":                "",
		"NaN feature":          "a,y:b\nNaN,2\n",
		"Inf target":           "a,y:b\n1,Inf\n",
		"negative Inf":         "a,y:b\n-Inf,2\n",
	}
	for name, data := range cases {
		if _, err := ReadCSV(strings.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestReadCSVNonFiniteErrorLocation pins the row/column coordinates in the
// non-finite rejection message so operators can find the bad cell.
func TestReadCSVNonFiniteErrorLocation(t *testing.T) {
	_, err := ReadCSV(strings.NewReader("a,y:b\n1,2\n3,NaN\n"))
	if err == nil {
		t.Fatal("non-finite value accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "line 3") || !strings.Contains(msg, "field 2") {
		t.Fatalf("error %q does not name line 3 field 2", msg)
	}
}

func TestHeaderMarksTargets(t *testing.T) {
	ds := sampleDataset(1)
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(buf.String(), "\n", 2)[0]
	if header != "a,b,y:y1,y:y2,y:y3" {
		t.Fatalf("header %q", header)
	}
}
