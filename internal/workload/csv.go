package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Target columns are marked in CSV headers with this prefix so a round-trip
// preserves which columns are configuration parameters and which are
// performance indicators.
const targetPrefix = "y:"

// WriteCSV serializes the dataset. The header carries feature names as-is
// and target names prefixed with "y:".
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, d.NumFeatures()+d.NumTargets())
	header = append(header, d.FeatureNames...)
	for _, t := range d.TargetNames {
		header = append(header, targetPrefix+t)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for _, s := range d.Samples {
		for i, v := range s.X {
			rec[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		for i, v := range s.Y {
			rec[d.NumFeatures()+i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset previously written by WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: reading CSV header: %w", err)
	}
	var features, targets []string
	for _, h := range header {
		if name, ok := strings.CutPrefix(h, targetPrefix); ok {
			targets = append(targets, name)
		} else {
			if len(targets) > 0 {
				return nil, fmt.Errorf("workload: feature column %q appears after target columns", h)
			}
			features = append(features, h)
		}
	}
	if len(features) == 0 || len(targets) == 0 {
		return nil, fmt.Errorf("workload: CSV must contain at least one feature and one %q-prefixed target column", targetPrefix)
	}
	d := NewDataset(features, targets)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: reading CSV line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("workload: CSV line %d has %d fields, want %d", line, len(rec), len(header))
		}
		s := Sample{X: make([]float64, len(features)), Y: make([]float64, len(targets))}
		for i := range rec {
			v, err := strconv.ParseFloat(rec[i], 64)
			if err != nil {
				return nil, fmt.Errorf("workload: CSV line %d field %d: %w", line, i+1, err)
			}
			// ParseFloat happily accepts "NaN" and "Inf"; letting them
			// through would poison standardization and training, so a
			// non-finite cell is a hard error with its coordinates.
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("workload: CSV line %d field %d (%q): non-finite value %q", line, i+1, header[i], rec[i])
			}
			if i < len(features) {
				s.X[i] = v
			} else {
				s.Y[i-len(features)] = v
			}
		}
		d.Samples = append(d.Samples, s)
	}
	return d, nil
}
