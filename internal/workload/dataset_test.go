package workload

import (
	"testing"
	"testing/quick"

	"nnwc/internal/rng"
)

func sampleDataset(n int) *Dataset {
	ds := NewDataset([]string{"a", "b"}, []string{"y1", "y2", "y3"})
	for i := 0; i < n; i++ {
		ds.MustAppend(Sample{
			X: []float64{float64(i), float64(i * 2)},
			Y: []float64{float64(i * 10), float64(i * 20), float64(i * 30)},
		})
	}
	return ds
}

func TestSchema(t *testing.T) {
	ds := sampleDataset(5)
	if ds.NumFeatures() != 2 || ds.NumTargets() != 3 || ds.Len() != 5 {
		t.Fatalf("schema wrong: %d features, %d targets, %d samples",
			ds.NumFeatures(), ds.NumTargets(), ds.Len())
	}
}

func TestAppendValidatesShape(t *testing.T) {
	ds := sampleDataset(0)
	if err := ds.Append(Sample{X: []float64{1}, Y: []float64{1, 2, 3}}); err == nil {
		t.Fatal("short X accepted")
	}
	if err := ds.Append(Sample{X: []float64{1, 2}, Y: []float64{1}}); err == nil {
		t.Fatal("short Y accepted")
	}
	if err := ds.Append(Sample{X: []float64{1, 2}, Y: []float64{1, 2, 3}}); err != nil {
		t.Fatalf("valid sample rejected: %v", err)
	}
}

func TestMustAppendPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAppend did not panic on bad shape")
		}
	}()
	sampleDataset(0).MustAppend(Sample{X: []float64{1}, Y: nil})
}

func TestCloneIsDeep(t *testing.T) {
	ds := sampleDataset(3)
	c := ds.Clone()
	c.Samples[0].X[0] = 999
	if ds.Samples[0].X[0] == 999 {
		t.Fatal("Clone shares sample storage")
	}
}

func TestColumns(t *testing.T) {
	ds := sampleDataset(4)
	fc := ds.FeatureColumn(1)
	if len(fc) != 4 || fc[2] != 4 {
		t.Fatalf("feature column %v", fc)
	}
	tc := ds.TargetColumn(2)
	if tc[3] != 90 {
		t.Fatalf("target column %v", tc)
	}
}

func TestSplit(t *testing.T) {
	ds := sampleDataset(10)
	head, tail := ds.Split(0.7)
	if head.Len() != 7 || tail.Len() != 3 {
		t.Fatalf("split sizes %d/%d", head.Len(), tail.Len())
	}
	// Clamping.
	h2, t2 := ds.Split(1.5)
	if h2.Len() != 10 || t2.Len() != 0 {
		t.Fatal("frac > 1 should clamp")
	}
	h3, _ := ds.Split(-0.2)
	if h3.Len() != 0 {
		t.Fatal("frac < 0 should clamp")
	}
}

func TestKFoldPartition(t *testing.T) {
	ds := sampleDataset(23)
	folds, err := ds.KFold(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("%d folds", len(folds))
	}
	seen := map[int]bool{}
	for _, f := range folds {
		for _, idx := range f {
			if seen[idx] {
				t.Fatalf("index %d appears in two folds", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != 23 {
		t.Fatalf("folds cover %d of 23 samples", len(seen))
	}
	// Fold sizes differ by at most 1.
	min, max := len(folds[0]), len(folds[0])
	for _, f := range folds {
		if len(f) < min {
			min = len(f)
		}
		if len(f) > max {
			max = len(f)
		}
	}
	if max-min > 1 {
		t.Fatalf("fold sizes range %d..%d", min, max)
	}
}

func TestKFoldErrors(t *testing.T) {
	ds := sampleDataset(3)
	if _, err := ds.KFold(1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := ds.KFold(4); err == nil {
		t.Fatal("k > n accepted")
	}
}

func TestTrainValidationDisjoint(t *testing.T) {
	ds := sampleDataset(20)
	folds, err := ds.KFold(4)
	if err != nil {
		t.Fatal(err)
	}
	for f := range folds {
		train, val := ds.TrainValidation(folds, f)
		if train.Len()+val.Len() != 20 {
			t.Fatalf("fold %d: %d + %d != 20", f, train.Len(), val.Len())
		}
		if val.Len() != len(folds[f]) {
			t.Fatalf("fold %d: validation size %d", f, val.Len())
		}
	}
}

func TestShuffleKeepsSamples(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		ds := sampleDataset(12)
		var sumBefore float64
		for _, s := range ds.Samples {
			sumBefore += s.X[0]
		}
		ds.Shuffle(rng.New(seed))
		var sumAfter float64
		for _, s := range ds.Samples {
			sumAfter += s.X[0]
		}
		return sumBefore == sumAfter && ds.Len() == 12
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubset(t *testing.T) {
	ds := sampleDataset(5)
	sub := ds.Subset([]int{4, 0})
	if sub.Len() != 2 || sub.Samples[0].X[0] != 4 || sub.Samples[1].X[0] != 0 {
		t.Fatalf("subset wrong: %+v", sub.Samples)
	}
}

func TestValidate(t *testing.T) {
	ds := sampleDataset(3)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	ds.Samples[1].X = []float64{1}
	if err := ds.Validate(); err == nil {
		t.Fatal("corrupted dataset passed validation")
	}
}

func TestSummaries(t *testing.T) {
	ds := sampleDataset(5)
	fs := ds.FeatureSummaries()
	if len(fs) != 2 || fs[0].Mean != 2 {
		t.Fatalf("feature summaries %+v", fs)
	}
	ts := ds.TargetSummaries()
	if len(ts) != 3 || ts[0].Max != 40 {
		t.Fatalf("target summaries %+v", ts)
	}
}
