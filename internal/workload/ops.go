package workload

import (
	"errors"
	"fmt"
)

// Filter returns a new dataset containing the samples for which keep
// returns true. Samples are shared, not copied.
func (d *Dataset) Filter(keep func(Sample) bool) *Dataset {
	out := NewDataset(d.FeatureNames, d.TargetNames)
	for _, s := range d.Samples {
		if keep(s) {
			out.Samples = append(out.Samples, s)
		}
	}
	return out
}

// Merge appends other's samples to a copy of d. The schemas (names, in
// order) must match exactly.
func Merge(d, other *Dataset) (*Dataset, error) {
	if d.NumFeatures() != other.NumFeatures() || d.NumTargets() != other.NumTargets() {
		return nil, errors.New("workload: merge schema dimension mismatch")
	}
	for i := range d.FeatureNames {
		if d.FeatureNames[i] != other.FeatureNames[i] {
			return nil, fmt.Errorf("workload: feature %d named %q vs %q", i, d.FeatureNames[i], other.FeatureNames[i])
		}
	}
	for i := range d.TargetNames {
		if d.TargetNames[i] != other.TargetNames[i] {
			return nil, fmt.Errorf("workload: target %d named %q vs %q", i, d.TargetNames[i], other.TargetNames[i])
		}
	}
	out := NewDataset(d.FeatureNames, d.TargetNames)
	out.Samples = append(out.Samples, d.Samples...)
	out.Samples = append(out.Samples, other.Samples...)
	return out, nil
}

// SelectTargets returns a dataset restricted to the named targets, in the
// given order. Feature columns are shared; target rows are copied.
func (d *Dataset) SelectTargets(names ...string) (*Dataset, error) {
	if len(names) == 0 {
		return nil, errors.New("workload: no targets selected")
	}
	idx := make([]int, len(names))
	for k, name := range names {
		found := -1
		for j, t := range d.TargetNames {
			if t == name {
				found = j
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("workload: unknown target %q", name)
		}
		idx[k] = found
	}
	out := NewDataset(d.FeatureNames, names)
	for _, s := range d.Samples {
		y := make([]float64, len(idx))
		for k, j := range idx {
			y[k] = s.Y[j]
		}
		out.Samples = append(out.Samples, Sample{X: s.X, Y: y})
	}
	return out, nil
}

// FeatureIndex returns the column index of the named feature, or an error.
func (d *Dataset) FeatureIndex(name string) (int, error) {
	for j, f := range d.FeatureNames {
		if f == name {
			return j, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown feature %q", name)
}

// TargetIndex returns the column index of the named target, or an error.
func (d *Dataset) TargetIndex(name string) (int, error) {
	for j, t := range d.TargetNames {
		if t == name {
			return j, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown target %q", name)
}
