package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV asserts ReadCSV never panics on arbitrary input, and that
// whatever it accepts survives a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b,y:t\n1,2,3\n")
	f.Add("a,y:t\n1,2\n-5,1e300\n")
	f.Add("")
	f.Add("y:t,a\n1,2\n")
	f.Add("a,y:t\n1\n")
	f.Add("a,y:t\nx,y\n")
	f.Fuzz(func(t *testing.T, data string) {
		ds, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		if err := ds.Validate(); err != nil {
			t.Fatalf("accepted dataset fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := ds.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted dataset fails to serialize: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Len() != ds.Len() {
			t.Fatalf("round trip changed sample count: %d vs %d", back.Len(), ds.Len())
		}
	})
}
