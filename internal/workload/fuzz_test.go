package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzReadCSV asserts ReadCSV never panics on arbitrary input, that it
// never accepts non-finite values, and that whatever it accepts survives a
// write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b,y:t\n1,2,3\n")
	f.Add("a,y:t\n1,2\n-5,1e300\n")
	f.Add("")
	f.Add("y:t,a\n1,2\n")
	f.Add("a,y:t\n1\n")
	f.Add("a,y:t\nx,y\n")
	f.Add("a,y:t\nNaN,1\n")
	f.Add("a,y:t\n1,Inf\n")
	f.Add("a,y:t\n-Inf,+Inf\n")
	f.Add("a,y:t\n1,1e999\n")
	f.Fuzz(func(t *testing.T, data string) {
		ds, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		if err := ds.Validate(); err != nil {
			t.Fatalf("accepted dataset fails validation: %v", err)
		}
		for i, s := range ds.Samples {
			for _, v := range append(append([]float64(nil), s.X...), s.Y...) {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("sample %d: ReadCSV accepted non-finite value %v", i, v)
				}
			}
		}
		var buf bytes.Buffer
		if err := ds.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted dataset fails to serialize: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Len() != ds.Len() {
			t.Fatalf("round trip changed sample count: %d vs %d", back.Len(), ds.Len())
		}
	})
}
