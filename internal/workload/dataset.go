// Package workload defines the sample and dataset types the paper's
// methodology operates on: tuples (X, Y) pairing a workload configuration
// X = (x1..xn) with the performance indicators Y = (y1..ym) measured when
// the application ran under that configuration (§2.2).
//
// The package also provides deterministic shuffling, splitting, and CSV
// serialization so sample collections can be moved between the simulator,
// the trainers, and the experiment harness.
package workload

import (
	"errors"
	"fmt"

	"nnwc/internal/rng"
	"nnwc/internal/stats"
)

// Sample is one observation: a configuration vector and the performance
// indicator vector measured under it.
type Sample struct {
	X []float64 // configuration parameters
	Y []float64 // performance indicators
}

// Clone returns a deep copy of s.
func (s Sample) Clone() Sample {
	return Sample{
		X: append([]float64(nil), s.X...),
		Y: append([]float64(nil), s.Y...),
	}
}

// Dataset is an ordered collection of samples with named features and
// targets. All samples must agree with the declared dimensionality.
type Dataset struct {
	FeatureNames []string
	TargetNames  []string
	Samples      []Sample
}

// NewDataset returns an empty dataset with the given schema.
func NewDataset(featureNames, targetNames []string) *Dataset {
	return &Dataset{
		FeatureNames: append([]string(nil), featureNames...),
		TargetNames:  append([]string(nil), targetNames...),
	}
}

// NumFeatures returns the configuration-parameter dimensionality n.
func (d *Dataset) NumFeatures() int { return len(d.FeatureNames) }

// NumTargets returns the performance-indicator dimensionality m.
func (d *Dataset) NumTargets() int { return len(d.TargetNames) }

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }

// Append adds a sample after validating its shape.
func (d *Dataset) Append(s Sample) error {
	if len(s.X) != d.NumFeatures() {
		return fmt.Errorf("workload: sample has %d features, dataset expects %d", len(s.X), d.NumFeatures())
	}
	if len(s.Y) != d.NumTargets() {
		return fmt.Errorf("workload: sample has %d targets, dataset expects %d", len(s.Y), d.NumTargets())
	}
	d.Samples = append(d.Samples, s)
	return nil
}

// MustAppend adds a sample and panics on a shape mismatch. Intended for
// construction sites where the shape is statically known.
func (d *Dataset) MustAppend(s Sample) {
	if err := d.Append(s); err != nil {
		panic(err)
	}
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	c := NewDataset(d.FeatureNames, d.TargetNames)
	c.Samples = make([]Sample, len(d.Samples))
	for i, s := range d.Samples {
		c.Samples[i] = s.Clone()
	}
	return c
}

// Xs returns the feature rows (views, not copies).
func (d *Dataset) Xs() [][]float64 {
	out := make([][]float64, len(d.Samples))
	for i, s := range d.Samples {
		out[i] = s.X
	}
	return out
}

// Ys returns the target rows (views, not copies).
func (d *Dataset) Ys() [][]float64 {
	out := make([][]float64, len(d.Samples))
	for i, s := range d.Samples {
		out[i] = s.Y
	}
	return out
}

// FeatureColumn returns a copy of feature column j.
func (d *Dataset) FeatureColumn(j int) []float64 {
	out := make([]float64, len(d.Samples))
	for i, s := range d.Samples {
		out[i] = s.X[j]
	}
	return out
}

// TargetColumn returns a copy of target column j.
func (d *Dataset) TargetColumn(j int) []float64 {
	out := make([]float64, len(d.Samples))
	for i, s := range d.Samples {
		out[i] = s.Y[j]
	}
	return out
}

// Shuffle permutes the samples in place using the given source.
func (d *Dataset) Shuffle(src *rng.Source) {
	src.Shuffle(len(d.Samples), func(i, j int) {
		d.Samples[i], d.Samples[j] = d.Samples[j], d.Samples[i]
	})
}

// Subset returns a new dataset containing the samples at the given indices
// (sharing the underlying sample slices).
func (d *Dataset) Subset(indices []int) *Dataset {
	c := NewDataset(d.FeatureNames, d.TargetNames)
	c.Samples = make([]Sample, len(indices))
	for i, idx := range indices {
		c.Samples[i] = d.Samples[idx]
	}
	return c
}

// Split partitions the dataset into a head of the given fraction and the
// remaining tail, without shuffling. frac is clamped to [0, 1].
func (d *Dataset) Split(frac float64) (head, tail *Dataset) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(float64(len(d.Samples)) * frac)
	head = NewDataset(d.FeatureNames, d.TargetNames)
	head.Samples = d.Samples[:n]
	tail = NewDataset(d.FeatureNames, d.TargetNames)
	tail.Samples = d.Samples[n:]
	return head, tail
}

// KFold partitions sample indices into k folds of near-equal size. The
// caller typically shuffles first. It returns an error when k is out of
// range for the dataset size.
func (d *Dataset) KFold(k int) ([][]int, error) {
	if k < 2 {
		return nil, errors.New("workload: k-fold requires k >= 2")
	}
	if k > len(d.Samples) {
		return nil, fmt.Errorf("workload: k=%d exceeds %d samples", k, len(d.Samples))
	}
	folds := make([][]int, k)
	for i := range d.Samples {
		folds[i%k] = append(folds[i%k], i)
	}
	return folds, nil
}

// TrainValidation returns, for fold f of the given partition, the training
// set (all folds but f) and the validation set (fold f), as the paper's
// k-fold protocol prescribes (§3.3).
func (d *Dataset) TrainValidation(folds [][]int, f int) (train, val *Dataset) {
	var trainIdx []int
	for i, fold := range folds {
		if i == f {
			continue
		}
		trainIdx = append(trainIdx, fold...)
	}
	return d.Subset(trainIdx), d.Subset(folds[f])
}

// TargetSummaries returns descriptive statistics per target column.
func (d *Dataset) TargetSummaries() []stats.Summary {
	out := make([]stats.Summary, d.NumTargets())
	for j := range out {
		out[j] = stats.Summarize(d.TargetColumn(j))
	}
	return out
}

// FeatureSummaries returns descriptive statistics per feature column.
func (d *Dataset) FeatureSummaries() []stats.Summary {
	out := make([]stats.Summary, d.NumFeatures())
	for j := range out {
		out[j] = stats.Summarize(d.FeatureColumn(j))
	}
	return out
}

// Validate checks internal consistency: every sample matches the schema.
func (d *Dataset) Validate() error {
	for i, s := range d.Samples {
		if len(s.X) != d.NumFeatures() || len(s.Y) != d.NumTargets() {
			return fmt.Errorf("workload: sample %d has shape (%d,%d), want (%d,%d)",
				i, len(s.X), len(s.Y), d.NumFeatures(), d.NumTargets())
		}
	}
	return nil
}
