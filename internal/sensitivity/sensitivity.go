// Package sensitivity partially recovers the analytical power the paper
// concedes in §5.3 ("it is hard to perform a quantitative analysis for a
// complete understanding of the individual contribution of a particular
// feature to the output ... we are trading off the analytical power of the
// model for generality"): permutation feature importance quantifies how
// much each configuration parameter contributes to each predicted
// indicator, and one-dimensional partial-dependence profiles expose the
// marginal shape of that contribution — both model-agnostic, so they work
// on the MLP without giving up its generality.
package sensitivity

import (
	"errors"
	"fmt"

	"nnwc/internal/core"
	"nnwc/internal/rng"
	"nnwc/internal/sched"
	"nnwc/internal/stats"
	"nnwc/internal/workload"
)

// Importance holds the permutation-importance matrix: Scores[i][j] is the
// increase in RMSE of indicator j when feature i is permuted, normalized
// by the unpermuted RMSE (0 = irrelevant; 1 = permuting doubles the error).
type Importance struct {
	FeatureNames []string
	TargetNames  []string
	Scores       [][]float64
}

// FeatureTotal sums feature i's importance across indicators.
func (im *Importance) FeatureTotal(i int) float64 {
	return stats.Mean(im.Scores[i]) * float64(len(im.Scores[i]))
}

// Options tunes the estimators.
type Options struct {
	// Repeats averages the permutation over this many shuffles (default 5).
	Repeats int
	// Seed drives the permutations. Each feature's shuffles draw from a
	// stream derived from (Seed, feature index), so scores do not depend
	// on scheduling or worker count.
	Seed uint64
	// Workers bounds the concurrency of the per-feature scoring loop
	// (<= 0 means the scheduler default).
	Workers int
}

func (o Options) defaults() Options {
	if o.Repeats <= 0 {
		o.Repeats = 5
	}
	return o
}

// PermutationImportance scores every (feature, indicator) pair on the
// given dataset.
func PermutationImportance(p core.Predictor, ds *workload.Dataset, opt Options) (*Importance, error) {
	if ds == nil || ds.Len() < 2 {
		return nil, errors.New("sensitivity: need at least 2 samples")
	}
	opt = opt.defaults()
	base, actual, err := Baseline(p, ds)
	if err != nil {
		return nil, err
	}
	im := &Importance{
		FeatureNames: append([]string(nil), ds.FeatureNames...),
		TargetNames:  append([]string(nil), ds.TargetNames...),
		Scores:       make([][]float64, ds.NumFeatures()),
	}
	// Features score concurrently; feature i's permutations come from a
	// stream derived from (Seed, i), so the score matrix is identical at
	// any worker count.
	err = sched.ForEach(sched.Workers(opt.Workers), ds.NumFeatures(), func(i int) error {
		im.Scores[i] = ScoreFeature(p, ds, base, actual, i, opt)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return im, nil
}

// Baseline computes each indicator's unpermuted RMSE (floored at 1e-12
// when exactly zero, so a perfect fit's "infinite" degradation stays
// finite) plus the actual-value columns the permuted passes re-score
// against. Deterministic in (p, ds) — a distributed worker recomputes
// the identical baseline from the shipped artifacts.
func Baseline(p core.Predictor, ds *workload.Dataset) (base []float64, actual [][]float64, err error) {
	m := ds.NumTargets()
	base = make([]float64, m)
	actual = make([][]float64, m)
	pred := make([][]float64, m)
	for _, s := range ds.Samples {
		out := p.Predict(s.X)
		if len(out) != m {
			return nil, nil, errors.New("sensitivity: predictor output does not match dataset targets")
		}
		for j := 0; j < m; j++ {
			actual[j] = append(actual[j], s.Y[j])
			pred[j] = append(pred[j], out[j])
		}
	}
	for j := 0; j < m; j++ {
		base[j] = stats.RMSE(actual[j], pred[j])
		if stats.ExactZero(base[j]) {
			base[j] = 1e-12 // perfect fit: any degradation is "infinite"; cap via epsilon
		}
	}
	return base, actual, nil
}

// ScoreFeature scores feature i against every indicator: the mean
// relative RMSE increase over opt.Repeats permutations, clamped at 0.
// The permutation stream derives only from (opt.Seed, i), so the score
// vector is identical whether computed locally or on a remote worker —
// the per-feature unit the distributed experiment plane ships.
func ScoreFeature(p core.Predictor, ds *workload.Dataset, base []float64, actual [][]float64, i int, opt Options) []float64 {
	opt = opt.defaults()
	n := ds.NumFeatures()
	m := ds.NumTargets()
	src := rng.New(sched.TaskSeed(opt.Seed, i))
	xbuf := make([]float64, n)
	scores := make([]float64, m)
	col := ds.FeatureColumn(i)
	for rep := 0; rep < opt.Repeats; rep++ {
		perm := src.Perm(len(col))
		permPred := make([][]float64, m)
		for r, s := range ds.Samples {
			copy(xbuf, s.X)
			xbuf[i] = col[perm[r]]
			out := p.Predict(xbuf)
			for j := 0; j < m; j++ {
				permPred[j] = append(permPred[j], out[j])
			}
		}
		for j := 0; j < m; j++ {
			rmse := stats.RMSE(actual[j], permPred[j])
			scores[j] += (rmse - base[j]) / base[j] / float64(opt.Repeats)
		}
	}
	for j := 0; j < m; j++ {
		if scores[j] < 0 {
			scores[j] = 0 // permutation noise can dip below zero
		}
	}
	return scores
}

// Profile is a one-dimensional partial-dependence curve: the model's mean
// prediction for one indicator as one feature sweeps its range with all
// other features held at the dataset's observed rows.
type Profile struct {
	Feature string
	Target  string
	X       []float64
	Y       []float64
}

// PartialDependence computes the profile of feature i against indicator j
// over the given grid values.
func PartialDependence(p core.Predictor, ds *workload.Dataset, feature, target int, grid []float64) (*Profile, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, errors.New("sensitivity: empty dataset")
	}
	if feature < 0 || feature >= ds.NumFeatures() {
		return nil, fmt.Errorf("sensitivity: feature index %d out of range", feature)
	}
	if target < 0 || target >= ds.NumTargets() {
		return nil, fmt.Errorf("sensitivity: target index %d out of range", target)
	}
	if len(grid) == 0 {
		return nil, errors.New("sensitivity: empty grid")
	}
	prof := &Profile{
		Feature: ds.FeatureNames[feature],
		Target:  ds.TargetNames[target],
		X:       append([]float64(nil), grid...),
		Y:       make([]float64, len(grid)),
	}
	xbuf := make([]float64, ds.NumFeatures())
	for gi, gv := range grid {
		var sum float64
		for _, s := range ds.Samples {
			copy(xbuf, s.X)
			xbuf[feature] = gv
			sum += p.Predict(xbuf)[target]
		}
		prof.Y[gi] = sum / float64(ds.Len())
	}
	return prof, nil
}
