package sensitivity

import (
	"math"
	"testing"

	"nnwc/internal/rng"
	"nnwc/internal/workload"
)

// funcPredictor adapts a function for testing.
type funcPredictor func(x []float64) []float64

func (f funcPredictor) Predict(x []float64) []float64 { return f(x) }

// dataset over a known function: y0 depends strongly on x0, weakly on x1,
// not at all on x2; y1 depends only on x2.
func knownDataset(n int, seed uint64) *workload.Dataset {
	src := rng.New(seed)
	ds := workload.NewDataset([]string{"x0", "x1", "x2"}, []string{"y0", "y1"})
	for i := 0; i < n; i++ {
		x := []float64{src.Uniform(-2, 2), src.Uniform(-2, 2), src.Uniform(-2, 2)}
		ds.MustAppend(workload.Sample{
			X: x,
			Y: []float64{10*x[0] + 0.5*x[1], 4 * x[2]},
		})
	}
	return ds
}

func truePredictor() funcPredictor {
	return func(x []float64) []float64 {
		return []float64{10*x[0] + 0.5*x[1], 4 * x[2]}
	}
}

func TestPermutationImportanceRanksFeatures(t *testing.T) {
	ds := knownDataset(150, 1)
	im, err := PermutationImportance(truePredictor(), ds, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// y0: x0 >> x1 > x2(≈0).
	if !(im.Scores[0][0] > 5*im.Scores[1][0]) {
		t.Fatalf("x0 (%v) should dominate x1 (%v) for y0", im.Scores[0][0], im.Scores[1][0])
	}
	if im.Scores[2][0] > 0.05 {
		t.Fatalf("x2 should be irrelevant for y0, got %v", im.Scores[2][0])
	}
	// y1: only x2 matters.
	if !(im.Scores[2][1] > 10*im.Scores[0][1]) {
		t.Fatalf("x2 (%v) should dominate x0 (%v) for y1", im.Scores[2][1], im.Scores[0][1])
	}
	// Totals are consistent with scores.
	if im.FeatureTotal(0) <= im.FeatureTotal(2)*0.1 {
		t.Fatal("feature totals inconsistent")
	}
}

func TestPermutationImportanceNonNegative(t *testing.T) {
	ds := knownDataset(60, 3)
	im, err := PermutationImportance(truePredictor(), ds, Options{Seed: 4, Repeats: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range im.Scores {
		for j := range im.Scores[i] {
			if im.Scores[i][j] < 0 {
				t.Fatalf("negative importance at (%d,%d)", i, j)
			}
		}
	}
}

func TestPermutationImportanceDeterministic(t *testing.T) {
	ds := knownDataset(60, 5)
	a, err := PermutationImportance(truePredictor(), ds, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PermutationImportance(truePredictor(), ds, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a.Scores[0][0] != b.Scores[0][0] {
		t.Fatal("importance not deterministic")
	}
}

func TestPermutationImportanceErrors(t *testing.T) {
	if _, err := PermutationImportance(truePredictor(), nil, Options{}); err == nil {
		t.Fatal("nil dataset accepted")
	}
	tiny := workload.NewDataset([]string{"x"}, []string{"y"})
	tiny.MustAppend(workload.Sample{X: []float64{1}, Y: []float64{1}})
	if _, err := PermutationImportance(truePredictor(), tiny, Options{}); err == nil {
		t.Fatal("singleton dataset accepted")
	}
	wrongDim := funcPredictor(func(x []float64) []float64 { return []float64{0} })
	ds := knownDataset(10, 7)
	if _, err := PermutationImportance(wrongDim, ds, Options{}); err == nil {
		t.Fatal("wrong predictor arity accepted")
	}
}

func TestPartialDependenceRecoversMarginalSlope(t *testing.T) {
	ds := knownDataset(100, 8)
	grid := []float64{-2, -1, 0, 1, 2}
	prof, err := PartialDependence(truePredictor(), ds, 0, 0, grid)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Feature != "x0" || prof.Target != "y0" {
		t.Fatalf("profile labels %q/%q", prof.Feature, prof.Target)
	}
	// Marginal slope of y0 in x0 is exactly 10.
	slope := (prof.Y[4] - prof.Y[0]) / (grid[4] - grid[0])
	if math.Abs(slope-10) > 1e-9 {
		t.Fatalf("partial-dependence slope %v, want 10", slope)
	}
	// Irrelevant feature: flat profile.
	flat, err := PartialDependence(truePredictor(), ds, 2, 0, grid)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(flat.Y[4]-flat.Y[0]) > 1e-9 {
		t.Fatal("irrelevant feature's profile is not flat")
	}
}

func TestPartialDependenceErrors(t *testing.T) {
	ds := knownDataset(10, 9)
	grid := []float64{0, 1}
	if _, err := PartialDependence(truePredictor(), nil, 0, 0, grid); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := PartialDependence(truePredictor(), ds, 9, 0, grid); err == nil {
		t.Fatal("bad feature index accepted")
	}
	if _, err := PartialDependence(truePredictor(), ds, 0, 9, grid); err == nil {
		t.Fatal("bad target index accepted")
	}
	if _, err := PartialDependence(truePredictor(), ds, 0, 0, nil); err == nil {
		t.Fatal("empty grid accepted")
	}
}
