package core

import (
	"testing"
)

func TestSelectNodeCountPicksReasonableTopology(t *testing.T) {
	ds := syntheticDataset(120, 30)
	base := fastConfig()
	res, err := SelectNodeCount(ds, base, [][]int{{1}, {8}, {16}}, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 3 {
		t.Fatalf("%d candidates scored", len(res.Candidates))
	}
	// A single hidden node cannot represent 3a²−b and sin(a)+2b at once;
	// the winner must be one of the wider nets.
	if len(res.Best.Hidden) == 1 && res.Best.Hidden[0] == 1 {
		t.Fatalf("selected the 1-node topology (error %v)", res.Best.Error)
	}
	// The best candidate's error must be the minimum within the 2% tie
	// tolerance.
	for _, c := range res.Candidates {
		if c.Error < res.Best.Error*0.98 {
			t.Fatalf("candidate %v (err %v) beats the winner (err %v)", c.Hidden, c.Error, res.Best.Error)
		}
	}
}

func TestSelectNodeCountTieBreaksTowardFewerParams(t *testing.T) {
	ds := syntheticDataset(100, 31)
	base := fastConfig()
	// Two generously sized nets will both fit well; the smaller should
	// win on a tie.
	res, err := SelectNodeCount(ds, base, [][]int{{24}, {10}}, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Error > res.Candidates[0].Error*1.02 &&
		res.Best.Error > res.Candidates[1].Error*1.02 {
		t.Fatal("winner outside tie tolerance")
	}
	// Parameter counts recorded correctly: 2→h→2 has 2h+h + 2h+2 params.
	for _, c := range res.Candidates {
		h := c.Hidden[0]
		want := 2*h + h + h*2 + 2
		if c.Params != want {
			t.Fatalf("params for %v = %d, want %d", c.Hidden, c.Params, want)
		}
	}
}

func TestSelectNodeCountErrors(t *testing.T) {
	ds := syntheticDataset(30, 32)
	if _, err := SelectNodeCount(ds, fastConfig(), nil, 3, 1); err == nil {
		t.Fatal("no candidates accepted")
	}
	if _, err := SelectNodeCount(ds, fastConfig(), [][]int{{}}, 3, 1); err == nil {
		t.Fatal("empty layout accepted")
	}
	if _, err := SelectNodeCount(ds, fastConfig(), [][]int{{4}}, 99, 1); err == nil {
		t.Fatal("k > n accepted")
	}
}
