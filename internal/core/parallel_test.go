package core

import (
	"testing"
)

// The scheduler's contract: every parallel experiment-plane entry point is
// bit-identical across worker counts, because seeds derive from task
// indices and floating-point reductions replay in task order.

func quickCVConfig() Config {
	cfg := fastConfig()
	tc := *cfg.Train
	tc.MaxEpochs = 120
	cfg.Train = &tc
	return cfg
}

func TestCrossValidateWorkersBitIdentical(t *testing.T) {
	ds := syntheticDataset(60, 7)
	cfg := quickCVConfig()
	ref, err := CrossValidateWorkers(ds, cfg, 5, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		got, err := CrossValidateWorkers(ds, cfg, 5, 42, w)
		if err != nil {
			t.Fatal(err)
		}
		for j := range ref.Averages {
			if got.Averages[j] != ref.Averages[j] {
				t.Fatalf("workers=%d average[%d] = %v, workers=1 gave %v", w, j, got.Averages[j], ref.Averages[j])
			}
		}
		for f := range ref.Trials {
			for j := range ref.Trials[f].Errors {
				if got.Trials[f].Errors[j] != ref.Trials[f].Errors[j] {
					t.Fatalf("workers=%d trial %d error[%d] = %v, workers=1 gave %v",
						w, f, j, got.Trials[f].Errors[j], ref.Trials[f].Errors[j])
				}
			}
		}
	}
}

func TestFitEnsembleWorkersBitIdentical(t *testing.T) {
	ds := syntheticDataset(60, 7)
	cfg := quickCVConfig()
	ref, err := FitEnsembleWorkers(ds, cfg, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	probe := [][]float64{{0.3, -1.1}, {-1.7, 0.9}, {1.2, 1.2}}
	want := PredictAll(ref, probe)
	for _, w := range []int{2, 8} {
		got, err := FitEnsembleWorkers(ds, cfg, 4, w)
		if err != nil {
			t.Fatal(err)
		}
		have := PredictAll(got, probe)
		for i := range want {
			for j := range want[i] {
				if have[i][j] != want[i][j] {
					t.Fatalf("workers=%d prediction[%d][%d] = %v, workers=1 gave %v",
						w, i, j, have[i][j], want[i][j])
				}
			}
		}
	}
}

// A Config whose *train.Config (and its stateful optimizer) is shared
// across concurrent fits must still produce the serial results — trainers
// clone the optimizer at construction.
func TestSharedConfigSafeAcrossConcurrentFits(t *testing.T) {
	ds := syntheticDataset(60, 7)
	cfg := quickCVConfig()
	serial := make([]*NNModel, 3)
	for i := range serial {
		c := cfg
		c.Seed = uint64(100 + i)
		m, err := Fit(ds, c)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = m
	}
	ch := make(chan error, len(serial))
	models := make([]*NNModel, len(serial))
	for i := range models {
		go func(i int) {
			c := cfg
			c.Seed = uint64(100 + i)
			m, err := Fit(ds, c)
			models[i] = m
			ch <- err
		}(i)
	}
	for range models {
		if err := <-ch; err != nil {
			t.Fatal(err)
		}
	}
	probe := [][]float64{{0.5, 0.5}}
	for i := range models {
		want := PredictAll(serial[i], probe)[0]
		got := PredictAll(models[i], probe)[0]
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("model %d output[%d]: concurrent %v vs serial %v", i, j, got[j], want[j])
			}
		}
	}
}
