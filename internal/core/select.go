package core

import (
	"errors"
	"fmt"

	"nnwc/internal/obs"
	"nnwc/internal/workload"
)

// NodeCountResult records one candidate topology's cross-validated error.
type NodeCountResult struct {
	Hidden []int
	// Error is the mean validation HMRE across folds and indicators.
	Error float64
	// Params is the trainable-parameter count of the topology.
	Params int
}

// SelectionResult is the outcome of SelectNodeCount.
type SelectionResult struct {
	Best       NodeCountResult
	Candidates []NodeCountResult
}

// SelectNodeCount automates the §3.2 choice the paper made by hand ("the
// MLP node count and the termination threshold were manually tuned for the
// first trial"): every candidate hidden-layer layout is scored by k-fold
// cross-validation and the lowest-error one wins. Ties in error (within
// 2% relative) break toward fewer parameters, honoring §3.3's preference
// for flexible, loosely fitted models.
func SelectNodeCount(ds *workload.Dataset, base Config, candidates [][]int, k int, seed uint64) (*SelectionResult, error) {
	if len(candidates) == 0 {
		return nil, errors.New("core: no candidate topologies")
	}
	res := &SelectionResult{}
	for _, hidden := range candidates {
		if len(hidden) == 0 {
			return nil, errors.New("core: empty hidden layout in candidates")
		}
		cfg := base
		cfg.Hidden = hidden
		cv, err := CrossValidate(ds, cfg, k, seed)
		if err != nil {
			return nil, fmt.Errorf("core: scoring topology %v: %w", hidden, err)
		}
		// Parameter count of the full topology.
		params := 0
		prev := ds.NumFeatures()
		for _, h := range hidden {
			params += prev*h + h
			prev = h
		}
		params += prev*ds.NumTargets() + ds.NumTargets()

		res.Candidates = append(res.Candidates, NodeCountResult{
			Hidden: append([]int(nil), hidden...),
			Error:  cv.OverallError(),
			Params: params,
		})
		if base.Trace.Enabled() {
			base.Trace.Emit("select_candidate",
				obs.String("hidden", fmt.Sprint(hidden)),
				obs.Int("params", params),
				obs.Float("error", cv.OverallError()),
			)
		}
	}
	best := res.Candidates[0]
	for _, c := range res.Candidates[1:] {
		switch {
		case c.Error < best.Error*0.98:
			best = c
		case c.Error <= best.Error*1.02 && c.Params < best.Params:
			best = c
		}
	}
	res.Best = best
	return res, nil
}
