package core

import (
	"errors"
	"fmt"

	"nnwc/internal/obs"
	"nnwc/internal/workload"
)

// NodeCountResult records one candidate topology's cross-validated error.
type NodeCountResult struct {
	Hidden []int
	// Error is the mean validation HMRE across folds and indicators.
	Error float64
	// Params is the trainable-parameter count of the topology.
	Params int
}

// SelectionResult is the outcome of SelectNodeCount.
type SelectionResult struct {
	Best       NodeCountResult
	Candidates []NodeCountResult
}

// SelectNodeCount automates the §3.2 choice the paper made by hand ("the
// MLP node count and the termination threshold were manually tuned for the
// first trial"): every candidate hidden-layer layout is scored by k-fold
// cross-validation and the lowest-error one wins. Ties in error (within
// 2% relative) break toward fewer parameters, honoring §3.3's preference
// for flexible, loosely fitted models.
func SelectNodeCount(ds *workload.Dataset, base Config, candidates [][]int, k int, seed uint64) (*SelectionResult, error) {
	if len(candidates) == 0 {
		return nil, errors.New("core: no candidate topologies")
	}
	res := &SelectionResult{}
	for _, hidden := range candidates {
		cand, err := ScoreTopology(ds, base, hidden, k, seed)
		if err != nil {
			return nil, err
		}
		res.Candidates = append(res.Candidates, cand)
		if base.Trace.Enabled() {
			base.Trace.Emit("select_candidate",
				obs.String("hidden", fmt.Sprint(hidden)),
				obs.Int("params", cand.Params),
				obs.Float("error", cand.Error),
			)
		}
	}
	res.Best = PickBest(res.Candidates)
	return res, nil
}

// ScoreTopology scores one candidate hidden layout by k-fold
// cross-validation — the per-candidate unit the distributed experiment
// plane ships to workers. Every candidate uses the same base config and
// seed, so scores are independent of what else is being scored or where.
func ScoreTopology(ds *workload.Dataset, base Config, hidden []int, k int, seed uint64) (NodeCountResult, error) {
	if len(hidden) == 0 {
		return NodeCountResult{}, errors.New("core: empty hidden layout in candidates")
	}
	cfg := base
	cfg.Hidden = hidden
	cv, err := CrossValidate(ds, cfg, k, seed)
	if err != nil {
		return NodeCountResult{}, fmt.Errorf("core: scoring topology %v: %w", hidden, err)
	}
	return NodeCountResult{
		Hidden: append([]int(nil), hidden...),
		Error:  cv.OverallError(),
		Params: CountParams(ds.NumFeatures(), hidden, ds.NumTargets()),
	}, nil
}

// CountParams is the trainable-parameter count of a topology.
func CountParams(in int, hidden []int, out int) int {
	params := 0
	prev := in
	for _, h := range hidden {
		params += prev*h + h
		prev = h
	}
	return params + prev*out + out
}

// PickBest applies the selection rule to scored candidates: lowest error
// wins, with ties in error (within 2% relative) breaking toward fewer
// parameters — §3.3's preference for flexible, loosely fitted models.
// Candidate order matters only for exact ties, so callers must pass
// candidates in their declared order (the distributed reducer does: its
// results are index-addressed).
func PickBest(candidates []NodeCountResult) NodeCountResult {
	best := candidates[0]
	for _, c := range candidates[1:] {
		switch {
		case c.Error < best.Error*0.98:
			best = c
		case c.Error <= best.Error*1.02 && c.Params < best.Params:
			best = c
		}
	}
	return best
}
