package core

import (
	"testing"

	"nnwc/internal/mat"
)

// matrixFixture trains a model, its f32 twin, and a small ensemble on one
// synthetic dataset, plus the staged input matrix their matrix paths take.
func matrixFixture(t *testing.T) (*NNModel, *F32Model, *Ensemble, *mat.Matrix, [][]float64) {
	t.Helper()
	ds := syntheticDataset(90, 17)
	m, err := Fit(ds, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	f32m, err := m.F32()
	if err != nil {
		t.Fatal(err)
	}
	ens, err := FitEnsemble(ds, fastConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	xs := ds.Xs()
	X := mat.New(len(xs), len(xs[0])).CopyRows(xs)
	return m, f32m, ens, X, xs
}

// TestPredictMatrixMatchesPredictAll pins the zero-alloc matrix path to the
// allocating convenience API bit for bit, for all three MatrixPredictor
// implementations.
func TestPredictMatrixMatchesPredictAll(t *testing.T) {
	m, f32m, ens, X, xs := matrixFixture(t)
	preds := []struct {
		name string
		p    MatrixPredictor
	}{
		{"NNModel", m},
		{"F32Model", f32m},
		{"Ensemble", ens},
	}
	for _, tc := range preds {
		var w PredictWorkspace
		got := tc.p.PredictMatrix(X, &w)
		want := tc.p.PredictAll(xs)
		if got.Rows != len(want) || got.Cols != len(want[0]) {
			t.Fatalf("%s: matrix is %dx%d, PredictAll gave %dx%d",
				tc.name, got.Rows, got.Cols, len(want), len(want[0]))
		}
		for i := range want {
			for j, v := range want[i] {
				if got.At(i, j) != v {
					t.Fatalf("%s: row %d output %d: matrix %v, PredictAll %v",
						tc.name, i, j, got.At(i, j), v)
				}
			}
		}
		// Predict on one row must agree too (same kernels, batch of one).
		single := tc.p.Predict(xs[5])
		for j, v := range single {
			if v != want[5][j] {
				t.Fatalf("%s: Predict output %d: %v, PredictAll %v", tc.name, j, v, want[5][j])
			}
		}
	}
}

// TestPredictMatrixZeroAlloc pins the steady-state allocation discipline of
// the matrix path: with a warmed workspace, predicting a batch allocates
// nothing for the single model, the f32 twin, and the ensemble.
func TestPredictMatrixZeroAlloc(t *testing.T) {
	m, f32m, ens, X, _ := matrixFixture(t)
	preds := []struct {
		name string
		p    MatrixPredictor
	}{
		{"NNModel", m},
		{"F32Model", f32m},
		{"Ensemble", ens},
	}
	for _, tc := range preds {
		var w PredictWorkspace
		tc.p.PredictMatrix(X, &w) // warm the buffers (and the ensemble's sub workspace)
		allocs := testing.AllocsPerRun(50, func() {
			tc.p.PredictMatrix(X, &w)
		})
		if allocs != 0 {
			t.Fatalf("steady-state %s.PredictMatrix allocates %v objects/op", tc.name, allocs)
		}
	}
}

// TestEvaluateSteadyStateAllocs pins Evaluate's allocation budget: only the
// returned Evaluation and its metric slices — every batch-sized buffer
// comes from the pooled scratch.
func TestEvaluateSteadyStateAllocs(t *testing.T) {
	ds := syntheticDataset(90, 17)
	m, err := Fit(ds, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(m, ds); err != nil { // warm the pooled scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := Evaluate(m, ds); err != nil {
			panic(err)
		}
	})
	// Evaluation struct + TargetNames + 4 metric slices, plus a little
	// interface headroom; the point is the ~2·Len batch buffers are gone.
	if allocs > 10 {
		t.Fatalf("steady-state Evaluate allocates %v objects/op, want <= 10", allocs)
	}
}
