package core

import (
	"math"
	"testing"

	"nnwc/internal/stats"
	"nnwc/internal/workload"
)

// tablePredictor replies with a fixed output per input row, letting the
// metric tests pin Evaluate against hand-computed values.
type tablePredictor struct {
	out map[float64][]float64 // keyed by the row's first feature
}

func (p *tablePredictor) Predict(x []float64) []float64 {
	return append([]float64(nil), p.out[x[0]]...)
}

// TestEvaluateOneExactPrediction is the failing-before regression test for
// the accuracy-inflating edge case: one coincidentally exact prediction
// used to zero the indicator's HMRE. With the floor fix the hand-computed
// value is 2/(1e6+6) — see stats.RelErrFloor.
func TestEvaluateOneExactPrediction(t *testing.T) {
	ds := workload.NewDataset([]string{"x"}, []string{"t"})
	ds.MustAppend(workload.Sample{X: []float64{1}, Y: []float64{5}})
	ds.MustAppend(workload.Sample{X: []float64{2}, Y: []float64{6}})
	p := &tablePredictor{out: map[float64][]float64{
		1: {5}, // exact
		2: {7}, // relative error 1/6
	}}
	ev, err := Evaluate(p, ds)
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 / (1e6 + 6)
	if math.Abs(ev.HMRE[0]-want) > 1e-15 {
		t.Fatalf("HMRE = %v, want %v (one exact prediction must not zero the metric)", ev.HMRE[0], want)
	}
	if ev.MeanHMRE() == 0 {
		t.Fatal("MeanHMRE reported a perfect score off one exact prediction")
	}
}

// TestEvaluateAllZeroActuals is the failing-before regression test for the
// second edge case: an indicator whose actuals are all zero used to map to
// HMRE = 0 and count as perfect. It must now be NaN, skipped by the
// aggregates, and listed by Undefined.
func TestEvaluateAllZeroActuals(t *testing.T) {
	ds := workload.NewDataset([]string{"x"}, []string{"dead", "live"})
	ds.MustAppend(workload.Sample{X: []float64{1}, Y: []float64{0, 100}})
	ds.MustAppend(workload.Sample{X: []float64{2}, Y: []float64{0, 100}})
	p := &tablePredictor{out: map[float64][]float64{
		1: {3, 110}, // live: relative error 0.10
		2: {4, 105}, // live: relative error 0.05
	}}
	ev, err := Evaluate(p, ds)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(ev.HMRE[0]) {
		t.Fatalf("all-zero-actual indicator HMRE = %v, want NaN", ev.HMRE[0])
	}
	// Hand-computed: HM(0.10, 0.05) = 2/(10+20) = 1/15.
	if math.Abs(ev.HMRE[1]-1.0/15.0) > 1e-12 {
		t.Fatalf("live indicator HMRE = %v, want 1/15", ev.HMRE[1])
	}
	if got := ev.MeanHMRE(); math.Abs(got-1.0/15.0) > 1e-12 {
		t.Fatalf("MeanHMRE = %v — the undefined indicator must be skipped, not counted as perfect", got)
	}
	if got := ev.Accuracy(); math.Abs(got-(1-1.0/15.0)) > 1e-12 {
		t.Fatalf("Accuracy = %v, want %v", got, 1-1.0/15.0)
	}
	undef := ev.Undefined()
	if len(undef) != 1 || undef[0] != "dead" {
		t.Fatalf("Undefined() = %v, want [dead]", undef)
	}
}

// TestEvaluateAllIndicatorsUndefined: when no indicator is defined the
// aggregates must be NaN, never a (perfect-looking) number.
func TestEvaluateAllIndicatorsUndefined(t *testing.T) {
	ds := workload.NewDataset([]string{"x"}, []string{"t"})
	ds.MustAppend(workload.Sample{X: []float64{1}, Y: []float64{0}})
	p := &tablePredictor{out: map[float64][]float64{1: {2}}}
	ev, err := Evaluate(p, ds)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(ev.MeanHMRE()) || !math.IsNaN(ev.Accuracy()) {
		t.Fatalf("MeanHMRE = %v, Accuracy = %v — both must be NaN", ev.MeanHMRE(), ev.Accuracy())
	}
}

// TestMeanSkipNaNMatchesEvaluate keeps the aggregate semantics in one
// place: Evaluation aggregates must agree with stats.MeanSkipNaN.
func TestMeanSkipNaNMatchesEvaluate(t *testing.T) {
	ev := &Evaluation{HMRE: []float64{0.1, math.NaN(), 0.3}}
	if got, want := ev.MeanHMRE(), stats.MeanSkipNaN(ev.HMRE); got != want {
		t.Fatalf("MeanHMRE = %v, MeanSkipNaN = %v", got, want)
	}
}
