package core

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"nnwc/internal/train"
)

// TestGenerateGoldenModel regenerates the golden persisted-model fixture.
// It only runs when NNWC_GEN_GOLDEN=1; the committed fixture was produced
// by the pre-flat-weights implementation so LoadModel must keep accepting
// it unchanged across the refactor.
func TestGenerateGoldenModel(t *testing.T) {
	if os.Getenv("NNWC_GEN_GOLDEN") != "1" {
		t.Skip("set NNWC_GEN_GOLDEN=1 to regenerate golden files")
	}
	ds := syntheticDataset(80, 20260805)
	tc := train.DefaultConfig()
	tc.MaxEpochs = 300
	model, err := Fit(ds, Config{Hidden: []int{8}, Train: &tc, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("testdata/golden_model.json", buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	probes := [][]float64{
		{0, 0},
		{1.5, -1.5},
		{-2, 2},
		{0.25, 0.75},
	}
	var preds [][]float64
	for _, x := range probes {
		preds = append(preds, model.Predict(x))
	}
	doc := map[string]interface{}{"probes": probes, "predictions": preds}
	out, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("testdata/golden_model_predictions.json", out, 0o644); err != nil {
		t.Fatal(err)
	}
}
