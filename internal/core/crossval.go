package core

import (
	"fmt"
	"math"

	"nnwc/internal/obs"
	"nnwc/internal/rng"
	"nnwc/internal/sched"
	"nnwc/internal/stats"
	"nnwc/internal/workload"
)

// Trial is one fold of a k-fold cross-validation: the model trained on the
// other k−1 folds, the datasets involved, and the per-indicator validation
// errors (harmonic mean of relative error, the paper's §3.3 metric).
type Trial struct {
	Model  *NNModel
	Train  *workload.Dataset
	Val    *workload.Dataset
	Errors []float64 // per indicator, as fractions (0.03 = 3%)
}

// CVResult is the material behind the paper's Table 2: per-trial,
// per-indicator validation errors plus their averages.
type CVResult struct {
	TargetNames []string
	Trials      []Trial
	// Averages[j] is the mean over trials of indicator j's error. Trials
	// on which the metric was undefined (NaN, e.g. all-zero actuals in
	// the fold) are skipped; Averages[j] is NaN only when every trial was
	// undefined for that indicator.
	Averages []float64
}

// OverallError averages across indicators and trials, skipping indicators
// whose error is undefined (NaN) in every trial.
func (r *CVResult) OverallError() float64 { return stats.MeanSkipNaN(r.Averages) }

// OverallAccuracy is the paper's headline number: 1 − overall error
// (reported as "an average prediction accuracy of 95%").
func (r *CVResult) OverallAccuracy() float64 { return 1 - r.OverallError() }

// CrossValidate performs k-fold cross-validation per §3.3 on the
// scheduler's default worker count; see CrossValidateWorkers.
func CrossValidate(ds *workload.Dataset, cfg Config, k int, seed uint64) (*CVResult, error) {
	return CrossValidateWorkers(ds, cfg, k, seed, 0)
}

// CrossValidateWorkers performs k-fold cross-validation per §3.3: the
// shuffled dataset is divided into k equal folds; for each trial one fold
// is held out for validation and the rest train the model. The paper
// hand-tuned the node count and termination threshold on the first trial
// and reused them for the rest — here cfg plays that role for every trial.
//
// Folds train concurrently on up to `workers` goroutines (<= 0 means the
// scheduler default). Each trial's seed derives from (seed, fold index)
// and the per-indicator averages reduce in fold order after all folds
// finish, so the result is bit-identical across worker counts — including
// the serial path the seed-reference test pins.
func CrossValidateWorkers(ds *workload.Dataset, cfg Config, k int, seed uint64, workers int) (*CVResult, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("core: cross-validation needs a non-empty dataset")
	}
	shuffled := ds.Clone()
	shuffled.Shuffle(rng.New(seed))
	folds, err := shuffled.KFold(k)
	if err != nil {
		return nil, err
	}

	res := &CVResult{
		TargetNames: append([]string(nil), ds.TargetNames...),
		Trials:      make([]Trial, k),
		Averages:    make([]float64, ds.NumTargets()),
	}
	if cfg.Trace.Enabled() {
		cfg.Trace.Emit("cv_start",
			obs.Int("folds", k),
			obs.Int("samples", ds.Len()),
			obs.Int("targets", ds.NumTargets()),
		)
	}
	// Folds run concurrently, so their trace events would interleave
	// nondeterministically; the fork buffers each fold's events in a
	// per-fold slot and Join replays them in fold order — the trace-side
	// analogue of the in-order error reduction below.
	fork := cfg.Trace.Fork(k)
	err = sched.ForEachWorker(sched.Workers(workers), k, func(f, w int) error {
		slot := fork.Slot(f)
		span := slot.StartSpan("cv-fold", f, w)
		defer span.End()
		trainSet, valSet := shuffled.TrainValidation(folds, f)
		trialCfg := cfg
		trialCfg.Seed = sched.FoldSeed(seed, f)
		trialCfg.Trace = slot
		model, err := Fit(trainSet, trialCfg)
		if err != nil {
			return fmt.Errorf("core: trial %d: %w", f+1, err)
		}
		ev, err := Evaluate(model, valSet)
		if err != nil {
			return fmt.Errorf("core: trial %d evaluation: %w", f+1, err)
		}
		res.Trials[f] = Trial{
			Model:  model,
			Train:  trainSet,
			Val:    valSet,
			Errors: ev.HMRE,
		}
		if slot.Enabled() {
			fields := make([]obs.Field, 0, 3+len(ev.HMRE))
			fields = append(fields,
				obs.Int("fold", f),
				obs.String("stop_reason", string(model.TrainResult.Reason)),
				obs.Float("mean_hmre", stats.MeanSkipNaN(ev.HMRE)))
			for j, e := range ev.HMRE {
				fields = append(fields, obs.Float("hmre_"+res.TargetNames[j], e))
			}
			slot.Emit("fold", fields...)
		}
		return nil
	})
	fork.Join()
	if err != nil {
		return nil, err
	}
	// Reduce in ascending fold order — the same floating-point summation
	// order as the historical serial loop, whatever the worker count.
	// Undefined (NaN) trials are left out of an indicator's average
	// rather than poisoning it.
	for j := range res.Averages {
		var sum float64
		defined := 0
		for f := 0; f < k; f++ {
			e := res.Trials[f].Errors[j]
			if math.IsNaN(e) {
				continue
			}
			sum += e
			defined++
		}
		if defined == 0 {
			res.Averages[j] = math.NaN()
		} else {
			res.Averages[j] = sum / float64(defined)
		}
	}
	if cfg.Trace.Enabled() {
		fields := make([]obs.Field, 0, 1+len(res.Averages))
		fields = append(fields, obs.Float("overall_error", res.OverallError()))
		for j, a := range res.Averages {
			fields = append(fields, obs.Float("avg_hmre_"+res.TargetNames[j], a))
		}
		cfg.Trace.Emit("cv_summary", fields...)
	}
	return res, nil
}
