package core

import (
	"fmt"
	"math"

	"nnwc/internal/obs"
	"nnwc/internal/rng"
	"nnwc/internal/sched"
	"nnwc/internal/stats"
	"nnwc/internal/workload"
)

// Trial is one fold of a k-fold cross-validation: the model trained on the
// other k−1 folds, the datasets involved, and the per-indicator validation
// errors (harmonic mean of relative error, the paper's §3.3 metric).
type Trial struct {
	Model  *NNModel
	Train  *workload.Dataset
	Val    *workload.Dataset
	Errors []float64 // per indicator, as fractions (0.03 = 3%)
}

// CVResult is the material behind the paper's Table 2: per-trial,
// per-indicator validation errors plus their averages.
type CVResult struct {
	TargetNames []string
	Trials      []Trial
	// Averages[j] is the mean over trials of indicator j's error. Trials
	// on which the metric was undefined (NaN, e.g. all-zero actuals in
	// the fold) are skipped; Averages[j] is NaN only when every trial was
	// undefined for that indicator.
	Averages []float64
}

// OverallError averages across indicators and trials, skipping indicators
// whose error is undefined (NaN) in every trial.
func (r *CVResult) OverallError() float64 { return stats.MeanSkipNaN(r.Averages) }

// OverallAccuracy is the paper's headline number: 1 − overall error
// (reported as "an average prediction accuracy of 95%").
func (r *CVResult) OverallAccuracy() float64 { return 1 - r.OverallError() }

// CrossValidate performs k-fold cross-validation per §3.3 on the
// scheduler's default worker count; see CrossValidateWorkers.
func CrossValidate(ds *workload.Dataset, cfg Config, k int, seed uint64) (*CVResult, error) {
	return CrossValidateWorkers(ds, cfg, k, seed, 0)
}

// CrossValidateWorkers performs k-fold cross-validation per §3.3: the
// shuffled dataset is divided into k equal folds; for each trial one fold
// is held out for validation and the rest train the model. The paper
// hand-tuned the node count and termination threshold on the first trial
// and reused them for the rest — here cfg plays that role for every trial.
//
// Folds train concurrently on up to `workers` goroutines (<= 0 means the
// scheduler default). Each trial's seed derives from (seed, fold index)
// and the per-indicator averages reduce in fold order after all folds
// finish, so the result is bit-identical across worker counts — including
// the serial path the seed-reference test pins.
func CrossValidateWorkers(ds *workload.Dataset, cfg Config, k int, seed uint64, workers int) (*CVResult, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("core: cross-validation needs a non-empty dataset")
	}
	shuffled := ds.Clone()
	shuffled.Shuffle(rng.New(seed))
	folds, err := shuffled.KFold(k)
	if err != nil {
		return nil, err
	}

	targetNames := append([]string(nil), ds.TargetNames...)
	trials := make([]Trial, k)
	if cfg.Trace.Enabled() {
		cfg.Trace.Emit("cv_start",
			obs.Int("folds", k),
			obs.Int("samples", ds.Len()),
			obs.Int("targets", ds.NumTargets()),
		)
	}
	// Folds run concurrently, so their trace events would interleave
	// nondeterministically; the fork buffers each fold's events in a
	// per-fold slot and Join replays them in fold order — the trace-side
	// analogue of the in-order error reduction below.
	fork := cfg.Trace.Fork(k)
	err = sched.ForEachWorker(sched.Workers(workers), k, func(f, w int) error {
		slot := fork.Slot(f)
		span := slot.StartSpan("cv-fold", f, w)
		defer span.End()
		trial, err := cvTrial(shuffled, folds, cfg, seed, f, slot)
		if err != nil {
			return err
		}
		trials[f] = trial
		if slot.Enabled() {
			fields := make([]obs.Field, 0, 3+len(trial.Errors))
			fields = append(fields,
				obs.Int("fold", f),
				obs.String("stop_reason", string(trial.Model.TrainResult.Reason)),
				obs.Float("mean_hmre", stats.MeanSkipNaN(trial.Errors)))
			for j, e := range trial.Errors {
				fields = append(fields, obs.Float("hmre_"+targetNames[j], e))
			}
			slot.Emit("fold", fields...)
		}
		return nil
	})
	fork.Join()
	if err != nil {
		return nil, err
	}
	res := ReduceTrials(targetNames, trials)
	if cfg.Trace.Enabled() {
		fields := make([]obs.Field, 0, 1+len(res.Averages))
		fields = append(fields, obs.Float("overall_error", res.OverallError()))
		for j, a := range res.Averages {
			fields = append(fields, obs.Float("avg_hmre_"+res.TargetNames[j], a))
		}
		cfg.Trace.Emit("cv_summary", fields...)
	}
	return res, nil
}

// cvTrial trains and evaluates fold f against the pre-shuffled dataset:
// the per-fold unit both the local scheduler and the distributed plane
// execute. The fold's seed derives only from (seed, f), so the trial is
// location-independent.
func cvTrial(shuffled *workload.Dataset, folds [][]int, cfg Config, seed uint64, f int, slot *obs.Trace) (Trial, error) {
	trainSet, valSet := shuffled.TrainValidation(folds, f)
	trialCfg := cfg
	trialCfg.Seed = sched.FoldSeed(seed, f)
	trialCfg.Trace = slot
	model, err := Fit(trainSet, trialCfg)
	if err != nil {
		return Trial{}, fmt.Errorf("core: trial %d: %w", f+1, err)
	}
	ev, err := Evaluate(model, valSet)
	if err != nil {
		return Trial{}, fmt.Errorf("core: trial %d evaluation: %w", f+1, err)
	}
	return Trial{Model: model, Train: trainSet, Val: valSet, Errors: ev.HMRE}, nil
}

// CrossValidateFold computes fold `fold` of the k-fold protocol in
// isolation: the same shuffle, fold split, per-fold seed, training and
// evaluation CrossValidateWorkers performs for that fold. This is the
// task unit the distributed experiment plane ships to workers — its
// Errors are bit-identical to fold `fold`'s slot in a local run.
func CrossValidateFold(ds *workload.Dataset, cfg Config, k int, seed uint64, fold int) (Trial, error) {
	if ds == nil || ds.Len() == 0 {
		return Trial{}, fmt.Errorf("core: cross-validation needs a non-empty dataset")
	}
	shuffled := ds.Clone()
	shuffled.Shuffle(rng.New(seed))
	folds, err := shuffled.KFold(k)
	if err != nil {
		return Trial{}, err
	}
	if fold < 0 || fold >= k {
		return Trial{}, fmt.Errorf("core: fold %d out of range [0,%d)", fold, k)
	}
	return cvTrial(shuffled, folds, cfg, seed, fold, nil)
}

// ReduceTrials assembles a CVResult from per-fold trials, averaging each
// indicator in ascending fold order — the same floating-point summation
// order as the historical serial loop, whatever computed the folds (local
// workers or remote machines). Undefined (NaN) trials are left out of an
// indicator's average rather than poisoning it.
func ReduceTrials(targetNames []string, trials []Trial) *CVResult {
	res := &CVResult{
		TargetNames: targetNames,
		Trials:      trials,
		Averages:    make([]float64, len(targetNames)),
	}
	for j := range res.Averages {
		var sum float64
		defined := 0
		for f := range trials {
			e := trials[f].Errors[j]
			if math.IsNaN(e) {
				continue
			}
			sum += e
			defined++
		}
		if defined == 0 {
			res.Averages[j] = math.NaN()
		} else {
			res.Averages[j] = sum / float64(defined)
		}
	}
	return res
}
