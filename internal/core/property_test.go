package core

import (
	"math"
	"testing"
	"testing/quick"

	"nnwc/internal/rng"
	"nnwc/internal/workload"
)

// perfectPredictor echoes the dataset's own targets by memorizing X→Y.
type perfectPredictor struct {
	ds *workload.Dataset
}

func (p perfectPredictor) Predict(x []float64) []float64 {
	for _, s := range p.ds.Samples {
		match := true
		for j := range x {
			if s.X[j] != x[j] {
				match = false
				break
			}
		}
		if match {
			return append([]float64(nil), s.Y...)
		}
	}
	return make([]float64, p.ds.NumTargets())
}

func TestEvaluatePerfectPredictorIsZeroError(t *testing.T) {
	ds := syntheticDataset(30, 40)
	ev, err := Evaluate(perfectPredictor{ds}, ds)
	if err != nil {
		t.Fatal(err)
	}
	for j := range ev.HMRE {
		if ev.HMRE[j] != 0 || ev.MAPE[j] != 0 || ev.RMSE[j] != 0 {
			t.Fatalf("perfect predictor scored nonzero error: %+v", ev)
		}
		if ev.R2[j] != 1 {
			t.Fatalf("perfect predictor R² %v", ev.R2[j])
		}
	}
	if ev.Accuracy() != 1 {
		t.Fatalf("accuracy %v", ev.Accuracy())
	}
}

// TestPredictIsPureFunction: repeated predictions on the same input return
// identical values (no hidden state in the scaler/network path).
func TestPredictIsPureFunction(t *testing.T) {
	ds := syntheticDataset(60, 41)
	m, err := Fit(ds, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(func(seed uint64) bool {
		src := rng.New(seed)
		x := []float64{src.Uniform(-2, 2), src.Uniform(-2, 2)}
		a := m.Predict(x)
		b := m.Predict(x)
		return a[0] == b[0] && a[1] == b[1]
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPredictDoesNotMutateInput: the scaling path must copy, not modify,
// the caller's configuration vector.
func TestPredictDoesNotMutateInput(t *testing.T) {
	ds := syntheticDataset(40, 42)
	m, err := Fit(ds, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1.25, -0.75}
	orig := append([]float64(nil), x...)
	m.Predict(x)
	for j := range x {
		if x[j] != orig[j] {
			t.Fatal("Predict mutated its input")
		}
	}
}

// TestFitInsensitiveToFeatureScaling: with standardization on (the §3.1
// pipeline), multiplying a feature column by a constant must not change
// the learned function materially — the scaler absorbs it.
func TestFitInsensitiveToFeatureScaling(t *testing.T) {
	ds := syntheticDataset(100, 43)
	scaled := ds.Clone()
	const k = 1000.0
	for i := range scaled.Samples {
		scaled.Samples[i].X[0] *= k
	}
	m1, err := Fit(ds, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Fit(scaled, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Compare predictions at matched points.
	src := rng.New(9)
	for i := 0; i < 20; i++ {
		a, b := src.Uniform(-2, 2), src.Uniform(-2, 2)
		p1 := m1.Predict([]float64{a, b})
		p2 := m2.Predict([]float64{a * k, b})
		for j := range p1 {
			denom := math.Abs(p1[j]) + 1
			if math.Abs(p1[j]-p2[j])/denom > 0.02 {
				t.Fatalf("scaling broke invariance: %v vs %v", p1[j], p2[j])
			}
		}
	}
}

// TestCrossValidateTrialsAreIndependent: the per-trial models must differ
// (different training folds), while every trial shares the schema.
func TestCrossValidateTrialsAreIndependent(t *testing.T) {
	ds := syntheticDataset(80, 44)
	cv, err := CrossValidate(ds, fastConfig(), 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.5, 0.5}
	preds := map[float64]bool{}
	for _, tr := range cv.Trials {
		preds[tr.Model.Predict(x)[0]] = true
		if tr.Model.InputDim() != 2 || tr.Model.OutputDim() != 2 {
			t.Fatal("trial model schema wrong")
		}
	}
	if len(preds) < 2 {
		t.Fatal("all trial models predict identically — folds not independent?")
	}
}

// TestLooseFitBeatsOverfitOnNoisyData reproduces §3.3's core claim as a
// property of the library: with noisy targets, a loose loss threshold
// yields validation error no worse than an aggressively tight fit.
func TestLooseFitBeatsOverfitOnNoisyData(t *testing.T) {
	src := rng.New(45)
	noisy := workload.NewDataset([]string{"a"}, []string{"y"})
	for i := 0; i < 60; i++ {
		a := src.Uniform(-2, 2)
		noisy.MustAppend(workload.Sample{
			X: []float64{a},
			Y: []float64{5 + a*a + src.NormMeanStd(0, 0.3)},
		})
	}
	clean := workload.NewDataset([]string{"a"}, []string{"y"})
	for i := 0; i < 40; i++ {
		a := src.Uniform(-2, 2)
		clean.MustAppend(workload.Sample{X: []float64{a}, Y: []float64{5 + a*a}})
	}

	run := func(target float64) float64 {
		cfg := fastConfig()
		cfg.Hidden = []int{24} // plenty of capacity to overfit with
		tc := *cfg.Train
		tc.TargetLoss = target
		tc.MaxEpochs = 3000
		cfg.Train = &tc
		m, err := Fit(noisy, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := Evaluate(m, clean)
		if err != nil {
			t.Fatal(err)
		}
		return ev.MeanHMRE()
	}
	loose := run(5e-3)
	tight := run(1e-9)
	if loose > tight*1.5 {
		t.Fatalf("loose fit (%.3f) much worse than tight fit (%.3f); §3.3 property violated", loose, tight)
	}
}
