package core

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"testing"
)

// TestGoldenModelRoundTrip loads the committed model fixture written by the
// pre-flat-weights implementation and checks it predicts identically under
// the flat-parameter network. This pins the persisted-model format across
// the memory-layout refactor: scaler parameters, schema, and nested weight
// rows all keep loading.
func TestGoldenModelRoundTrip(t *testing.T) {
	f, err := os.Open("testdata/golden_model.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	model, err := LoadModel(f)
	if err != nil {
		t.Fatalf("golden model no longer loads: %v", err)
	}
	if model.InputDim() != 2 || model.OutputDim() != 2 {
		t.Fatalf("golden model dims %d->%d", model.InputDim(), model.OutputDim())
	}

	raw, err := os.ReadFile("testdata/golden_model_predictions.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Probes      [][]float64 `json:"probes"`
		Predictions [][]float64 `json:"predictions"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Probes) == 0 {
		t.Fatal("golden fixture has no probes")
	}
	for i, x := range doc.Probes {
		got := model.Predict(x)
		for j, want := range doc.Predictions[i] {
			if math.Abs(got[j]-want) > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("probe %d output %d: got %v, golden %v", i, j, got[j], want)
			}
		}
	}

	// The batched path must agree with the per-probe path exactly.
	batch := model.PredictAll(doc.Probes)
	for i := range doc.Probes {
		for j, want := range doc.Predictions[i] {
			if math.Abs(batch[i][j]-want) > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("batched probe %d output %d: got %v, golden %v", i, j, batch[i][j], want)
			}
		}
	}

	// Saving the loaded model and loading it again must round-trip.
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range doc.Probes {
		got, want := back.Predict(x), model.Predict(x)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("re-saved probe %d output %d drifted: %v vs %v", i, j, got[j], want[j])
			}
		}
	}
}
