package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"nnwc/internal/nn"
	"nnwc/internal/preprocess"
)

// modelJSON is the on-disk representation of an NNModel: schema, scaler
// parameters, and the network weights. The format is plain JSON so models
// are diffable and inspectable.
type modelJSON struct {
	FeatureNames []string   `json:"feature_names"`
	TargetNames  []string   `json:"target_names"`
	XScaler      scalerJSON `json:"x_scaler"`
	YScaler      scalerJSON `json:"y_scaler"`
	// FeatureMin/FeatureMax carry the training envelope when the model
	// recorded one; absent in artifacts written before the field existed.
	FeatureMin []float64 `json:"feature_min,omitempty"`
	FeatureMax []float64 `json:"feature_max,omitempty"`
	// ParamsF32 is the float32 quantization of the network parameters,
	// flat in nn.Network.Params layout. Written at persist time (train in
	// f64, quantize once); absent in artifacts written before the field
	// existed. Go's JSON encoding of float32 is shortest-round-trip, so
	// the quantized values survive save/load bit-exactly.
	ParamsF32 []float32       `json:"params_f32,omitempty"`
	Network   json.RawMessage `json:"network"`
}

type scalerJSON struct {
	Kind string    `json:"kind"` // "standardizer" | "identity"
	Mean []float64 `json:"mean,omitempty"`
	Std  []float64 `json:"std,omitempty"`
	Dims int       `json:"dims,omitempty"`
}

func encodeScaler(s preprocess.Scaler) (scalerJSON, error) {
	switch sc := s.(type) {
	case *preprocess.Standardizer:
		return scalerJSON{Kind: "standardizer", Mean: sc.Mean(), Std: sc.Std()}, nil
	case *preprocess.Identity:
		return scalerJSON{Kind: "identity", Dims: sc.Dims()}, nil
	}
	return scalerJSON{}, fmt.Errorf("core: cannot persist scaler of type %T", s)
}

func decodeScaler(sj scalerJSON) (preprocess.Scaler, error) {
	switch sj.Kind {
	case "standardizer":
		if len(sj.Mean) == 0 || len(sj.Mean) != len(sj.Std) {
			return nil, fmt.Errorf("core: malformed standardizer parameters")
		}
		// Rebuild by fitting on two rows that reproduce the recorded
		// mean and std exactly: mean±std has mean `mean` and population
		// std `std`.
		rows := [][]float64{make([]float64, len(sj.Mean)), make([]float64, len(sj.Mean))}
		for j := range sj.Mean {
			rows[0][j] = sj.Mean[j] - sj.Std[j]
			rows[1][j] = sj.Mean[j] + sj.Std[j]
		}
		sc := preprocess.NewStandardizer()
		if err := sc.Fit(rows); err != nil {
			return nil, err
		}
		return sc, nil
	case "identity":
		sc := preprocess.NewIdentity()
		if sj.Dims > 0 {
			if err := sc.Fit([][]float64{make([]float64, sj.Dims)}); err != nil {
				return nil, err
			}
		}
		return sc, nil
	}
	return nil, fmt.Errorf("core: unknown scaler kind %q", sj.Kind)
}

// Save writes the model as JSON.
func (m *NNModel) Save(w io.Writer) error {
	xs, err := encodeScaler(m.XScaler)
	if err != nil {
		return err
	}
	ys, err := encodeScaler(m.YScaler)
	if err != nil {
		return err
	}
	var netBuf bytes.Buffer
	if err := m.Net.Save(&netBuf); err != nil {
		return err
	}
	paramsF32 := m.ParamsF32
	if paramsF32 == nil {
		paramsF32 = m.Net.QuantizeParams()
	}
	doc := modelJSON{
		FeatureNames: m.FeatureNames,
		TargetNames:  m.TargetNames,
		XScaler:      xs,
		YScaler:      ys,
		FeatureMin:   m.FeatureMin,
		FeatureMax:   m.FeatureMax,
		ParamsF32:    paramsF32,
		Network:      json.RawMessage(netBuf.Bytes()),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// LoadModel reads a model previously written by Save.
func LoadModel(r io.Reader) (*NNModel, error) {
	var doc modelJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	xScaler, err := decodeScaler(doc.XScaler)
	if err != nil {
		return nil, err
	}
	yScaler, err := decodeScaler(doc.YScaler)
	if err != nil {
		return nil, err
	}
	net, err := nn.Load(bytes.NewReader(doc.Network))
	if err != nil {
		return nil, err
	}
	m := &NNModel{
		FeatureNames: doc.FeatureNames,
		TargetNames:  doc.TargetNames,
		XScaler:      xScaler,
		YScaler:      yScaler,
		FeatureMin:   doc.FeatureMin,
		FeatureMax:   doc.FeatureMax,
		Net:          net,
	}
	if net.InputDim() != len(m.FeatureNames) || net.OutputDim() != len(m.TargetNames) {
		return nil, fmt.Errorf("core: network dims (%d,%d) do not match schema (%d,%d)",
			net.InputDim(), net.OutputDim(), len(m.FeatureNames), len(m.TargetNames))
	}
	if (m.FeatureMin != nil || m.FeatureMax != nil) &&
		(len(m.FeatureMin) != len(m.FeatureNames) || len(m.FeatureMax) != len(m.FeatureNames)) {
		return nil, fmt.Errorf("core: training envelope has %d/%d entries for %d features",
			len(m.FeatureMin), len(m.FeatureMax), len(m.FeatureNames))
	}
	if doc.ParamsF32 != nil {
		if len(doc.ParamsF32) != net.NumParams() {
			return nil, fmt.Errorf("core: quantized vector has %d parameters, network has %d",
				len(doc.ParamsF32), net.NumParams())
		}
		m.ParamsF32 = doc.ParamsF32
	}
	return m, nil
}

// SaveFile writes the model to path, atomically: the JSON lands in a
// temporary sibling file that is renamed into place, so a concurrent reader
// (the prediction server's hot reload) never observes a half-written
// artifact.
func (m *NNModel) SaveFile(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := m.Save(tmp); err != nil {
		_ = tmp.Close() // the save error is the one worth returning
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadModelFile opens path and loads the model persisted there.
func LoadModelFile(path string) (*NNModel, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadModel(f)
}
