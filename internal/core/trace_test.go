package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"nnwc/internal/obs"
)

// tracedCV runs the standard seeded cross-validation with tracing enabled
// at the given worker count and returns the raw JSONL plus the result.
func tracedCV(t *testing.T, workers int) ([]byte, *CVResult) {
	t.Helper()
	ds := syntheticDataset(120, 42)
	cfg := fastConfig()
	cfg.Train.RecordEvery = 100
	var buf bytes.Buffer
	cfg.Trace = obs.NewTraceNoTime(obs.NewWriterSink(&buf))
	res, err := CrossValidateWorkers(ds, cfg, 4, 7, workers)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

// TestTracedCrossValidationMatchesSeedReference proves tracing is inert:
// with a trace attached, the pinned Table-2 reference numbers must still
// reproduce to 1e-9.
func TestTracedCrossValidationMatchesSeedReference(t *testing.T) {
	_, res := tracedCV(t, 1)
	for j, want := range []float64{seedRefAvg0, seedRefAvg1} {
		if math.Abs(res.Averages[j]-want) > 1e-9 {
			t.Fatalf("avg[%d] = %.17g with tracing on, seed reference %.17g",
				j, res.Averages[j], want)
		}
	}
	if got := res.OverallError(); math.Abs(got-seedRefOverall) > 1e-9 {
		t.Fatalf("overall = %.17g with tracing on, seed reference %.17g", got, seedRefOverall)
	}
}

// TestTraceDeterministicAcrossWorkers pins the Fork/Slot/Join ordering: the
// canonical trace (volatile keys stripped) must be byte-identical across
// repeated runs AND across worker counts.
func TestTraceDeterministicAcrossWorkers(t *testing.T) {
	canon := func(workers int) []byte {
		raw, _ := tracedCV(t, workers)
		c, err := obs.CanonicalizeJSONL(raw)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	ref := canon(1)
	if len(ref) == 0 {
		t.Fatal("empty canonical trace")
	}
	again := canon(1)
	if !bytes.Equal(ref, again) {
		t.Fatal("same-worker repeat produced a different canonical trace")
	}
	for _, w := range []int{2, 8} {
		if got := canon(w); !bytes.Equal(ref, got) {
			t.Fatalf("canonical trace at workers=%d differs from workers=1", w)
		}
	}
}

// TestCrossValidationTraceShape checks the event stream structure: cv_start
// first, folds emitted in ascending order with per-target errors, spans for
// every fold, and a cv_summary carrying the overall error.
func TestCrossValidationTraceShape(t *testing.T) {
	raw, res := tracedCV(t, 4)
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if !strings.Contains(lines[0], `"ev":"cv_start"`) {
		t.Fatalf("first event is not cv_start: %s", lines[0])
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, `"ev":"cv_summary"`) || !strings.Contains(last, `"overall_error":`) {
		t.Fatalf("last event is not a cv_summary with overall_error: %s", last)
	}

	sum, err := obs.SummarizeTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if sum.ByName["fold"] != 4 {
		t.Fatalf("expected 4 fold events, got %d", sum.ByName["fold"])
	}
	if sp := sum.Spans["cv-fold"]; sp.Count != 4 {
		t.Fatalf("expected 4 cv-fold spans, got %d", sp.Count)
	}
	if sum.ByName["fit_start"] != 4 || sum.ByName["fit_end"] != 4 {
		t.Fatalf("expected one fit per fold, got start=%d end=%d",
			sum.ByName["fit_start"], sum.ByName["fit_end"])
	}
	for f := 0; f < 4; f++ {
		got, ok := sum.FoldErrors[f]
		if !ok {
			t.Fatalf("fold %d missing from trace", f)
		}
		// The fold event's mean_hmre must agree with the computed trial.
		var want float64
		n := 0
		for _, e := range res.Trials[f].Errors {
			if !math.IsNaN(e) {
				want += e
				n++
			}
		}
		want /= float64(n)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("fold %d traced mean_hmre %g != computed %g", f, got, want)
		}
	}

	// Fold events must appear in ascending fold order (Join replays slots
	// in index order).
	prev := -1
	for _, l := range lines {
		if !strings.Contains(l, `"ev":"fold"`) {
			continue
		}
		idx := strings.Index(l, `"fold":`)
		f := int(l[idx+len(`"fold":`)] - '0')
		if f <= prev {
			t.Fatalf("fold events out of order: %d after %d", f, prev)
		}
		prev = f
	}
}

// TestEnsembleTraceDeterministic covers the second fan-out path.
func TestEnsembleTraceDeterministic(t *testing.T) {
	run := func(workers int) []byte {
		ds := syntheticDataset(80, 13)
		cfg := fastConfig()
		cfg.Train.MaxEpochs = 200
		var buf bytes.Buffer
		cfg.Trace = obs.NewTraceNoTime(obs.NewWriterSink(&buf))
		if _, err := FitEnsembleWorkers(ds, cfg, 3, workers); err != nil {
			t.Fatal(err)
		}
		c, err := obs.CanonicalizeJSONL(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	ref := run(1)
	if len(ref) == 0 {
		t.Fatal("ensemble fit emitted no events")
	}
	for _, w := range []int{2, 8} {
		if got := run(w); !bytes.Equal(ref, got) {
			t.Fatalf("ensemble canonical trace at workers=%d differs from workers=1", w)
		}
	}
}
