package core

import (
	"bytes"
	"math"
	"testing"

	"nnwc/internal/nn"
	"nnwc/internal/preprocess"
	"nnwc/internal/rng"
	"nnwc/internal/train"
	"nnwc/internal/workload"
)

// syntheticDataset samples a smooth non-linear 2→2 function.
func syntheticDataset(n int, seed uint64) *workload.Dataset {
	src := rng.New(seed)
	ds := workload.NewDataset([]string{"a", "b"}, []string{"u", "v"})
	for i := 0; i < n; i++ {
		a, b := src.Uniform(-2, 2), src.Uniform(-2, 2)
		ds.MustAppend(workload.Sample{
			X: []float64{a, b},
			Y: []float64{10 + 3*a*a - b, 5 + math.Sin(a) + 2*b},
		})
	}
	return ds
}

func fastConfig() Config {
	tc := train.DefaultConfig()
	tc.MaxEpochs = 800
	return Config{Hidden: []int{10}, Train: &tc, Seed: 1}
}

func TestFitLearnsNonlinearFunction(t *testing.T) {
	ds := syntheticDataset(150, 7)
	model, err := Fit(ds, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	test := syntheticDataset(40, 8)
	ev, err := Evaluate(model, test)
	if err != nil {
		t.Fatal(err)
	}
	for j, e := range ev.HMRE {
		if e > 0.05 {
			t.Fatalf("indicator %d error %.2f%% — MLP failed to learn a smooth function", j, e*100)
		}
	}
	if ev.Accuracy() < 0.95 {
		t.Fatalf("accuracy %.2f", ev.Accuracy())
	}
}

func TestFitErrorsOnEmpty(t *testing.T) {
	if _, err := Fit(nil, Config{}); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := Fit(workload.NewDataset([]string{"x"}, []string{"y"}), Config{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestDefaultsFillEverything(t *testing.T) {
	c := Config{}.Defaults()
	if len(c.Hidden) == 0 || c.HiddenActivation == nil || c.OutputActivation == nil ||
		c.StandardizeInputs == nil || c.Init == nil || c.Train == nil {
		t.Fatalf("Defaults left gaps: %+v", c)
	}
	if c.HiddenActivation.Name() != "logistic(1)" {
		t.Fatalf("default hidden activation %s, want the paper's sigmoid", c.HiddenActivation.Name())
	}
}

func TestStandardizeModes(t *testing.T) {
	ds := syntheticDataset(60, 9)
	// Auto with m>1 targets: Y scaler should be a Standardizer.
	m1, err := Fit(ds, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m1.YScaler.(*preprocess.Standardizer); !ok {
		t.Fatalf("auto mode with 2 targets: Y scaler is %T", m1.YScaler)
	}
	// Never: identity.
	cfg := fastConfig()
	cfg.StandardizeOutputs = StandardizeNever
	m2, err := Fit(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m2.YScaler.(*preprocess.Identity); !ok {
		t.Fatalf("never mode: Y scaler is %T", m2.YScaler)
	}
	// Single target + auto: identity (the paper's §3.1 rule).
	single := workload.NewDataset([]string{"x"}, []string{"y"})
	src := rng.New(1)
	for i := 0; i < 40; i++ {
		v := src.Uniform(-1, 1)
		single.MustAppend(workload.Sample{X: []float64{v}, Y: []float64{v * v}})
	}
	m3, err := Fit(single, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m3.YScaler.(*preprocess.Identity); !ok {
		t.Fatalf("auto mode with 1 target: Y scaler is %T", m3.YScaler)
	}
	// Inputs can be left raw for ablation.
	f := false
	cfg2 := fastConfig()
	cfg2.StandardizeInputs = &f
	m4, err := Fit(ds, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m4.XScaler.(*preprocess.Identity); !ok {
		t.Fatalf("inputs not left raw: %T", m4.XScaler)
	}
}

func TestFitDeterministicInSeed(t *testing.T) {
	ds := syntheticDataset(80, 10)
	a, err := Fit(ds, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(ds, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.5, -0.5}
	if a.Predict(x)[0] != b.Predict(x)[0] {
		t.Fatal("same config+seed gave different models")
	}
	cfg := fastConfig()
	cfg.Seed = 999
	c, err := Fit(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Predict(x)[0] == c.Predict(x)[0] {
		t.Fatal("different seeds gave identical models (suspicious)")
	}
}

func TestFitWithValidationEarlyStops(t *testing.T) {
	ds := syntheticDataset(100, 11)
	val := syntheticDataset(30, 12)
	cfg := fastConfig()
	tc := *cfg.Train
	tc.Patience = 25
	tc.MaxEpochs = 4000
	tc.TargetLoss = 0 // disable the loss threshold so patience governs
	cfg.Train = &tc
	m, err := FitWithValidation(ds, val, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.TrainResult.Reason != train.StopEarly && m.TrainResult.Reason != train.StopMaxEpochs {
		t.Fatalf("stop reason %s", m.TrainResult.Reason)
	}
	if math.IsNaN(m.TrainResult.ValLoss) {
		t.Fatal("validation loss not recorded")
	}
	if _, err := FitWithValidation(ds, nil, cfg); err == nil {
		t.Fatal("nil validation dataset accepted")
	}
}

func TestPredictAllAndDims(t *testing.T) {
	ds := syntheticDataset(50, 13)
	m, err := Fit(ds, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.InputDim() != 2 || m.OutputDim() != 2 {
		t.Fatalf("dims %d→%d", m.InputDim(), m.OutputDim())
	}
	out := m.PredictAll(ds.Xs()[:5])
	if len(out) != 5 || len(out[0]) != 2 {
		t.Fatal("PredictAll shape wrong")
	}
}

func TestEvaluateErrors(t *testing.T) {
	ds := syntheticDataset(30, 14)
	m, err := Fit(ds, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	empty := workload.NewDataset(ds.FeatureNames, ds.TargetNames)
	if _, err := Evaluate(m, empty); err == nil {
		t.Fatal("empty evaluation accepted")
	}
	// Dimensionality mismatch between predictor and dataset.
	wrong := workload.NewDataset([]string{"a", "b"}, []string{"only"})
	wrong.MustAppend(workload.Sample{X: []float64{1, 2}, Y: []float64{3}})
	if _, err := Evaluate(m, wrong); err == nil {
		t.Fatal("output-dim mismatch accepted")
	}
}

func TestEvaluationMetricsConsistent(t *testing.T) {
	ds := syntheticDataset(60, 15)
	m, err := Fit(ds, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(m, ds)
	if err != nil {
		t.Fatal(err)
	}
	for j := range ev.HMRE {
		if ev.HMRE[j] < 0 || ev.MAPE[j] < 0 || ev.RMSE[j] < 0 {
			t.Fatal("negative error metric")
		}
		// HM ≤ AM on the same relative errors.
		if ev.HMRE[j] > ev.MAPE[j]+1e-12 {
			t.Fatalf("HMRE %v exceeds MAPE %v", ev.HMRE[j], ev.MAPE[j])
		}
		if ev.R2[j] > 1 {
			t.Fatalf("R² %v > 1", ev.R2[j])
		}
	}
	if ev.MeanHMRE() != (ev.HMRE[0]+ev.HMRE[1])/2 {
		t.Fatal("MeanHMRE wrong")
	}
	if math.Abs(ev.Accuracy()-(1-ev.MeanHMRE())) > 1e-15 {
		t.Fatal("Accuracy inconsistent")
	}
}

func TestCrossValidateShape(t *testing.T) {
	ds := syntheticDataset(100, 16)
	cv, err := CrossValidate(ds, fastConfig(), 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cv.Trials) != 5 {
		t.Fatalf("%d trials", len(cv.Trials))
	}
	totalVal := 0
	for i, tr := range cv.Trials {
		if len(tr.Errors) != 2 {
			t.Fatalf("trial %d has %d errors", i, len(tr.Errors))
		}
		if tr.Train.Len()+tr.Val.Len() != 100 {
			t.Fatalf("trial %d splits to %d+%d", i, tr.Train.Len(), tr.Val.Len())
		}
		totalVal += tr.Val.Len()
	}
	if totalVal != 100 {
		t.Fatalf("validation folds cover %d of 100", totalVal)
	}
	// Averages match the trials.
	for j := range cv.Averages {
		var sum float64
		for _, tr := range cv.Trials {
			sum += tr.Errors[j]
		}
		if math.Abs(cv.Averages[j]-sum/5) > 1e-12 {
			t.Fatal("averages inconsistent with trials")
		}
	}
	if math.Abs(cv.OverallAccuracy()-(1-cv.OverallError())) > 1e-15 {
		t.Fatal("overall accuracy inconsistent")
	}
}

func TestCrossValidateErrors(t *testing.T) {
	if _, err := CrossValidate(nil, Config{}, 5, 1); err == nil {
		t.Fatal("nil dataset accepted")
	}
	small := syntheticDataset(3, 17)
	if _, err := CrossValidate(small, fastConfig(), 5, 1); err == nil {
		t.Fatal("k > n accepted")
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	ds := syntheticDataset(60, 18)
	a, err := CrossValidate(ds, fastConfig(), 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidate(ds, fastConfig(), 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Averages {
		if a.Averages[j] != b.Averages[j] {
			t.Fatal("cross-validation not deterministic")
		}
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	ds := syntheticDataset(60, 19)
	m, err := Fit(ds, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.FeatureNames[0] != "a" || back.TargetNames[1] != "v" {
		t.Fatal("schema lost")
	}
	for _, x := range [][]float64{{0, 0}, {1.5, -1}, {-2, 2}} {
		a, b := m.Predict(x), back.Predict(x)
		for j := range a {
			if math.Abs(a[j]-b[j]) > 1e-9 {
				t.Fatalf("loaded model predicts %v, original %v", b[j], a[j])
			}
		}
	}
}

func TestModelSaveLoadIdentityScalers(t *testing.T) {
	// Single-target model keeps an Identity Y scaler; it must survive the
	// round trip too.
	src := rng.New(20)
	ds := workload.NewDataset([]string{"x"}, []string{"y"})
	for i := 0; i < 40; i++ {
		v := src.Uniform(-1, 1)
		ds.MustAppend(workload.Sample{X: []float64{v}, Y: []float64{3 * v}})
	}
	m, err := Fit(ds, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.4}
	if math.Abs(m.Predict(x)[0]-back.Predict(x)[0]) > 1e-9 {
		t.Fatal("identity-scaler model round trip failed")
	}
}

func TestLoadModelRejectsCorrupt(t *testing.T) {
	cases := []string{
		``,
		`{}`,
		`{"feature_names":["a"],"target_names":["y"],"x_scaler":{"kind":"what"},"y_scaler":{"kind":"identity"},"network":{"layers":[]}}`,
		`{"feature_names":["a","b"],"target_names":["y"],"x_scaler":{"kind":"identity","dims":2},"y_scaler":{"kind":"identity","dims":1},"network":{"layers":[{"inputs":3,"outputs":1,"activation":"tanh","w":[[1,2,3]],"b":[0]}]}}`,
	}
	for i, c := range cases {
		if _, err := LoadModel(bytes.NewReader([]byte(c))); err == nil {
			t.Errorf("case %d: corrupt model accepted", i)
		}
	}
}

func TestCustomActivationConfig(t *testing.T) {
	// The LNN path through core: LogCompress hidden activation.
	ds := syntheticDataset(60, 21)
	cfg := fastConfig()
	cfg.HiddenActivation = nn.LogCompress{}
	m, err := Fit(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(m, ds)
	if err != nil {
		t.Fatal(err)
	}
	if ev.MeanHMRE() > 0.10 {
		t.Fatalf("LNN training error %.1f%%", ev.MeanHMRE()*100)
	}
}
