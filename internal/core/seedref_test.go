package core

import (
	"math"
	"testing"
)

// Reference Table-2 cross-validation numbers captured from the pre-refactor
// (per-sample, ragged-weights) implementation on the standard synthetic
// setup. The flat-parameter / batched compute spine keeps every
// floating-point rounding step of the serial training path, so these must
// keep reproducing to well under 1e-9.
const (
	seedRefAvg0    = 0.0027368722195466755
	seedRefAvg1    = 0.0022901977227838028
	seedRefOverall = 0.0025135349711652389
)

// TestCrossValidationMatchesSeedReference pins numerical equivalence of the
// end-to-end pipeline (standardize → init → RPROP training → HMRE metric)
// across the memory-layout refactor.
func TestCrossValidationMatchesSeedReference(t *testing.T) {
	ds := syntheticDataset(120, 42)
	res, err := CrossValidate(ds, fastConfig(), 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Averages) != 2 {
		t.Fatalf("expected 2 indicators, got %d", len(res.Averages))
	}
	for j, want := range []float64{seedRefAvg0, seedRefAvg1} {
		if math.Abs(res.Averages[j]-want) > 1e-9 {
			t.Fatalf("avg[%d] = %.17g, seed reference %.17g (diff %g)",
				j, res.Averages[j], want, res.Averages[j]-want)
		}
	}
	if got := res.OverallError(); math.Abs(got-seedRefOverall) > 1e-9 {
		t.Fatalf("overall = %.17g, seed reference %.17g", got, seedRefOverall)
	}
}
