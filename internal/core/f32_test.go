package core

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"testing"
)

// f32PredTol bounds the per-prediction relative divergence between the f64
// network and its float32 quantization. Quantizing weights perturbs each
// parameter by at most 2⁻²⁴ relative (~6e-8); through the small MLPs here
// that amplifies a few orders of magnitude at worst, staying far below the
// model's own ~1e-2 HMRE. The budget's rationale lives in DESIGN.md §13.
const f32PredTol = 1e-4

// f32HMRETol bounds the divergence of the paper's aggregate HMRE metric
// between the two precisions (aggregation averages out the per-prediction
// quantization noise).
const f32HMRETol = 1e-5

// TestF32PredictionParity pins the f64-vs-f32 accuracy budget: predictions
// and the HMRE metric from the quantized path must track the float64 path
// within the documented tolerances.
func TestF32PredictionParity(t *testing.T) {
	ds := syntheticDataset(150, 7)
	m, err := Fit(ds, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	f32m, err := m.F32()
	if err != nil {
		t.Fatal(err)
	}
	if f32m.InputDim() != m.InputDim() || f32m.OutputDim() != m.OutputDim() {
		t.Fatalf("f32 twin dims %d->%d, model %d->%d", f32m.InputDim(), f32m.OutputDim(), m.InputDim(), m.OutputDim())
	}

	xs := ds.Xs()
	p64 := m.PredictAll(xs)
	p32 := f32m.PredictAll(xs)
	for i := range xs {
		for j := range p64[i] {
			rel := math.Abs(p32[i][j]-p64[i][j]) / (1 + math.Abs(p64[i][j]))
			if rel > f32PredTol {
				t.Fatalf("row %d output %d: f32 %v vs f64 %v (rel %v > %v)",
					i, j, p32[i][j], p64[i][j], rel, f32PredTol)
			}
		}
	}

	e64, err := Evaluate(m, ds)
	if err != nil {
		t.Fatal(err)
	}
	e32, err := Evaluate(f32m, ds)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(e32.MeanHMRE() - e64.MeanHMRE()); !(d <= f32HMRETol) {
		t.Fatalf("HMRE diverged by %v (> %v): f64 %v, f32 %v", d, f32HMRETol, e64.MeanHMRE(), e32.MeanHMRE())
	}

	// The per-row and batched f32 paths share one kernel: bit-identical.
	single := f32m.Predict(xs[3])
	for j := range single {
		if single[j] != p32[3][j] {
			t.Fatalf("f32 Predict/PredictAll disagree at output %d: %v vs %v", j, single[j], p32[3][j])
		}
	}
}

// TestQuantizedArtifactRoundTrip pins persist-time quantization: Save writes
// a params_f32 vector that survives the JSON round trip bit-exactly, and a
// reloaded artifact serves the same f32 predictions as the live model.
func TestQuantizedArtifactRoundTrip(t *testing.T) {
	ds := syntheticDataset(80, 11)
	m, err := Fit(ds, fastConfig())
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		ParamsF32 []float32 `json:"params_f32"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	want := m.Net.QuantizeParams()
	if len(doc.ParamsF32) != len(want) {
		t.Fatalf("artifact carries %d quantized params, want %d", len(doc.ParamsF32), len(want))
	}
	for i := range want {
		if doc.ParamsF32[i] != want[i] {
			t.Fatalf("params_f32[%d] = %v, want %v (JSON round trip must be exact)", i, doc.ParamsF32[i], want[i])
		}
	}

	back, err := LoadModel(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.ParamsF32 == nil {
		t.Fatal("reloaded model lost its quantized parameters")
	}
	for i := range want {
		if back.ParamsF32[i] != want[i] {
			t.Fatalf("reloaded params_f32[%d] = %v, want %v", i, back.ParamsF32[i], want[i])
		}
	}

	// Re-saving carries the stored vector verbatim (no re-quantization).
	var buf2 bytes.Buffer
	if err := back.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	var doc2 struct {
		ParamsF32 []float32 `json:"params_f32"`
	}
	if err := json.Unmarshal(buf2.Bytes(), &doc2); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if doc2.ParamsF32[i] != want[i] {
			t.Fatalf("re-saved params_f32[%d] drifted: %v vs %v", i, doc2.ParamsF32[i], want[i])
		}
	}

	f32Live, err := m.F32()
	if err != nil {
		t.Fatal(err)
	}
	f32Back, err := back.F32()
	if err != nil {
		t.Fatal(err)
	}
	xs := ds.Xs()[:10]
	pLive := f32Live.PredictAll(xs)
	pBack := f32Back.PredictAll(xs)
	for i := range xs {
		for j := range pLive[i] {
			if d := math.Abs(pBack[i][j] - pLive[i][j]); d > 1e-9*(1+math.Abs(pLive[i][j])) {
				t.Fatalf("reloaded f32 prediction %d/%d drifted: %v vs %v", i, j, pBack[i][j], pLive[i][j])
			}
		}
	}
}

// TestF32RejectsMismatchedVector pins the load-time validation of a
// truncated or foreign params_f32 vector.
func TestF32RejectsMismatchedVector(t *testing.T) {
	ds := syntheticDataset(40, 13)
	m, err := Fit(ds, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	doc["params_f32"] = json.RawMessage(`[1.5, 2.5]`)
	mangled, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(bytes.NewReader(mangled)); err == nil {
		t.Fatal("LoadModel accepted a params_f32 vector of the wrong length")
	}
}

// TestF32GoldenModel loads the committed quantized-artifact fixture and
// checks the float32 inference path still reproduces its committed
// predictions — pinning both the params_f32 format and the f32 kernel's
// accumulation order.
func TestF32GoldenModel(t *testing.T) {
	f, err := os.Open("testdata/golden_model_f32.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	model, err := LoadModel(f)
	if err != nil {
		t.Fatalf("f32 golden model no longer loads: %v", err)
	}
	if model.ParamsF32 == nil {
		t.Fatal("f32 golden fixture carries no params_f32 vector")
	}
	f32m, err := model.F32()
	if err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile("testdata/golden_model_f32_predictions.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Probes      [][]float64 `json:"probes"`
		Predictions [][]float64 `json:"predictions"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Probes) == 0 {
		t.Fatal("f32 golden fixture has no probes")
	}
	got := f32m.PredictAll(doc.Probes)
	for i := range doc.Probes {
		for j, want := range doc.Predictions[i] {
			if math.Abs(got[i][j]-want) > 1e-10*(1+math.Abs(want)) {
				t.Fatalf("probe %d output %d: got %v, golden %v", i, j, got[i][j], want)
			}
		}
	}
}

// TestGenerateF32GoldenModel regenerates the quantized-artifact fixture.
// It only runs when NNWC_GEN_GOLDEN=1.
func TestGenerateF32GoldenModel(t *testing.T) {
	if os.Getenv("NNWC_GEN_GOLDEN") != "1" {
		t.Skip("set NNWC_GEN_GOLDEN=1 to regenerate golden files")
	}
	ds := syntheticDataset(80, 20260808)
	model, err := Fit(ds, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("testdata/golden_model_f32.json", buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	f32m, err := model.F32()
	if err != nil {
		t.Fatal(err)
	}
	probes := [][]float64{
		{0, 0},
		{1.5, -1.5},
		{-2, 2},
		{0.25, 0.75},
	}
	doc := map[string]interface{}{"probes": probes, "predictions": f32m.PredictAll(probes)}
	out, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("testdata/golden_model_f32_predictions.json", out, 0o644); err != nil {
		t.Fatal(err)
	}
}
