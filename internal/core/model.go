// Package core is the paper's primary contribution as a library: a
// non-linear workload-characterization model built from a multilayer
// perceptron, together with the §3 methodology around it — sample
// pre-processing (standardization), model-parameter selection, loose-fit
// training with a termination threshold, and k-fold cross-validation with
// the harmonic-mean relative-error metric that produces Table 2.
//
// The flow mirrors the paper: collect samples (X = configuration,
// Y = performance indicators), standardize, train one n→m MLP per workload
// with gradient-descent back-propagation, validate with k-fold CV, then use
// the trained model to predict unseen configurations and drive tuning
// analyses (package surface) and configuration recommendation (package
// recommend).
package core

import (
	"errors"
	"fmt"

	"nnwc/internal/mat"
	"nnwc/internal/nn"
	"nnwc/internal/obs"
	"nnwc/internal/preprocess"
	"nnwc/internal/rng"
	"nnwc/internal/sched"
	"nnwc/internal/stats"
	"nnwc/internal/train"
	"nnwc/internal/workload"
)

// Predictor is anything that maps a configuration vector to predicted
// performance indicators. The MLP model, the linear baseline adapters, and
// the polynomial models all satisfy it.
type Predictor interface {
	Predict(x []float64) []float64
}

// BatchPredictor is a Predictor that can evaluate many configurations in
// one call, amortizing per-sample overhead (the MLP model routes this
// through the batched forward kernels).
type BatchPredictor interface {
	Predictor
	PredictAll(xs [][]float64) [][]float64
}

// MatrixPredictor is a BatchPredictor that can evaluate a whole input
// matrix into workspace-owned output without allocating — the entry point
// the experiment plane (fold evaluation, surface probing, ensemble
// prediction) rides so steady-state sweeps stay allocation-free. NNModel,
// F32Model and Ensemble all implement it.
type MatrixPredictor interface {
	BatchPredictor
	// PredictMatrix evaluates every row of X (one configuration per row)
	// and returns the native-unit predictions, one row per input row. The
	// returned matrix is owned by w and only valid until the workspace's
	// next use; callers that keep the values must copy them out first.
	PredictMatrix(X *mat.Matrix, w *PredictWorkspace) *mat.Matrix
}

// PredictAll evaluates p on every row, taking the batched path when p
// supports it and falling back to a per-row loop otherwise. Both paths
// produce identical values row for row.
func PredictAll(p Predictor, xs [][]float64) [][]float64 {
	if bp, ok := p.(BatchPredictor); ok {
		return bp.PredictAll(xs)
	}
	out := make([][]float64, len(xs))
	for i, x := range xs {
		out[i] = p.Predict(x)
	}
	return out
}

// StandardizeMode selects output standardization per §3.1: inputs are
// always standardized; outputs only when approximating several indicators
// at once (otherwise the single target needs no rescaling).
type StandardizeMode int

const (
	// StandardizeAuto standardizes outputs iff the dataset has more than
	// one target — the paper's §3.1 rule.
	StandardizeAuto StandardizeMode = iota
	// StandardizeAlways standardizes outputs unconditionally.
	StandardizeAlways
	// StandardizeNever leaves outputs in their native units.
	StandardizeNever
)

// Config specifies an NNModel. Zero values get sensible defaults from
// Defaults.
type Config struct {
	// Hidden lists hidden-layer node counts, e.g. {12} or {16, 8}. The
	// paper tunes this per workload (§3.2).
	Hidden []int
	// HiddenActivation defaults to the paper's logistic sigmoid with
	// slope 1.
	HiddenActivation nn.Activation
	// OutputActivation defaults to identity (unbounded regression).
	OutputActivation nn.Activation
	// StandardizeInputs defaults to true; disable only for ablations.
	StandardizeInputs *bool
	// StandardizeOutputs defaults to StandardizeAuto.
	StandardizeOutputs StandardizeMode
	// Init defaults to Xavier initialization.
	Init nn.Initializer
	// Train defaults to train.DefaultConfig (full-batch RPROP with the
	// paper's loose-fit loss threshold).
	Train *train.Config
	// Seed drives weight initialization and any training shuffles.
	Seed uint64
	// Trace receives structured run events (training epochs, fold
	// summaries, spans). nil disables tracing. Traces never consume
	// randomness, so results are identical with tracing on or off.
	Trace *obs.Trace
}

// Defaults fills unset fields and returns the completed config.
func (c Config) Defaults() Config {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{12}
	}
	if c.HiddenActivation == nil {
		c.HiddenActivation = nn.Logistic{Alpha: 1}
	}
	if c.OutputActivation == nil {
		c.OutputActivation = nn.Identity{}
	}
	if c.StandardizeInputs == nil {
		t := true
		c.StandardizeInputs = &t
	}
	if c.Init == nil {
		c.Init = nn.XavierInit{}
	}
	if c.Train == nil {
		tc := train.DefaultConfig()
		c.Train = &tc
	}
	return c
}

// NNModel is a trained neural-network workload model: scalers fitted on the
// training data, the MLP, and the schema it was trained against.
type NNModel struct {
	FeatureNames []string
	TargetNames  []string

	XScaler preprocess.Scaler
	YScaler preprocess.Scaler
	Net     *nn.Network

	// FeatureMin/FeatureMax record the training envelope: the per-feature
	// extremes of the fit dataset. Consumers (the prediction server) use
	// them to flag extrapolating queries; models persisted before this
	// field leave them nil.
	FeatureMin []float64
	FeatureMax []float64

	// ParamsF32 is the float32 quantization of Net's parameters, written
	// into artifacts at persist time so the serve plane can run the f32
	// inference path without re-quantizing. Nil for models that were never
	// persisted or predate the field; F32 quantizes on demand in that case.
	ParamsF32 []float32

	// TrainResult records how training terminated.
	TrainResult train.Result
}

// Fit trains an NNModel on the dataset per the §3 methodology. The dataset
// is not modified.
func Fit(ds *workload.Dataset, cfg Config) (*NNModel, error) {
	return fitWithValidation(ds, nil, cfg)
}

// FitWithValidation trains on ds while monitoring val for early stopping
// (when cfg.Train.Patience > 0) and validation telemetry.
func FitWithValidation(ds, val *workload.Dataset, cfg Config) (*NNModel, error) {
	if val == nil {
		return nil, errors.New("core: validation dataset is required (use Fit otherwise)")
	}
	return fitWithValidation(ds, val, cfg)
}

func fitWithValidation(ds, val *workload.Dataset, cfg Config) (*NNModel, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, errors.New("core: training dataset is empty")
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.Defaults()

	m := &NNModel{
		FeatureNames: append([]string(nil), ds.FeatureNames...),
		TargetNames:  append([]string(nil), ds.TargetNames...),
	}
	m.FeatureMin = make([]float64, ds.NumFeatures())
	m.FeatureMax = make([]float64, ds.NumFeatures())
	for j := range m.FeatureMin {
		col := ds.FeatureColumn(j)
		m.FeatureMin[j], m.FeatureMax[j] = stats.Min(col), stats.Max(col)
	}

	// §3.1 pre-processing.
	if *cfg.StandardizeInputs {
		m.XScaler = preprocess.NewStandardizer()
	} else {
		m.XScaler = preprocess.NewIdentity()
	}
	standardizeY := false
	switch cfg.StandardizeOutputs {
	case StandardizeAuto:
		standardizeY = ds.NumTargets() > 1
	case StandardizeAlways:
		standardizeY = true
	}
	if standardizeY {
		m.YScaler = preprocess.NewStandardizer()
	} else {
		m.YScaler = preprocess.NewIdentity()
	}
	if err := m.XScaler.Fit(ds.Xs()); err != nil {
		return nil, fmt.Errorf("core: fitting input scaler: %w", err)
	}
	if err := m.YScaler.Fit(ds.Ys()); err != nil {
		return nil, fmt.Errorf("core: fitting output scaler: %w", err)
	}
	xs := preprocess.TransformAll(m.XScaler, ds.Xs())
	ys := preprocess.TransformAll(m.YScaler, ds.Ys())

	var valX, valY [][]float64
	if val != nil {
		if val.NumFeatures() != ds.NumFeatures() || val.NumTargets() != ds.NumTargets() {
			return nil, errors.New("core: validation dataset schema differs from training")
		}
		valX = preprocess.TransformAll(m.XScaler, val.Xs())
		valY = preprocess.TransformAll(m.YScaler, val.Ys())
	}

	// Topology: n → hidden… → m (§3.2).
	sizes := append([]int{ds.NumFeatures()}, cfg.Hidden...)
	sizes = append(sizes, ds.NumTargets())
	m.Net = nn.NewNetwork(sizes, cfg.HiddenActivation, cfg.OutputActivation)
	src := rng.New(cfg.Seed)
	cfg.Init.Init(m.Net, src)

	tc := *cfg.Train
	if cfg.Trace != nil {
		tc.Trace = cfg.Trace
	}
	trainer, err := train.New(tc, src.Split())
	if err != nil {
		return nil, err
	}
	res, err := trainer.Fit(m.Net, xs, ys, valX, valY)
	if err != nil {
		return nil, fmt.Errorf("core: training: %w", err)
	}
	m.TrainResult = res
	return m, nil
}

// Predict maps one configuration to predicted indicators in native units.
func (m *NNModel) Predict(x []float64) []float64 {
	return m.YScaler.Inverse(m.Net.Forward(m.XScaler.Transform(x)))
}

// PredictWorkspace bundles every buffer a PredictMatrix call needs: the
// row-copied input staging matrix, the standardized inputs, the forward
// workspace (in both precisions), and the output matrix the call returns.
// The zero value is ready to use; buffers grow on first use and are
// retained across calls, so steady-state prediction sweeps run without
// allocating. A workspace must not be used concurrently; pool workspaces
// (sched.NewPool) to share them across goroutines.
type PredictWorkspace struct {
	in   mat.Matrix // caller rows staged for the matrix path (PredictAll)
	xstd mat.Matrix // standardized inputs
	out  mat.Matrix // native-unit predictions, returned by PredictMatrix
	ws   nn.BatchWorkspace

	// float32 twin buffers (F32Model's quantized inference path).
	x32  mat.Matrix32
	ws32 nn.BatchWorkspace32

	// sub holds the member scratch an Ensemble prediction needs while the
	// mean accumulates in out; lazily created on first ensemble use.
	sub *PredictWorkspace
}

// newPredictWorkspace is the (cold) allocation site for workspaces; the
// hot paths only ever reuse pooled ones.
func newPredictWorkspace() *PredictWorkspace { return &PredictWorkspace{} }

var predictPool = sched.NewPool(newPredictWorkspace)

// PredictMatrix evaluates every row of X through one batched forward pass
// without allocating, writing standardized inputs, activations and
// native-unit outputs into w. Row for row the values are bit-identical to
// Predict. The returned matrix is w-owned scratch.
//
//nnwc:hotpath
func (m *NNModel) PredictMatrix(X *mat.Matrix, w *PredictWorkspace) *mat.Matrix {
	w.xstd.Reshape(X.Rows, X.Cols)
	for i := 0; i < X.Rows; i++ {
		preprocess.TransformInto(m.XScaler, w.xstd.Row(i), X.Row(i))
	}
	pred := m.Net.ForwardBatch(&w.xstd, &w.ws)
	w.out.Reshape(pred.Rows, pred.Cols)
	for i := 0; i < pred.Rows; i++ {
		preprocess.InverseInto(m.YScaler, w.out.Row(i), pred.Row(i))
	}
	return &w.out
}

// PredictAll maps Predict over rows through one batched forward pass; the
// per-row results are bit-identical to calling Predict on each row.
func (m *NNModel) PredictAll(xs [][]float64) [][]float64 {
	if len(xs) == 0 {
		return nil
	}
	w := predictPool.Get()
	defer predictPool.Put(w)
	w.in.CopyRows(xs)
	return rowsCopy(m.PredictMatrix(&w.in, w))
}

// rowsCopy materializes caller-owned rows from a workspace-owned matrix —
// the boundary between the zero-alloc matrix plane and the [][]float64
// convenience API.
func rowsCopy(p *mat.Matrix) [][]float64 {
	out := make([][]float64, p.Rows)
	for i := range out {
		out[i] = append([]float64(nil), p.Row(i)...)
	}
	return out
}

// InputDim returns the configuration dimensionality n.
func (m *NNModel) InputDim() int { return m.Net.InputDim() }

// OutputDim returns the indicator dimensionality m.
func (m *NNModel) OutputDim() int { return m.Net.OutputDim() }
