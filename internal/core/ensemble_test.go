package core

import (
	"math"
	"testing"
)

func TestEnsemblePredictIsMemberMean(t *testing.T) {
	ds := syntheticDataset(80, 50)
	e, err := FitEnsemble(ds, fastConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Members) != 3 {
		t.Fatalf("%d members", len(e.Members))
	}
	x := []float64{0.4, -0.4}
	got := e.Predict(x)
	want := make([]float64, e.OutputDim())
	for _, m := range e.Members {
		out := m.Predict(x)
		for j, v := range out {
			want[j] += v / 3
		}
	}
	for j := range want {
		if math.Abs(got[j]-want[j]) > 1e-12 {
			t.Fatalf("ensemble mean wrong: %v vs %v", got[j], want[j])
		}
	}
}

func TestEnsembleMembersDiffer(t *testing.T) {
	ds := syntheticDataset(60, 51)
	e, err := FitEnsemble(ds, fastConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, 0.1}
	a := e.Members[0].Predict(x)[0]
	b := e.Members[1].Predict(x)[0]
	if a == b {
		t.Fatal("members trained identically despite different seeds")
	}
}

func TestEnsembleSpreadGrowsOutOfRange(t *testing.T) {
	ds := syntheticDataset(100, 52) // inputs within [-2, 2]
	e, err := FitEnsemble(ds, fastConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	_, inSpread := e.PredictWithSpread([]float64{0.5, 0.5})
	_, outSpread := e.PredictWithSpread([]float64{8, -8})
	var inSum, outSum float64
	for j := range inSpread {
		inSum += inSpread[j]
		outSum += outSpread[j]
	}
	if outSum <= inSum {
		t.Fatalf("spread did not grow out of range: in %v, out %v", inSum, outSum)
	}
}

func TestEnsembleSpreadNonNegative(t *testing.T) {
	ds := syntheticDataset(50, 53)
	e, err := FitEnsemble(ds, fastConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	_, spread := e.PredictWithSpread([]float64{0, 0})
	for _, s := range spread {
		if s < 0 || math.IsNaN(s) {
			t.Fatalf("bad spread %v", s)
		}
	}
}

func TestEnsembleAtLeastAsGoodAsWorstMember(t *testing.T) {
	ds := syntheticDataset(120, 54)
	test := syntheticDataset(40, 55)
	e, err := FitEnsemble(ds, fastConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	memberErrs, err := e.MemberErrors(test)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(e, test)
	if err != nil {
		t.Fatal(err)
	}
	worst := memberErrs[0]
	for _, v := range memberErrs[1:] {
		if v > worst {
			worst = v
		}
	}
	if ev.MeanHMRE() > worst*1.05 {
		t.Fatalf("ensemble error %v exceeds worst member %v", ev.MeanHMRE(), worst)
	}
}

func TestEnsembleErrors(t *testing.T) {
	ds := syntheticDataset(30, 56)
	if _, err := FitEnsemble(ds, fastConfig(), 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := FitEnsemble(nil, fastConfig(), 2); err == nil {
		t.Fatal("nil dataset accepted")
	}
}
