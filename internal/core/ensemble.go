package core

import (
	"errors"
	"fmt"
	"math"

	"nnwc/internal/mat"
	"nnwc/internal/sched"
	"nnwc/internal/stats"
	"nnwc/internal/workload"
)

// Ensemble averages the predictions of several independently initialized
// NNModels. Back-propagation from random weights is a stochastic
// procedure (§3.1); averaging restarts reduces the variance contributed by
// unlucky initializations, and the member spread doubles as an uncertainty
// estimate — a practical upgrade the paper's single-network protocol
// leaves on the table.
type Ensemble struct {
	Members []*NNModel
}

// FitEnsemble trains n members on the same dataset with derived seeds on
// the scheduler's default worker count; see FitEnsembleWorkers.
func FitEnsemble(ds *workload.Dataset, cfg Config, n int) (*Ensemble, error) {
	return FitEnsembleWorkers(ds, cfg, n, 0)
}

// FitEnsembleWorkers trains n members concurrently on up to `workers`
// goroutines (<= 0 means the scheduler default). Member i's seed derives
// from (cfg.Seed, i), so the trained members are bit-identical across
// worker counts and to the historical serial loop.
func FitEnsembleWorkers(ds *workload.Dataset, cfg Config, n, workers int) (*Ensemble, error) {
	if n < 1 {
		return nil, errors.New("core: ensemble needs at least one member")
	}
	// Members train concurrently; per-member trace events buffer in fork
	// slots and replay in member order so the trace is deterministic.
	fork := cfg.Trace.Fork(n)
	members, err := sched.MapWorker(sched.Workers(workers), n, func(i, w int) (*NNModel, error) {
		slot := fork.Slot(i)
		span := slot.StartSpan("ensemble-member", i, w)
		defer span.End()
		memberCfg := cfg
		memberCfg.Seed = sched.TaskSeed(cfg.Seed, i)
		memberCfg.Trace = slot
		m, err := Fit(ds, memberCfg)
		if err != nil {
			return nil, fmt.Errorf("core: training ensemble member %d: %w", i+1, err)
		}
		return m, nil
	})
	fork.Join()
	if err != nil {
		return nil, err
	}
	return &Ensemble{Members: members}, nil
}

// Predict returns the member-mean prediction.
func (e *Ensemble) Predict(x []float64) []float64 {
	mean, _ := e.PredictWithSpread(x)
	return mean
}

// PredictWithSpread returns the member-mean prediction and the per-output
// standard deviation across members. A large spread flags configurations
// where the data under-determines the model (often: extrapolation).
func (e *Ensemble) PredictWithSpread(x []float64) (mean, spread []float64) {
	m := e.OutputDim()
	mean = make([]float64, m)
	sumSq := make([]float64, m)
	for _, member := range e.Members {
		out := member.Predict(x)
		for j, v := range out {
			mean[j] += v
			sumSq[j] += v * v
		}
	}
	n := float64(len(e.Members))
	spread = make([]float64, m)
	for j := range mean {
		mean[j] /= n
		variance := sumSq[j]/n - mean[j]*mean[j]
		if variance < 0 {
			variance = 0
		}
		spread[j] = math.Sqrt(variance)
	}
	return mean, spread
}

// PredictAll returns the member-mean prediction for every row, routing each
// member through its batched forward pass. Row for row the result is
// bit-identical to Predict (same member order, same sum-then-divide).
func (e *Ensemble) PredictAll(xs [][]float64) [][]float64 {
	if len(xs) == 0 {
		return nil
	}
	w := predictPool.Get()
	defer predictPool.Put(w)
	w.in.CopyRows(xs)
	return rowsCopy(e.PredictMatrix(&w.in, w))
}

// PredictMatrix returns the member-mean prediction for every row of X
// without allocating: members evaluate into w's lazily created sub
// workspace while the mean accumulates in w's output matrix, in member
// order, then divides once — the same floating-point sequence as Predict,
// so the two are bit-identical row for row. The returned matrix is w-owned
// scratch.
//
//nnwc:hotpath
func (e *Ensemble) PredictMatrix(X *mat.Matrix, w *PredictWorkspace) *mat.Matrix {
	if w.sub == nil {
		w.sub = newPredictWorkspace()
	}
	out := w.out.Reshape(X.Rows, e.OutputDim())
	out.Zero()
	for _, member := range e.Members {
		mat.AddScaledInto(out, 1, member.PredictMatrix(X, w.sub))
	}
	n := float64(len(e.Members))
	for k := range out.Data {
		out.Data[k] /= n
	}
	return out
}

// InputDim returns the configuration dimensionality.
func (e *Ensemble) InputDim() int { return e.Members[0].InputDim() }

// OutputDim returns the indicator dimensionality.
func (e *Ensemble) OutputDim() int { return e.Members[0].OutputDim() }

// MemberErrors evaluates every member on ds and returns each one's mean
// HMRE, handy for spotting a diverged member.
func (e *Ensemble) MemberErrors(ds *workload.Dataset) ([]float64, error) {
	out := make([]float64, len(e.Members))
	for i, m := range e.Members {
		ev, err := Evaluate(m, ds)
		if err != nil {
			return nil, err
		}
		out[i] = stats.MeanSkipNaN(ev.HMRE)
	}
	return out, nil
}
