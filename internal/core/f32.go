package core

import (
	"nnwc/internal/mat"
	"nnwc/internal/nn"
	"nnwc/internal/preprocess"
)

// F32Model serves an NNModel's predictions through the float32 forward
// kernels: inputs are standardized in float64, rounded once to float32, run
// through the quantized network, and the outputs widened back to float64
// for inverse scaling. The quantized parameters come from the artifact's
// params_f32 vector when present (persist-time quantization) and from a
// one-time QuantizeParams otherwise.
//
// The f64/f32 prediction divergence is pinned by TestF32PredictionParity;
// see DESIGN.md §13 for the tolerance budget.
type F32Model struct {
	src *NNModel
	net *nn.NetworkF32
}

// F32 returns the float32 inference twin of m.
func (m *NNModel) F32() (*F32Model, error) {
	net, err := nn.NetworkF32From(m.Net, m.ParamsF32)
	if err != nil {
		return nil, err
	}
	return &F32Model{src: m, net: net}, nil
}

// Source returns the float64 model the twin was quantized from.
func (m *F32Model) Source() *NNModel { return m.src }

// InputDim returns the configuration dimensionality n.
func (m *F32Model) InputDim() int { return m.net.InputDim() }

// OutputDim returns the indicator dimensionality m.
func (m *F32Model) OutputDim() int { return m.net.OutputDim() }

// Predict maps one configuration to predicted indicators in native units
// through the f32 kernels.
func (m *F32Model) Predict(x []float64) []float64 {
	return m.PredictAll([][]float64{x})[0]
}

// PredictAll maps Predict over rows through one batched f32 forward pass;
// per-row results are bit-identical to calling Predict on each row.
func (m *F32Model) PredictAll(xs [][]float64) [][]float64 {
	if len(xs) == 0 {
		return nil
	}
	w := predictPool.Get()
	defer predictPool.Put(w)
	w.in.CopyRows(xs)
	return rowsCopy(m.PredictMatrix(&w.in, w))
}

// PredictMatrix evaluates every row of X through the quantized f32 forward
// kernels without allocating: inputs standardize in float64 into w.xstd,
// round once into w.x32, run the f32 batch, and the outputs widen back for
// inverse scaling. Row for row the values are bit-identical to Predict.
// The returned matrix is w-owned scratch.
//
//nnwc:hotpath
func (m *F32Model) PredictMatrix(X *mat.Matrix, w *PredictWorkspace) *mat.Matrix {
	w.xstd.Reshape(X.Rows, X.Cols)
	for i := 0; i < X.Rows; i++ {
		preprocess.TransformInto(m.src.XScaler, w.xstd.Row(i), X.Row(i))
	}
	w.x32.Reshape(X.Rows, X.Cols)
	for i, v := range w.xstd.Data {
		w.x32.Data[i] = float32(v)
	}
	pred := m.net.ForwardBatch(&w.x32, &w.ws32)
	w.out.Reshape(X.Rows, m.net.OutputDim())
	for i := 0; i < X.Rows; i++ {
		drow := w.out.Row(i)
		prow := pred.Row(i)
		for j, v := range prow {
			drow[j] = float64(v)
		}
		preprocess.InverseInto(m.src.YScaler, drow, drow)
	}
	return &w.out
}
