package core

import (
	"errors"
	"math"

	"nnwc/internal/stats"
	"nnwc/internal/workload"
)

// Evaluation holds per-indicator error metrics of a predictor on a dataset.
type Evaluation struct {
	TargetNames []string
	// HMRE is the paper's §3.3 metric per indicator: harmonic mean of
	// |error| / actual over the dataset. An indicator on which the metric
	// is undefined (e.g. all-zero actuals leave no relative errors) holds
	// NaN, not 0 — 0 would read as a perfect prediction.
	HMRE []float64
	// MAPE, RMSE and R2 are conventional metrics for cross-checking.
	MAPE []float64
	RMSE []float64
	R2   []float64
}

// MeanHMRE averages the paper metric across the indicators on which it is
// defined; undefined (NaN) indicators are skipped. It is NaN only when no
// indicator is defined.
func (e *Evaluation) MeanHMRE() float64 { return stats.MeanSkipNaN(e.HMRE) }

// Accuracy returns the paper's headline "average prediction accuracy":
// 1 − mean error across defined indicators (NaN when none is defined).
func (e *Evaluation) Accuracy() float64 { return 1 - e.MeanHMRE() }

// Undefined lists the indicators whose HMRE is undefined on this dataset
// (skipped by MeanHMRE/Accuracy), so reports can surface the skip.
func (e *Evaluation) Undefined() []string {
	var out []string
	for j, h := range e.HMRE {
		if math.IsNaN(h) {
			out = append(out, e.TargetNames[j])
		}
	}
	return out
}

// Evaluate scores p on every sample of ds.
func Evaluate(p Predictor, ds *workload.Dataset) (*Evaluation, error) {
	if ds.Len() == 0 {
		return nil, errors.New("core: cannot evaluate on an empty dataset")
	}
	m := ds.NumTargets()
	actual := make([][]float64, m)
	pred := make([][]float64, m)
	outs := PredictAll(p, ds.Xs())
	for i, s := range ds.Samples {
		out := outs[i]
		if len(out) != m {
			return nil, errors.New("core: predictor output dimensionality does not match dataset")
		}
		for j := 0; j < m; j++ {
			actual[j] = append(actual[j], s.Y[j])
			pred[j] = append(pred[j], out[j])
		}
	}
	ev := &Evaluation{
		TargetNames: append([]string(nil), ds.TargetNames...),
		HMRE:        make([]float64, m),
		MAPE:        make([]float64, m),
		RMSE:        make([]float64, m),
		R2:          make([]float64, m),
	}
	for j := 0; j < m; j++ {
		h, err := stats.HarmonicMeanRelativeError(actual[j], pred[j])
		if err != nil {
			// All-zero actuals leave no relative errors: the metric is
			// undefined for this indicator. NaN keeps it out of the
			// averages instead of counting as a perfect prediction.
			h = math.NaN()
		}
		ev.HMRE[j] = h
		ev.MAPE[j] = stats.MAPE(actual[j], pred[j])
		ev.RMSE[j] = stats.RMSE(actual[j], pred[j])
		ev.R2[j] = stats.R2(actual[j], pred[j])
	}
	return ev, nil
}
