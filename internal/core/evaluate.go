package core

import (
	"errors"
	"math"

	"nnwc/internal/mat"
	"nnwc/internal/sched"
	"nnwc/internal/stats"
	"nnwc/internal/workload"
)

// Evaluation holds per-indicator error metrics of a predictor on a dataset.
type Evaluation struct {
	TargetNames []string
	// HMRE is the paper's §3.3 metric per indicator: harmonic mean of
	// |error| / actual over the dataset. An indicator on which the metric
	// is undefined (e.g. all-zero actuals leave no relative errors) holds
	// NaN, not 0 — 0 would read as a perfect prediction.
	HMRE []float64
	// MAPE, RMSE and R2 are conventional metrics for cross-checking.
	MAPE []float64
	RMSE []float64
	R2   []float64
}

// MeanHMRE averages the paper metric across the indicators on which it is
// defined; undefined (NaN) indicators are skipped. It is NaN only when no
// indicator is defined.
func (e *Evaluation) MeanHMRE() float64 { return stats.MeanSkipNaN(e.HMRE) }

// Accuracy returns the paper's headline "average prediction accuracy":
// 1 − mean error across defined indicators (NaN when none is defined).
func (e *Evaluation) Accuracy() float64 { return 1 - e.MeanHMRE() }

// Undefined lists the indicators whose HMRE is undefined on this dataset
// (skipped by MeanHMRE/Accuracy), so reports can surface the skip.
func (e *Evaluation) Undefined() []string {
	var out []string
	for j, h := range e.HMRE {
		if math.IsNaN(h) {
			out = append(out, e.TargetNames[j])
		}
	}
	return out
}

var errPredictorDim = errors.New("core: predictor output dimensionality does not match dataset")

// evalScratch bundles the batch-sized buffers one Evaluate call needs: the
// input staging matrix, the predict workspace, and the target × sample
// actual/pred column matrices the metric kernels consume. Pooled so the
// parallel experiment plane (fold evaluations, member scoring) reuses
// buffers across calls and goroutines.
type evalScratch struct {
	in           mat.Matrix
	w            PredictWorkspace
	actual, pred mat.Matrix
}

var evalPool = sched.NewPool(func() *evalScratch { return &evalScratch{} })

// Evaluate scores p on every sample of ds. Only the returned Evaluation is
// allocated; the batch-sized intermediates come from a pooled scratch.
func Evaluate(p Predictor, ds *workload.Dataset) (*Evaluation, error) {
	if ds.Len() == 0 {
		return nil, errors.New("core: cannot evaluate on an empty dataset")
	}
	m := ds.NumTargets()
	sc := evalPool.Get()
	defer evalPool.Put(sc)
	if err := gatherColumns(p, ds, sc); err != nil {
		return nil, err
	}
	ev := &Evaluation{
		TargetNames: append([]string(nil), ds.TargetNames...),
		HMRE:        make([]float64, m),
		MAPE:        make([]float64, m),
		RMSE:        make([]float64, m),
		R2:          make([]float64, m),
	}
	for j := 0; j < m; j++ {
		actual, pred := sc.actual.Row(j), sc.pred.Row(j)
		h, err := stats.HarmonicMeanRelativeError(actual, pred)
		if err != nil {
			// All-zero actuals leave no relative errors: the metric is
			// undefined for this indicator. NaN keeps it out of the
			// averages instead of counting as a perfect prediction.
			h = math.NaN()
		}
		ev.HMRE[j] = h
		ev.MAPE[j] = stats.MAPE(actual, pred)
		ev.RMSE[j] = stats.RMSE(actual, pred)
		ev.R2[j] = stats.R2(actual, pred)
	}
	return ev, nil
}

// gatherColumns fills sc.actual and sc.pred (targets × samples) with the
// dataset's measured indicators and p's predictions, taking the zero-alloc
// matrix path when p supports it.
func gatherColumns(p Predictor, ds *workload.Dataset, sc *evalScratch) error {
	n, m := ds.Len(), ds.NumTargets()
	sc.actual.Reshape(m, n)
	sc.pred.Reshape(m, n)
	if mp, ok := p.(MatrixPredictor); ok {
		return gatherMatrix(mp, ds, sc)
	}
	outs := PredictAll(p, ds.Xs())
	for i, s := range ds.Samples {
		out := outs[i]
		if len(out) != m {
			return errPredictorDim
		}
		for j := 0; j < m; j++ {
			sc.actual.Row(j)[i] = s.Y[j]
			sc.pred.Row(j)[i] = out[j]
		}
	}
	return nil
}

// gatherMatrix is gatherColumns' fast path: configurations stage into the
// scratch input matrix, one PredictMatrix call evaluates the whole dataset,
// and the outputs transpose into the per-target columns.
//
//nnwc:hotpath
func gatherMatrix(mp MatrixPredictor, ds *workload.Dataset, sc *evalScratch) error {
	m := ds.NumTargets()
	sc.in.Reshape(ds.Len(), ds.NumFeatures())
	for i := range ds.Samples {
		copy(sc.in.Row(i), ds.Samples[i].X)
	}
	out := mp.PredictMatrix(&sc.in, &sc.w)
	if out.Cols != m {
		return errPredictorDim
	}
	for j := 0; j < m; j++ {
		arow, prow := sc.actual.Row(j), sc.pred.Row(j)
		for i := range ds.Samples {
			arow[i] = ds.Samples[i].Y[j]
			prow[i] = out.At(i, j)
		}
	}
	return nil
}
