package mat

// This file holds the cache-blocked compute kernels behind the batched
// neural-network forward and backward passes. They are pure loop-order
// optimizations: every output element is produced by exactly the same
// floating-point operation sequence as the naive formulation (single
// accumulator per element, ascending-k accumulation), so routing the nn
// spine through them cannot perturb the repo's 1e-9 seed-reference pin.
//
// Techniques, in order of impact on this workload (see DESIGN.md §13):
//
//   - Tiling over the two *independent* output axes (a-rows × b-rows) keeps
//     a block of b's rows hot in cache while a streams past, without ever
//     splitting the k (reduction) axis — splitting k would reassociate the
//     sum and change the rounding.
//   - Paired-j inner kernels compute two output columns per sweep of an
//     a-row, halving a-row traffic; the two accumulators are independent,
//     so each retains its exact sequential addition order.
//   - Slice re-slicing (`b = b[:len(a)]`) before the inner loops gives the
//     compiler a single bounds proof, and the 4x-unrolled cores in Dot /
//     DotSeed / AXPY amortize loop overhead.

// Tile shapes: blockRows a-rows per tile × blockCols b-rows per tile keeps
// a b-block (blockCols × k for the k ≤ a few hundred used here) plus one
// dst stripe resident in L1 while the a block streams through.
const (
	blockRows = 64
	blockCols = 16
)

// dotSeed2 accumulates two independent seeded dot products against a shared
// left operand in one sweep: s0 + Σ a·b0 and s1 + Σ a·b1. Each accumulator
// sees the same ascending addition order as a standalone DotSeed, so the
// pairing is bit-identical to two sequential calls.
//
//nnwc:hotpath
func dotSeed2(s0, s1 float64, a, b0, b1 []float64) (float64, float64) {
	b0 = b0[:len(a)]
	b1 = b1[:len(a)]
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b0[i]
		s1 += a[i] * b1[i]
		s0 += a[i+1] * b0[i+1]
		s1 += a[i+1] * b1[i+1]
		s0 += a[i+2] * b0[i+2]
		s1 += a[i+2] * b1[i+2]
		s0 += a[i+3] * b0[i+3]
		s1 += a[i+3] * b1[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b0[i]
		s1 += a[i] * b1[i]
	}
	return s0, s1
}

// MulTransBiasInto computes dst[i][j] = bias[j] + Σₖ a[i][k]·b[j][k] — the
// batched affine layer transform (samples × features)·(outputs × features)ᵀ
// plus a per-output bias, accumulated bias-first in ascending k exactly like
// the per-sample perceptron loop. bias may be nil for a plain a·bᵀ. dst must
// not alias a or b; it is reshaped to a.Rows×b.Rows. Returns dst.
//
//nnwc:hotpath
func MulTransBiasInto(dst, a, b *Matrix, bias []float64) *Matrix {
	if a.Cols != b.Cols || (bias != nil && len(bias) != b.Rows) {
		panic(ErrShape)
	}
	dst.Reshape(a.Rows, b.Rows)
	for i0 := 0; i0 < a.Rows; i0 += blockRows {
		i1 := min(i0+blockRows, a.Rows)
		for j0 := 0; j0 < b.Rows; j0 += blockCols {
			j1 := min(j0+blockCols, b.Rows)
			for i := i0; i < i1; i++ {
				arow := a.Row(i)
				crow := dst.Row(i)
				j := j0
				for ; j+2 <= j1; j += 2 {
					var s0, s1 float64
					if bias != nil {
						s0, s1 = bias[j], bias[j+1]
					}
					crow[j], crow[j+1] = dotSeed2(s0, s1, arow, b.Row(j), b.Row(j+1))
				}
				for ; j < j1; j++ {
					var s float64
					if bias != nil {
						s = bias[j]
					}
					crow[j] = DotSeed(s, arow, b.Row(j))
				}
			}
		}
	}
	return dst
}

// GradAccumInto accumulates one batch of layer gradients: for every sample
// row r (ascending), every output o, and every input j it performs
//
//	db[o]       += scale·delta[r][o]
//	dw[o][j]    += scale·(delta[r][o]·in[r][j])
//
// — the exact expression and ascending r/o/j order of the per-sample
// backprop path, so scale = 1/N reproduces the classic mean-gradient epoch
// bit-for-bit. dw and db are accumulated into, not overwritten. delta is
// batch×outputs, in is batch×inputs, dw outputs×inputs, db len outputs.
//
//nnwc:hotpath
func GradAccumInto(dw *Matrix, db []float64, delta, in *Matrix, scale float64) {
	if delta.Rows != in.Rows || dw.Rows != delta.Cols || dw.Cols != in.Cols || len(db) != delta.Cols {
		panic(ErrShape)
	}
	dwd := dw.Data
	for r := 0; r < delta.Rows; r++ {
		drow := delta.Row(r)
		xrow := in.Row(r)
		off := 0
		for o, d := range drow {
			db[o] += scale * d
			row := dwd[off : off+len(xrow)]
			off += dw.Cols
			j := 0
			for ; j+4 <= len(xrow); j += 4 {
				row[j] += scale * (d * xrow[j])
				row[j+1] += scale * (d * xrow[j+1])
				row[j+2] += scale * (d * xrow[j+2])
				row[j+3] += scale * (d * xrow[j+3])
			}
			for ; j < len(xrow); j++ {
				row[j] += scale * (d * xrow[j])
			}
		}
	}
}
