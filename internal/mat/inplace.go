package mat

// This file holds the in-place / batched kernels that back the neural-network
// compute spine. Unlike the allocating helpers in mat.go — kept for the
// linear-algebra solvers where clarity wins — these kernels write into
// caller-owned memory so per-epoch training loops run without allocation.

// Reshape reuses m's backing array as a rows×cols view, growing the backing
// only when its capacity is insufficient. Existing contents are preserved up
// to the new length when no growth occurs and are otherwise unspecified;
// callers treat a reshaped matrix as uninitialized scratch. Returns m.
//
//nnwc:hotpath
func (m *Matrix) Reshape(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(ErrShape)
	}
	n := rows * cols
	if cap(m.Data) < n {
		//lint:waive hotpath -- grow-on-first-use; the steady state takes the capacity fast path (TestBatchEpochZeroAlloc)
		m.Data = make([]float64, n)
	}
	m.Data = m.Data[:n]
	m.Rows, m.Cols = rows, cols
	return m
}

// RowRange returns a view of rows [lo, hi) sharing m's backing array
// (possibly empty when lo == hi). Mutations through the view are visible in
// m. The view is returned by value so hot loops can keep it on the stack.
//
//nnwc:hotpath
func (m *Matrix) RowRange(lo, hi int) Matrix {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(ErrShape)
	}
	//lint:waive hotpath -- view returned by value; escape analysis keeps it on the caller's stack
	return Matrix{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// CopyRows copies a rectangular [][]float64 into m, reshaping it to fit.
// It panics on empty or ragged input. Returns m.
func (m *Matrix) CopyRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic(ErrShape)
	}
	m.Reshape(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(ErrShape)
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Zero sets every element of m to zero.
//
//nnwc:hotpath
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MulInto computes dst = a·b without allocating. dst must not alias a or b;
// it is reshaped to a.Rows×b.Cols. Returns dst.
//
//nnwc:hotpath
func MulInto(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(ErrShape)
	}
	dst.Reshape(a.Rows, b.Cols)
	dst.Zero()
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := dst.Row(i)
		for k, av := range arow {
			//lint:waive floateq -- exact-zero sparsity skip in the inner product; FP-safe
			if av == 0 {
				continue
			}
			AXPY(av, b.Row(k), crow)
		}
	}
	return dst
}

// MulTransInto computes dst = a·bᵀ without allocating — the batched layer
// product (samples × features)·(outputs × features)ᵀ. Both operands are
// walked row-contiguously through the tiled kernel. dst must not alias a or
// b; it is reshaped to a.Rows×b.Rows. Returns dst.
//
//nnwc:hotpath
func MulTransInto(dst, a, b *Matrix) *Matrix {
	return MulTransBiasInto(dst, a, b, nil)
}

// MulTransLeftInto computes dst = aᵀ·b without allocating — the gradient
// product (samples × outputs)ᵀ·(samples × inputs) summed over the sample
// axis in ascending row order. dst must not alias a or b; it is reshaped to
// a.Cols×b.Cols. Returns dst.
//
//nnwc:hotpath
func MulTransLeftInto(dst, a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(ErrShape)
	}
	dst.Reshape(a.Cols, b.Cols)
	dst.Zero()
	for n := 0; n < a.Rows; n++ {
		arow := a.Row(n)
		brow := b.Row(n)
		for o, av := range arow {
			//lint:waive floateq -- exact-zero sparsity skip in the inner product; FP-safe
			if av == 0 {
				continue
			}
			AXPY(av, brow, dst.Row(o))
		}
	}
	return dst
}

// MulVecInto computes dst = m·x without allocating. dst must have length
// m.Rows and must not alias x. Returns dst.
//
//nnwc:hotpath
func (m *Matrix) MulVecInto(dst, x []float64) []float64 {
	if m.Cols != len(x) || m.Rows != len(dst) {
		panic(ErrShape)
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = Dot(m.Row(i), x)
	}
	return dst
}

// AddScaledInto computes dst += alpha·src element-wise over whole matrices.
// The shapes must match.
//
//nnwc:hotpath
func AddScaledInto(dst *Matrix, alpha float64, src *Matrix) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(ErrShape)
	}
	AXPY(alpha, src.Data, dst.Data)
}
