// Package mat implements the small dense linear-algebra kernels the rest of
// the repository needs: vectors, row-major matrices, matrix products,
// transposes, and the Cholesky and QR solvers used by the linear and
// polynomial regression baselines.
//
// The package favours clarity and predictable allocation over raw speed;
// the matrices involved in workload characterization are tiny (tens of
// columns, hundreds of rows).
package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrSingular is returned by the solvers when the system matrix is singular
// or not positive definite.
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("mat: dimension mismatch")

// Matrix is a dense, row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// New returns a zero matrix with the given shape. It panics if either
// dimension is not positive.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows. It panics on
// an empty or ragged input.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mat: FromRows requires a non-empty rectangular input")
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("mat: FromRows given ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := range out {
		out[i] = m.At(i, j)
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns the matrix product a*b. It panics if the inner dimensions
// disagree.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(ErrShape)
	}
	c := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k, av := range arow {
			//lint:waive floateq -- exact-zero sparsity skip in the inner product; FP-safe
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// MulVec returns the matrix-vector product m*x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.Cols != len(x) {
		panic(ErrShape)
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), x)
	}
	return out
}

// Add returns a+b.
func Add(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(ErrShape)
	}
	c := a.Clone()
	for i, v := range b.Data {
		c.Data[i] += v
	}
	return c
}

// Scale returns s*m as a new matrix.
func Scale(s float64, m *Matrix) *Matrix {
	c := m.Clone()
	for i := range c.Data {
		c.Data[i] *= s
	}
	return c
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%10.5g", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Dot returns the inner product of two equal-length vectors. The loop is
// 4x-unrolled onto a single accumulator, so the addition sequence — and
// therefore every rounding step — is identical to the plain ascending loop.
//
//nnwc:hotpath
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(ErrShape)
	}
	return DotSeed(0, a, b)
}

// DotSeed returns s + Σᵢ a[i]·b[i] accumulated in ascending order onto the
// single accumulator s — the seeded inner product behind both Dot and the
// bias-first affine kernels (a perceptron's Σ wⱼxⱼ starts from its bias).
// a and b must have equal length; the 4x unrolling preserves the exact
// addition sequence of the plain loop.
//
//nnwc:hotpath
func DotSeed(s float64, a, b []float64) float64 {
	b = b[:len(a)] // one bounds proof for the whole loop
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s += a[i] * b[i]
		s += a[i+1] * b[i+1]
		s += a[i+2] * b[i+2]
		s += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
//
//nnwc:hotpath
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// AXPY computes y += alpha*x in place. Elements are independent, so the 4x
// unrolling cannot change any rounding.
//
//nnwc:hotpath
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	y = y[:len(x)]
	i := 0
	for ; i+4 <= len(x); i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// Cholesky factors the symmetric positive-definite matrix a into L*Lᵀ and
// returns the lower-triangular factor L. It returns ErrSingular if a is not
// positive definite to working precision.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, ErrShape
	}
	n := a.Rows
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, ErrSingular
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholesky solves a*x = b for x where a is symmetric positive
// definite, using a Cholesky factorization. b may have multiple columns.
func SolveCholesky(a, b *Matrix) (*Matrix, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	if b.Rows != n {
		return nil, ErrShape
	}
	x := New(n, b.Cols)
	// Forward substitution: L*y = b, then back substitution: Lᵀ*x = y.
	y := New(n, b.Cols)
	for c := 0; c < b.Cols; c++ {
		for i := 0; i < n; i++ {
			sum := b.At(i, c)
			for k := 0; k < i; k++ {
				sum -= l.At(i, k) * y.At(k, c)
			}
			y.Set(i, c, sum/l.At(i, i))
		}
		for i := n - 1; i >= 0; i-- {
			sum := y.At(i, c)
			for k := i + 1; k < n; k++ {
				sum -= l.At(k, i) * x.At(k, c)
			}
			x.Set(i, c, sum/l.At(i, i))
		}
	}
	return x, nil
}

// QR holds a Householder QR factorization of a matrix with Rows >= Cols.
type QR struct {
	qr   *Matrix   // packed factors
	rdia []float64 // diagonal of R
}

// NewQR computes the QR factorization of a (which is not modified).
func NewQR(a *Matrix) *QR {
	m, n := a.Rows, a.Cols
	qr := a.Clone()
	rdia := make([]float64, n)
	for k := 0; k < n && k < m; k++ {
		var nrm float64
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		//lint:waive floateq -- Householder norm exactly zero means the column is already eliminated
		if nrm != 0 {
			if qr.At(k, k) < 0 {
				nrm = -nrm
			}
			for i := k; i < m; i++ {
				qr.Set(i, k, qr.At(i, k)/nrm)
			}
			qr.Set(k, k, qr.At(k, k)+1)
			for j := k + 1; j < n; j++ {
				var s float64
				for i := k; i < m; i++ {
					s += qr.At(i, k) * qr.At(i, j)
				}
				s = -s / qr.At(k, k)
				for i := k; i < m; i++ {
					qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
				}
			}
		}
		rdia[k] = -nrm
	}
	return &QR{qr: qr, rdia: rdia}
}

// FullRank reports whether the factored matrix has full column rank to
// working precision: every R diagonal must be meaningfully larger than
// rounding noise relative to the largest one.
func (f *QR) FullRank() bool {
	var maxD float64
	for _, d := range f.rdia {
		if a := math.Abs(d); a > maxD {
			maxD = a
		}
	}
	//lint:waive floateq -- rank sentinel: exact zero max diagonal means no scale to compare against
	if maxD == 0 {
		return false
	}
	tol := maxD * 1e-12 * float64(len(f.rdia))
	for _, d := range f.rdia {
		if math.Abs(d) <= tol {
			return false
		}
	}
	return true
}

// Solve finds the least-squares solution x minimizing ‖a*x − b‖₂ for each
// column of b. It returns ErrSingular if a is column-rank-deficient.
func (f *QR) Solve(b *Matrix) (*Matrix, error) {
	if !f.FullRank() {
		return nil, ErrSingular
	}
	m, n := f.qr.Rows, f.qr.Cols
	if b.Rows != m {
		return nil, ErrShape
	}
	x := b.Clone()
	// Apply Householder reflections to b.
	for k := 0; k < n && k < m; k++ {
		for c := 0; c < x.Cols; c++ {
			var s float64
			for i := k; i < m; i++ {
				s += f.qr.At(i, k) * x.At(i, c)
			}
			//lint:waive floateq -- exact-zero pivot skip: a singular diagonal entry contributes nothing
			if f.qr.At(k, k) == 0 {
				continue
			}
			s = -s / f.qr.At(k, k)
			for i := k; i < m; i++ {
				x.Set(i, c, x.At(i, c)+s*f.qr.At(i, k))
			}
		}
	}
	// Back substitution against R.
	out := New(n, b.Cols)
	for c := 0; c < b.Cols; c++ {
		for i := n - 1; i >= 0; i-- {
			sum := x.At(i, c)
			for j := i + 1; j < n; j++ {
				sum -= f.qr.At(i, j) * out.At(j, c)
			}
			out.Set(i, c, sum/f.rdia[i])
		}
	}
	return out, nil
}

// SolveLeastSquares is a convenience wrapper: it computes the least-squares
// solution of a*x = b via QR.
func SolveLeastSquares(a, b *Matrix) (*Matrix, error) {
	return NewQR(a).Solve(b)
}
