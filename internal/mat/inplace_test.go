package mat

import (
	"math"
	"testing"
)

func matsEqual(t *testing.T, got, want *Matrix, tol float64) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("shape %dx%d, want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > tol {
			t.Fatalf("element %d: got %v want %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMulIntoMatchesMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	want := Mul(a, b)
	dst := &Matrix{}
	got := MulInto(dst, a, b)
	matsEqual(t, got, want, 0)
	if got != dst {
		t.Fatal("MulInto did not return dst")
	}
	// Reuse with different shapes must work and not leak stale values.
	c := FromRows([][]float64{{1, 1}, {2, 2}})
	MulInto(dst, c, c)
	matsEqual(t, dst, Mul(c, c), 0)
}

func TestMulTransInto(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	b := FromRows([][]float64{{7, 8}, {9, 10}})
	want := Mul(a, b.T())
	dst := &Matrix{}
	matsEqual(t, MulTransInto(dst, a, b), want, 0)
}

func TestMulTransLeftInto(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	b := FromRows([][]float64{{1, 0, 2}, {0, 1, 3}, {4, 4, 4}})
	want := Mul(a.T(), b)
	dst := &Matrix{}
	matsEqual(t, MulTransLeftInto(dst, a, b), want, 1e-15)
}

func TestMulIntoShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	MulInto(&Matrix{}, New(2, 3), New(2, 3))
}

func TestMulVecInto(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {0, -1, 1}})
	x := []float64{1, 0, -1}
	dst := make([]float64, 2)
	got := m.MulVecInto(dst, x)
	want := m.MulVec(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVecInto %v, want %v", got, want)
		}
	}
}

func TestReshapeReusesBacking(t *testing.T) {
	m := New(4, 4)
	data := &m.Data[0]
	m.Reshape(2, 8)
	if &m.Data[0] != data {
		t.Fatal("Reshape to equal size reallocated")
	}
	m.Reshape(2, 2)
	if &m.Data[0] != data || m.Rows != 2 || m.Cols != 2 || len(m.Data) != 4 {
		t.Fatal("Reshape shrink did not reuse backing")
	}
	m.Reshape(8, 8)
	if m.Rows != 8 || len(m.Data) != 64 {
		t.Fatal("Reshape grow failed")
	}
}

func TestRowRangeIsAView(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	v := m.RowRange(1, 3)
	if v.Rows != 2 || v.At(0, 0) != 3 || v.At(1, 1) != 6 {
		t.Fatalf("RowRange content wrong: %+v", v)
	}
	v.Set(0, 0, 99)
	if m.At(1, 0) != 99 {
		t.Fatal("RowRange is not a view")
	}
}

func TestCopyRows(t *testing.T) {
	m := &Matrix{}
	m.CopyRows([][]float64{{1, 2}, {3, 4}})
	matsEqual(t, m, FromRows([][]float64{{1, 2}, {3, 4}}), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("ragged input did not panic")
		}
	}()
	m.CopyRows([][]float64{{1, 2}, {3}})
}

func TestZeroAndAddScaledInto(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	AddScaledInto(a, 0.5, b)
	matsEqual(t, a, FromRows([][]float64{{6, 12}, {18, 24}}), 0)
	a.Zero()
	matsEqual(t, a, New(2, 2), 0)
}

func BenchmarkMulInto16(b *testing.B) {
	a := New(16, 16)
	c := New(16, 16)
	for i := range a.Data {
		a.Data[i] = float64(i % 7)
		c.Data[i] = float64(i % 5)
	}
	dst := &Matrix{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulInto(dst, a, c)
	}
}
