package mat

import (
	"testing"

	"nnwc/internal/rng"
)

// naiveDotSeed is the straight-line reference the unrolled kernels must
// reproduce bit for bit: single accumulator, ascending index.
func naiveDotSeed(s float64, a, b []float64) float64 {
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

func randMatrix(src *rng.Source, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = src.Uniform(-2, 2)
	}
	return m
}

// Shapes straddle every tile and unroll boundary: sub-tile, exact-tile,
// tile+1, odd k for the unrolled tail, single row/col for the paired-j tail.
var kernelShapes = []struct{ m, n, k int }{
	{1, 1, 1},
	{3, 5, 7},
	{7, 2, 9},
	{blockRows, blockCols, 16},
	{blockRows + 1, blockCols + 1, 17},
	{2*blockRows + 3, 2*blockCols + 5, 33},
	{128, 10, 4},
	{5, 1, 11},
}

func TestDotSeedMatchesNaive(t *testing.T) {
	src := rng.New(11)
	for n := 0; n <= 19; n++ {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i], b[i] = src.Uniform(-3, 3), src.Uniform(-3, 3)
		}
		seed := src.Uniform(-1, 1)
		if got, want := DotSeed(seed, a, b), naiveDotSeed(seed, a, b); got != want {
			t.Fatalf("DotSeed len %d: got %x want %x", n, got, want)
		}
		if got, want := Dot(a, b), naiveDotSeed(0, a, b); got != want {
			t.Fatalf("Dot len %d: got %x want %x", n, got, want)
		}
	}
}

func TestAXPYMatchesNaive(t *testing.T) {
	src := rng.New(12)
	for n := 0; n <= 19; n++ {
		x := make([]float64, n)
		y := make([]float64, n)
		want := make([]float64, n)
		for i := range x {
			x[i] = src.Uniform(-3, 3)
			y[i] = src.Uniform(-3, 3)
			want[i] = y[i]
		}
		alpha := src.Uniform(-2, 2)
		for i := range want {
			want[i] += alpha * x[i]
		}
		AXPY(alpha, x, y)
		for i := range want {
			if y[i] != want[i] {
				t.Fatalf("AXPY len %d idx %d: got %x want %x", n, i, y[i], want[i])
			}
		}
	}
}

func TestMulTransBiasIntoBitIdentical(t *testing.T) {
	src := rng.New(13)
	for _, sh := range kernelShapes {
		a := randMatrix(src, sh.m, sh.k)
		b := randMatrix(src, sh.n, sh.k)
		bias := make([]float64, sh.n)
		for i := range bias {
			bias[i] = src.Uniform(-1, 1)
		}
		got := MulTransBiasInto(&Matrix{}, a, b, bias)
		if got.Rows != sh.m || got.Cols != sh.n {
			t.Fatalf("shape %v: got %dx%d", sh, got.Rows, got.Cols)
		}
		for i := 0; i < sh.m; i++ {
			for j := 0; j < sh.n; j++ {
				want := naiveDotSeed(bias[j], a.Row(i), b.Row(j))
				if got.At(i, j) != want {
					t.Fatalf("shape %v cell (%d,%d): got %x want %x", sh, i, j, got.At(i, j), want)
				}
			}
		}

		// nil bias must match the seed-zero naive product and MulTransInto.
		plain := MulTransBiasInto(&Matrix{}, a, b, nil)
		viaTrans := MulTransInto(&Matrix{}, a, b)
		for i := 0; i < sh.m; i++ {
			for j := 0; j < sh.n; j++ {
				want := naiveDotSeed(0, a.Row(i), b.Row(j))
				if plain.At(i, j) != want || viaTrans.At(i, j) != want {
					t.Fatalf("shape %v nil-bias cell (%d,%d) mismatch", sh, i, j)
				}
			}
		}
	}
}

func TestMulIntoBitIdenticalToAscendingAccumulation(t *testing.T) {
	src := rng.New(14)
	for _, sh := range kernelShapes {
		a := randMatrix(src, sh.m, sh.k)
		b := randMatrix(src, sh.k, sh.n)
		// Plant exact zeros so the sparsity skip path is exercised.
		a.Data[0] = 0
		if len(a.Data) > 3 {
			a.Data[3] = 0
		}
		got := MulInto(&Matrix{}, a, b)
		for i := 0; i < sh.m; i++ {
			for j := 0; j < sh.n; j++ {
				var want float64
				for k := 0; k < sh.k; k++ {
					want += a.At(i, k) * b.At(k, j)
				}
				if got.At(i, j) != want {
					t.Fatalf("shape %v cell (%d,%d): got %x want %x", sh, i, j, got.At(i, j), want)
				}
			}
		}
	}
}

func TestGradAccumIntoBitIdentical(t *testing.T) {
	src := rng.New(15)
	for _, sh := range kernelShapes {
		batch, outputs, inputs := sh.m, sh.n, sh.k
		delta := randMatrix(src, batch, outputs)
		in := randMatrix(src, batch, inputs)
		scale := 1 / float64(batch)

		dw := New(outputs, inputs)
		db := make([]float64, outputs)
		// Seed with prior contents: the kernel accumulates, not overwrites.
		for i := range dw.Data {
			dw.Data[i] = src.Uniform(-1, 1)
		}
		for i := range db {
			db[i] = src.Uniform(-1, 1)
		}
		wantW := dw.Clone()
		wantB := append([]float64(nil), db...)
		for r := 0; r < batch; r++ {
			drow := delta.Row(r)
			xrow := in.Row(r)
			for o, d := range drow {
				wantB[o] += scale * d
				row := wantW.Row(o)
				for j, xv := range xrow {
					t := d * xv
					row[j] += scale * t
				}
			}
		}

		GradAccumInto(dw, db, delta, in, scale)
		for i := range dw.Data {
			if dw.Data[i] != wantW.Data[i] {
				t.Fatalf("shape %v dw[%d]: got %x want %x", sh, i, dw.Data[i], wantW.Data[i])
			}
		}
		for i := range db {
			if db[i] != wantB[i] {
				t.Fatalf("shape %v db[%d]: got %x want %x", sh, i, db[i], wantB[i])
			}
		}
	}
}

func TestKernelShapePanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected shape panic", name)
			}
		}()
		f()
	}
	expectPanic("MulTransBiasInto k", func() { MulTransBiasInto(&Matrix{}, New(2, 3), New(2, 4), nil) })
	expectPanic("MulTransBiasInto bias", func() { MulTransBiasInto(&Matrix{}, New(2, 3), New(2, 3), make([]float64, 3)) })
	expectPanic("GradAccumInto rows", func() {
		GradAccumInto(New(2, 3), make([]float64, 2), New(4, 2), New(5, 3), 1)
	})
	expectPanic("GradAccumInto cols", func() {
		GradAccumInto(New(2, 4), make([]float64, 2), New(4, 2), New(4, 3), 1)
	})
}

func BenchmarkMulTransBias128x16x16(b *testing.B) {
	src := rng.New(16)
	a := randMatrix(src, 128, 16)
	w := randMatrix(src, 16, 16)
	bias := make([]float64, 16)
	dst := &Matrix{}
	MulTransBiasInto(dst, a, w, bias)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulTransBiasInto(dst, a, w, bias)
	}
}
