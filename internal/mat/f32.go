package mat

// Matrix32 is the float32 counterpart of Matrix: a dense, row-major matrix
// backing the quantized inference path. Training stays in float64; Matrix32
// only ever holds quantized parameters and inference activations, where the
// ~1e-7 relative rounding of float32 is far below the model's own error
// (see DESIGN.md §13 for the tolerance budget).
type Matrix32 struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols
}

// Reshape reuses m's backing array as a rows×cols view, growing the backing
// only when its capacity is insufficient — the same grow-on-first-use
// contract as Matrix.Reshape. Returns m.
//
//nnwc:hotpath
func (m *Matrix32) Reshape(rows, cols int) *Matrix32 {
	if rows <= 0 || cols <= 0 {
		panic(ErrShape)
	}
	n := rows * cols
	if cap(m.Data) < n {
		//lint:waive hotpath -- grow-on-first-use; the steady state takes the capacity fast path
		m.Data = make([]float32, n)
	}
	m.Data = m.Data[:n]
	m.Rows, m.Cols = rows, cols
	return m
}

// Row returns a view (not a copy) of row i.
//
//nnwc:hotpath
func (m *Matrix32) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// At returns the element at row i, column j.
func (m *Matrix32) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// CopyRowsF64 quantizes a rectangular [][]float64 into m, reshaping it to
// fit. Each element is rounded once to the nearest float32.
//
//nnwc:hotpath
func (m *Matrix32) CopyRowsF64(rows [][]float64) *Matrix32 {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic(ErrShape)
	}
	m.Reshape(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(ErrShape)
		}
		dst := m.Row(i)
		for j, v := range r {
			dst[j] = float32(v)
		}
	}
	return m
}

// dotSeed2F32 is the float32 twin of dotSeed2: two seeded dot products
// against a shared left operand, 4x-unrolled, one accumulator each.
//
//nnwc:hotpath
func dotSeed2F32(s0, s1 float32, a, b0, b1 []float32) (float32, float32) {
	b0 = b0[:len(a)]
	b1 = b1[:len(a)]
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b0[i]
		s1 += a[i] * b1[i]
		s0 += a[i+1] * b0[i+1]
		s1 += a[i+1] * b1[i+1]
		s0 += a[i+2] * b0[i+2]
		s1 += a[i+2] * b1[i+2]
		s0 += a[i+3] * b0[i+3]
		s1 += a[i+3] * b1[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b0[i]
		s1 += a[i] * b1[i]
	}
	return s0, s1
}

// DotSeed32 returns s + Σᵢ a[i]·b[i] over float32 vectors, accumulated in
// ascending order onto the single float32 accumulator s.
//
//nnwc:hotpath
func DotSeed32(s float32, a, b []float32) float32 {
	b = b[:len(a)]
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s += a[i] * b[i]
		s += a[i+1] * b[i+1]
		s += a[i+2] * b[i+2]
		s += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// MulTransBiasInto32 is the float32 twin of MulTransBiasInto: the tiled
// batched affine transform dst[i][j] = bias[j] + Σₖ a[i][k]·b[j][k], with
// the same blocking, pairing, and ascending-k single-accumulator order —
// so the f32 inference path is deterministic in its own right. bias may be
// nil. Returns dst reshaped to a.Rows×b.Rows.
//
//nnwc:hotpath
func MulTransBiasInto32(dst, a, b *Matrix32, bias []float32) *Matrix32 {
	if a.Cols != b.Cols || (bias != nil && len(bias) != b.Rows) {
		panic(ErrShape)
	}
	dst.Reshape(a.Rows, b.Rows)
	for i0 := 0; i0 < a.Rows; i0 += blockRows {
		i1 := min(i0+blockRows, a.Rows)
		for j0 := 0; j0 < b.Rows; j0 += blockCols {
			j1 := min(j0+blockCols, b.Rows)
			for i := i0; i < i1; i++ {
				arow := a.Row(i)
				crow := dst.Row(i)
				j := j0
				for ; j+2 <= j1; j += 2 {
					var s0, s1 float32
					if bias != nil {
						s0, s1 = bias[j], bias[j+1]
					}
					crow[j], crow[j+1] = dotSeed2F32(s0, s1, arow, b.Row(j), b.Row(j+1))
				}
				for ; j < j1; j++ {
					var s float32
					if bias != nil {
						s = bias[j]
					}
					crow[j] = DotSeed32(s, arow, b.Row(j))
				}
			}
		}
	}
	return dst
}
