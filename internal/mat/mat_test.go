package mat

import (
	"math"
	"testing"
	"testing/quick"

	"nnwc/internal/rng"
)

func approxEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewShape(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("unexpected shape: %+v", m)
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, 1) did not panic")
		}
	}()
	New(0, 1)
}

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 {
		t.Fatal("element access wrong")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestIdentity(t *testing.T) {
	m := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("I[%d][%d] = %v", i, j, m.At(i, j))
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatal("transpose wrong")
			}
		}
	}
}

func TestMulHandChecked(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("C[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulIdentityProperty(t *testing.T) {
	src := rng.New(42)
	for trial := 0; trial < 20; trial++ {
		n := 1 + src.Intn(6)
		a := randomMatrix(src, n, n)
		c := Mul(a, Identity(n))
		for i := range a.Data {
			if !approxEqual(a.Data[i], c.Data[i], 1e-12) {
				t.Fatal("A*I != A")
			}
		}
	}
}

func TestMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("incompatible Mul did not panic")
		}
	}()
	Mul(New(2, 3), New(2, 3))
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := m.MulVec([]float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec got %v", got)
	}
}

func TestAddAndScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{10, 20}})
	c := Add(a, b)
	if c.At(0, 0) != 11 || c.At(0, 1) != 22 {
		t.Fatalf("Add got %v", c.Data)
	}
	s := Scale(2, a)
	if s.At(0, 0) != 2 || s.At(0, 1) != 4 {
		t.Fatalf("Scale got %v", s.Data)
	}
	// originals untouched
	if a.At(0, 0) != 1 {
		t.Fatal("Scale mutated its input")
	}
}

func TestDotAndNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if !approxEqual(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("Norm2 wrong")
	}
}

func TestAXPY(t *testing.T) {
	y := []float64{1, 1}
	AXPY(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("AXPY got %v", y)
	}
}

func randomMatrix(src *rng.Source, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = src.Uniform(-2, 2)
	}
	return m
}

// randomSPD builds a well-conditioned symmetric positive-definite matrix.
func randomSPD(src *rng.Source, n int) *Matrix {
	a := randomMatrix(src, n, n)
	spd := Mul(a.T(), a)
	for i := 0; i < n; i++ {
		spd.Set(i, i, spd.At(i, i)+float64(n)) // boost the diagonal
	}
	return spd
}

func TestCholeskyReconstructs(t *testing.T) {
	src := rng.New(7)
	for trial := 0; trial < 25; trial++ {
		n := 1 + src.Intn(6)
		a := randomSPD(src, n)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("Cholesky failed on SPD matrix: %v", err)
		}
		recon := Mul(l, l.T())
		for i := range a.Data {
			if !approxEqual(a.Data[i], recon.Data[i], 1e-9) {
				t.Fatalf("L*Lᵀ != A (trial %d)", trial)
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, -1}})
	if _, err := Cholesky(a); err == nil {
		t.Fatal("Cholesky accepted an indefinite matrix")
	}
}

func TestCholeskyRejectsNonSquare(t *testing.T) {
	if _, err := Cholesky(New(2, 3)); err == nil {
		t.Fatal("Cholesky accepted a non-square matrix")
	}
}

func TestSolveCholeskyRoundTrip(t *testing.T) {
	src := rng.New(8)
	for trial := 0; trial < 25; trial++ {
		n := 1 + src.Intn(6)
		a := randomSPD(src, n)
		want := randomMatrix(src, n, 2)
		b := Mul(a, want)
		got, err := SolveCholesky(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if !approxEqual(want.Data[i], got.Data[i], 1e-7) {
				t.Fatalf("solution mismatch at %d: %v vs %v", i, want.Data[i], got.Data[i])
			}
		}
	}
}

func TestQRSolveExact(t *testing.T) {
	// Square, full-rank system: QR least squares equals exact solve.
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	want := FromRows([][]float64{{1}, {-2}})
	b := Mul(a, want)
	got, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEqual(got.At(0, 0), 1, 1e-10) || !approxEqual(got.At(1, 0), -2, 1e-10) {
		t.Fatalf("QR solve got %v", got.Data)
	}
}

func TestQRLeastSquaresResidualOrthogonal(t *testing.T) {
	// For the LS solution x, the residual r = b − A·x must satisfy
	// Aᵀr = 0 (normal equations).
	src := rng.New(9)
	for trial := 0; trial < 20; trial++ {
		rows := 5 + src.Intn(10)
		cols := 1 + src.Intn(4)
		a := randomMatrix(src, rows, cols)
		b := randomMatrix(src, rows, 1)
		x, err := SolveLeastSquares(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ax := Mul(a, x)
		r := New(rows, 1)
		for i := range r.Data {
			r.Data[i] = b.Data[i] - ax.Data[i]
		}
		atr := Mul(a.T(), r)
		for i := range atr.Data {
			if !approxEqual(atr.Data[i], 0, 1e-8) {
				t.Fatalf("normal equations violated: Aᵀr[%d] = %v", i, atr.Data[i])
			}
		}
	}
}

func TestQRDetectsRankDeficiency(t *testing.T) {
	// Second column is twice the first: rank 1.
	a := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	if _, err := SolveLeastSquares(a, New(3, 1)); err == nil {
		t.Fatal("rank-deficient system was not rejected")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestRowIsView(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	a.Row(1)[0] = 42
	if a.At(1, 0) != 42 {
		t.Fatal("Row should be a view")
	}
}

func TestColIsCopy(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	col := a.Col(0)
	col[0] = 42
	if a.At(0, 0) != 1 {
		t.Fatal("Col should be a copy")
	}
}

func TestStringRendering(t *testing.T) {
	s := FromRows([][]float64{{1, 2}}).String()
	if s == "" {
		t.Fatal("String returned empty")
	}
}

func TestTransposeInvolution(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := rng.New(seed)
		rows, cols := 1+src.Intn(5), 1+src.Intn(5)
		a := randomMatrix(src, rows, cols)
		tt := a.T().T()
		for i := range a.Data {
			if a.Data[i] != tt.Data[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMul16(b *testing.B) {
	src := rng.New(1)
	x := randomMatrix(src, 16, 16)
	y := randomMatrix(src, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}

func BenchmarkCholesky16(b *testing.B) {
	a := randomSPD(rng.New(1), 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}
