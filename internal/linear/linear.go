// Package linear implements the multi-output linear regression model used
// by the prior work the paper argues against (Chow et al. [2, 20, 21]).
// It serves as the baseline in the model-comparison experiments: a linear
// model matches the paper's workloads well in locally linear regions but
// cannot express the valleys and hills of §5.2–§5.3.
//
// Fitting uses ordinary least squares through a QR factorization, or ridge
// regression (L2-regularized, solved via Cholesky on the normal equations)
// when Lambda > 0.
package linear

import (
	"errors"
	"fmt"

	"nnwc/internal/mat"
	"nnwc/internal/stats"
)

// Model is a fitted linear map ŷ = W·x + b with n inputs and m outputs.
type Model struct {
	W *mat.Matrix // m×n coefficient matrix
	B []float64   // m intercepts
}

// Options configures fitting.
type Options struct {
	// Lambda is the ridge penalty; 0 requests plain OLS. The intercept is
	// never penalized.
	Lambda float64
}

// Fit computes the least-squares linear model mapping xs rows to ys rows.
func Fit(xs, ys [][]float64, opt Options) (*Model, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, errors.New("linear: need equal, non-zero sample counts")
	}
	n := len(xs[0])
	m := len(ys[0])
	rows := len(xs)
	if rows < n+1 && stats.ExactZero(opt.Lambda) {
		return nil, fmt.Errorf("linear: %d samples cannot determine %d coefficients; add samples or use ridge", rows, n+1)
	}

	// Design matrix with a trailing 1-column for the intercept.
	a := mat.New(rows, n+1)
	for i, x := range xs {
		if len(x) != n {
			return nil, fmt.Errorf("linear: sample %d has %d features, want %d", i, len(x), n)
		}
		copy(a.Row(i)[:n], x)
		a.Set(i, n, 1)
	}
	b := mat.New(rows, m)
	for i, y := range ys {
		if len(y) != m {
			return nil, fmt.Errorf("linear: sample %d has %d targets, want %d", i, len(y), m)
		}
		copy(b.Row(i), y)
	}

	var coef *mat.Matrix
	var err error
	if opt.Lambda > 0 {
		// (AᵀA + λI')x = Aᵀb, with I' zeroing the intercept penalty.
		at := a.T()
		ata := mat.Mul(at, a)
		for d := 0; d < n; d++ { // skip the intercept column n
			ata.Set(d, d, ata.At(d, d)+opt.Lambda)
		}
		coef, err = mat.SolveCholesky(ata, mat.Mul(at, b))
	} else {
		coef, err = mat.SolveLeastSquares(a, b)
	}
	if err != nil {
		return nil, fmt.Errorf("linear: solving normal equations: %w", err)
	}

	model := &Model{W: mat.New(m, n), B: make([]float64, m)}
	for j := 0; j < m; j++ {
		for k := 0; k < n; k++ {
			model.W.Set(j, k, coef.At(k, j))
		}
		model.B[j] = coef.At(n, j)
	}
	return model, nil
}

// InputDim returns n.
func (m *Model) InputDim() int { return m.W.Cols }

// OutputDim returns the number of predicted indicators.
func (m *Model) OutputDim() int { return m.W.Rows }

// Predict returns ŷ = W·x + b.
func (m *Model) Predict(x []float64) []float64 {
	out := m.W.MulVec(x)
	for j := range out {
		out[j] += m.B[j]
	}
	return out
}

// PredictAll maps Predict over rows as one matrix product X·Wᵀ. Row dot
// products accumulate in the same order as MulVec, so each row matches
// Predict exactly.
func (m *Model) PredictAll(xs [][]float64) [][]float64 {
	if len(xs) == 0 {
		return nil
	}
	var X, P mat.Matrix
	X.CopyRows(xs)
	mat.MulTransInto(P.Reshape(len(xs), m.OutputDim()), &X, m.W)
	out := make([][]float64, len(xs))
	for i := range out {
		row := make([]float64, m.OutputDim())
		copy(row, P.Row(i))
		for j := range row {
			row[j] += m.B[j]
		}
		out[i] = row
	}
	return out
}
