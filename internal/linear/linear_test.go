package linear

import (
	"math"
	"testing"

	"nnwc/internal/rng"
)

func TestRecoverKnownCoefficients(t *testing.T) {
	// y1 = 3a − 2b + 5; y2 = −a + 4b. Exact data → exact recovery.
	src := rng.New(1)
	var xs, ys [][]float64
	for i := 0; i < 50; i++ {
		a, b := src.Uniform(-5, 5), src.Uniform(-5, 5)
		xs = append(xs, []float64{a, b})
		ys = append(ys, []float64{3*a - 2*b + 5, -a + 4*b})
	}
	m, err := Fit(xs, ys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		got, want float64
	}{
		{m.W.At(0, 0), 3}, {m.W.At(0, 1), -2}, {m.B[0], 5},
		{m.W.At(1, 0), -1}, {m.W.At(1, 1), 4}, {m.B[1], 0},
	}
	for i, c := range checks {
		if math.Abs(c.got-c.want) > 1e-9 {
			t.Fatalf("coefficient %d = %v, want %v", i, c.got, c.want)
		}
	}
	if m.InputDim() != 2 || m.OutputDim() != 2 {
		t.Fatalf("dims %d→%d", m.InputDim(), m.OutputDim())
	}
}

func TestPredictMatchesManual(t *testing.T) {
	xs := [][]float64{{0}, {1}, {2}, {3}}
	ys := [][]float64{{1}, {3}, {5}, {7}} // y = 2x + 1
	m, err := Fit(xs, ys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{10})[0]; math.Abs(got-21) > 1e-9 {
		t.Fatalf("Predict(10) = %v", got)
	}
	all := m.PredictAll(xs)
	if len(all) != 4 || math.Abs(all[2][0]-5) > 1e-9 {
		t.Fatalf("PredictAll wrong: %v", all)
	}
}

func TestRidgeShrinksCoefficients(t *testing.T) {
	src := rng.New(2)
	var xs, ys [][]float64
	for i := 0; i < 30; i++ {
		a := src.Uniform(-1, 1)
		xs = append(xs, []float64{a})
		ys = append(ys, []float64{10 * a})
	}
	ols, err := Fit(xs, ys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ridge, err := Fit(xs, ys, Options{Lambda: 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ridge.W.At(0, 0)) >= math.Abs(ols.W.At(0, 0)) {
		t.Fatalf("ridge |w|=%v not smaller than OLS |w|=%v", ridge.W.At(0, 0), ols.W.At(0, 0))
	}
}

func TestRidgeHandlesCollinear(t *testing.T) {
	// Second feature is an exact copy: OLS must fail, ridge must cope.
	var xs, ys [][]float64
	for i := 0; i < 10; i++ {
		v := float64(i)
		xs = append(xs, []float64{v, v})
		ys = append(ys, []float64{2 * v})
	}
	if _, err := Fit(xs, ys, Options{}); err == nil {
		t.Fatal("OLS accepted exactly collinear features")
	}
	m, err := Fit(xs, ys, Options{Lambda: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{4, 4})[0]; math.Abs(got-8) > 1e-3 {
		t.Fatalf("ridge prediction %v, want ~8", got)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, Options{}); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Fit([][]float64{{1}}, [][]float64{{1}, {2}}, Options{}); err == nil {
		t.Fatal("mismatched counts accepted")
	}
	// More coefficients than samples without ridge.
	if _, err := Fit([][]float64{{1, 2, 3}}, [][]float64{{1}}, Options{}); err == nil {
		t.Fatal("underdetermined OLS accepted")
	}
	// Ragged rows.
	if _, err := Fit([][]float64{{1, 2}, {3}}, [][]float64{{1}, {2}}, Options{}); err == nil {
		t.Fatal("ragged X accepted")
	}
	if _, err := Fit([][]float64{{1}, {2}, {3}}, [][]float64{{1}, {2}, {1, 2}}, Options{}); err == nil {
		t.Fatal("ragged Y accepted")
	}
}

func TestNoisyFitIsReasonable(t *testing.T) {
	src := rng.New(3)
	var xs, ys [][]float64
	for i := 0; i < 200; i++ {
		a := src.Uniform(-3, 3)
		xs = append(xs, []float64{a})
		ys = append(ys, []float64{4*a + 1 + src.NormMeanStd(0, 0.1)})
	}
	m, err := Fit(xs, ys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.W.At(0, 0)-4) > 0.05 || math.Abs(m.B[0]-1) > 0.05 {
		t.Fatalf("noisy fit w=%v b=%v", m.W.At(0, 0), m.B[0])
	}
}

func BenchmarkFit4x5x300(b *testing.B) {
	src := rng.New(1)
	var xs, ys [][]float64
	for i := 0; i < 300; i++ {
		x := []float64{src.Float64(), src.Float64(), src.Float64(), src.Float64()}
		xs = append(xs, x)
		ys = append(ys, []float64{x[0], x[1], x[2], x[3], x[0] + x[1]})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(xs, ys, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
