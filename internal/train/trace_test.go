package train

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"nnwc/internal/nn"
	"nnwc/internal/obs"
	"nnwc/internal/rng"
)

// lastHistoryEpoch asserts the trailing history point records the epoch
// training actually stopped on.
func lastHistoryEpoch(t *testing.T, res Result) {
	t.Helper()
	if len(res.History) == 0 {
		t.Fatalf("no history recorded (reason %s, epochs %d)", res.Reason, res.Epochs)
	}
	last := res.History[len(res.History)-1]
	if last.Epoch != res.Epochs {
		t.Fatalf("last history point is epoch %d, but training stopped at %d (%s)",
			last.Epoch, res.Epochs, res.Reason)
	}
}

func TestRecordEveryIncludesThresholdStop(t *testing.T) {
	// A huge cadence plus a loose threshold: the stop epoch will not be a
	// cadence multiple, yet it must still be recorded.
	src := rng.New(7)
	net := nn.NewNetwork([]int{1, 1}, nn.Identity{}, nn.Identity{})
	nn.UniformInit{Scale: 0.1}.Init(net, src)
	xs := [][]float64{{1}, {2}}
	ys := [][]float64{{1}, {2}}
	tr, err := New(Config{Optimizer: NewRPROP(), Mode: Batch, MaxEpochs: 10000,
		TargetLoss: 0.01, RecordEvery: 100000}, src.Split())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Fit(net, xs, ys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopThreshold {
		t.Fatalf("expected threshold stop, got %s", res.Reason)
	}
	lastHistoryEpoch(t, res)
	if res.History[len(res.History)-1].TrainLoss != res.FinalLoss {
		t.Fatal("stop-epoch history point does not carry the final loss")
	}
}

func TestRecordEveryIncludesDivergence(t *testing.T) {
	src := rng.New(9)
	net := nn.NewNetwork([]int{1, 4, 1}, nn.Tanh{}, nn.Identity{})
	nn.XavierInit{}.Init(net, src)
	xs := [][]float64{{1}, {2}, {3}}
	ys := [][]float64{{1}, {4}, {9}}
	tr, err := New(Config{Optimizer: &SGD{LR: 1e6}, Mode: Batch, MaxEpochs: 100,
		RecordEvery: 1000}, src.Split())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Fit(net, xs, ys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopDiverged {
		t.Fatalf("expected divergence, got %s", res.Reason)
	}
	lastHistoryEpoch(t, res)
}

func TestRecordEveryIncludesEarlyStop(t *testing.T) {
	src := rng.New(8)
	net := nn.NewNetwork([]int{1, 12, 1}, nn.Tanh{}, nn.Identity{})
	nn.XavierInit{}.Init(net, src)
	var xs, ys, vx, vy [][]float64
	noise := rng.New(99)
	for x := -1.0; x <= 1; x += 0.15 {
		xs = append(xs, []float64{x})
		ys = append(ys, []float64{x*x + noise.NormMeanStd(0, 0.15)})
		vx = append(vx, []float64{x + 0.07})
		vy = append(vy, []float64{(x + 0.07) * (x + 0.07)})
	}
	tr, err := New(Config{Optimizer: NewRPROP(), Mode: Batch, MaxEpochs: 5000,
		Patience: 50, MinDelta: 1e-7, RecordEvery: 999999}, src.Split())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Fit(net, xs, ys, vx, vy)
	if err != nil {
		t.Fatal(err)
	}
	lastHistoryEpoch(t, res)
}

func TestRecordEveryIncludesMaxEpochs(t *testing.T) {
	// 50 epochs at cadence 7: epoch 50 is off-cadence but is the stop epoch.
	src := rng.New(11)
	net := nn.NewNetwork([]int{1, 1}, nn.Identity{}, nn.Identity{})
	nn.UniformInit{Scale: 0.1}.Init(net, src)
	xs := [][]float64{{1}, {2}}
	ys := [][]float64{{2}, {4}}
	tr, err := New(Config{Optimizer: &SGD{LR: 0.01}, Mode: Batch, MaxEpochs: 50,
		RecordEvery: 7}, src.Split())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Fit(net, xs, ys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopMaxEpochs {
		t.Fatalf("expected max-epochs stop, got %s", res.Reason)
	}
	// Cadence points 7,14,...,49 plus the stop epoch 50.
	if len(res.History) != 8 {
		t.Fatalf("history points %d, want 8", len(res.History))
	}
	lastHistoryEpoch(t, res)
}

// fitTwice runs the same seeded fit with and without tracing and returns
// both nets plus the traced run's JSONL.
func fitTwice(t *testing.T, cfg Config) (plain, traced *nn.Network, trace []byte, plainRes, tracedRes Result) {
	t.Helper()
	build := func() (*nn.Network, *Trainer) {
		src := rng.New(21)
		net := nn.NewNetwork([]int{2, 6, 1}, nn.Tanh{}, nn.Identity{})
		nn.XavierInit{}.Init(net, src)
		tr, err := New(cfg, src.Split())
		if err != nil {
			t.Fatal(err)
		}
		return net, tr
	}
	xs, ys := xorData()

	plain, trPlain := build()
	var err error
	plainRes, err = trPlain.Fit(plain, xs, ys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	tcfg := cfg
	tcfg.Trace = obs.NewTraceNoTime(obs.NewWriterSink(&buf))
	traced2, trTraced := build()
	trTraced.cfg.Trace = tcfg.Trace
	tracedRes, err = trTraced.Fit(traced2, xs, ys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return plain, traced2, buf.Bytes(), plainRes, tracedRes
}

func TestTracingDoesNotPerturbTraining(t *testing.T) {
	cfg := Config{Optimizer: NewRPROP(), Mode: Batch, MaxEpochs: 200, RecordEvery: 10}
	plain, traced, _, plainRes, tracedRes := fitTwice(t, cfg)
	if plainRes.Epochs != tracedRes.Epochs || plainRes.FinalLoss != tracedRes.FinalLoss {
		t.Fatalf("results differ with tracing on: %+v vs %+v", plainRes, tracedRes)
	}
	pa, pb := plain.Params(), traced.Params()
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("param %d differs bitwise: %v vs %v", i, pa[i], pb[i])
		}
	}
}

func TestTraceEventStream(t *testing.T) {
	cfg := Config{Optimizer: NewRPROP(), Mode: Batch, MaxEpochs: 40, RecordEvery: 10}
	_, _, trace, _, res := fitTwice(t, cfg)
	lines := strings.Split(strings.TrimSpace(string(trace)), "\n")
	if !strings.Contains(lines[0], `"ev":"fit_start"`) {
		t.Fatalf("first event is not fit_start: %s", lines[0])
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, `"ev":"fit_end"`) || !strings.Contains(last, `"stop_reason":"`+string(res.Reason)+`"`) {
		t.Fatalf("last event is not a fit_end with the stop reason: %s", last)
	}
	epochs := 0
	for _, l := range lines {
		if strings.Contains(l, `"ev":"epoch"`) {
			epochs++
			for _, key := range []string{`"train_loss":`, `"weight_norm":`, `"grad_norm":`, `"step_norm":`} {
				if !strings.Contains(l, key) {
					t.Fatalf("epoch event missing %s: %s", key, l)
				}
			}
		}
	}
	if epochs != len(res.History) {
		t.Fatalf("trace has %d epoch events, history has %d points", epochs, len(res.History))
	}
}

func TestTraceIsDeterministic(t *testing.T) {
	cfg := Config{Optimizer: NewRPROP(), Mode: Batch, MaxEpochs: 60, RecordEvery: 5}
	_, _, a, _, _ := fitTwice(t, cfg)
	_, _, b, _, _ := fitTwice(t, cfg)
	ca, err := obs.CanonicalizeJSONL(a)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := obs.CanonicalizeJSONL(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Fatal("identical seeded runs produced different canonical traces")
	}
}

func TestBatchEpochZeroAlloc(t *testing.T) {
	// With tracing disabled, one batch epoch must not allocate: this pins
	// the observability layer's zero-cost-when-off guarantee on the hot
	// loop.
	src := rng.New(30)
	net := nn.NewNetwork([]int{4, 16, 5}, nn.Logistic{Alpha: 1}, nn.Identity{})
	nn.XavierInit{}.Init(net, src)
	var xs, ys [][]float64
	for i := 0; i < 64; i++ {
		x := []float64{src.Float64(), src.Float64(), src.Float64(), src.Float64()}
		xs = append(xs, x)
		ys = append(ys, []float64{x[0], x[1], x[2], x[3], x[0] + x[1]})
	}
	tr, err := New(Config{Optimizer: NewRPROP(), Mode: Batch, MaxEpochs: 1}, src.Split())
	if err != nil {
		t.Fatal(err)
	}
	// One full Fit warms every buffer (matrices, workspaces, optimizer
	// state); afterwards the steady-state epoch is allocation-free.
	if _, err := tr.Fit(net, xs, ys, nil, nil); err != nil {
		t.Fatal(err)
	}
	g := NewGradients(net)
	n := len(xs)
	invN := 1 / float64(n)
	tr.batchEpoch(net, g, n, invN)
	allocs := testing.AllocsPerRun(50, func() {
		tr.batchEpoch(net, g, n, invN)
	})
	if allocs != 0 {
		t.Fatalf("batch epoch allocated %.1f times per run with tracing disabled, want 0", allocs)
	}
}

func TestOnlineModeTraces(t *testing.T) {
	// Online mode has no batch gradient; epoch events must still emit
	// (without grad/step norms) and training must stay deterministic.
	run := func(trace *obs.Trace) (Result, *nn.Network) {
		src := rng.New(40)
		net := nn.NewNetwork([]int{1, 1}, nn.Identity{}, nn.Identity{})
		nn.UniformInit{Scale: 0.1}.Init(net, src)
		var xs, ys [][]float64
		for x := -1.0; x <= 1; x += 0.25 {
			xs = append(xs, []float64{x})
			ys = append(ys, []float64{2 * x})
		}
		tr, err := New(Config{Optimizer: &SGD{LR: 0.05}, Mode: Online, MaxEpochs: 30,
			RecordEvery: 4, Trace: trace}, src.Split())
		if err != nil {
			t.Fatal(err)
		}
		res, err := tr.Fit(net, xs, ys, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res, net
	}
	var buf bytes.Buffer
	resT, netT := run(obs.NewTraceNoTime(obs.NewWriterSink(&buf)))
	resP, netP := run(nil)
	if resT.FinalLoss != resP.FinalLoss || math.IsNaN(resT.FinalLoss) {
		t.Fatalf("online tracing perturbed the fit: %v vs %v", resT.FinalLoss, resP.FinalLoss)
	}
	if netT.Params()[0] != netP.Params()[0] {
		t.Fatal("online tracing perturbed the weights")
	}
	out := buf.String()
	if strings.Contains(out, `"grad_norm"`) {
		t.Fatal("online epoch events should not claim a batch gradient norm")
	}
	if !strings.Contains(out, `"ev":"epoch"`) {
		t.Fatal("online mode emitted no epoch events")
	}
}
