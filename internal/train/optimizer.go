package train

import (
	"math"

	"nnwc/internal/nn"
)

// Optimizer applies an accumulated gradient to a network's parameters.
// Stateful optimizers (momentum, RPROP, Adam) lazily size their state to
// the first network they see and must not be reused across topologies.
type Optimizer interface {
	// Step updates net in place given the gradient of the current batch.
	Step(net *nn.Network, g *Gradients)
	// Reset clears optimizer state so the instance can train a fresh
	// network of the same topology.
	Reset()
	// Name identifies the optimizer in reports.
	Name() string
}

// SGD is plain gradient descent: w ← w − LR·∂E/∂w.
type SGD struct {
	LR float64
}

// Step implements Optimizer.
func (s *SGD) Step(net *nn.Network, g *Gradients) {
	lr := s.LR
	for li, l := range net.Layers {
		for o := range l.W {
			row, grow := l.W[o], g.DW[li][o]
			for j := range row {
				row[j] -= lr * grow[j]
			}
			l.B[o] -= lr * g.DB[li][o]
		}
	}
}

// Reset implements Optimizer (SGD is stateless).
func (s *SGD) Reset() {}

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// Momentum is gradient descent with classical momentum:
// v ← μ·v − LR·g; w ← w + v.
type Momentum struct {
	LR, Mu float64
	vel    *Gradients
}

// Step implements Optimizer.
func (m *Momentum) Step(net *nn.Network, g *Gradients) {
	if m.vel == nil {
		m.vel = NewGradients(net)
	}
	for li, l := range net.Layers {
		for o := range l.W {
			row, grow, vrow := l.W[o], g.DW[li][o], m.vel.DW[li][o]
			for j := range row {
				vrow[j] = m.Mu*vrow[j] - m.LR*grow[j]
				row[j] += vrow[j]
			}
			m.vel.DB[li][o] = m.Mu*m.vel.DB[li][o] - m.LR*g.DB[li][o]
			l.B[o] += m.vel.DB[li][o]
		}
	}
}

// Reset implements Optimizer.
func (m *Momentum) Reset() { m.vel = nil }

// Name implements Optimizer.
func (m *Momentum) Name() string { return "momentum" }

// RPROP is resilient back-propagation (Riedmiller & Braun), a batch-only
// method that adapts a per-weight step size from the sign of successive
// gradients. It was the workhorse of mid-2000s MLP toolkits and is fast on
// the small, full-batch problems this paper works with.
type RPROP struct {
	EtaPlus, EtaMinus float64 // step growth/shrink factors (1.2 / 0.5)
	StepInit          float64 // initial step (0.1)
	StepMin, StepMax  float64 // step clamps (1e-6 / 50)
	step, prev        *Gradients
	initialized       bool
}

// NewRPROP returns an RPROP optimizer with the canonical constants.
func NewRPROP() *RPROP {
	return &RPROP{EtaPlus: 1.2, EtaMinus: 0.5, StepInit: 0.1, StepMin: 1e-6, StepMax: 50}
}

// Step implements Optimizer. g must be a full-batch gradient.
func (r *RPROP) Step(net *nn.Network, g *Gradients) {
	if !r.initialized {
		r.step = NewGradients(net)
		r.prev = NewGradients(net)
		for li := range r.step.DW {
			for o := range r.step.DW[li] {
				for j := range r.step.DW[li][o] {
					r.step.DW[li][o][j] = r.StepInit
				}
				r.step.DB[li][o] = r.StepInit
			}
		}
		r.initialized = true
	}
	update := func(w *float64, grad float64, prevGrad, step *float64) {
		sign := grad * *prevGrad
		switch {
		case sign > 0:
			*step = math.Min(*step*r.EtaPlus, r.StepMax)
			*w -= sgn(grad) * *step
			*prevGrad = grad
		case sign < 0:
			*step = math.Max(*step*r.EtaMinus, r.StepMin)
			// iRPROP−: do not move, forget the gradient so the next
			// iteration takes a fresh step.
			*prevGrad = 0
		default:
			*w -= sgn(grad) * *step
			*prevGrad = grad
		}
	}
	for li, l := range net.Layers {
		for o := range l.W {
			for j := range l.W[o] {
				update(&l.W[o][j], g.DW[li][o][j], &r.prev.DW[li][o][j], &r.step.DW[li][o][j])
			}
			update(&l.B[o], g.DB[li][o], &r.prev.DB[li][o], &r.step.DB[li][o])
		}
	}
}

// Reset implements Optimizer.
func (r *RPROP) Reset() { r.initialized = false; r.step, r.prev = nil, nil }

// Name implements Optimizer.
func (r *RPROP) Name() string { return "rprop" }

func sgn(x float64) float64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}

// Adam is the adaptive-moment optimizer (Kingma & Ba). Included for
// ablation benches; anachronistic relative to the paper but a useful
// modern reference point.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	m, v                  *Gradients
	t                     int
}

// NewAdam returns an Adam optimizer with the canonical constants and the
// given learning rate.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step implements Optimizer.
func (a *Adam) Step(net *nn.Network, g *Gradients) {
	if a.m == nil {
		a.m = NewGradients(net)
		a.v = NewGradients(net)
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	update := func(w *float64, grad float64, m, v *float64) {
		*m = a.Beta1**m + (1-a.Beta1)*grad
		*v = a.Beta2**v + (1-a.Beta2)*grad*grad
		*w -= a.LR * (*m / c1) / (math.Sqrt(*v/c2) + a.Eps)
	}
	for li, l := range net.Layers {
		for o := range l.W {
			for j := range l.W[o] {
				update(&l.W[o][j], g.DW[li][o][j], &a.m.DW[li][o][j], &a.v.DW[li][o][j])
			}
			update(&l.B[o], g.DB[li][o], &a.m.DB[li][o], &a.v.DB[li][o])
		}
	}
}

// Reset implements Optimizer.
func (a *Adam) Reset() { a.m, a.v, a.t = nil, nil, 0 }

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }
