package train

import (
	"math"

	"nnwc/internal/nn"
)

// Optimizer applies an accumulated gradient to a network's parameters.
// All optimizers walk the network's flat parameter vector against the
// gradient's flat vector — one contiguous loop, no per-layer bookkeeping.
// Stateful optimizers (momentum, RPROP, Adam) lazily size their state to
// the first network they see and must not be reused across topologies.
type Optimizer interface {
	// Step updates net in place given the gradient of the current batch.
	Step(net *nn.Network, g *Gradients)
	// Reset clears optimizer state so the instance can train a fresh
	// network of the same topology.
	Reset()
	// Clone returns an independent optimizer with the same hyperparameters
	// and no accumulated state. Trainers clone the configured optimizer at
	// construction, so one Config value can drive many concurrent fits.
	Clone() Optimizer
	// Name identifies the optimizer in reports.
	Name() string
}

// SGD is plain gradient descent: w ← w − LR·∂E/∂w.
type SGD struct {
	LR float64
}

// Step implements Optimizer.
func (s *SGD) Step(net *nn.Network, g *Gradients) {
	lr := s.LR
	p := net.Params()
	for i, gv := range g.Flat {
		p[i] -= lr * gv
	}
}

// Reset implements Optimizer (SGD is stateless).
func (s *SGD) Reset() {}

// Clone implements Optimizer.
func (s *SGD) Clone() Optimizer { c := *s; return &c }

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// Momentum is gradient descent with classical momentum:
// v ← μ·v − LR·g; w ← w + v.
type Momentum struct {
	LR, Mu float64
	vel    []float64
}

// Step implements Optimizer.
func (m *Momentum) Step(net *nn.Network, g *Gradients) {
	p := net.Params()
	if m.vel == nil {
		m.vel = make([]float64, len(p))
	}
	for i, gv := range g.Flat {
		m.vel[i] = m.Mu*m.vel[i] - m.LR*gv
		p[i] += m.vel[i]
	}
}

// Reset implements Optimizer.
func (m *Momentum) Reset() { m.vel = nil }

// Clone implements Optimizer.
func (m *Momentum) Clone() Optimizer { return &Momentum{LR: m.LR, Mu: m.Mu} }

// Name implements Optimizer.
func (m *Momentum) Name() string { return "momentum" }

// RPROP is resilient back-propagation (Riedmiller & Braun), a batch-only
// method that adapts a per-weight step size from the sign of successive
// gradients. It was the workhorse of mid-2000s MLP toolkits and is fast on
// the small, full-batch problems this paper works with.
type RPROP struct {
	EtaPlus, EtaMinus float64 // step growth/shrink factors (1.2 / 0.5)
	StepInit          float64 // initial step (0.1)
	StepMin, StepMax  float64 // step clamps (1e-6 / 50)
	step, prev        []float64
}

// NewRPROP returns an RPROP optimizer with the canonical constants.
func NewRPROP() *RPROP {
	return &RPROP{EtaPlus: 1.2, EtaMinus: 0.5, StepInit: 0.1, StepMin: 1e-6, StepMax: 50}
}

// Step implements Optimizer. g must be a full-batch gradient.
func (r *RPROP) Step(net *nn.Network, g *Gradients) {
	p := net.Params()
	if r.step == nil {
		r.step = make([]float64, len(p))
		r.prev = make([]float64, len(p))
		for i := range r.step {
			r.step[i] = r.StepInit
		}
	}
	for i, grad := range g.Flat {
		sign := grad * r.prev[i]
		switch {
		case sign > 0:
			r.step[i] = math.Min(r.step[i]*r.EtaPlus, r.StepMax)
			p[i] -= sgn(grad) * r.step[i]
			r.prev[i] = grad
		case sign < 0:
			r.step[i] = math.Max(r.step[i]*r.EtaMinus, r.StepMin)
			// iRPROP−: do not move, forget the gradient so the next
			// iteration takes a fresh step.
			r.prev[i] = 0
		default:
			p[i] -= sgn(grad) * r.step[i]
			r.prev[i] = grad
		}
	}
}

// Reset implements Optimizer.
func (r *RPROP) Reset() { r.step, r.prev = nil, nil }

// Clone implements Optimizer.
func (r *RPROP) Clone() Optimizer {
	return &RPROP{EtaPlus: r.EtaPlus, EtaMinus: r.EtaMinus, StepInit: r.StepInit, StepMin: r.StepMin, StepMax: r.StepMax}
}

// Name implements Optimizer.
func (r *RPROP) Name() string { return "rprop" }

func sgn(x float64) float64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}

// Adam is the adaptive-moment optimizer (Kingma & Ba). Included for
// ablation benches; anachronistic relative to the paper but a useful
// modern reference point.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	m, v                  []float64
	t                     int
}

// NewAdam returns an Adam optimizer with the canonical constants and the
// given learning rate.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step implements Optimizer.
func (a *Adam) Step(net *nn.Network, g *Gradients) {
	p := net.Params()
	if a.m == nil {
		a.m = make([]float64, len(p))
		a.v = make([]float64, len(p))
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, grad := range g.Flat {
		a.m[i] = a.Beta1*a.m[i] + (1-a.Beta1)*grad
		a.v[i] = a.Beta2*a.v[i] + (1-a.Beta2)*grad*grad
		p[i] -= a.LR * (a.m[i] / c1) / (math.Sqrt(a.v[i]/c2) + a.Eps)
	}
}

// Reset implements Optimizer.
func (a *Adam) Reset() { a.m, a.v, a.t = nil, nil, 0 }

// Clone implements Optimizer.
func (a *Adam) Clone() Optimizer {
	return &Adam{LR: a.LR, Beta1: a.Beta1, Beta2: a.Beta2, Eps: a.Eps}
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }
