package train

import (
	"math"
	"testing"

	"nnwc/internal/nn"
	"nnwc/internal/rng"
)

// numericalGradient perturbs one parameter and measures the loss change.
func numericalGradient(net *nn.Network, x, y []float64, get func() *float64) float64 {
	const h = 1e-6
	p := get()
	orig := *p
	*p = orig + h
	up := sampleLoss(net, x, y)
	*p = orig - h
	down := sampleLoss(net, x, y)
	*p = orig
	return (up - down) / (2 * h)
}

func sampleLoss(net *nn.Network, x, y []float64) float64 {
	pred := net.Forward(x)
	var loss float64
	for j, p := range pred {
		d := p - y[j]
		loss += 0.5 * d * d
	}
	return loss
}

// TestBackpropMatchesNumericalGradient is the keystone correctness test:
// the analytic gradient of every weight and bias in a multi-hidden-layer
// network must match central-difference estimates.
func TestBackpropMatchesNumericalGradient(t *testing.T) {
	activations := []nn.Activation{
		nn.Logistic{Alpha: 1},
		nn.Logistic{Alpha: 2.5},
		nn.Tanh{},
		nn.LogCompress{},
	}
	for _, act := range activations {
		src := rng.New(42)
		net := nn.NewNetwork([]int{3, 5, 4, 2}, act, nn.Identity{})
		nn.XavierInit{}.Init(net, src)
		x := []float64{0.5, -1.2, 0.8}
		y := []float64{0.3, -0.7}
		g := NewGradients(net)
		Backprop(net, x, y, g)

		for li, l := range net.Layers {
			for o := 0; o < l.Outputs; o++ {
				for i := 0; i < l.Inputs; i++ {
					want := numericalGradient(net, x, y, func() *float64 { return &l.W[o][i] })
					got := g.DW[li][o][i]
					if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
						t.Fatalf("%s: dW[%d][%d][%d] = %v, numeric %v", act.Name(), li, o, i, got, want)
					}
				}
				want := numericalGradient(net, x, y, func() *float64 { return &l.B[o] })
				got := g.DB[li][o]
				if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
					t.Fatalf("%s: dB[%d][%d] = %v, numeric %v", act.Name(), li, o, got, want)
				}
			}
		}
	}
}

func TestBackpropReturnsLoss(t *testing.T) {
	net := nn.NewNetwork([]int{1, 1}, nn.Identity{}, nn.Identity{})
	net.Layers[0].W[0][0] = 2
	g := NewGradients(net)
	// pred = 2*3 = 6, y = 4 → loss = 0.5*(6-4)^2 = 2.
	loss := Backprop(net, []float64{3}, []float64{4}, g)
	if math.Abs(loss-2) > 1e-12 {
		t.Fatalf("loss %v, want 2", loss)
	}
	// dL/dw = (pred-y)*x = 2*3 = 6; dL/db = 2.
	if math.Abs(g.DW[0][0][0]-6) > 1e-12 || math.Abs(g.DB[0][0]-2) > 1e-12 {
		t.Fatalf("gradients %v / %v", g.DW[0][0][0], g.DB[0][0])
	}
}

func TestBackpropShapePanics(t *testing.T) {
	net := nn.NewNetwork([]int{2, 1}, nn.Identity{}, nn.Identity{})
	defer func() {
		if recover() == nil {
			t.Fatal("wrong target size did not panic")
		}
	}()
	Backprop(net, []float64{1, 2}, []float64{1, 2}, NewGradients(net))
}

func TestGradientsZeroAndAddScaled(t *testing.T) {
	net := nn.NewNetwork([]int{2, 3, 1}, nn.Tanh{}, nn.Identity{})
	nn.XavierInit{}.Init(net, rng.New(1))
	a := NewGradients(net)
	b := NewGradients(net)
	Backprop(net, []float64{1, -1}, []float64{0.5}, a)
	b.AddScaled(2, a)
	if b.DW[0][0][0] != 2*a.DW[0][0][0] {
		t.Fatal("AddScaled wrong")
	}
	b.Scale(0.5)
	if math.Abs(b.DW[0][0][0]-a.DW[0][0][0]) > 1e-15 {
		t.Fatal("Scale wrong")
	}
	b.Zero()
	for li := range b.DW {
		for o := range b.DW[li] {
			for i := range b.DW[li][o] {
				if b.DW[li][o][i] != 0 {
					t.Fatal("Zero left residue")
				}
			}
			if b.DB[li][o] != 0 {
				t.Fatal("Zero left bias residue")
			}
		}
	}
}

func TestLossMeanSemantics(t *testing.T) {
	net := nn.NewNetwork([]int{1, 1}, nn.Identity{}, nn.Identity{})
	net.Layers[0].W[0][0] = 1
	xs := [][]float64{{1}, {2}}
	ys := [][]float64{{0}, {0}}
	// losses: 0.5*1, 0.5*4 → mean 1.25
	if l := Loss(net, xs, ys); math.Abs(l-1.25) > 1e-12 {
		t.Fatalf("Loss %v, want 1.25", l)
	}
	if Loss(net, nil, nil) != 0 {
		t.Fatal("empty Loss should be 0")
	}
}

func BenchmarkBackprop4x16x5(b *testing.B) {
	net := nn.NewNetwork([]int{4, 16, 5}, nn.Logistic{Alpha: 1}, nn.Identity{})
	nn.XavierInit{}.Init(net, rng.New(1))
	g := NewGradients(net)
	x := []float64{0.1, -0.5, 1.2, 0.7}
	y := []float64{1, 2, 3, 4, 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Backprop(net, x, y, g)
	}
}
