package train

import (
	"math"
	"testing"

	"nnwc/internal/mat"
	"nnwc/internal/nn"
	"nnwc/internal/rng"
)

// numericalGradient perturbs one parameter and measures the loss change.
func numericalGradient(net *nn.Network, x, y []float64, get func() *float64) float64 {
	const h = 1e-6
	p := get()
	orig := *p
	*p = orig + h
	up := sampleLoss(net, x, y)
	*p = orig - h
	down := sampleLoss(net, x, y)
	*p = orig
	return (up - down) / (2 * h)
}

func sampleLoss(net *nn.Network, x, y []float64) float64 {
	pred := net.Forward(x)
	var loss float64
	for j, p := range pred {
		d := p - y[j]
		loss += 0.5 * d * d
	}
	return loss
}

// TestBackpropMatchesNumericalGradient is the keystone correctness test:
// the analytic gradient of every weight and bias in a multi-hidden-layer
// network must match central-difference estimates.
func TestBackpropMatchesNumericalGradient(t *testing.T) {
	activations := []nn.Activation{
		nn.Logistic{Alpha: 1},
		nn.Logistic{Alpha: 2.5},
		nn.Tanh{},
		nn.LogCompress{},
	}
	for _, act := range activations {
		src := rng.New(42)
		net := nn.NewNetwork([]int{3, 5, 4, 2}, act, nn.Identity{})
		nn.XavierInit{}.Init(net, src)
		x := []float64{0.5, -1.2, 0.8}
		y := []float64{0.3, -0.7}
		g := NewGradients(net)
		Backprop(net, x, y, g)

		for li, l := range net.Layers {
			for o := 0; o < l.Outputs; o++ {
				row := l.W.Row(o)
				for i := 0; i < l.Inputs; i++ {
					i := i
					want := numericalGradient(net, x, y, func() *float64 { return &row[i] })
					got := g.DW[li].At(o, i)
					if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
						t.Fatalf("%s: dW[%d][%d][%d] = %v, numeric %v", act.Name(), li, o, i, got, want)
					}
				}
				o := o
				want := numericalGradient(net, x, y, func() *float64 { return &l.B[o] })
				got := g.DB[li][o]
				if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
					t.Fatalf("%s: dB[%d][%d] = %v, numeric %v", act.Name(), li, o, got, want)
				}
			}
		}
	}
}

// TestBackpropBatchMatchesNumericalGradient repeats the keystone check for
// the batched path: the mean gradient over a small batch must match
// central-difference estimates of the mean loss.
func TestBackpropBatchMatchesNumericalGradient(t *testing.T) {
	src := rng.New(43)
	net := nn.NewNetwork([]int{3, 5, 4, 2}, nn.Tanh{}, nn.Identity{})
	nn.XavierInit{}.Init(net, src)
	data := rng.New(17)
	const batch = 6
	X, Y := mat.New(batch, 3), mat.New(batch, 2)
	for i := range X.Data {
		X.Data[i] = data.Uniform(-1, 1)
	}
	for i := range Y.Data {
		Y.Data[i] = data.Uniform(-1, 1)
	}
	xs, ys := make([][]float64, batch), make([][]float64, batch)
	for r := 0; r < batch; r++ {
		xs[r], ys[r] = X.Row(r), Y.Row(r)
	}

	var ws Workspace
	g := NewGradients(net)
	total := BackpropBatch(net, X, Y, 1.0/batch, &ws, g)
	if want := Loss(net, xs, ys) * batch; math.Abs(total-want) > 1e-12*(1+want) {
		t.Fatalf("summed loss %v, per-sample total %v", total, want)
	}

	meanLoss := func() float64 { return Loss(net, xs, ys) }
	numeric := func(p *float64) float64 {
		const h = 1e-6
		orig := *p
		*p = orig + h
		up := meanLoss()
		*p = orig - h
		down := meanLoss()
		*p = orig
		return (up - down) / (2 * h)
	}
	params := net.Params()
	for i := range params {
		want := numeric(&params[i])
		got := g.Flat[i]
		if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
			t.Fatalf("flat gradient %d = %v, numeric %v", i, got, want)
		}
	}
}

// TestBackpropBatchMatchesPerSample is the batched-vs-per-sample
// equivalence keystone for the backward pass: accumulating per-sample
// Backprop gradients with the classic AddScaled(1/N) loop must agree with
// one BackpropBatch call to within 1e-12 (the kernels share the rounding
// order, so the match is in fact bit-exact).
func TestBackpropBatchMatchesPerSample(t *testing.T) {
	activations := []nn.Activation{nn.Logistic{Alpha: 1.5}, nn.Tanh{}, nn.LogCompress{}}
	for _, act := range activations {
		src := rng.New(44)
		net := nn.NewNetwork([]int{4, 7, 5, 3}, act, nn.Identity{})
		nn.XavierInit{}.Init(net, src)
		data := rng.New(23)
		const batch = 41
		X, Y := mat.New(batch, 4), mat.New(batch, 3)
		for i := range X.Data {
			X.Data[i] = data.Uniform(-2, 2)
		}
		for i := range Y.Data {
			Y.Data[i] = data.Uniform(-1, 1)
		}

		// Reference: the pre-refactor epoch loop.
		sample := NewGradients(net)
		ref := NewGradients(net)
		var refLoss float64
		for r := 0; r < batch; r++ {
			refLoss += Backprop(net, X.Row(r), Y.Row(r), sample)
			ref.AddScaled(1.0/batch, sample)
		}

		var ws Workspace
		got := NewGradients(net)
		gotLoss := BackpropBatch(net, X, Y, 1.0/batch, &ws, got)
		if math.Abs(gotLoss-refLoss) > 1e-12*(1+refLoss) {
			t.Fatalf("%s: batch loss %v, per-sample %v", act.Name(), gotLoss, refLoss)
		}
		for i := range ref.Flat {
			if math.Abs(got.Flat[i]-ref.Flat[i]) > 1e-12*(1+math.Abs(ref.Flat[i])) {
				t.Fatalf("%s: gradient %d: batch %v, per-sample %v",
					act.Name(), i, got.Flat[i], ref.Flat[i])
			}
		}
	}
}

// TestBackpropBatchBitIdenticalToPerSample pins the stronger property the
// trainer's reproducibility depends on: with scale = 1/N the batched path
// reproduces the per-sample accumulation loop bit-for-bit, not just within
// tolerance.
func TestBackpropBatchBitIdenticalToPerSample(t *testing.T) {
	src := rng.New(45)
	net := nn.NewNetwork([]int{4, 9, 2}, nn.Logistic{Alpha: 1}, nn.Identity{})
	nn.XavierInit{}.Init(net, src)
	data := rng.New(29)
	const batch = 30
	X, Y := mat.New(batch, 4), mat.New(batch, 2)
	for i := range X.Data {
		X.Data[i] = data.Uniform(-1.5, 1.5)
	}
	for i := range Y.Data {
		Y.Data[i] = data.Uniform(-1, 1)
	}

	sample := NewGradients(net)
	ref := NewGradients(net)
	for r := 0; r < batch; r++ {
		Backprop(net, X.Row(r), Y.Row(r), sample)
		ref.AddScaled(1.0/batch, sample)
	}
	var ws Workspace
	got := NewGradients(net)
	BackpropBatch(net, X, Y, 1.0/batch, &ws, got)
	for i := range ref.Flat {
		if got.Flat[i] != ref.Flat[i] {
			t.Fatalf("gradient %d not bit-identical: batch %x, per-sample %x",
				i, math.Float64bits(got.Flat[i]), math.Float64bits(ref.Flat[i]))
		}
	}
}

func TestBackpropBatchZeroAlloc(t *testing.T) {
	src := rng.New(46)
	net := nn.NewNetwork([]int{4, 16, 5}, nn.Logistic{Alpha: 1}, nn.Identity{})
	nn.XavierInit{}.Init(net, src)
	X, Y := mat.New(64, 4), mat.New(64, 5)
	for i := range X.Data {
		X.Data[i] = src.Uniform(-1, 1)
	}
	for i := range Y.Data {
		Y.Data[i] = src.Uniform(-1, 1)
	}
	var ws Workspace
	g := NewGradients(net)
	BackpropBatch(net, X, Y, 1.0/64, &ws, g) // warm buffers
	allocs := testing.AllocsPerRun(50, func() {
		BackpropBatch(net, X, Y, 1.0/64, &ws, g)
	})
	if allocs != 0 {
		t.Fatalf("steady-state BackpropBatch allocates %v objects/op", allocs)
	}
	LossBatch(net, X, Y, &ws)
	allocs = testing.AllocsPerRun(50, func() {
		LossBatch(net, X, Y, &ws)
	})
	if allocs != 0 {
		t.Fatalf("steady-state LossBatch allocates %v objects/op", allocs)
	}
}

func TestLossBatchMatchesLoss(t *testing.T) {
	src := rng.New(47)
	net := nn.NewNetwork([]int{3, 8, 2}, nn.Tanh{}, nn.Identity{})
	nn.XavierInit{}.Init(net, src)
	const n = 19
	xs, ys := make([][]float64, n), make([][]float64, n)
	for i := range xs {
		xs[i] = []float64{src.Uniform(-1, 1), src.Uniform(-1, 1), src.Uniform(-1, 1)}
		ys[i] = []float64{src.Uniform(-1, 1), src.Uniform(-1, 1)}
	}
	X, Y := mat.FromRows(xs), mat.FromRows(ys)
	var ws Workspace
	if got, want := LossBatch(net, X, Y, &ws), Loss(net, xs, ys); got != want {
		t.Fatalf("LossBatch %v, Loss %v", got, want)
	}
	empty := X.RowRange(0, 0)
	emptyY := Y.RowRange(0, 0)
	if LossBatch(net, &empty, &emptyY, &ws) != 0 {
		t.Fatal("empty LossBatch should be 0")
	}
}

func TestBackpropReturnsLoss(t *testing.T) {
	net := nn.NewNetwork([]int{1, 1}, nn.Identity{}, nn.Identity{})
	net.Layers[0].W.Set(0, 0, 2)
	g := NewGradients(net)
	// pred = 2*3 = 6, y = 4 → loss = 0.5*(6-4)^2 = 2.
	loss := Backprop(net, []float64{3}, []float64{4}, g)
	if math.Abs(loss-2) > 1e-12 {
		t.Fatalf("loss %v, want 2", loss)
	}
	// dL/dw = (pred-y)*x = 2*3 = 6; dL/db = 2.
	if math.Abs(g.DW[0].At(0, 0)-6) > 1e-12 || math.Abs(g.DB[0][0]-2) > 1e-12 {
		t.Fatalf("gradients %v / %v", g.DW[0].At(0, 0), g.DB[0][0])
	}
}

func TestBackpropShapePanics(t *testing.T) {
	net := nn.NewNetwork([]int{2, 1}, nn.Identity{}, nn.Identity{})
	defer func() {
		if recover() == nil {
			t.Fatal("wrong target size did not panic")
		}
	}()
	Backprop(net, []float64{1, 2}, []float64{1, 2}, NewGradients(net))
}

func TestGradientsFlatLayoutMatchesParams(t *testing.T) {
	net := nn.NewNetwork([]int{2, 3, 1}, nn.Tanh{}, nn.Identity{})
	g := NewGradients(net)
	if len(g.Flat) != net.NumParams() {
		t.Fatalf("flat gradient length %d, NumParams %d", len(g.Flat), net.NumParams())
	}
	for i := range g.Flat {
		g.Flat[i] = float64(i)
	}
	// Same layout as TestParamsLayout in package nn: layer 0 weights occupy
	// indices 0..5, its biases 6..8, layer 1 weights 9..11, bias 12.
	if g.DW[0].At(0, 1) != 1 || g.DB[0][2] != 8 || g.DW[1].At(0, 0) != 9 || g.DB[1][0] != 12 {
		t.Fatalf("gradient views misaligned with flat layout: %v", g.Flat)
	}
	g.DB[1][0] = -3
	if g.Flat[12] != -3 {
		t.Fatal("gradient views do not alias Flat")
	}
}

func TestGradientsZeroAndAddScaled(t *testing.T) {
	net := nn.NewNetwork([]int{2, 3, 1}, nn.Tanh{}, nn.Identity{})
	nn.XavierInit{}.Init(net, rng.New(1))
	a := NewGradients(net)
	b := NewGradients(net)
	Backprop(net, []float64{1, -1}, []float64{0.5}, a)
	b.AddScaled(2, a)
	if b.DW[0].At(0, 0) != 2*a.DW[0].At(0, 0) {
		t.Fatal("AddScaled wrong")
	}
	b.Scale(0.5)
	if math.Abs(b.DW[0].At(0, 0)-a.DW[0].At(0, 0)) > 1e-15 {
		t.Fatal("Scale wrong")
	}
	b.Zero()
	for _, v := range b.Flat {
		if v != 0 {
			t.Fatal("Zero left residue")
		}
	}
}

func TestLossMeanSemantics(t *testing.T) {
	net := nn.NewNetwork([]int{1, 1}, nn.Identity{}, nn.Identity{})
	net.Layers[0].W.Set(0, 0, 1)
	xs := [][]float64{{1}, {2}}
	ys := [][]float64{{0}, {0}}
	// losses: 0.5*1, 0.5*4 → mean 1.25
	if l := Loss(net, xs, ys); math.Abs(l-1.25) > 1e-12 {
		t.Fatalf("Loss %v, want 1.25", l)
	}
	if Loss(net, nil, nil) != 0 {
		t.Fatal("empty Loss should be 0")
	}
}

func BenchmarkBackprop4x16x5(b *testing.B) {
	net := nn.NewNetwork([]int{4, 16, 5}, nn.Logistic{Alpha: 1}, nn.Identity{})
	nn.XavierInit{}.Init(net, rng.New(1))
	g := NewGradients(net)
	x := []float64{0.1, -0.5, 1.2, 0.7}
	y := []float64{1, 2, 3, 4, 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Backprop(net, x, y, g)
	}
}

// BenchmarkBackpropBatch4x16x5 processes 64 samples per op through the
// batched kernel; divide ns/op by 64 to compare with the per-sample bench.
func BenchmarkBackpropBatch4x16x5(b *testing.B) {
	src := rng.New(1)
	net := nn.NewNetwork([]int{4, 16, 5}, nn.Logistic{Alpha: 1}, nn.Identity{})
	nn.XavierInit{}.Init(net, src)
	X, Y := mat.New(64, 4), mat.New(64, 5)
	for i := range X.Data {
		X.Data[i] = src.Uniform(-1, 1)
	}
	for i := range Y.Data {
		Y.Data[i] = src.Uniform(-1, 1)
	}
	var ws Workspace
	g := NewGradients(net)
	BackpropBatch(net, X, Y, 1.0/64, &ws, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BackpropBatch(net, X, Y, 1.0/64, &ws, g)
	}
}
