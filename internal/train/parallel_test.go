package train

import (
	"math"
	"runtime"
	"testing"

	"nnwc/internal/nn"
	"nnwc/internal/rng"
)

// trainOnce runs a short batch training with the given worker count and
// returns the final loss and a probe prediction.
func trainOnce(t *testing.T, workers int) (loss, probe float64) {
	t.Helper()
	src := rng.New(77)
	net := nn.NewNetwork([]int{3, 10, 2}, nn.Tanh{}, nn.Identity{})
	nn.XavierInit{}.Init(net, src)
	var xs, ys [][]float64
	data := rng.New(5)
	for i := 0; i < 240; i++ {
		x := []float64{data.Uniform(-1, 1), data.Uniform(-1, 1), data.Uniform(-1, 1)}
		xs = append(xs, x)
		ys = append(ys, []float64{x[0] * x[1], x[2] * x[2]})
	}
	tr, err := New(Config{Optimizer: NewRPROP(), Mode: Batch, MaxEpochs: 120, Workers: workers}, src.Split())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Fit(net, xs, ys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res.FinalLoss, net.Forward([]float64{0.3, -0.2, 0.5})[0]
}

func TestParallelBatchMatchesSerial(t *testing.T) {
	serialLoss, serialProbe := trainOnce(t, 1)
	for _, workers := range []int{2, 4, 7} {
		loss, probe := trainOnce(t, workers)
		// Summation order differs, so allow small drift; training must
		// land in essentially the same minimum.
		if math.Abs(loss-serialLoss) > 1e-6*(1+serialLoss) {
			t.Fatalf("workers=%d: loss %v vs serial %v", workers, loss, serialLoss)
		}
		if math.Abs(probe-serialProbe) > 1e-4*(1+math.Abs(serialProbe)) {
			t.Fatalf("workers=%d: probe %v vs serial %v", workers, probe, serialProbe)
		}
	}
}

func TestParallelBatchDeterministicPerWorkerCount(t *testing.T) {
	l1, p1 := trainOnce(t, 4)
	l2, p2 := trainOnce(t, 4)
	if l1 != l2 || p1 != p2 {
		t.Fatal("parallel training not deterministic for a fixed worker count")
	}
}

func TestParallelFallsBackOnTinyBatches(t *testing.T) {
	// With fewer samples than 2×workers the trainer must use the serial
	// path without deadlocking or dividing by zero.
	src := rng.New(78)
	net := nn.NewNetwork([]int{1, 2, 1}, nn.Tanh{}, nn.Identity{})
	nn.XavierInit{}.Init(net, src)
	tr, err := New(Config{Optimizer: NewRPROP(), Mode: Batch, MaxEpochs: 5, Workers: runtime.NumCPU()}, src.Split())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Fit(net, [][]float64{{1}, {2}}, [][]float64{{1}, {2}}, nil, nil); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkBatchEpochSerialVsParallel compares gradient-accumulation
// strategies. The speedup scales with GOMAXPROCS; on a single-core host
// the parallel path merely documents its (small) coordination overhead.
func BenchmarkBatchEpochSerialVsParallel(b *testing.B) {
	src := rng.New(1)
	var xs, ys [][]float64
	for i := 0; i < 2000; i++ {
		x := []float64{src.Float64(), src.Float64(), src.Float64(), src.Float64()}
		xs = append(xs, x)
		ys = append(ys, []float64{x[0] * x[1], x[2], x[3], x[0] + x[3], x[1]})
	}
	for _, workers := range []int{1, 2, 4, 8} {
		name := map[int]string{1: "serial", 2: "workers-2", 4: "workers-4", 8: "workers-8"}[workers]
		b.Run(name, func(b *testing.B) {
			net := nn.NewNetwork([]int{4, 32, 5}, nn.Logistic{Alpha: 1}, nn.Identity{})
			nn.XavierInit{}.Init(net, rng.New(2))
			tr, err := New(Config{Optimizer: NewRPROP(), Mode: Batch, MaxEpochs: 1, Workers: workers}, rng.New(3))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.Fit(net, xs, ys, nil, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
