package train

import (
	"math"
	"runtime"
	"testing"

	"nnwc/internal/nn"
	"nnwc/internal/rng"
)

// trainOnce runs a short batch training with the given worker count and
// returns the final loss and a snapshot of the trained parameters.
func trainOnce(t *testing.T, workers int) (loss float64, params []float64) {
	t.Helper()
	src := rng.New(77)
	net := nn.NewNetwork([]int{3, 10, 2}, nn.Tanh{}, nn.Identity{})
	nn.XavierInit{}.Init(net, src)
	var xs, ys [][]float64
	data := rng.New(5)
	for i := 0; i < 240; i++ {
		x := []float64{data.Uniform(-1, 1), data.Uniform(-1, 1), data.Uniform(-1, 1)}
		xs = append(xs, x)
		ys = append(ys, []float64{x[0] * x[1], x[2] * x[2]})
	}
	tr, err := New(Config{Optimizer: NewRPROP(), Mode: Batch, MaxEpochs: 120, Workers: workers}, src.Split())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Fit(net, xs, ys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res.FinalLoss, append([]float64(nil), net.Params()...)
}

func TestParallelBatchMatchesSerial(t *testing.T) {
	serialLoss, serialParams := trainOnce(t, 1)
	for _, workers := range []int{2, 4, 7} {
		loss, params := trainOnce(t, workers)
		// The serial path accumulates the whole batch in one sweep while the
		// parallel path sums per-block partials, so the last floating-point
		// bits may differ; training must still land in the same minimum.
		if math.Abs(loss-serialLoss) > 1e-6*(1+serialLoss) {
			t.Fatalf("workers=%d: loss %v vs serial %v", workers, loss, serialLoss)
		}
		for i := range params {
			if math.Abs(params[i]-serialParams[i]) > 1e-4*(1+math.Abs(serialParams[i])) {
				t.Fatalf("workers=%d: param %d drifted: %v vs serial %v",
					workers, i, params[i], serialParams[i])
			}
		}
	}
}

// TestParallelDeterministic pins the refactor's reproducibility guarantee:
// the final weights are bit-identical across repeated runs AND across
// worker counts, because the sample-block geometry depends only on the
// batch size and block partials always reduce in ascending block order.
func TestParallelDeterministic(t *testing.T) {
	refLoss, refParams := trainOnce(t, 2)
	for _, workers := range []int{2, 3, 4, 8} {
		loss, params := trainOnce(t, workers)
		if loss != refLoss {
			t.Fatalf("workers=%d: loss %x differs from workers=2 loss %x",
				workers, math.Float64bits(loss), math.Float64bits(refLoss))
		}
		for i := range params {
			if params[i] != refParams[i] {
				t.Fatalf("workers=%d: param %d not bit-identical: %x vs %x",
					workers, i, math.Float64bits(params[i]), math.Float64bits(refParams[i]))
			}
		}
	}
}

func TestParallelFallsBackOnTinyBatches(t *testing.T) {
	// With fewer samples than 2×workers the trainer must use the serial
	// path without deadlocking or dividing by zero.
	src := rng.New(78)
	net := nn.NewNetwork([]int{1, 2, 1}, nn.Tanh{}, nn.Identity{})
	nn.XavierInit{}.Init(net, src)
	tr, err := New(Config{Optimizer: NewRPROP(), Mode: Batch, MaxEpochs: 5, Workers: runtime.NumCPU()}, src.Split())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Fit(net, [][]float64{{1}, {2}}, [][]float64{{1}, {2}}, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNumBlocksPureAndClamped(t *testing.T) {
	cases := map[int]int{1: 1, 31: 1, 32: 1, 64: 2, 240: 7, 512: 16, 100000: 16}
	for n, want := range cases {
		if got := numBlocks(n); got != want {
			t.Fatalf("numBlocks(%d) = %d, want %d", n, got, want)
		}
	}
}

// BenchmarkBatchEpochSerialVsParallel compares gradient-accumulation
// strategies. The speedup scales with GOMAXPROCS; on a single-core host
// the parallel path merely documents its (small) coordination overhead.
func BenchmarkBatchEpochSerialVsParallel(b *testing.B) {
	src := rng.New(1)
	var xs, ys [][]float64
	for i := 0; i < 2000; i++ {
		x := []float64{src.Float64(), src.Float64(), src.Float64(), src.Float64()}
		xs = append(xs, x)
		ys = append(ys, []float64{x[0] * x[1], x[2], x[3], x[0] + x[3], x[1]})
	}
	for _, workers := range []int{1, 2, 4, 8} {
		name := map[int]string{1: "serial", 2: "workers-2", 4: "workers-4", 8: "workers-8"}[workers]
		b.Run(name, func(b *testing.B) {
			net := nn.NewNetwork([]int{4, 32, 5}, nn.Logistic{Alpha: 1}, nn.Identity{})
			nn.XavierInit{}.Init(net, rng.New(2))
			tr, err := New(Config{Optimizer: NewRPROP(), Mode: Batch, MaxEpochs: 1, Workers: workers}, rng.New(3))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.Fit(net, xs, ys, nil, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
