// Package train implements gradient-descent back-propagation training for
// the MLPs in package nn — "by far the most popular" method per the
// paper's §2.2 — along with several optimizers (online/batch SGD,
// momentum, RPROP, Adam), epoch management, and the early-stopping
// ("termination threshold") control the paper uses in §3.3 to keep the
// model loosely fitted and flexible on unseen samples.
package train

import (
	"fmt"

	"nnwc/internal/nn"
)

// Gradients holds ∂E/∂w and ∂E/∂b for every layer of a network, in the
// same shapes as the network's parameters.
type Gradients struct {
	DW [][][]float64 // layer → output → input
	DB [][]float64   // layer → output
}

// NewGradients allocates zeroed gradients shaped like net.
func NewGradients(net *nn.Network) *Gradients {
	g := &Gradients{
		DW: make([][][]float64, len(net.Layers)),
		DB: make([][]float64, len(net.Layers)),
	}
	for i, l := range net.Layers {
		g.DW[i] = make([][]float64, l.Outputs)
		for o := range g.DW[i] {
			g.DW[i][o] = make([]float64, l.Inputs)
		}
		g.DB[i] = make([]float64, l.Outputs)
	}
	return g
}

// Zero resets all gradient entries.
func (g *Gradients) Zero() {
	for i := range g.DW {
		for o := range g.DW[i] {
			for j := range g.DW[i][o] {
				g.DW[i][o][j] = 0
			}
		}
		for o := range g.DB[i] {
			g.DB[i][o] = 0
		}
	}
}

// AddScaled accumulates s*other into g.
func (g *Gradients) AddScaled(s float64, other *Gradients) {
	for i := range g.DW {
		for o := range g.DW[i] {
			for j := range g.DW[i][o] {
				g.DW[i][o][j] += s * other.DW[i][o][j]
			}
		}
		for o := range g.DB[i] {
			g.DB[i][o] += s * other.DB[i][o]
		}
	}
}

// Scale multiplies every gradient entry by s.
func (g *Gradients) Scale(s float64) {
	for i := range g.DW {
		for o := range g.DW[i] {
			for j := range g.DW[i][o] {
				g.DW[i][o][j] *= s
			}
		}
		for o := range g.DB[i] {
			g.DB[i][o] *= s
		}
	}
}

// Backprop computes the squared-error loss E = ½‖ŷ − y‖² for one sample
// and writes the exact gradient of E with respect to every weight and bias
// into out (overwriting it). It returns the loss.
func Backprop(net *nn.Network, x, y []float64, out *Gradients) float64 {
	if len(y) != net.OutputDim() {
		panic(fmt.Sprintf("train: target has %d entries, network outputs %d", len(y), net.OutputDim()))
	}
	acts, pres := net.ForwardTrace(x)
	pred := acts[len(acts)-1]

	// Output-layer delta: (ŷ − y) ⊙ f'(pre).
	last := len(net.Layers) - 1
	delta := make([]float64, net.Layers[last].Outputs)
	var loss float64
	for i := range delta {
		diff := pred[i] - y[i]
		loss += 0.5 * diff * diff
		delta[i] = diff * net.Layers[last].Act.Deriv(pres[last][i], pred[i])
	}

	// Walk the layers backwards, filling gradients and propagating deltas.
	for li := last; li >= 0; li-- {
		layer := net.Layers[li]
		in := acts[li]
		for o := 0; o < layer.Outputs; o++ {
			d := delta[o]
			out.DB[li][o] = d
			row := out.DW[li][o]
			for j, xv := range in {
				row[j] = d * xv
			}
		}
		if li == 0 {
			break
		}
		prev := net.Layers[li-1]
		nextDelta := make([]float64, prev.Outputs)
		for j := 0; j < prev.Outputs; j++ {
			var s float64
			for o := 0; o < layer.Outputs; o++ {
				s += delta[o] * layer.W[o][j]
			}
			nextDelta[j] = s * prev.Act.Deriv(pres[li-1][j], acts[li][j])
		}
		delta = nextDelta
	}
	return loss
}

// Loss returns the mean squared-error loss of net over the given rows,
// using the same ½‖ŷ−y‖² per-sample convention as Backprop.
func Loss(net *nn.Network, xs, ys [][]float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var total float64
	for i, x := range xs {
		pred := net.Forward(x)
		for j, p := range pred {
			d := p - ys[i][j]
			total += 0.5 * d * d
		}
	}
	return total / float64(len(xs))
}
