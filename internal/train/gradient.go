// Package train implements gradient-descent back-propagation training for
// the MLPs in package nn — "by far the most popular" method per the
// paper's §2.2 — along with several optimizers (online/batch SGD,
// momentum, RPROP, Adam), epoch management, and the early-stopping
// ("termination threshold") control the paper uses in §3.3 to keep the
// model loosely fitted and flexible on unseen samples.
//
// Gradients mirror the network's flat parameter vector: one contiguous
// []float64 laid out exactly like nn.Network.Params, with per-layer matrix
// views for code that wants shaped access. The batched entry points
// (BackpropBatch, LossBatch) process whole sample matrices against
// preallocated workspaces and perform zero per-sample allocation.
package train

import (
	"fmt"

	"nnwc/internal/mat"
	"nnwc/internal/nn"
)

// Gradients holds ∂E/∂w and ∂E/∂b for every layer of a network in one flat
// vector with the same layout as nn.Network.Params: per layer, the weight
// gradients (row-major, Outputs × Inputs) followed by the bias gradients.
// DW and DB are views into Flat.
type Gradients struct {
	Flat []float64
	DW   []*mat.Matrix // layer → Outputs × Inputs weight-gradient view
	DB   [][]float64   // layer → Outputs bias-gradient view
}

// NewGradients allocates zeroed gradients shaped like net.
func NewGradients(net *nn.Network) *Gradients {
	g := &Gradients{
		Flat: make([]float64, net.NumParams()),
		DW:   make([]*mat.Matrix, len(net.Layers)),
		DB:   make([][]float64, len(net.Layers)),
	}
	off := 0
	for i, l := range net.Layers {
		wspan := l.Outputs * l.Inputs
		g.DW[i] = &mat.Matrix{Rows: l.Outputs, Cols: l.Inputs, Data: g.Flat[off : off+wspan]}
		g.DB[i] = g.Flat[off+wspan : off+wspan+l.Outputs]
		off += wspan + l.Outputs
	}
	return g
}

// Zero resets all gradient entries.
//
//nnwc:hotpath
func (g *Gradients) Zero() {
	for i := range g.Flat {
		g.Flat[i] = 0
	}
}

// AddScaled accumulates s*other into g.
//
//nnwc:hotpath
func (g *Gradients) AddScaled(s float64, other *Gradients) {
	mat.AXPY(s, other.Flat, g.Flat)
}

// Scale multiplies every gradient entry by s.
//
//nnwc:hotpath
func (g *Gradients) Scale(s float64) {
	for i := range g.Flat {
		g.Flat[i] *= s
	}
}

// Workspace holds the reusable buffers batched training needs: the forward
// activation trace plus two delta matrices. The zero value is ready to use;
// buffers grow on demand and steady-state epochs allocate nothing. A
// workspace must not be shared between concurrent goroutines.
type Workspace struct {
	fw     nn.BatchWorkspace
	delta  mat.Matrix
	delta2 mat.Matrix
}

// Backprop computes the squared-error loss E = ½‖ŷ − y‖² for one sample
// and writes the exact gradient of E with respect to every weight and bias
// into out (overwriting it). It returns the loss.
func Backprop(net *nn.Network, x, y []float64, out *Gradients) float64 {
	if len(y) != net.OutputDim() {
		panic(fmt.Sprintf("train: target has %d entries, network outputs %d", len(y), net.OutputDim()))
	}
	acts, pres := net.ForwardTrace(x)
	pred := acts[len(acts)-1]

	// Output-layer delta: (ŷ − y) ⊙ f'(pre).
	last := len(net.Layers) - 1
	delta := make([]float64, net.Layers[last].Outputs)
	var loss float64
	for i := range delta {
		diff := pred[i] - y[i]
		loss += 0.5 * diff * diff
		delta[i] = diff * net.Layers[last].Act.Deriv(pres[last][i], pred[i])
	}

	// Walk the layers backwards, filling gradients and propagating deltas.
	for li := last; li >= 0; li-- {
		layer := net.Layers[li]
		in := acts[li]
		for o := 0; o < layer.Outputs; o++ {
			d := delta[o]
			out.DB[li][o] = d
			row := out.DW[li].Row(o)
			for j, xv := range in {
				row[j] = d * xv
			}
		}
		if li == 0 {
			break
		}
		prev := net.Layers[li-1]
		nextDelta := make([]float64, prev.Outputs)
		for j := 0; j < prev.Outputs; j++ {
			var s float64
			wcol := layer.W
			for o := 0; o < layer.Outputs; o++ {
				s += delta[o] * wcol.At(o, j)
			}
			nextDelta[j] = s * prev.Act.Deriv(pres[li-1][j], acts[li][j])
		}
		delta = nextDelta
	}
	return loss
}

// BackpropBatch runs one batched forward/backward pass over every row of
// X/Y and overwrites out with scale × the sum of the per-sample gradients
// (accumulated in ascending row order with the same rounding as the
// per-sample path, so scale = 1/N reproduces the classic mean-gradient
// epoch bit-for-bit). It returns the summed per-sample loss Σᵣ ½‖ŷᵣ − yᵣ‖².
// Steady-state calls perform zero per-sample allocation.
//
//nnwc:hotpath
func BackpropBatch(net *nn.Network, X, Y *mat.Matrix, scale float64, ws *Workspace, out *Gradients) float64 {
	if X.Rows != Y.Rows {
		panic(fmt.Sprintf("train: batch has %d inputs but %d targets", X.Rows, Y.Rows))
	}
	if Y.Cols != net.OutputDim() {
		panic(fmt.Sprintf("train: targets have %d columns, network outputs %d", Y.Cols, net.OutputDim()))
	}
	if ws == nil {
		//lint:waive hotpath -- nil-workspace fallback for one-shot callers; the training loop passes a warmed workspace
		ws = &Workspace{}
	}
	acts, pres := net.ForwardTraceBatch(X, &ws.fw)
	batch := X.Rows
	last := len(net.Layers) - 1
	lastLayer := net.Layers[last]
	pred := acts[last+1]

	// Output-layer deltas and total loss, sample by sample in row order,
	// then one derivative sweep over the flat delta matrix (element-wise, so
	// flattening the per-row calls changes no rounding).
	delta := ws.delta.Reshape(batch, lastLayer.Outputs)
	var total float64
	for r := 0; r < batch; r++ {
		prow, yrow, drow := pred.Row(r), Y.Row(r), delta.Row(r)
		var loss float64
		for i := range drow {
			diff := prow[i] - yrow[i]
			loss += 0.5 * diff * diff
			drow[i] = diff
		}
		total += loss
	}
	nn.ScaleByDeriv(lastLayer.Act, pres[last].Data, pred.Data, delta.Data)

	// Walk the layers backwards: accumulate scaled gradients over the batch
	// and propagate deltas through the mat kernels. GradAccumInto keeps the
	// per-sample path's exact expression and ascending r/o/j order; MulInto
	// accumulates Σₒ d·W[o][j] in the same ascending-o order as the old
	// per-row AXPY loop.
	out.Zero()
	cur, next := &ws.delta, &ws.delta2
	for li := last; li >= 0; li-- {
		layer := net.Layers[li]
		in := acts[li]
		mat.GradAccumInto(out.DW[li], out.DB[li], cur, in, scale)
		if li == 0 {
			break
		}
		prev := net.Layers[li-1]
		nd := mat.MulInto(next, cur, layer.W)
		nn.ScaleByDeriv(prev.Act, pres[li-1].Data, acts[li].Data, nd.Data)
		cur, next = next, cur
	}
	return total
}

// Loss returns the mean squared-error loss of net over the given rows,
// using the same ½‖ŷ−y‖² per-sample convention as Backprop.
func Loss(net *nn.Network, xs, ys [][]float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var total float64
	for i, x := range xs {
		pred := net.Forward(x)
		for j, p := range pred {
			d := p - ys[i][j]
			total += 0.5 * d * d
		}
	}
	return total / float64(len(xs))
}

// LossBatch returns the mean squared-error loss of net over the rows of
// X/Y using ws's buffers — the allocation-free batched counterpart of Loss,
// with identical accumulation order.
//
//nnwc:hotpath
func LossBatch(net *nn.Network, X, Y *mat.Matrix, ws *Workspace) float64 {
	if X.Rows == 0 {
		return 0
	}
	if X.Rows != Y.Rows {
		panic(fmt.Sprintf("train: batch has %d inputs but %d targets", X.Rows, Y.Rows))
	}
	if ws == nil {
		//lint:waive hotpath -- nil-workspace fallback for one-shot callers; the training loop passes a warmed workspace
		ws = &Workspace{}
	}
	pred := net.ForwardBatch(X, &ws.fw)
	var total float64
	for r := 0; r < X.Rows; r++ {
		prow, yrow := pred.Row(r), Y.Row(r)
		for j, p := range prow {
			d := p - yrow[j]
			total += 0.5 * d * d
		}
	}
	return total / float64(X.Rows)
}
