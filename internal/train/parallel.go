package train

import (
	"sync"

	"nnwc/internal/nn"
)

// workerScratch is one worker's reusable accumulators, allocated lazily on
// the first parallel epoch and reused for the rest of the run.
type workerScratch struct {
	acc    *Gradients
	sample *Gradients
	loss   float64
	used   bool
}

// shapeMatches reports whether g is shaped like net's parameters, so a
// Trainer reused across different topologies reallocates its scratch.
func shapeMatches(g *Gradients, net *nn.Network) bool {
	if g == nil || len(g.DW) != len(net.Layers) {
		return false
	}
	for li, l := range net.Layers {
		if len(g.DW[li]) != l.Outputs || len(g.DB[li]) != l.Outputs {
			return false
		}
		if l.Outputs > 0 && len(g.DW[li][0]) != l.Inputs {
			return false
		}
	}
	return true
}

// parallelBatch accumulates the full-batch gradient across Workers
// goroutines. Backprop only reads the network's weights, so the workers
// share net; each owns a contiguous shard of samples and private gradient
// accumulators. Shard partials merge into out in shard order, making a
// fixed worker count fully deterministic (different counts may differ in
// the last bits through floating-point summation order). Returns the mean
// per-sample loss.
func (t *Trainer) parallelBatch(net *nn.Network, xs, ys [][]float64, out *Gradients) float64 {
	workers := t.cfg.Workers
	if len(t.scratch) != workers || !shapeMatches(t.scratch[0].acc, net) {
		t.scratch = make([]workerScratch, workers)
		for w := range t.scratch {
			t.scratch[w].acc = NewGradients(net)
			t.scratch[w].sample = NewGradients(net)
		}
	}
	n := len(xs)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		sc := &t.scratch[w]
		sc.used = lo < hi
		if !sc.used {
			continue
		}
		wg.Add(1)
		go func(sc *workerScratch, lo, hi int) {
			defer wg.Done()
			sc.acc.Zero()
			sc.loss = 0
			for i := lo; i < hi; i++ {
				sc.loss += Backprop(net, xs[i], ys[i], sc.sample)
				sc.acc.AddScaled(1, sc.sample)
			}
		}(sc, lo, hi)
	}
	wg.Wait()

	out.Zero()
	var total float64
	for w := range t.scratch {
		if !t.scratch[w].used {
			continue
		}
		out.AddScaled(1/float64(n), t.scratch[w].acc)
		total += t.scratch[w].loss
	}
	return total / float64(n)
}
