package train

import (
	"sync/atomic"

	"nnwc/internal/mat"
	"nnwc/internal/nn"
	"nnwc/internal/sched"
)

// Parallel gradient accumulation works on fixed sample blocks rather than
// per-worker shards: the batch is cut into numBlocks(n) contiguous blocks
// whose boundaries depend only on the sample count, workers pull block
// indices from a shared counter, and the per-block partial gradients merge
// serially in ascending block order. Because neither the block geometry nor
// the reduction order depends on the worker count or on scheduling, the
// accumulated gradient — and therefore the trained network — is
// bit-identical across runs and across any Workers > 1 setting.

// numBlocks picks the block count for an n-sample batch: roughly 32 samples
// per block, clamped to [1, 16]. A pure function of n so the floating-point
// reduction tree never changes shape.
func numBlocks(n int) int {
	nb := n / 32
	if nb < 1 {
		nb = 1
	}
	if nb > 16 {
		nb = 16
	}
	return nb
}

// parallelScratch holds the per-block gradient accumulators and per-worker
// workspaces for parallel batch epochs, allocated lazily on the first
// parallel epoch and reused for the rest of the run.
type parallelScratch struct {
	blocks  []*Gradients // one accumulator per sample block
	losses  []float64    // per-block summed sample loss
	wss     []Workspace  // one forward/backward workspace per worker
	nparams int          // shape guard for Trainer reuse across topologies
}

// parallelBatch accumulates the full-batch mean gradient across worker
// goroutines and writes it into out. Backprop only reads the network's
// weights, so workers share net; each block owns private accumulators.
// Returns the mean per-sample loss.
func (t *Trainer) parallelBatch(net *nn.Network, X, Y *mat.Matrix, out *Gradients) float64 {
	n := X.Rows
	nb := numBlocks(n)
	workers := t.cfg.Workers
	if workers > nb {
		workers = nb
	}

	sc := &t.parallel
	if sc.nparams != net.NumParams() || len(sc.blocks) < nb {
		sc.blocks = make([]*Gradients, nb)
		for b := range sc.blocks {
			sc.blocks[b] = NewGradients(net)
		}
		sc.losses = make([]float64, nb)
		sc.nparams = net.NumParams()
	}
	if len(sc.wss) < workers {
		sc.wss = make([]Workspace, workers)
	}

	invN := 1 / float64(n)
	var nextBlock int64
	sched.RunWorkers(workers, func(w int) {
		ws := &sc.wss[w]
		for {
			b := int(atomic.AddInt64(&nextBlock, 1)) - 1
			if b >= nb {
				return
			}
			lo, hi := b*n/nb, (b+1)*n/nb
			bx, by := X.RowRange(lo, hi), Y.RowRange(lo, hi)
			sc.losses[b] = BackpropBatch(net, &bx, &by, invN, ws, sc.blocks[b])
		}
	})

	// Serial reduction in ascending block order: the only float summation
	// whose order could depend on scheduling, pinned here instead.
	out.Zero()
	var total float64
	for b := 0; b < nb; b++ {
		out.AddScaled(1, sc.blocks[b])
		total += sc.losses[b]
	}
	return total * invN
}
