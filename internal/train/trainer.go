package train

import (
	"errors"
	"fmt"
	"math"

	"nnwc/internal/nn"
	"nnwc/internal/rng"
)

// Mode selects how gradients are applied within an epoch.
type Mode int

const (
	// Batch accumulates the gradient over the whole training set and
	// applies one optimizer step per epoch. Required by RPROP.
	Batch Mode = iota
	// Online applies an optimizer step after every sample
	// (stochastic/pattern-mode back-propagation), with per-epoch
	// shuffling.
	Online
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Batch:
		return "batch"
	case Online:
		return "online"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// StopReason records why training terminated.
type StopReason string

const (
	// StopThreshold means the training loss fell below Config.TargetLoss —
	// the paper's §3.3 "threshold value ... to indicate when to stop
	// training", the knob that keeps the fit deliberately loose.
	StopThreshold StopReason = "loss-threshold"
	// StopMaxEpochs means the epoch budget ran out.
	StopMaxEpochs StopReason = "max-epochs"
	// StopEarly means validation loss stopped improving for Patience
	// epochs (early stopping on held-out data).
	StopEarly StopReason = "early-stopping"
	// StopDiverged means the loss became non-finite.
	StopDiverged StopReason = "diverged"
)

// Config controls a training run.
type Config struct {
	Optimizer  Optimizer
	Mode       Mode
	MaxEpochs  int
	TargetLoss float64 // stop when training MSE ≤ TargetLoss; ≤0 disables

	// Early stopping on a validation split (used when ValX/ValY are set):
	// stop when the best validation loss has not improved by at least
	// MinDelta for Patience consecutive epochs, then restore the best
	// weights seen.
	Patience int
	MinDelta float64

	// RecordEvery appends a telemetry point every k epochs (and always on
	// the last). 0 records every epoch.
	RecordEvery int

	// WeightDecay adds an L2 penalty λ‖w‖²/2 on the weights (not biases):
	// the gradient gains a λ·w term before each optimizer step. It is the
	// era-appropriate alternative to the paper's loose-fit threshold for
	// keeping the model flexible (§3.3); 0 disables it.
	WeightDecay float64

	// Workers splits Batch-mode gradient accumulation across this many
	// goroutines (0 or 1 = serial). Results are deterministic for a fixed
	// worker count: each worker owns a contiguous sample shard and the
	// shard sums merge in shard order. Different worker counts may differ
	// in the last few bits (floating-point summation order). Ignored in
	// Online mode, which is inherently sequential.
	Workers int
}

// DefaultConfig returns the configuration used throughout the experiments:
// full-batch RPROP, a generous epoch budget, and a loose loss threshold in
// the spirit of the paper's §3.3.
func DefaultConfig() Config {
	return Config{
		Optimizer:  NewRPROP(),
		Mode:       Batch,
		MaxEpochs:  2000,
		TargetLoss: 1e-4,
		Patience:   0,
	}
}

// HistoryPoint is one telemetry record.
type HistoryPoint struct {
	Epoch     int
	TrainLoss float64
	ValLoss   float64 // NaN when no validation set was supplied
}

// Result summarizes a training run.
type Result struct {
	Epochs    int
	FinalLoss float64
	ValLoss   float64 // NaN when no validation set was supplied
	Reason    StopReason
	History   []HistoryPoint
}

// Trainer trains a network on paired rows. The zero value is not usable;
// construct with New.
type Trainer struct {
	cfg Config
	src *rng.Source

	scratch []workerScratch // reusable parallel-batch accumulators
}

// New returns a Trainer with the given configuration and random source
// (used for online-mode shuffling).
func New(cfg Config, src *rng.Source) (*Trainer, error) {
	if cfg.Optimizer == nil {
		return nil, errors.New("train: Config.Optimizer is required")
	}
	if cfg.MaxEpochs <= 0 {
		return nil, errors.New("train: Config.MaxEpochs must be positive")
	}
	if cfg.Mode == Online {
		if _, isRPROP := cfg.Optimizer.(*RPROP); isRPROP {
			return nil, errors.New("train: RPROP requires Batch mode")
		}
	}
	if src == nil {
		src = rng.New(1)
	}
	return &Trainer{cfg: cfg, src: src}, nil
}

// Fit trains net on (xs, ys). valX/valY may be nil; when provided they
// drive early stopping and validation telemetry. Fit mutates net in place
// and returns a Result.
func (t *Trainer) Fit(net *nn.Network, xs, ys [][]float64, valX, valY [][]float64) (Result, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return Result{}, fmt.Errorf("train: need equal, non-zero sample counts (got %d, %d)", len(xs), len(ys))
	}
	for i := range xs {
		if len(xs[i]) != net.InputDim() || len(ys[i]) != net.OutputDim() {
			return Result{}, fmt.Errorf("train: sample %d shape (%d,%d) does not match network (%d,%d)",
				i, len(xs[i]), len(ys[i]), net.InputDim(), net.OutputDim())
		}
	}
	hasVal := len(valX) > 0
	if hasVal && len(valX) != len(valY) {
		return Result{}, errors.New("train: validation rows mismatch")
	}
	t.cfg.Optimizer.Reset()

	sampleGrad := NewGradients(net)
	batchGrad := NewGradients(net)
	order := make([]int, len(xs))
	for i := range order {
		order[i] = i
	}

	res := Result{ValLoss: math.NaN()}
	best := math.Inf(1)
	bestEpoch := 0
	var bestNet *nn.Network

	record := func(epoch int, trainLoss, valLoss float64) {
		every := t.cfg.RecordEvery
		if every <= 0 {
			every = 1
		}
		if epoch%every == 0 || epoch == t.cfg.MaxEpochs {
			res.History = append(res.History, HistoryPoint{Epoch: epoch, TrainLoss: trainLoss, ValLoss: valLoss})
		}
	}

	for epoch := 1; epoch <= t.cfg.MaxEpochs; epoch++ {
		var trainLoss float64
		switch t.cfg.Mode {
		case Batch:
			if t.cfg.Workers > 1 && len(xs) >= 2*t.cfg.Workers {
				trainLoss = t.parallelBatch(net, xs, ys, batchGrad)
			} else {
				batchGrad.Zero()
				for i := range xs {
					trainLoss += Backprop(net, xs[i], ys[i], sampleGrad)
					batchGrad.AddScaled(1/float64(len(xs)), sampleGrad)
				}
				trainLoss /= float64(len(xs))
			}
			applyWeightDecay(net, batchGrad, t.cfg.WeightDecay)
			t.cfg.Optimizer.Step(net, batchGrad)
		case Online:
			t.src.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			for _, i := range order {
				trainLoss += Backprop(net, xs[i], ys[i], sampleGrad)
				applyWeightDecay(net, sampleGrad, t.cfg.WeightDecay)
				t.cfg.Optimizer.Step(net, sampleGrad)
			}
			trainLoss /= float64(len(xs))
		default:
			return Result{}, fmt.Errorf("train: unknown mode %v", t.cfg.Mode)
		}

		valLoss := math.NaN()
		if hasVal {
			valLoss = Loss(net, valX, valY)
		}
		record(epoch, trainLoss, valLoss)
		res.Epochs = epoch
		res.FinalLoss = trainLoss
		res.ValLoss = valLoss

		if math.IsNaN(trainLoss) || math.IsInf(trainLoss, 0) {
			res.Reason = StopDiverged
			return res, nil
		}
		if t.cfg.TargetLoss > 0 && trainLoss <= t.cfg.TargetLoss {
			res.Reason = StopThreshold
			return res, nil
		}
		if hasVal && t.cfg.Patience > 0 {
			if valLoss < best-t.cfg.MinDelta {
				best = valLoss
				bestEpoch = epoch
				bestNet = net.Clone()
			} else if epoch-bestEpoch >= t.cfg.Patience {
				if bestNet != nil {
					net.CopyWeightsFrom(bestNet)
					res.ValLoss = best
					res.FinalLoss = Loss(net, xs, ys)
				}
				res.Reason = StopEarly
				return res, nil
			}
		}
	}
	res.Reason = StopMaxEpochs
	if bestNet != nil && hasVal && best < res.ValLoss {
		net.CopyWeightsFrom(bestNet)
		res.ValLoss = best
		res.FinalLoss = Loss(net, xs, ys)
	}
	return res, nil
}

// applyWeightDecay adds the L2 penalty's gradient λ·w to g. Biases are
// conventionally left unpenalized: shrinking them shifts the function
// rather than smoothing it.
func applyWeightDecay(net *nn.Network, g *Gradients, lambda float64) {
	if lambda == 0 {
		return
	}
	for li, l := range net.Layers {
		for o := range l.W {
			row, grow := l.W[o], g.DW[li][o]
			for j := range row {
				grow[j] += lambda * row[j]
			}
		}
	}
}
