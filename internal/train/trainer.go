package train

import (
	"errors"
	"fmt"
	"math"

	"nnwc/internal/mat"
	"nnwc/internal/nn"
	"nnwc/internal/obs"
	"nnwc/internal/obs/metrics"
	"nnwc/internal/rng"
	"nnwc/internal/stats"
)

// epochsTotal counts training epochs across every Fit in the process — one
// atomic add per epoch, visible on the -pprof-addr /metrics endpoint.
var epochsTotal = metrics.Default().Counter("nnwc_train_epochs_total",
	"Training epochs executed across all fits.")

// Mode selects how gradients are applied within an epoch.
type Mode int

const (
	// Batch accumulates the gradient over the whole training set and
	// applies one optimizer step per epoch. Required by RPROP.
	Batch Mode = iota
	// Online applies an optimizer step after every sample
	// (stochastic/pattern-mode back-propagation), with per-epoch
	// shuffling.
	Online
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Batch:
		return "batch"
	case Online:
		return "online"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// StopReason records why training terminated.
type StopReason string

const (
	// StopThreshold means the training loss fell below Config.TargetLoss —
	// the paper's §3.3 "threshold value ... to indicate when to stop
	// training", the knob that keeps the fit deliberately loose.
	StopThreshold StopReason = "loss-threshold"
	// StopMaxEpochs means the epoch budget ran out.
	StopMaxEpochs StopReason = "max-epochs"
	// StopEarly means validation loss stopped improving for Patience
	// epochs (early stopping on held-out data).
	StopEarly StopReason = "early-stopping"
	// StopDiverged means the loss became non-finite.
	StopDiverged StopReason = "diverged"
)

// Config controls a training run.
type Config struct {
	Optimizer  Optimizer
	Mode       Mode
	MaxEpochs  int
	TargetLoss float64 // stop when training MSE ≤ TargetLoss; ≤0 disables

	// Early stopping on a validation split (used when ValX/ValY are set):
	// stop when the best validation loss has not improved by at least
	// MinDelta for Patience consecutive epochs, then restore the best
	// weights seen.
	Patience int
	MinDelta float64

	// RecordEvery appends a telemetry point every k epochs, and always on
	// the epoch training stops — whether that is the epoch budget, the loss
	// threshold, early stopping, or divergence. 0 records every epoch. The
	// same cadence gates trace events when Trace is set.
	RecordEvery int

	// Trace receives structured training events (fit_start, per-epoch
	// losses and norms on the RecordEvery cadence, fit_end with the stop
	// reason). nil disables tracing; the disabled path adds zero
	// allocations to the epoch loop. Tracing never consumes randomness or
	// reorders floating-point work, so results are bit-identical with it
	// on or off.
	Trace *obs.Trace

	// WeightDecay adds an L2 penalty λ‖w‖²/2 on the weights (not biases):
	// the gradient gains a λ·w term before each optimizer step. It is the
	// era-appropriate alternative to the paper's loose-fit threshold for
	// keeping the model flexible (§3.3); 0 disables it.
	WeightDecay float64

	// Workers splits Batch-mode gradient accumulation across this many
	// goroutines (0 or 1 = serial). The sample matrix is cut into blocks
	// whose boundaries depend only on the sample count, and block partial
	// gradients merge in block order — so for a fixed seed the result is
	// bit-identical across runs AND across worker counts. (The serial path
	// accumulates the whole batch in one sweep and may differ from the
	// blocked reduction in the last floating-point bits.) Ignored in
	// Online mode, which is inherently sequential.
	Workers int
}

// DefaultConfig returns the configuration used throughout the experiments:
// full-batch RPROP, a generous epoch budget, and a loose loss threshold in
// the spirit of the paper's §3.3.
func DefaultConfig() Config {
	return Config{
		Optimizer:  NewRPROP(),
		Mode:       Batch,
		MaxEpochs:  2000,
		TargetLoss: 1e-4,
		Patience:   0,
	}
}

// HistoryPoint is one telemetry record.
type HistoryPoint struct {
	Epoch     int
	TrainLoss float64
	ValLoss   float64 // NaN when no validation set was supplied
}

// Result summarizes a training run.
type Result struct {
	Epochs    int
	FinalLoss float64
	ValLoss   float64 // NaN when no validation set was supplied
	Reason    StopReason
	History   []HistoryPoint
}

// Trainer trains a network on paired rows. The zero value is not usable;
// construct with New.
type Trainer struct {
	cfg Config
	src *rng.Source

	ws       Workspace       // batched forward/backward buffers (serial + validation)
	X, Y     mat.Matrix      // contiguous copies of the training rows
	VX, VY   mat.Matrix      // contiguous copies of the validation rows
	parallel parallelScratch // block-sharded accumulators for Workers > 1

	prevParams []float64 // pre-step parameter snapshot for step-norm telemetry
}

// New returns a Trainer with the given configuration and random source
// (used for online-mode shuffling).
func New(cfg Config, src *rng.Source) (*Trainer, error) {
	if cfg.Optimizer == nil {
		return nil, errors.New("train: Config.Optimizer is required")
	}
	if cfg.MaxEpochs <= 0 {
		return nil, errors.New("train: Config.MaxEpochs must be positive")
	}
	if cfg.Mode == Online {
		if _, isRPROP := cfg.Optimizer.(*RPROP); isRPROP {
			return nil, errors.New("train: RPROP requires Batch mode")
		}
	}
	if src == nil {
		src = rng.New(1)
	}
	// Take a private optimizer: stateful optimizers carry per-run slices,
	// and one Config value may drive many concurrent trainers.
	cfg.Optimizer = cfg.Optimizer.Clone()
	return &Trainer{cfg: cfg, src: src}, nil
}

// Fit trains net on (xs, ys). valX/valY may be nil; when provided they
// drive early stopping and validation telemetry. Fit mutates net in place
// and returns a Result.
func (t *Trainer) Fit(net *nn.Network, xs, ys [][]float64, valX, valY [][]float64) (Result, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return Result{}, fmt.Errorf("train: need equal, non-zero sample counts (got %d, %d)", len(xs), len(ys))
	}
	for i := range xs {
		if len(xs[i]) != net.InputDim() || len(ys[i]) != net.OutputDim() {
			return Result{}, fmt.Errorf("train: sample %d shape (%d,%d) does not match network (%d,%d)",
				i, len(xs[i]), len(ys[i]), net.InputDim(), net.OutputDim())
		}
	}
	hasVal := len(valX) > 0
	if hasVal && len(valX) != len(valY) {
		return Result{}, errors.New("train: validation rows mismatch")
	}
	t.cfg.Optimizer.Reset()

	// One contiguous copy of the dataset up front; every epoch after this
	// runs against preallocated matrices and workspaces.
	t.X.CopyRows(xs)
	t.Y.CopyRows(ys)
	if hasVal {
		t.VX.CopyRows(valX)
		t.VY.CopyRows(valY)
	}

	sampleGrad := NewGradients(net)
	batchGrad := NewGradients(net)
	order := make([]int, len(xs))
	for i := range order {
		order[i] = i
	}
	n := len(xs)
	invN := 1 / float64(n)

	res := Result{ValLoss: math.NaN()}
	best := math.Inf(1)
	bestEpoch := 0
	var bestParams []float64

	every := t.cfg.RecordEvery
	if every <= 0 {
		every = 1
	}
	// onCadence decides both history recording and trace emission: every
	// k-th epoch, plus the epoch training stops for any reason — max
	// epochs, threshold, early stopping, or divergence — so the last state
	// of a run is never silently dropped between sample points.
	onCadence := func(epoch int, stopping bool) bool {
		return epoch%every == 0 || stopping
	}

	if t.cfg.Trace.Enabled() {
		t.cfg.Trace.Emit("fit_start",
			obs.Int("samples", n),
			obs.Int("val_samples", len(valX)),
			obs.Int("params", len(net.Params())),
			obs.Int("max_epochs", t.cfg.MaxEpochs),
			obs.String("mode", t.cfg.Mode.String()),
		)
	}

	for epoch := 1; epoch <= t.cfg.MaxEpochs; epoch++ {
		epochsTotal.Inc()
		var trainLoss float64
		switch t.cfg.Mode {
		case Batch:
			if t.cfg.Trace.Enabled() {
				// Snapshot pre-step parameters so the emitted step norm
				// ‖w_t − w_{t−1}‖ is available after the optimizer runs.
				// Pure copy: no floating-point work is added or reordered.
				t.prevParams = append(t.prevParams[:0], net.Params()...)
			}
			trainLoss = t.batchEpoch(net, batchGrad, n, invN)
		case Online:
			t.src.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			for _, i := range order {
				trainLoss += Backprop(net, xs[i], ys[i], sampleGrad)
				applyWeightDecay(net, sampleGrad, t.cfg.WeightDecay)
				t.cfg.Optimizer.Step(net, sampleGrad)
			}
			trainLoss /= float64(n)
		default:
			return Result{}, fmt.Errorf("train: unknown mode %v", t.cfg.Mode)
		}

		valLoss := math.NaN()
		if hasVal {
			valLoss = LossBatch(net, &t.VX, &t.VY, &t.ws)
		}
		res.Epochs = epoch
		res.FinalLoss = trainLoss
		res.ValLoss = valLoss

		var stop StopReason
		if math.IsNaN(trainLoss) || math.IsInf(trainLoss, 0) {
			stop = StopDiverged
		} else if t.cfg.TargetLoss > 0 && trainLoss <= t.cfg.TargetLoss {
			stop = StopThreshold
		} else if hasVal && t.cfg.Patience > 0 {
			if valLoss < best-t.cfg.MinDelta {
				best = valLoss
				bestEpoch = epoch
				bestParams = append(bestParams[:0], net.Params()...)
			} else if epoch-bestEpoch >= t.cfg.Patience {
				if bestParams != nil {
					net.SetParams(bestParams)
					res.ValLoss = best
					res.FinalLoss = LossBatch(net, &t.X, &t.Y, &t.ws)
				}
				stop = StopEarly
			}
		}
		if epoch == t.cfg.MaxEpochs && stop == "" {
			stop = StopMaxEpochs
		}

		if onCadence(epoch, stop != "") {
			// History keeps the epoch's own losses even when early stopping
			// restores earlier weights: it is a log of the trajectory, not
			// of the returned model.
			res.History = append(res.History, HistoryPoint{Epoch: epoch, TrainLoss: trainLoss, ValLoss: valLoss})
			if t.cfg.Trace.Enabled() {
				t.emitEpoch(net, batchGrad, epoch, trainLoss, valLoss, hasVal)
			}
		}

		if stop != "" {
			res.Reason = stop
			break
		}
	}
	if res.Reason == StopMaxEpochs && bestParams != nil && hasVal && best < res.ValLoss {
		net.SetParams(bestParams)
		res.ValLoss = best
		res.FinalLoss = LossBatch(net, &t.X, &t.Y, &t.ws)
	}
	if t.cfg.Trace.Enabled() {
		t.cfg.Trace.Emit("fit_end",
			obs.Int("epochs", res.Epochs),
			obs.Float("final_loss", res.FinalLoss),
			obs.Float("val_loss", res.ValLoss),
			obs.String("stop_reason", string(res.Reason)),
		)
	}
	return res, nil
}

// batchEpoch runs one full-batch epoch: gradient accumulation (blocked when
// Workers > 1 and the batch is large enough), weight decay, and one
// optimizer step. It is the hot loop of batch training, extracted so the
// zero-allocation guarantee of the tracing-disabled path can be pinned by
// TestBatchEpochZeroAlloc.
//
//nnwc:hotpath
func (t *Trainer) batchEpoch(net *nn.Network, batchGrad *Gradients, n int, invN float64) float64 {
	var trainLoss float64
	if t.cfg.Workers > 1 && n >= 2*t.cfg.Workers {
		trainLoss = t.parallelBatch(net, &t.X, &t.Y, batchGrad)
	} else {
		trainLoss = BackpropBatch(net, &t.X, &t.Y, invN, &t.ws, batchGrad) * invN
	}
	applyWeightDecay(net, batchGrad, t.cfg.WeightDecay)
	t.cfg.Optimizer.Step(net, batchGrad)
	return trainLoss
}

// emitEpoch emits one "epoch" trace event. Norms are diagnostics computed
// on copies and snapshots; nothing here feeds back into training state.
func (t *Trainer) emitEpoch(net *nn.Network, batchGrad *Gradients, epoch int, trainLoss, valLoss float64, hasVal bool) {
	fields := make([]obs.Field, 0, 6)
	fields = append(fields,
		obs.Int("epoch", epoch),
		obs.Float("train_loss", trainLoss),
	)
	if hasVal {
		fields = append(fields, obs.Float("val_loss", valLoss))
	}
	fields = append(fields, obs.Float("weight_norm", l2(net.Params())))
	if t.cfg.Mode == Batch {
		fields = append(fields, obs.Float("grad_norm", l2(batchGrad.Flat)))
		if len(t.prevParams) == len(net.Params()) {
			fields = append(fields, obs.Float("step_norm", l2dist(net.Params(), t.prevParams)))
		}
	}
	t.cfg.Trace.Emit("epoch", fields...)
}

// l2 returns the Euclidean norm of v.
func l2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// l2dist returns ‖a − b‖₂.
func l2dist(a, b []float64) float64 {
	var s float64
	for i, x := range a {
		d := x - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// applyWeightDecay adds the L2 penalty's gradient λ·w to g. Biases are
// conventionally left unpenalized: shrinking them shifts the function
// rather than smoothing it.
func applyWeightDecay(net *nn.Network, g *Gradients, lambda float64) {
	if stats.ExactZero(lambda) {
		return
	}
	for li, l := range net.Layers {
		mat.AddScaledInto(g.DW[li], lambda, l.W)
	}
}
