package train

import (
	"math"
	"testing"

	"nnwc/internal/nn"
	"nnwc/internal/rng"
)

// xorData is the classic non-linearly-separable problem; solving it proves
// the hidden layer is actually learning.
func xorData() (xs, ys [][]float64) {
	xs = [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	ys = [][]float64{{0}, {1}, {1}, {0}}
	return xs, ys
}

func TestRPROPSolvesXOR(t *testing.T) {
	src := rng.New(3)
	net := nn.NewNetwork([]int{2, 6, 1}, nn.Tanh{}, nn.Identity{})
	nn.XavierInit{}.Init(net, src)
	tr, err := New(Config{Optimizer: NewRPROP(), Mode: Batch, MaxEpochs: 3000, TargetLoss: 1e-5}, src.Split())
	if err != nil {
		t.Fatal(err)
	}
	xs, ys := xorData()
	res, err := tr.Fit(net, xs, ys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopThreshold {
		t.Fatalf("XOR did not converge: %+v", res)
	}
	for i, x := range xs {
		pred := net.Forward(x)[0]
		if math.Abs(pred-ys[i][0]) > 0.1 {
			t.Fatalf("XOR(%v) = %v, want %v", x, pred, ys[i][0])
		}
	}
}

func TestOnlineSGDLearnsLinear(t *testing.T) {
	// y = 2x − 1 learned by a linear "network".
	src := rng.New(4)
	net := nn.NewNetwork([]int{1, 1}, nn.Identity{}, nn.Identity{})
	nn.UniformInit{Scale: 0.1}.Init(net, src)
	var xs, ys [][]float64
	for x := -1.0; x <= 1; x += 0.1 {
		xs = append(xs, []float64{x})
		ys = append(ys, []float64{2*x - 1})
	}
	tr, err := New(Config{Optimizer: &SGD{LR: 0.05}, Mode: Online, MaxEpochs: 500, TargetLoss: 1e-8}, src.Split())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Fit(net, xs, ys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss > 1e-6 {
		t.Fatalf("linear fit did not converge: loss %v", res.FinalLoss)
	}
	if w := net.Layers[0].W.At(0, 0); math.Abs(w-2) > 0.01 {
		t.Fatalf("learned slope %v, want 2", w)
	}
	if b := net.Layers[0].B[0]; math.Abs(b+1) > 0.01 {
		t.Fatalf("learned bias %v, want -1", b)
	}
}

func TestMomentumConvergesFasterThanSGD(t *testing.T) {
	// Same problem, same epochs: momentum should reach a loss at least as
	// low as plain SGD with the same LR.
	losses := map[string]float64{}
	for name, opt := range map[string]Optimizer{
		"sgd":      &SGD{LR: 0.01},
		"momentum": &Momentum{LR: 0.01, Mu: 0.9},
	} {
		src := rng.New(5)
		net := nn.NewNetwork([]int{1, 4, 1}, nn.Tanh{}, nn.Identity{})
		nn.XavierInit{}.Init(net, src)
		var xs, ys [][]float64
		for x := -1.0; x <= 1; x += 0.2 {
			xs = append(xs, []float64{x})
			ys = append(ys, []float64{x * x})
		}
		tr, err := New(Config{Optimizer: opt, Mode: Batch, MaxEpochs: 300}, src.Split())
		if err != nil {
			t.Fatal(err)
		}
		res, err := tr.Fit(net, xs, ys, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		losses[name] = res.FinalLoss
	}
	if losses["momentum"] > losses["sgd"]*1.5 {
		t.Fatalf("momentum (%v) much worse than sgd (%v)", losses["momentum"], losses["sgd"])
	}
}

func TestAdamLearns(t *testing.T) {
	src := rng.New(6)
	net := nn.NewNetwork([]int{1, 6, 1}, nn.Tanh{}, nn.Identity{})
	nn.XavierInit{}.Init(net, src)
	var xs, ys [][]float64
	for x := -1.0; x <= 1; x += 0.1 {
		xs = append(xs, []float64{x})
		ys = append(ys, []float64{math.Sin(2 * x)})
	}
	tr, err := New(Config{Optimizer: NewAdam(0.01), Mode: Batch, MaxEpochs: 2000, TargetLoss: 1e-5}, src.Split())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Fit(net, xs, ys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss > 1e-3 {
		t.Fatalf("Adam failed to fit sin: loss %v", res.FinalLoss)
	}
}

func TestStopThreshold(t *testing.T) {
	src := rng.New(7)
	net := nn.NewNetwork([]int{1, 1}, nn.Identity{}, nn.Identity{})
	nn.UniformInit{Scale: 0.1}.Init(net, src)
	xs := [][]float64{{1}, {2}}
	ys := [][]float64{{1}, {2}}
	tr, err := New(Config{Optimizer: NewRPROP(), Mode: Batch, MaxEpochs: 10000, TargetLoss: 0.01}, src.Split())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Fit(net, xs, ys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopThreshold {
		t.Fatalf("stop reason %s", res.Reason)
	}
	if res.FinalLoss > 0.01 {
		t.Fatalf("stopped above threshold: %v", res.FinalLoss)
	}
	// The loose threshold should stop well before the epoch budget.
	if res.Epochs >= 10000 {
		t.Fatal("threshold never triggered")
	}
}

func TestEarlyStoppingRestoresBestWeights(t *testing.T) {
	// Validation set from a different function than training: validation
	// loss will bottom out and rise; early stopping must fire and restore
	// the best weights.
	src := rng.New(8)
	net := nn.NewNetwork([]int{1, 12, 1}, nn.Tanh{}, nn.Identity{})
	nn.XavierInit{}.Init(net, src)
	var xs, ys, vx, vy [][]float64
	noise := rng.New(99)
	for x := -1.0; x <= 1; x += 0.15 {
		xs = append(xs, []float64{x})
		ys = append(ys, []float64{x*x + noise.NormMeanStd(0, 0.15)})
		vx = append(vx, []float64{x + 0.07})
		vy = append(vy, []float64{(x + 0.07) * (x + 0.07)})
	}
	tr, err := New(Config{
		Optimizer: NewRPROP(), Mode: Batch, MaxEpochs: 5000,
		Patience: 50, MinDelta: 1e-7,
	}, src.Split())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Fit(net, xs, ys, vx, vy)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopEarly && res.Reason != StopMaxEpochs {
		t.Fatalf("unexpected stop reason %s", res.Reason)
	}
	// The reported validation loss must match the restored network.
	got := Loss(net, vx, vy)
	if math.Abs(got-res.ValLoss) > 1e-9 {
		t.Fatalf("restored network val loss %v != reported %v", got, res.ValLoss)
	}
}

func TestDivergenceDetected(t *testing.T) {
	src := rng.New(9)
	net := nn.NewNetwork([]int{1, 4, 1}, nn.Tanh{}, nn.Identity{})
	nn.XavierInit{}.Init(net, src)
	xs := [][]float64{{1}, {2}, {3}}
	ys := [][]float64{{1}, {4}, {9}}
	// Absurd learning rate guarantees explosion.
	tr, err := New(Config{Optimizer: &SGD{LR: 1e6}, Mode: Batch, MaxEpochs: 100}, src.Split())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Fit(net, xs, ys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopDiverged {
		t.Fatalf("divergence not detected: %s (loss %v)", res.Reason, res.FinalLoss)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Mode: Batch, MaxEpochs: 10}, nil); err == nil {
		t.Fatal("missing optimizer accepted")
	}
	if _, err := New(Config{Optimizer: &SGD{LR: 0.1}, MaxEpochs: 0}, nil); err == nil {
		t.Fatal("zero epochs accepted")
	}
	if _, err := New(Config{Optimizer: NewRPROP(), Mode: Online, MaxEpochs: 10}, nil); err == nil {
		t.Fatal("RPROP in online mode accepted")
	}
}

func TestFitValidatesShapes(t *testing.T) {
	src := rng.New(10)
	net := nn.NewNetwork([]int{2, 1}, nn.Identity{}, nn.Identity{})
	tr, err := New(Config{Optimizer: &SGD{LR: 0.1}, Mode: Batch, MaxEpochs: 5}, src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Fit(net, nil, nil, nil, nil); err == nil {
		t.Fatal("empty training set accepted")
	}
	if _, err := tr.Fit(net, [][]float64{{1}}, [][]float64{{1}}, nil, nil); err == nil {
		t.Fatal("wrong input dim accepted")
	}
	if _, err := tr.Fit(net, [][]float64{{1, 2}}, [][]float64{{1, 2}}, nil, nil); err == nil {
		t.Fatal("wrong output dim accepted")
	}
	if _, err := tr.Fit(net, [][]float64{{1, 2}}, [][]float64{{1}}, [][]float64{{1, 2}}, nil); err == nil {
		t.Fatal("mismatched validation rows accepted")
	}
}

func TestHistoryRecording(t *testing.T) {
	src := rng.New(11)
	net := nn.NewNetwork([]int{1, 1}, nn.Identity{}, nn.Identity{})
	nn.UniformInit{Scale: 0.1}.Init(net, src)
	xs := [][]float64{{1}, {2}}
	ys := [][]float64{{2}, {4}}
	tr, err := New(Config{Optimizer: &SGD{LR: 0.01}, Mode: Batch, MaxEpochs: 50, RecordEvery: 10}, src.Split())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Fit(net, xs, ys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 5 {
		t.Fatalf("history points %d, want 5", len(res.History))
	}
	// Loss should be non-increasing overall for this convex problem.
	first, last := res.History[0].TrainLoss, res.History[len(res.History)-1].TrainLoss
	if last > first {
		t.Fatalf("loss rose from %v to %v", first, last)
	}
}

func TestOptimizerNamesAndReset(t *testing.T) {
	opts := []Optimizer{&SGD{LR: 0.1}, &Momentum{LR: 0.1, Mu: 0.9}, NewRPROP(), NewAdam(0.001)}
	names := map[string]bool{}
	for _, o := range opts {
		if o.Name() == "" {
			t.Fatal("empty optimizer name")
		}
		names[o.Name()] = true
		o.Reset() // must not panic before first Step
	}
	if len(names) != 4 {
		t.Fatal("duplicate optimizer names")
	}
}

func TestRPROPResetClearsState(t *testing.T) {
	src := rng.New(12)
	net := nn.NewNetwork([]int{1, 1}, nn.Identity{}, nn.Identity{})
	nn.UniformInit{Scale: 0.1}.Init(net, src)
	g := NewGradients(net)
	Backprop(net, []float64{1}, []float64{2}, g)
	r := NewRPROP()
	r.Step(net, g)
	r.Reset()
	if r.step != nil || r.prev != nil {
		t.Fatal("Reset left state")
	}
}

func TestModeString(t *testing.T) {
	if Batch.String() != "batch" || Online.String() != "online" {
		t.Fatal("mode strings wrong")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode should still render")
	}
}

func BenchmarkEpochRPROP(b *testing.B) {
	src := rng.New(1)
	net := nn.NewNetwork([]int{4, 16, 5}, nn.Logistic{Alpha: 1}, nn.Identity{})
	nn.XavierInit{}.Init(net, src)
	var xs, ys [][]float64
	for i := 0; i < 300; i++ {
		x := []float64{src.Float64(), src.Float64(), src.Float64(), src.Float64()}
		xs = append(xs, x)
		ys = append(ys, []float64{x[0], x[1] * x[2], x[3], x[0] + x[1], x[2]})
	}
	cfg := Config{Optimizer: NewRPROP(), Mode: Batch, MaxEpochs: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := New(cfg, rng.New(2))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tr.Fit(net, xs, ys, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	norm := func(net *nn.Network) float64 {
		var s float64
		for _, l := range net.Layers {
			for _, w := range l.W.Data {
				s += w * w
			}
		}
		return s
	}
	run := func(decay float64) float64 {
		src := rng.New(80)
		net := nn.NewNetwork([]int{1, 16, 1}, nn.Tanh{}, nn.Identity{})
		nn.XavierInit{}.Init(net, src)
		noise := rng.New(81)
		var xs, ys [][]float64
		for i := 0; i < 40; i++ {
			x := noise.Uniform(-1, 1)
			xs = append(xs, []float64{x})
			ys = append(ys, []float64{x + noise.NormMeanStd(0, 0.3)})
		}
		tr, err := New(Config{Optimizer: NewRPROP(), Mode: Batch, MaxEpochs: 400, WeightDecay: decay}, src.Split())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Fit(net, xs, ys, nil, nil); err != nil {
			t.Fatal(err)
		}
		return norm(net)
	}
	plain := run(0)
	decayed := run(0.01)
	if decayed >= plain {
		t.Fatalf("weight decay did not shrink weights: %v vs %v", decayed, plain)
	}
}

func TestWeightDecayZeroIsNoop(t *testing.T) {
	src := rng.New(82)
	net := nn.NewNetwork([]int{1, 2, 1}, nn.Tanh{}, nn.Identity{})
	nn.XavierInit{}.Init(net, src)
	g := NewGradients(net)
	Backprop(net, []float64{1}, []float64{0.5}, g)
	before := g.DW[0].At(0, 0)
	applyWeightDecay(net, g, 0)
	if g.DW[0].At(0, 0) != before {
		t.Fatal("decay 0 modified the gradient")
	}
}
