package sched

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("explicit request: got %d", got)
	}
	SetWorkers(0)
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("GOMAXPROCS default: got %d", got)
	}
	SetWorkers(5)
	defer SetWorkers(0)
	if got := Workers(0); got != 5 {
		t.Fatalf("process default: got %d", got)
	}
	if got := Workers(2); got != 2 {
		t.Fatalf("explicit beats default: got %d", got)
	}
	SetWorkers(-3)
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("negative resets to GOMAXPROCS: got %d", got)
	}
}

func TestForEachRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 57
		var counts [n]int64
		err := ForEach(workers, n, func(i int) error {
			atomic.AddInt64(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	e3 := errors.New("task 3")
	e9 := errors.New("task 9")
	for _, workers := range []int{1, 4} {
		err := ForEach(workers, 12, func(i int) error {
			switch i {
			case 9:
				return e9
			case 3:
				return e3
			}
			return nil
		})
		if err != e3 {
			t.Fatalf("workers=%d: got %v, want lowest-index error", workers, err)
		}
	}
}

func TestForEachRunsAllTasksDespiteError(t *testing.T) {
	var ran int64
	err := ForEach(4, 20, func(i int) error {
		atomic.AddInt64(&ran, 1)
		if i == 0 {
			return errors.New("early failure")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if ran != 20 {
		t.Fatalf("only %d/20 tasks ran", ran)
	}
}

func TestMapOrdersResultsByTaskIndex(t *testing.T) {
	for _, workers := range []int{1, 7} {
		got, err := Map(workers, 40, func(i int) (string, error) {
			return fmt.Sprintf("r%d", i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != fmt.Sprintf("r%d", i) {
				t.Fatalf("workers=%d: slot %d holds %q", workers, i, v)
			}
		}
	}
}

func TestMapErrorDropsResults(t *testing.T) {
	got, err := Map(2, 5, func(i int) (int, error) {
		if i == 2 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil || got != nil {
		t.Fatalf("want (nil, error), got (%v, %v)", got, err)
	}
}

func TestMapIdenticalAcrossWorkerCounts(t *testing.T) {
	compute := func(workers int) []uint64 {
		out, err := Map(workers, 64, func(i int) (uint64, error) {
			// A task-index-derived stream, like the real call sites.
			s := TaskSeed(42, i)
			s ^= s >> 31
			s *= 0x9e3779b97f4a7c15
			return s, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := compute(1)
	for _, workers := range []int{2, 8} {
		got := compute(workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: slot %d differs", workers, i)
			}
		}
	}
}

func TestSeedDerivation(t *testing.T) {
	if FoldSeed(7, 0) != 7 || TaskSeed(7, 0) != 7 {
		t.Fatal("index 0 must return the base seed unchanged")
	}
	// Pinned against the pre-scheduler inline derivations so the
	// migration keeps every historical stream.
	if got, want := FoldSeed(7, 3), uint64(7)+3*0x9e3779b9; got != want {
		t.Fatalf("FoldSeed: got %d want %d", got, want)
	}
	stride := uint64(0x9e3779b97f4a7c15)
	if got, want := TaskSeed(7, 3), uint64(7)+3*stride; got != want {
		t.Fatalf("TaskSeed: got %d want %d", got, want)
	}
}

func TestRunWorkersGivesDistinctIDs(t *testing.T) {
	const workers = 6
	var hits [workers]int64
	RunWorkers(workers, func(w int) {
		atomic.AddInt64(&hits[w], 1)
	})
	for w, h := range hits {
		if h != 1 {
			t.Fatalf("worker %d ran %d times", w, h)
		}
	}
}

func TestPoolReusesValues(t *testing.T) {
	type scratch struct{ buf []float64 }
	var allocs int64
	p := NewPool(func() *scratch {
		atomic.AddInt64(&allocs, 1)
		return &scratch{}
	})
	s := p.Get()
	s.buf = make([]float64, 100)
	p.Put(s)
	s2 := p.Get()
	// sync.Pool gives no hard guarantee, but with no GC between Put and
	// Get the same object comes back on every platform we run on.
	if s2 != s {
		t.Skip("pool did not reuse (GC ran); nothing to assert")
	}
	if len(s2.buf) != 100 {
		t.Fatal("pooled scratch lost its buffer")
	}
}
