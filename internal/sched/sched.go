// Package sched is the deterministic task scheduler behind the experiment
// plane: bounded worker pools for embarrassingly parallel outer loops
// (cross-validation folds, ensemble members, sweep cells, surface-grid
// rows), per-task seed derivation, and sync.Pool-backed reusable
// workspaces.
//
// Determinism is the design constraint everything else bends around. Tasks
// are identified by index, every task's random stream is derived from
// (base seed, task index) — never from scheduling order — and results land
// in index-addressed slots, so any floating-point reduction over them can
// run in task order afterwards. The consequence: a computation scheduled
// here is bit-identical across runs AND across worker counts, including
// workers=1, which makes the parallel paths pin-testable against the
// serial seed references.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"

	"nnwc/internal/obs/metrics"
)

// tasksTotal counts every task the pools execute — a cheap liveness signal
// for the /metrics debug endpoint. One atomic add per task, no allocation.
var tasksTotal = metrics.Default().Counter("nnwc_sched_tasks_total",
	"Tasks executed by the deterministic scheduler.")

// defaultWorkers is the process-wide worker count used when a call site
// passes workers <= 0. Zero means "use GOMAXPROCS at call time".
var defaultWorkers atomic.Int64

// SetWorkers sets the process-wide default parallelism (the -workers flag
// of cmd/nnwc and cmd/experiments lands here). n <= 0 restores the
// GOMAXPROCS default. Worker counts never affect results, only wall-clock.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Workers resolves a requested worker count: a positive request wins,
// otherwise the process-wide default, otherwise runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	if d := int(defaultWorkers.Load()); d > 0 {
		return d
	}
	return runtime.GOMAXPROCS(0)
}

// Golden-ratio seed strides. The 32-bit stride is the cross-validation
// fold derivation the seed-reference tests pin; the 64-bit stride is the
// ensemble/sweep derivation. Both are pure functions of (base, index) so a
// task's stream does not depend on which worker runs it or when.
const (
	foldStride = 0x9e3779b9
	taskStride = 0x9e3779b97f4a7c15
)

// FoldSeed derives the seed for cross-validation fold i from the base seed.
func FoldSeed(base uint64, i int) uint64 { return base + uint64(i)*foldStride }

// TaskSeed derives the seed for task i (ensemble member, sweep cell,
// permutation stream) from the base seed.
func TaskSeed(base uint64, i int) uint64 { return base + uint64(i)*taskStride }

// Shard partitions the index space [0, n) into contiguous [lo, hi) ranges
// of at most size indexes — the lease unit the distributed coordinator
// hands to workers. Because every task's seed derives from its absolute
// index (FoldSeed/TaskSeed), a shard carries everything a remote worker
// needs: results do not depend on which process computes which range.
// size <= 0 yields one range covering everything; n <= 0 yields none.
func Shard(n, size int) [][2]int {
	if n <= 0 {
		return nil
	}
	if size <= 0 {
		size = n
	}
	shards := make([][2]int, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		shards = append(shards, [2]int{lo, hi})
	}
	return shards
}

// ForEach runs task(i) for every i in [0, n) on at most `workers`
// goroutines (use Workers to resolve a request first). Workers pull task
// indices from a shared counter, so all worker counts execute the same
// task set; callers must make tasks independent and write results into
// index-addressed slots. Every task runs even if another fails; the error
// of the lowest-indexed failing task is returned, so error reporting is as
// deterministic as the results.
func ForEach(workers, n int, task func(i int) error) error {
	return ForEachWorker(workers, n, func(i, _ int) error { return task(i) })
}

// ForEachWorker is ForEach with the executing worker's identity handed to
// each task — the hook the observability spans use to attribute wall time.
// Which worker runs which task is a scheduling accident; tasks must not
// let it influence results (seeds and result slots key off the task index
// alone). The inline workers<=1 path always reports worker 0.
func ForEachWorker(workers, n int, task func(i, worker int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Inline fast path: no goroutines, identical semantics.
		var first error
		for i := 0; i < n; i++ {
			tasksTotal.Inc()
			if err := task(i, 0); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				tasksTotal.Inc()
				errs[i] = task(i, w)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs task(i) for every i in [0, n) on at most `workers` goroutines
// and returns the results in task order. Error semantics match ForEach.
func Map[T any](workers, n int, task func(i int) (T, error)) ([]T, error) {
	return MapWorker(workers, n, func(i, _ int) (T, error) { return task(i) })
}

// MapWorker is Map with the executing worker's identity handed to each
// task; see ForEachWorker for the attribution caveat.
func MapWorker[T any](workers, n int, task func(i, worker int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachWorker(workers, n, func(i, w int) error {
		v, err := task(i, w)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunWorkers starts exactly `workers` goroutines running fn(worker) and
// waits for all of them. It is the low-level primitive for callers that
// manage their own work distribution but want per-worker identities (e.g.
// one reusable workspace per worker, as the block-parallel gradient
// accumulation in internal/train does). fn(0) runs on the calling
// goroutine when workers == 1.
func RunWorkers(workers int, fn func(worker int)) {
	if workers <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}

// Pool is a typed sync.Pool of reusable per-task scratch objects (training
// and prediction workspaces). Values must be safe to reuse after a reset
// by their owner; the pool itself never touches them.
type Pool[T any] struct {
	p sync.Pool
}

// NewPool returns a Pool that allocates fresh values with newT.
func NewPool[T any](newT func() *T) *Pool[T] {
	return &Pool[T]{p: sync.Pool{New: func() any { return newT() }}}
}

// Get retrieves a pooled value or allocates a new one.
func (p *Pool[T]) Get() *T { return p.p.Get().(*T) }

// Put returns v to the pool.
func (p *Pool[T]) Put(v *T) { p.p.Put(v) }
