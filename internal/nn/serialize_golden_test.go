package nn

import (
	"encoding/json"
	"math"
	"os"
	"testing"
)

// TestGoldenNetworkRoundTrip loads the committed fixture written by the
// pre-flat-weights implementation (nested [][]float64 rows) and checks the
// flat-parameter loader reproduces its predictions bit-for-bit. This pins
// on-disk format compatibility across the memory-layout refactor.
func TestGoldenNetworkRoundTrip(t *testing.T) {
	f, err := os.Open("testdata/golden_network.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	net, err := Load(f)
	if err != nil {
		t.Fatalf("golden network no longer loads: %v", err)
	}
	if net.InputDim() != 4 || net.OutputDim() != 3 {
		t.Fatalf("golden network dims %d->%d", net.InputDim(), net.OutputDim())
	}
	if net.Layers[0].Act.Name() != "logistic(1.5)" {
		t.Fatalf("golden activation lost: %s", net.Layers[0].Act.Name())
	}

	raw, err := os.ReadFile("testdata/golden_network_predictions.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Probes      [][]float64 `json:"probes"`
		Predictions [][]float64 `json:"predictions"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Probes) == 0 {
		t.Fatal("golden fixture has no probes")
	}
	for i, x := range doc.Probes {
		got := net.Forward(x)
		for j, want := range doc.Predictions[i] {
			if math.Abs(got[j]-want) > 1e-15 {
				t.Fatalf("probe %d output %d: got %v, golden %v", i, j, got[j], want)
			}
		}
	}

	// Saving the loaded network and loading it again must also round-trip.
	tmp, err := os.CreateTemp(t.TempDir(), "net*.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Save(tmp); err != nil {
		t.Fatal(err)
	}
	if _, err := tmp.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	back, err := Load(tmp)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range doc.Probes {
		got := back.Forward(x)
		for j, want := range doc.Predictions[i] {
			if got[j] != want {
				t.Fatalf("re-saved probe %d output %d: got %v, golden %v", i, j, got[j], want)
			}
		}
	}
}
