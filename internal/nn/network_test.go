package nn

import (
	"bytes"
	"math"
	"testing"

	"nnwc/internal/rng"
)

func TestLayerForwardHandChecked(t *testing.T) {
	l := NewLayer(2, 1, Identity{})
	l.W.Set(0, 0, 2)
	l.W.Set(0, 1, -1)
	l.B[0] = 0.5
	out, pre := l.Forward([]float64{3, 4})
	// 2*3 - 1*4 + 0.5 = 2.5
	if out[0] != 2.5 || pre[0] != 2.5 {
		t.Fatalf("forward got %v (pre %v)", out, pre)
	}
}

func TestLayerForwardAppliesActivation(t *testing.T) {
	l := NewLayer(1, 1, Logistic{Alpha: 1})
	l.W.Set(0, 0, 1)
	out, pre := l.Forward([]float64{0})
	if pre[0] != 0 || out[0] != 0.5 {
		t.Fatalf("activation not applied: out %v pre %v", out, pre)
	}
}

func TestLayerShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input size did not panic")
		}
	}()
	NewLayer(2, 1, Identity{}).Forward([]float64{1})
}

func TestNewNetworkTopology(t *testing.T) {
	n := NewNetwork([]int{4, 8, 3, 5}, Tanh{}, Identity{})
	if len(n.Layers) != 3 {
		t.Fatalf("%d layers", len(n.Layers))
	}
	if n.InputDim() != 4 || n.OutputDim() != 5 {
		t.Fatalf("dims %d→%d", n.InputDim(), n.OutputDim())
	}
	// Hidden layers use the hidden activation; output layer the output one.
	if n.Layers[0].Act.Name() != "tanh" || n.Layers[2].Act.Name() != "identity" {
		t.Fatal("activations assigned wrong")
	}
	sizes := n.Sizes()
	want := []int{4, 8, 3, 5}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sizes %v", sizes)
		}
	}
}

func TestNumParams(t *testing.T) {
	n := NewNetwork([]int{4, 16, 5}, Tanh{}, Identity{})
	// 4*16+16 + 16*5+5 = 80+16+85 = 165
	if n.NumParams() != 165 {
		t.Fatalf("NumParams %d", n.NumParams())
	}
}

func TestForwardTraceConsistent(t *testing.T) {
	src := rng.New(5)
	n := NewNetwork([]int{3, 7, 2}, Tanh{}, Identity{})
	XavierInit{}.Init(n, src)
	x := []float64{0.3, -1, 2}
	acts, pres := n.ForwardTrace(x)
	if len(acts) != 3 || len(pres) != 2 {
		t.Fatalf("trace lengths %d/%d", len(acts), len(pres))
	}
	direct := n.Forward(x)
	for j := range direct {
		if direct[j] != acts[2][j] {
			t.Fatal("Forward and ForwardTrace disagree")
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	src := rng.New(6)
	n := NewNetwork([]int{2, 4, 1}, Tanh{}, Identity{})
	UniformInit{Scale: 1}.Init(n, src)
	c := n.Clone()
	before := n.Forward([]float64{1, 1})[0]
	c.Layers[0].W.Set(0, 0, 99)
	after := n.Forward([]float64{1, 1})[0]
	if before != after {
		t.Fatal("Clone shares weights")
	}
	if c.Forward([]float64{1, 1})[0] == before {
		t.Fatal("mutating the clone had no effect on it")
	}
}

func TestCopyWeightsFrom(t *testing.T) {
	src := rng.New(7)
	a := NewNetwork([]int{2, 3, 1}, Tanh{}, Identity{})
	b := NewNetwork([]int{2, 3, 1}, Tanh{}, Identity{})
	XavierInit{}.Init(a, src)
	XavierInit{}.Init(b, src)
	b.CopyWeightsFrom(a)
	x := []float64{0.5, -0.5}
	if a.Forward(x)[0] != b.Forward(x)[0] {
		t.Fatal("CopyWeightsFrom did not copy")
	}
}

func TestCopyWeightsTopologyPanics(t *testing.T) {
	a := NewNetwork([]int{2, 3, 1}, Tanh{}, Identity{})
	b := NewNetwork([]int{2, 4, 1}, Tanh{}, Identity{})
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched topology did not panic")
		}
	}()
	b.CopyWeightsFrom(a)
}

func TestUniformInitBounds(t *testing.T) {
	n := NewNetwork([]int{3, 5, 2}, Tanh{}, Identity{})
	UniformInit{Scale: 0.25}.Init(n, rng.New(8))
	for _, l := range n.Layers {
		for _, w := range l.W.Data {
			if math.Abs(w) > 0.25 {
				t.Fatalf("weight %v outside scale", w)
			}
		}
	}
}

func TestXavierInitZeroBiases(t *testing.T) {
	n := NewNetwork([]int{3, 5, 2}, Tanh{}, Identity{})
	XavierInit{}.Init(n, rng.New(9))
	for _, l := range n.Layers {
		for _, b := range l.B {
			if b != 0 {
				t.Fatal("Xavier biases should start at zero")
			}
		}
		// Weights non-trivial.
		var sum float64
		for _, w := range l.W.Data {
			sum += math.Abs(w)
		}
		if sum == 0 {
			t.Fatal("Xavier left weights at zero")
		}
	}
}

func TestInitDeterministic(t *testing.T) {
	a := NewNetwork([]int{2, 4, 1}, Tanh{}, Identity{})
	b := NewNetwork([]int{2, 4, 1}, Tanh{}, Identity{})
	XavierInit{}.Init(a, rng.New(42))
	XavierInit{}.Init(b, rng.New(42))
	x := []float64{0.1, 0.9}
	if a.Forward(x)[0] != b.Forward(x)[0] {
		t.Fatal("same seed produced different networks")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	src := rng.New(10)
	n := NewNetwork([]int{4, 6, 3}, Logistic{Alpha: 2}, Identity{})
	XavierInit{}.Init(n, src)
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.2, -0.7, 1.5, 0}
	a, b := n.Forward(x), back.Forward(x)
	for j := range a {
		if a[j] != b[j] {
			t.Fatal("loaded network predicts differently")
		}
	}
	// Activation (with slope) restored.
	if back.Layers[0].Act.Name() != "logistic(2)" {
		t.Fatalf("activation lost: %s", back.Layers[0].Act.Name())
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	cases := []string{
		``,
		`{"layers":[]}`,
		`{"layers":[{"inputs":2,"outputs":1,"activation":"nope","w":[[1,2]],"b":[0]}]}`,
		`{"layers":[{"inputs":0,"outputs":1,"activation":"tanh","w":[],"b":[]}]}`,
		`{"layers":[{"inputs":2,"outputs":1,"activation":"tanh","w":[[1]],"b":[0]}]}`,
		`{"layers":[{"inputs":2,"outputs":2,"activation":"tanh","w":[[1,2],[3,4]],"b":[0,0]},{"inputs":3,"outputs":1,"activation":"identity","w":[[1,2,3]],"b":[0]}]}`,
	}
	for i, c := range cases {
		if _, err := Load(bytes.NewReader([]byte(c))); err == nil {
			t.Errorf("case %d: corrupt network accepted", i)
		}
	}
}

func BenchmarkForward4x16x5(b *testing.B) {
	n := NewNetwork([]int{4, 16, 5}, Logistic{Alpha: 1}, Identity{})
	XavierInit{}.Init(n, rng.New(1))
	x := []float64{0.1, -0.5, 1.2, 0.7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Forward(x)
	}
}
