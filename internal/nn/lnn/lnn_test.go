package lnn

import (
	"math"
	"testing"

	"nnwc/internal/nn"
	"nnwc/internal/rng"
)

func TestNewTopology(t *testing.T) {
	net := New([]int{3, 8, 2}, rng.New(1))
	if net.InputDim() != 3 || net.OutputDim() != 2 {
		t.Fatalf("dims %d→%d", net.InputDim(), net.OutputDim())
	}
	if net.Layers[0].Act.Name() != "logcompress" {
		t.Fatalf("hidden activation %s", net.Layers[0].Act.Name())
	}
	if net.Layers[1].Act.Name() != "identity" {
		t.Fatalf("output activation %s", net.Layers[1].Act.Name())
	}
}

func TestNewHybridFirstLayerLogarithmic(t *testing.T) {
	net := NewHybrid([]int{2, 6, 6, 1}, rng.New(2))
	if net.Layers[0].Act.Name() != "logcompress" {
		t.Fatal("first hidden layer should be logarithmic")
	}
	if net.Layers[1].Act.Name() != "tanh" {
		t.Fatal("second hidden layer should be tanh")
	}
}

func TestLNNOutputGrowsOutsideRange(t *testing.T) {
	// The defining property vs a sigmoid MLP: as the input moves far
	// beyond any training range, the logarithmic network's response keeps
	// moving (log-slowly) instead of saturating to a constant.
	src := rng.New(3)
	logNet := New([]int{1, 8, 1}, src.Split())
	sigNet := nn.NewNetwork([]int{1, 8, 1}, nn.Logistic{Alpha: 1}, nn.Identity{})
	nn.XavierInit{}.Init(sigNet, src.Split())

	deltaAt := func(net *nn.Network, x float64) float64 {
		return math.Abs(net.Forward([]float64{x * 2})[0] - net.Forward([]float64{x})[0])
	}
	// Far from the origin the sigmoid net is flat; the log net is not.
	if d := deltaAt(sigNet, 1e6); d > 1e-9 {
		t.Fatalf("sigmoid net still moving at 1e6: %v", d)
	}
	if d := deltaAt(logNet, 1e6); d == 0 {
		t.Fatal("logarithmic net saturated like a sigmoid")
	}
}

func TestDeterministicConstruction(t *testing.T) {
	a := New([]int{2, 4, 1}, rng.New(7))
	b := New([]int{2, 4, 1}, rng.New(7))
	x := []float64{1.5, -2}
	if a.Forward(x)[0] != b.Forward(x)[0] {
		t.Fatal("same seed gave different networks")
	}
}
