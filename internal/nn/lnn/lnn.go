// Package lnn implements a logarithmic neural network in the spirit of
// Hines, "A logarithmic neural network architecture for unbounded
// non-linear function approximation" (ICNN 1996) — the paper's reference
// [23], cited in §5.3 as the remedy for MLPs' rapid accuracy loss outside
// the training range.
//
// The network replaces the bounded sigmoid hidden units with signed
// log-compression units, sign(x)·ln(1+|x|), so the hidden responses keep
// growing (slowly) outside the training region instead of saturating flat.
// Combined with an identity output layer this yields graceful, monotone
// extrapolation while retaining enough curvature for interpolation.
package lnn

import (
	"nnwc/internal/nn"
	"nnwc/internal/rng"
)

// New builds a logarithmic network with the given sizes (sizes[0] inputs,
// sizes[len-1] outputs) and Xavier-initialized weights.
func New(sizes []int, src *rng.Source) *nn.Network {
	net := nn.NewNetwork(sizes, nn.LogCompress{}, nn.Identity{})
	nn.XavierInit{}.Init(net, src)
	return net
}

// NewHybrid builds a network whose first hidden layer is logarithmic and
// whose remaining hidden layers are tanh, a configuration Hines found to
// trade interpolation accuracy against extrapolation robustness.
func NewHybrid(sizes []int, src *rng.Source) *nn.Network {
	net := nn.NewNetwork(sizes, nn.Tanh{}, nn.Identity{})
	if len(net.Layers) > 1 {
		// Swap the first hidden layer's activation in place: layers view the
		// network's flat parameter vector, so the layer object itself stays.
		net.Layers[0].Act = nn.LogCompress{}
	}
	nn.XavierInit{}.Init(net, src)
	return net
}
