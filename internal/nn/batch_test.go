package nn

import (
	"math"
	"testing"

	"nnwc/internal/mat"
	"nnwc/internal/rng"
)

// TestForwardBatchMatchesPerSample is the batched-vs-per-sample equivalence
// keystone: every row of ForwardBatch must match Forward on that row to
// within 1e-12 (in fact the kernels accumulate in the same order, so the
// match is exact).
func TestForwardBatchMatchesPerSample(t *testing.T) {
	activations := []Activation{Logistic{Alpha: 1}, Tanh{}, LogCompress{}}
	for _, act := range activations {
		src := rng.New(31)
		net := NewNetwork([]int{4, 9, 6, 3}, act, Identity{})
		XavierInit{}.Init(net, src)

		data := rng.New(7)
		const batch = 37
		X := mat.New(batch, 4)
		for i := range X.Data {
			X.Data[i] = data.Uniform(-2, 2)
		}
		var ws BatchWorkspace
		out := net.ForwardBatch(X, &ws)
		for r := 0; r < batch; r++ {
			want := net.Forward(X.Row(r))
			for j := range want {
				if math.Abs(out.At(r, j)-want[j]) > 1e-12 {
					t.Fatalf("%s: row %d output %d: batch %v, per-sample %v",
						act.Name(), r, j, out.At(r, j), want[j])
				}
			}
		}
	}
}

func TestForwardTraceBatchMatchesPerSample(t *testing.T) {
	src := rng.New(32)
	net := NewNetwork([]int{3, 5, 2}, Tanh{}, Identity{})
	XavierInit{}.Init(net, src)
	X := mat.FromRows([][]float64{{0.1, -0.5, 2}, {1, 1, 1}, {-3, 0.2, 0.9}})
	var ws BatchWorkspace
	acts, pres := net.ForwardTraceBatch(X, &ws)
	if len(acts) != len(net.Layers)+1 || len(pres) != len(net.Layers) {
		t.Fatalf("trace lengths %d/%d", len(acts), len(pres))
	}
	for r := 0; r < X.Rows; r++ {
		sActs, sPres := net.ForwardTrace(X.Row(r))
		for li := range net.Layers {
			for j := range sPres[li] {
				if acts[li+1].At(r, j) != sActs[li+1][j] {
					t.Fatalf("acts[%d] row %d col %d differ", li+1, r, j)
				}
				if pres[li].At(r, j) != sPres[li][j] {
					t.Fatalf("pres[%d] row %d col %d differ", li, r, j)
				}
			}
		}
	}
}

// TestForwardBatchReusesWorkspace asserts steady-state batched evaluation
// does not allocate.
func TestForwardBatchReusesWorkspace(t *testing.T) {
	src := rng.New(33)
	net := NewNetwork([]int{4, 16, 5}, Logistic{Alpha: 1}, Identity{})
	XavierInit{}.Init(net, src)
	X := mat.New(64, 4)
	for i := range X.Data {
		X.Data[i] = src.Uniform(-1, 1)
	}
	var ws BatchWorkspace
	net.ForwardBatch(X, &ws) // warm the buffers
	allocs := testing.AllocsPerRun(50, func() {
		net.ForwardBatch(X, &ws)
	})
	if allocs != 0 {
		t.Fatalf("steady-state ForwardBatch allocates %v objects/op", allocs)
	}
}

func TestForwardBatchGrowsWithBatchSize(t *testing.T) {
	src := rng.New(34)
	net := NewNetwork([]int{2, 4, 1}, Tanh{}, Identity{})
	XavierInit{}.Init(net, src)
	var ws BatchWorkspace
	for _, batch := range []int{1, 8, 3, 20} {
		X := mat.New(batch, 2)
		for i := range X.Data {
			X.Data[i] = src.Uniform(-1, 1)
		}
		out := net.ForwardBatch(X, &ws)
		if out.Rows != batch || out.Cols != 1 {
			t.Fatalf("batch %d: output shape %dx%d", batch, out.Rows, out.Cols)
		}
		for r := 0; r < batch; r++ {
			if out.At(r, 0) != net.Forward(X.Row(r))[0] {
				t.Fatalf("batch %d row %d mismatch after workspace resize", batch, r)
			}
		}
	}
}

func TestForwardBatchShapePanics(t *testing.T) {
	net := NewNetwork([]int{3, 2}, Identity{}, Identity{})
	defer func() {
		if recover() == nil {
			t.Fatal("wrong batch width did not panic")
		}
	}()
	net.ForwardBatch(mat.New(4, 2), &BatchWorkspace{})
}

// TestParamsLayout pins the flat-parameter memory layout: per layer, weights
// row-major then biases, layers concatenated in order.
func TestParamsLayout(t *testing.T) {
	net := NewNetwork([]int{2, 3, 1}, Tanh{}, Identity{})
	p := net.Params()
	if len(p) != net.NumParams() {
		t.Fatalf("Params length %d, NumParams %d", len(p), net.NumParams())
	}
	// Write through the flat vector, observe through the layer views.
	for i := range p {
		p[i] = float64(i)
	}
	l0, l1 := net.Layers[0], net.Layers[1]
	if l0.W.At(0, 0) != 0 || l0.W.At(0, 1) != 1 || l0.W.At(2, 1) != 5 {
		t.Fatalf("layer 0 weights not row-major over flat params: %v", l0.W.Data)
	}
	if l0.B[0] != 6 || l0.B[2] != 8 {
		t.Fatalf("layer 0 biases misplaced: %v", l0.B)
	}
	if l1.W.At(0, 0) != 9 || l1.B[0] != 12 {
		t.Fatalf("layer 1 block misplaced: W %v B %v", l1.W.Data, l1.B)
	}
	// And the reverse direction: writes through views show up flat.
	l1.B[0] = -1
	if p[12] != -1 {
		t.Fatal("layer views do not alias the flat vector")
	}
}

func TestSetParams(t *testing.T) {
	net := NewNetwork([]int{1, 2, 1}, Tanh{}, Identity{})
	vals := make([]float64, net.NumParams())
	for i := range vals {
		vals[i] = float64(i) * 0.5
	}
	net.SetParams(vals)
	for i, v := range net.Params() {
		if v != vals[i] {
			t.Fatal("SetParams did not copy")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong length did not panic")
		}
	}()
	net.SetParams([]float64{1})
}

func BenchmarkForwardBatch64x4x16x5(b *testing.B) {
	src := rng.New(1)
	net := NewNetwork([]int{4, 16, 5}, Logistic{Alpha: 1}, Identity{})
	XavierInit{}.Init(net, src)
	X := mat.New(64, 4)
	for i := range X.Data {
		X.Data[i] = src.Uniform(-1, 1)
	}
	var ws BatchWorkspace
	net.ForwardBatch(X, &ws)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardBatch(X, &ws)
	}
}
