package nn

import (
	"fmt"
	"math"

	"nnwc/internal/mat"
	"nnwc/internal/rng"
)

// Layer is one fully connected layer of perceptrons. Each of the Outputs
// perceptrons computes act(Σⱼ W[i,j]·xⱼ + B[i]); the bias B[i] plays the
// role of the paper's −w₀ threshold term.
//
// Weights live in a single row-major mat.Matrix (Outputs × Inputs) and the
// biases directly after them, so a layer's parameters occupy one contiguous
// block. Layers built by NewNetwork view slices of the network's flat
// parameter vector; standalone layers from NewLayer own a private block.
type Layer struct {
	Inputs, Outputs int
	W               *mat.Matrix // Outputs × Inputs weights, row-major
	B               []float64   // Outputs biases
	Act             Activation
}

// NewLayer allocates a standalone zero-weight layer backed by its own
// contiguous parameter block.
func NewLayer(inputs, outputs int, act Activation) *Layer {
	if inputs <= 0 || outputs <= 0 {
		panic(fmt.Sprintf("nn: invalid layer shape %d->%d", inputs, outputs))
	}
	block := make([]float64, outputs*inputs+outputs)
	return newLayerView(inputs, outputs, act, block)
}

// newLayerView builds a layer whose W and B view the given parameter block
// (length outputs*inputs+outputs): weights first, row-major, then biases.
func newLayerView(inputs, outputs int, act Activation, block []float64) *Layer {
	return &Layer{
		Inputs:  inputs,
		Outputs: outputs,
		W:       &mat.Matrix{Rows: outputs, Cols: inputs, Data: block[:outputs*inputs]},
		B:       block[outputs*inputs:],
		Act:     act,
	}
}

// Forward computes the layer output for input x, also returning the
// pre-activation sums (needed by back-propagation).
func (l *Layer) Forward(x []float64) (out, pre []float64) {
	if len(x) != l.Inputs {
		panic(fmt.Sprintf("nn: layer expects %d inputs, got %d", l.Inputs, len(x)))
	}
	out = make([]float64, l.Outputs)
	pre = make([]float64, l.Outputs)
	l.forwardInto(x, out, pre)
	return out, pre
}

// forwardInto is the allocation-free core of Forward: one affine transform
// plus activation into caller-owned slices. The pre-activations are
// computed first and the activation applied row-wise afterwards — same
// values as the per-neuron formulation, but with the activation
// devirtualized once per row. The seeded dot accumulates bias-first in
// ascending j, matching the batched mat.MulTransBiasInto kernel bit for
// bit.
//
//nnwc:hotpath
func (l *Layer) forwardInto(x, out, pre []float64) {
	wd, off := l.W.Data, 0
	for i := 0; i < l.Outputs; i++ {
		pre[i] = mat.DotSeed(l.B[i], x, wd[off:off+len(x)])
		off += l.Inputs
	}
	EvalRow(l.Act, pre[:l.Outputs], out)
}

// NumParams returns the number of trainable parameters in the layer.
func (l *Layer) NumParams() int { return l.Outputs*l.Inputs + l.Outputs }

// Network is a multilayer perceptron: an input "layer" (not counted, per
// the paper's convention in §2.2), zero or more hidden layers, and an
// output layer.
//
// All parameters live in one flat vector, ordered layer by layer — each
// layer contributing its weights (row-major, Outputs × Inputs) followed by
// its biases. Every Layer's W and B are views into that vector, so
// optimizers, serialization, and gradient bookkeeping can treat the whole
// network as a single []float64. Do not replace entries of Layers with
// foreign layers — mutate Act or the weight values in place instead.
type Network struct {
	Layers []*Layer
	params []float64
}

// NewNetwork builds an MLP with the given layer sizes. sizes[0] is the
// input dimensionality; sizes[len-1] the output dimensionality. hidden is
// the activation for hidden layers; output for the final layer (Identity
// for regression).
func NewNetwork(sizes []int, hidden, output Activation) *Network {
	if len(sizes) < 2 {
		panic("nn: network needs at least input and output sizes")
	}
	acts := make([]Activation, len(sizes)-1)
	for i := range acts {
		if i == len(acts)-1 {
			acts[i] = output
		} else {
			acts[i] = hidden
		}
	}
	return newNetwork(sizes, acts)
}

// newNetwork assembles a flat-parameter network from explicit per-layer
// activations (len(acts) == len(sizes)-1).
func newNetwork(sizes []int, acts []Activation) *Network {
	var total int
	for i := 0; i < len(sizes)-1; i++ {
		if sizes[i] <= 0 || sizes[i+1] <= 0 {
			panic(fmt.Sprintf("nn: invalid layer shape %d->%d", sizes[i], sizes[i+1]))
		}
		total += sizes[i+1]*sizes[i] + sizes[i+1]
	}
	n := &Network{params: make([]float64, total)}
	off := 0
	for i := 0; i < len(sizes)-1; i++ {
		span := sizes[i+1]*sizes[i] + sizes[i+1]
		n.Layers = append(n.Layers, newLayerView(sizes[i], sizes[i+1], acts[i], n.params[off:off+span]))
		off += span
	}
	return n
}

// Params returns the network's flat parameter vector: every layer's weights
// (row-major) followed by its biases, concatenated in layer order. The
// returned slice aliases the live parameters — writes through it move the
// network, and every Layer's W and B view into it.
func (n *Network) Params() []float64 { return n.params }

// SetParams overwrites the network's parameters from a flat vector laid out
// as Params.
func (n *Network) SetParams(p []float64) {
	if len(p) != len(n.params) {
		panic(fmt.Sprintf("nn: SetParams got %d values, network has %d", len(p), len(n.params)))
	}
	copy(n.params, p)
}

// InputDim returns the expected input dimensionality.
func (n *Network) InputDim() int { return n.Layers[0].Inputs }

// OutputDim returns the output dimensionality.
func (n *Network) OutputDim() int { return n.Layers[len(n.Layers)-1].Outputs }

// Sizes returns the layer sizes including input and output.
func (n *Network) Sizes() []int {
	sizes := []int{n.InputDim()}
	for _, l := range n.Layers {
		sizes = append(sizes, l.Outputs)
	}
	return sizes
}

// NumParams returns the total number of trainable parameters.
func (n *Network) NumParams() int { return len(n.params) }

// MaxWidth returns the widest activation the network produces, including
// the input width — the column bound batch workspaces must accommodate.
func (n *Network) MaxWidth() int {
	w := n.InputDim()
	for _, l := range n.Layers {
		if l.Outputs > w {
			w = l.Outputs
		}
	}
	return w
}

// Forward runs the network on x and returns the output vector.
func (n *Network) Forward(x []float64) []float64 {
	out := x
	for _, l := range n.Layers {
		next := make([]float64, l.Outputs)
		pre := make([]float64, l.Outputs)
		l.forwardInto(out, next, pre)
		out = next
	}
	return out
}

// ForwardTrace runs the network and returns every layer's activations and
// pre-activations. acts[0] is the input; acts[i+1] and pres[i] belong to
// layer i. Back-propagation consumes this trace.
func (n *Network) ForwardTrace(x []float64) (acts, pres [][]float64) {
	acts = make([][]float64, len(n.Layers)+1)
	pres = make([][]float64, len(n.Layers))
	acts[0] = x
	for i, l := range n.Layers {
		acts[i+1], pres[i] = l.Forward(acts[i])
	}
	return acts, pres
}

// acts collects the per-layer activations (for rebuilding topologies).
func (n *Network) acts() []Activation {
	acts := make([]Activation, len(n.Layers))
	for i, l := range n.Layers {
		acts[i] = l.Act
	}
	return acts
}

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	c := newNetwork(n.Sizes(), n.acts())
	copy(c.params, n.params)
	return c
}

// CopyWeightsFrom overwrites n's parameters with src's. The topologies
// must match.
func (n *Network) CopyWeightsFrom(src *Network) {
	if len(n.Layers) != len(src.Layers) {
		panic("nn: topology mismatch in CopyWeightsFrom")
	}
	for i, l := range n.Layers {
		sl := src.Layers[i]
		if l.Inputs != sl.Inputs || l.Outputs != sl.Outputs {
			panic("nn: layer shape mismatch in CopyWeightsFrom")
		}
	}
	copy(n.params, src.params)
}

// Initializer seeds a network's weights before training. The paper notes
// the weights and biases "are initialized with random values when the
// training process begins" (§3.1).
type Initializer interface {
	Init(n *Network, src *rng.Source)
}

// UniformInit draws weights and biases uniformly from [−Scale, Scale].
type UniformInit struct{ Scale float64 }

// Init implements Initializer.
func (u UniformInit) Init(n *Network, src *rng.Source) {
	s := u.Scale
	if s <= 0 {
		s = 0.5
	}
	for _, l := range n.Layers {
		for o := 0; o < l.Outputs; o++ {
			row := l.W.Row(o)
			for j := range row {
				row[j] = src.Uniform(-s, s)
			}
		}
		for i := range l.B {
			l.B[i] = src.Uniform(-s, s)
		}
	}
}

// XavierInit draws weights from a uniform distribution whose scale depends
// on fan-in and fan-out (Glorot & Bengio), which keeps activation variance
// stable across layers; biases start at zero.
type XavierInit struct{}

// Init implements Initializer.
func (XavierInit) Init(n *Network, src *rng.Source) {
	for _, l := range n.Layers {
		limit := math.Sqrt(6 / float64(l.Inputs+l.Outputs))
		for o := 0; o < l.Outputs; o++ {
			row := l.W.Row(o)
			for j := range row {
				row[j] = src.Uniform(-limit, limit)
			}
		}
		for i := range l.B {
			l.B[i] = 0
		}
	}
}
