package nn

import (
	"fmt"
	"math"

	"nnwc/internal/rng"
)

// Layer is one fully connected layer of perceptrons. Each of the Outputs
// perceptrons computes act(Σⱼ W[i][j]·xⱼ + B[i]); the bias B[i] plays the
// role of the paper's −w₀ threshold term.
type Layer struct {
	Inputs, Outputs int
	W               [][]float64 // Outputs × Inputs weights
	B               []float64   // Outputs biases
	Act             Activation
}

// NewLayer allocates a zero-weight layer.
func NewLayer(inputs, outputs int, act Activation) *Layer {
	if inputs <= 0 || outputs <= 0 {
		panic(fmt.Sprintf("nn: invalid layer shape %d->%d", inputs, outputs))
	}
	w := make([][]float64, outputs)
	for i := range w {
		w[i] = make([]float64, inputs)
	}
	return &Layer{Inputs: inputs, Outputs: outputs, W: w, B: make([]float64, outputs), Act: act}
}

// Forward computes the layer output for input x, also returning the
// pre-activation sums (needed by back-propagation).
func (l *Layer) Forward(x []float64) (out, pre []float64) {
	if len(x) != l.Inputs {
		panic(fmt.Sprintf("nn: layer expects %d inputs, got %d", l.Inputs, len(x)))
	}
	out = make([]float64, l.Outputs)
	pre = make([]float64, l.Outputs)
	for i := 0; i < l.Outputs; i++ {
		s := l.B[i]
		w := l.W[i]
		for j, xv := range x {
			s += w[j] * xv
		}
		pre[i] = s
		out[i] = l.Act.Eval(s)
	}
	return out, pre
}

// NumParams returns the number of trainable parameters in the layer.
func (l *Layer) NumParams() int { return l.Outputs*l.Inputs + l.Outputs }

// Network is a multilayer perceptron: an input "layer" (not counted, per
// the paper's convention in §2.2), zero or more hidden layers, and an
// output layer.
type Network struct {
	Layers []*Layer
}

// NewNetwork builds an MLP with the given layer sizes. sizes[0] is the
// input dimensionality; sizes[len-1] the output dimensionality. hidden is
// the activation for hidden layers; output for the final layer (Identity
// for regression).
func NewNetwork(sizes []int, hidden, output Activation) *Network {
	if len(sizes) < 2 {
		panic("nn: network needs at least input and output sizes")
	}
	n := &Network{}
	for i := 0; i < len(sizes)-1; i++ {
		act := hidden
		if i == len(sizes)-2 {
			act = output
		}
		n.Layers = append(n.Layers, NewLayer(sizes[i], sizes[i+1], act))
	}
	return n
}

// InputDim returns the expected input dimensionality.
func (n *Network) InputDim() int { return n.Layers[0].Inputs }

// OutputDim returns the output dimensionality.
func (n *Network) OutputDim() int { return n.Layers[len(n.Layers)-1].Outputs }

// Sizes returns the layer sizes including input and output.
func (n *Network) Sizes() []int {
	sizes := []int{n.InputDim()}
	for _, l := range n.Layers {
		sizes = append(sizes, l.Outputs)
	}
	return sizes
}

// NumParams returns the total number of trainable parameters.
func (n *Network) NumParams() int {
	var p int
	for _, l := range n.Layers {
		p += l.NumParams()
	}
	return p
}

// Forward runs the network on x and returns the output vector.
func (n *Network) Forward(x []float64) []float64 {
	out := x
	for _, l := range n.Layers {
		out, _ = l.Forward(out)
	}
	return out
}

// ForwardTrace runs the network and returns every layer's activations and
// pre-activations. acts[0] is the input; acts[i+1] and pres[i] belong to
// layer i. Back-propagation consumes this trace.
func (n *Network) ForwardTrace(x []float64) (acts, pres [][]float64) {
	acts = make([][]float64, len(n.Layers)+1)
	pres = make([][]float64, len(n.Layers))
	acts[0] = x
	for i, l := range n.Layers {
		acts[i+1], pres[i] = l.Forward(acts[i])
	}
	return acts, pres
}

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	c := &Network{Layers: make([]*Layer, len(n.Layers))}
	for i, l := range n.Layers {
		nl := NewLayer(l.Inputs, l.Outputs, l.Act)
		for r := range l.W {
			copy(nl.W[r], l.W[r])
		}
		copy(nl.B, l.B)
		c.Layers[i] = nl
	}
	return c
}

// CopyWeightsFrom overwrites n's parameters with src's. The topologies
// must match.
func (n *Network) CopyWeightsFrom(src *Network) {
	if len(n.Layers) != len(src.Layers) {
		panic("nn: topology mismatch in CopyWeightsFrom")
	}
	for i, l := range n.Layers {
		sl := src.Layers[i]
		if l.Inputs != sl.Inputs || l.Outputs != sl.Outputs {
			panic("nn: layer shape mismatch in CopyWeightsFrom")
		}
		for r := range l.W {
			copy(l.W[r], sl.W[r])
		}
		copy(l.B, sl.B)
	}
}

// Initializer seeds a network's weights before training. The paper notes
// the weights and biases "are initialized with random values when the
// training process begins" (§3.1).
type Initializer interface {
	Init(n *Network, src *rng.Source)
}

// UniformInit draws weights and biases uniformly from [−Scale, Scale].
type UniformInit struct{ Scale float64 }

// Init implements Initializer.
func (u UniformInit) Init(n *Network, src *rng.Source) {
	s := u.Scale
	if s <= 0 {
		s = 0.5
	}
	for _, l := range n.Layers {
		for _, row := range l.W {
			for j := range row {
				row[j] = src.Uniform(-s, s)
			}
		}
		for i := range l.B {
			l.B[i] = src.Uniform(-s, s)
		}
	}
}

// XavierInit draws weights from a uniform distribution whose scale depends
// on fan-in and fan-out (Glorot & Bengio), which keeps activation variance
// stable across layers; biases start at zero.
type XavierInit struct{}

// Init implements Initializer.
func (XavierInit) Init(n *Network, src *rng.Source) {
	for _, l := range n.Layers {
		limit := math.Sqrt(6 / float64(l.Inputs+l.Outputs))
		for _, row := range l.W {
			for j := range row {
				row[j] = src.Uniform(-limit, limit)
			}
		}
		for i := range l.B {
			l.B[i] = 0
		}
	}
}
