package nn

import (
	"encoding/json"
	"fmt"
	"io"
)

// networkJSON is the on-disk representation of a Network. Activations are
// stored by Name() so slope parameters round-trip. The format predates the
// flat-parameter refactor — weights serialize as nested rows — and is kept
// stable so previously saved models keep loading.
type networkJSON struct {
	Layers []layerJSON `json:"layers"`
}

type layerJSON struct {
	Inputs     int         `json:"inputs"`
	Outputs    int         `json:"outputs"`
	Activation string      `json:"activation"`
	W          [][]float64 `json:"w"`
	B          []float64   `json:"b"`
}

// Save writes the network as JSON.
func (n *Network) Save(w io.Writer) error {
	doc := networkJSON{}
	for _, l := range n.Layers {
		rows := make([][]float64, l.Outputs)
		for o := range rows {
			rows[o] = l.W.Row(o)
		}
		doc.Layers = append(doc.Layers, layerJSON{
			Inputs:     l.Inputs,
			Outputs:    l.Outputs,
			Activation: l.Act.Name(),
			W:          rows,
			B:          l.B,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// Load reads a network previously written by Save, including files written
// before the flat-parameter refactor.
func Load(r io.Reader) (*Network, error) {
	var doc networkJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("nn: decoding network: %w", err)
	}
	if len(doc.Layers) == 0 {
		return nil, fmt.Errorf("nn: network file contains no layers")
	}
	// Validate the whole topology first, then assemble one flat-parameter
	// network and copy the weights into its views.
	sizes := make([]int, 0, len(doc.Layers)+1)
	acts := make([]Activation, 0, len(doc.Layers))
	prevOut := -1
	for i, lj := range doc.Layers {
		act, err := ActivationByName(lj.Activation)
		if err != nil {
			return nil, err
		}
		if lj.Inputs <= 0 || lj.Outputs <= 0 {
			return nil, fmt.Errorf("nn: layer %d has invalid shape %d->%d", i, lj.Inputs, lj.Outputs)
		}
		if prevOut != -1 && lj.Inputs != prevOut {
			return nil, fmt.Errorf("nn: layer %d inputs (%d) do not match previous outputs (%d)", i, lj.Inputs, prevOut)
		}
		if len(lj.W) != lj.Outputs || len(lj.B) != lj.Outputs {
			return nil, fmt.Errorf("nn: layer %d weight/bias rows do not match outputs", i)
		}
		for r := range lj.W {
			if len(lj.W[r]) != lj.Inputs {
				return nil, fmt.Errorf("nn: layer %d weight row %d has %d entries, want %d", i, r, len(lj.W[r]), lj.Inputs)
			}
		}
		if prevOut == -1 {
			sizes = append(sizes, lj.Inputs)
		}
		sizes = append(sizes, lj.Outputs)
		acts = append(acts, act)
		prevOut = lj.Outputs
	}
	n := newNetwork(sizes, acts)
	for i, lj := range doc.Layers {
		l := n.Layers[i]
		for r := range lj.W {
			copy(l.W.Row(r), lj.W[r])
		}
		copy(l.B, lj.B)
	}
	return n, nil
}
