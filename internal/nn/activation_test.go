package nn

import (
	"math"
	"testing"
	"testing/quick"
)

// numericDeriv estimates f'(x) by central differences.
func numericDeriv(f func(float64) float64, x float64) float64 {
	const h = 1e-6
	return (f(x+h) - f(x-h)) / (2 * h)
}

func activations() []Activation {
	return []Activation{
		Logistic{Alpha: 1},
		Logistic{Alpha: 0.5},
		Logistic{Alpha: 3},
		Tanh{},
		Identity{},
		LogCompress{},
	}
}

func TestDerivMatchesNumeric(t *testing.T) {
	for _, act := range activations() {
		for _, x := range []float64{-3, -1, -0.1, 0.1, 1, 3} {
			y := act.Eval(x)
			got := act.Deriv(x, y)
			want := numericDeriv(act.Eval, x)
			if math.Abs(got-want) > 1e-5 {
				t.Errorf("%s: deriv at %v = %v, numeric %v", act.Name(), x, got, want)
			}
		}
	}
}

func TestReLUDeriv(t *testing.T) {
	r := ReLU{}
	if r.Deriv(2, 2) != 1 || r.Deriv(-2, 0) != 0 {
		t.Fatal("ReLU derivative wrong")
	}
	if r.Eval(-5) != 0 || r.Eval(5) != 5 {
		t.Fatal("ReLU value wrong")
	}
}

func TestLogisticRange(t *testing.T) {
	if err := quick.Check(func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		y := Logistic{Alpha: 1}.Eval(x)
		return y >= 0 && y <= 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogisticMidpointAndMonotone(t *testing.T) {
	l := Logistic{Alpha: 2}
	if math.Abs(l.Eval(0)-0.5) > 1e-12 {
		t.Fatal("logistic(0) != 0.5")
	}
	prev := math.Inf(-1)
	for x := -10.0; x <= 10; x += 0.25 {
		y := l.Eval(x)
		if y <= prev {
			t.Fatal("logistic is not strictly increasing")
		}
		prev = y
	}
}

func TestLogisticSlopeHardens(t *testing.T) {
	// Figure 2's property: larger α approaches a hard limiter.
	soft := Logistic{Alpha: 0.5}.Eval(1)
	hard := Logistic{Alpha: 5}.Eval(1)
	if !(hard > soft) {
		t.Fatalf("at x=1: alpha=5 gives %v, alpha=0.5 gives %v", hard, soft)
	}
	if (Logistic{Alpha: 50}).Eval(0.5) < 0.999 {
		t.Fatal("very steep sigmoid should saturate fast")
	}
}

func TestTanhOddSymmetry(t *testing.T) {
	if err := quick.Check(func(x float64) bool {
		if math.IsNaN(x) || math.Abs(x) > 100 {
			return true
		}
		return math.Abs(Tanh{}.Eval(x)+Tanh{}.Eval(-x)) < 1e-12
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogCompressProperties(t *testing.T) {
	lc := LogCompress{}
	// Odd symmetry and monotonicity.
	if math.Abs(lc.Eval(3)+lc.Eval(-3)) > 1e-12 {
		t.Fatal("LogCompress not odd")
	}
	if lc.Eval(0) != 0 {
		t.Fatal("LogCompress(0) != 0")
	}
	// Unbounded but sublinear growth — the extrapolation property.
	if lc.Eval(1e6) < 10 {
		t.Fatal("LogCompress should keep growing")
	}
	if lc.Eval(1e6) > 20 {
		t.Fatal("LogCompress should grow slowly")
	}
}

func TestActivationByNameRoundTrip(t *testing.T) {
	for _, act := range append(activations(), ReLU{}) {
		back, err := ActivationByName(act.Name())
		if err != nil {
			t.Fatalf("%s: %v", act.Name(), err)
		}
		for _, x := range []float64{-2, 0, 1.5} {
			if math.Abs(back.Eval(x)-act.Eval(x)) > 1e-12 {
				t.Fatalf("%s: round-tripped activation differs at %v", act.Name(), x)
			}
		}
	}
}

func TestActivationByNameUnknown(t *testing.T) {
	if _, err := ActivationByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}
