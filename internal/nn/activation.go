// Package nn implements the paper's artificial-neural-network building
// blocks (§2): the perceptron computing y = f(Σ wᵢxᵢ − w₀), squashing
// activation functions (most prominently the logistic sigmoid with a slope
// parameter, Figure 2), and multilayer perceptrons (Figure 3) mapping an
// n-dimensional configuration space to an m-dimensional performance-
// indicator space.
package nn

import (
	"fmt"
	"math"
)

// Activation is a differentiable squashing (or pass-through) function
// applied to a perceptron's weighted sum.
type Activation interface {
	// Eval returns f(x).
	Eval(x float64) float64
	// Deriv returns f'(x) given both the pre-activation x and the cached
	// output y = f(x); implementations use whichever is cheaper.
	Deriv(x, y float64) float64
	// Name identifies the activation for serialization.
	Name() string
}

// Logistic is the paper's sigmoid y = 1 / (1 + exp(−αx)) (§2.1). The slope
// parameter α controls the fuzziness of the decision boundary: as |α| grows
// the function approaches a hard limiter (Figure 2).
//
// Note the paper prints the formula as 1/(1+exp(αx)); with a positive α
// that form is strictly decreasing, contradicting the stated "strictly
// increasing" sigmoid property and Figure 2, so we use the conventional
// negative exponent.
type Logistic struct {
	Alpha float64 // slope parameter; 1 gives the standard logistic
}

// Eval returns 1/(1+exp(−αx)).
func (l Logistic) Eval(x float64) float64 {
	return 1 / (1 + math.Exp(-l.Alpha*x))
}

// Deriv returns α·y·(1−y).
func (l Logistic) Deriv(_, y float64) float64 {
	return l.Alpha * y * (1 - y)
}

// Name implements Activation.
func (l Logistic) Name() string { return fmt.Sprintf("logistic(%g)", l.Alpha) }

// Tanh is the hyperbolic-tangent squashing function, a zero-centred
// alternative to the logistic that often trains faster on standardized
// inputs.
type Tanh struct{}

// Eval returns tanh(x).
func (Tanh) Eval(x float64) float64 { return math.Tanh(x) }

// Deriv returns 1 − y².
func (Tanh) Deriv(_, y float64) float64 { return 1 - y*y }

// Name implements Activation.
func (Tanh) Name() string { return "tanh" }

// ReLU is the rectified linear unit, max(0, x). Included for ablations;
// the paper predates its popularity.
type ReLU struct{}

// Eval returns max(0, x).
func (ReLU) Eval(x float64) float64 {
	if x > 0 {
		return x
	}
	return 0
}

// Deriv returns 1 for x > 0 and 0 otherwise.
func (ReLU) Deriv(x, _ float64) float64 {
	if x > 0 {
		return 1
	}
	return 0
}

// Name implements Activation.
func (ReLU) Name() string { return "relu" }

// Identity is the pass-through activation used on output layers for
// regression, so the network range is unbounded.
type Identity struct{}

// Eval returns x.
func (Identity) Eval(x float64) float64 { return x }

// Deriv returns 1.
func (Identity) Deriv(_, _ float64) float64 { return 1 }

// Name implements Activation.
func (Identity) Name() string { return "identity" }

// LogCompress is the signed logarithmic squashing function
// sign(x)·ln(1+|x|) used by logarithmic neural networks (Hines 1996,
// paper ref. [23]) to keep responses bounded-growth and improve
// extrapolation outside the training range (§5.3).
type LogCompress struct{}

// Eval returns sign(x)·ln(1+|x|).
func (LogCompress) Eval(x float64) float64 {
	if x >= 0 {
		return math.Log1p(x)
	}
	return -math.Log1p(-x)
}

// Deriv returns 1/(1+|x|).
func (LogCompress) Deriv(x, _ float64) float64 {
	return 1 / (1 + math.Abs(x))
}

// Name implements Activation.
func (LogCompress) Name() string { return "logcompress" }

// ActivationByName reconstructs an activation from its Name() string,
// for model deserialization.
func ActivationByName(name string) (Activation, error) {
	switch name {
	case "tanh":
		return Tanh{}, nil
	case "relu":
		return ReLU{}, nil
	case "identity":
		return Identity{}, nil
	case "logcompress":
		return LogCompress{}, nil
	}
	var alpha float64
	if n, err := fmt.Sscanf(name, "logistic(%g)", &alpha); err == nil && n == 1 {
		return Logistic{Alpha: alpha}, nil
	}
	return nil, fmt.Errorf("nn: unknown activation %q", name)
}
