// Package nn implements the paper's artificial-neural-network building
// blocks (§2): the perceptron computing y = f(Σ wᵢxᵢ − w₀), squashing
// activation functions (most prominently the logistic sigmoid with a slope
// parameter, Figure 2), and multilayer perceptrons (Figure 3) mapping an
// n-dimensional configuration space to an m-dimensional performance-
// indicator space.
package nn

import (
	"fmt"
	"math"
)

// Activation is a differentiable squashing (or pass-through) function
// applied to a perceptron's weighted sum.
type Activation interface {
	// Eval returns f(x).
	Eval(x float64) float64
	// Deriv returns f'(x) given both the pre-activation x and the cached
	// output y = f(x); implementations use whichever is cheaper.
	Deriv(x, y float64) float64
	// Name identifies the activation for serialization.
	Name() string
}

// Logistic is the paper's sigmoid y = 1 / (1 + exp(−αx)) (§2.1). The slope
// parameter α controls the fuzziness of the decision boundary: as |α| grows
// the function approaches a hard limiter (Figure 2).
//
// Note the paper prints the formula as 1/(1+exp(αx)); with a positive α
// that form is strictly decreasing, contradicting the stated "strictly
// increasing" sigmoid property and Figure 2, so we use the conventional
// negative exponent.
type Logistic struct {
	Alpha float64 // slope parameter; 1 gives the standard logistic
}

// Eval returns 1/(1+exp(−αx)).
func (l Logistic) Eval(x float64) float64 {
	return 1 / (1 + math.Exp(-l.Alpha*x))
}

// Deriv returns α·y·(1−y).
func (l Logistic) Deriv(_, y float64) float64 {
	return l.Alpha * y * (1 - y)
}

// Name implements Activation.
func (l Logistic) Name() string { return fmt.Sprintf("logistic(%g)", l.Alpha) }

// Tanh is the hyperbolic-tangent squashing function, a zero-centred
// alternative to the logistic that often trains faster on standardized
// inputs.
type Tanh struct{}

// Eval returns tanh(x).
func (Tanh) Eval(x float64) float64 { return math.Tanh(x) }

// Deriv returns 1 − y².
func (Tanh) Deriv(_, y float64) float64 { return 1 - y*y }

// Name implements Activation.
func (Tanh) Name() string { return "tanh" }

// ReLU is the rectified linear unit, max(0, x). Included for ablations;
// the paper predates its popularity.
type ReLU struct{}

// Eval returns max(0, x).
func (ReLU) Eval(x float64) float64 {
	if x > 0 {
		return x
	}
	return 0
}

// Deriv returns 1 for x > 0 and 0 otherwise.
func (ReLU) Deriv(x, _ float64) float64 {
	if x > 0 {
		return 1
	}
	return 0
}

// Name implements Activation.
func (ReLU) Name() string { return "relu" }

// Identity is the pass-through activation used on output layers for
// regression, so the network range is unbounded.
type Identity struct{}

// Eval returns x.
func (Identity) Eval(x float64) float64 { return x }

// Deriv returns 1.
func (Identity) Deriv(_, _ float64) float64 { return 1 }

// Name implements Activation.
func (Identity) Name() string { return "identity" }

// LogCompress is the signed logarithmic squashing function
// sign(x)·ln(1+|x|) used by logarithmic neural networks (Hines 1996,
// paper ref. [23]) to keep responses bounded-growth and improve
// extrapolation outside the training range (§5.3).
type LogCompress struct{}

// Eval returns sign(x)·ln(1+|x|).
func (LogCompress) Eval(x float64) float64 {
	if x >= 0 {
		return math.Log1p(x)
	}
	return -math.Log1p(-x)
}

// Deriv returns 1/(1+|x|).
func (LogCompress) Deriv(x, _ float64) float64 {
	return 1 / (1 + math.Abs(x))
}

// Name implements Activation.
func (LogCompress) Name() string { return "logcompress" }

// EvalRow applies act to every pre[i], writing out[i]. It type-switches on
// the concrete activation once per row so the hot loop uses direct,
// inlinable calls instead of per-element interface dispatch; the arithmetic
// is identical to calling Eval per element.
//
//nnwc:hotpath
func EvalRow(act Activation, pre, out []float64) {
	out = out[:len(pre)]
	switch a := act.(type) {
	case Identity:
		copy(out, pre)
	case Logistic:
		for i, v := range pre {
			out[i] = a.Eval(v)
		}
	case Tanh:
		for i, v := range pre {
			out[i] = Tanh{}.Eval(v)
		}
	case ReLU:
		for i, v := range pre {
			out[i] = ReLU{}.Eval(v)
		}
	case LogCompress:
		for i, v := range pre {
			out[i] = LogCompress{}.Eval(v)
		}
	default:
		for i, v := range pre {
			out[i] = act.Eval(v)
		}
	}
}

// ScaleByDeriv multiplies dst[i] by act.Deriv(pre[i], y[i]) — the
// back-propagation step that folds the activation derivative into a delta
// row — with the same once-per-row devirtualization as EvalRow.
//
//nnwc:hotpath
func ScaleByDeriv(act Activation, pre, y, dst []float64) {
	pre, y = pre[:len(dst)], y[:len(dst)]
	switch a := act.(type) {
	case Identity:
		// Deriv is 1 everywhere.
	case Logistic:
		for i := range dst {
			dst[i] *= a.Deriv(pre[i], y[i])
		}
	case Tanh:
		for i := range dst {
			dst[i] *= Tanh{}.Deriv(pre[i], y[i])
		}
	case ReLU:
		for i := range dst {
			dst[i] *= ReLU{}.Deriv(pre[i], y[i])
		}
	case LogCompress:
		for i := range dst {
			dst[i] *= LogCompress{}.Deriv(pre[i], y[i])
		}
	default:
		for i := range dst {
			dst[i] *= act.Deriv(pre[i], y[i])
		}
	}
}

// ActivationByName reconstructs an activation from its Name() string,
// for model deserialization.
func ActivationByName(name string) (Activation, error) {
	switch name {
	case "tanh":
		return Tanh{}, nil
	case "relu":
		return ReLU{}, nil
	case "identity":
		return Identity{}, nil
	case "logcompress":
		return LogCompress{}, nil
	}
	var alpha float64
	if n, err := fmt.Sscanf(name, "logistic(%g)", &alpha); err == nil && n == 1 {
		return Logistic{Alpha: alpha}, nil
	}
	return nil, fmt.Errorf("nn: unknown activation %q", name)
}
