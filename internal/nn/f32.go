package nn

import (
	"fmt"

	"nnwc/internal/mat"
)

// This file implements the float32 inference path: training always runs in
// float64, but a trained network can be quantized once into a flat float32
// parameter vector and served through float32 forward kernels at roughly
// half the memory traffic. Quantization is a single round-to-nearest per
// parameter; the serve-plane accuracy contract is pinned by the f32/f64
// parity tests in internal/core (see DESIGN.md §13).

// QuantizeParams returns the network's flat parameter vector rounded once
// to float32, in the exact Params layout (per layer: row-major weights,
// then biases).
func (n *Network) QuantizeParams() []float32 {
	q := make([]float32, len(n.params))
	for i, v := range n.params {
		q[i] = float32(v)
	}
	return q
}

// layerF32 is one fully connected layer viewing a slice of a NetworkF32's
// flat parameter vector, mirroring Layer's weights-then-biases block.
type layerF32 struct {
	inputs, outputs int
	w               mat.Matrix32 // outputs × inputs weights, row-major view
	b               []float32    // outputs biases view
	act             Activation
}

// NetworkF32 is the quantized inference twin of Network: same topology and
// activations, parameters held in one flat []float32 with per-layer views.
// It only evaluates forward passes — there is no float32 training.
type NetworkF32 struct {
	layers []layerF32
	params []float32
}

// NetworkF32From builds the float32 twin of n from a quantized flat
// parameter vector laid out like Params (as produced by QuantizeParams and
// persisted in model artifacts). A nil params quantizes n's live parameters.
// The vector is copied, so the twin is immune to later retraining of n.
func NetworkF32From(n *Network, params []float32) (*NetworkF32, error) {
	if params == nil {
		params = n.QuantizeParams()
	} else {
		if len(params) != n.NumParams() {
			return nil, fmt.Errorf("nn: quantized vector has %d parameters, network has %d", len(params), n.NumParams())
		}
		params = append([]float32(nil), params...)
	}
	f := &NetworkF32{params: params}
	off := 0
	for _, l := range n.Layers {
		wspan := l.Outputs * l.Inputs
		f.layers = append(f.layers, layerF32{
			inputs:  l.Inputs,
			outputs: l.Outputs,
			w:       mat.Matrix32{Rows: l.Outputs, Cols: l.Inputs, Data: params[off : off+wspan]},
			b:       params[off+wspan : off+wspan+l.Outputs],
			act:     l.Act,
		})
		off += wspan + l.Outputs
	}
	return f, nil
}

// InputDim returns the expected input dimensionality.
func (f *NetworkF32) InputDim() int { return f.layers[0].inputs }

// OutputDim returns the output dimensionality.
func (f *NetworkF32) OutputDim() int { return f.layers[len(f.layers)-1].outputs }

// NumParams returns the total number of quantized parameters.
func (f *NetworkF32) NumParams() int { return len(f.params) }

// Params returns the flat quantized parameter vector (aliasing the live
// views, like Network.Params).
func (f *NetworkF32) Params() []float32 { return f.params }

// BatchWorkspace32 holds the per-layer float32 activation buffers batched
// f32 evaluation writes into; same grow-only, not-concurrency-safe contract
// as BatchWorkspace.
type BatchWorkspace32 struct {
	acts []*mat.Matrix32
	pres []*mat.Matrix32
}

func (ws *BatchWorkspace32) ensure(f *NetworkF32, batch int) {
	if len(ws.acts) != len(f.layers) {
		ws.acts = make([]*mat.Matrix32, len(f.layers))
		ws.pres = make([]*mat.Matrix32, len(f.layers))
		for i := range ws.acts {
			ws.acts[i] = &mat.Matrix32{}
			ws.pres[i] = &mat.Matrix32{}
		}
	}
	for i, l := range f.layers {
		ws.acts[i].Reshape(batch, l.outputs)
		ws.pres[i].Reshape(batch, l.outputs)
	}
}

// EvalRow32 applies act to every pre[i], writing out[i]. The activation
// arithmetic runs in float64 (one widening per element, one rounding back),
// so the f32 path reuses the exact math.Exp/Tanh code paths of the f64
// kernels and differs from them only by the float32 roundings.
//
//nnwc:hotpath
func EvalRow32(act Activation, pre, out []float32) {
	out = out[:len(pre)]
	switch a := act.(type) {
	case Identity:
		copy(out, pre)
	case Logistic:
		for i, v := range pre {
			out[i] = float32(a.Eval(float64(v)))
		}
	case Tanh:
		for i, v := range pre {
			out[i] = float32(Tanh{}.Eval(float64(v)))
		}
	case ReLU:
		for i, v := range pre {
			out[i] = float32(ReLU{}.Eval(float64(v)))
		}
	case LogCompress:
		for i, v := range pre {
			out[i] = float32(LogCompress{}.Eval(float64(v)))
		}
	default:
		for i, v := range pre {
			out[i] = float32(act.Eval(float64(v)))
		}
	}
}

// ForwardBatch runs the quantized network on every row of X and returns the
// output matrix, a view into ws valid until its next use. Steady-state
// calls perform zero allocation.
//
//nnwc:hotpath
func (f *NetworkF32) ForwardBatch(X *mat.Matrix32, ws *BatchWorkspace32) *mat.Matrix32 {
	if X.Cols != f.InputDim() {
		panic(fmt.Sprintf("nn: batch has %d columns, network expects %d inputs", X.Cols, f.InputDim()))
	}
	ws.ensure(f, X.Rows)
	in := X
	for i, l := range f.layers {
		out, pre := ws.acts[i], ws.pres[i]
		mat.MulTransBiasInto32(pre, in, &l.w, l.b)
		EvalRow32(l.act, pre.Data, out.Data)
		in = out
	}
	return in
}
