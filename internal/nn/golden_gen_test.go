package nn

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"nnwc/internal/rng"
)

// TestGenerateGoldenNetwork regenerates the golden serialization fixture.
// It only runs when NNWC_GEN_GOLDEN=1; the committed fixture was produced
// by the pre-flat-weights implementation so the round-trip test proves
// format compatibility across the refactor.
func TestGenerateGoldenNetwork(t *testing.T) {
	if os.Getenv("NNWC_GEN_GOLDEN") != "1" {
		t.Skip("set NNWC_GEN_GOLDEN=1 to regenerate golden files")
	}
	src := rng.New(20260805)
	net := NewNetwork([]int{4, 6, 3}, Logistic{Alpha: 1.5}, Identity{})
	XavierInit{}.Init(net, src)
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("testdata/golden_network.json", buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	// Record predictions at fixed probe points so the post-refactor loader
	// can be checked bit-for-bit.
	probes := [][]float64{
		{0, 0, 0, 0},
		{1, -1, 0.5, 2},
		{-0.3, 0.7, -1.9, 0.01},
		{10, -10, 3, -3},
	}
	var preds [][]float64
	for _, x := range probes {
		preds = append(preds, net.Forward(x))
	}
	doc := map[string]interface{}{"probes": probes, "predictions": preds}
	out, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("testdata/golden_network_predictions.json", out, 0o644); err != nil {
		t.Fatal(err)
	}
}
