package nn

import (
	"bytes"
	"testing"
)

// FuzzLoad asserts network deserialization never panics and that anything
// it accepts is a usable network.
func FuzzLoad(f *testing.F) {
	// Seed with a valid network.
	net := NewNetwork([]int{2, 3, 1}, Tanh{}, Identity{})
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"layers":[]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"layers":[{"inputs":1,"outputs":1,"activation":"tanh","w":[[1]],"b":[0]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted networks must be evaluable on a zero input.
		x := make([]float64, n.InputDim())
		out := n.Forward(x)
		if len(out) != n.OutputDim() {
			t.Fatal("accepted network produced wrong output arity")
		}
	})
}

// FuzzActivationByName asserts the parser never panics and round-trips
// whatever it accepts.
func FuzzActivationByName(f *testing.F) {
	for _, s := range []string{"tanh", "relu", "identity", "logcompress", "logistic(1)", "logistic(-2.5)", "nope", ""} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, name string) {
		act, err := ActivationByName(name)
		if err != nil {
			return
		}
		back, err := ActivationByName(act.Name())
		if err != nil {
			t.Fatalf("accepted activation %q does not round trip: %v", name, err)
		}
		if back.Eval(0.5) != act.Eval(0.5) {
			t.Fatalf("round-tripped activation differs for %q", name)
		}
	})
}
