package nn

import (
	"fmt"

	"nnwc/internal/mat"
)

// BatchWorkspace holds the per-layer activation and pre-activation buffers
// batched evaluation writes into. The zero value is ready to use; buffers
// are allocated on first use and grown (never shrunk) as batch sizes and
// topologies require, so steady-state forward/backward passes allocate
// nothing. A workspace must not be shared between concurrent goroutines.
type BatchWorkspace struct {
	acts    []*mat.Matrix // layer outputs; acts[i] belongs to layer i
	pres    []*mat.Matrix // layer pre-activations
	actsAll []*mat.Matrix // [input, acts...] assembled per call
}

// ensure sizes the workspace for a batch of the given row count through net.
func (ws *BatchWorkspace) ensure(n *Network, batch int) {
	if len(ws.acts) != len(n.Layers) {
		ws.acts = make([]*mat.Matrix, len(n.Layers))
		ws.pres = make([]*mat.Matrix, len(n.Layers))
		ws.actsAll = make([]*mat.Matrix, len(n.Layers)+1)
		for i := range ws.acts {
			ws.acts[i] = &mat.Matrix{}
			ws.pres[i] = &mat.Matrix{}
		}
	}
	for i, l := range n.Layers {
		ws.acts[i].Reshape(batch, l.Outputs)
		ws.pres[i].Reshape(batch, l.Outputs)
	}
}

// ForwardTraceBatch runs the network on every row of X (one sample per
// row) and returns per-layer activation and pre-activation matrices:
// acts[0] is X itself, acts[i+1] and pres[i] belong to layer i. The
// returned matrices are views into ws and stay valid only until its next
// use. Steady-state calls perform zero allocation.
//
// Row r of every returned matrix is bit-identical to what the per-sample
// ForwardTrace produces for X.Row(r): the batched kernels accumulate in the
// same order, so batching is a pure throughput optimization.
//
//nnwc:hotpath
func (n *Network) ForwardTraceBatch(X *mat.Matrix, ws *BatchWorkspace) (acts, pres []*mat.Matrix) {
	if X.Cols != n.InputDim() {
		panic(fmt.Sprintf("nn: batch has %d columns, network expects %d inputs", X.Cols, n.InputDim()))
	}
	ws.ensure(n, X.Rows)
	ws.actsAll[0] = X
	in := X
	for i, l := range n.Layers {
		out, pre := ws.acts[i], ws.pres[i]
		// One tiled affine kernel for the whole batch, then the activation
		// over the flat backing array — the row-major flattening visits
		// elements in the same per-row ascending order as the per-sample
		// path, so both stay bit-identical to forwardInto.
		mat.MulTransBiasInto(pre, in, l.W, l.B)
		EvalRow(l.Act, pre.Data, out.Data)
		ws.actsAll[i+1] = out
		in = out
	}
	return ws.actsAll, ws.pres
}

// ForwardBatch runs the network on every row of X and returns the output
// matrix (one prediction per row), a view into ws valid until its next use.
//
//nnwc:hotpath
func (n *Network) ForwardBatch(X *mat.Matrix, ws *BatchWorkspace) *mat.Matrix {
	acts, _ := n.ForwardTraceBatch(X, ws)
	return acts[len(acts)-1]
}
