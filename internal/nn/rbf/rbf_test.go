package rbf

import (
	"math"
	"testing"

	"nnwc/internal/rng"
)

func TestFitsSmoothFunction(t *testing.T) {
	src := rng.New(1)
	var xs, ys [][]float64
	for i := 0; i < 200; i++ {
		a, b := src.Uniform(-2, 2), src.Uniform(-2, 2)
		xs = append(xs, []float64{a, b})
		ys = append(ys, []float64{math.Sin(a) + 0.5*b*b})
	}
	net, err := Fit(xs, ys, Config{Centers: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	probe := rng.New(3)
	for i := 0; i < 50; i++ {
		a, b := probe.Uniform(-1.5, 1.5), probe.Uniform(-1.5, 1.5)
		want := math.Sin(a) + 0.5*b*b
		got := net.Predict([]float64{a, b})[0]
		if d := math.Abs(got - want); d > worst {
			worst = d
		}
	}
	if worst > 0.25 {
		t.Fatalf("worst interpolation error %v", worst)
	}
}

func TestExactInterpolationWithCenterPerSample(t *testing.T) {
	// With one centre per sample and a tiny ridge, the RBF system can
	// nearly interpolate the training data.
	src := rng.New(4)
	var xs, ys [][]float64
	for i := 0; i < 25; i++ {
		a := src.Uniform(-3, 3)
		xs = append(xs, []float64{a})
		ys = append(ys, []float64{a * a})
	}
	net, err := Fit(xs, ys, Config{Centers: 25, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := range xs {
		d := net.Predict(xs[i])[0] - ys[i][0]
		sum += d * d
	}
	if rmse := math.Sqrt(sum / float64(len(xs))); rmse > 0.2 {
		t.Fatalf("training RMSE %v", rmse)
	}
}

func TestMultiOutput(t *testing.T) {
	src := rng.New(6)
	var xs, ys [][]float64
	for i := 0; i < 80; i++ {
		a := src.Uniform(0, 4)
		xs = append(xs, []float64{a})
		ys = append(ys, []float64{a, 2 * a})
	}
	net, err := Fit(xs, ys, Config{Centers: 15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if net.OutputDim() != 2 || net.InputDim() != 1 {
		t.Fatalf("dims %d→%d", net.InputDim(), net.OutputDim())
	}
	out := net.Predict([]float64{2})
	if math.Abs(out[1]-2*out[0]) > 0.5 {
		t.Fatalf("outputs inconsistent: %v", out)
	}
	all := net.PredictAll(xs[:3])
	if len(all) != 3 {
		t.Fatal("PredictAll wrong length")
	}
}

func TestCentersClampedToSampleCount(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}}
	ys := [][]float64{{1}, {2}, {3}}
	net, err := Fit(xs, ys, Config{Centers: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Centers) > 3 {
		t.Fatalf("%d centers from 3 samples", len(net.Centers))
	}
}

func TestErrors(t *testing.T) {
	if _, err := Fit(nil, nil, Config{}); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Fit([][]float64{{1}}, [][]float64{{1}, {2}}, Config{}); err == nil {
		t.Fatal("mismatched counts accepted")
	}
	if _, err := Fit([][]float64{{1, 2}, {3}}, [][]float64{{1}, {2}}, Config{Centers: 2}); err == nil {
		t.Fatal("ragged rows accepted")
	}
}

func TestDeterministicInSeed(t *testing.T) {
	src := rng.New(8)
	var xs, ys [][]float64
	for i := 0; i < 40; i++ {
		a := src.Uniform(-1, 1)
		xs = append(xs, []float64{a})
		ys = append(ys, []float64{math.Exp(a)})
	}
	a, err := Fit(xs, ys, Config{Centers: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(xs, ys, Config{Centers: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Predict([]float64{0.3})[0] != b.Predict([]float64{0.3})[0] {
		t.Fatal("same seed gave different RBF networks")
	}
}

func TestDuplicatePointsSurvive(t *testing.T) {
	// All-identical inputs must not crash k-means or widths.
	xs := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	ys := [][]float64{{2}, {2}, {2}, {2}}
	net, err := Fit(xs, ys, Config{Centers: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := net.Predict([]float64{1, 1})[0]; math.Abs(got-2) > 0.2 {
		t.Fatalf("degenerate fit predicts %v", got)
	}
}

func TestWidthScaleSmooths(t *testing.T) {
	src := rng.New(10)
	var xs, ys [][]float64
	for i := 0; i < 60; i++ {
		a := src.Uniform(-2, 2)
		xs = append(xs, []float64{a})
		ys = append(ys, []float64{math.Sin(3*a) + src.NormMeanStd(0, 0.2)})
	}
	sharp, err := Fit(xs, ys, Config{Centers: 30, WidthScale: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	smooth, err := Fit(xs, ys, Config{Centers: 30, WidthScale: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The smoother net's training error should be higher (it averages the
	// noise rather than chasing it).
	errOf := func(n *Network) float64 {
		var s float64
		for i := range xs {
			d := n.Predict(xs[i])[0] - ys[i][0]
			s += d * d
		}
		return s
	}
	if errOf(smooth) <= errOf(sharp) {
		t.Fatal("larger widths should fit training data more loosely")
	}
}

func BenchmarkRBFFit(b *testing.B) {
	src := rng.New(1)
	var xs, ys [][]float64
	for i := 0; i < 160; i++ {
		x := []float64{src.Float64(), src.Float64(), src.Float64(), src.Float64()}
		xs = append(xs, x)
		ys = append(ys, []float64{x[0] * x[1], x[2] + x[3]})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(xs, ys, Config{Centers: 24, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
