// Package rbf implements radial-basis-function networks, the other
// function-approximation architecture the paper's §2.1 names alongside
// MLPs ("In the function approximation area, single or multilayer
// perceptrons and Radial Bases Function (RBF) networks are used").
//
// The network has one hidden layer of Gaussian units centred at prototype
// points and a linear output layer. Training is the classical two-stage
// scheme: (1) place the centres with k-means on the input cloud and set
// each unit's width from the distance to its nearest neighbouring centre;
// (2) solve the output weights as a (ridge-regularized) linear
// least-squares problem. Stage 2 is convex, so an RBF network trains in a
// single closed-form solve — a useful contrast to back-propagation in the
// model-comparison experiments.
package rbf

import (
	"errors"
	"fmt"
	"math"

	"nnwc/internal/linear"
	"nnwc/internal/rng"
	"nnwc/internal/stats"
)

// Config controls RBF construction.
type Config struct {
	// Centers is the number of hidden units (k-means clusters). Values
	// larger than the sample count are clamped.
	Centers int
	// WidthScale multiplies the nearest-neighbour width heuristic;
	// 1 is the usual choice, larger values smooth the fit.
	WidthScale float64
	// Lambda is the ridge penalty of the output solve.
	Lambda float64
	// KMeansIters bounds the Lloyd iterations (default 50).
	KMeansIters int
	// Seed drives the k-means initialization.
	Seed uint64
}

func (c Config) defaults() Config {
	if c.Centers <= 0 {
		c.Centers = 10
	}
	if c.WidthScale <= 0 {
		c.WidthScale = 1
	}
	if c.KMeansIters <= 0 {
		c.KMeansIters = 50
	}
	if c.Lambda < 0 {
		c.Lambda = 0
	}
	return c
}

// Network is a trained RBF network.
type Network struct {
	Centers [][]float64 // k × n prototype points
	Gammas  []float64   // per-unit 1/(2σ²)
	Out     *linear.Model
}

// Fit trains an RBF network mapping xs rows to ys rows.
func Fit(xs, ys [][]float64, cfg Config) (*Network, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, errors.New("rbf: need equal, non-zero sample counts")
	}
	cfg = cfg.defaults()
	k := cfg.Centers
	if k > len(xs) {
		k = len(xs)
	}

	centers, err := kMeans(xs, k, cfg.KMeansIters, rng.New(cfg.Seed))
	if err != nil {
		return nil, err
	}

	// Width heuristic: σ_i = WidthScale × distance to the nearest other
	// centre (or the mean pairwise distance when there is one centre).
	gammas := make([]float64, len(centers))
	for i := range centers {
		d := nearestOtherCenter(centers, i)
		if stats.ExactZero(d) {
			d = 1
		}
		sigma := cfg.WidthScale * d
		gammas[i] = 1 / (2 * sigma * sigma)
	}

	// Output layer: linear least squares on the hidden activations.
	hidden := make([][]float64, len(xs))
	for r, x := range xs {
		hidden[r] = activations(centers, gammas, x)
	}
	out, err := linear.Fit(hidden, ys, linear.Options{Lambda: math.Max(cfg.Lambda, 1e-10)})
	if err != nil {
		return nil, fmt.Errorf("rbf: output solve: %w", err)
	}
	return &Network{Centers: centers, Gammas: gammas, Out: out}, nil
}

// Predict evaluates the network on one input.
func (n *Network) Predict(x []float64) []float64 {
	return n.Out.Predict(activations(n.Centers, n.Gammas, x))
}

// PredictAll maps Predict over rows.
func (n *Network) PredictAll(xs [][]float64) [][]float64 {
	out := make([][]float64, len(xs))
	for i, x := range xs {
		out[i] = n.Predict(x)
	}
	return out
}

// InputDim returns the input dimensionality.
func (n *Network) InputDim() int { return len(n.Centers[0]) }

// OutputDim returns the output dimensionality.
func (n *Network) OutputDim() int { return n.Out.OutputDim() }

func activations(centers [][]float64, gammas []float64, x []float64) []float64 {
	h := make([]float64, len(centers))
	for i, c := range centers {
		h[i] = math.Exp(-gammas[i] * sqDist(c, x))
	}
	return h
}

func sqDist(a, b []float64) float64 {
	var s float64
	for j := range a {
		d := a[j] - b[j]
		s += d * d
	}
	return s
}

func nearestOtherCenter(centers [][]float64, i int) float64 {
	best := math.Inf(1)
	for j := range centers {
		if j == i {
			continue
		}
		if d := math.Sqrt(sqDist(centers[i], centers[j])); d < best {
			best = d
		}
	}
	if math.IsInf(best, 1) {
		return 1
	}
	return best
}

// kMeans clusters xs into k prototypes with Lloyd's algorithm, seeded by
// k-means++ style sampling.
func kMeans(xs [][]float64, k, iters int, src *rng.Source) ([][]float64, error) {
	n := len(xs)
	dim := len(xs[0])
	for _, x := range xs {
		if len(x) != dim {
			return nil, errors.New("rbf: ragged input rows")
		}
	}

	// k-means++ initialization.
	centers := make([][]float64, 0, k)
	first := xs[src.Intn(n)]
	centers = append(centers, append([]float64(nil), first...))
	dist := make([]float64, n)
	for len(centers) < k {
		var total float64
		for i, x := range xs {
			best := math.Inf(1)
			for _, c := range centers {
				if d := sqDist(x, c); d < best {
					best = d
				}
			}
			dist[i] = best
			total += best
		}
		if stats.ExactZero(total) {
			// All remaining points coincide with existing centers;
			// duplicate one with a deterministic jitterless copy.
			centers = append(centers, append([]float64(nil), xs[src.Intn(n)]...))
			continue
		}
		target := src.Float64() * total
		var acc float64
		pick := n - 1
		for i, d := range dist {
			acc += d
			if acc >= target {
				pick = i
				break
			}
		}
		centers = append(centers, append([]float64(nil), xs[pick]...))
	}

	assign := make([]int, n)
	counts := make([]int, k)
	for iter := 0; iter < iters; iter++ {
		changed := false
		for i, x := range xs {
			best, bestD := 0, math.Inf(1)
			for ci, c := range centers {
				if d := sqDist(x, c); d < bestD {
					best, bestD = ci, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute the centroids.
		for ci := range centers {
			counts[ci] = 0
			for j := range centers[ci] {
				centers[ci][j] = 0
			}
		}
		for i, x := range xs {
			ci := assign[i]
			counts[ci]++
			for j, v := range x {
				centers[ci][j] += v
			}
		}
		for ci := range centers {
			if counts[ci] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(centers[ci], xs[src.Intn(n)])
				continue
			}
			for j := range centers[ci] {
				centers[ci][j] /= float64(counts[ci])
			}
		}
	}
	return centers, nil
}
