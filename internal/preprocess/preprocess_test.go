package preprocess

import (
	"math"
	"testing"
	"testing/quick"

	"nnwc/internal/rng"
	"nnwc/internal/stats"
)

func randomRows(src *rng.Source, n, cols int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, cols)
		for j := range rows[i] {
			rows[i][j] = src.Uniform(-50, 200)
		}
	}
	return rows
}

func TestStandardizerMoments(t *testing.T) {
	src := rng.New(1)
	rows := randomRows(src, 200, 3)
	s := NewStandardizer()
	if err := s.Fit(rows); err != nil {
		t.Fatal(err)
	}
	out := TransformAll(s, rows)
	for j := 0; j < 3; j++ {
		col := make([]float64, len(out))
		for i := range out {
			col[i] = out[i][j]
		}
		if m := stats.Mean(col); math.Abs(m) > 1e-9 {
			t.Fatalf("column %d mean %v after standardization", j, m)
		}
		if sd := stats.StdDev(col); math.Abs(sd-1) > 1e-9 {
			t.Fatalf("column %d std %v after standardization", j, sd)
		}
	}
}

func TestStandardizerInverseRoundTrip(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := rng.New(seed)
		rows := randomRows(src, 20, 4)
		s := NewStandardizer()
		if err := s.Fit(rows); err != nil {
			return false
		}
		probe := rows[src.Intn(len(rows))]
		back := s.Inverse(s.Transform(probe))
		for j := range probe {
			if math.Abs(back[j]-probe[j]) > 1e-9*(1+math.Abs(probe[j])) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStandardizerConstantColumn(t *testing.T) {
	rows := [][]float64{{5, 1}, {5, 2}, {5, 3}}
	s := NewStandardizer()
	if err := s.Fit(rows); err != nil {
		t.Fatal(err)
	}
	out := s.Transform([]float64{5, 2})
	if math.IsNaN(out[0]) || math.IsInf(out[0], 0) {
		t.Fatalf("constant column produced %v", out[0])
	}
	if out[0] != 0 {
		t.Fatalf("constant column should center to 0, got %v", out[0])
	}
}

func TestStandardizerUnfittedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Transform before Fit did not panic")
		}
	}()
	NewStandardizer().Transform([]float64{1})
}

func TestStandardizerDimsMismatchPanics(t *testing.T) {
	s := NewStandardizer()
	if err := s.Fit([][]float64{{1, 2}, {3, 4}}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("dim mismatch did not panic")
		}
	}()
	s.Transform([]float64{1, 2, 3})
}

func TestStandardizerAccessors(t *testing.T) {
	s := NewStandardizer()
	if err := s.Fit([][]float64{{0, 10}, {2, 30}}); err != nil {
		t.Fatal(err)
	}
	if s.Dims() != 2 {
		t.Fatalf("Dims %d", s.Dims())
	}
	mean, std := s.Mean(), s.Std()
	if mean[0] != 1 || mean[1] != 20 {
		t.Fatalf("mean %v", mean)
	}
	if std[0] != 1 || std[1] != 10 {
		t.Fatalf("std %v", std)
	}
	// Accessors must return copies.
	mean[0] = 999
	if s.Mean()[0] == 999 {
		t.Fatal("Mean returned internal storage")
	}
}

func TestFitErrors(t *testing.T) {
	for _, s := range []Scaler{NewStandardizer(), NewMinMax(0, 1), NewIdentity()} {
		if err := s.Fit(nil); err == nil {
			t.Errorf("%T accepted empty rows", s)
		}
		if err := s.Fit([][]float64{{}}); err == nil {
			t.Errorf("%T accepted zero columns", s)
		}
		if err := s.Fit([][]float64{{1, 2}, {3}}); err == nil {
			t.Errorf("%T accepted ragged rows", s)
		}
	}
}

func TestMinMaxRange(t *testing.T) {
	rows := [][]float64{{0, -10}, {10, 10}, {5, 0}}
	m := NewMinMax(0, 1)
	if err := m.Fit(rows); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		out := m.Transform(r)
		for _, v := range out {
			if v < 0 || v > 1 {
				t.Fatalf("MinMax output %v outside [0,1]", v)
			}
		}
	}
	lo := m.Transform([]float64{0, -10})
	hi := m.Transform([]float64{10, 10})
	if lo[0] != 0 || lo[1] != 0 || hi[0] != 1 || hi[1] != 1 {
		t.Fatalf("extremes map to %v and %v", lo, hi)
	}
}

func TestMinMaxInverse(t *testing.T) {
	rows := [][]float64{{3}, {9}}
	m := NewMinMax(-1, 1)
	if err := m.Fit(rows); err != nil {
		t.Fatal(err)
	}
	back := m.Inverse(m.Transform([]float64{6}))
	if math.Abs(back[0]-6) > 1e-12 {
		t.Fatalf("inverse round trip: %v", back[0])
	}
}

func TestMinMaxBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMinMax(1, 0) did not panic")
		}
	}()
	NewMinMax(1, 0)
}

func TestIdentityPassThrough(t *testing.T) {
	id := NewIdentity()
	if err := id.Fit([][]float64{{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	if id.Dims() != 3 {
		t.Fatalf("Dims %d", id.Dims())
	}
	in := []float64{4, 5, 6}
	out := id.Transform(in)
	for j := range in {
		if out[j] != in[j] {
			t.Fatal("identity changed values")
		}
	}
	// Must be a copy, not the same slice.
	out[0] = 99
	if in[0] == 99 {
		t.Fatal("identity returned the input slice")
	}
	inv := id.Inverse(in)
	if inv[2] != 6 {
		t.Fatal("identity inverse wrong")
	}
}

func TestTransformAllInverseAll(t *testing.T) {
	src := rng.New(3)
	rows := randomRows(src, 10, 2)
	s := NewStandardizer()
	if err := s.Fit(rows); err != nil {
		t.Fatal(err)
	}
	back := InverseAll(s, TransformAll(s, rows))
	for i := range rows {
		for j := range rows[i] {
			if math.Abs(back[i][j]-rows[i][j]) > 1e-9 {
				t.Fatal("TransformAll/InverseAll round trip failed")
			}
		}
	}
}
