// Package preprocess implements the sample pre-processing step of §3.1:
// z-score standardization of configuration parameters (always) and of
// performance indicators (when approximating several at once), so that
// gradient-descent back-propagation does not start with hyperplanes that
// miss the sample cloud and fall into local minima.
//
// Scalers follow the fit/transform/inverse-transform contract: Fit learns
// the column statistics from training data only; Transform and Inverse are
// then deterministic maps usable on unseen data.
package preprocess

import (
	"errors"
	"fmt"
	"math"

	"nnwc/internal/stats"
)

// ErrNotFitted is returned when Transform or Inverse is called before Fit.
var ErrNotFitted = errors.New("preprocess: scaler has not been fitted")

// Scaler maps row vectors to a normalized space and back.
type Scaler interface {
	// Fit learns the transform from the given rows.
	Fit(rows [][]float64) error
	// Transform maps one row into normalized space, returning a new slice.
	Transform(row []float64) []float64
	// Inverse maps one normalized row back to the original space.
	Inverse(row []float64) []float64
	// Dims returns the column count the scaler was fitted with, or 0.
	Dims() int
}

// Standardizer is the paper's z-score scaler: (x − mean) / std per column.
// Columns with zero variance are passed through centered only (divisor 1),
// so constant configuration parameters do not produce NaNs.
type Standardizer struct {
	mean, std []float64
}

// NewStandardizer returns an unfitted Standardizer.
func NewStandardizer() *Standardizer { return &Standardizer{} }

// Fit learns per-column mean and standard deviation.
func (s *Standardizer) Fit(rows [][]float64) error {
	cols, err := columnCount(rows)
	if err != nil {
		return err
	}
	s.mean = make([]float64, cols)
	s.std = make([]float64, cols)
	col := make([]float64, len(rows))
	for j := 0; j < cols; j++ {
		for i, r := range rows {
			col[i] = r[j]
		}
		s.mean[j] = stats.Mean(col)
		sd := stats.StdDev(col)
		if stats.ExactZero(sd) {
			sd = 1
		}
		s.std[j] = sd
	}
	return nil
}

// Transform standardizes one row.
func (s *Standardizer) Transform(row []float64) []float64 {
	s.mustFitted(len(row))
	out := make([]float64, len(row))
	for j, v := range row {
		out[j] = (v - s.mean[j]) / s.std[j]
	}
	return out
}

// Inverse undoes Transform.
func (s *Standardizer) Inverse(row []float64) []float64 {
	s.mustFitted(len(row))
	out := make([]float64, len(row))
	for j, v := range row {
		out[j] = v*s.std[j] + s.mean[j]
	}
	return out
}

// Dims returns the fitted column count.
func (s *Standardizer) Dims() int { return len(s.mean) }

// Mean returns the fitted per-column means (a copy).
func (s *Standardizer) Mean() []float64 { return append([]float64(nil), s.mean...) }

// Std returns the fitted per-column standard deviations (a copy).
func (s *Standardizer) Std() []float64 { return append([]float64(nil), s.std...) }

func (s *Standardizer) mustFitted(n int) {
	if len(s.mean) == 0 {
		panic(ErrNotFitted)
	}
	if n != len(s.mean) {
		panic(fmt.Sprintf("preprocess: row has %d columns, scaler fitted with %d", n, len(s.mean)))
	}
}

// MinMax scales each column linearly into [lo, hi]. It is provided as an
// alternative normalization for comparison with the paper's z-score choice.
type MinMax struct {
	lo, hi     float64
	min, rangw []float64
}

// NewMinMax returns a scaler targeting [lo, hi]. It panics if hi <= lo.
func NewMinMax(lo, hi float64) *MinMax {
	if hi <= lo {
		panic("preprocess: MinMax requires hi > lo")
	}
	return &MinMax{lo: lo, hi: hi}
}

// Fit learns per-column minima and ranges.
func (m *MinMax) Fit(rows [][]float64) error {
	cols, err := columnCount(rows)
	if err != nil {
		return err
	}
	m.min = make([]float64, cols)
	m.rangw = make([]float64, cols)
	for j := 0; j < cols; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range rows {
			if r[j] < lo {
				lo = r[j]
			}
			if r[j] > hi {
				hi = r[j]
			}
		}
		m.min[j] = lo
		w := hi - lo
		if stats.ExactZero(w) {
			w = 1
		}
		m.rangw[j] = w
	}
	return nil
}

// Transform maps one row into [lo, hi] per column.
func (m *MinMax) Transform(row []float64) []float64 {
	m.mustFitted(len(row))
	out := make([]float64, len(row))
	for j, v := range row {
		out[j] = m.lo + (m.hi-m.lo)*(v-m.min[j])/m.rangw[j]
	}
	return out
}

// Inverse undoes Transform.
func (m *MinMax) Inverse(row []float64) []float64 {
	m.mustFitted(len(row))
	out := make([]float64, len(row))
	for j, v := range row {
		out[j] = m.min[j] + (v-m.lo)/(m.hi-m.lo)*m.rangw[j]
	}
	return out
}

// Dims returns the fitted column count.
func (m *MinMax) Dims() int { return len(m.min) }

func (m *MinMax) mustFitted(n int) {
	if len(m.min) == 0 {
		panic(ErrNotFitted)
	}
	if n != len(m.min) {
		panic(fmt.Sprintf("preprocess: row has %d columns, scaler fitted with %d", n, len(m.min)))
	}
}

// Identity is a no-op Scaler, used when the paper's protocol says not to
// standardize (single performance indicator, §3.1).
type Identity struct{ dims int }

// NewIdentity returns an Identity scaler.
func NewIdentity() *Identity { return &Identity{} }

// Fit records the column count.
func (id *Identity) Fit(rows [][]float64) error {
	cols, err := columnCount(rows)
	if err != nil {
		return err
	}
	id.dims = cols
	return nil
}

// Transform returns a copy of row.
func (id *Identity) Transform(row []float64) []float64 {
	return append([]float64(nil), row...)
}

// Inverse returns a copy of row.
func (id *Identity) Inverse(row []float64) []float64 {
	return append([]float64(nil), row...)
}

// Dims returns the fitted column count.
func (id *Identity) Dims() int { return id.dims }

// TransformInto standardizes row into caller-owned dst (same length) without
// allocating for the scalers this package ships, devirtualizing on the
// concrete type once per row like nn.EvalRow; unknown Scaler implementations
// fall back to the allocating Transform. The arithmetic per element is
// identical to Transform. dst may alias row.
//
//nnwc:hotpath
func TransformInto(s Scaler, dst, row []float64) {
	if len(dst) != len(row) {
		panic(fmt.Sprintf("preprocess: TransformInto dst has %d entries, row %d", len(dst), len(row)))
	}
	switch sc := s.(type) {
	case *Standardizer:
		sc.mustFitted(len(row))
		for j, v := range row {
			dst[j] = (v - sc.mean[j]) / sc.std[j]
		}
	case *MinMax:
		sc.mustFitted(len(row))
		for j, v := range row {
			dst[j] = sc.lo + (sc.hi-sc.lo)*(v-sc.min[j])/sc.rangw[j]
		}
	case *Identity:
		copy(dst, row)
	default:
		transformFallback(s, dst, row)
	}
}

// transformFallback serves foreign Scaler implementations through the
// allocating Transform; the shipped scalers take the in-place paths in
// TransformInto. Kept out of the hot-path tag so the allocation is
// attributed to the foreign scaler, not the kernel.
func transformFallback(s Scaler, dst, row []float64) {
	copy(dst, s.Transform(row))
}

// InverseInto undoes TransformInto into caller-owned dst with the same
// devirtualization and zero-allocation contract. dst may alias row.
//
//nnwc:hotpath
func InverseInto(s Scaler, dst, row []float64) {
	if len(dst) != len(row) {
		panic(fmt.Sprintf("preprocess: InverseInto dst has %d entries, row %d", len(dst), len(row)))
	}
	switch sc := s.(type) {
	case *Standardizer:
		sc.mustFitted(len(row))
		for j, v := range row {
			dst[j] = v*sc.std[j] + sc.mean[j]
		}
	case *MinMax:
		sc.mustFitted(len(row))
		for j, v := range row {
			dst[j] = sc.min[j] + (v-sc.lo)/(sc.hi-sc.lo)*sc.rangw[j]
		}
	case *Identity:
		copy(dst, row)
	default:
		inverseFallback(s, dst, row)
	}
}

// inverseFallback is transformFallback's counterpart for Inverse.
func inverseFallback(s Scaler, dst, row []float64) {
	copy(dst, s.Inverse(row))
}

// TransformAll applies s.Transform to every row.
func TransformAll(s Scaler, rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = s.Transform(r)
	}
	return out
}

// InverseAll applies s.Inverse to every row.
func InverseAll(s Scaler, rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = s.Inverse(r)
	}
	return out
}

func columnCount(rows [][]float64) (int, error) {
	if len(rows) == 0 {
		return 0, errors.New("preprocess: cannot fit on zero rows")
	}
	cols := len(rows[0])
	if cols == 0 {
		return 0, errors.New("preprocess: cannot fit on zero columns")
	}
	for i, r := range rows {
		if len(r) != cols {
			return 0, fmt.Errorf("preprocess: row %d has %d columns, want %d", i, len(r), cols)
		}
	}
	return cols, nil
}
