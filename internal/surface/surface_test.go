package surface

import (
	"math"
	"testing"
)

// funcPredictor adapts a plain function to core.Predictor for testing.
type funcPredictor func(x []float64) []float64

func (f funcPredictor) Predict(x []float64) []float64 { return f(x) }

func grid2D(f func(x, y float64) float64, xs, ys []float64) *Grid {
	sl := Slice{
		Fixed:   []float64{0, 0},
		XIndex:  0,
		YIndex:  1,
		XValues: xs,
		YValues: ys,
		Output:  0,
	}
	p := funcPredictor(func(v []float64) []float64 { return []float64{f(v[0], v[1])} })
	g, err := Evaluate(p, sl, 2, 1)
	if err != nil {
		panic(err)
	}
	return g
}

func TestEvaluateFillsGrid(t *testing.T) {
	g := grid2D(func(x, y float64) float64 { return x + 10*y }, Linspace(0, 3, 4), Linspace(0, 2, 3))
	if len(g.Z) != 4 || len(g.Z[0]) != 3 {
		t.Fatalf("grid shape %dx%d", len(g.Z), len(g.Z[0]))
	}
	if g.Z[2][1] != 2+10*1 {
		t.Fatalf("Z[2][1] = %v", g.Z[2][1])
	}
}

func TestEvaluatePreservesFixedValues(t *testing.T) {
	var seen []float64
	p := funcPredictor(func(v []float64) []float64 {
		seen = append([]float64(nil), v...)
		return []float64{0}
	})
	sl := Slice{
		Fixed:   []float64{560, 0, 16, 0},
		XIndex:  1,
		YIndex:  3,
		XValues: []float64{5, 6},
		YValues: []float64{7, 8},
		Output:  0,
	}
	if _, err := Evaluate(p, sl, 4, 1); err != nil {
		t.Fatal(err)
	}
	if seen[0] != 560 || seen[2] != 16 {
		t.Fatalf("fixed entries were clobbered: %v", seen)
	}
}

func TestSliceValidation(t *testing.T) {
	good := Slice{Fixed: []float64{0, 0}, XIndex: 0, YIndex: 1,
		XValues: []float64{1, 2}, YValues: []float64{1, 2}, Output: 0}
	if err := good.Validate(2, 1); err != nil {
		t.Fatal(err)
	}
	cases := []Slice{
		{Fixed: []float64{0}, XIndex: 0, YIndex: 1, XValues: []float64{1, 2}, YValues: []float64{1, 2}},               // fixed too short
		{Fixed: []float64{0, 0}, XIndex: 0, YIndex: 0, XValues: []float64{1, 2}, YValues: []float64{1, 2}},            // same axis twice
		{Fixed: []float64{0, 0}, XIndex: 0, YIndex: 5, XValues: []float64{1, 2}, YValues: []float64{1, 2}},            // out of range
		{Fixed: []float64{0, 0}, XIndex: 0, YIndex: 1, XValues: []float64{1}, YValues: []float64{1, 2}},               // 1-point grid
		{Fixed: []float64{0, 0}, XIndex: 0, YIndex: 1, XValues: []float64{1, 2}, YValues: []float64{1, 2}, Output: 3}, // output range
	}
	for i, s := range cases {
		if err := s.Validate(2, 1); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestMinMaxRange(t *testing.T) {
	g := grid2D(func(x, y float64) float64 { return x * y }, Linspace(-2, 2, 5), Linspace(-3, 3, 7))
	lo, lx, ly := g.Min()
	hi, hx, hy := g.Max()
	if lo != -6 || hi != 6 {
		t.Fatalf("min %v max %v", lo, hi)
	}
	if lx*ly != -6 || hx*hy != 6 {
		t.Fatalf("extrema coordinates wrong: (%v,%v) (%v,%v)", lx, ly, hx, hy)
	}
	if g.Range() != 12 {
		t.Fatalf("range %v", g.Range())
	}
}

func TestClassifyFlat(t *testing.T) {
	g := grid2D(func(x, y float64) float64 { return 100 + 0.001*x }, Linspace(0, 1, 5), Linspace(0, 1, 5))
	a := Classify(g)
	if a.Shape != ShapeFlat {
		t.Fatalf("flat surface classified as %s", a.Shape)
	}
}

func TestClassifyParallelSlopes(t *testing.T) {
	// Strong dependence on y, none on x — the paper's Figure 4.
	g := grid2D(func(x, y float64) float64 { return 100 - 8*y }, Linspace(0, 10, 8), Linspace(0, 10, 8))
	a := Classify(g)
	if a.Shape != ShapeParallelSlopes {
		t.Fatalf("parallel slopes classified as %s (x %v y %v)", a.Shape, a.XEffect, a.YEffect)
	}
}

func TestClassifyValley(t *testing.T) {
	// Bowl along x for every y, with y pulling its own weight — the
	// paper's Figure 7 trench, where both parameters matter.
	g := grid2D(func(x, y float64) float64 {
		return 50 + 3*(x-5)*(x-5) + 8*y
	}, Linspace(0, 10, 11), Linspace(0, 10, 11))
	a := Classify(g)
	if a.Shape != ShapeValley {
		t.Fatalf("valley classified as %s", a.Shape)
	}
	if !a.InteriorMin {
		t.Fatal("interior minimum not detected")
	}
}

func TestClassifyHill(t *testing.T) {
	// Dome — the paper's Figure 8.
	g := grid2D(func(x, y float64) float64 {
		return 500 - 4*(x-5)*(x-5) - 4*(y-5)*(y-5)
	}, Linspace(0, 10, 11), Linspace(0, 10, 11))
	a := Classify(g)
	if a.Shape != ShapeHill {
		t.Fatalf("hill classified as %s", a.Shape)
	}
	if !a.InteriorMax {
		t.Fatal("interior maximum not detected")
	}
}

func TestClassifySlope(t *testing.T) {
	g := grid2D(func(x, y float64) float64 { return 10*x + 12*y }, Linspace(0, 10, 8), Linspace(0, 10, 8))
	a := Classify(g)
	if a.Shape != ShapeSlope {
		t.Fatalf("plane classified as %s", a.Shape)
	}
}

func TestClassifyAsymmetricValley(t *testing.T) {
	// One steep wall, one shallow wall — like a thread-pool response
	// time: saturation cliff at low x, gentle overhead rise at high x.
	g := grid2D(func(x, y float64) float64 {
		steep := 400 * math.Exp(-x)
		gentle := 2 * x
		return 50 + steep + gentle + 14*y
	}, Linspace(0, 20, 11), Linspace(0, 10, 6))
	a := Classify(g)
	if a.Shape != ShapeValley {
		t.Fatalf("asymmetric valley classified as %s", a.Shape)
	}
}

func TestClassifyTrenchAlongIrrelevantAxisIsParallel(t *testing.T) {
	// When the trench's floor direction is essentially irrelevant, the
	// irrelevance signal wins (Figure 4 semantics): the tuning advice
	// "don't bother with x" matters more than the faint valley. The
	// trench information is still exposed through InteriorMin.
	g := grid2D(func(x, y float64) float64 {
		return 50 + 3*(x-5)*(x-5) + 0.2*y
	}, Linspace(0, 10, 11), Linspace(0, 10, 11))
	a := Classify(g)
	if a.Shape != ShapeParallelSlopes {
		t.Fatalf("classified as %s", a.Shape)
	}
	if !a.InteriorMin {
		t.Fatal("trench info lost")
	}
}

func TestAdviceIsAlwaysSet(t *testing.T) {
	grids := []*Grid{
		grid2D(func(x, y float64) float64 { return 1 }, Linspace(0, 1, 3), Linspace(0, 1, 3)),
		grid2D(func(x, y float64) float64 { return x }, Linspace(0, 1, 3), Linspace(0, 1, 3)),
		grid2D(func(x, y float64) float64 { return x + y }, Linspace(0, 1, 3), Linspace(0, 1, 3)),
	}
	for i, g := range grids {
		if Classify(g).Advice == "" {
			t.Errorf("grid %d: empty advice", i)
		}
	}
}

func TestLinspace(t *testing.T) {
	v := Linspace(0, 10, 5)
	want := []float64{0, 2.5, 5, 7.5, 10}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("linspace %v", v)
		}
	}
	if len(Linspace(3, 9, 1)) != 1 {
		t.Fatal("n<2 should return single point")
	}
	single := Linspace(3, 9, 1)
	if single[0] != 3 {
		t.Fatal("single point should be lo")
	}
}

func TestExtremalPathFollowsTrench(t *testing.T) {
	// Valley floor at x = 5 + 0.2*y: a slanted trench.
	g := grid2D(func(x, y float64) float64 {
		c := 5 + 0.2*y
		return 10 + (x-c)*(x-c) + 0.5*y
	}, Linspace(0, 10, 21), Linspace(0, 10, 11))
	p := ExtremalPath(g, true, false) // for each y, the best x
	if len(p.X) != 11 {
		t.Fatalf("path has %d points", len(p.X))
	}
	for k, y := range p.Y {
		wantX := 5 + 0.2*y
		if math.Abs(p.X[k]-wantX) > 0.51 { // grid step is 0.5
			t.Fatalf("trench at y=%v found at x=%v, want ~%v", y, p.X[k], wantX)
		}
	}
	// Path heights must be the grid minima of their lines.
	for k := range p.Z {
		if p.Z[k] > 10+0.5*p.Y[k]+0.3 {
			t.Fatalf("path height %v above the floor", p.Z[k])
		}
	}
}

func TestExtremalPathCrest(t *testing.T) {
	g := grid2D(func(x, y float64) float64 {
		return -(x - 3) * (x - 3)
	}, Linspace(0, 10, 11), Linspace(0, 1, 3))
	p := ExtremalPath(g, false, true) // for each x, best y (flat in y)
	if len(p.X) != 11 {
		t.Fatalf("path length %d", len(p.X))
	}
	q := ExtremalPath(g, false, false) // for each y, best x = 3
	for _, x := range q.X {
		if x != 3 {
			t.Fatalf("crest at x=%v, want 3", x)
		}
	}
}

func TestEvaluateWorkersBitIdentical(t *testing.T) {
	xs, ys := Linspace(-2, 2, 17), Linspace(-1, 3, 11)
	sl := Slice{
		Fixed:   []float64{0, 0},
		XIndex:  0,
		YIndex:  1,
		XValues: xs,
		YValues: ys,
		Output:  0,
	}
	p := funcPredictor(func(v []float64) []float64 {
		return []float64{math.Sin(3*v[0]) * math.Exp(0.2*v[1])}
	})
	ref, err := EvaluateWorkers(p, sl, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		got, err := EvaluateWorkers(p, sl, 2, 1, w)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.Z {
			for j := range ref.Z[i] {
				if got.Z[i][j] != ref.Z[i][j] {
					t.Fatalf("workers=%d Z[%d][%d] = %v, workers=1 gave %v", w, i, j, got.Z[i][j], ref.Z[i][j])
				}
			}
		}
	}
}
