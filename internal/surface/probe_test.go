package surface

import (
	"math"
	"testing"

	"nnwc/internal/core"
	"nnwc/internal/rng"
	"nnwc/internal/train"
	"nnwc/internal/workload"
)

// batchOnly hides a model's PredictMatrix so tests can force the
// core.PredictAll fallback path.
type batchOnly struct{ m *core.NNModel }

func (b batchOnly) Predict(x []float64) []float64         { return b.m.Predict(x) }
func (b batchOnly) PredictAll(xs [][]float64) [][]float64 { return b.m.PredictAll(xs) }

// trainedModel fits a small 2→1 model on a smooth synthetic function.
func trainedModel(t *testing.T) *core.NNModel {
	t.Helper()
	src := rng.New(5)
	ds := workload.NewDataset([]string{"a", "b"}, []string{"u"})
	for i := 0; i < 70; i++ {
		a, b := src.Uniform(-2, 2), src.Uniform(-2, 2)
		ds.MustAppend(workload.Sample{X: []float64{a, b}, Y: []float64{3 + a*a - math.Sin(b)}})
	}
	tc := train.DefaultConfig()
	tc.MaxEpochs = 120
	tc.TargetLoss = 0
	m, err := core.Fit(ds, core.Config{Hidden: []int{6}, Train: &tc, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func probeSlice(n int) Slice {
	return Slice{
		Fixed:   []float64{0, 0},
		XIndex:  0,
		YIndex:  1,
		XValues: Linspace(-2, 2, n),
		YValues: Linspace(-2, 2, n),
		Output:  0,
	}
}

// TestMatrixPathMatchesFallback pins the pooled matrix probe path to the
// materializing core.PredictAll fallback bit for bit, across worker counts.
func TestMatrixPathMatchesFallback(t *testing.T) {
	m := trainedModel(t)
	sl := probeSlice(12)
	for _, w := range []int{1, 2, 8} {
		fast, err := EvaluateWorkers(m, sl, m.InputDim(), m.OutputDim(), w)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := EvaluateWorkers(batchOnly{m}, sl, m.InputDim(), m.OutputDim(), w)
		if err != nil {
			t.Fatal(err)
		}
		for i := range fast.Z {
			for j := range fast.Z[i] {
				if fast.Z[i][j] != slow.Z[i][j] {
					t.Fatalf("workers=%d Z[%d][%d]: matrix path %v, fallback %v",
						w, i, j, fast.Z[i][j], slow.Z[i][j])
				}
			}
		}
	}
}

// TestProbeSteadyStateAllocs pins the surface-grid allocation fix: with
// warmed pools an n×n sweep allocates on the order of its result rows, not
// of its n² probe vectors.
func TestProbeSteadyStateAllocs(t *testing.T) {
	m := trainedModel(t)
	const n = 16
	sl := probeSlice(n)
	if _, err := EvaluateWorkers(m, sl, m.InputDim(), m.OutputDim(), 1); err != nil {
		t.Fatal(err) // warm the probe and predict pools
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := EvaluateWorkers(m, sl, m.InputDim(), m.OutputDim(), 1); err != nil {
			panic(err)
		}
	})
	// Result rows (n) plus fixed scheduler/trace overhead; the pre-pool
	// path cost ~n·(n+2) configuration and output vectors on top.
	if budget := float64(4*n + 16); allocs > budget {
		t.Fatalf("steady-state %dx%d sweep allocates %v objects/op, want <= %v", n, n, allocs, budget)
	}
}
