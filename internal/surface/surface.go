// Package surface implements the paper's §5 tuning analysis: evaluating a
// trained model over a 2-D grid of configurations — two parameters swept,
// the rest pinned, like the paper's "(560, x, 16, y)" slices — and
// classifying the resulting response surface into the paper's three
// archetypes: parallel slopes (§5.1, one parameter is irrelevant), valleys
// (§5.2, a trench of minima), and hills (§5.3, an interior maximum).
package surface

import (
	"errors"
	"fmt"
	"math"

	"nnwc/internal/core"
	"nnwc/internal/mat"
	"nnwc/internal/obs"
	"nnwc/internal/sched"
	"nnwc/internal/stats"
)

// Slice describes a 2-D cut through the configuration space.
type Slice struct {
	// Fixed is the template configuration; entries at XIndex and YIndex
	// are overwritten by the grid.
	Fixed []float64
	// XIndex and YIndex select the two swept features.
	XIndex, YIndex int
	// XValues and YValues are the grid coordinates.
	XValues, YValues []float64
	// Output selects which performance indicator to evaluate.
	Output int
}

// Validate reports configuration errors in the slice spec.
func (s Slice) Validate(inputDim, outputDim int) error {
	if len(s.Fixed) != inputDim {
		return fmt.Errorf("surface: fixed vector has %d entries, model expects %d", len(s.Fixed), inputDim)
	}
	if s.XIndex < 0 || s.XIndex >= inputDim || s.YIndex < 0 || s.YIndex >= inputDim {
		return errors.New("surface: swept indices out of range")
	}
	if s.XIndex == s.YIndex {
		return errors.New("surface: the two swept indices must differ")
	}
	if len(s.XValues) < 2 || len(s.YValues) < 2 {
		return errors.New("surface: need at least a 2x2 grid")
	}
	if s.Output < 0 || s.Output >= outputDim {
		return errors.New("surface: output index out of range")
	}
	return nil
}

// Grid is an evaluated surface: Z[i][j] is the model's prediction at
// (XValues[i], YValues[j]).
type Grid struct {
	Slice Slice
	Z     [][]float64
}

// Evaluate runs the model over the slice's grid on the scheduler's
// default worker count; see EvaluateWorkers.
func Evaluate(p core.Predictor, s Slice, inputDim, outputDim int) (*Grid, error) {
	return EvaluateWorkers(p, s, inputDim, outputDim, 0)
}

// EvaluateWorkers runs the model over the slice's grid. Each grid row (one
// XValue, all YValues) is materialized and pushed through core.PredictAll
// as one batch, and rows evaluate concurrently on up to `workers`
// goroutines (<= 0 means the scheduler default). Every Z cell is computed
// from its own configuration vector and written to its own slot, so the
// surface is bit-identical across worker counts and to the historical
// single-batch path.
func EvaluateWorkers(p core.Predictor, s Slice, inputDim, outputDim, workers int) (*Grid, error) {
	return EvaluateTraced(p, s, inputDim, outputDim, workers, nil)
}

// probeScratch bundles the batch-sized buffers one grid-row probe needs:
// the configuration matrix (one row per YValue) and the model's predict
// workspace. Pooled so concurrent rows and repeated sweeps reuse buffers
// instead of materializing ~grid-size configuration vectors per call.
type probeScratch struct {
	X mat.Matrix
	w core.PredictWorkspace
}

var probePool = sched.NewPool(func() *probeScratch { return &probeScratch{} })

// EvaluateTraced is EvaluateWorkers with a span per grid row emitted to tr
// (nil disables tracing). Row spans buffer per row index and replay in row
// order, so the trace is deterministic across worker counts.
func EvaluateTraced(p core.Predictor, s Slice, inputDim, outputDim, workers int, tr *obs.Trace) (*Grid, error) {
	if err := s.Validate(inputDim, outputDim); err != nil {
		return nil, err
	}
	mp, fast := p.(core.MatrixPredictor)
	z := make([][]float64, len(s.XValues))
	fork := tr.Fork(len(s.XValues))
	err := sched.ForEachWorker(sched.Workers(workers), len(s.XValues), func(i, w int) error {
		slot := fork.Slot(i)
		span := slot.StartSpan("surface-row", i, w)
		defer span.End()
		zi := make([]float64, len(s.YValues))
		if fast {
			probeRow(mp, s, s.XValues[i], inputDim, zi)
		} else {
			probeRowSlow(p, s, s.XValues[i], inputDim, zi)
		}
		z[i] = zi
		return nil
	})
	fork.Join()
	if err != nil {
		return nil, err
	}
	return &Grid{Slice: s, Z: z}, nil
}

// probeRow evaluates one grid row (one XValue, every YValue) through the
// zero-alloc matrix path: configurations build in place in the pooled
// scratch matrix and one PredictMatrix call answers the whole row. The
// values are identical to the core.PredictAll fallback — both route the
// same batched forward kernels.
//
//nnwc:hotpath
func probeRow(mp core.MatrixPredictor, s Slice, xv float64, inputDim int, zi []float64) {
	sc := probePool.Get()
	defer probePool.Put(sc)
	sc.X.Reshape(len(s.YValues), inputDim)
	for j, yv := range s.YValues {
		row := sc.X.Row(j)
		copy(row, s.Fixed)
		row[s.XIndex] = xv
		row[s.YIndex] = yv
	}
	out := mp.PredictMatrix(&sc.X, &sc.w)
	for j := range zi {
		zi[j] = out.At(j, s.Output)
	}
}

// probeRowSlow is probeRow for plain Predictors: the same configuration
// rows routed through core.PredictAll instead of the matrix kernels.
func probeRowSlow(p core.Predictor, s Slice, xv float64, inputDim int, zi []float64) {
	rows := make([][]float64, len(s.YValues))
	for j, yv := range s.YValues {
		x := make([]float64, inputDim)
		copy(x, s.Fixed)
		x[s.XIndex] = xv
		x[s.YIndex] = yv
		rows[j] = x
	}
	outs := core.PredictAll(p, rows)
	for j := range zi {
		zi[j] = outs[j][s.Output]
	}
}

// ProbeRow evaluates grid row `row` (XValues[row] against every YValue)
// of a validated slice — the per-row unit the distributed experiment
// plane ships to workers. Bit-identical to row `row` of the Grid that
// EvaluateWorkers builds: both route the same batched forward kernels.
func ProbeRow(p core.Predictor, s Slice, inputDim, row int) ([]float64, error) {
	if row < 0 || row >= len(s.XValues) {
		return nil, fmt.Errorf("surface: row %d out of range [0,%d)", row, len(s.XValues))
	}
	zi := make([]float64, len(s.YValues))
	if mp, fast := p.(core.MatrixPredictor); fast {
		probeRow(mp, s, s.XValues[row], inputDim, zi)
	} else {
		probeRowSlow(p, s, s.XValues[row], inputDim, zi)
	}
	return zi, nil
}

// Min returns the grid minimum and its coordinates.
func (g *Grid) Min() (value, x, y float64) {
	value = math.Inf(1)
	for i, row := range g.Z {
		for j, v := range row {
			if v < value {
				value, x, y = v, g.Slice.XValues[i], g.Slice.YValues[j]
			}
		}
	}
	return value, x, y
}

// Max returns the grid maximum and its coordinates.
func (g *Grid) Max() (value, x, y float64) {
	value = math.Inf(-1)
	for i, row := range g.Z {
		for j, v := range row {
			if v > value {
				value, x, y = v, g.Slice.XValues[i], g.Slice.YValues[j]
			}
		}
	}
	return value, x, y
}

// Range returns max − min over the grid.
func (g *Grid) Range() float64 {
	lo, _, _ := g.Min()
	hi, _, _ := g.Max()
	return hi - lo
}

// Shape classifies a surface.
type Shape string

const (
	// ShapeFlat means neither parameter moves the indicator appreciably.
	ShapeFlat Shape = "flat"
	// ShapeParallelSlopes is the paper's §5.1 case: one parameter drives
	// the indicator, the other is (locally) irrelevant.
	ShapeParallelSlopes Shape = "parallel-slopes"
	// ShapeValley is the paper's §5.2 case: an interior trench of minima.
	ShapeValley Shape = "valley"
	// ShapeHill is the paper's §5.3 case: an interior crest of maxima.
	ShapeHill Shape = "hill"
	// ShapeSlope is a general monotone surface along both axes.
	ShapeSlope Shape = "slope"
)

// Analysis is the outcome of classifying a grid.
type Analysis struct {
	Shape Shape
	// XEffect and YEffect are the mean absolute change of the indicator
	// along each axis, normalized by the grid's value range.
	XEffect, YEffect float64
	// InteriorMin/InteriorMax report whether the extremum lies strictly
	// inside the grid along its row/column.
	InteriorMin, InteriorMax bool
	// Advice is a human-readable tuning hint in the spirit of §5.
	Advice string
}

// Classify analyses the grid's variation pattern.
//
// The decision order mirrors the paper's taxonomy: a grid whose total range
// is negligible is flat; a grid where one axis contributes a small fraction
// of the other's variation shows parallel slopes (§5.1); a grid with a
// trench of per-column interior minima is a valley (§5.2) and with a crest
// of interior maxima a hill (§5.3) — the paper's valley "from (0,18) to
// (20,20)" is exactly such a trench: for every value of one parameter, the
// optimum of the other is interior, and following it requires moving both
// parameters together. Everything else is a plain slope.
//
// Precedence note: when one axis is (nearly) irrelevant, parallel slopes
// wins even if the dominant axis contains a trench — the actionable advice
// ("don't tune that parameter") is the same one the paper draws from
// Figure 4. The trench evidence remains available via InteriorMin and
// InteriorMax.
func Classify(g *Grid) Analysis {
	const (
		irrelevance = 0.30
		flatness    = 0.05
	)
	a := Analysis{
		XEffect: axisEffect(g, true),
		YEffect: axisEffect(g, false),
	}
	lo, _, _ := g.Min()
	hi, _, _ := g.Max()
	mean := (lo + hi) / 2
	if hi-lo <= flatness*math.Abs(mean) {
		a.Shape = ShapeFlat
		a.Advice = "neither parameter affects this indicator here; tune elsewhere"
		return a
	}
	a.InteriorMin = trench(g, true)
	a.InteriorMax = trench(g, false)

	xIrr := a.XEffect < irrelevance*math.Max(a.XEffect, a.YEffect) || stats.ExactZero(a.XEffect)
	yIrr := a.YEffect < irrelevance*math.Max(a.XEffect, a.YEffect) || stats.ExactZero(a.YEffect)
	switch {
	case xIrr != yIrr:
		a.Shape = ShapeParallelSlopes
		if xIrr {
			a.Advice = "only the Y parameter matters; tuning the X parameter is wasted effort"
		} else {
			a.Advice = "only the X parameter matters; tuning the Y parameter is wasted effort"
		}
	case a.InteriorMin && !a.InteriorMax:
		a.Shape = ShapeValley
		a.Advice = "a trench of minima runs through the interior; adjust both parameters together to stay in (or out of) the valley"
	case a.InteriorMax && !a.InteriorMin:
		a.Shape = ShapeHill
		a.Advice = "the optimum is an interior crest; one-parameter-at-a-time sweeps can miss it entirely"
	case a.InteriorMin && a.InteriorMax:
		a.Shape = ShapeValley
		a.Advice = "interior minimum and maximum both present; the surface is strongly non-linear"
	default:
		a.Shape = ShapeSlope
		a.Advice = "the indicator varies monotonically; push both parameters toward the favourable corner"
	}
	return a
}

// trench reports whether the grid contains a trench (isMin) or crest
// (!isMin): in a clear majority of lines along one axis, the extremum over
// the other axis is interior and beats that line's boundary cells by a
// margin of the grid range. Both orientations are tried.
func trench(g *Grid, isMin bool) bool {
	rangeZ := g.Range()
	if stats.ExactZero(rangeZ) {
		return false
	}
	better := func(a, b float64) bool {
		if isMin {
			return a < b
		}
		return a > b
	}
	// lineInterior scans one line of values and reports whether its
	// extremum is interior with margin against both endpoints. Walls are
	// often very asymmetric (a saturation cliff on one side, a gentle
	// over-provisioning rise on the other), so the margin blends a small
	// fraction of the global range with a fraction of the trench floor's
	// own level.
	lineInterior := func(vals []float64) bool {
		bi := 0
		for i, v := range vals {
			if better(v, vals[bi]) {
				bi = i
			}
		}
		if bi == 0 || bi == len(vals)-1 {
			return false
		}
		margin := math.Max(0.015*rangeZ, 0.03*math.Abs(vals[bi]))
		worstBoundary := vals[0]
		if better(vals[len(vals)-1], worstBoundary) {
			worstBoundary = vals[len(vals)-1]
		}
		gap := worstBoundary - vals[bi]
		if !isMin {
			gap = -gap
		}
		return gap > margin
	}

	const quorum = 0.7
	// Orientation 1: for each x, scan along y.
	hits := 0
	for i := range g.Slice.XValues {
		if lineInterior(g.Z[i]) {
			hits++
		}
	}
	if float64(hits) >= quorum*float64(len(g.Slice.XValues)) {
		return true
	}
	// Orientation 2: for each y, scan along x.
	hits = 0
	col := make([]float64, len(g.Slice.XValues))
	for j := range g.Slice.YValues {
		for i := range g.Slice.XValues {
			col[i] = g.Z[i][j]
		}
		if lineInterior(col) {
			hits++
		}
	}
	return float64(hits) >= quorum*float64(len(g.Slice.YValues))
}

// axisEffect measures how much the indicator moves along one axis,
// averaged over the other, normalized by the grid range.
func axisEffect(g *Grid, alongX bool) float64 {
	rangeZ := g.Range()
	if stats.ExactZero(rangeZ) {
		return 0
	}
	var total float64
	var count int
	if alongX {
		for j := range g.Slice.YValues {
			for i := 1; i < len(g.Slice.XValues); i++ {
				total += math.Abs(g.Z[i][j] - g.Z[i-1][j])
				count++
			}
		}
	} else {
		for i := range g.Slice.XValues {
			for j := 1; j < len(g.Slice.YValues); j++ {
				total += math.Abs(g.Z[i][j] - g.Z[i][j-1])
				count++
			}
		}
	}
	if count == 0 {
		return 0
	}
	// Mean step, scaled to the number of steps along the axis so the
	// value approximates "fraction of the range traversed along this
	// axis".
	steps := len(g.Slice.XValues) - 1
	if !alongX {
		steps = len(g.Slice.YValues) - 1
	}
	return total / float64(count) * float64(steps) / rangeZ
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

// Path traces an extremal trajectory across the grid: for each value of
// the primary axis, the cross-axis coordinate and height of the line's
// optimum. This is the §5.2 "valley" made actionable — following the path
// is exactly the paper's "adjust two configuration parameters concurrently
// to stay in the valley".
type Path struct {
	// X is the primary-axis coordinate, Y the cross-axis coordinate of the
	// extremum at that X, Z its value.
	X, Y, Z []float64
}

// ExtremalPath extracts the per-line optimum. alongX selects the primary
// axis: when true, each XValue contributes one point whose Y is the
// arg-optimum over YValues (and vice versa). isMin selects valleys (true)
// or crests (false).
func ExtremalPath(g *Grid, isMin, alongX bool) Path {
	better := func(a, b float64) bool {
		if isMin {
			return a < b
		}
		return a > b
	}
	var p Path
	if alongX {
		for i, xv := range g.Slice.XValues {
			bj := 0
			for j := range g.Slice.YValues {
				if better(g.Z[i][j], g.Z[i][bj]) {
					bj = j
				}
			}
			p.X = append(p.X, xv)
			p.Y = append(p.Y, g.Slice.YValues[bj])
			p.Z = append(p.Z, g.Z[i][bj])
		}
		return p
	}
	for j, yv := range g.Slice.YValues {
		bi := 0
		for i := range g.Slice.XValues {
			if better(g.Z[i][j], g.Z[bi][j]) {
				bi = i
			}
		}
		p.X = append(p.X, g.Slice.XValues[bi])
		p.Y = append(p.Y, yv)
		p.Z = append(p.Z, g.Z[bi][j])
	}
	return p
}
