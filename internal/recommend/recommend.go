// Package recommend implements the configuration recommender the paper
// sketches at the end of §5.3: "we can further build a system that
// recommends the best configuration according to a scoring function".
// A trained model stands in for the real system, so candidate
// configurations can be scored in microseconds instead of re-running the
// workload, and the search can cover the whole space instead of the few
// heuristic probes a performance engineer has time for.
package recommend

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"nnwc/internal/core"
	"nnwc/internal/rng"
)

// Scorer maps a predicted indicator vector to a scalar score; higher is
// better.
type Scorer func(indicators []float64) float64

// WeightedScore builds a Scorer as a linear combination Σ wⱼ·yⱼ. Use
// negative weights for indicators to minimize (response times) and
// positive for those to maximize (throughput).
func WeightedScore(weights []float64) Scorer {
	return func(ind []float64) float64 {
		var s float64
		for j, w := range weights {
			if j < len(ind) {
				s += w * ind[j]
			}
		}
		return s
	}
}

// SLAScore builds a Scorer that maximizes indicator `maximize` (typically
// throughput) subject to upper bounds on the remaining indicators: any
// violated bound incurs a steep penalty proportional to the violation, so
// infeasible configurations sort below all feasible ones. A bound of
// +Inf (or NaN) disables the constraint for that indicator.
func SLAScore(maximize int, bounds []float64) Scorer {
	return func(ind []float64) float64 {
		score := ind[maximize]
		var penalty float64
		for j, b := range bounds {
			if j == maximize || j >= len(ind) || math.IsInf(b, 1) || math.IsNaN(b) {
				continue
			}
			if ind[j] > b {
				penalty += 1 + (ind[j]-b)/b
			}
		}
		if penalty > 0 {
			return -penalty * 1e6
		}
		return score
	}
}

// Space bounds the search: per-feature [Lo, Hi] ranges and an optional
// integer constraint (thread counts are integers; injection rate is not).
type Space struct {
	Lo, Hi  []float64
	Integer []bool // nil means all continuous
}

// Validate reports specification errors.
func (s Space) Validate() error {
	if len(s.Lo) == 0 || len(s.Lo) != len(s.Hi) {
		return errors.New("recommend: Lo and Hi must be non-empty and equal length")
	}
	for i := range s.Lo {
		if s.Hi[i] < s.Lo[i] {
			return fmt.Errorf("recommend: feature %d has Hi < Lo", i)
		}
	}
	if s.Integer != nil && len(s.Integer) != len(s.Lo) {
		return errors.New("recommend: Integer mask length mismatch")
	}
	return nil
}

func (s Space) round(x []float64) {
	if s.Integer == nil {
		return
	}
	for i, isInt := range s.Integer {
		if isInt {
			x[i] = math.Round(x[i])
		}
	}
}

// Candidate is one scored configuration.
type Candidate struct {
	X     []float64
	Y     []float64
	Score float64
}

// Result ranks the best candidates found.
type Result struct {
	Best Candidate
	// Top holds the best candidates in descending score order (up to the
	// requested keep count).
	Top []Candidate
}

// Options tunes the search.
type Options struct {
	// GridPoints per dimension for the coarse sweep (default 8).
	GridPoints int
	// RandomProbes after the grid phase (default 512).
	RandomProbes int
	// RefineRounds of local perturbation around the incumbent (default 3).
	RefineRounds int
	// Keep is how many top candidates to report (default 10).
	Keep int
	// Seed drives the random probes.
	Seed uint64
}

func (o Options) defaults() Options {
	if o.GridPoints <= 0 {
		o.GridPoints = 8
	}
	if o.RandomProbes <= 0 {
		o.RandomProbes = 512
	}
	if o.RefineRounds <= 0 {
		o.RefineRounds = 3
	}
	if o.Keep <= 0 {
		o.Keep = 10
	}
	return o
}

// Search explores the space with a coarse grid, random probes, and local
// refinement, scoring every candidate through the model.
func Search(p core.Predictor, space Space, score Scorer, opt Options) (*Result, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if score == nil {
		return nil, errors.New("recommend: a scoring function is required")
	}
	opt = opt.defaults()
	n := len(space.Lo)
	src := rng.New(opt.Seed)

	var all []Candidate
	eval := func(x []float64) {
		space.round(x)
		y := p.Predict(x)
		all = append(all, Candidate{X: append([]float64(nil), x...), Y: y, Score: score(y)})
	}

	// Phase 1: coarse grid, enumerated without recursion via counters.
	counts := make([]int, n)
	x := make([]float64, n)
	var gridTotal uint64 = 1
	for i := 0; i < n; i++ {
		gridTotal *= uint64(opt.GridPoints)
		if gridTotal > 1<<20 {
			return nil, fmt.Errorf("recommend: grid of %d^%d points is too large; lower GridPoints", opt.GridPoints, n)
		}
	}
	for {
		for i := 0; i < n; i++ {
			frac := 0.5
			if opt.GridPoints > 1 {
				frac = float64(counts[i]) / float64(opt.GridPoints-1)
			}
			x[i] = space.Lo[i] + frac*(space.Hi[i]-space.Lo[i])
		}
		eval(x)
		// Increment the mixed-radix counter.
		i := 0
		for ; i < n; i++ {
			counts[i]++
			if counts[i] < opt.GridPoints {
				break
			}
			counts[i] = 0
		}
		if i == n {
			break
		}
	}

	// Phase 2: random probes.
	for k := 0; k < opt.RandomProbes; k++ {
		for i := 0; i < n; i++ {
			x[i] = src.Uniform(space.Lo[i], space.Hi[i])
		}
		eval(x)
	}

	// Phase 3: local refinement around the incumbent.
	for round := 0; round < opt.RefineRounds; round++ {
		sort.Slice(all, func(i, j int) bool { return all[i].Score > all[j].Score })
		incumbent := all[0]
		radius := math.Pow(0.5, float64(round+1))
		for k := 0; k < opt.RandomProbes/4; k++ {
			for i := 0; i < n; i++ {
				span := (space.Hi[i] - space.Lo[i]) * radius
				v := incumbent.X[i] + src.Uniform(-span, span)
				x[i] = math.Min(math.Max(v, space.Lo[i]), space.Hi[i])
			}
			eval(x)
		}
	}

	sort.Slice(all, func(i, j int) bool { return all[i].Score > all[j].Score })
	keep := opt.Keep
	if keep > len(all) {
		keep = len(all)
	}
	res := &Result{Best: all[0], Top: all[:keep]}
	return res, nil
}
