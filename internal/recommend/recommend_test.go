package recommend

import (
	"math"
	"testing"
)

type funcPredictor func(x []float64) []float64

func (f funcPredictor) Predict(x []float64) []float64 { return f(x) }

func TestWeightedScore(t *testing.T) {
	s := WeightedScore([]float64{-1, 2})
	if got := s([]float64{3, 5}); got != 7 {
		t.Fatalf("score %v", got)
	}
	// Extra indicator entries beyond the weights are ignored.
	if got := s([]float64{3, 5, 100}); got != 7 {
		t.Fatalf("score with extras %v", got)
	}
}

func TestSLAScoreFeasible(t *testing.T) {
	s := SLAScore(2, []float64{10, 20, math.Inf(1)})
	// Within bounds: score is the maximized indicator.
	if got := s([]float64{5, 15, 400}); got != 400 {
		t.Fatalf("feasible score %v", got)
	}
}

func TestSLAScoreViolationsSortBelowFeasible(t *testing.T) {
	s := SLAScore(2, []float64{10, 20, math.Inf(1)})
	bad := s([]float64{50, 15, 9999})
	good := s([]float64{5, 15, 1})
	if bad >= good {
		t.Fatalf("violated config (%v) scored above feasible (%v)", bad, good)
	}
	// Worse violations score worse.
	worse := s([]float64{500, 15, 9999})
	if worse >= bad {
		t.Fatalf("bigger violation not penalized more: %v vs %v", worse, bad)
	}
}

func TestSLAScoreNaNBoundSkipped(t *testing.T) {
	s := SLAScore(1, []float64{math.NaN(), 0})
	if got := s([]float64{1e9, 42}); got != 42 {
		t.Fatalf("NaN bound not skipped: %v", got)
	}
}

func TestSpaceValidate(t *testing.T) {
	good := Space{Lo: []float64{0, 0}, Hi: []float64{1, 1}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Space{
		{},
		{Lo: []float64{0}, Hi: []float64{1, 2}},
		{Lo: []float64{2}, Hi: []float64{1}},
		{Lo: []float64{0}, Hi: []float64{1}, Integer: []bool{true, false}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad space %d accepted", i)
		}
	}
}

func TestSearchFindsKnownOptimum(t *testing.T) {
	// Maximize −(x−3)² − (y+1)²: optimum at (3, −1).
	p := funcPredictor(func(x []float64) []float64 {
		return []float64{-(x[0]-3)*(x[0]-3) - (x[1]+1)*(x[1]+1)}
	})
	space := Space{Lo: []float64{-10, -10}, Hi: []float64{10, 10}}
	res, err := Search(p, space, WeightedScore([]float64{1}), Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Best.X[0]-3) > 0.3 || math.Abs(res.Best.X[1]+1) > 0.3 {
		t.Fatalf("optimum found at %v, want near (3,-1)", res.Best.X)
	}
	if len(res.Top) == 0 || res.Top[0].Score != res.Best.Score {
		t.Fatal("Top[0] must be the best candidate")
	}
	// Top is sorted descending.
	for i := 1; i < len(res.Top); i++ {
		if res.Top[i].Score > res.Top[i-1].Score {
			t.Fatal("Top not sorted")
		}
	}
}

func TestSearchRespectsIntegerMask(t *testing.T) {
	p := funcPredictor(func(x []float64) []float64 { return []float64{-math.Abs(x[0] - 4.3)} })
	space := Space{Lo: []float64{0}, Hi: []float64{10}, Integer: []bool{true}}
	res, err := Search(p, space, WeightedScore([]float64{1}), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Top {
		if c.X[0] != math.Round(c.X[0]) {
			t.Fatalf("non-integer candidate %v", c.X[0])
		}
	}
	if res.Best.X[0] != 4 {
		t.Fatalf("integer optimum %v, want 4", res.Best.X[0])
	}
}

func TestSearchStaysInBounds(t *testing.T) {
	p := funcPredictor(func(x []float64) []float64 { return []float64{x[0] + x[1]} })
	space := Space{Lo: []float64{2, -5}, Hi: []float64{3, -4}}
	res, err := Search(p, space, WeightedScore([]float64{1}), Options{Seed: 2, Keep: 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Top {
		if c.X[0] < 2 || c.X[0] > 3 || c.X[1] < -5 || c.X[1] > -4 {
			t.Fatalf("candidate out of bounds: %v", c.X)
		}
	}
	// Maximum of x+y on the box is at the upper corner.
	if math.Abs(res.Best.X[0]-3) > 1e-9 || math.Abs(res.Best.X[1]+4) > 1e-9 {
		t.Fatalf("corner optimum missed: %v", res.Best.X)
	}
}

func TestSearchDegenerateDimension(t *testing.T) {
	// A pinned dimension (Lo == Hi) must stay pinned.
	p := funcPredictor(func(x []float64) []float64 { return []float64{-x[1] * x[1]} })
	space := Space{Lo: []float64{560, -5}, Hi: []float64{560, 5}}
	res, err := Search(p, space, WeightedScore([]float64{1}), Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Top {
		if c.X[0] != 560 {
			t.Fatalf("pinned dimension moved: %v", c.X[0])
		}
	}
}

func TestSearchErrors(t *testing.T) {
	p := funcPredictor(func(x []float64) []float64 { return []float64{0} })
	if _, err := Search(p, Space{}, WeightedScore([]float64{1}), Options{}); err == nil {
		t.Fatal("invalid space accepted")
	}
	if _, err := Search(p, Space{Lo: []float64{0}, Hi: []float64{1}}, nil, Options{}); err == nil {
		t.Fatal("nil scorer accepted")
	}
	// Grid explosion guard.
	big := Space{Lo: make([]float64, 10), Hi: make([]float64, 10)}
	for i := range big.Hi {
		big.Hi[i] = 1
	}
	if _, err := Search(p, big, WeightedScore([]float64{1}), Options{GridPoints: 16}); err == nil {
		t.Fatal("16^10 grid accepted")
	}
}

func TestSearchDeterministic(t *testing.T) {
	p := funcPredictor(func(x []float64) []float64 { return []float64{math.Sin(x[0]) * math.Cos(x[1])} })
	space := Space{Lo: []float64{0, 0}, Hi: []float64{6, 6}}
	a, err := Search(p, space, WeightedScore([]float64{1}), Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(p, space, WeightedScore([]float64{1}), Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Best.Score != b.Best.Score || a.Best.X[0] != b.Best.X[0] {
		t.Fatal("search not deterministic")
	}
}

func TestDominates(t *testing.T) {
	objs := []Objective{Minimize, Maximize}
	if !dominates([]float64{1, 10}, []float64{2, 5}, objs) {
		t.Fatal("clear dominance missed")
	}
	if dominates([]float64{1, 5}, []float64{2, 10}, objs) {
		t.Fatal("trade-off wrongly dominated")
	}
	if dominates([]float64{1, 10}, []float64{1, 10}, objs) {
		t.Fatal("equal vectors must not dominate")
	}
	// Ignored objectives play no role.
	if !dominates([]float64{1, 0}, []float64{2, 99}, []Objective{Minimize, Ignore}) {
		t.Fatal("ignored objective affected dominance")
	}
}

func TestParetoFrontOnKnownTradeoff(t *testing.T) {
	// y0 = x (minimize), y1 = x (maximize): every x is Pareto-optimal.
	p := funcPredictor(func(x []float64) []float64 { return []float64{x[0], x[0]} })
	space := Space{Lo: []float64{0}, Hi: []float64{10}}
	front, err := ParetoFront(p, space, []Objective{Minimize, Maximize}, Options{Seed: 1, RandomProbes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) < 10 {
		t.Fatalf("pure trade-off front has only %d points", len(front))
	}
	// No member may dominate another.
	objs := []Objective{Minimize, Maximize}
	for i := range front {
		for j := range front {
			if i != j && dominates(front[i].Y, front[j].Y, objs) {
				t.Fatal("front contains a dominated point")
			}
		}
	}
}

func TestParetoFrontCollapsesWhenAligned(t *testing.T) {
	// Both objectives improve together: the front is (nearly) a single
	// point at the shared optimum.
	p := funcPredictor(func(x []float64) []float64 {
		v := -(x[0] - 3) * (x[0] - 3)
		return []float64{-v, v} // minimize -v and maximize v agree
	})
	space := Space{Lo: []float64{0}, Hi: []float64{10}}
	front, err := ParetoFront(p, space, []Objective{Minimize, Maximize}, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) != 1 {
		t.Fatalf("aligned objectives should give 1 front point, got %d", len(front))
	}
	if math.Abs(front[0].X[0]-3) > 0.3 {
		t.Fatalf("front point at %v, want ~3", front[0].X[0])
	}
}

func TestParetoFrontSorted(t *testing.T) {
	p := funcPredictor(func(x []float64) []float64 { return []float64{x[0], 10 - x[0]} })
	space := Space{Lo: []float64{0}, Hi: []float64{10}}
	front, err := ParetoFront(p, space, []Objective{Minimize, Maximize}, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(front); i++ {
		if front[i].Y[0] < front[i-1].Y[0] {
			t.Fatal("front not sorted by the first active objective")
		}
	}
}

func TestParetoFrontErrors(t *testing.T) {
	p := funcPredictor(func(x []float64) []float64 { return []float64{0} })
	if _, err := ParetoFront(p, Space{}, []Objective{Minimize}, Options{}); err == nil {
		t.Fatal("invalid space accepted")
	}
	good := Space{Lo: []float64{0}, Hi: []float64{1}}
	if _, err := ParetoFront(p, good, []Objective{Ignore}, Options{}); err == nil {
		t.Fatal("all-Ignore objectives accepted")
	}
}
