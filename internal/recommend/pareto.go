package recommend

import (
	"errors"
	"sort"

	"nnwc/internal/core"
	"nnwc/internal/stats"
)

// Objective states the preferred direction of one indicator.
type Objective int

const (
	// Ignore leaves the indicator out of the dominance comparison.
	Ignore Objective = iota
	// Minimize prefers smaller values (response times).
	Minimize
	// Maximize prefers larger values (throughput).
	Maximize
)

// dominates reports whether a dominates b under the objectives: at least
// as good everywhere and strictly better somewhere.
func dominates(a, b []float64, objs []Objective) bool {
	strictly := false
	for j, o := range objs {
		if j >= len(a) || j >= len(b) || o == Ignore {
			continue
		}
		av, bv := a[j], b[j]
		if o == Maximize {
			av, bv = -av, -bv
		}
		if av > bv {
			return false
		}
		if av < bv {
			strictly = true
		}
	}
	return strictly
}

// ParetoFront explores the space (grid plus random probes, as Search does)
// and returns the non-dominated candidates under the per-indicator
// objectives — the §5.3 recommender generalized: instead of collapsing the
// trade-off into one scoring function up front, the engineer gets the
// whole frontier of defensible configurations (e.g. every way to trade
// dealer-purchase latency against throughput) and chooses with context the
// model does not have.
func ParetoFront(p core.Predictor, space Space, objs []Objective, opt Options) ([]Candidate, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	anyActive := false
	for _, o := range objs {
		if o != Ignore {
			anyActive = true
		}
	}
	if !anyActive {
		return nil, errors.New("recommend: at least one objective must be active")
	}
	// Reuse Search's exploration with a neutral scorer; we only want its
	// candidate sweep.
	opt = opt.defaults()
	opt.Keep = 1 << 20 // keep everything; the front filter prunes
	res, err := Search(p, space, func([]float64) float64 { return 0 }, opt)
	if err != nil {
		return nil, err
	}

	var front []Candidate
	for _, cand := range res.Top {
		dominated := false
		replacement := front[:0:0]
		for _, f := range front {
			if dominates(f.Y, cand.Y, objs) || equalVec(f.X, cand.X) {
				dominated = true
				break
			}
			if !dominates(cand.Y, f.Y, objs) {
				replacement = append(replacement, f)
			}
		}
		if dominated {
			continue
		}
		front = append(replacement, cand)
	}
	// Deterministic presentation: sort by the first active objective.
	first := 0
	for j, o := range objs {
		if o != Ignore {
			first = j
			break
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if objs[first] == Maximize {
			return front[i].Y[first] > front[j].Y[first]
		}
		return front[i].Y[first] < front[j].Y[first]
	})
	return front, nil
}

func equalVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !stats.ExactEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}
