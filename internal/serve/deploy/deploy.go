// Package deploy is the fleet's deployment controller: each tenant has a
// live instance and optionally a shadow (canary) instance, both immutable
// registry snapshots behind atomic pointers. Prediction traffic is served
// by the live model and mirrored to the shadow; observation traffic
// (prediction-vs-actual pairs reported by clients) feeds rolling HMRE
// windows for both, and the controller auto-promotes a shadow whose rolling
// live-traffic HMRE stays within the configured envelope — or rolls a
// degraded live model back to its predecessor.
//
// Promotion and rollback swap one pointer; a request in flight keeps the
// snapshot it resolved, so no request ever observes a half-promoted model.
package deploy

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"nnwc/internal/serve/registry"
	"nnwc/internal/stats"
)

// Config tunes the promotion/rollback policy. Zero values get defaults.
type Config struct {
	// PromoteHMRE is the training-envelope bound: a shadow whose rolling
	// HMRE over live traffic is ≤ this (and no worse than the live model)
	// is auto-promoted. Default 0.10 — the paper's >90%-accuracy regime.
	PromoteHMRE float64
	// DemoteHMRE triggers rollback: a live model whose rolling HMRE
	// exceeds this is reverted to its predecessor. Default 0.25.
	DemoteHMRE float64
	// MinObservations is how many prediction-vs-actual pairs a window
	// needs before the policy acts on it. Default 32.
	MinObservations int
	// Window is the rolling-window capacity. Default 256.
	Window int
	// AutoPromote enables policy-driven promotion/rollback on Observe;
	// explicit Promote/Rollback calls always work. Default off — opt in.
	AutoPromote bool
}

func (c Config) withDefaults() Config {
	if c.PromoteHMRE <= 0 {
		c.PromoteHMRE = 0.10
	}
	if c.DemoteHMRE <= 0 {
		c.DemoteHMRE = 0.25
	}
	if c.MinObservations <= 0 {
		c.MinObservations = 32
	}
	if c.Window <= 0 {
		c.Window = 256
	}
	return c
}

// Event is one deployment action, delivered to the controller's sink for
// metrics counters and run traces.
type Event struct {
	Tenant  string
	Action  string // "deploy" | "canary" | "promote" | "rollback"
	Version int
	SHA256  string
	Auto    bool // policy-driven (Observe) rather than operator-requested
}

// Controller manages every tenant's deployment state.
type Controller struct {
	cfg   Config
	reg   *registry.Registry
	sink  func(Event)
	mu    sync.Mutex
	fleet map[string]*Deployment
}

// New builds a controller over reg. sink (optional) receives deployment
// events synchronously; it must be cheap and non-blocking.
func New(reg *registry.Registry, cfg Config, sink func(Event)) *Controller {
	return &Controller{
		cfg:   cfg.withDefaults(),
		reg:   reg,
		sink:  sink,
		fleet: make(map[string]*Deployment),
	}
}

func (c *Controller) emit(e Event) {
	if c.sink != nil {
		c.sink(e)
	}
}

// Deployment is one tenant's serving state. The live and shadow pointers
// are the only state the request path touches.
type Deployment struct {
	tenant string
	live   atomic.Pointer[registry.Instance]
	shadow atomic.Pointer[registry.Instance]

	mu          sync.Mutex
	prevVersion int // live's predecessor, 0 = none
	liveErr     *window
	shadowErr   *window
	divergence  *window // |shadow − live| relative gap from mirrored traffic
	promotions  uint64
	rollbacks   uint64
}

// Tenant returns the deployment's tenant name.
func (d *Deployment) Tenant() string { return d.tenant }

// Live returns the current live instance (nil before the first deploy).
func (d *Deployment) Live() *registry.Instance { return d.live.Load() }

// Shadow returns the current shadow instance, nil when none is staged.
func (d *Deployment) Shadow() *registry.Instance { return d.shadow.Load() }

// Deployment returns the named tenant's deployment, or nil.
func (c *Controller) Deployment(tenant string) *Deployment {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fleet[tenant]
}

// Tenants lists deployed tenant names via the registry's sorted order.
func (c *Controller) Tenants() []string {
	names := c.reg.Tenants()
	out := names[:0]
	for _, n := range names {
		c.mu.Lock()
		_, ok := c.fleet[n]
		c.mu.Unlock()
		if ok {
			out = append(out, n)
		}
	}
	return out
}

func (c *Controller) deployment(tenant string) *Deployment {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.fleet[tenant]
	if !ok {
		d = &Deployment{
			tenant:     tenant,
			liveErr:    newWindow(c.cfg.Window),
			shadowErr:  newWindow(c.cfg.Window),
			divergence: newWindow(c.cfg.Window),
		}
		c.fleet[tenant] = d
	}
	return d
}

// Deploy registers the artifact at path for tenant. The first deploy (or
// canary=false) swaps it straight to live; canary=true stages it as the
// shadow, mirroring traffic until promoted.
func (c *Controller) Deploy(tenant, path string, canary bool) (*registry.Instance, error) {
	inst, err := c.reg.Register(tenant, path)
	if err != nil {
		return nil, err
	}
	d := c.deployment(tenant)
	d.mu.Lock()
	defer d.mu.Unlock()
	live := d.live.Load()
	if live != nil && inst.Version == live.Version {
		return inst, nil // redeploying the live bytes is a no-op
	}
	if canary && live != nil {
		if inst.InputDim != live.InputDim || inst.OutputDim != live.OutputDim {
			return nil, fmt.Errorf("deploy: canary %s has dims (%d,%d), live %s has (%d,%d)",
				inst.Ref(), inst.InputDim, inst.OutputDim, live.Ref(), live.InputDim, live.OutputDim)
		}
		d.shadow.Store(inst)
		d.shadowErr.reset()
		d.divergence.reset()
		c.emit(Event{Tenant: tenant, Action: "canary", Version: inst.Version, SHA256: inst.SHA256})
		return inst, nil
	}
	if live != nil {
		d.prevVersion = live.Version
	}
	d.live.Store(inst)
	d.liveErr.reset()
	c.emit(Event{Tenant: tenant, Action: "deploy", Version: inst.Version, SHA256: inst.SHA256})
	return inst, nil
}

// Promote swaps the tenant's shadow to live, keeping the previous live
// version for rollback.
func (c *Controller) Promote(tenant string) (*registry.Instance, error) {
	d := c.Deployment(tenant)
	if d == nil {
		return nil, fmt.Errorf("deploy: unknown tenant %q", tenant)
	}
	return c.promote(d, false)
}

func (c *Controller) promote(d *Deployment, auto bool) (*registry.Instance, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	sh := d.shadow.Load()
	if sh == nil {
		return nil, fmt.Errorf("deploy: tenant %q has no shadow to promote", d.tenant)
	}
	if live := d.live.Load(); live != nil {
		d.prevVersion = live.Version
	}
	// Swap order matters for concurrent readers: publish the new live
	// first, then retire the shadow, so a racing request resolves either
	// the old live or the new one — never an empty tenant.
	d.live.Store(sh)
	d.shadow.Store(nil)
	// The shadow's observed accuracy is now the live window's history.
	d.liveErr.copyFrom(d.shadowErr)
	d.shadowErr.reset()
	d.divergence.reset()
	d.promotions++
	c.emit(Event{Tenant: d.tenant, Action: "promote", Version: sh.Version, SHA256: sh.SHA256, Auto: auto})
	return sh, nil
}

// Rollback reverts the tenant: a staged shadow is dropped; otherwise live
// reverts to its predecessor version (rehydrated via the registry's warm
// cache if it was evicted).
func (c *Controller) Rollback(tenant string) (*registry.Instance, error) {
	d := c.Deployment(tenant)
	if d == nil {
		return nil, fmt.Errorf("deploy: unknown tenant %q", tenant)
	}
	return c.rollback(d, false)
}

func (c *Controller) rollback(d *Deployment, auto bool) (*registry.Instance, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if sh := d.shadow.Load(); sh != nil {
		d.shadow.Store(nil)
		d.shadowErr.reset()
		d.divergence.reset()
		d.rollbacks++
		c.emit(Event{Tenant: d.tenant, Action: "rollback", Version: sh.Version, SHA256: sh.SHA256, Auto: auto})
		return d.live.Load(), nil
	}
	if d.prevVersion == 0 {
		return nil, fmt.Errorf("deploy: tenant %q has no previous version to roll back to", d.tenant)
	}
	prev, err := c.reg.Instance(d.tenant, d.prevVersion)
	if err != nil {
		return nil, fmt.Errorf("deploy: rolling back %q: %w", d.tenant, err)
	}
	demoted := d.live.Load()
	d.live.Store(prev)
	d.prevVersion = 0 // one level of undo; registry keeps every version
	d.liveErr.reset()
	d.rollbacks++
	ev := Event{Tenant: d.tenant, Action: "rollback", Version: prev.Version, SHA256: prev.SHA256, Auto: auto}
	if demoted != nil {
		ev.Version = demoted.Version
		ev.SHA256 = demoted.SHA256
	}
	c.emit(ev)
	return prev, nil
}

// Decision reports what Observe concluded.
type Decision struct {
	LiveHMRE   float64 // rolling mean per-observation HMRE, NaN until observed
	ShadowHMRE float64
	Promoted   bool
	RolledBack bool
}

// Observe feeds one prediction-vs-actual pair into the tenant's rolling
// windows: both the live and shadow models predict x, each prediction's
// HMRE against the actual indicators is recorded, and — when AutoPromote
// is on — the promotion/rollback policy runs on the updated windows.
func (c *Controller) Observe(tenant string, x, actual []float64) (Decision, error) {
	d := c.Deployment(tenant)
	if d == nil {
		return Decision{}, fmt.Errorf("deploy: unknown tenant %q", tenant)
	}
	live := d.live.Load()
	if live == nil {
		return Decision{}, fmt.Errorf("deploy: tenant %q has no live model", tenant)
	}
	if len(x) != live.InputDim {
		return Decision{}, fmt.Errorf("deploy: observation has %d features, model expects %d", len(x), live.InputDim)
	}
	if len(actual) != live.OutputDim {
		return Decision{}, fmt.Errorf("deploy: observation has %d indicators, model has %d", len(actual), live.OutputDim)
	}

	livePred := live.Pred.PredictAll([][]float64{x})[0]
	liveHMRE, liveErr := stats.HarmonicMeanRelativeError(actual, livePred)

	var shadowHMRE = math.NaN()
	sh := d.shadow.Load()
	if sh != nil {
		shPred := sh.Pred.PredictAll([][]float64{x})[0]
		if h, err := stats.HarmonicMeanRelativeError(actual, shPred); err == nil {
			shadowHMRE = h
		}
	}

	d.mu.Lock()
	if liveErr == nil {
		d.liveErr.add(liveHMRE)
	}
	if !math.IsNaN(shadowHMRE) {
		d.shadowErr.add(shadowHMRE)
	}
	dec := Decision{LiveHMRE: d.liveErr.mean(), ShadowHMRE: d.shadowErr.mean()}
	promote := c.cfg.AutoPromote && sh != nil && d.shadow.Load() == sh &&
		d.shadowErr.count() >= c.cfg.MinObservations &&
		dec.ShadowHMRE <= c.cfg.PromoteHMRE &&
		(d.liveErr.count() == 0 || dec.ShadowHMRE <= dec.LiveHMRE)
	demote := c.cfg.AutoPromote && !promote && d.prevVersion != 0 &&
		d.liveErr.count() >= c.cfg.MinObservations &&
		dec.LiveHMRE > c.cfg.DemoteHMRE
	d.mu.Unlock()

	if promote {
		if _, err := c.promote(d, true); err == nil {
			dec.Promoted = true
		}
	} else if demote {
		if _, err := c.rollback(d, true); err == nil {
			dec.RolledBack = true
		}
	}
	return dec, nil
}

// Mirror records the relative gap between mirrored shadow predictions and
// the live predictions that were actually served — the divergence signal
// operators watch before trusting a canary with promotion.
func (d *Deployment) Mirror(livePred, shadowPred []float64) {
	if len(livePred) != len(shadowPred) || len(livePred) == 0 {
		return
	}
	var gap, n float64
	for i := range livePred {
		denom := math.Abs(livePred[i])
		if denom < 1e-9 {
			denom = 1e-9
		}
		gap += math.Abs(shadowPred[i]-livePred[i]) / denom
		n++
	}
	d.mu.Lock()
	d.divergence.add(gap / n)
	d.mu.Unlock()
}

// Status is one tenant's deployment summary for fleet listings.
type Status struct {
	Tenant       string  `json:"tenant"`
	LiveVersion  int     `json:"live_version"`
	LiveSHA256   string  `json:"live_sha256"`
	LiveShape    string  `json:"live_shape"`
	ShadowVer    int     `json:"shadow_version,omitempty"`
	ShadowSHA256 string  `json:"shadow_sha256,omitempty"`
	PrevVersion  int     `json:"previous_version,omitempty"`
	LiveHMRE     float64 `json:"live_hmre"`   // NaN → omitted by renderers
	ShadowHMRE   float64 `json:"shadow_hmre"` // NaN → omitted
	Divergence   float64 `json:"shadow_divergence"`
	LiveObs      int     `json:"live_observations"`
	ShadowObs    int     `json:"shadow_observations"`
	Promotions   uint64  `json:"promotions"`
	Rollbacks    uint64  `json:"rollbacks"`
}

// Status summarizes one deployment.
func (d *Deployment) Status() Status {
	s := Status{Tenant: d.tenant}
	if live := d.live.Load(); live != nil {
		s.LiveVersion, s.LiveSHA256, s.LiveShape = live.Version, live.SHA256, live.Shape
	}
	if sh := d.shadow.Load(); sh != nil {
		s.ShadowVer, s.ShadowSHA256 = sh.Version, sh.SHA256
	}
	d.mu.Lock()
	s.PrevVersion = d.prevVersion
	s.LiveHMRE = d.liveErr.mean()
	s.ShadowHMRE = d.shadowErr.mean()
	s.Divergence = d.divergence.mean()
	s.LiveObs = d.liveErr.count()
	s.ShadowObs = d.shadowErr.count()
	s.Promotions = d.promotions
	s.Rollbacks = d.rollbacks
	d.mu.Unlock()
	return s
}

// window is a fixed-capacity ring of recent per-observation HMRE values.
// Its mean is the "rolling HMRE" the promotion policy gates on. Callers
// synchronize access (the owning Deployment's mutex).
type window struct {
	buf  []float64
	n    int
	next int
	sum  float64
}

func newWindow(capacity int) *window { return &window{buf: make([]float64, capacity)} }

func (w *window) add(v float64) {
	if w.n == len(w.buf) {
		w.sum -= w.buf[w.next]
	} else {
		w.n++
	}
	w.buf[w.next] = v
	w.sum += v
	w.next = (w.next + 1) % len(w.buf)
}

func (w *window) count() int { return w.n }

func (w *window) mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.sum / float64(w.n)
}

func (w *window) reset() {
	w.n, w.next, w.sum = 0, 0, 0
	for i := range w.buf {
		w.buf[i] = 0
	}
}

func (w *window) copyFrom(src *window) {
	w.reset()
	// Replay src in insertion order so the ring stays coherent.
	start := src.next - src.n
	for i := 0; i < src.n; i++ {
		w.add(src.buf[(start+i+len(src.buf))%len(src.buf)])
	}
}
