package deploy

import (
	"math"
	"path/filepath"
	"testing"

	"nnwc/internal/core"
	"nnwc/internal/serve/registry"
	"nnwc/internal/train"
	"nnwc/internal/workload"
)

// trainModel persists a tiny 2→2 model and returns its path. Different
// seeds give different weights over the same schema.
func trainModel(t *testing.T, dir, name string, seed uint64) string {
	t.Helper()
	ds := workload.NewDataset([]string{"a", "b"}, []string{"u", "v"})
	for i := 0; i < 40; i++ {
		a, b := float64(i%8)-4, float64(i/8)-2
		ds.MustAppend(workload.Sample{X: []float64{a, b}, Y: []float64{10 + a*a - b, 5 + a + 2*b}})
	}
	tc := train.DefaultConfig()
	tc.MaxEpochs = 60
	m, err := core.Fit(ds, core.Config{Hidden: []int{4}, Train: &tc, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func newController(t *testing.T, cfg Config) (*Controller, *registry.Registry, *[]Event) {
	t.Helper()
	reg := registry.New(8)
	var events []Event
	c := New(reg, cfg, func(e Event) { events = append(events, e) })
	return c, reg, &events
}

func TestDeployPromoteRollbackLifecycle(t *testing.T) {
	dir := t.TempDir()
	pathA := trainModel(t, dir, "a.json", 1)
	pathB := trainModel(t, dir, "b.json", 2)
	c, _, events := newController(t, Config{})

	// First deploy goes straight to live, even with canary requested.
	if _, err := c.Deploy("web", pathA, true); err != nil {
		t.Fatal(err)
	}
	d := c.Deployment("web")
	if d.Live() == nil || d.Live().Version != 1 || d.Shadow() != nil {
		t.Fatalf("first deploy: live=%v shadow=%v, want live v1, no shadow", d.Live(), d.Shadow())
	}

	// Second deploy as canary stages a shadow; live unchanged.
	if _, err := c.Deploy("web", pathB, true); err != nil {
		t.Fatal(err)
	}
	if d.Live().Version != 1 || d.Shadow() == nil || d.Shadow().Version != 2 {
		t.Fatalf("canary deploy: live v%d shadow %v", d.Live().Version, d.Shadow())
	}

	// Promote: shadow becomes live, shadow slot empties.
	if _, err := c.Promote("web"); err != nil {
		t.Fatal(err)
	}
	if d.Live().Version != 2 || d.Shadow() != nil {
		t.Fatalf("after promote: live v%d shadow %v", d.Live().Version, d.Shadow())
	}

	// Rollback: live reverts to v1 through the registry.
	if _, err := c.Rollback("web"); err != nil {
		t.Fatal(err)
	}
	if d.Live().Version != 1 {
		t.Fatalf("after rollback: live v%d, want 1", d.Live().Version)
	}
	st := d.Status()
	if st.Promotions != 1 || st.Rollbacks != 1 {
		t.Fatalf("status promotions=%d rollbacks=%d, want 1/1", st.Promotions, st.Rollbacks)
	}

	var actions []string
	for _, e := range *events {
		actions = append(actions, e.Action)
	}
	want := []string{"deploy", "canary", "promote", "rollback"}
	if len(actions) != len(want) {
		t.Fatalf("events %v, want %v", actions, want)
	}
	for i := range want {
		if actions[i] != want[i] {
			t.Fatalf("events %v, want %v", actions, want)
		}
	}
}

func TestRollbackDropsStagedShadow(t *testing.T) {
	dir := t.TempDir()
	c, _, _ := newController(t, Config{})
	if _, err := c.Deploy("web", trainModel(t, dir, "a.json", 1), false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy("web", trainModel(t, dir, "b.json", 2), true); err != nil {
		t.Fatal(err)
	}
	d := c.Deployment("web")
	if _, err := c.Rollback("web"); err != nil {
		t.Fatal(err)
	}
	if d.Shadow() != nil || d.Live().Version != 1 {
		t.Fatalf("rollback of staged canary: live v%d shadow %v", d.Live().Version, d.Shadow())
	}
	// Nothing left to roll back to.
	if _, err := c.Rollback("web"); err == nil {
		t.Fatal("rollback with no predecessor succeeded")
	}
}

// TestAutoPromoteOnInEnvelopeHMRE: a shadow whose predictions match the
// reported actuals is auto-promoted once its rolling HMRE window fills
// inside the envelope.
func TestAutoPromoteOnInEnvelopeHMRE(t *testing.T) {
	dir := t.TempDir()
	pathA := trainModel(t, dir, "a.json", 1)
	pathB := trainModel(t, dir, "b.json", 2)
	c, _, events := newController(t, Config{AutoPromote: true, MinObservations: 8, PromoteHMRE: 0.10})
	if _, err := c.Deploy("web", pathA, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy("web", pathB, true); err != nil {
		t.Fatal(err)
	}
	d := c.Deployment("web")
	shadow := d.Shadow()

	x := []float64{1, 1}
	// Actuals equal the shadow's own predictions: shadow HMRE ~ 0, within
	// the envelope and no worse than live.
	actual := shadow.Pred.PredictAll([][]float64{x})[0]
	var promoted bool
	for i := 0; i < 8; i++ {
		dec, err := c.Observe("web", x, actual)
		if err != nil {
			t.Fatal(err)
		}
		if i < 7 && dec.Promoted {
			t.Fatalf("promoted after %d observations, want none before MinObservations=8", i+1)
		}
		promoted = dec.Promoted
	}
	if !promoted {
		t.Fatal("shadow with in-envelope rolling HMRE was not auto-promoted")
	}
	if d.Live().Version != 2 || d.Shadow() != nil {
		t.Fatalf("after auto-promote: live v%d shadow %v", d.Live().Version, d.Shadow())
	}
	last := (*events)[len(*events)-1]
	if last.Action != "promote" || !last.Auto {
		t.Fatalf("last event %+v, want auto promote", last)
	}
}

// TestAutoRollbackOnDegradation: after a promotion, actuals that disagree
// wildly with the live model push rolling HMRE past the demote bound and
// the controller reverts to the predecessor.
func TestAutoRollbackOnDegradation(t *testing.T) {
	dir := t.TempDir()
	pathA := trainModel(t, dir, "a.json", 1)
	pathB := trainModel(t, dir, "b.json", 2)
	c, _, events := newController(t, Config{AutoPromote: true, MinObservations: 6, DemoteHMRE: 0.25})
	if _, err := c.Deploy("web", pathA, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy("web", pathB, false); err != nil { // direct deploy records prev=v1
		t.Fatal(err)
	}
	d := c.Deployment("web")
	if d.Live().Version != 2 {
		t.Fatalf("live v%d, want 2", d.Live().Version)
	}

	// Inject degradation: actuals an order of magnitude away from live.
	x := []float64{1, 1}
	live := d.Live().Pred.PredictAll([][]float64{x})[0]
	bad := make([]float64, len(live))
	for i, v := range live {
		bad[i] = v*10 + 100
	}
	var rolled bool
	for i := 0; i < 6 && !rolled; i++ {
		dec, err := c.Observe("web", x, bad)
		if err != nil {
			t.Fatal(err)
		}
		rolled = dec.RolledBack
	}
	if !rolled {
		t.Fatal("degraded live model was not rolled back")
	}
	if d.Live().Version != 1 {
		t.Fatalf("after auto-rollback: live v%d, want 1", d.Live().Version)
	}
	last := (*events)[len(*events)-1]
	if last.Action != "rollback" || !last.Auto {
		t.Fatalf("last event %+v, want auto rollback", last)
	}
}

func TestObserveValidation(t *testing.T) {
	dir := t.TempDir()
	c, _, _ := newController(t, Config{})
	if _, err := c.Observe("nope", []float64{1, 2}, []float64{1, 2}); err == nil {
		t.Fatal("observe on unknown tenant succeeded")
	}
	if _, err := c.Deploy("web", trainModel(t, dir, "a.json", 1), false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Observe("web", []float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("wrong feature count accepted")
	}
	if _, err := c.Observe("web", []float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("wrong indicator count accepted")
	}
	dec, err := c.Observe("web", []float64{1, 2}, []float64{10, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(dec.LiveHMRE) {
		t.Fatal("live HMRE still NaN after an observation")
	}
	if !math.IsNaN(dec.ShadowHMRE) {
		t.Fatal("shadow HMRE reported with no shadow staged")
	}
}

func TestWindowRolls(t *testing.T) {
	w := newWindow(4)
	if !math.IsNaN(w.mean()) {
		t.Fatal("empty window mean should be NaN")
	}
	for _, v := range []float64{1, 2, 3, 4} {
		w.add(v)
	}
	if got := w.mean(); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("mean %g, want 2.5", got)
	}
	w.add(9) // evicts the 1
	if got := w.mean(); math.Abs(got-4.5) > 1e-12 {
		t.Fatalf("rolled mean %g, want 4.5", got)
	}
	var w2 window
	w2 = *newWindow(4)
	w2.copyFrom(w)
	if got := w2.mean(); math.Abs(got-4.5) > 1e-12 {
		t.Fatalf("copied mean %g, want 4.5", got)
	}
	w.reset()
	if w.count() != 0 || !math.IsNaN(w.mean()) {
		t.Fatal("reset window not empty")
	}
}
