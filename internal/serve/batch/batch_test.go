package batch

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"nnwc/internal/serve/registry"
)

// inst builds a fake instance with just the fields the batcher reads.
func inst(tenant string, version int, shape string) *registry.Instance {
	return &registry.Instance{Artifact: registry.Artifact{Tenant: tenant, Version: version, Shape: shape}}
}

// echoRun answers every job with its own X and records batch compositions.
type echoRun struct {
	mu      sync.Mutex
	batches [][]string // tenant refs per batch
}

func (e *echoRun) run(batch []Job) {
	refs := make([]string, len(batch))
	for i, j := range batch {
		refs[i] = j.Inst.Ref()
	}
	e.mu.Lock()
	e.batches = append(e.batches, refs)
	e.mu.Unlock()
	for _, j := range batch {
		j.Reply <- Result{Y: j.X}
	}
}

// TestCrossTenantSharedShapeGroup: two tenants with the same shape land in
// one group and their queued rows coalesce into one super-batch; a tenant
// with a different shape gets its own group.
func TestCrossTenantSharedShapeGroup(t *testing.T) {
	e := &echoRun{}
	// One worker and a huge MaxWait would stall; workers=1, no wait.
	b := New(Config{MaxBatch: 16, MaxWait: 0, Workers: 1}, e.run)
	defer b.Shutdown()

	a := inst("a", 1, "2-8-2")
	c := inst("c", 1, "2-8-2")
	d := inst("d", 1, "2-16-2")

	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		target := a
		if i%2 == 1 {
			target = c
		}
		go func(target *registry.Instance, i int) {
			defer wg.Done()
			ys, err := b.Submit(ctx, target, [][]float64{{float64(i), 0}})
			if err != nil {
				t.Error(err)
				return
			}
			if ys[0][0] != float64(i) {
				t.Errorf("row %d echoed %v", i, ys[0])
			}
		}(target, i)
	}
	wg.Wait()
	if _, err := b.Submit(ctx, d, [][]float64{{9, 9}}); err != nil {
		t.Fatal(err)
	}

	if got := b.GroupCount(); got != 2 {
		t.Fatalf("group count %d, want 2 (one per shape)", got)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var crossTenant bool
	rows := 0
	for _, refs := range e.batches {
		rows += len(refs)
		seen := map[string]bool{}
		for _, r := range refs {
			seen[r] = true
		}
		if seen["a@v1"] && seen["c@v1"] {
			crossTenant = true
		}
	}
	if rows != 9 {
		t.Fatalf("answered %d rows, want 9", rows)
	}
	if len(e.batches) >= 9 {
		t.Fatalf("%d batches for 9 rows — no coalescing", len(e.batches))
	}
	if !crossTenant {
		t.Fatalf("no batch mixed tenants a and c: %v", e.batches)
	}
}

// TestPerModelKeying: PerModel gives every model its own group even when
// shapes match.
func TestPerModelKeying(t *testing.T) {
	e := &echoRun{}
	b := New(Config{MaxBatch: 8, Workers: 1, PerModel: true}, e.run)
	defer b.Shutdown()
	ctx := context.Background()
	if _, err := b.Submit(ctx, inst("a", 1, "2-8-2"), [][]float64{{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Submit(ctx, inst("c", 1, "2-8-2"), [][]float64{{2}}); err != nil {
		t.Fatal(err)
	}
	if got := b.GroupCount(); got != 2 {
		t.Fatalf("group count %d, want 2 (per model)", got)
	}
}

// TestGatherHonorsMaxBatch: queued backlog drains as capped batches.
func TestGatherHonorsMaxBatch(t *testing.T) {
	var mu sync.Mutex
	var sizes []int
	release := make(chan struct{})
	b := New(Config{MaxBatch: 4, MaxWait: 50 * time.Millisecond, Workers: 1, QueueDepth: 64},
		func(batch []Job) {
			<-release
			mu.Lock()
			sizes = append(sizes, len(batch))
			mu.Unlock()
			for _, j := range batch {
				j.Reply <- Result{Y: j.X}
			}
		})
	defer b.Shutdown()

	a := inst("a", 1, "s")
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 9; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.Submit(ctx, a, [][]float64{{float64(i)}}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	// Let all 9 rows queue behind the blocked worker, then release it.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	for _, s := range sizes {
		if s > 4 {
			t.Fatalf("batch of %d exceeds MaxBatch=4 (%v)", s, sizes)
		}
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 9 {
		t.Fatalf("total rows %d, want 9", total)
	}
}

// TestShedOnFullQueue: a full group queue refuses rows with ErrOverloaded
// instead of blocking the submitter.
func TestShedOnFullQueue(t *testing.T) {
	block := make(chan struct{})
	b := New(Config{MaxBatch: 1, Workers: 1, QueueDepth: 2}, func(batch []Job) {
		<-block
		for _, j := range batch {
			j.Reply <- Result{Y: j.X}
		}
	})
	defer func() { close(block); b.Shutdown() }()

	a := inst("a", 1, "s")
	ctx := context.Background()
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			_, err := b.Submit(ctx, a, [][]float64{{1}})
			done <- err
		}()
	}
	// With one blocked worker and depth 2, at most 1 (in worker) + 2
	// (queued) submissions can be in flight; the rest must shed promptly.
	deadline := time.After(500 * time.Millisecond)
	shed := 0
	for i := 0; i < 8; i++ {
		select {
		case err := <-done:
			if errors.Is(err, ErrOverloaded) {
				shed++
			} else if err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			if shed >= 5 {
				return // the non-shed submissions are still blocked on the worker; fine
			}
			t.Fatalf("only %d rows shed before deadline", shed)
		}
	}
	if shed < 5 {
		t.Fatalf("shed %d rows, want >= 5", shed)
	}
	if b.Sheds() == 0 {
		t.Fatal("shed counter not incremented")
	}
}

// TestShutdownDrainsQueue: jobs queued at shutdown are answered with
// ErrDraining, and later submits refuse immediately.
func TestShutdownDrainsQueue(t *testing.T) {
	b := New(Config{MaxBatch: 4, Workers: 1}, func(batch []Job) {
		for _, j := range batch {
			j.Reply <- Result{Y: j.X}
		}
	})
	a := inst("a", 1, "s")
	if _, err := b.Submit(context.Background(), a, [][]float64{{1}}); err != nil {
		t.Fatal(err)
	}
	b.Shutdown()
	if _, err := b.Submit(context.Background(), a, [][]float64{{1}}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after shutdown = %v, want ErrDraining", err)
	}
}
