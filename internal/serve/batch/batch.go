// Package batch is the fleet's request micro-batcher: concurrent predict
// requests are gathered into batched forward calls, and — the fleet's key
// property — rows are coalesced *across tenants that share a network
// shape*. Every tenant whose model has the same topology key feeds one
// shape group with its own queue and gather workers, so eight lightly
// loaded tenants fill batches as well as one heavily loaded tenant: one
// channel rendezvous, one workspace acquisition, and one scheduler wakeup
// per gathered super-batch instead of per tenant. The run callback groups
// the gathered rows by instance (weights differ per tenant) and pushes
// each sub-batch through the zero-allocation batched forward spine.
//
// Gathering is greedy first — whatever is already queued joins immediately
// — then one cooperative yield lets runnable submitters enqueue, and only
// a lone row on an idle queue waits out MaxWait for company. A full queue
// sheds instead of blocking (ErrOverloaded): the serve plane turns that
// into 429s, which is the queue-depth half of admission control.
package batch

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nnwc/internal/serve/registry"
)

// ErrDraining is returned to requests that reach the batcher while the
// server is shutting down.
var ErrDraining = errors.New("serve: server is draining")

// ErrOverloaded is returned when a shape group's queue is full — the
// load-shedding signal admission control turns into 429s.
var ErrOverloaded = errors.New("serve: prediction queue is full")

// Job is one configuration vector waiting for inference, tagged with the
// immutable instance that must serve it. Reply is buffered so a worker
// never blocks on a caller that gave up.
type Job struct {
	Inst  *registry.Instance
	X     []float64
	Reply chan Result
}

// Result is one row's answer.
type Result struct {
	Y   []float64
	Err error
}

// Config parameterizes a Batcher. Zero values get serve defaults.
type Config struct {
	// MaxBatch bounds the rows gathered into one super-batch (default 64).
	MaxBatch int
	// MaxWait bounds the extra latency a lone row pays waiting for
	// batch-mates (default 0: gather only what is queued).
	MaxWait time.Duration
	// QueueDepth is each shape group's pending-row buffer (default 1024).
	QueueDepth int
	// Workers is the number of gather-and-infer loops per shape group
	// (default GOMAXPROCS).
	Workers int
	// PerModel keys groups by tenant@version instead of network shape —
	// every model batches alone. This is the configuration the fleet
	// replaces; servebench measures both so the cross-tenant win stays
	// visible in BENCH_serve.json.
	PerModel bool
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxWait < 0 {
		c.MaxWait = 0
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Batcher owns the shape groups. Groups are created on demand when the
// first instance with a new topology key submits.
type Batcher struct {
	cfg      Config
	run      func(batch []Job)
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	mu       sync.Mutex
	groups   map[string]*group
	sheds    atomic.Uint64
}

type group struct {
	jobs chan Job
}

// New builds a Batcher over the given inference callback. run receives a
// gathered super-batch — possibly spanning several instances of one shape
// — must answer every job's Reply, and must not retain the slice.
func New(cfg Config, run func(batch []Job)) *Batcher {
	return &Batcher{
		cfg:    cfg.withDefaults(),
		run:    run,
		stop:   make(chan struct{}),
		groups: make(map[string]*group),
	}
}

// key picks the coalescing domain for an instance.
func (b *Batcher) key(inst *registry.Instance) string {
	if b.cfg.PerModel {
		return inst.Ref()
	}
	return inst.Shape
}

// group returns the shape group for key, creating it (and starting its
// workers) on first use.
func (b *Batcher) group(key string) *group {
	b.mu.Lock()
	defer b.mu.Unlock()
	g, ok := b.groups[key]
	if !ok {
		g = &group{jobs: make(chan Job, b.cfg.QueueDepth)}
		b.groups[key] = g
		b.wg.Add(b.cfg.Workers)
		for w := 0; w < b.cfg.Workers; w++ {
			go b.loop(g)
		}
	}
	return g
}

// GroupCount reports how many coalescing domains exist.
func (b *Batcher) GroupCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.groups)
}

// Sheds reports how many rows were refused on a full queue.
func (b *Batcher) Sheds() uint64 { return b.sheds.Load() }

// Submit enqueues every row of xs for inst's shape group and waits for all
// results (or ctx). Rows from one request may land in different batches,
// and batches mix rows from every tenant sharing the shape — that is the
// point. A full queue sheds with ErrOverloaded rather than blocking.
func (b *Batcher) Submit(ctx context.Context, inst *registry.Instance, xs [][]float64) ([][]float64, error) {
	select {
	case <-b.stop:
		return nil, ErrDraining
	default:
	}
	g := b.group(b.key(inst))
	jobs := make([]Job, len(xs))
	for i, x := range xs {
		jobs[i] = Job{Inst: inst, X: x, Reply: make(chan Result, 1)}
		select {
		case g.jobs <- jobs[i]:
		case <-b.stop:
			return nil, ErrDraining
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
			b.sheds.Add(1)
			return nil, ErrOverloaded
		}
	}
	out := make([][]float64, len(xs))
	for i := range jobs {
		select {
		case res := <-jobs[i].Reply:
			if res.Err != nil {
				return nil, res.Err
			}
			out[i] = res.Y
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return out, nil
}

func (b *Batcher) loop(g *group) {
	defer b.wg.Done()
	// One reusable batch buffer per worker: run must finish with the
	// slice before returning, so gather can reuse it without allocating
	// MaxBatch headers per batch.
	buf := make([]Job, 0, b.cfg.MaxBatch)
	for {
		select {
		case <-b.stop:
			b.drain(g)
			return
		case j := <-g.jobs:
			b.run(b.gather(g, buf[:0], j))
		}
	}
}

// drain answers whatever is still queued after stop with ErrDraining. By
// the time stop closes, the HTTP server has already drained its handlers,
// so this is a defensive backstop, not the normal path.
func (b *Batcher) drain(g *group) {
	for {
		select {
		case j := <-g.jobs:
			j.Reply <- Result{Err: ErrDraining}
		default:
			return
		}
	}
}

// gather assembles a super-batch around the first job. Batches form from
// backlog: everything already queued joins greedily, then one cooperative
// yield lets submitters that are already runnable enqueue before the batch
// closes. A batch that found company runs immediately; only a lone row on
// an idle queue is held, up to MaxWait, for near-simultaneous arrivals.
func (b *Batcher) gather(g *group, batch []Job, first Job) []Job {
	batch = append(batch, first)
	batch = b.greedy(g, batch)
	if len(batch) < b.cfg.MaxBatch {
		runtime.Gosched()
		batch = b.greedy(g, batch)
	}
	if len(batch) > 1 || b.cfg.MaxWait <= 0 {
		return batch
	}
	timer := time.NewTimer(b.cfg.MaxWait)
	defer timer.Stop()
	select {
	case j := <-g.jobs:
		return b.greedy(g, append(batch, j))
	case <-timer.C:
	case <-b.stop:
	}
	return batch
}

// greedy drains whatever is queued right now into batch, up to MaxBatch.
func (b *Batcher) greedy(g *group, batch []Job) []Job {
	for len(batch) < b.cfg.MaxBatch {
		select {
		case j := <-g.jobs:
			batch = append(batch, j)
		default:
			return batch
		}
	}
	return batch
}

// Shutdown stops the workers of every group and waits for them;
// idempotent.
func (b *Batcher) Shutdown() {
	b.stopOnce.Do(func() { close(b.stop) })
	b.wg.Wait()
}
