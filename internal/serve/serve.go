// Package serve is the production prediction service, structured as a
// multi-tenant model fleet:
//
//   - registry  versioned immutable artifacts keyed by SHA-256, with an
//     LRU cache of warm (loaded) instances
//   - deploy    per-tenant live/shadow deployments with canary mirroring,
//     rolling-HMRE policy, auto-promotion and rollback
//   - router    per-request "model@version" resolution to instances
//   - batch     cross-tenant request coalescing: tenants whose networks
//     share a topology fill one batch domain together
//
// This package is the HTTP plane on top: it decodes requests, validates
// rows against the resolved artifact's schema, applies admission control
// (per-tenant in-flight budgets, latency budgets, and the batcher's
// queue-depth shedding), and renders responses and metrics.
//
// Endpoints:
//
//	POST /predict         {"model":"web@v3","x":[...]} or {"instances":[[...],...]}
//	POST /observe         {"model":"web","x":[...],"actual":[...]} → policy decision
//	GET  /fleet           per-tenant deployment status (versions, SHAs, HMRE)
//	POST /fleet/deploy    {"model":"web","path":"m.json","canary":true}
//	POST /fleet/promote   {"model":"web"}
//	POST /fleet/rollback  {"model":"web"}
//	GET  /healthz         liveness (process up)
//	GET  /readyz          readiness (≥1 live model, not draining)
//	GET  /metrics         Prometheus text: fleet, per-tenant and batch metrics
//	POST /-/reload        re-register every tenant's configured path; changed
//	                      bytes become a new version deployed straight to live
//
// Models can also be hot-reloaded with SIGHUP (wired in cmd/nnwc).
// Shutdown drains: readiness flips immediately, in-flight requests finish,
// then the inference workers stop.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"nnwc/internal/httpx"
	"nnwc/internal/obs"
	"nnwc/internal/obs/metrics"
	"nnwc/internal/serve/batch"
	"nnwc/internal/serve/deploy"
	"nnwc/internal/serve/registry"
	"nnwc/internal/serve/router"
)

// Config parameterizes a Server. Zero values get production defaults.
type Config struct {
	// Addr is the listen address (default ":8080"; use "127.0.0.1:0" in
	// tests and read the bound address back with Addr).
	Addr string
	// ModelPath is a single persisted model artifact, served as tenant
	// "default" — the pre-fleet configuration, kept for compatibility.
	ModelPath string
	// Models maps tenant name → artifact path; every entry is registered
	// and deployed live at startup. May be combined with ModelPath.
	Models map[string]string
	// DefaultTenant serves requests that name no model. Defaults to the
	// only tenant when exactly one is configured, else "" (unnamed
	// requests are rejected).
	DefaultTenant string
	// WarmModels caps the registry's loaded-instance LRU (default 8).
	WarmModels int
	// Deploy tunes the canary promotion/rollback policy.
	Deploy deploy.Config
	// MaxBatch bounds the rows gathered into one forward call (default
	// 64). 1 disables coalescing — every request is its own forward call.
	MaxBatch int
	// MaxWait bounds the extra latency a request can pay waiting for
	// batch-mates (default 2ms). 0 means gather only what is already
	// queued.
	MaxWait time.Duration
	// RequestTimeout bounds one prediction end to end (default 5s).
	RequestTimeout time.Duration
	// ReadTimeout, WriteTimeout and IdleTimeout bound the listener's
	// per-connection I/O (reading one full request, writing one full
	// response, keep-alive idle time) so a slow or stalled client cannot
	// pin a connection forever. Zero takes the httpx defaults (30s / 30s
	// / 120s; request headers are always bounded at 5s); a negative value
	// disables that timeout explicitly.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	IdleTimeout  time.Duration
	// Workers is the number of gather-and-infer loops per batch domain
	// (default GOMAXPROCS).
	Workers int
	// QueueDepth is each batch domain's pending-row buffer (default 1024).
	// A full queue sheds new rows with 429 — the queue-depth half of
	// admission control.
	QueueDepth int
	// MaxInflight caps concurrently handled predict requests per tenant;
	// beyond it requests shed with 429 (default 0: uncapped).
	MaxInflight int
	// LatencyBudget, when set, bounds one prediction tighter than
	// RequestTimeout; a request that cannot finish inside the budget is
	// shed with 429 so queue pressure relieves itself (default 0: off).
	LatencyBudget time.Duration
	// PerModelBatching keys batch domains by tenant@version instead of
	// network shape — every model coalesces alone. The configuration the
	// fleet replaces; kept so servebench can measure both.
	PerModelBatching bool
	// Float32 serves predictions through the quantized float32 inference
	// kernels (models train in float64; artifacts carry a persist-time
	// params_f32 vector). Accuracy deltas are pinned in internal/core; see
	// DESIGN.md §13.
	Float32 bool
	// MaxBodyBytes caps a request body (default 1 MiB).
	MaxBodyBytes int64
	// Trace, when set, receives registry and deployment events
	// (model_deploy, model_promote, ...) for the run's trace file.
	Trace *obs.Trace
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return c
}

// DefaultSingleTenant is the tenant name a bare ModelPath is served under.
const DefaultSingleTenant = "default"

// Server is the prediction service. Create with New, start listening with
// Start, stop with Shutdown.
type Server struct {
	cfg     Config
	reg     *registry.Registry
	ctl     *deploy.Controller
	router  *router.Router
	batcher *batch.Batcher
	metrics *metricsRegistry

	// tenantPaths remembers each tenant's configured artifact path — the
	// file /-/reload and SIGHUP re-register.
	tenantPaths map[string]string

	http     *http.Server
	ln       net.Listener
	draining atomic.Bool
	serveErr chan error
}

// New builds a Server: the registry, deployment controller, router and
// cross-tenant batcher are wired together, every configured model is
// registered and deployed live, and the inference workers start. The HTTP
// listener is not opened until Start; Handler can be mounted elsewhere
// (tests, embedding).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		reg:         registry.New(cfg.WarmModels),
		tenantPaths: make(map[string]string),
		serveErr:    make(chan error, 1),
	}
	s.reg.SetFloat32(cfg.Float32)
	s.metrics = newMetricsRegistry(
		func() float64 { return float64(s.reg.WarmCount()) },
		func() float64 { return float64(s.batcher.GroupCount()) },
	)
	s.ctl = deploy.New(s.reg, cfg.Deploy, s.onFleetEvent)
	s.batcher = batch.New(batch.Config{
		MaxBatch:   cfg.MaxBatch,
		MaxWait:    cfg.MaxWait,
		QueueDepth: cfg.QueueDepth,
		Workers:    cfg.Workers,
		PerModel:   cfg.PerModelBatching,
	}, s.runBatch)

	if cfg.ModelPath != "" {
		s.tenantPaths[DefaultSingleTenant] = cfg.ModelPath
	}
	for tenant, path := range cfg.Models {
		if prev, ok := s.tenantPaths[tenant]; ok && prev != path {
			return nil, fmt.Errorf("serve: tenant %q configured twice (%s and %s)", tenant, prev, path)
		}
		s.tenantPaths[tenant] = path
	}
	for _, tenant := range sortedTenants(s.tenantPaths) {
		if _, err := s.ctl.Deploy(tenant, s.tenantPaths[tenant], false); err != nil {
			s.batcher.Shutdown()
			return nil, fmt.Errorf("serve: deploying %q: %w", tenant, err)
		}
	}
	def := cfg.DefaultTenant
	if def == "" && len(s.tenantPaths) == 1 {
		for tenant := range s.tenantPaths {
			def = tenant
		}
	}
	if def != "" {
		if _, ok := s.tenantPaths[def]; !ok {
			s.batcher.Shutdown()
			return nil, fmt.Errorf("serve: default tenant %q has no configured model", def)
		}
	}
	s.router = router.New(s.reg, s.ctl, def)
	return s, nil
}

func sortedTenants(m map[string]string) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// onFleetEvent is the deployment controller's sink: count the action,
// surface the rolled version in the run trace.
func (s *Server) onFleetEvent(e deploy.Event) {
	s.metrics.fleetEvents.Inc(e.Tenant, e.Action)
	if s.cfg.Trace != nil {
		auto := 0
		if e.Auto {
			auto = 1
		}
		s.cfg.Trace.Emit("model_"+e.Action,
			obs.String("tenant", e.Tenant),
			obs.Int("version", e.Version),
			obs.String("sha256", e.SHA256),
			obs.Int("auto", auto))
	}
}

// Registry exposes the model store (for manifests and tests).
func (s *Server) Registry() *registry.Registry { return s.reg }

// Controller exposes the deployment controller (for tests and embedding).
func (s *Server) Controller() *deploy.Controller { return s.ctl }

// Reload re-registers every tenant's configured artifact path. Files whose
// bytes changed become a new registry version and swap straight to live
// (requests in flight keep their resolved snapshot); unchanged files are
// no-ops. Used by /-/reload and SIGHUP.
func (s *Server) Reload() error {
	var errs []error
	for _, tenant := range sortedTenants(s.tenantPaths) {
		var before *registry.Instance
		if d := s.ctl.Deployment(tenant); d != nil {
			before = d.Live()
		}
		inst, err := s.ctl.Deploy(tenant, s.tenantPaths[tenant], false)
		if err != nil {
			s.metrics.observeError("reload_failed")
			errs = append(errs, fmt.Errorf("%s: %w", tenant, err))
			continue
		}
		if before == nil || inst.Version != before.Version {
			s.metrics.observeReload()
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("serve: reload: %w", errors.Join(errs...))
	}
	return nil
}

// ModelInfo describes the model that served a response.
type ModelInfo struct {
	Ref          string   `json:"ref"` // tenant@vN
	Version      int      `json:"version"`
	SHA256       string   `json:"sha256"`
	Shape        string   `json:"shape"`
	Precision    string   `json:"precision"` // "float64" | "float32"
	Path         string   `json:"path"`
	LoadedAt     string   `json:"loaded_at"`
	FeatureNames []string `json:"feature_names"`
	TargetNames  []string `json:"target_names"`
}

func modelInfo(inst *registry.Instance) ModelInfo {
	return ModelInfo{
		Ref:          inst.Ref(),
		Version:      inst.Version,
		SHA256:       inst.SHA256,
		Shape:        inst.Shape,
		Precision:    inst.Precision,
		Path:         inst.Path,
		LoadedAt:     inst.LoadedAt.UTC().Format(time.RFC3339Nano),
		FeatureNames: inst.FeatureNames,
		TargetNames:  inst.TargetNames,
	}
}

// PredictRequest is the /predict body: one vector in X, or several in
// Instances (exactly one of the two). Model selects the serving model —
// "" (the default tenant), "web" (live), or "web@v3" (pinned).
type PredictRequest struct {
	Model     string      `json:"model,omitempty"`
	X         []float64   `json:"x,omitempty"`
	Instances [][]float64 `json:"instances,omitempty"`
}

// PredictResponse is the /predict reply. Predictions[i][j] is indicator j
// (TargetNames[j]) for input row i, in native units.
type PredictResponse struct {
	Predictions [][]float64 `json:"predictions"`
	TargetNames []string    `json:"target_names"`
	Warnings    []string    `json:"warnings,omitempty"`
	Model       ModelInfo   `json:"model"`
}

// ObserveRequest is the /observe body: one configuration vector and the
// performance indicators actually measured for it. Observations feed the
// named tenant's rolling-HMRE windows (live and shadow) and drive the
// canary policy.
type ObserveRequest struct {
	Model  string    `json:"model,omitempty"`
	X      []float64 `json:"x"`
	Actual []float64 `json:"actual"`
}

// ObserveResponse reports the rolling state after one observation. HMRE
// fields are omitted until their window has data.
type ObserveResponse struct {
	Tenant     string   `json:"tenant"`
	LiveHMRE   *float64 `json:"live_hmre,omitempty"`
	ShadowHMRE *float64 `json:"shadow_hmre,omitempty"`
	Promoted   bool     `json:"promoted,omitempty"`
	RolledBack bool     `json:"rolled_back,omitempty"`
}

// TenantStatus is one tenant's /fleet row — deploy.Status with the
// NaN-able rolling means made JSON-safe.
type TenantStatus struct {
	Tenant       string   `json:"tenant"`
	LiveVersion  int      `json:"live_version"`
	LiveSHA256   string   `json:"live_sha256"`
	LiveShape    string   `json:"live_shape"`
	ShadowVer    int      `json:"shadow_version,omitempty"`
	ShadowSHA256 string   `json:"shadow_sha256,omitempty"`
	PrevVersion  int      `json:"previous_version,omitempty"`
	LiveHMRE     *float64 `json:"live_hmre,omitempty"`
	ShadowHMRE   *float64 `json:"shadow_hmre,omitempty"`
	Divergence   *float64 `json:"shadow_divergence,omitempty"`
	LiveObs      int      `json:"live_observations"`
	ShadowObs    int      `json:"shadow_observations"`
	Promotions   uint64   `json:"promotions"`
	Rollbacks    uint64   `json:"rollbacks"`
}

// FleetStatus is the /fleet reply.
type FleetStatus struct {
	Tenants   []TenantStatus `json:"tenants"`
	WarmCount int            `json:"warm_models"`
	Groups    int            `json:"batch_groups"`
}

// nanSafe converts a possibly-NaN float into a JSON-encodable pointer
// (json.Marshal rejects NaN outright).
func nanSafe(v float64) *float64 {
	if math.IsNaN(v) {
		return nil
	}
	return &v
}

func tenantStatus(st deploy.Status) TenantStatus {
	return TenantStatus{
		Tenant:       st.Tenant,
		LiveVersion:  st.LiveVersion,
		LiveSHA256:   st.LiveSHA256,
		LiveShape:    st.LiveShape,
		ShadowVer:    st.ShadowVer,
		ShadowSHA256: st.ShadowSHA256,
		PrevVersion:  st.PrevVersion,
		LiveHMRE:     nanSafe(st.LiveHMRE),
		ShadowHMRE:   nanSafe(st.ShadowHMRE),
		Divergence:   nanSafe(st.Divergence),
		LiveObs:      st.LiveObs,
		ShadowObs:    st.ShadowObs,
		Promotions:   st.Promotions,
		Rollbacks:    st.Rollbacks,
	}
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /predict", s.handlePredict)
	mux.HandleFunc("POST /observe", s.handleObserve)
	mux.HandleFunc("GET /fleet", s.handleFleet)
	mux.HandleFunc("POST /fleet/deploy", s.handleFleetDeploy)
	mux.HandleFunc("POST /fleet/promote", s.handleFleetAction("promote", s.ctl.Promote))
	mux.HandleFunc("POST /fleet/rollback", s.handleFleetAction("rollback", s.ctl.Rollback))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /-/reload", s.handleReload)
	return mux
}

// Start opens the listener on cfg.Addr and serves the API until Shutdown.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	// The shared httpx middleware gives the serve plane the same
	// server-side request metrics and span events the dist coordinator has
	// (routes here are a fixed set, so the default METHOD+path label works).
	handler := httpx.Instrument(httpx.InstrumentOptions{Service: "serve", Trace: s.cfg.Trace}, s.Handler())
	s.http = httpx.NewServer(handler, httpx.Timeouts{
		Read:  s.cfg.ReadTimeout,
		Write: s.cfg.WriteTimeout,
		Idle:  s.cfg.IdleTimeout,
	})
	go func() {
		err := s.http.Serve(ln)
		if errors.Is(err, http.ErrServerClosed) {
			err = nil // clean Shutdown-initiated close
		}
		s.serveErr <- err
	}()
	return nil
}

// Addr reports the bound listen address (useful with Addr "127.0.0.1:0").
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// Wait blocks until the HTTP listener stops: nil after a clean
// Shutdown-initiated close, the serve error if the listener fails.
func (s *Server) Wait() error { return <-s.serveErr }

// Predict submits one row to the default tenant's live model — the
// pre-fleet in-process API, equivalent to PredictRef(ctx, "", x).
func (s *Server) Predict(ctx context.Context, x []float64) ([]float64, error) {
	return s.PredictRef(ctx, "", x)
}

// PredictRef resolves ref ("", "web", "web@v3") and submits one row
// through the cross-tenant batcher. This is the same inference path the
// /predict handler uses, minus HTTP — for embedding the server in-process
// and for benchmarks that isolate the micro-batching layer.
func (s *Server) PredictRef(ctx context.Context, ref string, x []float64) ([]float64, error) {
	inst, _, err := s.router.Resolve(ref)
	if err != nil {
		return nil, err
	}
	if len(x) != inst.InputDim {
		return nil, fmt.Errorf("serve: model %s expects %d features, got %d", inst.Ref(), inst.InputDim, len(x))
	}
	ys, err := s.batcher.Submit(ctx, inst, [][]float64{x})
	if err != nil {
		return nil, err
	}
	return ys[0], nil
}

// Shutdown drains and stops the server: readiness flips to 503 first (load
// balancers stop routing), the HTTP server stops accepting and waits for
// in-flight handlers within ctx, then the inference workers stop. Requests
// in flight at call time complete normally.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	var err error
	if s.http != nil {
		err = s.http.Shutdown(ctx)
	} else {
		// Never started: unblock any Wait caller anyway.
		select {
		case s.serveErr <- nil:
		default:
		}
	}
	s.batcher.Shutdown()
	return err
}

// runBatch is the batcher's inference callback. The gathered super-batch
// may span several instances of one network shape; rows regroup by
// instance (weights differ) and each sub-batch takes one batched forward
// call. After replies fan out, live rows whose tenant has a staged shadow
// are mirrored: the shadow predicts the same rows and the divergence
// between the answers feeds the canary's comparison window.
func (s *Server) runBatch(jobs []batch.Job) {
	s.metrics.observeBatch(len(jobs))
	// Group by instance, preserving first-seen order for determinism.
	type subBatch struct {
		inst *registry.Instance
		xs   [][]float64
		js   []batch.Job
	}
	var subs []*subBatch
	byInst := make(map[*registry.Instance]*subBatch, 1)
	for _, j := range jobs {
		sb, ok := byInst[j.Inst]
		if !ok {
			sb = &subBatch{inst: j.Inst}
			byInst[j.Inst] = sb
			subs = append(subs, sb)
		}
		sb.xs = append(sb.xs, j.X)
		sb.js = append(sb.js, j)
	}
	for _, sb := range subs {
		outs, err := predictSafely(sb.inst, sb.xs)
		if err != nil {
			s.metrics.observeError("inference_panic")
			for _, j := range sb.js {
				j.Reply <- batch.Result{Err: err}
			}
			continue
		}
		for i, j := range sb.js {
			j.Reply <- batch.Result{Y: outs[i]}
		}
		s.mirror(sb.inst, sb.xs, outs)
	}
}

// mirror runs a staged shadow over rows its live sibling just served and
// records prediction divergence. Replies have already been sent — shadow
// inference never adds latency to the live path.
func (s *Server) mirror(inst *registry.Instance, xs, liveOuts [][]float64) {
	d := s.ctl.Deployment(inst.Tenant)
	if d == nil || d.Live() != inst {
		return // pinned-version traffic is not mirrored
	}
	sh := d.Shadow()
	if sh == nil {
		return
	}
	shOuts, err := predictSafely(sh, xs)
	if err != nil {
		s.metrics.observeError("shadow_panic")
		return
	}
	for i := range xs {
		d.Mirror(liveOuts[i], shOuts[i])
	}
	st := d.Status()
	if !math.IsNaN(st.Divergence) {
		s.metrics.divergence.Observe(st.Divergence, inst.Tenant)
	}
}

// predictSafely converts an inference panic into an error so one poisoned
// batch cannot take the server down.
func predictSafely(inst *registry.Instance, xs [][]float64) (outs [][]float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: inference panicked: %v", r)
		}
	}()
	return inst.Pred.PredictAll(xs), nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, "healthz", http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		s.writeJSON(w, "readyz", http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case !s.anyLive():
		s.writeJSON(w, "readyz", http.StatusServiceUnavailable, map[string]string{"status": "no model loaded"})
	default:
		s.writeJSON(w, "readyz", http.StatusOK, map[string]string{"status": "ready"})
	}
}

func (s *Server) anyLive() bool {
	for _, tenant := range s.reg.Tenants() {
		if d := s.ctl.Deployment(tenant); d != nil && d.Live() != nil {
			return true
		}
	}
	return false
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var meta *modelMeta
	if d := s.ctl.Deployment(s.router.DefaultTenant()); d != nil {
		if live := d.Live(); live != nil {
			meta = &modelMeta{
				path:       live.Path,
				loadedUnix: live.LoadedAt.Unix(),
				features:   live.InputDim,
				targets:    live.OutputDim,
			}
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, meta)
	// The process-wide registry carries the series the shared httpx
	// middleware records (nnwc_http_*), so one scrape sees both the
	// fleet surface and the request layer.
	metrics.Default().Write(w)
	s.metrics.observeRequest("metrics", http.StatusOK, 0)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if err := s.Reload(); err != nil {
		s.writeJSON(w, "reload", http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	s.writeJSON(w, "reload", http.StatusOK, map[string]any{
		"status":  "reloaded",
		"tenants": sortedTenants(s.tenantPaths),
	})
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	st := FleetStatus{
		Tenants:   []TenantStatus{},
		WarmCount: s.reg.WarmCount(),
		Groups:    s.batcher.GroupCount(),
	}
	for _, tenant := range s.reg.Tenants() {
		if d := s.ctl.Deployment(tenant); d != nil {
			st.Tenants = append(st.Tenants, tenantStatus(d.Status()))
		}
	}
	s.writeJSON(w, "fleet", http.StatusOK, st)
}

// fleetRequest is the body of the /fleet mutation endpoints.
type fleetRequest struct {
	Model  string `json:"model"`
	Path   string `json:"path,omitempty"`
	Canary bool   `json:"canary,omitempty"`
}

func (s *Server) decodeFleetRequest(w http.ResponseWriter, r *http.Request, endpoint string) (fleetRequest, bool) {
	var req fleetRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.metrics.observeError("bad_json")
		s.writeJSON(w, endpoint, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("decoding request: %v", err)})
		return req, false
	}
	if req.Model == "" {
		s.metrics.observeError("bad_request")
		s.writeJSON(w, endpoint, http.StatusBadRequest, errorResponse{Error: `"model" is required`})
		return req, false
	}
	return req, true
}

func (s *Server) handleFleetDeploy(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeFleetRequest(w, r, "fleet_deploy")
	if !ok {
		return
	}
	if req.Path == "" {
		s.metrics.observeError("bad_request")
		s.writeJSON(w, "fleet_deploy", http.StatusBadRequest, errorResponse{Error: `"path" is required`})
		return
	}
	inst, err := s.ctl.Deploy(req.Model, req.Path, req.Canary)
	if err != nil {
		s.metrics.observeError("deploy_failed")
		s.writeJSON(w, "fleet_deploy", http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	// The deployed path becomes the tenant's reload target.
	s.tenantPaths[req.Model] = req.Path
	s.writeJSON(w, "fleet_deploy", http.StatusOK, map[string]any{
		"status": "deployed",
		"canary": req.Canary,
		"model":  modelInfo(inst),
	})
}

func (s *Server) handleFleetAction(endpoint string, action func(string) (*registry.Instance, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		req, ok := s.decodeFleetRequest(w, r, "fleet_"+endpoint)
		if !ok {
			return
		}
		inst, err := action(req.Model)
		if err != nil {
			s.metrics.observeError(endpoint + "_failed")
			s.writeJSON(w, "fleet_"+endpoint, http.StatusConflict, errorResponse{Error: err.Error()})
			return
		}
		status := endpoint + "d"
		if endpoint == "rollback" {
			status = "rolled back"
		}
		resp := map[string]any{"status": status}
		if inst != nil {
			resp["model"] = modelInfo(inst)
		}
		s.writeJSON(w, "fleet_"+endpoint, http.StatusOK, resp)
	}
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	var req ObserveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.metrics.observeError("bad_json")
		s.writeJSON(w, "observe", http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("decoding request: %v", err)})
		return
	}
	tenant := req.Model
	if tenant == "" {
		tenant = s.router.DefaultTenant()
	}
	dec2, err := s.ctl.Observe(tenant, req.X, req.Actual)
	if err != nil {
		s.metrics.observeError("bad_observation")
		s.writeJSON(w, "observe", http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if !math.IsNaN(dec2.LiveHMRE) {
		s.metrics.rollingHMRE.Set(dec2.LiveHMRE, tenant, "live")
	}
	if !math.IsNaN(dec2.ShadowHMRE) {
		s.metrics.rollingHMRE.Set(dec2.ShadowHMRE, tenant, "shadow")
	}
	s.writeJSON(w, "observe", http.StatusOK, ObserveResponse{
		Tenant:     tenant,
		LiveHMRE:   nanSafe(dec2.LiveHMRE),
		ShadowHMRE: nanSafe(dec2.ShadowHMRE),
		Promoted:   dec2.Promoted,
		RolledBack: dec2.RolledBack,
	})
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)

	tenant := "" // resolved below; failures before resolution count globally only
	respond := func(status int, v any) {
		elapsed := time.Since(start)
		s.writeJSONTimed(w, "predict", status, v, elapsed)
		if tenant != "" {
			s.metrics.observeTenantRequest(tenant, status, elapsed.Seconds())
		}
	}

	if s.draining.Load() {
		s.metrics.observeError("draining")
		respond(http.StatusServiceUnavailable, errorResponse{Error: "server is draining"})
		return
	}

	var req PredictRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.metrics.observeError("bad_json")
		respond(http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("decoding request: %v", err)})
		return
	}

	inst, _, err := s.router.Resolve(req.Model)
	if err != nil {
		status := http.StatusNotFound
		reason := "unknown_model"
		switch {
		case errors.Is(err, router.ErrBadRef):
			status, reason = http.StatusBadRequest, "bad_request"
		case errors.Is(err, router.ErrNoLive):
			status, reason = http.StatusServiceUnavailable, "no_model"
		case errors.Is(err, router.ErrUnknownModel) && len(s.reg.Tenants()) == 0:
			// An empty fleet is an operational state, not a client mistake.
			status, reason = http.StatusServiceUnavailable, "no_model"
		}
		s.metrics.observeError(reason)
		respond(status, errorResponse{Error: err.Error()})
		return
	}
	tenant = inst.Tenant

	// Admission control, in-flight half: each tenant gets a budget of
	// concurrently handled requests; beyond it we shed rather than queue.
	if s.cfg.MaxInflight > 0 && s.metrics.tenantInflight.Value(tenant) >= float64(s.cfg.MaxInflight) {
		s.metrics.observeShed(tenant, "inflight_budget")
		respond(http.StatusTooManyRequests, errorResponse{Error: fmt.Sprintf("tenant %q is over its in-flight budget (%d)", tenant, s.cfg.MaxInflight)})
		return
	}
	s.metrics.tenantInflight.Add(1, tenant)
	defer s.metrics.tenantInflight.Add(-1, tenant)

	rows, err := requestRows(req)
	if err != nil {
		s.metrics.observeError("bad_request")
		respond(http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	warnings, err := validateRows(inst, rows)
	if err != nil {
		s.metrics.observeError("bad_input")
		respond(http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}

	// Admission control, latency half: the request must finish inside its
	// latency budget (when configured) or be shed.
	timeout := s.cfg.RequestTimeout
	budgeted := s.cfg.LatencyBudget > 0 && s.cfg.LatencyBudget < timeout
	if budgeted {
		timeout = s.cfg.LatencyBudget
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	preds, err := s.batcher.Submit(ctx, inst, rows)
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded) && budgeted:
		s.metrics.observeShed(tenant, "latency_budget")
		respond(http.StatusTooManyRequests, errorResponse{Error: fmt.Sprintf("prediction exceeded the %s latency budget", s.cfg.LatencyBudget)})
		return
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.observeError("timeout")
		respond(http.StatusGatewayTimeout, errorResponse{Error: "prediction timed out"})
		return
	case errors.Is(err, batch.ErrOverloaded):
		s.metrics.observeShed(tenant, "queue_full")
		respond(http.StatusTooManyRequests, errorResponse{Error: "prediction queue is full"})
		return
	case errors.Is(err, batch.ErrDraining):
		s.metrics.observeError("draining")
		respond(http.StatusServiceUnavailable, errorResponse{Error: "server is draining"})
		return
	default:
		s.metrics.observeError("inference")
		respond(http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}

	respond(http.StatusOK, PredictResponse{
		Predictions: preds,
		TargetNames: inst.TargetNames,
		Warnings:    warnings,
		Model:       modelInfo(inst),
	})
}

// requestRows normalizes a PredictRequest into its input rows.
func requestRows(req PredictRequest) ([][]float64, error) {
	switch {
	case len(req.X) > 0 && len(req.Instances) > 0:
		return nil, errors.New(`use "x" or "instances", not both`)
	case len(req.X) > 0:
		return [][]float64{req.X}, nil
	case len(req.Instances) > 0:
		return req.Instances, nil
	}
	return nil, errors.New(`request must carry "x" (one vector) or "instances" (several)`)
}

// maxWarnings caps the envelope warnings one response carries.
const maxWarnings = 16

// validateRows checks dimensionality and finiteness (hard errors) and
// collects training-envelope warnings (soft: the model will extrapolate,
// which the paper's methodology does not vouch for).
func validateRows(inst *registry.Instance, rows [][]float64) ([]string, error) {
	var warnings []string
	for i, x := range rows {
		if len(x) != inst.InputDim {
			return nil, fmt.Errorf("row %d has %d features, model %s expects %d (%v)", i, len(x), inst.Ref(), inst.InputDim, inst.FeatureNames)
		}
		for j, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("row %d feature %q: non-finite value", i, inst.FeatureNames[j])
			}
			if inst.FeatureMin != nil && (v < inst.FeatureMin[j] || v > inst.FeatureMax[j]) && len(warnings) < maxWarnings {
				warnings = append(warnings, fmt.Sprintf("row %d: %s=%g outside training envelope [%g, %g]",
					i, inst.FeatureNames[j], v, inst.FeatureMin[j], inst.FeatureMax[j]))
			}
		}
	}
	return warnings, nil
}

func (s *Server) writeJSON(w http.ResponseWriter, endpoint string, status int, v any) {
	s.writeJSONTimed(w, endpoint, status, v, 0)
}

func (s *Server) writeJSONTimed(w http.ResponseWriter, endpoint string, status int, v any, elapsed time.Duration) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
	s.metrics.observeRequest(endpoint, status, elapsed.Seconds())
}
