// Package serve is the production prediction service: it loads a persisted
// workload model (network + fitted scalers, core/persist), exposes an HTTP
// API for configuration-parameter → performance-indicator predictions, and
// keeps the hot path batched — concurrent requests are coalesced into one
// batched forward call through the zero-allocation nn kernels.
//
// Endpoints:
//
//	POST /predict   {"x":[...]} or {"instances":[[...],...]} → predictions
//	GET  /healthz   liveness (process up)
//	GET  /readyz    readiness (model loaded, not draining)
//	GET  /metrics   Prometheus text: request/error counters, latency and
//	                batch-size quantiles, model metadata
//	POST /-/reload  atomically reload the model artifact from disk
//
// The model can also be hot-reloaded with SIGHUP (wired in cmd/nnwc).
// Shutdown drains: readiness flips immediately, in-flight requests finish,
// then the inference workers stop.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"nnwc/internal/core"
)

// Config parameterizes a Server. Zero values get production defaults.
type Config struct {
	// Addr is the listen address (default ":8080"; use "127.0.0.1:0" in
	// tests and read the bound address back with Addr).
	Addr string
	// ModelPath is the persisted model artifact to serve and hot-reload.
	ModelPath string
	// MaxBatch bounds the rows gathered into one forward call (default
	// 64). 1 disables coalescing — every request is its own forward call.
	MaxBatch int
	// MaxWait bounds the extra latency a request can pay waiting for
	// batch-mates (default 2ms). 0 means gather only what is already
	// queued.
	MaxWait time.Duration
	// RequestTimeout bounds one prediction end to end (default 5s).
	RequestTimeout time.Duration
	// Workers is the number of independent gather-and-infer loops
	// (default GOMAXPROCS).
	Workers int
	// QueueDepth is the pending-row buffer (default 1024).
	QueueDepth int
	// MaxBodyBytes caps a request body (default 1 MiB).
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxWait < 0 {
		c.MaxWait = 0
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return c
}

// batchPredictor is what inference needs from a model; *core.NNModel
// satisfies it, and tests wrap it to inject latency.
type batchPredictor interface {
	PredictAll(xs [][]float64) [][]float64
}

// modelState is one immutable loaded-model snapshot. Hot reload swaps the
// whole state atomically, so a batch always sees one consistent model.
type modelState struct {
	pred                   batchPredictor
	inputDim, outputDim    int
	featureNames           []string
	targetNames            []string
	featureMin, featureMax []float64
	path                   string
	loadedAt               time.Time
}

func newModelState(m *core.NNModel, path string) *modelState {
	return &modelState{
		pred:         m,
		inputDim:     m.InputDim(),
		outputDim:    m.OutputDim(),
		featureNames: m.FeatureNames,
		targetNames:  m.TargetNames,
		featureMin:   m.FeatureMin,
		featureMax:   m.FeatureMax,
		path:         path,
		loadedAt:     time.Now(),
	}
}

// Server is the prediction service. Create with New, start listening with
// Start, stop with Shutdown.
type Server struct {
	cfg      Config
	model    atomic.Pointer[modelState]
	metrics  *metricsRegistry
	co       *coalescer
	http     *http.Server
	ln       net.Listener
	draining atomic.Bool
	serveErr chan error
}

// New builds a Server, loads the initial model from cfg.ModelPath (when
// set), and starts the inference workers. The HTTP listener is not opened
// until Start; Handler can be mounted elsewhere (tests, embedding).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		metrics:  newMetricsRegistry(),
		serveErr: make(chan error, 1),
	}
	s.co = newCoalescer(cfg.MaxBatch, cfg.MaxWait, cfg.QueueDepth, s.runBatch)
	if cfg.ModelPath != "" {
		m, err := core.LoadModelFile(cfg.ModelPath)
		if err != nil {
			return nil, fmt.Errorf("serve: loading model: %w", err)
		}
		s.model.Store(newModelState(m, cfg.ModelPath))
	}
	s.co.start(cfg.Workers)
	return s, nil
}

// Reload atomically replaces the serving model with a fresh load of
// cfg.ModelPath. On failure the previous model keeps serving.
func (s *Server) Reload() error {
	m, err := core.LoadModelFile(s.cfg.ModelPath)
	if err != nil {
		s.metrics.observeError("reload_failed")
		return fmt.Errorf("serve: reload: %w", err)
	}
	s.model.Store(newModelState(m, s.cfg.ModelPath))
	s.metrics.observeReload()
	return nil
}

// ModelInfo describes the serving model in API responses.
type ModelInfo struct {
	Path         string   `json:"path"`
	LoadedAt     string   `json:"loaded_at"`
	FeatureNames []string `json:"feature_names"`
	TargetNames  []string `json:"target_names"`
}

// PredictRequest is the /predict body: one vector in X, or several in
// Instances (exactly one of the two).
type PredictRequest struct {
	X         []float64   `json:"x,omitempty"`
	Instances [][]float64 `json:"instances,omitempty"`
}

// PredictResponse is the /predict reply. Predictions[i][j] is indicator j
// (TargetNames[j]) for input row i, in native units.
type PredictResponse struct {
	Predictions [][]float64 `json:"predictions"`
	TargetNames []string    `json:"target_names"`
	Warnings    []string    `json:"warnings,omitempty"`
	Model       ModelInfo   `json:"model"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /predict", s.handlePredict)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /-/reload", s.handleReload)
	return mux
}

// Start opens the listener on cfg.Addr and serves the API until Shutdown.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.http = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		if err := s.http.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.serveErr <- err
		}
	}()
	return nil
}

// Addr reports the bound listen address (useful with Addr "127.0.0.1:0").
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// Wait blocks until the HTTP listener fails (never returns after a clean
// Shutdown-initiated close; use Shutdown from a signal handler for that).
func (s *Server) Wait() error { return <-s.serveErr }

// Predict submits one row through the coalescer and returns its prediction.
// This is the same inference path the /predict handler uses, minus HTTP —
// for embedding the server in-process and for benchmarks that isolate the
// micro-batching layer.
func (s *Server) Predict(ctx context.Context, x []float64) ([]float64, error) {
	ms := s.model.Load()
	if ms == nil {
		return nil, errors.New("serve: no model loaded")
	}
	if len(x) != ms.inputDim {
		return nil, fmt.Errorf("serve: model expects %d features, got %d", ms.inputDim, len(x))
	}
	ys, err := s.co.submitAll(ctx, [][]float64{x})
	if err != nil {
		return nil, err
	}
	return ys[0], nil
}

// Shutdown drains and stops the server: readiness flips to 503 first (load
// balancers stop routing), the HTTP server stops accepting and waits for
// in-flight handlers within ctx, then the inference workers stop. Requests
// in flight at call time complete normally.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	var err error
	if s.http != nil {
		err = s.http.Shutdown(ctx)
	}
	s.co.shutdown()
	return err
}

// runBatch is the coalescer's inference callback: validate each row against
// the current model snapshot, run one batched forward call, fan the rows
// back out.
func (s *Server) runBatch(batch []predictJob) {
	ms := s.model.Load()
	s.metrics.observeBatch(len(batch))
	if ms == nil {
		for _, j := range batch {
			j.reply <- predictResult{err: errors.New("serve: no model loaded")}
		}
		return
	}
	xs := make([][]float64, 0, len(batch))
	idx := make([]int, 0, len(batch))
	for i, j := range batch {
		// The handler validated against the snapshot it saw; a hot reload
		// may have changed dimensionality since. Reject the stale rows
		// instead of poisoning the whole batch.
		if len(j.x) != ms.inputDim {
			j.reply <- predictResult{err: fmt.Errorf("serve: model expects %d features, got %d (model reloaded mid-flight; retry)", ms.inputDim, len(j.x))}
			continue
		}
		xs = append(xs, j.x)
		idx = append(idx, i)
	}
	if len(xs) == 0 {
		return
	}
	outs, err := predictSafely(ms.pred, xs)
	if err != nil {
		s.metrics.observeError("inference_panic")
		for _, i := range idx {
			batch[i].reply <- predictResult{err: err}
		}
		return
	}
	for k, i := range idx {
		batch[i].reply <- predictResult{y: outs[k]}
	}
}

// predictSafely converts an inference panic into an error so one poisoned
// batch cannot take the server down.
func predictSafely(p batchPredictor, xs [][]float64) (outs [][]float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: inference panicked: %v", r)
		}
	}()
	return p.PredictAll(xs), nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, "healthz", http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		s.writeJSON(w, "readyz", http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case s.model.Load() == nil:
		s.writeJSON(w, "readyz", http.StatusServiceUnavailable, map[string]string{"status": "no model loaded"})
	default:
		s.writeJSON(w, "readyz", http.StatusOK, map[string]string{"status": "ready"})
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var meta *modelMeta
	if ms := s.model.Load(); ms != nil {
		meta = &modelMeta{
			path:       ms.path,
			loadedUnix: ms.loadedAt.Unix(),
			features:   ms.inputDim,
			targets:    ms.outputDim,
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, meta)
	s.metrics.observeRequest("metrics", http.StatusOK, 0)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if err := s.Reload(); err != nil {
		s.writeJSON(w, "reload", http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	ms := s.model.Load()
	s.writeJSON(w, "reload", http.StatusOK, map[string]string{
		"status":    "reloaded",
		"path":      ms.path,
		"loaded_at": ms.loadedAt.UTC().Format(time.RFC3339Nano),
	})
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)
	respond := func(status int, v any) {
		s.writeJSONTimed(w, "predict", status, v, time.Since(start))
	}

	if s.draining.Load() {
		s.metrics.observeError("draining")
		respond(http.StatusServiceUnavailable, errorResponse{Error: "server is draining"})
		return
	}
	ms := s.model.Load()
	if ms == nil {
		s.metrics.observeError("no_model")
		respond(http.StatusServiceUnavailable, errorResponse{Error: "no model loaded"})
		return
	}

	var req PredictRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.metrics.observeError("bad_json")
		respond(http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("decoding request: %v", err)})
		return
	}
	rows, err := requestRows(req)
	if err != nil {
		s.metrics.observeError("bad_request")
		respond(http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	warnings, err := validateRows(ms, rows)
	if err != nil {
		s.metrics.observeError("bad_input")
		respond(http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	preds, err := s.co.submitAll(ctx, rows)
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.observeError("timeout")
		respond(http.StatusGatewayTimeout, errorResponse{Error: "prediction timed out"})
		return
	case errors.Is(err, ErrDraining):
		s.metrics.observeError("draining")
		respond(http.StatusServiceUnavailable, errorResponse{Error: "server is draining"})
		return
	default:
		s.metrics.observeError("inference")
		respond(http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}

	respond(http.StatusOK, PredictResponse{
		Predictions: preds,
		TargetNames: ms.targetNames,
		Warnings:    warnings,
		Model: ModelInfo{
			Path:         ms.path,
			LoadedAt:     ms.loadedAt.UTC().Format(time.RFC3339Nano),
			FeatureNames: ms.featureNames,
			TargetNames:  ms.targetNames,
		},
	})
}

// requestRows normalizes a PredictRequest into its input rows.
func requestRows(req PredictRequest) ([][]float64, error) {
	switch {
	case len(req.X) > 0 && len(req.Instances) > 0:
		return nil, errors.New(`use "x" or "instances", not both`)
	case len(req.X) > 0:
		return [][]float64{req.X}, nil
	case len(req.Instances) > 0:
		return req.Instances, nil
	}
	return nil, errors.New(`request must carry "x" (one vector) or "instances" (several)`)
}

// maxWarnings caps the envelope warnings one response carries.
const maxWarnings = 16

// validateRows checks dimensionality and finiteness (hard errors) and
// collects training-envelope warnings (soft: the model will extrapolate,
// which the paper's methodology does not vouch for).
func validateRows(ms *modelState, rows [][]float64) ([]string, error) {
	var warnings []string
	for i, x := range rows {
		if len(x) != ms.inputDim {
			return nil, fmt.Errorf("row %d has %d features, model expects %d (%v)", i, len(x), ms.inputDim, ms.featureNames)
		}
		for j, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("row %d feature %q: non-finite value", i, ms.featureNames[j])
			}
			if ms.featureMin != nil && (v < ms.featureMin[j] || v > ms.featureMax[j]) && len(warnings) < maxWarnings {
				warnings = append(warnings, fmt.Sprintf("row %d: %s=%g outside training envelope [%g, %g]",
					i, ms.featureNames[j], v, ms.featureMin[j], ms.featureMax[j]))
			}
		}
	}
	return warnings, nil
}

func (s *Server) writeJSON(w http.ResponseWriter, endpoint string, status int, v any) {
	s.writeJSONTimed(w, endpoint, status, v, 0)
}

func (s *Server) writeJSONTimed(w http.ResponseWriter, endpoint string, status int, v any, elapsed time.Duration) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
	s.metrics.observeRequest(endpoint, status, elapsed.Seconds())
}
