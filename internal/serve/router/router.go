// Package router resolves per-request model references to loaded
// instances. A reference is a tenant name with an optional pinned version:
//
//	""          the server's default tenant, live version
//	"web"       tenant web, live version (follows promotions/rollbacks)
//	"web@v3"    tenant web, version 3 exactly (also accepted as "web@3")
//
// Live resolution reads one atomic pointer from the deployment controller;
// pinned versions go through the registry's warm-instance cache, so an
// old version that is still queried stays loaded and a forgotten one costs
// one reload. The instance a request resolves is immutable — concurrent
// promotion cannot change a request mid-flight.
package router

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"nnwc/internal/serve/deploy"
	"nnwc/internal/serve/registry"
)

// Sentinel resolution failures, wrapped with detail — the HTTP plane maps
// them to status codes (400 / 404 / 503).
var (
	ErrBadRef       = errors.New("malformed model reference")
	ErrUnknownModel = errors.New("unknown model")
	ErrNoLive       = errors.New("model has no live version")
)

// Router maps model references to instances.
type Router struct {
	reg           *registry.Registry
	ctl           *deploy.Controller
	defaultTenant string
}

// New builds a router. defaultTenant serves requests that name no model;
// it may be empty when the fleet has no default.
func New(reg *registry.Registry, ctl *deploy.Controller, defaultTenant string) *Router {
	return &Router{reg: reg, ctl: ctl, defaultTenant: defaultTenant}
}

// DefaultTenant reports the tenant unnamed requests route to.
func (r *Router) DefaultTenant() string { return r.defaultTenant }

// ParseRef splits a model reference into tenant and pinned version
// (version 0 = live).
func ParseRef(ref string) (tenant string, version int, err error) {
	tenant, ver, ok := strings.Cut(ref, "@")
	if !ok {
		return tenant, 0, nil
	}
	ver = strings.TrimPrefix(ver, "v")
	n, err := strconv.Atoi(ver)
	if err != nil || n < 1 || tenant == "" {
		return "", 0, fmt.Errorf("router: %w %q (want name or name@vN)", ErrBadRef, ref)
	}
	return tenant, n, nil
}

// Resolve returns the instance serving ref, plus its deployment (nil for
// version-pinned refs, which bypass deployment state).
func (r *Router) Resolve(ref string) (*registry.Instance, *deploy.Deployment, error) {
	tenant, version, err := ParseRef(ref)
	if err != nil {
		return nil, nil, err
	}
	if tenant == "" {
		tenant = r.defaultTenant
		if tenant == "" {
			return nil, nil, fmt.Errorf("router: request names no model and the fleet has no default tenant: %w", ErrUnknownModel)
		}
	}
	if version > 0 {
		if _, ok := r.reg.Artifact(tenant, version); !ok {
			return nil, nil, fmt.Errorf("router: %w: %s@v%d", ErrUnknownModel, tenant, version)
		}
		inst, err := r.reg.Instance(tenant, version)
		if err != nil {
			return nil, nil, err
		}
		return inst, nil, nil
	}
	d := r.ctl.Deployment(tenant)
	if d == nil {
		return nil, nil, fmt.Errorf("router: %w %q", ErrUnknownModel, tenant)
	}
	inst := d.Live()
	if inst == nil {
		return nil, nil, fmt.Errorf("router: %w: %q", ErrNoLive, tenant)
	}
	return inst, d, nil
}
