package router

import (
	"path/filepath"
	"testing"

	"nnwc/internal/core"
	"nnwc/internal/serve/deploy"
	"nnwc/internal/serve/registry"
	"nnwc/internal/train"
	"nnwc/internal/workload"
)

func trainModel(t *testing.T, dir, name string, seed uint64) string {
	t.Helper()
	ds := workload.NewDataset([]string{"a", "b"}, []string{"u", "v"})
	for i := 0; i < 40; i++ {
		a, b := float64(i%8)-4, float64(i/8)-2
		ds.MustAppend(workload.Sample{X: []float64{a, b}, Y: []float64{10 + a*a - b, 5 + a + 2*b}})
	}
	tc := train.DefaultConfig()
	tc.MaxEpochs = 60
	m, err := core.Fit(ds, core.Config{Hidden: []int{4}, Train: &tc, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseRef(t *testing.T) {
	cases := []struct {
		ref     string
		tenant  string
		version int
		bad     bool
	}{
		{"", "", 0, false},
		{"web", "web", 0, false},
		{"web@v3", "web", 3, false},
		{"web@3", "web", 3, false},
		{"web@", "", 0, true},
		{"web@v0", "", 0, true},
		{"@v1", "", 0, true},
		{"web@vx", "", 0, true},
	}
	for _, c := range cases {
		tenant, version, err := ParseRef(c.ref)
		if c.bad {
			if err == nil {
				t.Errorf("ParseRef(%q) accepted", c.ref)
			}
			continue
		}
		if err != nil || tenant != c.tenant || version != c.version {
			t.Errorf("ParseRef(%q) = %q,%d,%v want %q,%d", c.ref, tenant, version, err, c.tenant, c.version)
		}
	}
}

func TestResolveLiveAndPinned(t *testing.T) {
	dir := t.TempDir()
	reg := registry.New(4)
	ctl := deploy.New(reg, deploy.Config{}, nil)
	if _, err := ctl.Deploy("web", trainModel(t, dir, "a.json", 1), false); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Deploy("web", trainModel(t, dir, "b.json", 2), false); err != nil {
		t.Fatal(err)
	}
	r := New(reg, ctl, "web")

	// Empty ref → default tenant's live (v2 after the second deploy).
	inst, d, err := r.Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	if inst.Version != 2 || d == nil {
		t.Fatalf("live resolve = %s (deployment %v), want web@v2 with deployment", inst.Ref(), d)
	}

	// Pinned old version resolves through the registry, no deployment.
	inst, d, err = r.Resolve("web@v1")
	if err != nil {
		t.Fatal(err)
	}
	if inst.Version != 1 || d != nil {
		t.Fatalf("pinned resolve = %s (deployment %v), want web@v1, nil deployment", inst.Ref(), d)
	}

	if _, _, err := r.Resolve("nope"); err == nil {
		t.Fatal("unknown tenant resolved")
	}
	if _, _, err := r.Resolve("web@v9"); err == nil {
		t.Fatal("unknown version resolved")
	}
	if _, _, err := New(reg, ctl, "").Resolve(""); err == nil {
		t.Fatal("empty ref resolved with no default tenant")
	}
}
