// Package registry is the serve plane's model store: versioned, immutable
// artifacts keyed by the same SHA-256 fingerprints internal/obs records in
// run manifests, with an LRU cache of warm (loaded) models on top of the
// atomic temp-file+rename persistence path (core.SaveFile).
//
// A tenant is one named workload; registering an artifact for a tenant
// assigns the next version number (re-registering bytes already known to
// the tenant returns the existing version — versions are content-addressed,
// so "deploy the same file twice" is idempotent). Loaded models are wrapped
// in immutable Instance snapshots; the deployment layer swaps them behind
// atomic pointers, so a request always observes one consistent model.
//
// The warm cache bounds how many instances stay loaded. Eviction only
// drops the registry's reference — instances pinned by a live or shadow
// deployment keep serving until released — and a cold hit reloads from the
// artifact path, verifying the bytes still match the registered SHA-256.
package registry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nnwc/internal/core"
	"nnwc/internal/obs"
)

// Artifact identifies one registered model version: where its bytes live,
// their fingerprint, and the schema needed to route and validate requests
// without touching the weights.
type Artifact struct {
	Tenant  string
	Version int
	SHA256  string
	Path    string

	InputDim, OutputDim int
	FeatureNames        []string
	TargetNames         []string
	FeatureMin          []float64
	FeatureMax          []float64

	// Shape is the network topology key ("4-16-5"): tenants with equal
	// Shape share a batch group in the cross-tenant coalescer.
	Shape string

	RegisteredAt time.Time
}

// Ref renders the canonical tenant@version reference.
func (a Artifact) Ref() string { return a.Tenant + "@v" + strconv.Itoa(a.Version) }

// Instance is one warm, immutable model snapshot: the artifact identity
// plus the loaded predictor. Instances are never mutated after creation —
// hot swaps replace the whole pointer.
type Instance struct {
	Artifact
	Pred core.BatchPredictor
	// Precision records which inference path Pred runs: "float64" (the
	// trained model) or "float32" (its quantized twin, selected by
	// SetFloat32 / `nnwc serve -f32`).
	Precision string
	LoadedAt  time.Time
}

// Registry stores per-tenant version chains and the warm-instance LRU.
type Registry struct {
	mu       sync.Mutex
	capacity int
	f32      atomic.Bool
	tenants  map[string][]Artifact
	warm     map[string]*warmEntry // key: tenant@version
	// LRU list over warm entries; head = most recently used.
	head, tail *warmEntry

	loads, evictions, hits uint64
}

type warmEntry struct {
	key        string
	inst       *Instance
	prev, next *warmEntry
}

// New returns an empty registry whose warm cache holds up to capacity
// loaded instances (minimum 1; default 8 when capacity <= 0).
func New(capacity int) *Registry {
	if capacity <= 0 {
		capacity = 8
	}
	return &Registry{
		capacity: capacity,
		tenants:  make(map[string][]Artifact),
		warm:     make(map[string]*warmEntry),
	}
}

// SetFloat32 selects the inference precision for instances loaded after the
// call: true serves subsequently loaded models through the quantized float32
// forward kernels (using the artifact's persist-time params_f32 vector when
// present), false (the default) through the trained float64 network. Already
// warm instances are not re-wrapped — set this once at wiring time, before
// any Register.
func (r *Registry) SetFloat32(on bool) { r.f32.Store(on) }

// Float32 reports the precision subsequently loaded instances will use.
func (r *Registry) Float32() bool { return r.f32.Load() }

// newPredictor wraps a freshly loaded model in the registry's configured
// inference path.
func (r *Registry) newPredictor(m *core.NNModel) (core.BatchPredictor, string, error) {
	if r.f32.Load() {
		f, err := m.F32()
		if err != nil {
			return nil, "", err
		}
		return f, "float32", nil
	}
	return m, "float64", nil
}

// shapeKey renders the topology of a loaded model.
func shapeKey(m *core.NNModel) string {
	sizes := m.Net.Sizes()
	parts := make([]string, len(sizes))
	for i, s := range sizes {
		parts[i] = strconv.Itoa(s)
	}
	return strings.Join(parts, "-")
}

// Register fingerprints and loads the artifact at path for tenant,
// assigning the next version. If the tenant already has a version with the
// same SHA-256, that version is returned (warmed) instead of a duplicate.
func (r *Registry) Register(tenant, path string) (*Instance, error) {
	if tenant == "" {
		return nil, fmt.Errorf("registry: empty tenant name")
	}
	if strings.ContainsAny(tenant, "@\"{}") {
		return nil, fmt.Errorf("registry: tenant name %q may not contain @, quotes or braces", tenant)
	}
	sha, err := obs.HashFile(path)
	if err != nil {
		return nil, fmt.Errorf("registry: fingerprinting %s: %w", path, err)
	}

	r.mu.Lock()
	for _, a := range r.tenants[tenant] {
		if a.SHA256 == sha {
			r.mu.Unlock()
			return r.Instance(tenant, a.Version)
		}
	}
	r.mu.Unlock()

	m, err := core.LoadModelFile(path)
	if err != nil {
		return nil, fmt.Errorf("registry: loading %s: %w", path, err)
	}
	pred, precision, err := r.newPredictor(m)
	if err != nil {
		return nil, fmt.Errorf("registry: loading %s: %w", path, err)
	}
	now := time.Now()
	art := Artifact{
		Tenant:       tenant,
		SHA256:       sha,
		Path:         path,
		InputDim:     m.InputDim(),
		OutputDim:    m.OutputDim(),
		FeatureNames: m.FeatureNames,
		TargetNames:  m.TargetNames,
		FeatureMin:   m.FeatureMin,
		FeatureMax:   m.FeatureMax,
		Shape:        shapeKey(m),
		RegisteredAt: now,
	}
	inst := &Instance{Artifact: art, Pred: pred, Precision: precision, LoadedAt: now}

	r.mu.Lock()
	defer r.mu.Unlock()
	// Re-check under the lock: a concurrent Register may have appended.
	for _, a := range r.tenants[tenant] {
		if a.SHA256 == sha {
			if e, ok := r.warm[keyOf(tenant, a.Version)]; ok {
				r.touch(e)
				return e.inst, nil
			}
			inst.Artifact = a
			r.insert(inst)
			return inst, nil
		}
	}
	art.Version = len(r.tenants[tenant]) + 1
	inst.Artifact = art
	r.tenants[tenant] = append(r.tenants[tenant], art)
	r.loads++
	r.insert(inst)
	return inst, nil
}

func keyOf(tenant string, version int) string { return tenant + "@v" + strconv.Itoa(version) }

// Instance returns the warm instance for tenant@version, reloading from the
// artifact path on a cold hit. A reload that finds different bytes than the
// registered fingerprint fails — artifacts are immutable by contract.
func (r *Registry) Instance(tenant string, version int) (*Instance, error) {
	r.mu.Lock()
	art, ok := r.artifactLocked(tenant, version)
	if !ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("registry: no version %d for tenant %q", version, tenant)
	}
	if e, ok := r.warm[keyOf(tenant, version)]; ok {
		r.touch(e)
		r.hits++
		inst := e.inst
		r.mu.Unlock()
		return inst, nil
	}
	r.mu.Unlock()

	sha, err := obs.HashFile(art.Path)
	if err != nil {
		return nil, fmt.Errorf("registry: rehydrating %s: %w", art.Ref(), err)
	}
	if sha != art.SHA256 {
		return nil, fmt.Errorf("registry: artifact %s changed on disk (sha256 %.12s, registered %.12s)",
			art.Path, sha, art.SHA256)
	}
	m, err := core.LoadModelFile(art.Path)
	if err != nil {
		return nil, fmt.Errorf("registry: rehydrating %s: %w", art.Ref(), err)
	}
	pred, precision, err := r.newPredictor(m)
	if err != nil {
		return nil, fmt.Errorf("registry: rehydrating %s: %w", art.Ref(), err)
	}
	inst := &Instance{Artifact: art, Pred: pred, Precision: precision, LoadedAt: time.Now()}

	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.warm[keyOf(tenant, version)]; ok { // lost a reload race
		r.touch(e)
		return e.inst, nil
	}
	r.loads++
	r.insert(inst)
	return inst, nil
}

func (r *Registry) artifactLocked(tenant string, version int) (Artifact, bool) {
	versions := r.tenants[tenant]
	if version < 1 || version > len(versions) {
		return Artifact{}, false
	}
	return versions[version-1], true
}

// Artifact returns the metadata of tenant@version without loading weights.
func (r *Registry) Artifact(tenant string, version int) (Artifact, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.artifactLocked(tenant, version)
}

// Latest returns the highest registered version for tenant.
func (r *Registry) Latest(tenant string) (Artifact, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	versions := r.tenants[tenant]
	if len(versions) == 0 {
		return Artifact{}, false
	}
	return versions[len(versions)-1], true
}

// Tenants lists tenant names, sorted.
func (r *Registry) Tenants() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.tenants))
	for name := range r.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Artifacts lists every registered artifact, ordered by tenant then version.
func (r *Registry) Artifacts() []Artifact {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.tenants))
	for name := range r.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Artifact
	for _, name := range names {
		out = append(out, r.tenants[name]...)
	}
	return out
}

// Stats reports cache behaviour: artifact loads from disk, LRU evictions,
// and warm hits.
func (r *Registry) Stats() (loads, evictions, hits uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.loads, r.evictions, r.hits
}

// WarmCount reports how many instances are currently loaded.
func (r *Registry) WarmCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.warm)
}

// insert adds a warm entry at the LRU head, evicting the tail beyond
// capacity. Callers hold r.mu.
func (r *Registry) insert(inst *Instance) {
	e := &warmEntry{key: keyOf(inst.Tenant, inst.Version), inst: inst}
	r.warm[e.key] = e
	r.pushFront(e)
	for len(r.warm) > r.capacity {
		victim := r.tail
		r.unlink(victim)
		delete(r.warm, victim.key)
		r.evictions++
	}
}

// touch moves e to the LRU head. Callers hold r.mu.
func (r *Registry) touch(e *warmEntry) {
	r.unlink(e)
	r.pushFront(e)
}

func (r *Registry) pushFront(e *warmEntry) {
	e.prev, e.next = nil, r.head
	if r.head != nil {
		r.head.prev = e
	}
	r.head = e
	if r.tail == nil {
		r.tail = e
	}
}

func (r *Registry) unlink(e *warmEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if r.head == e {
		r.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if r.tail == e {
		r.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
