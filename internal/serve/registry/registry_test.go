package registry

import (
	"path/filepath"
	"strings"
	"testing"

	"nnwc/internal/core"
	"nnwc/internal/obs"
	"nnwc/internal/train"
	"nnwc/internal/workload"
)

// trainModel fits a tiny 2→2 model with the given hidden widths and seed
// and persists it under dir, returning the artifact path.
func trainModel(t *testing.T, dir, name string, hidden []int, seed uint64) string {
	t.Helper()
	ds := workload.NewDataset([]string{"a", "b"}, []string{"u", "v"})
	for i := 0; i < 40; i++ {
		a, b := float64(i%8)-4, float64(i/8)-2
		ds.MustAppend(workload.Sample{X: []float64{a, b}, Y: []float64{10 + a*a - b, 5 + a + 2*b}})
	}
	tc := train.DefaultConfig()
	tc.MaxEpochs = 60
	m, err := core.Fit(ds, core.Config{Hidden: hidden, Train: &tc, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRegisterAssignsVersionsAndDedupesBySHA(t *testing.T) {
	dir := t.TempDir()
	pathA := trainModel(t, dir, "a.json", []int{4}, 1)
	pathB := trainModel(t, dir, "b.json", []int{4}, 2)

	r := New(8)
	i1, err := r.Register("web", pathA)
	if err != nil {
		t.Fatal(err)
	}
	if i1.Version != 1 || i1.Tenant != "web" {
		t.Fatalf("first registration = %s, want web@v1", i1.Ref())
	}
	wantSHA, err := obs.HashFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	if i1.SHA256 != wantSHA {
		t.Fatalf("sha %q, want the obs.HashFile fingerprint %q", i1.SHA256, wantSHA)
	}
	if i1.Shape != "2-4-2" {
		t.Fatalf("shape %q, want 2-4-2", i1.Shape)
	}

	i2, err := r.Register("web", pathB)
	if err != nil {
		t.Fatal(err)
	}
	if i2.Version != 2 {
		t.Fatalf("second artifact got version %d, want 2", i2.Version)
	}

	// Same bytes again: idempotent, returns the existing version.
	dup, err := r.Register("web", pathA)
	if err != nil {
		t.Fatal(err)
	}
	if dup.Version != 1 || dup.SHA256 != i1.SHA256 {
		t.Fatalf("re-registering identical bytes gave %s, want web@v1", dup.Ref())
	}
	if got := len(r.Artifacts()); got != 2 {
		t.Fatalf("registry holds %d artifacts, want 2", got)
	}

	// A second tenant gets its own version chain.
	i3, err := r.Register("db", pathA)
	if err != nil {
		t.Fatal(err)
	}
	if i3.Version != 1 {
		t.Fatalf("db's first version = %d, want 1", i3.Version)
	}
	if got := r.Tenants(); len(got) != 2 || got[0] != "db" || got[1] != "web" {
		t.Fatalf("tenants %v, want [db web]", got)
	}
}

func TestInstanceLRUEvictionAndRehydration(t *testing.T) {
	dir := t.TempDir()
	paths := []string{
		trainModel(t, dir, "m1.json", []int{3}, 1),
		trainModel(t, dir, "m2.json", []int{3}, 2),
		trainModel(t, dir, "m3.json", []int{3}, 3),
	}
	r := New(2)
	for i, p := range paths {
		if _, err := r.Register("web", p); err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
	}
	if got := r.WarmCount(); got != 2 {
		t.Fatalf("warm count %d, want capacity 2", got)
	}
	loads, evictions, _ := r.Stats()
	if loads != 3 || evictions != 1 {
		t.Fatalf("loads=%d evictions=%d, want 3 and 1", loads, evictions)
	}

	// v1 was evicted (LRU); asking for it rehydrates from disk.
	inst, err := r.Instance("web", 1)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Version != 1 {
		t.Fatalf("rehydrated version %d, want 1", inst.Version)
	}
	loads2, _, _ := r.Stats()
	if loads2 != 4 {
		t.Fatalf("loads after rehydration = %d, want 4", loads2)
	}
	// A warm hit does not reload.
	if _, err := r.Instance("web", 1); err != nil {
		t.Fatal(err)
	}
	loads3, _, hits := r.Stats()
	if loads3 != 4 || hits == 0 {
		t.Fatalf("warm hit reloaded (loads=%d hits=%d)", loads3, hits)
	}
}

func TestInstanceRejectsMutatedArtifact(t *testing.T) {
	dir := t.TempDir()
	path := trainModel(t, dir, "m.json", []int{3}, 1)
	r := New(1)
	if _, err := r.Register("web", path); err != nil {
		t.Fatal(err)
	}
	// Evict v1 by warming a second artifact, then rewrite v1's bytes.
	path2 := trainModel(t, dir, "m2.json", []int{3}, 2)
	if _, err := r.Register("web", path2); err != nil {
		t.Fatal(err)
	}
	trainModelOver(t, path, 99)
	_, err := r.Instance("web", 1)
	if err == nil || !strings.Contains(err.Error(), "changed on disk") {
		t.Fatalf("rehydrating a mutated artifact gave %v, want changed-on-disk error", err)
	}
}

// trainModelOver rewrites path with a model from a different seed.
func trainModelOver(t *testing.T, path string, seed uint64) {
	t.Helper()
	trained := trainModel(t, t.TempDir(), "tmp.json", []int{3}, seed)
	m, err := core.LoadModelFile(trained)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterValidation(t *testing.T) {
	r := New(4)
	if _, err := r.Register("", "nope.json"); err == nil {
		t.Fatal("empty tenant accepted")
	}
	if _, err := r.Register("a@b", "nope.json"); err == nil {
		t.Fatal("tenant with @ accepted")
	}
	if _, err := r.Register("web", filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing artifact accepted")
	}
	if _, err := r.Instance("web", 1); err == nil {
		t.Fatal("unknown version resolved")
	}
}
