package serve

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"testing"

	"nnwc/internal/core"
)

// TestFloat32FlagSelectsQuantizedKernel pins the serve-plane precision
// switch: with Config.Float32 the deployed instance serves through
// core.F32Model, reports precision "float32" end to end, and its answers
// track the float64 path within the pinned parity budget.
func TestFloat32FlagSelectsQuantizedKernel(t *testing.T) {
	dir := t.TempDir()
	path := writeTestModel(t, dir, 3)

	s32, ts32 := newTestServer(t, Config{ModelPath: path, Float32: true, MaxBatch: 1})
	s64, ts64 := newTestServer(t, Config{ModelPath: path, MaxBatch: 1})

	live32 := s32.Controller().Deployment(DefaultSingleTenant).Live()
	if live32.Precision != "float32" {
		t.Fatalf("f32 server live instance precision %q, want float32", live32.Precision)
	}
	if _, ok := live32.Pred.(*core.F32Model); !ok {
		t.Fatalf("f32 server serves through %T, want *core.F32Model", live32.Pred)
	}
	live64 := s64.Controller().Deployment(DefaultSingleTenant).Live()
	if live64.Precision != "float64" {
		t.Fatalf("default server live instance precision %q, want float64", live64.Precision)
	}
	if _, ok := live64.Pred.(*core.NNModel); !ok {
		t.Fatalf("default server serves through %T, want *core.NNModel", live64.Pred)
	}

	x := []float64{1.25, -0.5}
	var r32, r64 PredictResponse
	resp, body := postJSON(t, ts32.URL+"/predict", PredictRequest{X: x})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("f32 predict: status %d body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal([]byte(body), &r32); err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, ts64.URL+"/predict", PredictRequest{X: x})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("f64 predict: status %d body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal([]byte(body), &r64); err != nil {
		t.Fatal(err)
	}

	if r32.Model.Precision != "float32" {
		t.Fatalf("f32 response reports precision %q", r32.Model.Precision)
	}
	if r64.Model.Precision != "float64" {
		t.Fatalf("f64 response reports precision %q", r64.Model.Precision)
	}
	for j := range r64.Predictions[0] {
		got, want := r32.Predictions[0][j], r64.Predictions[0][j]
		if rel := math.Abs(got-want) / (1 + math.Abs(want)); rel > 1e-4 {
			t.Fatalf("output %d: f32 %v vs f64 %v (rel %v)", j, got, want, rel)
		}
	}

	// The in-process API takes the same quantized path.
	direct, err := s32.Predict(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	for j := range direct {
		if direct[j] != r32.Predictions[0][j] {
			t.Fatalf("in-process f32 output %d: %v vs HTTP %v", j, direct[j], r32.Predictions[0][j])
		}
	}
}
