package serve

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync/atomic"

	"nnwc/internal/obs/metrics"
)

// metricsWindow is the recent-observation window quantiles compute over.
const metricsWindow = 4096

var latencyQuantiles = []float64{0.5, 0.9, 0.99}

// metricsRegistry is the server's observability surface, built on the
// shared exporter in internal/obs/metrics: request/error counters, latency
// and batch-size distributions (recent-window quantiles), and reload
// bookkeeping. All methods are safe for concurrent use. The exposition
// schema (names, label sets, ordering) is pinned by TestMetricsSchema.
type metricsRegistry struct {
	reg       *metrics.Registry
	requests  *metrics.CounterVec
	errors    *metrics.CounterVec
	latency   *metrics.Summary
	batchSize *metrics.Summary
	reloads   *metrics.Counter
	inflight  atomic.Int64
}

func newMetricsRegistry() *metricsRegistry {
	m := &metricsRegistry{reg: metrics.NewRegistry()}
	m.requests = m.reg.CounterVec("nnwc_requests_total",
		"Requests served, by endpoint and status code.", "endpoint", "code")
	m.errors = m.reg.CounterVec("nnwc_request_errors_total",
		"Rejected or failed requests, by reason.", "reason")
	m.latency = m.reg.Summary("nnwc_request_latency_seconds",
		"Prediction latency over the recent window.", metricsWindow, latencyQuantiles...)
	m.batchSize = m.reg.Summary("nnwc_batch_size",
		"Rows per coalesced forward call over the recent window.", metricsWindow, latencyQuantiles...)
	m.reloads = m.reg.Counter("nnwc_model_reloads_total",
		"Successful model hot reloads since start.")
	m.reg.GaugeFunc("nnwc_inflight_requests",
		"Predict requests currently being handled.",
		func() float64 { return float64(m.inflight.Load()) })
	return m
}

func (m *metricsRegistry) observeRequest(endpoint string, code int, seconds float64) {
	m.requests.Inc(endpoint, strconv.Itoa(code))
	if endpoint == "predict" {
		m.latency.Observe(seconds)
	}
}

func (m *metricsRegistry) observeError(reason string) {
	m.errors.Inc(reason)
}

func (m *metricsRegistry) observeBatch(size int) {
	m.batchSize.Observe(float64(size))
}

func (m *metricsRegistry) observeReload() {
	m.reloads.Inc()
}

// batchStats returns (batches, rows) — used by tests and the bench driver
// to verify coalescing actually happened.
func (m *metricsRegistry) batchStats() (batches, rows uint64) {
	count, sum := m.batchSize.Stats()
	return count, uint64(sum)
}

// modelMeta is the metadata slice of /metrics, snapshotted from the
// currently loaded model.
type modelMeta struct {
	path       string
	loadedUnix int64
	features   int
	targets    int
}

// write renders the Prometheus text exposition format: the registry's
// metrics in registration order, then the per-request model metadata.
func (m *metricsRegistry) write(w io.Writer, meta *modelMeta) {
	m.reg.Write(w)
	if meta != nil {
		fmt.Fprintln(w, "# HELP nnwc_model_loaded_timestamp_seconds Unix time the serving model was loaded.")
		fmt.Fprintln(w, "# TYPE nnwc_model_loaded_timestamp_seconds gauge")
		fmt.Fprintf(w, "nnwc_model_loaded_timestamp_seconds %d\n", meta.loadedUnix)
		fmt.Fprintln(w, "# HELP nnwc_model_info Metadata of the serving model.")
		fmt.Fprintln(w, "# TYPE nnwc_model_info gauge")
		fmt.Fprintf(w, "nnwc_model_info{path=%q,features=\"%d\",targets=\"%d\"} 1\n",
			strings.ReplaceAll(meta.path, `"`, ""), meta.features, meta.targets)
	}
}
