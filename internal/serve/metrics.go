package serve

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync/atomic"

	"nnwc/internal/obs/metrics"
)

// metricsWindow is the recent-observation window quantiles compute over.
const metricsWindow = 4096

var latencyQuantiles = []float64{0.5, 0.9, 0.99}

// metricsRegistry is the fleet's observability surface, built on the
// shared exporter in internal/obs/metrics: request/error counters and
// latency/batch distributions at the HTTP layer, plus the per-tenant
// surface admission control is driven by — per-model request counters,
// latency summaries, in-flight gauges and shed counters — and the
// deployment-controller counters (fleet events, rolling HMRE gauges,
// shadow divergence). All methods are safe for concurrent use. The
// exposition schema is pinned by TestMetricsSchema.
type metricsRegistry struct {
	reg       *metrics.Registry
	requests  *metrics.CounterVec
	errors    *metrics.CounterVec
	latency   *metrics.Summary
	batchSize *metrics.Summary
	reloads   *metrics.Counter
	inflight  atomic.Int64

	tenantRequests *metrics.CounterVec
	tenantLatency  *metrics.SummaryVec
	tenantInflight *metrics.GaugeVec
	tenantShed     *metrics.CounterVec

	fleetEvents *metrics.CounterVec
	rollingHMRE *metrics.GaugeVec
	divergence  *metrics.SummaryVec
}

func newMetricsRegistry(warmModels, batchGroups func() float64) *metricsRegistry {
	m := &metricsRegistry{reg: metrics.NewRegistry()}
	m.requests = m.reg.CounterVec("nnwc_requests_total",
		"Requests served, by endpoint and status code.", "endpoint", "code")
	m.errors = m.reg.CounterVec("nnwc_request_errors_total",
		"Rejected or failed requests, by reason.", "reason")
	m.latency = m.reg.Summary("nnwc_request_latency_seconds",
		"Prediction latency over the recent window.", metricsWindow, latencyQuantiles...)
	m.batchSize = m.reg.Summary("nnwc_batch_size",
		"Rows per coalesced forward call over the recent window.", metricsWindow, latencyQuantiles...)
	m.reloads = m.reg.Counter("nnwc_model_reloads_total",
		"Live-model swaps from hot reloads since start.")
	m.reg.GaugeFunc("nnwc_inflight_requests",
		"Predict requests currently being handled.",
		func() float64 { return float64(m.inflight.Load()) })

	m.tenantRequests = m.reg.CounterVec("nnwc_tenant_requests_total",
		"Predict requests by model and status code.", "model", "code")
	m.tenantLatency = m.reg.SummaryVec("nnwc_tenant_latency_seconds",
		"Prediction latency by model over the recent window.",
		metricsWindow, []string{"model"}, latencyQuantiles...)
	m.tenantInflight = m.reg.GaugeVec("nnwc_tenant_inflight_requests",
		"Predict requests in flight, by model.", "model")
	m.tenantShed = m.reg.CounterVec("nnwc_tenant_shed_total",
		"Requests shed by admission control, by model and reason.", "model", "reason")

	m.fleetEvents = m.reg.CounterVec("nnwc_fleet_events_total",
		"Deployment-controller actions, by model and action.", "model", "action")
	m.rollingHMRE = m.reg.GaugeVec("nnwc_fleet_rolling_hmre",
		"Rolling mean per-observation HMRE from reported actuals, by model and role.", "model", "role")
	m.divergence = m.reg.SummaryVec("nnwc_fleet_shadow_divergence",
		"Relative gap between mirrored shadow and live predictions.",
		metricsWindow, []string{"model"}, latencyQuantiles...)

	if warmModels != nil {
		m.reg.GaugeFunc("nnwc_registry_warm_models",
			"Model instances currently loaded in the registry's LRU cache.", warmModels)
	}
	if batchGroups != nil {
		m.reg.GaugeFunc("nnwc_batch_groups",
			"Active cross-tenant coalescing domains (distinct network shapes).", batchGroups)
	}
	return m
}

func (m *metricsRegistry) observeRequest(endpoint string, code int, seconds float64) {
	m.requests.Inc(endpoint, strconv.Itoa(code))
	if endpoint == "predict" {
		m.latency.Observe(seconds)
	}
}

// observeTenantRequest records the per-model request outcome and, for
// successes, its latency.
func (m *metricsRegistry) observeTenantRequest(tenant string, code int, seconds float64) {
	m.tenantRequests.Inc(tenant, strconv.Itoa(code))
	if code < 400 {
		m.tenantLatency.Observe(seconds, tenant)
	}
}

func (m *metricsRegistry) observeShed(tenant, reason string) {
	m.tenantShed.Inc(tenant, reason)
	m.errors.Inc(reason)
}

func (m *metricsRegistry) observeError(reason string) {
	m.errors.Inc(reason)
}

func (m *metricsRegistry) observeBatch(size int) {
	m.batchSize.Observe(float64(size))
}

func (m *metricsRegistry) observeReload() {
	m.reloads.Inc()
}

// batchStats returns (batches, rows) — used by tests and the bench driver
// to verify coalescing actually happened.
func (m *metricsRegistry) batchStats() (batches, rows uint64) {
	count, sum := m.batchSize.Stats()
	return count, uint64(sum)
}

// modelMeta is the metadata slice of /metrics, snapshotted from the
// default tenant's live model.
type modelMeta struct {
	path       string
	loadedUnix int64
	features   int
	targets    int
}

// write renders the Prometheus text exposition format: the registry's
// metrics in registration order, then the default model's metadata.
func (m *metricsRegistry) write(w io.Writer, meta *modelMeta) {
	m.reg.Write(w)
	if meta != nil {
		fmt.Fprintln(w, "# HELP nnwc_model_loaded_timestamp_seconds Unix time the serving model was loaded.")
		fmt.Fprintln(w, "# TYPE nnwc_model_loaded_timestamp_seconds gauge")
		fmt.Fprintf(w, "nnwc_model_loaded_timestamp_seconds %d\n", meta.loadedUnix)
		fmt.Fprintln(w, "# HELP nnwc_model_info Metadata of the serving model.")
		fmt.Fprintln(w, "# TYPE nnwc_model_info gauge")
		fmt.Fprintf(w, "nnwc_model_info{path=%q,features=\"%d\",targets=\"%d\"} 1\n",
			strings.ReplaceAll(meta.path, `"`, ""), meta.features, meta.targets)
	}
}
