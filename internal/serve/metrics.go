package serve

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"nnwc/internal/stats"
)

// ring is a fixed-capacity ring buffer of recent observations. Quantiles on
// /metrics are computed over this window so they track current behaviour
// instead of averaging over the process lifetime.
type ring struct {
	buf  []float64
	n    int // observations stored (≤ cap)
	next int
}

func newRing(capacity int) *ring { return &ring{buf: make([]float64, capacity)} }

func (r *ring) add(v float64) {
	r.buf[r.next] = v
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// snapshot copies the stored observations (unordered — fine for quantiles).
func (r *ring) snapshot() []float64 {
	out := make([]float64, r.n)
	if r.n < len(r.buf) {
		copy(out, r.buf[:r.n])
	} else {
		copy(out, r.buf)
	}
	return out
}

// requestKey identifies one counter cell of nnwc_requests_total.
type requestKey struct {
	endpoint string
	code     int
}

// metricsRegistry is the server's observability surface: request/error
// counters, latency and batch-size distributions (recent-window quantiles
// via stats.Quantile), and reload bookkeeping. All methods are safe for
// concurrent use.
type metricsRegistry struct {
	mu        sync.Mutex
	requests  map[requestKey]uint64
	errors    map[string]uint64 // by reason
	latency   *ring             // /predict wall time, seconds
	latCount  uint64
	latSum    float64
	batchSize *ring // rows per coalesced forward call
	batches   uint64
	rows      uint64
	reloads   uint64
	inflight  atomic.Int64
}

func newMetricsRegistry() *metricsRegistry {
	return &metricsRegistry{
		requests:  make(map[requestKey]uint64),
		errors:    make(map[string]uint64),
		latency:   newRing(4096),
		batchSize: newRing(4096),
	}
}

func (m *metricsRegistry) observeRequest(endpoint string, code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[requestKey{endpoint, code}]++
	if endpoint == "predict" {
		m.latency.add(seconds)
		m.latCount++
		m.latSum += seconds
	}
}

func (m *metricsRegistry) observeError(reason string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.errors[reason]++
}

func (m *metricsRegistry) observeBatch(size int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batchSize.add(float64(size))
	m.batches++
	m.rows += uint64(size)
}

func (m *metricsRegistry) observeReload() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reloads++
}

// batchStats returns (batches, rows) — used by tests and the bench driver
// to verify coalescing actually happened.
func (m *metricsRegistry) batchStats() (batches, rows uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.batches, m.rows
}

// modelMeta is the metadata slice of /metrics, snapshotted from the
// currently loaded model.
type modelMeta struct {
	path       string
	loadedUnix int64
	features   int
	targets    int
}

var latencyQuantiles = []float64{0.5, 0.9, 0.99}

// write renders the Prometheus text exposition format. Output ordering is
// deterministic so the /metrics schema is pin-testable.
func (m *metricsRegistry) write(w io.Writer, meta *modelMeta) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP nnwc_requests_total Requests served, by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE nnwc_requests_total counter")
	keys := make([]requestKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		fmt.Fprintf(w, "nnwc_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, m.requests[k])
	}

	fmt.Fprintln(w, "# HELP nnwc_request_errors_total Rejected or failed requests, by reason.")
	fmt.Fprintln(w, "# TYPE nnwc_request_errors_total counter")
	reasons := make([]string, 0, len(m.errors))
	for r := range m.errors {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		fmt.Fprintf(w, "nnwc_request_errors_total{reason=%q} %d\n", r, m.errors[r])
	}

	fmt.Fprintln(w, "# HELP nnwc_request_latency_seconds Prediction latency over the recent window.")
	fmt.Fprintln(w, "# TYPE nnwc_request_latency_seconds summary")
	if lat := m.latency.snapshot(); len(lat) > 0 {
		for _, q := range latencyQuantiles {
			fmt.Fprintf(w, "nnwc_request_latency_seconds{quantile=\"%g\"} %g\n", q, stats.Quantile(lat, q))
		}
	}
	fmt.Fprintf(w, "nnwc_request_latency_seconds_sum %g\n", m.latSum)
	fmt.Fprintf(w, "nnwc_request_latency_seconds_count %d\n", m.latCount)

	fmt.Fprintln(w, "# HELP nnwc_batch_size Rows per coalesced forward call over the recent window.")
	fmt.Fprintln(w, "# TYPE nnwc_batch_size summary")
	if bs := m.batchSize.snapshot(); len(bs) > 0 {
		for _, q := range latencyQuantiles {
			fmt.Fprintf(w, "nnwc_batch_size{quantile=\"%g\"} %g\n", q, stats.Quantile(bs, q))
		}
	}
	fmt.Fprintf(w, "nnwc_batch_size_sum %d\n", m.rows)
	fmt.Fprintf(w, "nnwc_batch_size_count %d\n", m.batches)

	fmt.Fprintln(w, "# HELP nnwc_model_reloads_total Successful model hot reloads since start.")
	fmt.Fprintln(w, "# TYPE nnwc_model_reloads_total counter")
	fmt.Fprintf(w, "nnwc_model_reloads_total %d\n", m.reloads)

	fmt.Fprintln(w, "# HELP nnwc_inflight_requests Predict requests currently being handled.")
	fmt.Fprintln(w, "# TYPE nnwc_inflight_requests gauge")
	fmt.Fprintf(w, "nnwc_inflight_requests %d\n", m.inflight.Load())

	if meta != nil {
		fmt.Fprintln(w, "# HELP nnwc_model_loaded_timestamp_seconds Unix time the serving model was loaded.")
		fmt.Fprintln(w, "# TYPE nnwc_model_loaded_timestamp_seconds gauge")
		fmt.Fprintf(w, "nnwc_model_loaded_timestamp_seconds %d\n", meta.loadedUnix)
		fmt.Fprintln(w, "# HELP nnwc_model_info Metadata of the serving model.")
		fmt.Fprintln(w, "# TYPE nnwc_model_info gauge")
		fmt.Fprintf(w, "nnwc_model_info{path=%q,features=\"%d\",targets=\"%d\"} 1\n",
			strings.ReplaceAll(meta.path, `"`, ""), meta.features, meta.targets)
	}
}
