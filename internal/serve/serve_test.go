package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"nnwc/internal/core"
	"nnwc/internal/serve/registry"
	"nnwc/internal/train"
	"nnwc/internal/workload"
)

// testClient bounds every test request so a serve-plane regression that
// stalls a response fails fast with a clear deadline error instead of
// hanging the test (and CI) until the suite timeout.
var testClient = &http.Client{Timeout: 10 * time.Second}

// trainTestModel fits a small 2→2 model on a smooth function — fast enough
// for a unit test, real enough to exercise scalers and the batched path.
func trainTestModel(t *testing.T, seed uint64) *core.NNModel {
	t.Helper()
	ds := workload.NewDataset([]string{"a", "b"}, []string{"u", "v"})
	for i := 0; i < 40; i++ {
		a := float64(i%8) - 4
		b := float64(i/8) - 2
		ds.MustAppend(workload.Sample{
			X: []float64{a, b},
			Y: []float64{10 + a*a - b, 5 + a + 2*b},
		})
	}
	tc := train.DefaultConfig()
	tc.MaxEpochs = 150
	model, err := core.Fit(ds, core.Config{Hidden: []int{6}, Train: &tc, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return model
}

// writeTestModel persists a freshly trained model and returns its path.
func writeTestModel(t *testing.T, dir string, seed uint64) string {
	t.Helper()
	path := filepath.Join(dir, fmt.Sprintf("model-%d.json", seed))
	if err := trainTestModel(t, seed).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, string) {
	t.Helper()
	var rd *bytes.Reader
	if raw, ok := body.(string); ok {
		rd = bytes.NewReader([]byte(raw))
	} else {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	resp, err := testClient.Post(url, "application/json", rd)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.String()
}

func postPredict(t *testing.T, url string, body any) (*http.Response, PredictResponse, string) {
	t.Helper()
	resp, raw := postJSON(t, url+"/predict", body)
	var pr PredictResponse
	json.Unmarshal([]byte(raw), &pr)
	return resp, pr, raw
}

func getFleet(t *testing.T, url string) FleetStatus {
	t.Helper()
	resp, err := testClient.Get(url + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st FleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding /fleet: %v", err)
	}
	return st
}

// TestServeEndToEnd trains, persists, serves, and checks the HTTP answer
// matches the in-process model prediction exactly.
func TestServeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	path := writeTestModel(t, dir, 1)
	s, ts := newTestServer(t, Config{ModelPath: path, MaxBatch: 8, MaxWait: time.Millisecond})

	model, err := core.LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1.5, -0.5}
	want := model.Predict(x)

	resp, pr, raw := postPredict(t, ts.URL, PredictRequest{X: x})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if len(pr.Predictions) != 1 || len(pr.Predictions[0]) != len(want) {
		t.Fatalf("prediction shape %v", pr.Predictions)
	}
	for j := range want {
		if math.Abs(pr.Predictions[0][j]-want[j]) > 1e-9 {
			t.Fatalf("served prediction %v, want %v", pr.Predictions[0], want)
		}
	}
	if len(pr.TargetNames) != 2 || pr.TargetNames[0] != "u" {
		t.Fatalf("target names %v", pr.TargetNames)
	}
	if pr.Model.Path != path {
		t.Fatalf("model path %q", pr.Model.Path)
	}
	if pr.Model.Ref != "default@v1" || pr.Model.SHA256 == "" || pr.Model.Shape != "2-6-2" {
		t.Fatalf("model identity %+v, want default@v1 with sha and shape 2-6-2", pr.Model)
	}
	_ = s
}

// TestServeInstancesAndWarnings: multi-row requests work, and rows outside
// the training envelope come back with warnings but still predict.
func TestServeInstancesAndWarnings(t *testing.T) {
	path := writeTestModel(t, t.TempDir(), 2)
	_, ts := newTestServer(t, Config{ModelPath: path})

	resp, pr, raw := postPredict(t, ts.URL, PredictRequest{Instances: [][]float64{
		{0, 0},
		{100, 100}, // far outside the training envelope
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if len(pr.Predictions) != 2 {
		t.Fatalf("want 2 predictions, got %d", len(pr.Predictions))
	}
	if len(pr.Warnings) == 0 {
		t.Fatalf("expected envelope warnings, got none (%s)", raw)
	}
	if !strings.Contains(pr.Warnings[0], "outside training envelope") {
		t.Fatalf("warning %q", pr.Warnings[0])
	}
}

// TestServeValidation: bad dimensionality and non-finite inputs are 400s,
// and both are counted on the error surface.
func TestServeValidation(t *testing.T) {
	path := writeTestModel(t, t.TempDir(), 3)
	_, ts := newTestServer(t, Config{ModelPath: path})

	cases := []struct {
		name string
		body string
	}{
		{"wrong dims", `{"x":[1,2,3]}`},
		{"both x and instances", `{"x":[1,2],"instances":[[1,2]]}`},
		{"neither", `{}`},
		{"unknown field", `{"vector":[1,2]}`},
		{"bad json", `{"x":[1,2`},
	}
	for _, c := range cases {
		resp, err := testClient.Post(ts.URL+"/predict", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, resp.StatusCode)
		}
	}
	// An unknown model reference is a 404, a malformed one a 400.
	resp, _, _ := postPredict(t, ts.URL, PredictRequest{Model: "nosuch", X: []float64{1, 2}})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown model: status %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/predict", `{"model":"default@vx","x":[1,2]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed ref: status %d, want 400", resp.StatusCode)
	}

	// JSON cannot carry NaN literally; exercise the finiteness check
	// through the validation helper directly.
	inst := &registry.Instance{Artifact: registry.Artifact{
		Tenant: "t", Version: 1, InputDim: 2, FeatureNames: []string{"a", "b"},
	}}
	if _, err := validateRows(inst, [][]float64{{1, math.NaN()}}); err == nil {
		t.Fatal("NaN input accepted")
	}
	if _, err := validateRows(inst, [][]float64{{math.Inf(1), 0}}); err == nil {
		t.Fatal("Inf input accepted")
	}
}

// TestCoalescerBatchesConcurrentRequests drives many concurrent requests
// through a server configured with a generous gather window and asserts
// they were answered in fewer forward calls than requests — the
// micro-batcher actually coalesced.
func TestCoalescerBatchesConcurrentRequests(t *testing.T) {
	path := writeTestModel(t, t.TempDir(), 4)
	s, ts := newTestServer(t, Config{
		ModelPath: path,
		MaxBatch:  16,
		MaxWait:   100 * time.Millisecond,
		Workers:   1,
	})

	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _, raw := postPredict(t, ts.URL, PredictRequest{X: []float64{float64(i % 5), 1}})
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, raw)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	batches, rows := s.metrics.batchStats()
	if rows != n {
		t.Fatalf("rows inferred = %d, want %d", rows, n)
	}
	if batches >= n {
		t.Fatalf("batches = %d for %d requests — no coalescing happened", batches, n)
	}
}

// TestCrossTenantCoalescing: two tenants whose networks share a topology
// land in ONE batch domain and fill batches together; per-model batching
// splits them into separate domains.
func TestCrossTenantCoalescing(t *testing.T) {
	dir := t.TempDir()
	models := map[string]string{
		"web": writeTestModel(t, dir, 10),
		"db":  writeTestModel(t, dir, 11),
	}

	s, ts := newTestServer(t, Config{
		Models:   models,
		MaxBatch: 32,
		MaxWait:  100 * time.Millisecond,
		Workers:  1,
	})

	const perTenant = 8
	var wg sync.WaitGroup
	errs := make([]error, 2*perTenant)
	for i := 0; i < perTenant; i++ {
		for k, tenant := range []string{"web", "db"} {
			wg.Add(1)
			go func(slot int, tenant string) {
				defer wg.Done()
				resp, pr, raw := postPredict(t, ts.URL, PredictRequest{Model: tenant, X: []float64{1, 1}})
				if resp.StatusCode != http.StatusOK {
					errs[slot] = fmt.Errorf("%s: status %d: %s", tenant, resp.StatusCode, raw)
					return
				}
				if !strings.HasPrefix(pr.Model.Ref, tenant+"@") {
					errs[slot] = fmt.Errorf("asked %s, answered by %s", tenant, pr.Model.Ref)
				}
			}(i*2+k, tenant)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	if groups := s.batcher.GroupCount(); groups != 1 {
		t.Fatalf("shape-shared tenants created %d batch groups, want 1", groups)
	}
	batches, rows := s.metrics.batchStats()
	if rows != 2*perTenant {
		t.Fatalf("rows inferred = %d, want %d", rows, 2*perTenant)
	}
	if batches >= 2*perTenant {
		t.Fatalf("batches = %d for %d requests — no cross-tenant coalescing", batches, 2*perTenant)
	}

	// Per-model mode: same fleet, separate domains.
	s2, ts2 := newTestServer(t, Config{Models: models, PerModelBatching: true})
	for _, tenant := range []string{"web", "db"} {
		resp, _, raw := postPredict(t, ts2.URL, PredictRequest{Model: tenant, X: []float64{1, 1}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", tenant, resp.StatusCode, raw)
		}
	}
	if groups := s2.batcher.GroupCount(); groups != 2 {
		t.Fatalf("per-model batching created %d groups, want 2", groups)
	}
}

// TestFleetLifecycle exercises the canary flow over HTTP: deploy a canary,
// watch /fleet report it, promote it, roll it back, and pin old versions.
func TestFleetLifecycle(t *testing.T) {
	dir := t.TempDir()
	pathA := writeTestModel(t, dir, 20)
	pathB := writeTestModel(t, dir, 21)
	_, ts := newTestServer(t, Config{
		Models:  map[string]string{"web": pathA},
		MaxWait: time.Millisecond,
	})

	// Stage B as a canary.
	resp, raw := postJSON(t, ts.URL+"/fleet/deploy", fleetRequest{Model: "web", Path: pathB, Canary: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("canary deploy: status %d: %s", resp.StatusCode, raw)
	}
	st := getFleet(t, ts.URL)
	if len(st.Tenants) != 1 || st.Tenants[0].LiveVersion != 1 || st.Tenants[0].ShadowVer != 2 {
		t.Fatalf("fleet after canary = %+v, want live v1 shadow v2", st.Tenants)
	}

	// Live traffic is mirrored to the shadow: divergence fills in.
	for i := 0; i < 4; i++ {
		resp, pr, raw := postPredict(t, ts.URL, PredictRequest{Model: "web", X: []float64{float64(i), 1}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict: status %d: %s", resp.StatusCode, raw)
		}
		if pr.Model.Version != 1 {
			t.Fatalf("canary served live traffic: %+v", pr.Model)
		}
	}
	st = getFleet(t, ts.URL)
	if st.Tenants[0].Divergence == nil {
		t.Fatal("no shadow divergence recorded from mirrored traffic")
	}

	// Observations feed rolling HMRE for live and shadow.
	resp, raw = postJSON(t, ts.URL+"/observe", ObserveRequest{Model: "web", X: []float64{1, 1}, Actual: []float64{10, 8}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe: status %d: %s", resp.StatusCode, raw)
	}
	var or ObserveResponse
	json.Unmarshal([]byte(raw), &or)
	if or.LiveHMRE == nil || or.ShadowHMRE == nil {
		t.Fatalf("observe response missing HMRE: %s", raw)
	}

	// Promote: v2 goes live, v1 stays pinnable.
	resp, raw = postJSON(t, ts.URL+"/fleet/promote", fleetRequest{Model: "web"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: status %d: %s", resp.StatusCode, raw)
	}
	st = getFleet(t, ts.URL)
	if st.Tenants[0].LiveVersion != 2 || st.Tenants[0].ShadowVer != 0 || st.Tenants[0].Promotions != 1 {
		t.Fatalf("fleet after promote = %+v", st.Tenants[0])
	}
	resp, pr, raw := postPredict(t, ts.URL, PredictRequest{Model: "web@v1", X: []float64{1, 1}})
	if resp.StatusCode != http.StatusOK || pr.Model.Ref != "web@v1" {
		t.Fatalf("pinned v1 after promote: status %d model %q (%s)", resp.StatusCode, pr.Model.Ref, raw)
	}

	// Rollback: live reverts to v1.
	resp, raw = postJSON(t, ts.URL+"/fleet/rollback", fleetRequest{Model: "web"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rollback: status %d: %s", resp.StatusCode, raw)
	}
	st = getFleet(t, ts.URL)
	if st.Tenants[0].LiveVersion != 1 || st.Tenants[0].Rollbacks != 1 {
		t.Fatalf("fleet after rollback = %+v", st.Tenants[0])
	}
	// A second rollback has nowhere to go.
	resp, _ = postJSON(t, ts.URL+"/fleet/rollback", fleetRequest{Model: "web"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("double rollback: status %d, want 409", resp.StatusCode)
	}
}

// slowPredictor delays inference so shutdown and admission control have
// something to race against.
type slowPredictor struct {
	inner core.BatchPredictor
	delay time.Duration
}

func (p *slowPredictor) PredictAll(xs [][]float64) [][]float64 {
	time.Sleep(p.delay)
	return p.inner.PredictAll(xs)
}

func (p *slowPredictor) Predict(x []float64) []float64 {
	time.Sleep(p.delay)
	return p.inner.Predict(x)
}

// slowDownLive wraps a tenant's live predictor before any traffic flows.
func slowDownLive(s *Server, tenant string, delay time.Duration) {
	live := s.ctl.Deployment(tenant).Live()
	live.Pred = &slowPredictor{inner: live.Pred, delay: delay}
}

// TestGracefulShutdownDrainsInFlight: requests in flight when Shutdown is
// called complete with 200s; requests arriving after the drain starts are
// refused.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	path := writeTestModel(t, t.TempDir(), 5)
	s, err := New(Config{ModelPath: path, Addr: "127.0.0.1:0", MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Slow the model down so requests are genuinely in flight mid-drain.
	slowDownLive(s, DefaultSingleTenant, 80*time.Millisecond)

	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	url := "http://" + s.Addr()

	const n = 4
	codes := make([]int, n)
	bodies := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := testClient.Post(url+"/predict", "application/json", strings.NewReader(`{"x":[1,2]}`))
			if err != nil {
				codes[i] = -1
				bodies[i] = err.Error()
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			codes[i] = resp.StatusCode
			bodies[i] = buf.String()
		}(i)
	}
	time.Sleep(30 * time.Millisecond) // let the requests reach inference

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("in-flight request %d got %d (%s), want 200", i, code, bodies[i])
		}
	}

	// The listener is closed now: new requests must fail at the wire.
	if _, err := testClient.Post(url+"/predict", "application/json", strings.NewReader(`{"x":[1,2]}`)); err == nil {
		t.Fatal("request after shutdown succeeded")
	}
}

// TestWaitReturnsAfterShutdown: a clean Shutdown must unblock Wait with a
// nil error — the listener closing via http.ErrServerClosed is a normal
// stop, not a failure. Regression test for the hang where Wait blocked
// forever after drains.
func TestWaitReturnsAfterShutdown(t *testing.T) {
	path := writeTestModel(t, t.TempDir(), 9)
	s, err := New(Config{ModelPath: path, Addr: "127.0.0.1:0", MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- s.Wait() }()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("Wait after clean Shutdown = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait still blocked 5s after a clean Shutdown")
	}
}

// TestInflightBudgetSheds: with a per-tenant in-flight budget of 1 and a
// slow model, a burst of concurrent requests is partially shed with 429s —
// and everything is either served or shed, never errored.
func TestInflightBudgetSheds(t *testing.T) {
	path := writeTestModel(t, t.TempDir(), 8)
	s, ts := newTestServer(t, Config{
		ModelPath:   path,
		MaxInflight: 1,
		MaxWait:     time.Millisecond,
	})
	slowDownLive(s, DefaultSingleTenant, 50*time.Millisecond)

	const n = 8
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _, _ := postPredict(t, ts.URL, PredictRequest{X: []float64{1, 1}})
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()

	var ok, shed int
	for i, code := range codes {
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Fatalf("request %d: status %d, want 200 or 429", i, code)
		}
	}
	if ok == 0 {
		t.Fatal("every request was shed — budget admitted nothing")
	}
	if shed == 0 {
		t.Fatalf("no request was shed at budget 1 with %d concurrent", n)
	}
	if got := s.metrics.tenantShed.Value(DefaultSingleTenant, "inflight_budget"); got != uint64(shed) {
		t.Fatalf("shed counter = %v, want %d", got, shed)
	}
}

// TestHotReloadAtomicity hammers /predict while the artifact on disk is
// rewritten and /-/reload fired repeatedly. Every response must be a 200
// with finite outputs, and the reload counter must reflect every swap.
// Run with -race: this is the atomicity test.
func TestHotReloadAtomicity(t *testing.T) {
	dir := t.TempDir()
	path := writeTestModel(t, dir, 6)
	s, ts := newTestServer(t, Config{ModelPath: path, MaxWait: time.Millisecond})

	// Two alternating artifacts with identical schema, different weights.
	modelA := trainTestModel(t, 6)
	modelB := trainTestModel(t, 77)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var badMu sync.Mutex
	var bad []string
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, pr, raw := postPredict(t, ts.URL, PredictRequest{X: []float64{1, 1}})
				if resp.StatusCode != http.StatusOK {
					badMu.Lock()
					bad = append(bad, fmt.Sprintf("status %d: %s", resp.StatusCode, raw))
					badMu.Unlock()
					return
				}
				for _, v := range pr.Predictions[0] {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						badMu.Lock()
						bad = append(bad, fmt.Sprintf("non-finite prediction %v", pr.Predictions[0]))
						badMu.Unlock()
						return
					}
				}
			}
		}()
	}

	const reloads = 20
	for i := 0; i < reloads; i++ {
		m := modelA
		if i%2 == 0 {
			m = modelB
		}
		if err := m.SaveFile(path); err != nil {
			t.Fatal(err)
		}
		resp, err := testClient.Post(ts.URL+"/-/reload", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reload %d: status %d", i, resp.StatusCode)
		}
	}
	close(stop)
	wg.Wait()
	if len(bad) > 0 {
		t.Fatalf("prediction failures during reload: %v", bad[0])
	}

	gotReloads := s.metrics.reloads.Value()
	if gotReloads != reloads {
		t.Fatalf("reload counter = %d, want %d", gotReloads, reloads)
	}
	// Content-addressing: 20 reloads over 2 distinct artifacts (plus the
	// initial, which shares modelA's bytes) registered exactly 2 versions.
	arts := s.reg.Artifacts()
	if len(arts) != 2 {
		t.Fatalf("registry holds %d versions after alternating reloads, want 2", len(arts))
	}
}

// TestMetricsSchema pins the names and shape of the /metrics exposition.
func TestMetricsSchema(t *testing.T) {
	path := writeTestModel(t, t.TempDir(), 7)
	_, ts := newTestServer(t, Config{ModelPath: path, MaxWait: time.Millisecond})

	for i := 0; i < 3; i++ {
		resp, _, _ := postPredict(t, ts.URL, PredictRequest{X: []float64{1, 2}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict status %d", resp.StatusCode)
		}
	}
	// One rejected request so the error counter shows up.
	resp, err := testClient.Post(ts.URL+"/predict", "application/json", strings.NewReader(`{"x":[1]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = testClient.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()

	wants := []string{
		`nnwc_requests_total{endpoint="predict",code="200"} 3`,
		`nnwc_requests_total{endpoint="predict",code="400"} 1`,
		`nnwc_request_errors_total{reason="bad_input"} 1`,
		`nnwc_request_latency_seconds{quantile="0.5"}`,
		`nnwc_request_latency_seconds{quantile="0.99"}`,
		`nnwc_request_latency_seconds_count 4`,
		`nnwc_batch_size{quantile="0.5"}`,
		`nnwc_batch_size_sum 3`,
		`nnwc_model_reloads_total 0`,
		`nnwc_inflight_requests 0`,
		`nnwc_tenant_requests_total{model="default",code="200"} 3`,
		`nnwc_tenant_requests_total{model="default",code="400"} 1`,
		`nnwc_tenant_latency_seconds{model="default",quantile="0.5"}`,
		`nnwc_tenant_latency_seconds_count{model="default"} 3`,
		`nnwc_tenant_inflight_requests{model="default"} 0`,
		`nnwc_fleet_events_total{model="default",action="deploy"} 1`,
		`nnwc_registry_warm_models 1`,
		`nnwc_batch_groups 1`,
		`nnwc_model_loaded_timestamp_seconds`,
		`nnwc_model_info{path=`,
	}
	for _, want := range wants {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q\n---\n%s", want, body)
		}
	}
}

// TestHealthAndReadiness: healthz is always up; readyz tracks model
// presence and draining.
func TestHealthAndReadiness(t *testing.T) {
	// No model configured: healthy but not ready.
	s, ts := newTestServer(t, Config{})
	for path, want := range map[string]int{
		"/healthz": http.StatusOK,
		"/readyz":  http.StatusServiceUnavailable,
	} {
		resp, err := testClient.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s = %d, want %d", path, resp.StatusCode, want)
		}
	}
	// Predicts are refused without a model.
	resp, err := testClient.Post(ts.URL+"/predict", "application/json", strings.NewReader(`{"x":[1,2]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("predict without model = %d, want 503", resp.StatusCode)
	}

	// Draining flips readiness.
	s.draining.Store(true)
	resp, err = testClient.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", resp.StatusCode)
	}
}
