package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"nnwc/internal/core"
	"nnwc/internal/train"
	"nnwc/internal/workload"
)

// trainTestModel fits a small 2→2 model on a smooth function — fast enough
// for a unit test, real enough to exercise scalers and the batched path.
func trainTestModel(t *testing.T, seed uint64) *core.NNModel {
	t.Helper()
	ds := workload.NewDataset([]string{"a", "b"}, []string{"u", "v"})
	for i := 0; i < 40; i++ {
		a := float64(i%8) - 4
		b := float64(i/8) - 2
		ds.MustAppend(workload.Sample{
			X: []float64{a, b},
			Y: []float64{10 + a*a - b, 5 + a + 2*b},
		})
	}
	tc := train.DefaultConfig()
	tc.MaxEpochs = 150
	model, err := core.Fit(ds, core.Config{Hidden: []int{6}, Train: &tc, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return model
}

// writeTestModel persists a freshly trained model and returns its path.
func writeTestModel(t *testing.T, dir string, seed uint64) string {
	t.Helper()
	path := filepath.Join(dir, "model.json")
	if err := trainTestModel(t, seed).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func postPredict(t *testing.T, url string, body any) (*http.Response, PredictResponse, string) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/predict", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	var pr PredictResponse
	json.Unmarshal(buf.Bytes(), &pr)
	return resp, pr, buf.String()
}

// TestServeEndToEnd trains, persists, serves, and checks the HTTP answer
// matches the in-process model prediction exactly.
func TestServeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	path := writeTestModel(t, dir, 1)
	s, ts := newTestServer(t, Config{ModelPath: path, MaxBatch: 8, MaxWait: time.Millisecond})

	model, err := core.LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1.5, -0.5}
	want := model.Predict(x)

	resp, pr, raw := postPredict(t, ts.URL, PredictRequest{X: x})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if len(pr.Predictions) != 1 || len(pr.Predictions[0]) != len(want) {
		t.Fatalf("prediction shape %v", pr.Predictions)
	}
	for j := range want {
		if math.Abs(pr.Predictions[0][j]-want[j]) > 1e-9 {
			t.Fatalf("served prediction %v, want %v", pr.Predictions[0], want)
		}
	}
	if len(pr.TargetNames) != 2 || pr.TargetNames[0] != "u" {
		t.Fatalf("target names %v", pr.TargetNames)
	}
	if pr.Model.Path != path {
		t.Fatalf("model path %q", pr.Model.Path)
	}
	_ = s
}

// TestServeInstancesAndWarnings: multi-row requests work, and rows outside
// the training envelope come back with warnings but still predict.
func TestServeInstancesAndWarnings(t *testing.T) {
	path := writeTestModel(t, t.TempDir(), 2)
	_, ts := newTestServer(t, Config{ModelPath: path})

	resp, pr, raw := postPredict(t, ts.URL, PredictRequest{Instances: [][]float64{
		{0, 0},
		{100, 100}, // far outside the training envelope
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if len(pr.Predictions) != 2 {
		t.Fatalf("want 2 predictions, got %d", len(pr.Predictions))
	}
	if len(pr.Warnings) == 0 {
		t.Fatalf("expected envelope warnings, got none (%s)", raw)
	}
	if !strings.Contains(pr.Warnings[0], "outside training envelope") {
		t.Fatalf("warning %q", pr.Warnings[0])
	}
}

// TestServeValidation: bad dimensionality and non-finite inputs are 400s,
// and both are counted on the error surface.
func TestServeValidation(t *testing.T) {
	path := writeTestModel(t, t.TempDir(), 3)
	_, ts := newTestServer(t, Config{ModelPath: path})

	cases := []struct {
		name string
		body string
	}{
		{"wrong dims", `{"x":[1,2,3]}`},
		{"both x and instances", `{"x":[1,2],"instances":[[1,2]]}`},
		{"neither", `{}`},
		{"unknown field", `{"vector":[1,2]}`},
		{"bad json", `{"x":[1,2`},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/predict", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, resp.StatusCode)
		}
	}

	// JSON cannot carry NaN literally; exercise the finiteness check
	// through the validation helper directly.
	ms := &modelState{inputDim: 2, featureNames: []string{"a", "b"}}
	if _, err := validateRows(ms, [][]float64{{1, math.NaN()}}); err == nil {
		t.Fatal("NaN input accepted")
	}
	if _, err := validateRows(ms, [][]float64{{math.Inf(1), 0}}); err == nil {
		t.Fatal("Inf input accepted")
	}
}

// TestCoalescerBatchesConcurrentRequests drives many concurrent requests
// through a server configured with a generous gather window and asserts
// they were answered in fewer forward calls than requests — the
// micro-batcher actually coalesced.
func TestCoalescerBatchesConcurrentRequests(t *testing.T) {
	path := writeTestModel(t, t.TempDir(), 4)
	s, ts := newTestServer(t, Config{
		ModelPath: path,
		MaxBatch:  16,
		MaxWait:   100 * time.Millisecond,
		Workers:   1,
	})

	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _, raw := postPredict(t, ts.URL, PredictRequest{X: []float64{float64(i % 5), 1}})
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, raw)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	batches, rows := s.metrics.batchStats()
	if rows != n {
		t.Fatalf("rows inferred = %d, want %d", rows, n)
	}
	if batches >= n {
		t.Fatalf("batches = %d for %d requests — no coalescing happened", batches, n)
	}
}

// slowPredictor delays inference so shutdown has something to drain.
type slowPredictor struct {
	inner batchPredictor
	delay time.Duration
}

func (p *slowPredictor) PredictAll(xs [][]float64) [][]float64 {
	time.Sleep(p.delay)
	return p.inner.PredictAll(xs)
}

// TestGracefulShutdownDrainsInFlight: requests in flight when Shutdown is
// called complete with 200s; requests arriving after the drain starts are
// refused.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	path := writeTestModel(t, t.TempDir(), 5)
	s, err := New(Config{ModelPath: path, Addr: "127.0.0.1:0", MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Slow the model down so requests are genuinely in flight mid-drain.
	ms := s.model.Load()
	slow := *ms
	slow.pred = &slowPredictor{inner: ms.pred, delay: 80 * time.Millisecond}
	s.model.Store(&slow)

	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	url := "http://" + s.Addr()

	const n = 4
	codes := make([]int, n)
	bodies := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(url+"/predict", "application/json", strings.NewReader(`{"x":[1,2]}`))
			if err != nil {
				codes[i] = -1
				bodies[i] = err.Error()
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			codes[i] = resp.StatusCode
			bodies[i] = buf.String()
		}(i)
	}
	time.Sleep(30 * time.Millisecond) // let the requests reach inference

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("in-flight request %d got %d (%s), want 200", i, code, bodies[i])
		}
	}

	// The listener is closed now: new requests must fail at the wire.
	if _, err := http.Post(url+"/predict", "application/json", strings.NewReader(`{"x":[1,2]}`)); err == nil {
		t.Fatal("request after shutdown succeeded")
	}
}

// TestHotReloadAtomicity hammers /predict while the artifact on disk is
// rewritten and /-/reload fired repeatedly. Every response must be a 200
// with finite outputs, and the reload counter must reflect every swap.
// Run with -race: this is the atomicity test.
func TestHotReloadAtomicity(t *testing.T) {
	dir := t.TempDir()
	path := writeTestModel(t, dir, 6)
	s, ts := newTestServer(t, Config{ModelPath: path, MaxWait: time.Millisecond})

	// Two alternating artifacts with identical schema, different weights.
	modelA := trainTestModel(t, 6)
	modelB := trainTestModel(t, 77)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var badMu sync.Mutex
	var bad []string
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, pr, raw := postPredict(t, ts.URL, PredictRequest{X: []float64{1, 1}})
				if resp.StatusCode != http.StatusOK {
					badMu.Lock()
					bad = append(bad, fmt.Sprintf("status %d: %s", resp.StatusCode, raw))
					badMu.Unlock()
					return
				}
				for _, v := range pr.Predictions[0] {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						badMu.Lock()
						bad = append(bad, fmt.Sprintf("non-finite prediction %v", pr.Predictions[0]))
						badMu.Unlock()
						return
					}
				}
			}
		}()
	}

	const reloads = 20
	for i := 0; i < reloads; i++ {
		m := modelA
		if i%2 == 0 {
			m = modelB
		}
		if err := m.SaveFile(path); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/-/reload", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reload %d: status %d", i, resp.StatusCode)
		}
	}
	close(stop)
	wg.Wait()
	if len(bad) > 0 {
		t.Fatalf("prediction failures during reload: %v", bad[0])
	}

	gotReloads := s.metrics.reloads.Value()
	if gotReloads != reloads {
		t.Fatalf("reload counter = %d, want %d", gotReloads, reloads)
	}
}

// TestMetricsSchema pins the names and shape of the /metrics exposition.
func TestMetricsSchema(t *testing.T) {
	path := writeTestModel(t, t.TempDir(), 7)
	_, ts := newTestServer(t, Config{ModelPath: path, MaxWait: time.Millisecond})

	for i := 0; i < 3; i++ {
		resp, _, _ := postPredict(t, ts.URL, PredictRequest{X: []float64{1, 2}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict status %d", resp.StatusCode)
		}
	}
	// One rejected request so the error counter shows up.
	resp, err := http.Post(ts.URL+"/predict", "application/json", strings.NewReader(`{"x":[1]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()

	wants := []string{
		`nnwc_requests_total{endpoint="predict",code="200"} 3`,
		`nnwc_requests_total{endpoint="predict",code="400"} 1`,
		`nnwc_request_errors_total{reason="bad_input"} 1`,
		`nnwc_request_latency_seconds{quantile="0.5"}`,
		`nnwc_request_latency_seconds{quantile="0.99"}`,
		`nnwc_request_latency_seconds_count 4`,
		`nnwc_batch_size{quantile="0.5"}`,
		`nnwc_batch_size_sum 3`,
		`nnwc_model_reloads_total 0`,
		`nnwc_inflight_requests 0`,
		`nnwc_model_loaded_timestamp_seconds`,
		`nnwc_model_info{path=`,
	}
	for _, want := range wants {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q\n---\n%s", want, body)
		}
	}
}

// TestHealthAndReadiness: healthz is always up; readyz tracks model
// presence and draining.
func TestHealthAndReadiness(t *testing.T) {
	// No model configured: healthy but not ready.
	s, ts := newTestServer(t, Config{})
	for path, want := range map[string]int{
		"/healthz": http.StatusOK,
		"/readyz":  http.StatusServiceUnavailable,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s = %d, want %d", path, resp.StatusCode, want)
		}
	}
	// Predicts are refused without a model.
	resp, err := http.Post(ts.URL+"/predict", "application/json", strings.NewReader(`{"x":[1,2]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("predict without model = %d, want 503", resp.StatusCode)
	}

	// Draining flips readiness.
	s.draining.Store(true)
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", resp.StatusCode)
	}
}

// TestCoalescerGather unit-tests the gather logic: pre-queued jobs join the
// batch immediately and maxBatch is honored.
func TestCoalescerGather(t *testing.T) {
	var got [][]int
	c := newCoalescer(4, 50*time.Millisecond, 64, func(batch []predictJob) {
		row := make([]int, len(batch))
		for i := range batch {
			row[i] = int(batch[i].x[0])
		}
		got = append(got, row)
		for _, j := range batch {
			j.reply <- predictResult{y: []float64{0}}
		}
	})
	// Queue 9 jobs before starting a single worker: they must drain as
	// batches of 4, 4, 1 — greedy gather, capped at maxBatch.
	jobs := make([]predictJob, 9)
	for i := range jobs {
		jobs[i] = predictJob{x: []float64{float64(i)}, reply: make(chan predictResult, 1)}
		c.jobs <- jobs[i]
	}
	c.start(1)
	for i := range jobs {
		select {
		case <-jobs[i].reply:
		case <-time.After(5 * time.Second):
			t.Fatalf("job %d never answered", i)
		}
	}
	c.shutdown()
	if len(got) != 3 || len(got[0]) != 4 || len(got[1]) != 4 || len(got[2]) != 1 {
		t.Fatalf("batch shapes %v, want [4 4 1]", got)
	}
}
