package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"
)

// ErrDraining is returned to requests that reach the prediction queue while
// the server is shutting down.
var ErrDraining = errors.New("serve: server is draining")

// predictJob is one configuration vector waiting for inference, with the
// channel its result is delivered on (buffered so a worker never blocks on
// a caller that gave up).
type predictJob struct {
	x     []float64
	reply chan predictResult
}

type predictResult struct {
	y   []float64
	err error
}

// coalescer is the request micro-batcher: concurrent predict requests are
// gathered into one batched forward call, bounded by maxBatch rows and
// maxWait of extra latency. Gathering is greedy first — whatever is already
// queued joins immediately — and only then waits out maxWait for
// stragglers, so an idle server adds no artificial latency under light
// load and saturates batches under heavy load.
type coalescer struct {
	jobs     chan predictJob
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	maxBatch int
	maxWait  time.Duration
	run      func(batch []predictJob)
}

func newCoalescer(maxBatch int, maxWait time.Duration, queueDepth int, run func([]predictJob)) *coalescer {
	return &coalescer{
		jobs:     make(chan predictJob, queueDepth),
		stop:     make(chan struct{}),
		maxBatch: maxBatch,
		maxWait:  maxWait,
		run:      run,
	}
}

// start launches `workers` independent gather-and-infer loops. Each worker
// assembles its own batch, so inference parallelism scales with workers
// while every batch still flows through one forward call.
func (c *coalescer) start(workers int) {
	if workers < 1 {
		workers = 1
	}
	c.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go c.loop()
	}
}

func (c *coalescer) loop() {
	defer c.wg.Done()
	// One reusable batch buffer per worker: run must finish with the slice
	// before returning (runBatch fans results out synchronously), so gather
	// can reuse it without allocating maxBatch headers per batch.
	buf := make([]predictJob, 0, c.maxBatch)
	for {
		select {
		case <-c.stop:
			c.drain()
			return
		case j := <-c.jobs:
			c.run(c.gather(buf[:0], j))
		}
	}
}

// drain answers whatever is still queued after stop with ErrDraining. By
// the time stop closes the HTTP server has already drained its handlers,
// so this is a defensive backstop, not the normal path.
func (c *coalescer) drain() {
	for {
		select {
		case j := <-c.jobs:
			j.reply <- predictResult{err: ErrDraining}
		default:
			return
		}
	}
}

// gather assembles a batch around the first job into batch (len 0 on entry;
// the run callback must not retain the slice). Batches form from backlog:
// everything already queued joins greedily, then one cooperative yield lets
// submitters that are already runnable enqueue before the batch closes —
// that single scheduler pass is what fills batches under concurrent load
// without spending the maxWait timer. A batch that found company runs
// immediately; only a lone row on an idle queue is held, up to maxWait, for
// near-simultaneous arrivals, and the first straggler closes the batch
// after one more greedy sweep.
func (c *coalescer) gather(batch []predictJob, first predictJob) []predictJob {
	batch = append(batch, first)
	batch = c.greedy(batch)
	if len(batch) < c.maxBatch {
		runtime.Gosched()
		batch = c.greedy(batch)
	}
	if len(batch) > 1 || c.maxWait <= 0 {
		return batch
	}
	timer := time.NewTimer(c.maxWait)
	defer timer.Stop()
	select {
	case j := <-c.jobs:
		return c.greedy(append(batch, j))
	case <-timer.C:
	case <-c.stop:
	}
	return batch
}

// greedy drains whatever is queued right now into batch, up to maxBatch.
func (c *coalescer) greedy(batch []predictJob) []predictJob {
	for len(batch) < c.maxBatch {
		select {
		case j := <-c.jobs:
			batch = append(batch, j)
		default:
			return batch
		}
	}
	return batch
}

// submitAll enqueues every row of xs and waits for all results (or the
// context). Rows from one request may land in different batches and batches
// may mix rows from many requests — that is the point.
func (c *coalescer) submitAll(ctx context.Context, xs [][]float64) ([][]float64, error) {
	jobs := make([]predictJob, len(xs))
	for i, x := range xs {
		jobs[i] = predictJob{x: x, reply: make(chan predictResult, 1)}
		select {
		case c.jobs <- jobs[i]:
		case <-c.stop:
			return nil, ErrDraining
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	out := make([][]float64, len(xs))
	for i := range jobs {
		select {
		case res := <-jobs[i].reply:
			if res.err != nil {
				return nil, res.err
			}
			out[i] = res.y
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return out, nil
}

// shutdown stops the workers and waits for them; idempotent.
func (c *coalescer) shutdown() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}
