package serve

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"nnwc/internal/core"
)

// TestFleetRaceNoTornModels is the fleet's atomicity pin, written to run
// under -race: while canary deploys, promotions, rollbacks, and hot reloads
// churn a tenant continuously, every concurrent coalesced prediction must
// be bit-identical to what ONE of the registered models computes for that
// input. A torn or half-promoted model — a batch that mixes weights from
// two versions, or a request that observes a partially-published instance —
// would produce a vector matching none of them.
func TestFleetRaceNoTornModels(t *testing.T) {
	dir := t.TempDir()
	models := []*core.NNModel{
		trainTestModel(t, 30),
		trainTestModel(t, 31),
		trainTestModel(t, 32),
	}
	paths := make([]string, len(models))
	for i, m := range models {
		paths[i] = filepath.Join(dir, fmt.Sprintf("artifact-%d.json", i))
		if err := m.SaveFile(paths[i]); err != nil {
			t.Fatal(err)
		}
	}
	// livePath is the tenant's configured (reload) target; churners
	// overwrite it and fire Reload. SaveFile is atomic (temp + rename), so
	// a concurrent reload hashes either the old bytes or the new — never a
	// torn file.
	livePath := filepath.Join(dir, "web.json")
	if err := models[0].SaveFile(livePath); err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{
		Models:  map[string]string{"web": livePath},
		MaxWait: 200 * time.Microsecond,
		Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	// The full space of legal answers: each registered model's batched
	// prediction for the probe input. Computed through PredictAll — the
	// same kernel path runBatch takes — so equality is exact, not
	// approximate.
	x := []float64{1.25, -0.75}
	expected := make([][]float64, len(models))
	for i, m := range models {
		expected[i] = m.PredictAll([][]float64{x})[0]
	}
	matches := func(y []float64) bool {
		for _, want := range expected {
			if len(y) != len(want) {
				continue
			}
			same := true
			for j := range want {
				if y[j] != want[j] { //nolint — bit-equality IS the assertion
					same = false
					break
				}
			}
			if same {
				return true
			}
		}
		return false
	}

	var (
		failMu sync.Mutex
		fails  []string
	)
	record := func(format string, args ...any) {
		failMu.Lock()
		if len(fails) < 8 {
			fails = append(fails, fmt.Sprintf(format, args...))
		}
		failMu.Unlock()
	}

	stop := make(chan struct{})
	var wg, churnWg sync.WaitGroup

	// Traffic: four workers hammer the live model through the coalescing
	// path. Responses from pinned versions would also be legal, but live
	// routing is what promotion races against.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for {
				select {
				case <-stop:
					return
				default:
				}
				y, err := s.PredictRef(ctx, "web", x)
				if err != nil {
					record("predict: %v", err)
					return
				}
				if !matches(y) {
					record("prediction %v matches no registered model", y)
					return
				}
			}
		}()
	}

	// Observations: feed prediction-vs-actual pairs concurrently so the
	// rolling windows (and shadow inference inside Observe) churn too.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Errors are legal here (e.g. a rollback race); the invariant
			// under test is the traffic invariant above.
			_, _ = s.ctl.Observe("web", x, expected[0])
		}
	}()

	// Churn: two goroutines deploy canaries, promote, roll back, and hot
	// reload, concurrently with each other and with the traffic. Individual
	// operations may fail (promote racing a rollback that already dropped
	// the shadow) — the deployment API is allowed to say no, never to tear.
	for c := 0; c < 2; c++ {
		wg.Add(1)
		churnWg.Add(1)
		go func(c int) {
			defer wg.Done()
			defer churnWg.Done()
			for i := 0; i < 50; i++ {
				switch (i + c) % 4 {
				case 0:
					if _, err := s.ctl.Deploy("web", paths[1], true); err == nil {
						_, _ = s.ctl.Promote("web")
					}
				case 1:
					if _, err := s.ctl.Deploy("web", paths[2], true); err == nil {
						_, _ = s.ctl.Rollback("web")
					}
				case 2:
					if err := models[(i+c)%3].SaveFile(livePath); err != nil {
						record("rewriting live artifact: %v", err)
						return
					}
					_ = s.Reload()
				case 3:
					_, _ = s.ctl.Rollback("web")
				}
			}
		}(c)
	}

	// Traffic runs for the full duration of the churn, then stops.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	churnWg.Wait()
	close(stop)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("fleet race test wedged")
	}

	if len(fails) > 0 {
		t.Fatalf("torn/invalid responses under churn: %v", fails)
	}
	if s.ctl.Deployment("web").Live() == nil {
		t.Fatal("tenant lost its live model during churn")
	}
}
