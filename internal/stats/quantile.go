package stats

import (
	"errors"
	"math"
	"sort"
)

// Quantile returns the p-quantile (0 ≤ p ≤ 1) of xs using linear
// interpolation between order statistics (the R-7 / spreadsheet
// convention). The input is not modified. It panics on empty input or p
// outside [0, 1].
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	if p < 0 || p > 1 {
		panic(errors.New("stats: quantile p outside [0,1]"))
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if len(c) == 1 {
		return c[0]
	}
	h := p * float64(len(c)-1)
	lo := int(math.Floor(h))
	hi := int(math.Ceil(h))
	if lo == hi {
		return c[lo]
	}
	frac := h - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac
}

// Percentiles bundles the response-time percentiles workload reports use.
type Percentiles struct {
	P50, P90, P95, P99 float64
}

// SummarizePercentiles computes the standard percentile set of xs.
func SummarizePercentiles(xs []float64) Percentiles {
	return Percentiles{
		P50: Quantile(xs, 0.50),
		P90: Quantile(xs, 0.90),
		P95: Quantile(xs, 0.95),
		P99: Quantile(xs, 0.99),
	}
}

// ConfidenceInterval is a symmetric interval around a mean.
type ConfidenceInterval struct {
	Mean      float64
	HalfWidth float64 // the interval is Mean ± HalfWidth
	Batches   int
}

// Contains reports whether v lies inside the interval.
func (ci ConfidenceInterval) Contains(v float64) bool {
	return math.Abs(v-ci.Mean) <= ci.HalfWidth
}

// BatchMeansCI estimates a ~95% confidence interval for the steady-state
// mean of a (possibly autocorrelated) simulation output series using the
// method of non-overlapping batch means: the series is cut into `batches`
// equal batches whose means are approximately independent, and a
// t-interval is formed over them. This is the standard way to attach
// error bars to discrete-event simulation results. Requires at least 2
// batches with at least 2 observations each.
func BatchMeansCI(series []float64, batches int) (ConfidenceInterval, error) {
	if batches < 2 {
		return ConfidenceInterval{}, errors.New("stats: need at least 2 batches")
	}
	if len(series) < 2*batches {
		return ConfidenceInterval{}, errors.New("stats: series too short for the requested batches")
	}
	means := make([]float64, batches)
	per := len(series) / batches
	for b := 0; b < batches; b++ {
		lo := b * per
		hi := lo + per
		if b == batches-1 {
			hi = len(series) // last batch absorbs the remainder
		}
		means[b] = Mean(series[lo:hi])
	}
	grand := Mean(means)
	sVar := SampleVariance(means)
	se := math.Sqrt(sVar / float64(batches))
	return ConfidenceInterval{
		Mean:      grand,
		HalfWidth: tCritical95(batches-1) * se,
		Batches:   batches,
	}, nil
}

// tCritical95 returns the two-sided 95% critical value of Student's t with
// df degrees of freedom (tabulated; asymptote 1.96 beyond the table).
func tCritical95(df int) float64 {
	table := []float64{
		0, // df = 0 unused
		12.706, 4.303, 3.182, 2.776, 2.571,
		2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131,
		2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060,
		2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df <= 0 {
		return math.Inf(1)
	}
	if df < len(table) {
		return table[df]
	}
	switch {
	case df < 40:
		return 2.03
	case df < 60:
		return 2.00
	case df < 120:
		return 1.98
	}
	return 1.96
}
