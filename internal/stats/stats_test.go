package stats

import (
	"math"
	"testing"
	"testing/quick"

	"nnwc/internal/rng"
)

func close(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !close(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("mean of empty should be 0")
	}
}

func TestVariance(t *testing.T) {
	if !close(Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 4) {
		t.Fatal("population variance wrong")
	}
	if Variance(nil) != 0 {
		t.Fatal("variance of empty should be 0")
	}
}

func TestSampleVariance(t *testing.T) {
	// Sample variance divides by n-1.
	if !close(SampleVariance([]float64{1, 2, 3}), 1) {
		t.Fatal("sample variance wrong")
	}
	if SampleVariance([]float64{5}) != 0 {
		t.Fatal("sample variance of singleton should be 0")
	}
}

func TestStdDev(t *testing.T) {
	if !close(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2) {
		t.Fatal("stddev wrong")
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Fatal("min/max wrong")
	}
	if !close(Median(xs), 3) {
		t.Fatal("odd median wrong")
	}
	if !close(Median([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("even median wrong")
	}
	// Median must not reorder the input.
	if xs[0] != 3 {
		t.Fatal("Median mutated input")
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min(nil) did not panic")
		}
	}()
	Min(nil)
}

func TestHarmonicMean(t *testing.T) {
	hm, err := HarmonicMean([]float64{1, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !close(hm, 2) {
		t.Fatalf("harmonic mean = %v, want 2", hm)
	}
	if _, err := HarmonicMean(nil); err == nil {
		t.Fatal("empty harmonic mean should error")
	}
	if _, err := HarmonicMean([]float64{1, 0}); err == nil {
		t.Fatal("harmonic mean with zero should error")
	}
	if _, err := HarmonicMean([]float64{1, -2}); err == nil {
		t.Fatal("harmonic mean with negative should error")
	}
}

func TestHarmonicLeqArithmetic(t *testing.T) {
	// AM-HM inequality on positive values.
	if err := quick.Check(func(seed uint64) bool {
		src := rng.New(seed)
		n := 1 + src.Intn(10)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = 0.01 + src.Float64()*10
		}
		hm, err := HarmonicMean(xs)
		if err != nil {
			return false
		}
		return hm <= Mean(xs)+1e-12
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRelativeErrors(t *testing.T) {
	rel := RelativeErrors([]float64{10, 0, 4}, []float64{11, 5, 3})
	if len(rel) != 2 {
		t.Fatalf("zero actual should be skipped, got %d entries", len(rel))
	}
	if !close(rel[0], 0.1) || !close(rel[1], 0.25) {
		t.Fatalf("relative errors %v", rel)
	}
}

func TestHarmonicMeanRelativeError(t *testing.T) {
	h, err := HarmonicMeanRelativeError([]float64{100, 100}, []float64{110, 105})
	if err != nil {
		t.Fatal(err)
	}
	// errors 0.10 and 0.05 → HM = 2/(10+20) = 0.0667
	if !close(h, 2.0/30.0) {
		t.Fatalf("HMRE = %v", h)
	}
}

// TestHarmonicMeanRelativeErrorOneExact is the regression test for the
// accuracy-inflating edge case: one coincidentally exact prediction used to
// collapse the whole metric to 0. With the RelErrFloor fix the exact hit is
// floored and the harmonic mean stays informative. Hand computation:
// rel = {0, 1/6} → floored {1e-6, 1/6} → HM = 2 / (1e6 + 6).
func TestHarmonicMeanRelativeErrorOneExact(t *testing.T) {
	h, err := HarmonicMeanRelativeError([]float64{5, 6}, []float64{5, 7})
	if err != nil {
		t.Fatal(err)
	}
	if h == 0 {
		t.Fatal("one exact prediction must no longer collapse HMRE to 0")
	}
	want := 2.0 / (1e6 + 6)
	if !close(h, want) {
		t.Fatalf("HMRE with one exact prediction = %v, want %v", h, want)
	}
}

// TestHarmonicMeanRelativeErrorAllExact pins the one case that legitimately
// reports 0: every prediction exact.
func TestHarmonicMeanRelativeErrorAllExact(t *testing.T) {
	h, err := HarmonicMeanRelativeError([]float64{5, 6}, []float64{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if h != 0 {
		t.Fatalf("all-exact predictions should yield exactly 0, got %v", h)
	}
}

// TestHarmonicMeanRelativeErrorAllZeroActuals: an indicator whose actuals
// are all zero carries no relative-error information, so the metric must
// error out (callers report NaN) rather than claim anything.
func TestHarmonicMeanRelativeErrorAllZeroActuals(t *testing.T) {
	if _, err := HarmonicMeanRelativeError([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Fatal("all-zero actuals should error, not report an accuracy")
	}
}

func TestMeanSkipNaN(t *testing.T) {
	nan := math.NaN()
	if got := MeanSkipNaN([]float64{1, nan, 3}); !close(got, 2) {
		t.Fatalf("MeanSkipNaN = %v, want 2", got)
	}
	if got := MeanSkipNaN([]float64{nan, nan}); !math.IsNaN(got) {
		t.Fatalf("all-NaN input should yield NaN, got %v", got)
	}
	if got := MeanSkipNaN(nil); !math.IsNaN(got) {
		t.Fatalf("empty input should yield NaN, got %v", got)
	}
}

func TestHarmonicMeanRelativeErrorMismatch(t *testing.T) {
	if _, err := HarmonicMeanRelativeError([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestHMRENotAboveMAPE(t *testing.T) {
	// HM ≤ AM, so the paper's metric never exceeds MAPE on the same data.
	if err := quick.Check(func(seed uint64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(20)
		actual := make([]float64, n)
		pred := make([]float64, n)
		for i := range actual {
			actual[i] = 1 + src.Float64()*100
			pred[i] = actual[i] * (1 + src.Uniform(0.01, 0.5))
		}
		h, err := HarmonicMeanRelativeError(actual, pred)
		if err != nil {
			return false
		}
		return h <= MAPE(actual, pred)+1e-12
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMAEAndRMSE(t *testing.T) {
	actual := []float64{1, 2, 3}
	pred := []float64{2, 2, 5}
	if !close(MAE(actual, pred), 1) {
		t.Fatal("MAE wrong")
	}
	if !close(RMSE(actual, pred), math.Sqrt(5.0/3.0)) {
		t.Fatal("RMSE wrong")
	}
	if MAE(nil, nil) != 0 || RMSE(nil, nil) != 0 {
		t.Fatal("empty metrics should be 0")
	}
}

func TestR2(t *testing.T) {
	actual := []float64{1, 2, 3, 4}
	if !close(R2(actual, actual), 1) {
		t.Fatal("perfect prediction should give R²=1")
	}
	meanPred := []float64{2.5, 2.5, 2.5, 2.5}
	if !close(R2(actual, meanPred), 0) {
		t.Fatal("mean prediction should give R²=0")
	}
	if R2([]float64{5, 5}, []float64{4, 6}) != 0 {
		t.Fatal("constant actual should give R²=0 by convention")
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if !close(Correlation(xs, ys), 1) {
		t.Fatal("perfect positive correlation expected")
	}
	neg := []float64{8, 6, 4, 2}
	if !close(Correlation(xs, neg), -1) {
		t.Fatal("perfect negative correlation expected")
	}
	if Correlation(xs, []float64{5, 5, 5, 5}) != 0 {
		t.Fatal("constant series should give 0")
	}
	if Correlation(xs, []float64{1}) != 0 {
		t.Fatal("mismatched lengths should give 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary %+v", s)
	}
}

func BenchmarkHMRE(b *testing.B) {
	actual := make([]float64, 100)
	pred := make([]float64, 100)
	for i := range actual {
		actual[i] = float64(i + 1)
		pred[i] = float64(i+1) * 1.03
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HarmonicMeanRelativeError(actual, pred); err != nil {
			b.Fatal(err)
		}
	}
}
