package stats

import (
	"math"
	"testing"
	"testing/quick"

	"nnwc/internal/rng"
)

func TestQuantileKnownValues(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Fatal("extremes wrong")
	}
	if Quantile(xs, 0.5) != 3 {
		t.Fatal("median wrong")
	}
	// R-7 interpolation: p=0.25 on 5 points → h=1 → exactly the 2nd.
	if Quantile(xs, 0.25) != 2 {
		t.Fatal("quartile wrong")
	}
	// Interpolated value.
	if got := Quantile([]float64{10, 20}, 0.5); got != 15 {
		t.Fatalf("interpolation wrong: %v", got)
	}
	if Quantile([]float64{7}, 0.9) != 7 {
		t.Fatal("singleton wrong")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 {
		t.Fatal("Quantile sorted its input")
	}
}

func TestQuantileMonotoneInP(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = src.Norm()
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.1 {
			v := Quantile(xs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSummarizePercentilesOrdering(t *testing.T) {
	src := rng.New(4)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = src.Exp(1)
	}
	p := SummarizePercentiles(xs)
	if !(p.P50 <= p.P90 && p.P90 <= p.P95 && p.P95 <= p.P99) {
		t.Fatalf("percentiles out of order: %+v", p)
	}
}

func TestBatchMeansCICoversTrueMean(t *testing.T) {
	// i.i.d. normal data with known mean: the 95% CI should contain the
	// truth in the vast majority of replications.
	hits := 0
	const reps = 200
	for r := 0; r < reps; r++ {
		src := rng.New(uint64(r) + 1)
		series := make([]float64, 400)
		for i := range series {
			series[i] = src.NormMeanStd(10, 2)
		}
		ci, err := BatchMeansCI(series, 20)
		if err != nil {
			t.Fatal(err)
		}
		if ci.Contains(10) {
			hits++
		}
	}
	if hits < reps*88/100 {
		t.Fatalf("CI covered the true mean only %d/%d times", hits, reps)
	}
}

func TestBatchMeansCIShrinkWithData(t *testing.T) {
	src := rng.New(9)
	longSeries := make([]float64, 8000)
	for i := range longSeries {
		longSeries[i] = src.Exp(0.5)
	}
	small, err := BatchMeansCI(longSeries[:400], 20)
	if err != nil {
		t.Fatal(err)
	}
	big, err := BatchMeansCI(longSeries, 20)
	if err != nil {
		t.Fatal(err)
	}
	if big.HalfWidth >= small.HalfWidth {
		t.Fatalf("CI did not shrink with more data: %v vs %v", big.HalfWidth, small.HalfWidth)
	}
}

func TestBatchMeansCIErrors(t *testing.T) {
	if _, err := BatchMeansCI([]float64{1, 2, 3}, 1); err == nil {
		t.Fatal("1 batch accepted")
	}
	if _, err := BatchMeansCI([]float64{1, 2, 3}, 2); err == nil {
		t.Fatal("too-short series accepted")
	}
}

func TestTCriticalMonotone(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		v := tCritical95(df)
		if v > prev {
			t.Fatalf("t-critical not non-increasing at df=%d", df)
		}
		prev = v
	}
	if math.Abs(tCritical95(1000)-1.96) > 1e-9 {
		t.Fatal("asymptote wrong")
	}
	if !math.IsInf(tCritical95(0), 1) {
		t.Fatal("df=0 should be infinite")
	}
}
