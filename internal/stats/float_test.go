package stats

import (
	"math"
	"testing"
)

// TestApproxEqual pins the helper's tolerance semantics: combined
// absolute/relative via |a−b| ≤ tol·max(1,|a|,|b|).
func TestApproxEqual(t *testing.T) {
	inf := math.Inf(1)
	nan := math.NaN()
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},                        // identical values at zero tolerance
		{0, 1e-10, 1e-9, true},                 // absolute regime near zero
		{0, 2e-9, 1e-9, false},                 // just outside absolute tolerance
		{1e12, 1e12 * (1 + 1e-10), 1e-9, true}, // relative regime at large scale
		{1e12, 1e12 * (1 + 1e-8), 1e-9, false}, // relative failure at large scale
		{-1, 1, 1, false},                      // |a−b| = 2 > 1·max(1,|a|,|b|) = 1
		{inf, inf, 1e-9, true},                 // equal infinities
		{inf, -inf, 1e-9, false},               // opposite infinities
		{inf, 1e308, 1e-9, false},              // infinity vs finite
		{nan, nan, 1e-9, false},                // NaN equals nothing
		{nan, 0, 1e-9, false},
		{0, math.Copysign(0, -1), 0, true}, // ±0 are equal
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("ApproxEqual(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestExactZero(t *testing.T) {
	if !ExactZero(0) || !ExactZero(math.Copysign(0, -1)) {
		t.Error("ExactZero must accept both signed zeros")
	}
	for _, x := range []float64{1e-300, -1e-300, math.SmallestNonzeroFloat64, math.NaN(), math.Inf(1)} {
		if ExactZero(x) {
			t.Errorf("ExactZero(%v) = true, want false", x)
		}
	}
}

func TestExactEqual(t *testing.T) {
	if !ExactEqual(1.5, 1.5) || ExactEqual(1.5, math.Nextafter(1.5, 2)) {
		t.Error("ExactEqual must distinguish adjacent floats")
	}
	if ExactEqual(math.NaN(), math.NaN()) {
		t.Error("ExactEqual(NaN, NaN) must be false (IEEE semantics)")
	}
	if !ExactEqual(0, math.Copysign(0, -1)) {
		t.Error("ExactEqual(+0, −0) must be true (IEEE semantics)")
	}
}
