package stats

import "math"

// This file is the one place exact floating-point comparison is allowed
// (the floateq analyzer's allowfunc list in lint.conf names these
// helpers). Routing call sites through them documents *which* comparison
// semantics each site wants — tolerance, zero-sentinel, or bit-identity —
// instead of leaving a bare == whose intent the next reader must guess.

// ApproxEqual reports whether a and b agree within tol, using a combined
// absolute/relative test: |a−b| ≤ tol·max(1, |a|, |b|). tol therefore
// reads as an absolute tolerance near the unit interval and degrades
// gracefully to a relative tolerance for large magnitudes. NaN equals
// nothing (including NaN); equal infinities of the same sign are equal.
func ApproxEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b // equal infinities only; |a−b| ≤ tol·Inf would accept anything
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// ExactZero reports whether x is exactly zero (either sign). It exists
// for sentinel checks — "was this parameter left unset", "is this pivot
// singular", "skip the zero entries of a sparse row" — where an epsilon
// would change semantics; it is NOT an approximate-zero test.
func ExactZero(x float64) bool { return x == 0 }

// ExactEqual reports whether a and b are equal under Go's ==, i.e.
// bit-identical up to the usual IEEE caveats (NaN ≠ NaN, −0 == +0). It
// exists for determinism checks that compare two runs' outputs, where
// bit-identity is exactly the property under test.
func ExactEqual(a, b float64) bool { return a == b }
