// Package stats provides the descriptive statistics and the error metrics
// the paper's methodology relies on: mean/standard deviation for
// standardization (§3.1), and the harmonic mean of relative errors used to
// score a validation fold (§3.3), alongside the usual regression metrics
// (MAE, MAPE, RMSE, R²) used for baseline comparisons.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by metrics that are undefined on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MeanSkipNaN returns the arithmetic mean of the non-NaN entries of xs.
// It returns NaN when xs is empty or every entry is NaN — aggregates over
// undefined metrics must not report a (perfect-looking) number.
func MeanSkipNaN(xs []float64) float64 {
	var s float64
	n := 0
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		s += x
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n)
}

// Variance returns the population variance of xs (dividing by n), or 0 for
// fewer than one element.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// SampleVariance returns the sample variance of xs (dividing by n−1), or 0
// for fewer than two elements.
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs. It panics on empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs without modifying it. It panics on empty
// input.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// HarmonicMean returns the harmonic mean of xs. Inputs must be strictly
// positive; non-positive values make the harmonic mean undefined and cause
// an ErrEmpty-style error.
func HarmonicMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: harmonic mean requires positive values")
		}
		s += 1 / x
	}
	return float64(len(xs)) / s, nil
}

// RelativeErrors returns |pred−actual| / |actual| element-wise. Entries
// where actual is zero are skipped (they would be infinite); the returned
// slice may therefore be shorter than the input.
func RelativeErrors(actual, pred []float64) []float64 {
	out := make([]float64, 0, len(actual))
	for i, a := range actual {
		if ExactZero(a) {
			continue
		}
		out = append(out, math.Abs(pred[i]-a)/math.Abs(a))
	}
	return out
}

// RelErrFloor is the floor applied to individual relative errors inside
// HarmonicMeanRelativeError. The harmonic mean is dominated by its smallest
// term, so a single coincidentally exact prediction (relative error 0)
// would otherwise collapse the whole indicator's reported error to 0% and
// inflate the derived accuracy. Flooring at 1e-6 (0.0001%) keeps exact hits
// from zeroing the metric while staying far below any error the paper's
// loose-fit protocol can distinguish.
const RelErrFloor = 1e-6

// HarmonicMeanRelativeError is the paper's §3.3 validation metric: the
// harmonic mean of |error|/|actual| over a set of predictions. Zero-valued
// actuals are skipped. Individual relative errors are floored at
// RelErrFloor so one exact prediction cannot collapse the metric to 0; the
// result is exactly 0 only when every prediction is exact.
func HarmonicMeanRelativeError(actual, pred []float64) (float64, error) {
	if len(actual) != len(pred) {
		return 0, errors.New("stats: length mismatch")
	}
	rel := RelativeErrors(actual, pred)
	if len(rel) == 0 {
		return 0, ErrEmpty
	}
	allExact := true
	var s float64
	for _, r := range rel {
		if !ExactZero(r) {
			allExact = false
		}
		if r < RelErrFloor {
			r = RelErrFloor
		}
		s += 1 / r
	}
	if allExact {
		return 0, nil
	}
	return float64(len(rel)) / s, nil
}

// MAE returns the mean absolute error between actual and pred.
func MAE(actual, pred []float64) float64 {
	if len(actual) == 0 {
		return 0
	}
	var s float64
	for i, a := range actual {
		s += math.Abs(pred[i] - a)
	}
	return s / float64(len(actual))
}

// MAPE returns the mean absolute percentage error (as a fraction, not
// percent). Zero actuals are skipped.
func MAPE(actual, pred []float64) float64 {
	rel := RelativeErrors(actual, pred)
	return Mean(rel)
}

// RMSE returns the root-mean-square error between actual and pred.
func RMSE(actual, pred []float64) float64 {
	if len(actual) == 0 {
		return 0
	}
	var s float64
	for i, a := range actual {
		d := pred[i] - a
		s += d * d
	}
	return math.Sqrt(s / float64(len(actual)))
}

// R2 returns the coefficient of determination of pred against actual.
// A constant actual series yields R² = 0 by convention.
func R2(actual, pred []float64) float64 {
	if len(actual) == 0 {
		return 0
	}
	mean := Mean(actual)
	var ssRes, ssTot float64
	for i, a := range actual {
		d := pred[i] - a
		ssRes += d * d
		t := a - mean
		ssTot += t * t
	}
	if ExactZero(ssTot) {
		return 0
	}
	return 1 - ssRes/ssTot
}

// Correlation returns the Pearson correlation coefficient between xs and
// ys, or 0 when either series is constant.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if ExactZero(sxx) || ExactZero(syy) {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Summary bundles the descriptive statistics of one series.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Median, Max float64
}

// Summarize computes a Summary of xs. It panics on empty input.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Std:    StdDev(xs),
		Min:    Min(xs),
		Median: Median(xs),
		Max:    Max(xs),
	}
}
