package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEqAnalyzer forbids == and != on floating-point operands outside
// the epsilon-helper allowlist (stats.ApproxEqual / stats.ExactZero and
// friends, named by `floateq allowfunc` directives in lint.conf). Exact
// float comparison is how accuracy metrics silently lie: an HMRE term
// that happens to land on 0.0, or a convergence check that compares
// recomputed losses bit-for-bit, behaves differently across
// optimization levels and reduction orders. Intentional exact
// comparisons route through the shared helpers so the semantics are
// documented and tested in one place.
var FloatEqAnalyzer = &Analyzer{
	Name: "floateq",
	Doc:  "forbid ==/!= on floats outside the epsilon-helper allowlist",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	if !p.Policy.Applies("floateq", p.Pkg.Path) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !p.isFloatType(be.X) && !p.isFloatType(be.Y) {
				return true
			}
			if fd := funcFor(f, be.Pos()); fd != nil && p.Policy.FuncAllowed("floateq", p.Pkg.Path, funcDeclName(fd)) {
				return true
			}
			p.Reportf("floateq", be.Pos(),
				"%s on floating-point operands; use stats.ApproxEqual/stats.ExactZero (or waive with a justification)", be.Op)
			return true
		})
	}
}

func (p *Pass) isFloatType(expr ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// funcDeclName names a function the way `floateq allowfunc` directives
// do: "FuncName" for functions, "Recv.Method" for methods (pointer
// receivers drop the star).
func funcDeclName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if ident, ok := t.(*ast.Ident); ok {
		return ident.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}
