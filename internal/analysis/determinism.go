package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// DeterminismAnalyzer enforces determinism-source confinement: wall-clock
// reads (time.Now, time.Since, time.Until, timers/tickers) and the
// unseeded math/rand generators are forbidden outside the allowlisted
// packages (internal/rng owns seeding, internal/obs and internal/serve
// own wall-time attribution, cmd/* own operator-facing timing). Every
// result-producing path must derive randomness from an explicit
// rng.Source seed and must not observe the clock, or the 1e-9
// seed-reference CV pin and cross-run trace byte-identity break.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock reads and math/rand outside allowlisted packages",
	Run:  runDeterminism,
}

// nondeterministic time functions: anything that reads the wall clock or
// schedules on it. time.Duration arithmetic and formatting stay legal.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true, "Sleep": true,
}

func runDeterminism(p *Pass) {
	if !p.Policy.Applies("determinism", p.Pkg.Path) {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf("determinism", imp.Pos(),
					"import of %s: derive randomness from an explicit internal/rng seed instead", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Pkg.Info.Uses[ident].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			if bannedTimeFuncs[sel.Sel.Name] {
				p.Reportf("determinism", sel.Pos(),
					"time.%s reads the wall clock; results must be a pure function of seeds and inputs", sel.Sel.Name)
			}
			return true
		})
	}
}
