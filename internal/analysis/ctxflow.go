package analysis

import (
	"go/ast"
	"strings"
)

// CtxflowAnalyzer enforces deadline discipline on the HTTP planes: every
// blocking network operation must be bounded by a context or a
// configured timeout. It is the analyzer that would have caught the
// serve plane's original timeout-less http.Server (fixed in the PR that
// introduced internal/httpx). Findings:
//
//   - an http.Server composite literal that leaves any connection
//     timeout unset (construct servers through httpx.NewServer);
//   - an http.Client composite literal without a Timeout field;
//   - the deadline-free package helpers http.Get/Head/Post/PostForm;
//   - http.NewRequest instead of http.NewRequestWithContext;
//   - context.Background()/context.TODO() inside a function that already
//     receives a ctx parameter (the caller's deadline is dropped);
//   - a bare blocking channel receive inside a function that receives a
//     ctx parameter (select on ctx.Done() instead).
var CtxflowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "require contexts or configured deadlines on blocking HTTP-plane operations",
	Run:  runCtxflow,
}

// serverTimeoutFields are the http.Server fields that bound connection
// I/O; a literal missing any of them ships an unbounded server.
var serverTimeoutFields = []string{"ReadHeaderTimeout", "ReadTimeout", "WriteTimeout", "IdleTimeout"}

func runCtxflow(p *Pass) {
	if !p.Policy.Applies("ctxflow", p.Pkg.Path) {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.ctxflowFunc(fd)
		}
	}
}

func (p *Pass) ctxflowFunc(fd *ast.FuncDecl) {
	ctx := p.ctxParam(fd)
	// Receives that are select comm clauses are cancellable by adding a
	// ctx.Done() case in place; only bare receives outside selects are
	// reported. Collect the comm positions first.
	inSelect := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cl := range sel.Body.List {
			if comm, ok := cl.(*ast.CommClause); ok && comm.Comm != nil {
				ast.Inspect(comm.Comm, func(c ast.Node) bool {
					if u, ok := c.(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
						inSelect[u] = true
					}
					return true
				})
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			p.checkHTTPLiteral(n)
		case *ast.CallExpr:
			p.checkCtxflowCall(n, ctx)
		case *ast.UnaryExpr:
			if n.Op.String() != "<-" || ctx == "" || inSelect[n] {
				return true
			}
			if p.isCtxDoneChan(n.X) {
				return true // <-ctx.Done() is the cancellation wait itself
			}
			p.Reportf("ctxflow", n.Pos(),
				"blocking receive ignores the function's ctx parameter; select on %s.Done() alongside it", ctx)
		}
		return true
	})
}

// isCtxDoneChan matches ctx.Done() for any context-typed receiver.
func (p *Pass) isCtxDoneChan(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	tv, ok := p.Pkg.Info.Types[sel.X]
	return ok && isContextType(tv.Type)
}

func (p *Pass) checkHTTPLiteral(lit *ast.CompositeLit) {
	tv, ok := p.Pkg.Info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	named := namedOrPtr(tv.Type)
	if named == nil {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "net/http" {
		return
	}
	set := map[string]bool{}
	for _, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok {
				set[key.Name] = true
			}
		}
	}
	switch obj.Name() {
	case "Server":
		var missing []string
		for _, field := range serverTimeoutFields {
			if !set[field] {
				missing = append(missing, field)
			}
		}
		if len(missing) > 0 {
			p.Reportf("ctxflow", lit.Pos(),
				"http.Server literal leaves %s unset; a stalled client pins its connection forever — construct servers via httpx.NewServer", strings.Join(missing, "/"))
		}
	case "Client":
		if !set["Timeout"] {
			p.Reportf("ctxflow", lit.Pos(),
				"http.Client literal without Timeout has no deadline; set Timeout or build requests with NewRequestWithContext")
		}
	case "Transport":
		// Transports carry their own dial/TLS deadlines, but the common
		// defect is the enclosing Client; nothing to check here.
	}
}

func (p *Pass) checkCtxflowCall(call *ast.CallExpr, ctx string) {
	fn := p.calleeFunc(call)
	if fn == nil {
		return
	}
	switch key := funcKey(fn); key {
	case "net/http.Get", "net/http.Head", "net/http.Post", "net/http.PostForm":
		p.Reportf("ctxflow", call.Pos(),
			"%s uses the deadline-free default client; use a client with Timeout and http.NewRequestWithContext", key)
	case "net/http.NewRequest":
		p.Reportf("ctxflow", call.Pos(),
			"http.NewRequest drops the caller's context; use http.NewRequestWithContext")
	case "context.Background", "context.TODO":
		if ctx != "" && ctx != "_" {
			p.Reportf("ctxflow", call.Pos(),
				"%s() inside a function that receives %s drops the caller's deadline; derive from %s instead", key[len("context."):], ctx, ctx)
		}
	}
}
