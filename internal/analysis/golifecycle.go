package analysis

import "go/ast"

// GoLifecycleAnalyzer requires every `go` statement in covered packages
// to have a provable join or cancel edge, so no goroutine outlives its
// owner:
//
//   - WaitGroup pairing: wg.Add(...) before the launch in the same
//     function, wg.Done() (usually deferred) inside the body — an Add
//     without a Done, or a Done without a prior Add, is its own finding;
//   - cancellation: the body waits on ctx.Done() (receive or select);
//   - done-channel: the body receives from (or ranges over) a channel;
//   - result join: the body sends on a channel the launching function
//     also receives from, or on a channel stored in a struct field
//     (the owner drains it — the serve/dist serveErr pattern).
//
// Launching a named function (`go fn(...)`) is accepted when a channel,
// context, or WaitGroup flows into the call — the lifecycle is handed to
// the callee — and reported otherwise.
var GoLifecycleAnalyzer = &Analyzer{
	Name: "goroutine-lifecycle",
	Doc:  "require every go statement to have a provable join or cancel edge",
	Run:  runGoLifecycle,
}

func runGoLifecycle(p *Pass) {
	if !p.Policy.Applies("goroutine-lifecycle", p.Pkg.Path) {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					p.checkGoStmt(fd, g)
				}
				return true
			})
		}
	}
}

func (p *Pass) checkGoStmt(fd *ast.FuncDecl, g *ast.GoStmt) {
	lit, isLit := g.Call.Fun.(*ast.FuncLit)
	if !isLit {
		// Named launch: accept when lifecycle state flows into the call
		// (channel/context/WaitGroup argument or receiver), otherwise the
		// callee has no way to be joined or canceled.
		if p.lifecycleFlowsIn(g.Call) || p.addBefore(fd, g, "") {
			return
		}
		p.Reportf("goroutine-lifecycle", g.Pos(),
			"go %s has no join or cancel edge (no channel/ctx/WaitGroup flows into the call); the goroutine can outlive its owner", p.exprString(g.Call.Fun))
		return
	}

	// WaitGroup pairing.
	doneRecv := p.wgDoneIn(lit.Body)
	if doneRecv != "" {
		if p.addBefore(fd, g, doneRecv) {
			return
		}
		p.Reportf("goroutine-lifecycle", g.Pos(),
			"goroutine calls %s.Done() but no %s.Add(...) precedes the launch in %s; Wait can return before this goroutine finishes", doneRecv, doneRecv, fd.Name.Name)
		return
	}

	// Cancellation or done-channel edge inside the body. Passing the
	// ctx into a call counts: the callee returns on cancellation, which
	// bounds the goroutine (the `go func() { ch <- w.Run(ctx) }()` shape).
	if p.waitsOnChannel(lit.Body) || p.ctxFlowsInto(lit.Body) {
		return
	}

	// Result-join edge: the body sends on a channel the launcher drains
	// or that an owner struct carries.
	if p.sendsJoined(fd, lit.Body) {
		return
	}

	p.Reportf("goroutine-lifecycle", g.Pos(),
		"goroutine has no provable join or cancel edge (WaitGroup Add/Done pairing, done-channel or ctx.Done() wait, or a drained result channel); it can outlive its owner")
}

// lifecycleFlowsIn reports whether a channel-, context-, or
// WaitGroup-typed value appears in the call's arguments or receiver.
func (p *Pass) lifecycleFlowsIn(call *ast.CallExpr) bool {
	exprs := append([]ast.Expr{}, call.Args...)
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		exprs = append(exprs, sel.X)
	}
	for _, e := range exprs {
		tv, ok := p.Pkg.Info.Types[e]
		if !ok || tv.Type == nil {
			continue
		}
		if p.isChanType(e) || isContextType(tv.Type) {
			return true
		}
		if named := namedOrPtr(tv.Type); named != nil {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup" {
				return true
			}
		}
	}
	return false
}

// wgDoneIn returns the printed receiver of a WaitGroup Done() call in
// body ("" if none), e.g. "wg" or "s.wg".
func (p *Pass) wgDoneIn(body *ast.BlockStmt) string {
	recv := ""
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if funcKey(p.calleeFunc(call)) == "sync.WaitGroup.Done" {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				recv = p.exprString(sel.X)
				return false
			}
		}
		return true
	})
	return recv
}

// addBefore reports whether an Add(...) call on a WaitGroup precedes g
// in fd's body. When recv is non-empty the printed receivers must match
// (wg.Add pairs with wg.Done, not someone else's).
func (p *Pass) addBefore(fd *ast.FuncDecl, g *ast.GoStmt, recv string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= g.Pos() {
			return true
		}
		if funcKey(p.calleeFunc(call)) != "sync.WaitGroup.Add" {
			return true
		}
		if recv != "" {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); !ok || p.exprString(sel.X) != recv {
				return true
			}
		}
		found = true
		return false
	})
	return found
}

// ctxFlowsInto reports whether a context-typed value is passed to any
// call inside body, bounding the goroutine by the context's lifetime.
func (p *Pass) ctxFlowsInto(body *ast.BlockStmt) bool {
	flows := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			tv, ok := p.Pkg.Info.Types[arg]
			if ok && tv.Type != nil && isContextType(tv.Type) {
				flows = true
				return false
			}
		}
		return true
	})
	return flows
}

// waitsOnChannel reports whether body blocks on a channel: a bare
// receive, a select with a comm case, or a range over a channel. Any of
// them is a cancel/done edge — closing the channel (or canceling the
// ctx whose Done() it is) releases the goroutine.
func (p *Pass) waitsOnChannel(body *ast.BlockStmt) bool {
	waits := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				waits = true
				return false
			}
		case *ast.RangeStmt:
			if p.isChanType(n.X) {
				waits = true
				return false
			}
		case *ast.SelectStmt:
			for _, cl := range n.Body.List {
				if comm, ok := cl.(*ast.CommClause); ok && comm.Comm != nil {
					waits = true
					return false
				}
			}
		}
		return true
	})
	return waits
}

// sendsJoined reports whether body sends on a channel that is either a
// struct field (the owner is responsible for draining it) or received
// from somewhere in the launching function.
func (p *Pass) sendsJoined(fd *ast.FuncDecl, body *ast.BlockStmt) bool {
	joined := false
	ast.Inspect(body, func(n ast.Node) bool {
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		if _, isField := ast.Unparen(send.Chan).(*ast.SelectorExpr); isField {
			joined = true
			return false
		}
		chanKey := p.exprString(send.Chan)
		ast.Inspect(fd.Body, func(m ast.Node) bool {
			if u, ok := m.(*ast.UnaryExpr); ok && u.Op.String() == "<-" && p.exprString(u.X) == chanKey {
				joined = true
				return false
			}
			return true
		})
		return !joined
	})
	return joined
}
