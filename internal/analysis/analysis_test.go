package analysis

import (
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// sharedLoader is reused across fixture tests so the standard library is
// type-checked from source only once per test binary.
var (
	loaderOnce sync.Once
	testLoader *Loader
	loaderErr  error
)

func fixturePackage(t *testing.T, name string) *Package {
	t.Helper()
	loaderOnce.Do(func() { testLoader, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	pkgs, err := testLoader.Load(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: got %d packages, want 1", name, len(pkgs))
	}
	return pkgs[0]
}

// expectation is one `// want "substr"` comment: a diagnostic whose
// "[rule] message" rendering contains substr must appear at file:line.
type expectation struct {
	file    string
	line    int
	substr  string
	matched bool
}

// parseWants extracts `// want[+N] "substr" ...` comments from a fixture.
// The optional +N offset anchors the expectation N lines below the
// comment, for diagnostics that land on waiver-comment lines.
func parseWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want") {
					continue
				}
				rest := strings.TrimPrefix(text, "want")
				offset := 0
				if strings.HasPrefix(rest, "+") {
					n := 1
					for n < len(rest) && rest[n] >= '0' && rest[n] <= '9' {
						n++
					}
					v, err := strconv.Atoi(rest[1:n])
					if err != nil {
						t.Fatalf("%s: bad want offset in %q", pkg.Fset.Position(c.Pos()), c.Text)
					}
					offset, rest = v, rest[n:]
				}
				rest = strings.TrimSpace(rest)
				pos := pkg.Fset.Position(c.Pos())
				for rest != "" {
					quoted, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s: bad want string in %q: %v", pos, c.Text, err)
					}
					substr, err := strconv.Unquote(quoted)
					if err != nil {
						t.Fatalf("%s: bad want string %q: %v", pos, quoted, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line + offset, substr: substr})
					rest = strings.TrimSpace(rest[len(quoted):])
				}
			}
		}
	}
	return wants
}

// checkFixture runs the full suite over the fixture and asserts its
// diagnostics match the `// want` comments exactly: every diagnostic
// needs a want, every want needs a diagnostic.
func checkFixture(t *testing.T, name string, policy *Policy) {
	t.Helper()
	pkg := fixturePackage(t, name)
	wants := parseWants(t, pkg)
	diags := Run(pkg, Analyzers(), policy)
	for _, d := range diags {
		rendered := fmt.Sprintf("[%s] %s", d.Rule, d.Message)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && strings.Contains(rendered, w.substr) {
				w.matched, found = true, true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic containing %q, got none", w.file, w.line, w.substr)
		}
	}
}

func TestDeterminismFixture(t *testing.T) { checkFixture(t, "determinism", NewPolicy()) }
func TestSchedFixture(t *testing.T)       { checkFixture(t, "sched", NewPolicy()) }
func TestMapRangeFixture(t *testing.T)    { checkFixture(t, "maprange", NewPolicy()) }
func TestHotPathFixture(t *testing.T)     { checkFixture(t, "hotpath", NewPolicy()) }
func TestWaiverFixture(t *testing.T)      { checkFixture(t, "waiver", NewPolicy()) }

func TestCtxflowFixture(t *testing.T)         { checkFixture(t, "ctxflow", NewPolicy()) }
func TestLockholdFixture(t *testing.T)        { checkFixture(t, "lockhold", NewPolicy()) }
func TestGoLifecycleFixture(t *testing.T)     { checkFixture(t, "golifecycle", NewPolicy()) }
func TestPoolDisciplineFixture(t *testing.T)  { checkFixture(t, "pooldiscipline", NewPolicy()) }
func TestErrcheckResultsFixture(t *testing.T) { checkFixture(t, "errcheckresults", NewPolicy()) }

func TestFloatEqFixture(t *testing.T) {
	p := NewPolicy()
	p.AllowFunc("floateq", testLoaderModulePath(t)+"/internal/analysis/testdata/src/floateq.approxEqual")
	checkFixture(t, "floateq", p)
}

func testLoaderModulePath(t *testing.T) string {
	t.Helper()
	loaderOnce.Do(func() { testLoader, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return testLoader.ModulePath
}

// TestPolicyRestrictsRules pins the allow/only scoping semantics that
// lint.conf relies on: "only" restricts maprange to result packages,
// "allow" carves out the determinism allowlist, and patterns support
// subtree (/...) and path.Match forms.
func TestPolicyRestrictsRules(t *testing.T) {
	p := NewPolicy()
	p.Only("maprange", "nnwc/internal/core")
	p.Only("maprange", "nnwc/internal/stats")
	p.Allow("determinism", "nnwc/internal/obs/...")
	p.Allow("determinism", "nnwc/cmd/*")
	cases := []struct {
		rule, pkg string
		want      bool
	}{
		{"maprange", "nnwc/internal/core", true},
		{"maprange", "nnwc/internal/stats", true},
		{"maprange", "nnwc/internal/nn", false},
		{"determinism", "nnwc/internal/obs", false},
		{"determinism", "nnwc/internal/obs/metrics", false},
		{"determinism", "nnwc/cmd/nnwc", false},
		{"determinism", "nnwc/internal/train", true},
		{"sched", "nnwc/internal/train", true}, // unconfigured rules apply everywhere
	}
	for _, c := range cases {
		if got := p.Applies(c.rule, c.pkg); got != c.want {
			t.Errorf("Applies(%q, %q) = %v, want %v", c.rule, c.pkg, got, c.want)
		}
	}
	p.AllowFunc("floateq", "nnwc/internal/stats.ApproxEqual")
	if !p.FuncAllowed("floateq", "nnwc/internal/stats", "ApproxEqual") {
		t.Error("FuncAllowed must accept an allowfunc-listed function")
	}
	if p.FuncAllowed("floateq", "nnwc/internal/stats", "Mean") {
		t.Error("FuncAllowed must reject unlisted functions")
	}
}

func TestParseConf(t *testing.T) {
	p, err := ParseConf(`
# comment
determinism allow nnwc/internal/rng
maprange only nnwc/internal/core   # trailing comment
floateq allowfunc nnwc/internal/stats.ExactZero
`)
	if err != nil {
		t.Fatalf("ParseConf: %v", err)
	}
	if p.Applies("determinism", "nnwc/internal/rng") {
		t.Error("allow directive not honoured")
	}
	if p.Applies("maprange", "nnwc/internal/train") {
		t.Error("only directive not honoured")
	}
	if !p.FuncAllowed("floateq", "nnwc/internal/stats", "ExactZero") {
		t.Error("allowfunc directive not honoured")
	}
	for _, bad := range []string{
		"nosuchrule allow x",       // unknown rule
		"determinism frobnicate x", // unknown directive
		"determinism allow",        // wrong arity
	} {
		if _, err := ParseConf(bad); err == nil {
			t.Errorf("ParseConf(%q) succeeded, want error", bad)
		}
	}
}

// TestParseWaiver pins the waiver grammar: accepted, missing-separator,
// unknown-rule, empty-justification, and the //lint:ordered shorthand.
func TestParseWaiver(t *testing.T) {
	cases := []struct {
		text       string
		wantRule   string // "" means rejected or not a waiver
		wantReason string // substring of the malformed-ness reason, "" if accepted or ignored
	}{
		{"//lint:waive sched -- benchmark client", "sched", ""},
		{"//lint:waive floateq -- sentinel", "floateq", ""},
		{"//lint:ordered -- count only", "maprange", ""},
		{"//lint:waive sched", "", "missing ` -- justification`"},
		{"//lint:waive sched --", "", "missing ` -- justification`"},
		{"//lint:waive sched -- ", "", "empty justification"},
		{"//lint:waive nosuchrule -- because", "", `unknown rule "nosuchrule"`},
		{"//lint:waive  -- because", "", "missing rule name"},
		{"//lint:ordered", "", "missing ` -- justification`"},
		{"//lint:ordered -- ", "", "empty justification"},
		{"// an ordinary comment", "", ""},
		{"//lint:file-ignore something else", "", ""}, // unrelated lint directive
	}
	for _, c := range cases {
		w, reason := parseWaiver(c.text)
		switch {
		case c.wantRule != "":
			if w == nil || w.rule != c.wantRule {
				t.Errorf("parseWaiver(%q) = %v, %q; want rule %q", c.text, w, reason, c.wantRule)
			}
		case c.wantReason != "":
			if w != nil || !strings.Contains(reason, c.wantReason) {
				t.Errorf("parseWaiver(%q) = %v, %q; want reason containing %q", c.text, w, reason, c.wantReason)
			}
		default:
			if w != nil || reason != "" {
				t.Errorf("parseWaiver(%q) = %v, %q; want ignored", c.text, w, reason)
			}
		}
	}
}

// TestRepoIsClean runs the suite over the whole module under the
// checked-in lint.conf: the tip must stay finding-free so `make lint`
// can gate CI.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module analysis is slow; skipped in -short")
	}
	loaderOnce.Do(func() { testLoader, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	conf, err := ReadConfFile(filepath.Join(testLoader.RootDir, "lint.conf"))
	if err != nil {
		t.Fatalf("lint.conf: %v", err)
	}
	pkgs, err := testLoader.Load("./...")
	if err != nil {
		t.Fatalf("Load ./...: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("Load ./... matched no packages")
	}
	for _, pkg := range pkgs {
		for _, d := range Run(pkg, Analyzers(), conf) {
			t.Errorf("repo tip has finding: %s", d)
		}
	}
}
