// Package floateq is a lint fixture for the float-equality rule.
package floateq

func eq(a, b float64) bool {
	return a == b // want "== on floating-point operands"
}

func neqZero(a float64) bool {
	return a != 0 // want "!= on floating-point operands"
}

func narrow(a float32, b float64) bool {
	return float64(a) == b // want "== on floating-point operands"
}

// legal: integer equality is exact.
func ints(a, b int) bool { return a == b }

// approxEqual is exempted through the test policy's allowfunc directive,
// mirroring how lint.conf allowlists the stats helpers.
func approxEqual(a, b float64) bool { return a == b }

func waived(x float64) bool {
	//lint:waive floateq -- fixture: sentinel comparison with documented intent
	return x == 0
}

var (
	_ = eq
	_ = neqZero
	_ = narrow
	_ = ints
	_ = approxEqual
	_ = waived
)
