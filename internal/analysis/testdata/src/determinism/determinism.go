// Package determinism is a lint fixture: every diagnostic the
// determinism analyzer must produce is pinned by a `// want` comment.
package determinism

import (
	"math/rand" // want "import of math/rand"
	"time"
)

func clock() time.Duration {
	start := time.Now()          // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond) // want "time.Sleep"
	return time.Since(start)     // want "time.Since"
}

func roll() int { return rand.Intn(6) }

// legal: duration arithmetic and formatting never read the clock.
func format(d time.Duration) string { return d.String() }

var _ = clock
var _ = roll
var _ = format
