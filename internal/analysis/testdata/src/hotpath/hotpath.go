// Package hotpath is a lint fixture for the //nnwc:hotpath allocation
// rules.
package hotpath

import "fmt"

type vec struct{ data []float64 }

type empty struct{}

func (empty) use() {}

type sink interface{ use() }

// kernel trips every banned construct once.
//
//nnwc:hotpath
func kernel(dst, src []float64, s sink) string {
	buf := make([]float64, 4)    // want "make in hot path"
	dst = append(dst, src...)    // want "append in hot path"
	p := new(vec)                // want "new in hot path"
	fmt.Println(len(buf), p)     // want "fmt call in hot path"
	f := func() { p.data = dst } // want "closure in hot path"
	f()
	v := vec{data: dst} // want "composite literal in hot path"
	s = sink(empty{})   // want "conversion to interface"
	s.use()
	dst = v.data
	return "x" + "y" // want "string concatenation in hot path"
}

// guarded shows the cold-path exemptions: panics may format freely, and
// zero-field struct literals are zero-sized.
//
//nnwc:hotpath
func guarded(n int, s sink) {
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n)) // legal: panic path is cold
	}
	e := empty{} // legal: zero-sized literal
	e.use()
	_ = s
}

// cold is untagged: the rule does not apply.
func cold(xs []int) []int { return append(xs, 1) }

var (
	_ = kernel
	_ = guarded
	_ = cold
)
