// Package sched is a lint fixture for scheduler confinement.
package sched

func spawn(ch chan int) {
	go work(ch) // want "raw goroutine"

	go func() { // want "raw goroutine" "no provable join or cancel edge"
		work(ch)
	}()

	//lint:waive sched -- fixture: justified goroutine stays silent
	go work(ch)
}

func work(ch chan int) { ch <- 1 }

var _ = spawn
