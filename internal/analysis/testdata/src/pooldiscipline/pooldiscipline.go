// Package pooldiscipline is a lint fixture for sync.Pool Get/Put
// pairing and use-after-Put detection.
package pooldiscipline

import (
	"bytes"
	"sync"
)

var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Get with a deferred Put covers every exit path. Clean.
func balanced() string {
	b := bufPool.Get().(*bytes.Buffer)
	defer bufPool.Put(b)
	b.Reset()
	b.WriteString("ok")
	return b.String()
}

// One branch Puts, the other exits with the value live.
func leakOnBranch(cond bool) {
	b := bufPool.Get().(*bytes.Buffer) // want "can reach function exit without Put"
	b.Reset()
	if cond {
		bufPool.Put(b)
	}
}

// The pool may have handed b to another goroutine the moment Put ran.
func useAfterPut() int {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	bufPool.Put(b)
	return b.Len() // want "used after Put"
}

// A second Put hands the pool a duplicate entry.
func doublePut() {
	b := bufPool.Get().(*bytes.Buffer)
	bufPool.Put(b)
	bufPool.Put(b) // want "a second Put hands the pool a duplicate"
}

// Returning the value moves the Put obligation to the caller. Clean —
// this is the acquire-helper pattern.
func acquire() *bytes.Buffer {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

// wsPool is the typed-wrapper shape (sched.Pool[T]): a struct embedding
// sync.Pool gets the same discipline as the raw type.
type ws struct{ buf []float64 }

type wsPool struct{ p sync.Pool }

func (w *wsPool) Get() *ws  { v, _ := w.p.Get().(*ws); return v }
func (w *wsPool) Put(v *ws) { w.p.Put(v) }

func wrapperLeak(p *wsPool, cond bool) {
	v := p.Get() // want "can reach function exit without Put"
	if cond {
		p.Put(v)
	}
}

func wrapperBalanced(p *wsPool) {
	v := p.Get()
	defer p.Put(v)
	v.buf = v.buf[:0]
}

var (
	_ = balanced
	_ = leakOnBranch
	_ = useAfterPut
	_ = doublePut
	_ = acquire
	_ = wrapperLeak
	_ = wrapperBalanced
)
