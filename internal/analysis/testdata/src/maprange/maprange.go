// Package maprange is a lint fixture for map-iteration ordering.
package maprange

import "sort"

func flagged(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want "iteration over map"
		total += v // order-sensitive FP reduction: the exact defect the rule exists for
	}
	return total
}

// legal: per-key writes into another map commute across iteration orders.
func invert(m map[string]int) map[int]string {
	out := map[int]string{}
	for k, v := range m {
		if v >= 0 {
			out[v] = k
		}
	}
	return out
}

// legal: ranging only to delete is order-insensitive.
func clear(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// legal: keys are collected and re-canonicalized by the later sort.
func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func waived(m map[string]int) int {
	n := 0
	//lint:ordered -- fixture: count is order-independent even though the body is opaque to the analyzer
	for range m {
		n = bump(n)
	}
	return n
}

func bump(n int) int { return n + 1 }

func detached() {
	// want+1 "waives nothing"
	//lint:ordered -- fixture: attached to no map range at all
}

var (
	_ = flagged
	_ = invert
	_ = clear
	_ = sortedKeys
	_ = waived
	_ = detached
)
