// Package lockhold is a lint fixture for blocking-under-mutex and
// lock-managed-field discipline.
package lockhold

import (
	"os"
	"sync"
)

type server struct {
	mu    sync.Mutex
	conn  *os.File // stand-in for the coordinator's http.Server field
	errs  chan error
	state int
}

// Blocking while the deferred Unlock keeps the lock held to exit.
func (s *server) deferHold(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state++
	<-ch // want "blocking operation (channel receive) while holding s.mu"
}

// Releasing before blocking is the fix shape: clean.
func (s *server) releaseFirst(ch chan int) {
	s.mu.Lock()
	s.state++
	s.mu.Unlock()
	<-ch
}

// A select with a default clause is a poll, not a block: clean.
func (s *server) poll(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-ch:
		s.state = v
	default:
	}
}

// Transitive blocking: persist does file I/O, so calling it under the
// lock is as bad as inlining the write.
func (s *server) persistLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	persist() // want "call to persist, which blocks"
}

func persist() {
	f, err := os.Create("state")
	if err != nil {
		return
	}
	_, _ = f.Write([]byte("x"))
	_ = f.Close()
}

// The coordinator Start/close race shape (fixed two PRs ago): closeConn
// reassigns s.conn under s.mu, so the serve goroutine's unlocked read
// races with the nil'ing — exactly the -race failure the fleet hit.
func (s *server) start() {
	go func() { // want "raw goroutine"
		s.errs <- use(s.conn) // want "goroutine reads s.conn, which closeConn"
	}()
}

func (s *server) closeConn() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conn = nil
}

// The fix shape: capture the value before the go statement.
func (s *server) startFixed() {
	conn := s.conn
	go func() { // want "raw goroutine"
		s.errs <- use(conn)
	}()
}

func use(f *os.File) error {
	_ = f
	return nil
}

var (
	_ = (*server).deferHold
	_ = (*server).releaseFirst
	_ = (*server).poll
	_ = (*server).persistLocked
	_ = (*server).start
	_ = (*server).closeConn
	_ = (*server).startFixed
)
