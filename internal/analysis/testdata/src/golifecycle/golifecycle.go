// Package golifecycle is a lint fixture for goroutine join/cancel
// discipline. Every `go` statement also draws the sched rule's
// raw-goroutine finding under the empty fixture policy — the two rules
// are deliberately complementary (sched: who may spawn; lifecycle: each
// spawn must be joinable).
package golifecycle

import (
	"context"
	"sync"
)

var counter int

// No join or cancel edge at all: the goroutine can outlive its owner.
func fireAndForget() {
	go func() { // want "raw goroutine" "no provable join or cancel edge"
		counter++
	}()
}

// WaitGroup pairing: Add before the launch, Done inside. Clean.
func joined(n int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "raw goroutine"
		defer wg.Done()
		counter += n
	}()
	wg.Wait()
}

// Done without a preceding Add: Wait can return before the goroutine.
func doneWithoutAdd() {
	var wg sync.WaitGroup
	go func() { // want "raw goroutine" "no wg.Add(...) precedes the launch"
		defer wg.Done()
		counter++
	}()
	wg.Wait()
}

// Done-channel edge: closing done releases the goroutine. Clean.
func cancelable(done chan struct{}) {
	go func() { // want "raw goroutine"
		<-done
		counter++
	}()
}

// The ctx flows into the body's call, bounding the goroutine by the
// caller's cancellation. Clean.
func ctxBounded(ctx context.Context) {
	go func() { // want "raw goroutine"
		runUntil(ctx)
	}()
}

func runUntil(ctx context.Context) { <-ctx.Done() }

// Result-join: the launcher drains the channel the goroutine sends on.
func resultJoin() int {
	ch := make(chan int)
	go func() { // want "raw goroutine"
		ch <- 1
	}()
	return <-ch
}

// Named launch with no lifecycle state flowing in.
func namedUnjoined() {
	go leak() // want "raw goroutine" "go leak has no join or cancel edge"
}

func leak() { counter++ }

// Named launch handed a channel: the callee owns the join edge. Clean.
func namedJoined(ch chan int) {
	go produce(ch) // want "raw goroutine"
}

func produce(ch chan int) { ch <- 1 }

var (
	_ = fireAndForget
	_ = joined
	_ = doneWithoutAdd
	_ = cancelable
	_ = ctxBounded
	_ = resultJoin
	_ = namedUnjoined
	_ = namedJoined
)
