// Package errcheckresults is a lint fixture for silently discarded
// errors on result and wire paths.
package errcheckresults

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
)

// A bare Close after writing: the artifact only looks committed.
func persist(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close() // explicit discard: the write error is the one returned
		return err
	}
	f.Close() // want "Close returns an error that is silently discarded"
	return nil
}

// A deferred Close on a written file drops the flush error too.
func persistDeferred(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want "Close returns an error that is silently discarded"
	_, err = f.Write([]byte("x"))
	return err
}

// The wire path: a failed Encode leaves the peer a truncated reply.
func reply(w http.ResponseWriter, v any) {
	json.NewEncoder(w).Encode(v) // want "Encode returns an error that is silently discarded"
}

// Closing a file opened for reading cannot lose data: exempt.
func readSide(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// An http.Response body is an io.ReadCloser — read-side close: exempt.
func drain(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// bytes.Buffer writes are documented to never fail: exempt.
func render() string {
	var b bytes.Buffer
	b.WriteString("ok")
	b.Write([]byte("!"))
	return b.String()
}

var (
	_ = persist
	_ = persistDeferred
	_ = reply
	_ = readSide
	_ = drain
	_ = render
)
