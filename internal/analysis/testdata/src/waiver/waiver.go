// Package waiver is a lint fixture for the waiver-comment parser:
// malformed waivers are findings themselves and suppress nothing.
package waiver

func f(ch chan int) {
	// want+1 "malformed waiver comment"
	//lint:waive sched
	go run(ch) // want "raw goroutine"

	// want+1 "unknown rule"
	//lint:waive nosuchrule -- the rule name is checked so typos cannot disable enforcement
	go run(ch) // want "raw goroutine"

	// want+1 "waives nothing"
	//lint:waive floateq -- valid but detached: there is no floateq finding here to suppress
	go run(ch) // want "raw goroutine"
}

func run(ch chan int) { ch <- 1 }

var _ = f
