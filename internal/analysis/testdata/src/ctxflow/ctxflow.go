// Package ctxflow is a lint fixture for deadline discipline on blocking
// HTTP-plane operations.
package ctxflow

import (
	"context"
	"net/http"
	"time"
)

// legacyServer is the exact shape the serve plane shipped before the
// httpx package existed: ReadHeaderTimeout alone leaves the read, write,
// and idle timeouts unbounded, so one stalled client pins its connection
// forever. The ctxflow rule exists to keep this shape from returning.
func legacyServer(h http.Handler) *http.Server {
	return &http.Server{ // want "http.Server literal leaves ReadTimeout/WriteTimeout/IdleTimeout unset"
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
	}
}

func boundedServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      time.Minute,
		IdleTimeout:       time.Minute,
	}
}

func naiveClient() *http.Client {
	return &http.Client{} // want "http.Client literal without Timeout"
}

func boundedClient() *http.Client {
	return &http.Client{Timeout: 10 * time.Second}
}

func fetch(url string) error {
	resp, err := http.Get(url) // want "net/http.Get uses the deadline-free default client"
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

func request(url string) (*http.Request, error) {
	return http.NewRequest(http.MethodGet, url, nil) // want "http.NewRequest drops the caller's context"
}

func requestCtx(ctx context.Context, url string) (*http.Request, error) {
	return http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
}

func dropsDeadline(ctx context.Context) context.Context {
	return context.Background() // want "drops the caller's deadline"
}

func bareReceive(ctx context.Context, ch chan int) int {
	return <-ch // want "blocking receive ignores the function's ctx parameter"
}

func selectReceive(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

var (
	_ = legacyServer
	_ = boundedServer
	_ = naiveClient
	_ = boundedClient
	_ = fetch
	_ = request
	_ = requestCtx
	_ = dropsDeadline
	_ = bareReceive
	_ = selectReceive
)
