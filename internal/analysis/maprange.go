package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapRangeAnalyzer forbids ranging over a map in result-producing
// packages: Go randomizes map iteration order per run, so any map-range
// whose body accumulates into order-sensitive state (FP reductions,
// printed rows, appended slices) produces run-to-run diffs that the 1e-9
// seed-reference pin only catches after the fact. Two shapes are allowed
// without a waiver because they are provably order-insensitive:
//
//  1. the body only writes through map/set index expressions (or calls
//     delete), optionally under `if` guards — per-key writes commute
//     because map iteration visits each key exactly once;
//  2. the body only collects keys/values into a slice that a later
//     statement in the same block passes to sort.* or slices.Sort* —
//     the sort re-establishes a canonical order.
//
// Anything else needs an attached `//lint:ordered -- <why>` waiver, whose
// attachment and justification the suite verifies (a detached or stale
// waiver is itself a finding).
var MapRangeAnalyzer = &Analyzer{
	Name: "maprange",
	Doc:  "forbid order-sensitive iteration over maps in result-producing packages",
	Run:  runMapRange,
}

func runMapRange(p *Pass) {
	if !p.Policy.Applies("maprange", p.Pkg.Path) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			list := stmtList(n)
			if list == nil {
				return true
			}
			for i, stmt := range list {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok || !p.isMapType(rs.X) {
					continue
				}
				if bodyOnlyWritesMaps(p, rs.Body.List) {
					continue
				}
				if collected := collectTarget(p, rs.Body.List); collected != nil && sortedLater(p, list[i+1:], collected) {
					continue
				}
				p.Reportf("maprange", rs.Pos(),
					"iteration over map is order-nondeterministic; sort the keys, write only through map indices, or attach //lint:ordered -- <why>")
			}
			return true
		})
	}
}

func stmtList(n ast.Node) []ast.Stmt {
	switch s := n.(type) {
	case *ast.BlockStmt:
		return s.List
	case *ast.CaseClause:
		return s.Body
	case *ast.CommClause:
		return s.Body
	}
	return nil
}

func (p *Pass) isMapType(expr ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// bodyOnlyWritesMaps reports whether every statement is a write through a
// map index expression, a delete call, or an if-guarded block of the
// same. This is the "per-key writes commute" allowance; it deliberately
// does not try to prove the right-hand sides are themselves
// order-independent (a RHS reading another accumulator would slip
// through — the rule is a tripwire, not a verifier).
func bodyOnlyWritesMaps(p *Pass, stmts []ast.Stmt) bool {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if !p.isMapWrite(lhs) {
					return false
				}
			}
		case *ast.IncDecStmt:
			if !p.isMapWrite(s.X) {
				return false
			}
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok || !isBuiltin(p, call.Fun, "delete") {
				return false
			}
		case *ast.IfStmt:
			if s.Init != nil || !bodyOnlyWritesMaps(p, s.Body.List) {
				return false
			}
			switch e := s.Else.(type) {
			case nil:
			case *ast.BlockStmt:
				if !bodyOnlyWritesMaps(p, e.List) {
					return false
				}
			default:
				return false
			}
		case *ast.BranchStmt:
			if s.Tok != token.CONTINUE {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (p *Pass) isMapWrite(lhs ast.Expr) bool {
	if ident, ok := lhs.(*ast.Ident); ok && ident.Name == "_" {
		return true
	}
	idx, ok := lhs.(*ast.IndexExpr)
	return ok && p.isMapType(idx.X)
}

func isBuiltin(p *Pass, fun ast.Expr, name string) bool {
	ident, ok := fun.(*ast.Ident)
	if !ok || ident.Name != name {
		return false
	}
	_, isBuiltin := p.Pkg.Info.Uses[ident].(*types.Builtin)
	return isBuiltin
}

// collectTarget returns the slice variable the body appends into, if the
// body consists solely of `v = append(v, ...)` statements (optionally
// if-guarded); otherwise nil.
func collectTarget(p *Pass, stmts []ast.Stmt) *ast.Ident {
	var target *ast.Ident
	var walk func([]ast.Stmt) bool
	walk = func(list []ast.Stmt) bool {
		for _, stmt := range list {
			switch s := stmt.(type) {
			case *ast.AssignStmt:
				ident := appendTarget(p, s)
				if ident == nil {
					return false
				}
				if target != nil && p.Pkg.Info.Uses[ident] != p.Pkg.Info.Uses[target] {
					return false
				}
				if target == nil {
					target = ident
				}
			case *ast.IfStmt:
				if s.Init != nil || s.Else != nil || !walk(s.Body.List) {
					return false
				}
			case *ast.BranchStmt:
				if s.Tok != token.CONTINUE {
					return false
				}
			default:
				return false
			}
		}
		return true
	}
	if !walk(stmts) || target == nil {
		return nil
	}
	return target
}

// appendTarget matches `v = append(v, ...)` and returns v.
func appendTarget(p *Pass, s *ast.AssignStmt) *ast.Ident {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return nil
	}
	lhs, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltin(p, call.Fun, "append") || len(call.Args) < 2 {
		return nil
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok || first.Name != lhs.Name {
		return nil
	}
	return lhs
}

// sortedLater reports whether any following statement in the same block
// passes the collected slice to sort.* or slices.Sort*.
func sortedLater(p *Pass, rest []ast.Stmt, collected *ast.Ident) bool {
	obj := p.Pkg.Info.Uses[collected]
	if obj == nil {
		obj = p.Pkg.Info.Defs[collected]
	}
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgIdent, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Pkg.Info.Uses[pkgIdent].(*types.PkgName)
			if !ok {
				return true
			}
			imported := pn.Imported().Path()
			if imported != "sort" && imported != "slices" {
				return true
			}
			if arg, ok := call.Args[0].(*ast.Ident); ok && p.Pkg.Info.Uses[arg] == obj {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
