package analysis

import "go/ast"

// SchedAnalyzer enforces scheduler confinement: `go` statements are
// forbidden outside the packages that own concurrency (internal/sched —
// the deterministic worker pool; internal/serve — the HTTP plane;
// internal/obs — the debug server). Experiment-plane parallelism must
// flow through sched.Map/ForEach, whose atomic-counter work stealing and
// order-replayed FP reductions keep results bit-identical at any worker
// count; a raw goroutine in a result path reintroduces scheduling
// nondeterminism that the workers=1/2/8 parity tests would only catch as
// a flaky diff.
var SchedAnalyzer = &Analyzer{
	Name: "sched",
	Doc:  "forbid `go` statements outside the packages that own concurrency",
	Run:  runSched,
}

func runSched(p *Pass) {
	if !p.Policy.Applies("sched", p.Pkg.Path) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				p.Reportf("sched", g.Pos(),
					"raw goroutine outside the scheduler packages; route parallelism through internal/sched")
			}
			return true
		})
	}
}
