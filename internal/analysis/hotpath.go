package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotPathTag marks a function as part of the zero-allocation compute
// spine. The tag goes in the function's doc comment:
//
//	// MulInto computes dst = a·b without allocating.
//	//nnwc:hotpath
//	func MulInto(dst, a, b *Matrix) *Matrix { ... }
//
// Tagged functions are the same set TestBatchEpochZeroAlloc pins at
// runtime (the batched forward/backprop/loss kernels and the in-place
// mat primitives they ride on); the analyzer rejects the constructs that
// would make them allocate before the test can flake.
const HotPathTag = "//nnwc:hotpath"

// HotPathAnalyzer enforces allocation discipline inside functions tagged
// //nnwc:hotpath: no make/new, no append (growth allocates), no
// composite literals (escape analysis may heap them), no string
// concatenation, no closures, no fmt.* calls, and no conversions to
// interface types (boxing allocates). Expressions that only feed a
// panic(...) call are exempt — panics are cold paths and the formatted
// message is worth the readability.
var HotPathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid allocating constructs in //nnwc:hotpath-tagged functions",
	Run:  runHotPath,
}

func runHotPath(p *Pass) {
	if !p.Policy.Applies("hotpath", p.Pkg.Path) {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasHotPathTag(fd) {
				continue
			}
			checkHotPathBody(p, fd)
		}
	}
}

func hasHotPathTag(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == HotPathTag {
			return true
		}
	}
	return false
}

func checkHotPathBody(p *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	var visit func(n ast.Node, inPanic bool)
	visit = func(n ast.Node, inPanic bool) {
		if n == nil {
			return
		}
		switch e := n.(type) {
		case *ast.CallExpr:
			childPanic := inPanic || isBuiltin(p, e.Fun, "panic")
			switch {
			case isBuiltin(p, e.Fun, "make"):
				p.Reportf("hotpath", e.Pos(), "make in hot path %s allocates", name)
			case isBuiltin(p, e.Fun, "new"):
				p.Reportf("hotpath", e.Pos(), "new in hot path %s allocates", name)
			case isBuiltin(p, e.Fun, "append"):
				p.Reportf("hotpath", e.Pos(), "append in hot path %s can grow and allocate; size buffers up front", name)
			case !inPanic && isFmtCall(p, e.Fun):
				p.Reportf("hotpath", e.Pos(), "fmt call in hot path %s allocates (boxing + formatting)", name)
			case p.isInterfaceConversion(e):
				p.Reportf("hotpath", e.Pos(), "conversion to interface in hot path %s boxes its operand", name)
			}
			for _, child := range e.Args {
				visit(child, childPanic)
			}
			visit(e.Fun, inPanic)
			return
		case *ast.CompositeLit:
			if !inPanic && !p.isEmptyStructLit(e) {
				p.Reportf("hotpath", e.Pos(), "composite literal in hot path %s may escape and allocate", name)
			}
		case *ast.FuncLit:
			if !inPanic {
				p.Reportf("hotpath", e.Pos(), "closure in hot path %s allocates its environment", name)
			}
		case *ast.BinaryExpr:
			if !inPanic && e.Op.String() == "+" && p.isStringType(e.X) {
				p.Reportf("hotpath", e.Pos(), "string concatenation in hot path %s allocates", name)
			}
		}
		for _, child := range children(n) {
			visit(child, inPanic)
		}
	}
	visit(fd.Body, false)
}

// children returns the direct AST children of n, via a one-level Inspect.
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}

func isFmtCall(p *Pass, fun ast.Expr) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Pkg.Info.Uses[ident].(*types.PkgName)
	return ok && pn.Imported().Path() == "fmt"
}

// isInterfaceConversion matches explicit conversions T(x) where T is an
// interface type and x is not.
func (p *Pass) isInterfaceConversion(call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	tv, ok := p.Pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false
	}
	if !types.IsInterface(tv.Type) {
		return false
	}
	argTV, ok := p.Pkg.Info.Types[call.Args[0]]
	return ok && argTV.Type != nil && !types.IsInterface(argTV.Type)
}

// isEmptyStructLit matches T{} where T is a zero-field struct: the value
// is zero-sized, so it cannot allocate no matter where it escapes. This
// keeps the devirtualization idiom `Tanh{}.Eval(v)` legal in kernels.
func (p *Pass) isEmptyStructLit(lit *ast.CompositeLit) bool {
	if len(lit.Elts) != 0 {
		return false
	}
	tv, ok := p.Pkg.Info.Types[lit]
	if !ok || tv.Type == nil {
		return false
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

func (p *Pass) isStringType(expr ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}
