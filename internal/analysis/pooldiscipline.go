package analysis

import (
	"go/ast"
	"go/types"

	"nnwc/internal/analysis/cfg"
)

// PoolDisciplineAnalyzer enforces Get/Put pairing for sync.Pool and the
// typed wrappers built on it (sched.Pool[T]), protecting the zero-alloc
// PredictWorkspace and batch-kernel workspaces:
//
//   - every CFG path from a pool Get to function exit must pass a Put of
//     the same value (a `defer pool.Put(v)` covers every path), unless
//     the value escapes by being returned or stored — the
//     acquire-helper pattern hands the Put obligation to the caller;
//   - the pooled value must not be used after Put: the pool may already
//     have handed it to another goroutine, so a late read or write is a
//     data race, and a late slice alias resurrects freed memory;
//   - a second Put of the same value is a double-free.
//
// Like hotpath, the rule is usage-driven and has no package allowlist:
// it fires wherever pools are used.
var PoolDisciplineAnalyzer = &Analyzer{
	Name: "pooldiscipline",
	Doc:  "require Get/Put pairing on all CFG paths and no use of pooled values after Put",
	Run:  runPoolDiscipline,
}

func runPoolDiscipline(p *Pass) {
	if !p.Policy.Applies("pooldiscipline", p.Pkg.Path) {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.checkPoolFunc(fd)
		}
	}
}

// poolVar tracks one variable bound to a pool Get result.
type poolVar struct {
	obj      types.Object
	name     string
	getPos   ast.Node
	escapes  bool // returned or stored: the Put obligation moved elsewhere
	deferred bool // a defer pool.Put(v) covers every exit path
}

// poolMethod matches x.Get()/x.Put(v) where x is pool-like, returning
// the method name ("" otherwise).
func (p *Pass) poolMethod(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if sel.Sel.Name != "Get" && sel.Sel.Name != "Put" {
		return ""
	}
	tv, ok := p.Pkg.Info.Types[sel.X]
	if !ok || tv.Type == nil || !isPoolLikeType(tv.Type) {
		return ""
	}
	return sel.Sel.Name
}

// getAssignTarget matches `v := pool.Get()` (possibly through a type
// assertion) and returns v's object.
func (p *Pass) getAssignTarget(assign *ast.AssignStmt) (types.Object, *ast.Ident) {
	if len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return nil, nil
	}
	ident, ok := assign.Lhs[0].(*ast.Ident)
	if !ok || ident.Name == "_" {
		return nil, nil
	}
	rhs := ast.Unparen(assign.Rhs[0])
	if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
		rhs = ast.Unparen(ta.X)
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok || p.poolMethod(call) != "Get" {
		return nil, nil
	}
	obj := p.Pkg.Info.Defs[ident]
	if obj == nil {
		obj = p.Pkg.Info.Uses[ident]
	}
	return obj, ident
}

// putArgObj returns the object Put is called with when it is a plain
// identifier (nil otherwise).
func (p *Pass) putArgObj(call *ast.CallExpr) types.Object {
	if p.poolMethod(call) != "Put" || len(call.Args) != 1 {
		return nil
	}
	ident, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	return p.Pkg.Info.Uses[ident]
}

const (
	stLive = 1 << iota // Get result not yet Put on some path here
	stPut              // Put already executed on some path here
)

func (p *Pass) checkPoolFunc(fd *ast.FuncDecl) {
	// Discover the pooled vars and their static properties first.
	vars := map[types.Object]*poolVar{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // closures have their own frames; skip
		case *ast.AssignStmt:
			if obj, ident := p.getAssignTarget(n); obj != nil {
				vars[obj] = &poolVar{obj: obj, name: ident.Name, getPos: n}
			}
		}
		return true
	})
	if len(vars) == 0 {
		return
	}
	// Second pass for defers and escapes now that every var is known.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if obj := p.putArgObj(n.Call); obj != nil {
				if v := vars[obj]; v != nil {
					v.deferred = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				p.markEscapes(vars, res)
			}
		case *ast.AssignStmt:
			// v stored into a field, map, slice, or package variable:
			// the Put obligation moves with it.
			if _, ident := p.getAssignTarget(n); ident != nil {
				return true // the Get assignment itself
			}
			for i, rhs := range n.Rhs {
				// A store through a field, index, or dereference moves the
				// value out of the function; a plain local rebinding does not.
				if i < len(n.Lhs) && p.lhsLocalObj(n.Lhs[i]) != nil {
					continue
				}
				p.markEscapes(vars, rhs)
			}
		case *ast.SendStmt:
			p.markEscapes(vars, n.Value)
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				p.markEscapes(vars, elt)
			}
		}
		return true
	})

	g := cfg.New(fd.Body)
	blocks := g.Reachable()
	type state = map[types.Object]int
	in := map[int]state{g.Entry.Index: {}}

	reported := map[string]bool{}
	report := func(pos ast.Node, format string, args ...any) {
		key := p.Pkg.Fset.Position(pos.Pos()).String() + format
		if reported[key] {
			return
		}
		reported[key] = true
		p.Reportf("pooldiscipline", pos.Pos(), format, args...)
	}

	transfer := func(st state, node ast.Node, reporting bool) {
		walkSync(node, func(n ast.Node) bool {
			if _, isDefer := n.(*ast.DeferStmt); isDefer {
				return false
			}
			if assign, ok := n.(*ast.AssignStmt); ok {
				if obj, _ := p.getAssignTarget(assign); obj != nil {
					st[obj] = stLive
					return false
				}
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if obj := p.putArgObj(call); obj != nil && vars[obj] != nil {
					if reporting && st[obj]&stPut != 0 {
						report(call, "%s may already be Put on this path; a second Put hands the pool a duplicate", vars[obj].name)
					}
					st[obj] = stPut
					return false
				}
			}
			if ident, ok := n.(*ast.Ident); ok {
				obj := p.Pkg.Info.Uses[ident]
				if obj != nil && vars[obj] != nil && st[obj]&stPut != 0 && reporting {
					report(ident, "%s is used after Put; the pool may have handed it to another goroutine", vars[obj].name)
				}
			}
			return true
		})
	}

	for changed := true; changed; {
		changed = false
		for _, b := range blocks {
			st, ok := in[b.Index]
			if !ok {
				continue
			}
			out := cloneState(st)
			for _, node := range b.Nodes {
				transfer(out, node, false)
			}
			for _, succ := range b.Succs {
				prev, seen := in[succ.Index]
				if !seen {
					in[succ.Index] = cloneState(out)
					changed = true
					continue
				}
				merged := cloneState(prev)
				for k, v := range out {
					merged[k] |= v
				}
				if !stateEqual(merged, prev) {
					in[succ.Index] = merged
					changed = true
				}
			}
		}
	}
	for _, b := range blocks {
		st, ok := in[b.Index]
		if !ok {
			continue
		}
		s := cloneState(st)
		for _, node := range b.Nodes {
			transfer(s, node, true)
		}
	}
	// Exit check: a path can reach function exit with the value live.
	if exitSt, ok := in[g.Exit.Index]; ok {
		for obj, bits := range exitSt {
			v := vars[obj]
			if v == nil || v.escapes || v.deferred {
				continue
			}
			if bits&stLive != 0 {
				report(v.getPos, "%s from pool Get can reach function exit without Put on some path; Put on every path or defer it", v.name)
			}
		}
	}
}

func cloneState(st map[types.Object]int) map[types.Object]int {
	c := make(map[types.Object]int, len(st))
	for k, v := range st {
		c[k] = v
	}
	return c
}

func stateEqual(a, b map[types.Object]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// markEscapes flags any pooled var mentioned in e as escaping: once the
// value is returned or stored, pairing is the new owner's obligation.
func (p *Pass) markEscapes(vars map[types.Object]*poolVar, e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if ident, ok := n.(*ast.Ident); ok {
			if obj := p.Pkg.Info.Uses[ident]; obj != nil {
				if v := vars[obj]; v != nil {
					v.escapes = true
				}
			}
		}
		return true
	})
}

// lhsLocalObj returns the object of a plain local identifier LHS, nil
// for anything else (field, index, dereference).
func (p *Pass) lhsLocalObj(lhs ast.Expr) types.Object {
	ident, ok := lhs.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := p.Pkg.Info.Defs[ident]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Uses[ident]
}
