package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"nnwc/internal/analysis/cfg"
)

// LockholdAnalyzer enforces lock discipline on the serve/dist planes,
// CFG-based (internal/analysis/cfg) and defer-aware:
//
//  1. no blocking operation — channel send/receive, select without
//     default, time.Sleep, HTTP round trips, file I/O, Wait/Shutdown, or
//     a call to a package-local function that transitively blocks — may
//     run while a sync.Mutex/RWMutex is held (may-analysis over all CFG
//     paths; `defer mu.Unlock()` keeps the lock held to function exit);
//  2. a goroutine closure must not read a struct field that the
//     package's mutex-using methods reassign (the coordinator
//     Start/close race: the Serve goroutine read c.http after close()
//     nil'd it) — capture the value before the `go` statement or lock
//     around the read.
var LockholdAnalyzer = &Analyzer{
	Name: "lockhold",
	Doc:  "forbid blocking operations while a mutex is held; guard goroutine reads of lock-managed fields",
	Run:  runLockhold,
}

func runLockhold(p *Pass) {
	if !p.Policy.Applies("lockhold", p.Pkg.Path) {
		return
	}
	lh := &lockholdPass{Pass: p, decls: map[types.Object]*ast.FuncDecl{}, blocking: map[*ast.FuncDecl]string{}}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				lh.fns = append(lh.fns, fd)
				if obj := p.Pkg.Info.Defs[fd.Name]; obj != nil {
					lh.decls[obj] = fd
				}
			}
		}
	}
	lh.computeBlocking()
	guarded := lh.guardedFields()
	for _, fd := range lh.fns {
		lh.checkHeldRegions(fd)
		lh.checkGoroutineReads(fd, guarded)
	}
}

type lockholdPass struct {
	*Pass
	fns      []*ast.FuncDecl
	decls    map[types.Object]*ast.FuncDecl
	blocking map[*ast.FuncDecl]string // fn → why it (transitively) blocks
}

// computeBlocking marks package functions that block: first directly,
// then transitively through package-local calls (fixpoint). Goroutine
// launches and closure bodies are skipped — their blocking happens on
// another goroutine or at a later call site.
func (lh *lockholdPass) computeBlocking() {
	calls := map[*ast.FuncDecl][]*ast.FuncDecl{}
	for _, fd := range lh.fns {
		walkSync(fd.Body, func(n ast.Node) bool {
			if desc, _ := lh.directBlocking(n); desc != "" && lh.blocking[fd] == "" {
				lh.blocking[fd] = desc
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := lh.calleeDecl(call); callee != nil {
					calls[fd] = append(calls[fd], callee)
				}
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range lh.fns {
			if lh.blocking[fd] != "" {
				continue
			}
			for _, callee := range calls[fd] {
				if why := lh.blocking[callee]; why != "" {
					lh.blocking[fd] = fmt.Sprintf("call to %s (%s)", callee.Name.Name, why)
					changed = true
					break
				}
			}
		}
	}
}

func (lh *lockholdPass) calleeDecl(call *ast.CallExpr) *ast.FuncDecl {
	fn := lh.calleeFunc(call)
	if fn == nil {
		return nil
	}
	return lh.decls[fn]
}

// directBlocking classifies one AST node as a blocking operation,
// returning a description and the position to report.
func (lh *lockholdPass) directBlocking(n ast.Node) (string, token.Pos) {
	switch n := n.(type) {
	case *ast.SendStmt:
		return "channel send", n.Pos()
	case *ast.UnaryExpr:
		if n.Op.String() == "<-" {
			return "channel receive", n.Pos()
		}
	case *ast.RangeStmt:
		if lh.isChanType(n.X) {
			return "range over channel", n.Pos()
		}
	case *ast.SelectStmt:
		for _, cl := range n.Body.List {
			if comm, ok := cl.(*ast.CommClause); ok && comm.Comm == nil {
				return "", token.NoPos // has default: non-blocking poll
			}
		}
		return "select without default", n.Pos()
	case *ast.CallExpr:
		if desc, ok := blockingCalls[funcKey(lh.calleeFunc(n))]; ok {
			return desc, n.Pos()
		}
	}
	return "", token.NoPos
}

// walkSync visits n's tree skipping go statements and closure bodies:
// the operations inside run on another goroutine or at a later call.
// fn returns false to skip a node's subtree.
func walkSync(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch c.(type) {
		case *ast.GoStmt, *ast.FuncLit:
			return false
		case nil:
			return true
		}
		return fn(c)
	})
}

// heldState is the set of held lock keys ("c.mu", "mu.RLock" receivers).
type heldState map[string]bool

func (s heldState) clone() heldState {
	c := make(heldState, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func (s heldState) equal(o heldState) bool {
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if !o[k] {
			return false
		}
	}
	return true
}

func (s heldState) keys() string {
	var ks []string
	for k := range s {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return strings.Join(ks, ", ")
}

// checkHeldRegions runs the may-hold dataflow over fd's CFG and reports
// blocking operations reached with a non-empty held set.
func (lh *lockholdPass) checkHeldRegions(fd *ast.FuncDecl) {
	g := cfg.New(fd.Body)
	blocks := g.Reachable()
	in := map[int]heldState{}
	in[g.Entry.Index] = heldState{}

	// Comm operations of a select that has a default clause are
	// non-blocking polls; exempt their send/receive nodes.
	polled := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, cl := range sel.Body.List {
			if comm, ok := cl.(*ast.CommClause); ok && comm.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, cl := range sel.Body.List {
			if comm, ok := cl.(*ast.CommClause); ok && comm.Comm != nil {
				ast.Inspect(comm.Comm, func(c ast.Node) bool {
					if c != nil {
						polled[c] = true
					}
					return true
				})
			}
		}
		return true
	})

	transfer := func(state heldState, node ast.Node, report bool) heldState {
		walkSync(node, func(n ast.Node) bool {
			if _, isDefer := n.(*ast.DeferStmt); isDefer {
				return false // deferred calls run at exit, not here
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if method, recv := lh.mutexMethod(call); method != "" {
					switch method {
					case "Lock", "RLock", "TryLock", "TryRLock":
						state[recv] = true
					case "Unlock", "RUnlock":
						delete(state, recv)
					}
					return false
				}
			}
			if len(state) == 0 || !report || polled[n] {
				return true
			}
			desc, pos := lh.directBlocking(n)
			if desc == "" {
				if call, ok := n.(*ast.CallExpr); ok {
					if callee := lh.calleeDecl(call); callee != nil {
						if why := lh.blocking[callee]; why != "" {
							desc, pos = fmt.Sprintf("call to %s, which blocks (%s)", callee.Name.Name, why), n.Pos()
						}
					}
				}
			}
			if desc != "" {
				lh.Reportf("lockhold", pos,
					"blocking operation (%s) while holding %s; release the mutex before blocking", desc, state.keys())
			}
			return true
		})
		return state
	}

	// Deferred statements inside a node are skipped by transfer; a
	// deferred Unlock keeps the lock held through the rest of the body,
	// which is exactly the semantics we want to model.
	for changed := true; changed; {
		changed = false
		for _, b := range blocks {
			state, ok := in[b.Index]
			if !ok {
				continue
			}
			out := state.clone()
			for _, node := range b.Nodes {
				out = transfer(out, node, false)
			}
			for _, succ := range b.Succs {
				prev, seen := in[succ.Index]
				if !seen {
					in[succ.Index] = out.clone()
					changed = true
					continue
				}
				merged := prev.clone()
				for k := range out {
					merged[k] = true
				}
				if !merged.equal(prev) {
					in[succ.Index] = merged
					changed = true
				}
			}
		}
	}
	// Reporting pass: re-run each block's transfer with reporting on.
	// Diagnostics deduplicate naturally because Reportf positions repeat
	// only if the fixpoint loop ran them twice — hence the split passes.
	for _, b := range blocks {
		state, ok := in[b.Index]
		if !ok {
			continue
		}
		s := state.clone()
		for _, node := range b.Nodes {
			s = transfer(s, node, true)
		}
	}
}

// guardedField identifies a struct field managed under its struct's
// mutex: reassigned in a function that also locks the struct's mutex on
// the same receiver.
type guardedField struct {
	typ   *types.Named
	field string
}

// guardedFields scans every function for the pattern `x.f = ...` where
// x's type carries a sync.Mutex/RWMutex field m and the same function
// locks x.m somewhere. Those (type, field) pairs are lock-managed: a
// goroutine closure reading them unlocked races with the reassignment.
func (lh *lockholdPass) guardedFields() map[guardedField]string {
	guarded := map[guardedField]string{}
	for _, fd := range lh.fns {
		// Lock receivers used in this function, e.g. {"c.mu", "s.mu"}.
		locked := map[string]bool{}
		walkSync(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if method, recv := lh.mutexMethod(call); method == "Lock" || method == "RLock" {
					locked[recv] = true
				}
			}
			return true
		})
		if len(locked) == 0 {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, l := range assign.Lhs {
				sel, ok := l.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				tv, ok := lh.Pkg.Info.Types[sel.X]
				if !ok {
					continue
				}
				named := namedOrPtr(tv.Type)
				if named == nil {
					continue
				}
				recv := lh.exprString(sel.X)
				for _, m := range mutexFieldNames(named) {
					if locked[recv+"."+m] {
						guarded[guardedField{named, sel.Sel.Name}] = fd.Name.Name + " (guarded by " + m + ")"
					}
				}
			}
			return true
		})
	}
	return guarded
}

// mutexFieldNames lists the sync.Mutex/RWMutex fields of named's
// underlying struct.
func mutexFieldNames(named *types.Named) []string {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		fn := namedOrPtr(f.Type())
		if fn == nil {
			continue
		}
		obj := fn.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && (obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			out = append(out, f.Name())
		}
	}
	return out
}

// checkGoroutineReads flags goroutine closures that read lock-managed
// fields without holding the mutex: the closure runs after the launching
// statement returns, when a locked method may already have reassigned
// the field underneath it.
func (lh *lockholdPass) checkGoroutineReads(fd *ast.FuncDecl, guarded map[guardedField]string) {
	if len(guarded) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		// A closure that takes the mutex itself synchronizes its reads.
		locksInside := false
		ast.Inspect(lit.Body, func(c ast.Node) bool {
			if call, ok := c.(*ast.CallExpr); ok {
				if m, _ := lh.mutexMethod(call); m == "Lock" || m == "RLock" {
					locksInside = true
				}
			}
			return true
		})
		if locksInside {
			return true
		}
		ast.Inspect(lit.Body, func(c ast.Node) bool {
			sel, ok := c.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			tv, ok := lh.Pkg.Info.Types[sel.X]
			if !ok {
				return true
			}
			named := namedOrPtr(tv.Type)
			if named == nil {
				return true
			}
			if where, hit := guarded[guardedField{named, sel.Sel.Name}]; hit {
				lh.Reportf("lockhold", sel.Pos(),
					"goroutine reads %s, which %s reassigns under lock; capture the value before the go statement or lock around the read",
					lh.exprString(sel), where)
				return false
			}
			return true
		})
		return true
	})
}
