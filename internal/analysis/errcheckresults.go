package analysis

import (
	"go/ast"
	"go/types"
)

// ErrcheckResultsAnalyzer flags silently discarded errors on the
// result and wire paths: a dropped Close after a write, a dropped
// Encode on an HTTP response, or a dropped Rename in the temp+rename
// persistence dance all turn a half-written artifact into one that
// looks committed. The rule fires when a call whose final result is an
// error is used as a bare statement (or a bare defer) and the callee is
// one of the persistence-critical names below. Writing `_ = f.Close()`
// is an explicit, reviewed discard and is allowed — the finding targets
// the silent form only.
//
// Read-side closes are exempt: closing a file opened with os.Open, or
// an io.ReadCloser (an HTTP response body), cannot lose data, so its
// error is noise. Writes to bytes.Buffer and strings.Builder are also
// exempt — their Write methods are documented to never return an error.
var ErrcheckResultsAnalyzer = &Analyzer{
	Name: "errcheck-results",
	Doc:  "forbid silently discarded errors from Close/Encode/Write/Flush/Sync/Rename on result and wire paths",
	Run:  runErrcheckResults,
}

// errcheckNames are the method/function names whose error results guard
// data durability or wire integrity. Scoping by name rather than by
// package keeps the rule cheap and makes the policy file the place that
// decides which packages are on a result path.
var errcheckNames = map[string]bool{
	"Close":       true,
	"Encode":      true,
	"Write":       true,
	"WriteString": true,
	"WriteTo":     true,
	"Flush":       true,
	"Sync":        true,
	"Rename":      true,
	"WriteFile":   true,
}

func runErrcheckResults(p *Pass) {
	if !p.Policy.Applies("errcheck-results", p.Pkg.Path) {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.errcheckFunc(fd)
		}
	}
}

func (p *Pass) errcheckFunc(fd *ast.FuncDecl) {
	readOnly := p.readOnlyHandles(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				p.checkDiscardedError(call, readOnly, false)
			}
		case *ast.DeferStmt:
			// A deferred closure body is walked normally; only the
			// defer's own call is checked here.
			p.checkDiscardedError(n.Call, readOnly, true)
		}
		return true
	})
}

// readOnlyHandles collects the printed receivers bound to os.Open
// results within fd: files opened for reading, whose Close cannot lose
// written data.
func (p *Pass) readOnlyHandles(fd *ast.FuncDecl) map[string]bool {
	handles := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) == 0 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok || funcKey(p.calleeFunc(call)) != "os.Open" {
			return true
		}
		handles[p.exprString(assign.Lhs[0])] = true
		return true
	})
	return handles
}

func (p *Pass) checkDiscardedError(call *ast.CallExpr, readOnly map[string]bool, deferred bool) {
	name := calleeName(call)
	if name == "" || !errcheckNames[name] {
		return
	}
	if !p.lastResultIsError(call) {
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if name == "Close" && (readOnly[p.exprString(sel.X)] || p.isReadCloser(sel.X)) {
			return
		}
		if p.isInfallibleWriter(sel.X) {
			return
		}
	}
	how := "check the error"
	if deferred {
		how = "close explicitly on the success path, or fold the error into a named return"
	}
	p.Reportf("errcheck-results", call.Pos(),
		"%s returns an error that is silently discarded; on a result or wire path a failed %s means the artifact only looks committed — %s, or write `_ = ...` to mark the discard deliberate", name, name, how)
}

// isReadCloser reports whether e's static type is the io.ReadCloser
// interface — a read-side handle (an HTTP response body) whose Close
// error carries no durability signal.
func (p *Pass) isReadCloser(e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "io" && obj.Name() == "ReadCloser"
}

// isInfallibleWriter reports whether e is a bytes.Buffer or
// strings.Builder, whose write methods are documented to always return
// a nil error.
func (p *Pass) isInfallibleWriter(e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named := namedOrPtr(tv.Type)
	if named == nil {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "bytes.Buffer", "strings.Builder":
		return true
	}
	return false
}

// calleeName returns the bare function or method name of a call ("" for
// indirect calls through non-selector expressions).
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// lastResultIsError reports whether the call's final result is of type
// error. Calls returning no values, or values whose tail is not an
// error, are of no interest to this rule.
func (p *Pass) lastResultIsError(call *ast.CallExpr) bool {
	tv, ok := p.Pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false
		}
		t = tuple.At(tuple.Len() - 1).Type()
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
