package analysis

import (
	"fmt"
	"os"
	"path"
	"strings"
)

// Policy scopes each rule to the packages it applies to. Three directive
// kinds exist, mirroring how the runtime invariants are scoped:
//
//	<rule> allow <pkg-pattern>   — rule does not apply in matching packages
//	<rule> only <pkg-pattern>    — rule applies ONLY in matching packages
//	<rule> allowfunc <pkg>.<fn>  — rule does not apply inside that function
//
// Patterns are import paths, optionally ending in "/..." to match a whole
// subtree; path.Match metacharacters work in the last segment (e.g.
// "nnwc/cmd/*"). Test files never reach the analyzers at all (the loader
// skips them), so every rule is implicitly test-exempt.
type Policy struct {
	rules map[string]*rulePolicy
}

type rulePolicy struct {
	allow      []string
	only       []string
	allowFuncs map[string]bool // "pkgpath.FuncName" or "pkgpath.(Recv).Method"
}

// NewPolicy returns an empty policy (every rule applies everywhere).
func NewPolicy() *Policy { return &Policy{rules: map[string]*rulePolicy{}} }

func (p *Policy) rule(name string) *rulePolicy {
	rp := p.rules[name]
	if rp == nil {
		rp = &rulePolicy{allowFuncs: map[string]bool{}}
		p.rules[name] = rp
	}
	return rp
}

// Allow exempts packages matching pattern from rule.
func (p *Policy) Allow(rule, pattern string) {
	rp := p.rule(rule)
	rp.allow = append(rp.allow, pattern)
}

// Only restricts rule to packages matching pattern (additive).
func (p *Policy) Only(rule, pattern string) { rp := p.rule(rule); rp.only = append(rp.only, pattern) }

// AllowFunc exempts one function, named "<pkgpath>.<FuncName>", from rule.
func (p *Policy) AllowFunc(rule, qualified string) { p.rule(rule).allowFuncs[qualified] = true }

// Applies reports whether rule is in force for the package at pkgPath.
func (p *Policy) Applies(rule, pkgPath string) bool {
	rp := p.rules[rule]
	if rp == nil {
		return true
	}
	if len(rp.only) > 0 && !matchAny(rp.only, pkgPath) {
		return false
	}
	return !matchAny(rp.allow, pkgPath)
}

// FuncAllowed reports whether the function funcName in pkgPath is exempt
// from rule (the epsilon-helper allowlist of the floateq rule).
func (p *Policy) FuncAllowed(rule, pkgPath, funcName string) bool {
	rp := p.rules[rule]
	return rp != nil && rp.allowFuncs[pkgPath+"."+funcName]
}

func matchAny(patterns []string, pkgPath string) bool {
	for _, pat := range patterns {
		if matchPattern(pat, pkgPath) {
			return true
		}
	}
	return false
}

func matchPattern(pat, pkgPath string) bool {
	if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
		return pkgPath == prefix || strings.HasPrefix(pkgPath, prefix+"/")
	}
	if ok, err := path.Match(pat, pkgPath); err == nil && ok {
		return true
	}
	return pat == pkgPath
}

// ReadConfFile loads and parses a lint.conf policy file.
func ReadConfFile(path string) (*Policy, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseConf(string(data))
}

// ParseConf parses the lint.conf format: one directive per line,
// `<rule> <allow|only|allowfunc> <pattern>`, with '#' comments and blank
// lines ignored. Unknown rules are rejected so a typo cannot silently
// disable enforcement.
func ParseConf(src string) (*Policy, error) {
	p := NewPolicy()
	for i, line := range strings.Split(src, "\n") {
		if idx := strings.Index(line, "#"); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("lint.conf:%d: want `<rule> <allow|only|allowfunc> <pattern>`, got %q", i+1, line)
		}
		rule, verb, pattern := fields[0], fields[1], fields[2]
		if !knownRule(rule) {
			return nil, fmt.Errorf("lint.conf:%d: unknown rule %q", i+1, rule)
		}
		switch verb {
		case "allow":
			p.Allow(rule, pattern)
		case "only":
			p.Only(rule, pattern)
		case "allowfunc":
			p.AllowFunc(rule, pattern)
		default:
			return nil, fmt.Errorf("lint.conf:%d: unknown directive %q", i+1, verb)
		}
	}
	return p, nil
}
