package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked package. Only non-test
// files are loaded: every rule in the suite exempts _test.go files, and
// skipping them keeps the type-checker off test-only dependencies.
type Package struct {
	Path  string // import path, e.g. "nnwc/internal/nn"
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader discovers, parses, and type-checks the packages of a single Go
// module without go/packages or `go list`: directories are walked
// directly, module-internal imports are resolved against the walk, and
// standard-library imports are type-checked from $GOROOT/src by the
// stdlib source importer. This keeps go.mod dependency-free at the cost
// of supporting only the layout this repo actually uses (one module, no
// external imports, no cgo). Files whose //go:build (or legacy +build)
// constraint excludes the host GOOS/GOARCH are skipped, so a
// platform-gated file cannot poison type-checking for the whole package.
type Loader struct {
	RootDir    string // absolute module root (directory containing go.mod)
	ModulePath string
	Fset       *token.FileSet

	std     types.Importer
	pkgs    map[string]*Package // memoized by import path
	loading map[string]bool     // cycle guard
}

// NewLoader locates the enclosing module from dir by walking up to the
// nearest go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		RootDir:    root,
		ModulePath: modPath,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Load resolves package patterns to loaded packages. Supported patterns:
// "./..." (every package under the module root, skipping testdata, .git,
// and hidden directories) and directory paths relative to the current
// working directory (which may point into testdata — that is how the
// self-test fixtures are loaded).
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		var batch []string
		var err error
		switch {
		case pat == "./..." || pat == "...":
			batch, err = l.walkModule()
		case strings.HasSuffix(pat, "/..."):
			batch, err = l.walkTree(strings.TrimSuffix(pat, "/..."))
		default:
			batch = []string{pat}
		}
		if err != nil {
			return nil, err
		}
		for _, d := range batch {
			abs, err := filepath.Abs(d)
			if err != nil {
				return nil, err
			}
			if !seen[abs] {
				seen[abs] = true
				dirs = append(dirs, abs)
			}
		}
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

func (l *Loader) walkModule() ([]string, error) { return l.walkTree(l.RootDir) }

func (l *Loader) walkTree(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "results" || name == "runs" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// importPathFor maps an absolute directory inside the module to its
// import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.RootDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.RootDir)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

func (l *Loader) dirForImport(path string) string {
	if path == l.ModulePath {
		return l.RootDir
	}
	rel := strings.TrimPrefix(path, l.ModulePath+"/")
	return filepath.Join(l.RootDir, filepath.FromSlash(rel))
}

func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.loadPackage(path)
}

func (l *Loader) loadPackage(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirForImport(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if buildExcluded(src) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		l.pkgs[path] = nil
		return nil, nil
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	var terrs []types.Error
	conf.Error = func(err error) {
		if te, ok := err.(types.Error); ok {
			terrs = append(terrs, te)
		}
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if len(terrs) > 0 {
		return nil, &TypeError{Path: path, Errs: terrs}
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// TypeError aggregates the positioned type-check diagnostics of one
// package so the driver can print every broken line, not just the first,
// before exiting with a usage/load error.
type TypeError struct {
	Path string
	Errs []types.Error
}

func (e *TypeError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "analysis: type-checking %s failed:", e.Path)
	const maxShown = 10
	shown := len(e.Errs)
	if shown > maxShown {
		shown = maxShown
	}
	for _, te := range e.Errs[:shown] {
		fmt.Fprintf(&b, "\n\t%s: %s", te.Fset.Position(te.Pos), te.Msg)
	}
	if len(e.Errs) > shown {
		fmt.Fprintf(&b, "\n\t... and %d more", len(e.Errs)-shown)
	}
	return b.String()
}

// buildExcluded reports whether src's build constraint (a //go:build or
// legacy // +build line above the package clause) excludes the host
// configuration. Files with no constraint are always included.
func buildExcluded(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "package ") {
			break
		}
		expr, err := constraint.Parse(trimmed)
		if err != nil {
			continue
		}
		if !expr.Eval(buildTagSatisfied) {
			return true
		}
	}
	return false
}

// buildTagSatisfied treats the host OS/arch, the gc toolchain, and every
// release tag as set; anything else (ignore, integration, ...) is unset.
func buildTagSatisfied(tag string) bool {
	if tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc" {
		return true
	}
	return strings.HasPrefix(tag, "go1.")
}

// loaderImporter resolves module-internal imports through the Loader and
// everything else through the standard-library source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.loadPackage(path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("analysis: no Go files in %s", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
