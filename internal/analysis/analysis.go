// Package analysis is a stdlib-only static-analysis suite that enforces
// the repo's determinism, allocation, and float-safety invariants at the
// source level (DESIGN.md §11). Each analyzer front-runs a runtime
// guarantee that is otherwise only caught by tests — the 1e-9
// seed-reference CV check, TestBatchEpochZeroAlloc, and the worker-count
// parity pins — by rejecting the defect classes that break them
// (unseeded clocks, stray goroutines, map-iteration order, hot-path
// allocation, exact float comparison) at lint time.
//
// The suite is built purely on go/ast, go/token, go/types, and go/parser
// with a custom module-aware loader (load.go), so go.mod stays
// dependency-free.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, formatted as "file:line:col: [rule] message".
// A waived diagnostic (suppressed by a `//lint:waive` comment) is still
// recorded — with Waived set and the waiver's justification — so that
// machine consumers (nnwc-lint -json) can audit what is being suppressed
// and why; the text reporter and the exit code ignore waived entries.
type Diagnostic struct {
	Pos           token.Position
	Rule          string
	Message       string
	Waived        bool
	Justification string // non-empty only when Waived
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Analyzer is one named rule. Run inspects the package held by the Pass
// and reports findings through it.
type Analyzer struct {
	Name string // rule name used in diagnostics, waivers, and lint.conf
	Doc  string // one-line description
	Run  func(*Pass)
}

// Pass carries one package through one analyzer, routing reports through
// the waiver table so `//lint:waive` comments can suppress them.
type Pass struct {
	Pkg     *Package
	Policy  *Policy
	waivers *waiverTable
	diags   *[]Diagnostic
}

// Reportf records a finding at pos. If a matching waiver comment is
// attached to that line (or the line above it) the finding is recorded
// as waived, carrying the waiver's justification, instead of active.
func (p *Pass) Reportf(rule string, pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	d := Diagnostic{Pos: position, Rule: rule, Message: fmt.Sprintf(format, args...)}
	if w := p.waivers.waive(rule, position); w != nil {
		d.Waived = true
		d.Justification = w.justification
	}
	*p.diags = append(*p.diags, d)
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		SchedAnalyzer,
		MapRangeAnalyzer,
		HotPathAnalyzer,
		FloatEqAnalyzer,
		CtxflowAnalyzer,
		LockholdAnalyzer,
		GoLifecycleAnalyzer,
		PoolDisciplineAnalyzer,
		ErrcheckResultsAnalyzer,
	}
}

// Run applies the given analyzers to pkg under policy and returns the
// active findings sorted by position. Malformed or unused waiver
// comments are reported under the pseudo-rule "waiver"; waived findings
// are dropped (use RunAll to see them).
func Run(pkg *Package, analyzers []*Analyzer, policy *Policy) []Diagnostic {
	all := RunAll(pkg, analyzers, policy)
	active := all[:0]
	for _, d := range all {
		if !d.Waived {
			active = append(active, d)
		}
	}
	return active
}

// RunAll is Run without the waiver filter: waived findings are included
// with Waived set and the waiver's justification, so callers that emit
// machine-readable reports can expose the full suppression picture.
func RunAll(pkg *Package, analyzers []*Analyzer, policy *Policy) []Diagnostic {
	var diags []Diagnostic
	wt := newWaiverTable(pkg, &diags)
	for _, a := range analyzers {
		a.Run(&Pass{Pkg: pkg, Policy: policy, waivers: wt, diags: &diags})
	}
	wt.reportUnused()
	sortDiagnostics(diags)
	return diags
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// WaiverRule is the pseudo-rule under which malformed and unused waiver
// comments are reported.
const WaiverRule = "waiver"

// A waiver is one parsed `//lint:waive <rule> -- <justification>` (or the
// map-range shorthand `//lint:ordered -- <justification>`) comment. It
// suppresses a matching diagnostic on its own line or the line directly
// below; an unconsumed waiver is itself a finding, so stale waivers
// cannot accumulate.
type waiver struct {
	rule          string
	justification string
	pos           token.Position
	used          bool
}

const (
	waivePrefix   = "//lint:waive"
	orderedPrefix = "//lint:ordered"
	waiverSep     = " -- "
)

// parseWaiver parses one comment's text. It returns (nil, "") for
// comments that are not waivers at all, and (nil, reason) for comments
// that are recognizably waivers but malformed.
func parseWaiver(text string) (*waiver, string) {
	switch {
	case text == orderedPrefix || strings.HasPrefix(text, orderedPrefix+" "):
		rest := strings.TrimPrefix(text, orderedPrefix)
		just, reason := waiverJustification(rest)
		if reason != "" {
			return nil, reason
		}
		return &waiver{rule: "maprange", justification: just}, ""
	case text == waivePrefix || strings.HasPrefix(text, waivePrefix+" "):
		// Deliberately not trimmed: a trailing "-- " with an empty
		// justification must parse as such, not as a missing separator.
		rest := strings.TrimPrefix(text, waivePrefix)
		sep := strings.Index(rest, waiverSep)
		if sep < 0 {
			return nil, "missing ` -- justification`"
		}
		rule := strings.TrimSpace(rest[:sep])
		if rule == "" {
			return nil, "missing rule name"
		}
		if !knownRule(rule) {
			return nil, fmt.Sprintf("unknown rule %q", rule)
		}
		just := strings.TrimSpace(rest[sep+len(waiverSep):])
		if just == "" {
			return nil, "empty justification"
		}
		return &waiver{rule: rule, justification: just}, ""
	}
	return nil, ""
}

// waiverJustification parses the ` -- justification` tail of an ordered
// waiver, returning a non-empty reason when it is malformed.
func waiverJustification(rest string) (string, string) {
	if strings.TrimSpace(rest) == "" {
		return "", "missing ` -- justification`"
	}
	sep := strings.Index(rest, waiverSep)
	if sep < 0 {
		return "", "missing ` -- justification`"
	}
	just := strings.TrimSpace(rest[sep+len(waiverSep):])
	if just == "" {
		return "", "empty justification"
	}
	return just, ""
}

func knownRule(rule string) bool {
	for _, a := range Analyzers() {
		if a.Name == rule {
			return true
		}
	}
	return false
}

// waiverTable indexes every waiver comment in a package by file and line.
type waiverTable struct {
	pkg     *Package
	diags   *[]Diagnostic
	byLine  map[string]map[int]*waiver // filename → line → waiver
	ordered []*waiver                  // stable order for unused reporting
}

func newWaiverTable(pkg *Package, diags *[]Diagnostic) *waiverTable {
	wt := &waiverTable{pkg: pkg, diags: diags, byLine: map[string]map[int]*waiver{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				w, reason := parseWaiver(c.Text)
				pos := pkg.Fset.Position(c.Pos())
				if reason != "" {
					*wt.diags = append(*wt.diags, Diagnostic{
						Pos:     pos,
						Rule:    WaiverRule,
						Message: "malformed waiver comment: " + reason,
					})
					continue
				}
				if w == nil {
					continue
				}
				w.pos = pos
				lines := wt.byLine[pos.Filename]
				if lines == nil {
					lines = map[int]*waiver{}
					wt.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = w
				wt.ordered = append(wt.ordered, w)
			}
		}
	}
	return wt
}

// waive returns the waiver for rule attached at pos — on the same line
// (trailing comment) or the line immediately above (own-line comment) —
// or nil when the finding is not waived.
func (wt *waiverTable) waive(rule string, pos token.Position) *waiver {
	lines := wt.byLine[pos.Filename]
	if lines == nil {
		return nil
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if w := lines[line]; w != nil && w.rule == rule {
			w.used = true
			return w
		}
	}
	return nil
}

// reportUnused flags waivers that suppressed nothing: either stale, or
// detached from the construct they were meant to cover.
func (wt *waiverTable) reportUnused() {
	for _, w := range wt.ordered {
		if !w.used {
			*wt.diags = append(*wt.diags, Diagnostic{
				Pos:     w.pos,
				Rule:    WaiverRule,
				Message: fmt.Sprintf("waiver for rule %q waives nothing (stale or detached)", w.rule),
			})
		}
	}
}

// funcFor returns the innermost function declaration enclosing pos in
// file, or nil. Used by rules with per-function allowlists.
func funcFor(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}
