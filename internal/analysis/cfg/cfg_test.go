package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses src as the body of a function and returns its CFG.
func parseBody(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return New(fd.Body)
}

// hasEdge reports whether to is reachable from from.
func hasEdge(from, to *Block) bool {
	seen := map[*Block]bool{}
	var visit func(*Block) bool
	visit = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if visit(s) {
				return true
			}
		}
		return false
	}
	return visit(from)
}

// nodeBlocks maps each statement/expression position to its block so
// tests can locate the block holding a given construct.
func blockOf(g *Graph, match func(ast.Node) bool) *Block {
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if match(n) {
				return b
			}
		}
	}
	return nil
}

func isCall(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == name
	}
}

func TestStraightLine(t *testing.T) {
	g := parseBody(t, "a()\nb()")
	if !hasEdge(g.Entry, g.Exit) {
		t.Fatal("entry must reach exit")
	}
	if blockOf(g, isCall("a")) != blockOf(g, isCall("b")) {
		t.Error("straight-line calls must share a block")
	}
}

func TestReturnCutsFlow(t *testing.T) {
	g := parseBody(t, "a()\nreturn\nb()")
	bb := blockOf(g, isCall("b"))
	if bb == nil {
		t.Fatal("b() block missing")
	}
	for _, r := range g.Reachable() {
		if r == bb {
			t.Error("statement after return must be unreachable")
		}
	}
}

func TestIfElseJoin(t *testing.T) {
	g := parseBody(t, "if c {\n a()\n} else {\n b()\n}\nj()")
	ab, bb, jb := blockOf(g, isCall("a")), blockOf(g, isCall("b")), blockOf(g, isCall("j"))
	if ab == nil || bb == nil || jb == nil {
		t.Fatal("missing blocks")
	}
	if ab == bb {
		t.Error("then/else must be distinct blocks")
	}
	if !hasEdge(ab, jb) || !hasEdge(bb, jb) {
		t.Error("both branches must reach the join")
	}
}

// TestIfWithoutElseSkips pins the edge that makes lockhold/pooldiscipline
// path-sensitive: when the then-branch is skipped, flow goes cond→join.
func TestIfWithoutElseSkips(t *testing.T) {
	g := parseBody(t, "if c {\n a()\n}\nj()")
	ab, jb := blockOf(g, isCall("a")), blockOf(g, isCall("j"))
	condB := g.Entry
	direct := false
	for _, s := range condB.Succs {
		if s != ab && hasEdge(s, jb) {
			direct = true
		}
	}
	if !direct {
		t.Error("cond must have a path to the join that bypasses the then-branch")
	}
}

func TestForLoopBackEdgeAndExit(t *testing.T) {
	g := parseBody(t, "for i := 0; i < n; i++ {\n a()\n}\nj()")
	ab, jb := blockOf(g, isCall("a")), blockOf(g, isCall("j"))
	if !hasEdge(ab, ab) {
		t.Error("loop body must reach itself via the back edge")
	}
	if !hasEdge(ab, jb) {
		t.Error("loop body must reach the loop exit")
	}
}

func TestInfiniteLoopWithBreak(t *testing.T) {
	g := parseBody(t, "for {\n if c {\n  break\n }\n a()\n}\nj()")
	ab, jb := blockOf(g, isCall("a")), blockOf(g, isCall("j"))
	if !hasEdge(g.Entry, jb) {
		t.Error("break must make the code after an infinite loop reachable")
	}
	if !hasEdge(ab, ab) {
		t.Error("loop must still cycle")
	}
	// Without the break path, a() would have no route to j() except the
	// break; verify the break edge targets the exit block of the loop.
	if !hasEdge(ab, jb) {
		t.Error("body continues to loop head which reaches break path")
	}
}

func TestContinueTargetsPost(t *testing.T) {
	g := parseBody(t, "for i := 0; i < n; i++ {\n if c {\n  continue\n }\n a()\n}\n")
	ab := blockOf(g, isCall("a"))
	if ab == nil {
		t.Fatal("a() block missing")
	}
	// continue must not skip the loop entirely: the graph still cycles.
	if !hasEdge(ab, ab) {
		t.Error("continue must re-enter the loop")
	}
}

func TestRangeLoop(t *testing.T) {
	g := parseBody(t, "for range xs {\n a()\n}\nj()")
	ab, jb := blockOf(g, isCall("a")), blockOf(g, isCall("j"))
	if !hasEdge(ab, ab) || !hasEdge(ab, jb) {
		t.Error("range loop must cycle and exit")
	}
}

func TestSwitchClausesJoin(t *testing.T) {
	g := parseBody(t, "switch v {\ncase 1:\n a()\ncase 2:\n b()\n}\nj()")
	ab, bb, jb := blockOf(g, isCall("a")), blockOf(g, isCall("b")), blockOf(g, isCall("j"))
	if ab == bb {
		t.Error("clauses must be distinct")
	}
	if !hasEdge(ab, jb) || !hasEdge(bb, jb) {
		t.Error("clauses must reach the join")
	}
	if !hasEdge(g.Entry, jb) {
		t.Error("switch without default must allow fall-past")
	}
}

func TestSelectCommClauses(t *testing.T) {
	g := parseBody(t, "select {\ncase <-ch:\n a()\ncase ch2 <- v:\n b()\n}\nj()")
	ab, bb, jb := blockOf(g, isCall("a")), blockOf(g, isCall("b")), blockOf(g, isCall("j"))
	if ab == nil || bb == nil || jb == nil {
		t.Fatal("missing blocks")
	}
	if !hasEdge(ab, jb) || !hasEdge(bb, jb) {
		t.Error("comm clauses must reach the join")
	}
}

func TestDefersCollected(t *testing.T) {
	g := parseBody(t, "defer a()\nif c {\n defer b()\n}")
	if len(g.Defers) != 2 {
		t.Fatalf("got %d defers, want 2", len(g.Defers))
	}
}

func TestGotoConservative(t *testing.T) {
	g := parseBody(t, "a()\ngoto L\nb()\nL:\nc()")
	// The builder cannot resolve the label target; the goto must at least
	// not lose the path to exit.
	if !hasEdge(g.Entry, g.Exit) {
		t.Error("goto must keep a conservative path to exit")
	}
}

func TestNilBody(t *testing.T) {
	g := New(nil)
	if !hasEdge(g.Entry, g.Exit) {
		t.Error("empty graph must connect entry to exit")
	}
}

func TestLabeledBreak(t *testing.T) {
	g := parseBody(t, "outer:\nfor {\n for {\n  if c {\n   break outer\n  }\n  a()\n }\n}\nj()")
	jb := blockOf(g, isCall("j"))
	if jb == nil {
		t.Fatal("j() block missing")
	}
	if !hasEdge(g.Entry, jb) {
		t.Error("labeled break must reach past the outer loop")
	}
}
