// Package cfg builds lightweight intra-function control-flow graphs over
// go/ast function bodies for the concurrency and resource-lifecycle
// analyzers (DESIGN.md §16). The graph is deliberately small: basic
// blocks hold statements (and the condition expressions that gate
// branches) in evaluation order, edges follow if/for/range/switch/
// select/return/break/continue control flow, and defers are collected
// separately because they run at every function exit. It is a
// may-analysis substrate — `goto` and labeled jumps it cannot resolve
// degrade to a conservative edge to the exit block — which is exactly
// what the lockhold and pooldiscipline dataflow passes need: they must
// never claim a path does not exist.
package cfg

import "go/ast"

// Block is one basic block: a maximal run of nodes with no internal
// control transfer. Nodes are ast.Stmt in source order, plus the bare
// ast.Expr conditions of the branch that ends the block (so dataflow
// transfer functions see condition side effects such as method calls).
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// Graph is the CFG of one function body. Exit is a virtual empty block:
// every return statement and the natural end of the body flow into it.
// Defers lists every defer statement in the body in source order; they
// execute, in reverse order, on every path into Exit.
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	Defers []*ast.DeferStmt
}

// New builds the CFG of body. A nil body (declaration without a body)
// yields a graph whose entry connects straight to exit.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	if body != nil {
		b.stmts(body.List)
	}
	b.jump(b.cur, b.g.Exit)
	return b.g
}

// Reachable returns the blocks reachable from Entry in a stable
// (index-sorted) order. Analyzers iterate this set so statements after
// an unconditional return never feed dataflow state.
func (g *Graph) Reachable() []*Block {
	seen := make([]bool, len(g.Blocks))
	var visit func(*Block)
	visit = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			visit(s)
		}
	}
	visit(g.Entry)
	var out []*Block
	for _, b := range g.Blocks {
		if seen[b.Index] {
			out = append(out, b)
		}
	}
	return out
}

type loopFrame struct {
	label     string
	continueB *Block // nil for switch/select frames (not continue targets)
	breakB    *Block
}

type builder struct {
	g      *builderGraph
	cur    *Block
	frames []loopFrame
}

// builderGraph aliases Graph so builder methods read naturally.
type builderGraph = Graph

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) jump(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt extends the CFG with s. label is the label attached to s when it
// came through a LabeledStmt ("" otherwise); loops and switches record
// it so labeled break/continue resolve to the right frame.
func (b *builder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)
	case *ast.LabeledStmt:
		b.stmt(s.Stmt, s.Label.Name)
	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.jump(b.cur, b.g.Exit)
		b.cur = b.newBlock() // unreachable successor
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		b.cur.Nodes = append(b.cur.Nodes, s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, label)
	case *ast.RangeStmt:
		b.rangeStmt(s, label)
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		if s.Tag != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Tag)
		}
		b.clauses(s.Body.List, label, true)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Assign)
		b.clauses(s.Body.List, label, true)
	case *ast.SelectStmt:
		b.clauses(s.Body.List, label, false)
	default:
		// Straight-line statement (assign, expr, go, decl, send, incdec,
		// empty): accumulate into the current block.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

func (b *builder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	target := (*Block)(nil)
	switch s.Tok.String() {
	case "break":
		for i := len(b.frames) - 1; i >= 0; i-- {
			if label == "" || b.frames[i].label == label {
				target = b.frames[i].breakB
				break
			}
		}
	case "continue":
		for i := len(b.frames) - 1; i >= 0; i-- {
			if b.frames[i].continueB != nil && (label == "" || b.frames[i].label == label) {
				target = b.frames[i].continueB
				break
			}
		}
	case "fallthrough":
		// Handled structurally by clauses(); reaching here means a
		// malformed tree — treat as straight-line.
		b.cur.Nodes = append(b.cur.Nodes, s)
		return
	}
	if target == nil {
		// goto, or a break/continue whose frame is outside this body
		// fragment: conservatively flow to exit so no path disappears.
		target = b.g.Exit
	}
	b.jump(b.cur, target)
	b.cur = b.newBlock()
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init, "")
	}
	b.cur.Nodes = append(b.cur.Nodes, s.Cond)
	cond := b.cur
	join := b.newBlock()

	then := b.newBlock()
	b.jump(cond, then)
	b.cur = then
	b.stmts(s.Body.List)
	b.jump(b.cur, join)

	if s.Else != nil {
		els := b.newBlock()
		b.jump(cond, els)
		b.cur = els
		b.stmt(s.Else, "")
		b.jump(b.cur, join)
	} else {
		b.jump(cond, join)
	}
	b.cur = join
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init, "")
	}
	head := b.newBlock()
	body := b.newBlock()
	exit := b.newBlock()
	b.jump(b.cur, head)
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
		b.jump(head, exit)
	}
	b.jump(head, body)

	// continue runs the post statement, then re-tests the condition.
	contTarget := head
	if s.Post != nil {
		post := b.newBlock()
		b.cur = post
		b.stmt(s.Post, "")
		b.jump(b.cur, head)
		contTarget = post
	}

	b.frames = append(b.frames, loopFrame{label: label, continueB: contTarget, breakB: exit})
	b.cur = body
	b.stmts(s.Body.List)
	b.jump(b.cur, contTarget)
	b.frames = b.frames[:len(b.frames)-1]

	b.cur = exit
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock()
	body := b.newBlock()
	exit := b.newBlock()
	// The range statement itself sits in the head block: its X operand is
	// evaluated there and the per-iteration assignment happens there.
	head.Nodes = append(head.Nodes, s)
	b.jump(b.cur, head)
	b.jump(head, body)
	b.jump(head, exit)

	b.frames = append(b.frames, loopFrame{label: label, continueB: head, breakB: exit})
	b.cur = body
	b.stmts(s.Body.List)
	b.jump(b.cur, head)
	b.frames = b.frames[:len(b.frames)-1]

	b.cur = exit
}

// clauses builds the case bodies of a switch/type-switch (breakable=true,
// and an implicit fall-past edge exists when no default clause is
// present) or a select (no implicit edge unless a default clause exists
// — a select without default blocks until a comm case fires).
func (b *builder) clauses(list []ast.Stmt, label string, breakable bool) {
	cond := b.cur
	join := b.newBlock()
	b.frames = append(b.frames, loopFrame{label: label, breakB: join})
	_ = breakable

	hasDefault := false
	blocks := make([]*Block, len(list))
	bodies := make([][]ast.Stmt, len(list))
	for i, cl := range list {
		blk := b.newBlock()
		blocks[i] = blk
		b.jump(cond, blk)
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				cond.Nodes = append(cond.Nodes, e)
			}
			bodies[i] = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				blk.Nodes = append(blk.Nodes, cl.Comm)
			}
			bodies[i] = cl.Body
		}
	}
	for i := range list {
		b.cur = blocks[i]
		// Strip a trailing fallthrough: its effect is the edge below.
		body := bodies[i]
		fallsThrough := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				fallsThrough, body = true, body[:n-1]
			}
		}
		b.stmts(body)
		if fallsThrough && i+1 < len(list) {
			b.jump(b.cur, blocks[i+1])
		} else {
			b.jump(b.cur, join)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	if hasDefault || len(list) == 0 {
		// default exists (or the statement is empty): control can fall
		// straight past.
		b.jump(cond, join)
	} else if breakable {
		// switch without default: no case may match.
		b.jump(cond, join)
	}
	b.cur = join
}
