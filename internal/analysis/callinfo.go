package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// callinfo.go holds the type-query helpers shared by the concurrency and
// resource-lifecycle analyzers (ctxflow, lockhold, goroutine-lifecycle,
// pooldiscipline, errcheck-results): callee resolution, receiver typing,
// and the table of calls known to block.

// calleeFunc resolves the *types.Func a call invokes, or nil for builtin
// calls, conversions, and calls through function values.
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := p.Pkg.Info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Package-qualified call: pkg.Func.
		fn, _ := p.Pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// funcKey renders a *types.Func as "pkgpath.Name" for package functions
// and "pkgpath.Type.Name" for methods (pointer receivers stripped), the
// form the blocking-call table and policy files use.
func funcKey(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		if fn.Pkg() == nil {
			return fn.Name()
		}
		return fn.Pkg().Path() + "." + fn.Name()
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return fn.Name()
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
}

// blockingCalls maps funcKey values to a short description of why the
// call can block indefinitely (or for an unbounded I/O round trip). The
// lockhold analyzer treats these — plus channel operations and
// package-local functions that transitively reach them — as operations
// that must not run while a mutex is held.
var blockingCalls = map[string]string{
	"time.Sleep":                     "time.Sleep",
	"sync.WaitGroup.Wait":            "WaitGroup.Wait",
	"sync.Cond.Wait":                 "Cond.Wait",
	"net/http.Get":                   "HTTP round trip",
	"net/http.Head":                  "HTTP round trip",
	"net/http.Post":                  "HTTP round trip",
	"net/http.PostForm":              "HTTP round trip",
	"net/http.Client.Do":             "HTTP round trip",
	"net/http.Client.Get":            "HTTP round trip",
	"net/http.Client.Head":           "HTTP round trip",
	"net/http.Client.Post":           "HTTP round trip",
	"net/http.Client.PostForm":       "HTTP round trip",
	"net/http.Server.Serve":          "Server.Serve",
	"net/http.Server.ListenAndServe": "Server.ListenAndServe",
	"net/http.Server.Shutdown":       "Server.Shutdown (drains connections)",
	"net/http.ServeFile":             "file-serving I/O",
	"os.Open":                        "file I/O",
	"os.OpenFile":                    "file I/O",
	"os.Create":                      "file I/O",
	"os.CreateTemp":                  "file I/O",
	"os.ReadFile":                    "file I/O",
	"os.WriteFile":                   "file I/O",
	"os.Rename":                      "file I/O",
	"os.Remove":                      "file I/O",
	"os.RemoveAll":                   "file I/O",
	"os.MkdirAll":                    "file I/O",
	"os.ReadDir":                     "file I/O",
	"os.File.Read":                   "file I/O",
	"os.File.ReadAt":                 "file I/O",
	"os.File.Write":                  "file I/O",
	"os.File.WriteAt":                "file I/O",
	"os.File.WriteString":            "file I/O",
	"os.File.Sync":                   "file I/O",
	"os.File.Close":                  "file I/O (close flushes)",
	"bufio.Writer.Flush":             "buffered-writer flush (underlying I/O)",
	"io.Copy":                        "stream copy I/O",
	"io.ReadAll":                     "stream read I/O",
}

// exprString renders an expression compactly ("c.mu", "s.pool"). It is
// the key the dataflow passes use to identify a lock or pool receiver
// within one function; distinct expressions that alias the same object
// are treated as distinct locks, which errs on the side of reporting.
func (p *Pass) exprString(e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, token.NewFileSet(), e)
	return buf.String()
}

// mutexMethod matches x.Lock()/x.Unlock()/x.RLock()/x.RUnlock() where x
// is (or embeds) a sync.Mutex or sync.RWMutex, returning the method name
// and the receiver key ("" when the call is no mutex operation).
func (p *Pass) mutexMethod(call *ast.CallExpr) (method, recv string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", ""
	}
	fn := p.calleeFunc(call)
	key := funcKey(fn)
	if !strings.HasPrefix(key, "sync.Mutex.") && !strings.HasPrefix(key, "sync.RWMutex.") {
		return "", ""
	}
	return name, p.exprString(sel.X)
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// ctxParam returns the name of fn's context.Context parameter, or "".
func (p *Pass) ctxParam(fd *ast.FuncDecl) string {
	if fd.Type.Params == nil {
		return ""
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := p.Pkg.Info.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		if len(field.Names) > 0 {
			return field.Names[0].Name
		}
		return "_"
	}
	return ""
}

// isChanType reports whether e has channel type.
func (p *Pass) isChanType(e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// namedOrPtr unwraps a pointer and returns the named type beneath, if any.
func namedOrPtr(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isSyncPoolType reports whether t is sync.Pool (possibly behind a
// pointer).
func isSyncPoolType(t types.Type) bool {
	named := namedOrPtr(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

// isPoolLikeType reports whether t is sync.Pool or a struct wrapping one
// (like sched.Pool[T]), so typed pool wrappers get the same Get/Put
// discipline as the raw type.
func isPoolLikeType(t types.Type) bool {
	if isSyncPoolType(t) {
		return true
	}
	named := namedOrPtr(t)
	if named == nil {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isSyncPoolType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// selRoot returns the leftmost identifier of a selector chain (x in
// x.a.b), or nil.
func selRoot(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		default:
			return nil
		}
	}
}
