package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// pct renders a fractional error for the fixed-width table, or "n/a" when
// the metric is undefined (NaN) for that indicator — the skip must be
// visible instead of silently counting as 0% error.
func pct(e float64) string {
	if math.IsNaN(e) {
		return fmt.Sprintf("%12s", "n/a")
	}
	return fmt.Sprintf("%11.1f%%", e*100)
}

// csvCell renders a fractional error for CSV artifacts ("NaN" when
// undefined, which R/pandas parse natively).
func csvCell(e float64) string {
	if math.IsNaN(e) {
		return "NaN"
	}
	return fmt.Sprintf("%.4f", e)
}

// RunTable1 documents the simulated environment standing in for the
// paper's Table 1 testbed (4 × dual-core 3.4 GHz Xeon with Hyper-Threading,
// 1 MB L2 per core, 16 GB RAM).
func (c *Context) RunTable1() error {
	c.printf("Table 1 — environment (paper testbed → simulated substitute)\n")
	c.printf("  paper: 4 x Intel Xeon dual-core 3.4 GHz, Hyper-Threading, 1MB L2/core, 16 GB\n")
	c.printf("  here : discrete-event model, %d logical cores, thread overhead %.3f/thread,\n",
		c.Sys.Cores, c.Sys.ThreadOverhead)
	c.printf("         pool queue cap %d, DB soft limit %d, warm-up %.0fs, window %.0fs\n",
		c.Sys.QueueCap, c.Sys.DBSoftLimit, c.Sys.WarmupTime, c.Sys.MeasureTime)
	c.printf("  workload: %d configurations per sweep, %d-fold cross-validation\n\n",
		c.Sweep.Size(), c.Folds)
	return nil
}

// RunTable2 reproduces Table 2: the per-trial, per-indicator validation
// errors of the 5-fold cross-validation, with their averages, using the
// paper's harmonic-mean-of-relative-error metric.
func (c *Context) RunTable2() error {
	cv, err := c.CrossValidation()
	if err != nil {
		return err
	}

	short := shortNames(cv.TargetNames)
	c.printf("Table 2 — average prediction error for the validation set (%d-fold CV)\n", c.Folds)
	c.printf("%-8s", "Trial")
	for _, n := range short {
		c.printf(" %12s", n)
	}
	c.printf("\n")
	undefined := map[string]bool{}
	for i, tr := range cv.Trials {
		c.printf("%-8d", i+1)
		for j, e := range tr.Errors {
			c.printf(" %s", pct(e))
			if math.IsNaN(e) {
				undefined[cv.TargetNames[j]] = true
			}
		}
		c.printf("\n")
	}
	c.printf("%-8s", "Average")
	for _, e := range cv.Averages {
		c.printf(" %s", pct(e))
	}
	c.printf("\n")
	if overall := cv.OverallAccuracy(); math.IsNaN(overall) {
		c.printf("Overall average prediction accuracy: n/a — no indicator has a defined error\n\n")
	} else {
		c.printf("Overall average prediction accuracy: %.1f%% (paper reports ~95%%)\n\n", overall*100)
	}
	if len(undefined) > 0 {
		names := make([]string, 0, len(undefined))
		for n := range undefined {
			names = append(names, n)
		}
		sort.Strings(names)
		c.printf("note: HMRE undefined (NaN) for %s; those cells are skipped in the averages\n\n",
			strings.Join(names, ", "))
	}

	f, err := c.createArtifact("table2.csv")
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "trial,%s\n", strings.Join(cv.TargetNames, ","))
	for i, tr := range cv.Trials {
		fmt.Fprintf(f, "%d", i+1)
		for _, e := range tr.Errors {
			fmt.Fprintf(f, ",%s", csvCell(e))
		}
		fmt.Fprintln(f)
	}
	fmt.Fprintf(f, "average")
	for _, e := range cv.Averages {
		fmt.Fprintf(f, ",%s", csvCell(e))
	}
	fmt.Fprintln(f)
	return nil
}

// shortNames abbreviates indicator names for fixed-width tables.
func shortNames(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		n = strings.ReplaceAll(n, "dealer_", "d.")
		n = strings.ReplaceAll(n, "manufacturing", "mfg")
		if len(n) > 12 {
			n = n[:12]
		}
		out[i] = n
	}
	return out
}
