// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) against the simulated three-tier workload: Table 2
// (k-fold cross-validation errors), Figure 2 (sigmoid family), Figures 5/6
// (actual vs predicted for training and validation sets), Figures 4/7/8
// (parallel-slope, valley and hill response surfaces), plus the two
// claim-level experiments DESIGN.md calls out — the linear-baseline
// comparison (§1/§6) and the extrapolation limitation with the logarithmic
// network remedy (§5.3/§7).
//
// Each Run* method writes a human-readable report to the context's writer
// and machine-readable CSV artifacts into the output directory.
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"nnwc/internal/core"
	"nnwc/internal/obs"
	"nnwc/internal/sched"
	"nnwc/internal/threetier"
	"nnwc/internal/train"
	"nnwc/internal/workload"
)

// quickTrain is a reduced-epoch training budget for tests and benchmarks.
func quickTrain() *train.Config {
	tc := train.DefaultConfig()
	tc.MaxEpochs = 400
	return &tc
}

// Context carries the shared state of an experiment run: the sample
// campaign, the model configuration, deterministic seeds, and caches so
// that the expensive dataset collection and cross-validation happen once
// even when several experiments run back to back.
type Context struct {
	Out    io.Writer
	OutDir string

	Seed  uint64
	Sys   threetier.SystemParams
	Sweep threetier.SweepSpec
	Model core.Config
	Folds int

	// Workers bounds the parallelism of the experiment fan-outs: CV
	// folds, sweep cells, model families, surface probes (<= 0 means the
	// scheduler default). Seeds derive from task indices, so reports and
	// artifacts are bit-identical at every setting.
	Workers int

	// Trace receives structured run events from the experiments and the
	// model fits underneath them. nil disables tracing; results are
	// identical either way.
	Trace *obs.Trace

	dataset *workload.Dataset
	cv      *core.CVResult
	full    *core.NNModel
}

// New returns a Context with the experiment defaults: the full sweep, the
// paper-style MLP (one hidden layer, logistic activation), and 5-fold CV.
func New(out io.Writer, outDir string) *Context {
	return &Context{
		Out:    out,
		OutDir: outDir,
		Seed:   2006, // the paper's year; any constant works
		Sys:    threetier.DefaultSystemParams(),
		Sweep:  threetier.DefaultSweep(),
		Model: core.Config{
			Hidden: []int{16},
			Seed:   1,
		},
		Folds: 5,
	}
}

// NewQuick returns a Context scaled down for tests and benchmarks: a small
// sweep and short simulation windows. The statistics are noisier but every
// code path is identical.
func NewQuick(out io.Writer, outDir string) *Context {
	c := New(out, outDir)
	c.Sys.WarmupTime = 4
	c.Sys.MeasureTime = 16
	c.Sweep = threetier.SweepSpec{
		InjectionRates: []float64{480, 560},
		MfgThreads:     []int{8, 16},
		WebThreads:     []int{10, 14, 18, 22},
		DefaultThreads: []int{2, 6, 10},
		Replicates:     1,
	}
	c.Model.Train = quickTrain()
	return c
}

// Dataset collects (or returns the cached) sample set.
func (c *Context) Dataset() (*workload.Dataset, error) {
	if c.dataset == nil {
		ds, err := threetier.Collect(c.Sweep, c.Sys, c.Seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: collecting dataset: %w", err)
		}
		c.dataset = ds
	}
	return c.dataset, nil
}

// workers resolves the context's parallelism bound.
func (c *Context) workers() int { return sched.Workers(c.Workers) }

// CrossValidation runs (or returns the cached) k-fold CV with the folds
// trained concurrently.
func (c *Context) CrossValidation() (*core.CVResult, error) {
	if c.cv == nil {
		ds, err := c.Dataset()
		if err != nil {
			return nil, err
		}
		cfg := c.Model
		cfg.Trace = c.Trace
		cv, err := core.CrossValidateWorkers(ds, cfg, c.Folds, c.Seed+1, c.Workers)
		if err != nil {
			return nil, err
		}
		c.cv = cv
	}
	return c.cv, nil
}

// FullModel trains (or returns the cached) model on the entire dataset,
// the model the surface analyses use.
func (c *Context) FullModel() (*core.NNModel, error) {
	if c.full == nil {
		ds, err := c.Dataset()
		if err != nil {
			return nil, err
		}
		cfg := c.Model
		cfg.Trace = c.Trace
		m, err := core.Fit(ds, cfg)
		if err != nil {
			return nil, err
		}
		c.full = m
	}
	return c.full, nil
}

// createArtifact opens OutDir/name for writing, creating the directory as
// needed. Callers must close the returned file.
func (c *Context) createArtifact(name string) (*os.File, error) {
	if err := os.MkdirAll(c.OutDir, 0o755); err != nil {
		return nil, err
	}
	return os.Create(filepath.Join(c.OutDir, name))
}

func (c *Context) printf(format string, args ...any) {
	fmt.Fprintf(c.Out, format, args...)
}

// Runner names one experiment.
type Runner struct {
	ID   string
	Desc string
	Run  func(*Context) error
}

// All lists every experiment in presentation order.
func All() []Runner {
	return []Runner{
		{"table1", "Table 1: simulated environment summary", (*Context).RunTable1},
		{"fig2", "Figure 2: sigmoid activation family", (*Context).RunFig2},
		{"table2", "Table 2: 5-fold cross-validation errors", (*Context).RunTable2},
		{"fig5", "Figure 5: actual vs predicted, training set", (*Context).RunFig5},
		{"fig6", "Figure 6: actual vs predicted, validation set", (*Context).RunFig6},
		{"fig4", "Figure 4: parallel slopes surface", (*Context).RunFig4},
		{"fig7", "Figure 7: valley surface", (*Context).RunFig7},
		{"fig8", "Figure 8: hill surface", (*Context).RunFig8},
		{"baseline", "Linear/polynomial baseline comparison", (*Context).RunBaseline},
		{"extrapolation", "MLP extrapolation failure and LNN remedy", (*Context).RunExtrapolation},
		{"recommend", "Scoring-function configuration recommendation", (*Context).RunRecommend},
		{"sampling", "Sample-design efficiency (factorial vs random vs LHS)", (*Context).RunSampling},
		{"importance", "Permutation feature importance and partial dependence", (*Context).RunImportance},
		{"nodecount", "Automated hidden-node-count selection (§3.2)", (*Context).RunNodeCount},
		{"ablations", "§3 design-choice ablation report", (*Context).RunAblations},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}
