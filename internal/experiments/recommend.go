package experiments

import (
	"fmt"
	"math"

	"nnwc/internal/recommend"
	"nnwc/internal/threetier"
)

// RunRecommend exercises the §5.3 suggestion of "a system that recommends
// the best configuration according to a scoring function": it searches the
// thread-pool space (at the paper's injection rate 560) for the
// configuration maximizing predicted effective throughput subject to the
// workload's response-time constraints, then replays the recommendation in
// the simulator to verify the model did not hallucinate the optimum.
func (c *Context) RunRecommend() error {
	model, err := c.FullModel()
	if err != nil {
		return err
	}

	space := recommend.Space{
		// (injection rate, default, mfg, web); rate is pinned by a
		// degenerate range.
		Lo:      []float64{560, float64(minInt(c.Sweep.DefaultThreads)), float64(minInt(c.Sweep.MfgThreads)), float64(minInt(c.Sweep.WebThreads))},
		Hi:      []float64{560, float64(maxInt(c.Sweep.DefaultThreads)), float64(maxInt(c.Sweep.MfgThreads)), float64(maxInt(c.Sweep.WebThreads))},
		Integer: []bool{false, true, true, true},
	}
	// Maximize throughput subject to the workload's response-time
	// deadlines (in ms, matching the indicator units).
	bounds := []float64{140, 80, 60, 65, math.Inf(1)}
	scorer := recommend.SLAScore(indThroughput, bounds)

	res, err := recommend.Search(model, space, scorer, recommend.Options{Seed: c.Seed + 9})
	if err != nil {
		return err
	}

	best := res.Best
	c.printf("Recommendation — maximize effective throughput s.t. response-time SLAs at rate 560\n")
	c.printf("  recommended config: default=%g mfg=%g web=%g\n", best.X[featDefault], best.X[featMfg], best.X[featWeb])
	c.printf("  predicted: mfg=%.1fms pur=%.1fms man=%.1fms brw=%.1fms eff=%.1f tx/s\n",
		best.Y[0], best.Y[1], best.Y[2], best.Y[3], best.Y[4])

	cfg := threetier.Config{
		InjectionRate:  best.X[featRate],
		DefaultThreads: int(best.X[featDefault] + 0.5),
		MfgThreads:     int(best.X[featMfg] + 0.5),
		WebThreads:     int(best.X[featWeb] + 0.5),
	}
	m, err := threetier.Run(cfg, c.Sys, c.Seed+10)
	if err != nil {
		return err
	}
	ind := m.Indicators()
	c.printf("  simulated: mfg=%.1fms pur=%.1fms man=%.1fms brw=%.1fms eff=%.1f tx/s\n",
		ind[0], ind[1], ind[2], ind[3], ind[4])

	f, err := c.createArtifact("recommendation.csv")
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "rank,default,mfg,web,predicted_eff_tps,score")
	for i, cand := range res.Top {
		fmt.Fprintf(f, "%d,%g,%g,%g,%.2f,%.2f\n", i+1,
			cand.X[featDefault], cand.X[featMfg], cand.X[featWeb], cand.Y[indThroughput], cand.Score)
	}
	c.printf("\n")
	return nil
}
