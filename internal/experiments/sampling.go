package experiments

import (
	"fmt"

	"nnwc/internal/core"
	"nnwc/internal/doe"
	"nnwc/internal/sched"
	"nnwc/internal/threetier"
	"nnwc/internal/workload"
)

// RunSampling measures sample-collection efficiency across experiment
// designs: the full-factorial grids of the DOE-style prior work (§6), the
// paper's "rough mixture of data points" (uniform random), and Latin
// hypercube sampling. For each design and budget, samples are collected
// from the simulator, the paper's MLP is trained, and the model is scored
// on a common held-out probe set. Expected shape: at equal budgets the
// space-filling designs beat coarse factorial grids, and the MLP keeps
// working from any of them — the flexibility §6 claims over the
// linear/DOE pipeline.
func (c *Context) RunSampling() error {
	dims := []doe.Dimension{
		{Name: "injection_rate", Lo: 440, Hi: 640},
		{Name: "default_threads", Lo: 2, Hi: 24, Integer: true},
		{Name: "mfg_threads", Lo: 8, Hi: 24, Integer: true},
		{Name: "web_threads", Lo: 8, Hi: 32, Integer: true},
	}

	// Common probe set: an independent LHS so no design is evaluated on
	// its own points.
	probePts, err := doe.LatinHypercube{Seed: c.Seed + 500}.Points(40, len(dims))
	if err != nil {
		return err
	}
	probeDS, err := c.collectDesign(probePts, dims, c.Seed+501)
	if err != nil {
		return err
	}

	budgets := []int{32, 64, 128}
	designs := []doe.Design{
		doe.FullFactorial{Levels: 3}, // 81 points regardless of budget
		doe.UniformRandom{Seed: c.Seed + 510},
		doe.LatinHypercube{Seed: c.Seed + 511},
	}

	// Materialize the (design, budget) cells first — the factorial grid
	// ignores the budget and runs once — then fan the independent
	// collect+train+score runs out. Each cell's simulator seed depends
	// only on its budget and its training seed is fixed, so the table is
	// identical at any worker count.
	type job struct {
		design doe.Design
		budget int
	}
	var jobs []job
	for _, design := range designs {
		for _, budget := range budgets {
			if _, isFactorial := design.(doe.FullFactorial); isFactorial && budget != budgets[0] {
				continue // the grid ignores the budget; run it once
			}
			jobs = append(jobs, job{design, budget})
		}
	}
	type row struct {
		design  string
		budget  int
		samples int
		err     float64
	}
	rows, err := sched.Map(c.workers(), len(jobs), func(i int) (row, error) {
		j := jobs[i]
		pts, err := j.design.Points(j.budget, len(dims))
		if err != nil {
			return row{}, err
		}
		trainDS, err := c.collectDesign(pts, dims, c.Seed+600+uint64(j.budget))
		if err != nil {
			return row{}, err
		}
		cfg := c.Model
		cfg.Seed = c.Seed + 7
		model, err := core.Fit(trainDS, cfg)
		if err != nil {
			return row{}, err
		}
		ev, err := core.Evaluate(model, probeDS)
		if err != nil {
			return row{}, err
		}
		return row{j.design.Name(), j.budget, trainDS.Len(), ev.MeanHMRE()}, nil
	})
	if err != nil {
		return err
	}

	c.printf("Sampling-design comparison — validation error of the MLP on a common probe set\n")
	c.printf("%-18s %8s %10s %12s\n", "design", "budget", "samples", "probe err")
	for _, r := range rows {
		c.printf("%-18s %8d %10d %11.1f%%\n", r.design, r.budget, r.samples, r.err*100)
	}
	c.printf("(expected shape: space-filling designs reach lower error per sample than coarse grids)\n\n")

	f, err := c.createArtifact("sampling_designs.csv")
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "design,budget,samples,probe_error")
	for _, r := range rows {
		fmt.Fprintf(f, "%q,%d,%d,%.4f\n", r.design, r.budget, r.samples, r.err)
	}
	return nil
}

// collectDesign scales unit-cube points into configurations and simulates
// them.
func (c *Context) collectDesign(points [][]float64, dims []doe.Dimension, seed uint64) (*workload.Dataset, error) {
	scaled, err := doe.Scale(points, dims)
	if err != nil {
		return nil, err
	}
	configs := make([]threetier.Config, len(scaled))
	for i, row := range scaled {
		cfg, err := threetier.ConfigFromVector(row)
		if err != nil {
			return nil, err
		}
		configs[i] = cfg
	}
	return threetier.CollectConfigs(configs, 1, c.Sys, seed)
}
