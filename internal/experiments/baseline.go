package experiments

import (
	"fmt"

	"nnwc/internal/core"
	"nnwc/internal/linear"
	"nnwc/internal/nn"
	"nnwc/internal/nn/rbf"
	"nnwc/internal/obs"
	"nnwc/internal/poly"
	"nnwc/internal/preprocess"
	"nnwc/internal/rng"
	"nnwc/internal/sched"
	"nnwc/internal/stats"
	"nnwc/internal/workload"
)

// fitRBF trains the §2.1 alternative architecture on standardized inputs
// and outputs (the Gaussian units need comparable feature scales just as
// the MLP does).
func fitRBF(tr *workload.Dataset, seed uint64) (core.Predictor, error) {
	xScaler := preprocess.NewStandardizer()
	if err := xScaler.Fit(tr.Xs()); err != nil {
		return nil, err
	}
	yScaler := preprocess.NewStandardizer()
	if err := yScaler.Fit(tr.Ys()); err != nil {
		return nil, err
	}
	net, err := rbf.Fit(
		preprocess.TransformAll(xScaler, tr.Xs()),
		preprocess.TransformAll(yScaler, tr.Ys()),
		rbf.Config{Centers: tr.Len() / 4, WidthScale: 2, Lambda: 1e-6, Seed: seed})
	if err != nil {
		return nil, err
	}
	return scaledPredictor{x: xScaler, y: yScaler, inner: net}, nil
}

// scaledPredictor wraps a predictor trained in standardized space.
type scaledPredictor struct {
	x, y  preprocess.Scaler
	inner core.Predictor
}

// Predict implements core.Predictor.
func (s scaledPredictor) Predict(x []float64) []float64 {
	return s.y.Inverse(s.inner.Predict(s.x.Transform(x)))
}

// family is one model family competing in the baseline comparison.
type family struct {
	name string
	fit  func(train *workload.Dataset, seed uint64) (core.Predictor, error)
}

func (c *Context) families() []family {
	mlpCfg := c.Model
	lnnCfg := c.Model
	lnnCfg.HiddenActivation = nn.LogCompress{}
	return []family{
		{"linear (OLS)", func(tr *workload.Dataset, _ uint64) (core.Predictor, error) {
			return linear.Fit(tr.Xs(), tr.Ys(), linear.Options{})
		}},
		{"poly deg2+int", func(tr *workload.Dataset, _ uint64) (core.Predictor, error) {
			return poly.Fit(poly.Polynomial{Degree: 2, Interactions: true}, tr.Xs(), tr.Ys(), poly.Options{Lambda: 1e-4, Standardize: true})
		}},
		{"poly deg3+int", func(tr *workload.Dataset, _ uint64) (core.Predictor, error) {
			return poly.Fit(poly.Polynomial{Degree: 3, Interactions: true}, tr.Xs(), tr.Ys(), poly.Options{Lambda: 1e-4, Standardize: true})
		}},
		{"log features", func(tr *workload.Dataset, _ uint64) (core.Predictor, error) {
			return poly.Fit(poly.Logarithmic{}, tr.Xs(), tr.Ys(), poly.Options{Lambda: 1e-6, Standardize: false})
		}},
		{"RBF network", func(tr *workload.Dataset, seed uint64) (core.Predictor, error) {
			return fitRBF(tr, seed)
		}},
		{"MLP (paper)", func(tr *workload.Dataset, seed uint64) (core.Predictor, error) {
			cfg := mlpCfg
			cfg.Seed = seed
			return core.Fit(tr, cfg)
		}},
		{"LNN (Hines)", func(tr *workload.Dataset, seed uint64) (core.Predictor, error) {
			cfg := lnnCfg
			cfg.Seed = seed
			return core.Fit(tr, cfg)
		}},
	}
}

// RunBaseline quantifies the paper's core motivation (§1, §6): linear
// models from prior work against the non-linear MLP on identical k-fold
// splits. Expect the MLP to win overall, with the gap widest on the
// indicators shaped by valleys and hills.
func (c *Context) RunBaseline() error {
	ds, err := c.Dataset()
	if err != nil {
		return err
	}
	shuffled := ds.Clone()
	shuffled.Shuffle(rng.New(c.Seed + 1))
	folds, err := shuffled.KFold(c.Folds)
	if err != nil {
		return err
	}

	fams := c.families()
	// Every (fold, family) cell is an independent fit; fan the grid out.
	// Cell seeds depend only on the fold index, and the per-family
	// accumulation below runs serially in the historical (fold, family)
	// order, so the table is bit-identical at any worker count. Cell spans
	// buffer per cell index and replay in cell order for the same reason.
	fork := c.Trace.Fork(c.Folds * len(fams))
	cells, err := sched.MapWorker(c.workers(), c.Folds*len(fams), func(idx, w int) ([]float64, error) {
		f, fi := idx/len(fams), idx%len(fams)
		slot := fork.Slot(idx)
		span := slot.StartSpan("baseline-cell", idx, w)
		defer span.End()
		trainSet, valSet := shuffled.TrainValidation(folds, f)
		model, err := fams[fi].fit(trainSet, c.Seed+uint64(f))
		if err != nil {
			return nil, fmt.Errorf("experiments: baseline %s fold %d: %w", fams[fi].name, f+1, err)
		}
		ev, err := core.Evaluate(model, valSet)
		if err != nil {
			return nil, err
		}
		if slot.Enabled() {
			slot.Emit("baseline_cell",
				obs.Int("fold", f),
				obs.String("family", fams[fi].name),
				obs.Float("mean_hmre", stats.MeanSkipNaN(ev.HMRE)),
			)
		}
		return ev.HMRE, nil
	})
	fork.Join()
	if err != nil {
		return err
	}

	// errs[f][j] accumulates family f's mean error on indicator j.
	errs := make([][]float64, len(fams))
	for i := range errs {
		errs[i] = make([]float64, ds.NumTargets())
	}
	for f := 0; f < c.Folds; f++ {
		for fi := range fams {
			for j, e := range cells[f*len(fams)+fi] {
				errs[fi][j] += e / float64(c.Folds)
			}
		}
	}

	short := shortNames(ds.TargetNames)
	c.printf("Baseline comparison — %d-fold CV harmonic-mean relative error (lower is better)\n", c.Folds)
	c.printf("%-16s", "model")
	for _, n := range short {
		c.printf(" %12s", n)
	}
	c.printf(" %12s\n", "mean")
	for fi, fam := range fams {
		c.printf("%-16s", fam.name)
		for _, e := range errs[fi] {
			c.printf(" %11.1f%%", e*100)
		}
		c.printf(" %11.1f%%\n", stats.Mean(errs[fi])*100)
	}
	var mlpMean, linMean float64
	for fi, fam := range fams {
		switch fam.name {
		case "MLP (paper)":
			mlpMean = stats.Mean(errs[fi])
		case "linear (OLS)":
			linMean = stats.Mean(errs[fi])
		}
	}
	if mlpMean > 0 {
		c.printf("linear/MLP error ratio: %.1fx (the paper's motivation: linear models miss the non-linear structure)\n\n", linMean/mlpMean)
	}

	f, err := c.createArtifact("baseline.csv")
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "model")
	for _, n := range ds.TargetNames {
		fmt.Fprintf(f, ",%s", n)
	}
	fmt.Fprintln(f, ",mean")
	for fi, fam := range fams {
		fmt.Fprintf(f, "%q", fam.name)
		for _, e := range errs[fi] {
			fmt.Fprintf(f, ",%.4f", e)
		}
		fmt.Fprintf(f, ",%.4f\n", stats.Mean(errs[fi]))
	}
	return nil
}
