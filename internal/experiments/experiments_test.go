package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// quickCtx builds a scaled-down context writing into a temp dir.
func quickCtx(t *testing.T) (*Context, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	c := NewQuick(&buf, t.TempDir())
	// Shrink further: unit tests need speed, not statistics.
	c.Sys.WarmupTime = 2
	c.Sys.MeasureTime = 8
	return c, &buf
}

func TestDatasetCachedAndSchema(t *testing.T) {
	c, _ := quickCtx(t)
	ds, err := c.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != c.Sweep.Size() {
		t.Fatalf("%d samples, sweep size %d", ds.Len(), c.Sweep.Size())
	}
	again, err := c.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if again != ds {
		t.Fatal("Dataset not cached")
	}
}

func TestRunTable1And2(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment integration test")
	}
	c, buf := quickCtx(t)
	if err := c.RunTable1(); err != nil {
		t.Fatal(err)
	}
	if err := c.RunTable2(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table 2") || !strings.Contains(out, "Average") {
		t.Fatalf("table 2 report incomplete:\n%s", out)
	}
	if !strings.Contains(out, "prediction accuracy") {
		t.Fatal("headline accuracy missing")
	}
	// CSV artifact written.
	if _, err := os.Stat(filepath.Join(c.OutDir, "table2.csv")); err != nil {
		t.Fatal("table2.csv not written")
	}
	// CV cache reused by a second call.
	cv1, err := c.CrossValidation()
	if err != nil {
		t.Fatal(err)
	}
	cv2, err := c.CrossValidation()
	if err != nil {
		t.Fatal(err)
	}
	if cv1 != cv2 {
		t.Fatal("CrossValidation not cached")
	}
}

func TestRunFig2(t *testing.T) {
	c, buf := quickCtx(t)
	if err := c.RunFig2(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 2") {
		t.Fatal("fig2 report missing")
	}
	data, err := os.ReadFile(filepath.Join(c.OutDir, "fig2_sigmoid.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "x,alpha=0.5,alpha=1,alpha=2,alpha=5") {
		t.Fatalf("fig2 CSV header wrong: %s", strings.SplitN(string(data), "\n", 2)[0])
	}
	lines := strings.Count(string(data), "\n")
	if lines < 80 {
		t.Fatalf("fig2 CSV has only %d lines", lines)
	}
}

func TestRunFig5AndFig6(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment integration test")
	}
	c, buf := quickCtx(t)
	if err := c.RunFig5(); err != nil {
		t.Fatal(err)
	}
	if err := c.RunFig6(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 5", "Figure 6", "o=actual x=predicted"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in figure reports", want)
		}
	}
	// One CSV per indicator per figure.
	matches, err := filepath.Glob(filepath.Join(c.OutDir, "fig5_training_*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 5 {
		t.Fatalf("fig5 artifacts: %d", len(matches))
	}
}

func TestRunSurfaces(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment integration test")
	}
	c, buf := quickCtx(t)
	if err := c.RunFig4(); err != nil {
		t.Fatal(err)
	}
	if err := c.RunFig7(); err != nil {
		t.Fatal(err)
	}
	if err := c.RunFig8(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 4", "Figure 7", "Figure 8", "classification:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
	for _, f := range []string{"fig4_parallel_slopes.csv", "fig7_valley.csv", "fig8_hill.csv"} {
		if _, err := os.Stat(filepath.Join(c.OutDir, f)); err != nil {
			t.Fatalf("artifact %s missing", f)
		}
	}
}

func TestRunBaselineAndExtrapolation(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment integration test")
	}
	c, buf := quickCtx(t)
	if err := c.RunBaseline(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"linear (OLS)", "MLP (paper)", "LNN (Hines)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("baseline table missing %q", want)
		}
	}
}

func TestRunRecommend(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment integration test")
	}
	c, buf := quickCtx(t)
	if err := c.RunRecommend(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "recommended config") {
		t.Fatal("recommendation missing")
	}
	if _, err := os.Stat(filepath.Join(c.OutDir, "recommendation.csv")); err != nil {
		t.Fatal("recommendation.csv missing")
	}
}

func TestAllAndLookup(t *testing.T) {
	all := All()
	if len(all) < 10 {
		t.Fatalf("only %d experiments registered", len(all))
	}
	ids := map[string]bool{}
	for _, r := range all {
		if r.ID == "" || r.Desc == "" || r.Run == nil {
			t.Fatalf("incomplete runner %+v", r)
		}
		if ids[r.ID] {
			t.Fatalf("duplicate id %s", r.ID)
		}
		ids[r.ID] = true
	}
	for _, id := range []string{"table2", "fig4", "fig7", "fig8", "baseline", "extrapolation"} {
		if _, ok := Lookup(id); !ok {
			t.Fatalf("Lookup(%s) failed", id)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup accepted unknown id")
	}
}

func TestShortNames(t *testing.T) {
	in := []string{"manufacturing_rt", "dealer_purchase_rt", "effective_tps"}
	out := shortNames(in)
	for _, n := range out {
		if len(n) > 12 {
			t.Fatalf("name %q too long", n)
		}
	}
}

func TestSubsample(t *testing.T) {
	vs := []float64{1, 2, 3, 4, 5, 6, 7}
	got := subsample(vs, 3)
	if len(got) != 3 || got[0] != 1 || got[2] != 7 {
		t.Fatalf("subsample %v", got)
	}
	if len(subsample(vs, 10)) != 7 {
		t.Fatal("k>len should return all")
	}
}

func TestRunSampling(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment integration test")
	}
	c, buf := quickCtx(t)
	if err := c.RunSampling(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"factorial(3)", "uniform-random", "latin-hypercube"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sampling report missing %q", want)
		}
	}
	if _, err := os.Stat(filepath.Join(c.OutDir, "sampling_designs.csv")); err != nil {
		t.Fatal("sampling_designs.csv missing")
	}
}

func TestRunImportanceAndNodeCount(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment integration test")
	}
	c, buf := quickCtx(t)
	if err := c.RunImportance(); err != nil {
		t.Fatal(err)
	}
	if err := c.RunNodeCount(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Permutation feature importance", "partial dependence", "Hidden-node selection", "selected:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
	for _, f := range []string{"importance.csv", "nodecount.csv"} {
		if _, err := os.Stat(filepath.Join(c.OutDir, f)); err != nil {
			t.Fatalf("%s missing", f)
		}
	}
}

func TestRunAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment integration test")
	}
	c, buf := quickCtx(t)
	if err := c.RunAblations(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"standardize (§3.1)", "threshold (§3.3)", "optimizer", "ensemble"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation report missing %q", want)
		}
	}
	if _, err := os.Stat(filepath.Join(c.OutDir, "ablations.csv")); err != nil {
		t.Fatal("ablations.csv missing")
	}
}
