package experiments

import (
	"fmt"

	"nnwc/internal/core"
	"nnwc/internal/plot"
	"nnwc/internal/sched"
	"nnwc/internal/stats"
	"nnwc/internal/surface"
	"nnwc/internal/threetier"
)

// Feature indices in the paper's configuration tuple
// (injection rate, default queue, mfg queue, web queue).
const (
	featRate = iota
	featDefault
	featMfg
	featWeb
)

// Indicator indices in the paper's output tuple.
const (
	indMfgRT = iota
	indPurchaseRT
	indManageRT
	indBrowseRT
	indThroughput
)

// RunFig4 regenerates Figure 4 (parallel slopes): the manufacturing
// response time over the (default queue, web queue) plane at the paper's
// slice (560, x, 16, y). The default queue should be near-irrelevant while
// the web queue drives the indicator.
func (c *Context) RunFig4() error {
	return c.runSurface("Figure 4", "fig4_parallel_slopes", indMfgRT,
		"expected shape: parallel slopes — the default queue barely moves manufacturing response time")
}

// RunFig7 regenerates Figure 7 (valleys): the dealer purchase response
// time over the same slice; a trench of minima where both pools are
// adequately (but not excessively) provisioned.
func (c *Context) RunFig7() error {
	return c.runSurface("Figure 7", "fig7_valley", indPurchaseRT,
		"expected shape: valley — minima along an interior trench; staying in it needs both parameters moved together")
}

// RunFig8 regenerates Figure 8 (hills): effective throughput over the same
// slice; the optimum is an interior crest that one-at-a-time tuning misses.
func (c *Context) RunFig8() error {
	return c.runSurface("Figure 8", "fig8_hill", indThroughput,
		"expected shape: hill — throughput peaks at an interior (default, web) combination")
}

// sliceGrid builds the paper's (560, x, 16, y) slice over the trained
// region: X sweeps the default queue, Y the web queue.
func (c *Context) sliceGrid(output int) surface.Slice {
	defLo := float64(minInt(c.Sweep.DefaultThreads))
	defHi := float64(maxInt(c.Sweep.DefaultThreads))
	webLo := float64(minInt(c.Sweep.WebThreads))
	webHi := float64(maxInt(c.Sweep.WebThreads))
	return surface.Slice{
		Fixed:   []float64{560, 0, 16, 0},
		XIndex:  featDefault,
		YIndex:  featWeb,
		XValues: surface.Linspace(defLo, defHi, 12),
		YValues: surface.Linspace(webLo, webHi, 13),
		Output:  output,
	}
}

func (c *Context) runSurface(title, artifact string, output int, expectation string) error {
	model, err := c.FullModel()
	if err != nil {
		return err
	}
	sl := c.sliceGrid(output)
	grid, err := surface.EvaluateWorkers(model, sl, model.InputDim(), model.OutputDim(), c.Workers)
	if err != nil {
		return err
	}
	analysis := surface.Classify(grid)

	indicator := model.TargetNames[output]
	c.printf("%s — predicted %s over (default queue, web queue) at (rate=560, mfg=16)\n", title, indicator)
	hm := plot.HeatMap{
		Title:   fmt.Sprintf("%s: %s (x=default threads, y=web threads)", title, indicator),
		XLabel:  "default threads",
		YLabel:  "web",
		XValues: sl.XValues,
		YValues: sl.YValues,
		Z:       grid.Z,
	}
	if err := hm.Render(c.Out); err != nil {
		return err
	}
	lo, lx, ly := grid.Min()
	hi, hx, hy := grid.Max()
	c.printf("  min %.4g at (default=%.3g, web=%.3g); max %.4g at (default=%.3g, web=%.3g)\n",
		lo, lx, ly, hi, hx, hy)
	c.printf("  classification: %s (x-effect %.2f, y-effect %.2f)\n", analysis.Shape, analysis.XEffect, analysis.YEffect)
	c.printf("  advice: %s\n", analysis.Advice)
	c.printf("  %s\n", expectation)
	if analysis.Shape == surface.ShapeValley {
		// The §5.2 trench, stated the way the paper states it: the
		// coordinates the two parameters must trace together.
		path := surface.ExtremalPath(grid, true, false) // per web row, best default
		first, last := 0, len(path.X)-1
		c.printf("  valley floor runs from (default=%.3g, web=%.3g) to (default=%.3g, web=%.3g), depth %.4g→%.4g\n",
			path.X[first], path.Y[first], path.X[last], path.Y[last], path.Z[first], path.Z[last])
	}

	// Overlay the paper's "dots": ground truth from the simulator at a
	// coarse subgrid, to report how far the surface sits from reality.
	// Probe simulations run concurrently — each probe's seed derives from
	// its grid coordinates, not its schedule — and the predictions go
	// through one batch.
	type probe struct{ dv, wv float64 }
	var probeList []probe
	for _, dv := range subsample(sl.XValues, 3) {
		for _, wv := range subsample(sl.YValues, 3) {
			probeList = append(probeList, probe{dv, wv})
		}
	}
	actual, err := sched.Map(c.workers(), len(probeList), func(i int) (float64, error) {
		cfg := threetier.Config{
			InjectionRate:  sl.Fixed[featRate],
			DefaultThreads: int(probeList[i].dv + 0.5),
			MfgThreads:     int(sl.Fixed[featMfg] + 0.5),
			WebThreads:     int(probeList[i].wv + 0.5),
		}
		m, err := threetier.Run(cfg, c.Sys, c.Seed+uint64(probeList[i].dv*100+probeList[i].wv))
		if err != nil {
			return 0, err
		}
		return m.Indicators()[output], nil
	})
	if err != nil {
		return err
	}
	probes := make([][]float64, len(probeList))
	for i, p := range probeList {
		probes[i] = threetier.Config{
			InjectionRate:  sl.Fixed[featRate],
			DefaultThreads: int(p.dv + 0.5),
			MfgThreads:     int(sl.Fixed[featMfg] + 0.5),
			WebThreads:     int(p.wv + 0.5),
		}.Vector()
	}
	var predicted []float64
	for _, out := range core.PredictAll(model, probes) {
		predicted = append(predicted, out[output])
	}
	dev := stats.MAPE(actual, predicted)
	c.printf("  model vs fresh simulation at 9 probe points: mean |rel.err| %.1f%%\n\n", dev*100)

	f, err := c.createArtifact(artifact + ".csv")
	if err != nil {
		return err
	}
	defer f.Close()
	return plot.WriteSurfaceCSV(f, sl.XValues, sl.YValues, grid.Z)
}

// subsample picks k approximately evenly spaced values from vs.
func subsample(vs []float64, k int) []float64 {
	if k >= len(vs) {
		return vs
	}
	out := make([]float64, 0, k)
	for i := 0; i < k; i++ {
		idx := i * (len(vs) - 1) / (k - 1)
		out = append(out, vs[idx])
	}
	return out
}

func minInt(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxInt(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
