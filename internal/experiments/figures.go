package experiments

import (
	"fmt"

	"nnwc/internal/nn"
	"nnwc/internal/plot"
	"nnwc/internal/workload"
)

// RunFig2 regenerates Figure 2: the logistic sigmoid family over
// x ∈ [−10, 10] for several slope parameters, showing the approach to a
// hard limiter as |α| grows (§2.1).
func (c *Context) RunFig2() error {
	alphas := []float64{0.5, 1, 2, 5}
	xs := make([]float64, 81)
	for i := range xs {
		xs[i] = -10 + float64(i)*0.25
	}

	f, err := c.createArtifact("fig2_sigmoid.csv")
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "x")
	for _, a := range alphas {
		fmt.Fprintf(f, ",alpha=%g", a)
	}
	fmt.Fprintln(f)
	for _, x := range xs {
		fmt.Fprintf(f, "%g", x)
		for _, a := range alphas {
			fmt.Fprintf(f, ",%g", nn.Logistic{Alpha: a}.Eval(x))
		}
		fmt.Fprintln(f)
	}

	c.printf("Figure 2 — sigmoid 1/(1+exp(-αx)) on [-10,10]\n")
	for _, a := range alphas {
		act := nn.Logistic{Alpha: a}
		c.printf("  α=%-4g f(-10)=%.4f f(-1)=%.4f f(0)=%.4f f(1)=%.4f f(10)=%.4f\n",
			a, act.Eval(-10), act.Eval(-1), act.Eval(0), act.Eval(1), act.Eval(10))
	}
	c.printf("  (series written to fig2_sigmoid.csv; larger α → harder limiter)\n\n")
	return nil
}

// RunFig5 regenerates Figure 5: actual ('o') vs predicted ('x') values for
// the TRAINING set of cross-validation trial 1, one chart per indicator.
// The fit is deliberately loose (§3.3) — the predictions should track but
// not interpolate the training points exactly.
func (c *Context) RunFig5() error {
	return c.runFitFigure("Figure 5", "fig5_training", true)
}

// RunFig6 regenerates Figure 6: actual vs predicted for the VALIDATION set
// of the same trial — the unseen configurations.
func (c *Context) RunFig6() error {
	return c.runFitFigure("Figure 6", "fig6_validation", false)
}

func (c *Context) runFitFigure(title, artifact string, trainingSet bool) error {
	cv, err := c.CrossValidation()
	if err != nil {
		return err
	}
	trial := cv.Trials[0]
	var ds *workload.Dataset
	if trainingSet {
		ds = trial.Train
		c.printf("%s — actual (o) vs predicted (x), training set, trial 1 (%d samples)\n", title, ds.Len())
	} else {
		ds = trial.Val
		c.printf("%s — actual (o) vs predicted (x), validation set, trial 1 (%d samples)\n", title, ds.Len())
	}

	for j, name := range ds.TargetNames {
		actual := ds.TargetColumn(j)
		pred := make([]float64, ds.Len())
		for i, s := range ds.Samples {
			pred[i] = trial.Model.Predict(s.X)[j]
		}
		sc := plot.Scatter{
			Title:  fmt.Sprintf("%s — %s", title, name),
			YLabel: name,
			Actual: actual,
			Pred:   pred,
			Height: 12,
		}
		if err := sc.Render(c.Out); err != nil {
			return err
		}
		f, err := c.createArtifact(fmt.Sprintf("%s_%s.csv", artifact, name))
		if err != nil {
			return err
		}
		if err := plot.WriteSeriesCSV(f, actual, pred); err != nil {
			f.Close()
			return err
		}
		f.Close()
	}
	c.printf("\n")
	return nil
}
