package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// runTable2At runs the Table-2 cross-validation experiment at the given
// worker count and returns the printed report plus the CSV artifact.
func runTable2At(t *testing.T, workers int) (string, string) {
	t.Helper()
	var buf bytes.Buffer
	dir := t.TempDir()
	c := NewQuick(&buf, dir)
	c.Sys.WarmupTime = 2
	c.Sys.MeasureTime = 8
	c.Workers = workers
	if err := c.RunTable2(); err != nil {
		t.Fatal(err)
	}
	csv, err := os.ReadFile(filepath.Join(dir, "table2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	return buf.String(), string(csv)
}

// The experiment harness must print and persist byte-identical results at
// every worker count: fold seeds derive from fold indices and reductions
// replay in fold order, so parallelism never leaks into the artifacts.
func TestRunTable2BitIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment integration test")
	}
	refOut, refCSV := runTable2At(t, 1)
	for _, w := range []int{2, 8} {
		out, csv := runTable2At(t, w)
		if out != refOut {
			t.Fatalf("workers=%d report differs from workers=1:\n--- workers=%d ---\n%s\n--- workers=1 ---\n%s", w, w, out, refOut)
		}
		if csv != refCSV {
			t.Fatalf("workers=%d table2.csv differs from workers=1", w)
		}
	}
}
