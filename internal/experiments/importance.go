package experiments

import (
	"fmt"

	"nnwc/internal/core"
	"nnwc/internal/sensitivity"
	"nnwc/internal/surface"
)

// RunImportance addresses the §5.3 limitation head on: "it is hard to
// perform a quantitative analysis for a complete understanding of the
// individual contribution of a particular feature to the output". The
// model-agnostic permutation importance quantifies each configuration
// parameter's contribution to each indicator, and partial-dependence
// profiles expose the marginal shapes — recovering some of the analytic
// power the paper traded away, without giving up the MLP's generality.
func (c *Context) RunImportance() error {
	model, err := c.FullModel()
	if err != nil {
		return err
	}
	ds, err := c.Dataset()
	if err != nil {
		return err
	}
	im, err := sensitivity.PermutationImportance(model, ds, sensitivity.Options{Seed: c.Seed + 40, Workers: c.Workers})
	if err != nil {
		return err
	}

	short := shortNames(im.TargetNames)
	c.printf("Permutation feature importance — relative RMSE increase when a parameter is shuffled\n")
	c.printf("%-18s", "feature")
	for _, n := range short {
		c.printf(" %12s", n)
	}
	c.printf("\n")
	for i, fname := range im.FeatureNames {
		c.printf("%-18s", fname)
		for _, v := range im.Scores[i] {
			c.printf(" %12.2f", v)
		}
		c.printf("\n")
	}
	c.printf("(reading guide: the web queue should dominate the dealer response times;\n")
	c.printf(" the default queue should matter for purchase/manage but not manufacturing — Figure 4's parallel slopes)\n")

	// Partial dependence of the headline pair: throughput vs web threads.
	grid := surface.Linspace(float64(minInt(c.Sweep.WebThreads)), float64(maxInt(c.Sweep.WebThreads)), 9)
	prof, err := sensitivity.PartialDependence(model, ds, featWeb, indThroughput, grid)
	if err != nil {
		return err
	}
	c.printf("partial dependence of %s on %s:\n ", prof.Target, prof.Feature)
	for gi := range prof.X {
		c.printf(" %g→%.0f", prof.X[gi], prof.Y[gi])
	}
	c.printf("\n\n")

	f, err := c.createArtifact("importance.csv")
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "feature")
	for _, n := range im.TargetNames {
		fmt.Fprintf(f, ",%s", n)
	}
	fmt.Fprintln(f)
	for i, fname := range im.FeatureNames {
		fmt.Fprintf(f, "%s", fname)
		for _, v := range im.Scores[i] {
			fmt.Fprintf(f, ",%.4f", v)
		}
		fmt.Fprintln(f)
	}
	return nil
}

// RunNodeCount automates the paper's §3.2 hand-tuning of the hidden node
// count: candidate topologies are scored by k-fold cross-validation.
func (c *Context) RunNodeCount() error {
	ds, err := c.Dataset()
	if err != nil {
		return err
	}
	candidates := [][]int{{4}, {8}, {16}, {32}, {16, 8}}
	// Node-count selection retrains candidates×folds models; reuse the
	// context's training budget.
	sel, err := core.SelectNodeCount(ds, c.Model, candidates, c.Folds, c.Seed+41)
	if err != nil {
		return err
	}
	c.printf("Hidden-node selection (§3.2) — %d-fold CV error per topology\n", c.Folds)
	c.printf("%-12s %10s %12s\n", "hidden", "params", "CV error")
	for _, cand := range sel.Candidates {
		c.printf("%-12s %10d %11.1f%%\n", fmt.Sprint(cand.Hidden), cand.Params, cand.Error*100)
	}
	c.printf("selected: %v (error %.1f%%, %d parameters)\n\n",
		sel.Best.Hidden, sel.Best.Error*100, sel.Best.Params)

	f, err := c.createArtifact("nodecount.csv")
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "hidden,params,cv_error")
	for _, cand := range sel.Candidates {
		fmt.Fprintf(f, "%q,%d,%.4f\n", fmt.Sprint(cand.Hidden), cand.Params, cand.Error)
	}
	return nil
}
