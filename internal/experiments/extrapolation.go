package experiments

import (
	"fmt"

	"nnwc/internal/core"
	"nnwc/internal/queueing"
	"nnwc/internal/sched"
	"nnwc/internal/threetier"
	"nnwc/internal/workload"
)

// RunExtrapolation demonstrates the §5.3 limitation — "neural network
// models cannot be used for extrapolation ... prediction accuracy of MLPs
// drop rapidly outside the range of training data" — and the §7/[23]
// remedy, the logarithmic neural network.
//
// Part A uses a controlled analytic target (the M/M/c mean response time
// from the queueing substrate) so the ground truth outside the training
// range is exact. Part B repeats the test on the three-tier workload by
// holding out the highest injection rates.
func (c *Context) RunExtrapolation() error {
	if err := c.extrapolationAnalytic(); err != nil {
		return err
	}
	return c.extrapolationWorkload()
}

func (c *Context) extrapolationAnalytic() error {
	const (
		mu      = 30.0 // per-server service rate
		servers = 16
	)
	rt := func(lambda float64) (float64, error) {
		w, err := queueing.MMC{Lambda: lambda, Mu: mu, C: servers}.MeanResponseTime()
		return w * 1000, err // milliseconds
	}

	build := func(lambdas []float64) (*workload.Dataset, error) {
		ds := workload.NewDataset([]string{"lambda"}, []string{"response_ms"})
		for _, l := range lambdas {
			v, err := rt(l)
			if err != nil {
				return nil, err
			}
			ds.MustAppend(workload.Sample{X: []float64{l}, Y: []float64{v}})
		}
		return ds, nil
	}

	var trainL, testL []float64
	for l := 100.0; l <= 380; l += 10 {
		trainL = append(trainL, l)
	}
	for l := 400.0; l <= 450; l += 10 {
		testL = append(testL, l)
	}
	trainDS, err := build(trainL)
	if err != nil {
		return err
	}
	testDS, err := build(testL)
	if err != nil {
		return err
	}

	c.printf("Extrapolation A — analytic M/M/%d response time (train λ∈[100,380], test λ∈[400,450])\n", 16)
	if err := c.extrapolationTable(trainDS, testDS, "extrapolation_analytic.csv"); err != nil {
		return err
	}
	return nil
}

func (c *Context) extrapolationWorkload() error {
	// Every thread count takes at least two levels so the OLS baseline's
	// design matrix keeps full rank.
	spec := threetier.SweepSpec{
		InjectionRates: []float64{400, 440, 480, 520, 560},
		MfgThreads:     []int{12, 16},
		WebThreads:     []int{16, 20},
		DefaultThreads: []int{6, 10},
		Replicates:     1,
	}
	testSpec := spec
	testSpec.InjectionRates = []float64{600, 640}

	trainDS, err := threetier.Collect(spec, c.Sys, c.Seed+77)
	if err != nil {
		return err
	}
	testDS, err := threetier.Collect(testSpec, c.Sys, c.Seed+78)
	if err != nil {
		return err
	}
	c.printf("Extrapolation B — three-tier workload (train rate∈[400,560], test rate∈{600,640})\n")
	return c.extrapolationTable(trainDS, testDS, "extrapolation_workload.csv")
}

// extrapolationTable fits every family on trainDS and reports in-range
// (trainDS) vs out-of-range (testDS) error. Families fit concurrently;
// printing replays the results in family order, failures first, exactly
// as the serial loop emitted them.
func (c *Context) extrapolationTable(trainDS, testDS *workload.Dataset, artifact string) error {
	type rowOut struct {
		name    string
		failed  bool
		in, out float64
	}
	fams := c.families()
	results, err := sched.Map(c.workers(), len(fams), func(i int) (rowOut, error) {
		model, err := fams[i].fit(trainDS, c.Seed+5)
		if err != nil {
			// Some families cannot fit tiny datasets (e.g. poly3 on a
			// single feature with few rows); report and continue.
			return rowOut{name: fams[i].name, failed: true}, nil
		}
		evIn, err := core.Evaluate(model, trainDS)
		if err != nil {
			return rowOut{}, err
		}
		evOut, err := core.Evaluate(model, testDS)
		if err != nil {
			return rowOut{}, err
		}
		return rowOut{name: fams[i].name, in: evIn.MeanHMRE(), out: evOut.MeanHMRE()}, nil
	})
	if err != nil {
		return err
	}

	c.printf("%-16s %14s %14s %8s\n", "model", "in-range err", "out-range err", "ratio")
	var rows []rowOut
	for _, r := range results {
		if r.failed {
			c.printf("%-16s %14s\n", r.name, "fit failed")
			continue
		}
		rows = append(rows, r)
	}
	for _, r := range rows {
		ratio := 0.0
		if r.in > 0 {
			ratio = r.out / r.in
		}
		c.printf("%-16s %13.1f%% %13.1f%% %7.1fx\n", r.name, r.in*100, r.out*100, ratio)
	}
	c.printf("(expected shape: every model degrades out of range; the sigmoid MLP degrades hardest, the logarithmic variants most gracefully)\n\n")

	f, err := c.createArtifact(artifact)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "model,in_range_error,out_range_error")
	for _, r := range rows {
		fmt.Fprintf(f, "%q,%.4f,%.4f\n", r.name, r.in, r.out)
	}
	return nil
}
