package experiments

import (
	"fmt"

	"nnwc/internal/core"
	"nnwc/internal/rng"
	"nnwc/internal/sched"
	"nnwc/internal/stats"
	"nnwc/internal/train"
)

// RunAblations quantifies the §3 design choices as a report (the benchmark
// harness measures the same axes with timing; this driver gives the
// quality numbers in one screen): standardization on/off, the loose-fit
// threshold, optimizer choice, joint-vs-split networks, weight decay, and
// ensemble size. Every variant trains on the same 80/20 split of the
// shared dataset.
func (c *Context) RunAblations() error {
	ds, err := c.Dataset()
	if err != nil {
		return err
	}
	shuffled := ds.Clone()
	shuffled.Shuffle(rng.New(c.Seed + 3))
	trainSet, valSet := shuffled.Split(0.8)

	score := func(cfg core.Config) (float64, error) {
		model, err := core.Fit(trainSet, cfg)
		if err != nil {
			return 0, err
		}
		ev, err := core.Evaluate(model, valSet)
		if err != nil {
			return 0, err
		}
		return stats.MeanSkipNaN(ev.HMRE), nil
	}
	base := func() core.Config {
		cfg := c.Model
		cfg.Seed = c.Seed + 4
		return cfg
	}
	tweak := func(mod func(*train.Config)) core.Config {
		cfg := base()
		tc := train.DefaultConfig()
		if cfg.Train != nil {
			tc = *cfg.Train
		}
		mod(&tc)
		cfg.Train = &tc
		return cfg
	}

	type row struct {
		axis, variant string
		cfg           core.Config
	}
	off := false
	rows := []row{
		{"standardize (§3.1)", "on (paper)", base()},
		{"standardize (§3.1)", "off", func() core.Config {
			cfg := base()
			cfg.StandardizeInputs = &off
			cfg.StandardizeOutputs = core.StandardizeNever
			return cfg
		}()},
		{"threshold (§3.3)", "loose 1e-2", tweak(func(t *train.Config) { t.TargetLoss = 1e-2 })},
		{"threshold (§3.3)", "paper 1e-4", tweak(func(t *train.Config) { t.TargetLoss = 1e-4 })},
		{"threshold (§3.3)", "tight 1e-7", tweak(func(t *train.Config) { t.TargetLoss = 1e-7 })},
		{"weight decay", "1e-4", tweak(func(t *train.Config) { t.TargetLoss = 0; t.WeightDecay = 1e-4 })},
		{"optimizer", "rprop (default)", tweak(func(t *train.Config) {})},
		{"optimizer", "sgd online", tweak(func(t *train.Config) {
			t.Optimizer = &train.SGD{LR: 0.01}
			t.Mode = train.Online
		})},
		{"optimizer", "momentum online", tweak(func(t *train.Config) {
			t.Optimizer = &train.Momentum{LR: 0.01, Mu: 0.9}
			t.Mode = train.Online
		})},
		{"optimizer", "adam batch", tweak(func(t *train.Config) { t.Optimizer = train.NewAdam(0.01) })},
		{"hidden nodes (§3.2)", "4", func() core.Config { cfg := base(); cfg.Hidden = []int{4}; return cfg }()},
		{"hidden nodes (§3.2)", "16 (paper-scale)", base()},
		{"hidden nodes (§3.2)", "32", func() core.Config { cfg := base(); cfg.Hidden = []int{32}; return cfg }()},
	}

	// Every variant trains independently; fan them out and report in row
	// order. Seeds are fixed per row up front, so the table is identical
	// at any worker count.
	scores, err := sched.Map(c.workers(), len(rows), func(i int) (float64, error) {
		e, err := score(rows[i].cfg)
		if err != nil {
			return 0, fmt.Errorf("experiments: ablation %s/%s: %w", rows[i].axis, rows[i].variant, err)
		}
		return e, nil
	})
	if err != nil {
		return err
	}
	c.printf("Ablations — validation error (mean HMRE) on a fixed 80/20 split\n")
	c.printf("%-22s %-18s %10s\n", "axis", "variant", "error")
	artifact := [][3]string{}
	for i, r := range rows {
		c.printf("%-22s %-18s %9.1f%%\n", r.axis, r.variant, scores[i]*100)
		artifact = append(artifact, [3]string{r.axis, r.variant, fmt.Sprintf("%.4f", scores[i])})
	}

	// Ensemble-size axis uses the ensemble API rather than plain Fit; the
	// members train concurrently inside FitEnsembleWorkers.
	for _, n := range []int{1, 3, 5} {
		ens, err := core.FitEnsembleWorkers(trainSet, base(), n, c.Workers)
		if err != nil {
			return err
		}
		ev, err := core.Evaluate(ens, valSet)
		if err != nil {
			return err
		}
		e := stats.MeanSkipNaN(ev.HMRE)
		variant := fmt.Sprintf("%d member(s)", n)
		c.printf("%-22s %-18s %9.1f%%\n", "ensemble", variant, e*100)
		artifact = append(artifact, [3]string{"ensemble", variant, fmt.Sprintf("%.4f", e)})
	}
	c.printf("\n")

	f, err := c.createArtifact("ablations.csv")
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "axis,variant,validation_error")
	for _, r := range artifact {
		fmt.Fprintf(f, "%q,%q,%s\n", r[0], r[1], r[2])
	}
	return nil
}
