package doe

import (
	"math"
	"testing"
	"testing/quick"
)

func inUnitCube(points [][]float64) bool {
	for _, p := range points {
		for _, v := range p {
			if v < 0 || v >= 1 {
				return false
			}
		}
	}
	return true
}

func TestFullFactorialCountAndCoverage(t *testing.T) {
	pts, err := FullFactorial{Levels: 3}.Points(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 9 {
		t.Fatalf("%d points, want 9", len(pts))
	}
	if !inUnitCube(pts) {
		t.Fatal("points outside [0,1)")
	}
	// Each dimension should take exactly 3 distinct values.
	for j := 0; j < 2; j++ {
		vals := map[float64]bool{}
		for _, p := range pts {
			vals[p[j]] = true
		}
		if len(vals) != 3 {
			t.Fatalf("dimension %d has %d levels", j, len(vals))
		}
	}
}

func TestFullFactorialErrors(t *testing.T) {
	if _, err := (FullFactorial{Levels: 1}).Points(0, 2); err == nil {
		t.Fatal("1 level accepted")
	}
	if _, err := (FullFactorial{Levels: 2}).Points(0, 0); err == nil {
		t.Fatal("0 dims accepted")
	}
	if _, err := (FullFactorial{Levels: 10}).Points(0, 12); err == nil {
		t.Fatal("10^12 grid accepted")
	}
}

func TestUniformRandom(t *testing.T) {
	pts, err := UniformRandom{Seed: 1}.Points(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 100 || len(pts[0]) != 3 {
		t.Fatal("shape wrong")
	}
	if !inUnitCube(pts) {
		t.Fatal("points outside [0,1)")
	}
	again, err := UniformRandom{Seed: 1}.Points(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pts[50][1] != again[50][1] {
		t.Fatal("not deterministic")
	}
	if _, err := (UniformRandom{}).Points(0, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestLatinHypercubeStratification(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		n := 16
		pts, err := LatinHypercube{Seed: seed}.Points(n, 4)
		if err != nil || !inUnitCube(pts) {
			return false
		}
		// Every dimension: each of n bins hit exactly once.
		for j := 0; j < 4; j++ {
			bins := make([]int, n)
			for _, p := range pts {
				bins[int(p[j]*float64(n))]++
			}
			for _, c := range bins {
				if c != 1 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestLatinHypercubeCentered(t *testing.T) {
	pts, err := LatinHypercube{Seed: 3, Centered: true}.Points(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := map[float64]bool{0.125: true, 0.375: true, 0.625: true, 0.875: true}
	for _, p := range pts {
		if !want[p[0]] {
			t.Fatalf("centered point %v not at a bin centre", p[0])
		}
	}
}

func TestLHSBeatsRandomOnDiscrepancy(t *testing.T) {
	// The reason LHS exists: better uniformity at the same budget. Use a
	// few seeds to avoid a fluke.
	var lhsSum, rndSum float64
	for seed := uint64(0); seed < 5; seed++ {
		lhs, err := LatinHypercube{Seed: seed}.Points(32, 3)
		if err != nil {
			t.Fatal(err)
		}
		rnd, err := UniformRandom{Seed: seed}.Points(32, 3)
		if err != nil {
			t.Fatal(err)
		}
		dl, err := Discrepancy(lhs)
		if err != nil {
			t.Fatal(err)
		}
		dr, err := Discrepancy(rnd)
		if err != nil {
			t.Fatal(err)
		}
		lhsSum += dl
		rndSum += dr
	}
	if lhsSum >= rndSum {
		t.Fatalf("LHS discrepancy %v not below random %v", lhsSum/5, rndSum/5)
	}
}

func TestScale(t *testing.T) {
	pts := [][]float64{{0, 0.5}, {0.999999, 0.25}}
	dims := []Dimension{
		{Name: "rate", Lo: 400, Hi: 600},
		{Name: "threads", Lo: 2, Hi: 10, Integer: true},
	}
	out, err := Scale(pts, dims)
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != 400 || math.Abs(out[1][0]-600) > 0.01 {
		t.Fatalf("continuous scaling wrong: %v", out)
	}
	if out[0][1] != 6 || out[1][1] != 4 {
		t.Fatalf("integer scaling wrong: %v", out)
	}
	for _, row := range out {
		if row[1] != math.Round(row[1]) {
			t.Fatal("integer dim not integral")
		}
	}
}

func TestScaleErrors(t *testing.T) {
	if _, err := Scale([][]float64{{0.5}}, nil); err == nil {
		t.Fatal("no dims accepted")
	}
	if _, err := Scale([][]float64{{0.5, 0.5}}, []Dimension{{Lo: 0, Hi: 1}}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := Scale([][]float64{{0.5}}, []Dimension{{Lo: 1, Hi: 0}}); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestDiscrepancyKnownOrdering(t *testing.T) {
	// A clustered design must have higher discrepancy than a spread one.
	clustered := [][]float64{{0.1, 0.1}, {0.11, 0.1}, {0.1, 0.11}, {0.12, 0.12}}
	spread := [][]float64{{0.125, 0.125}, {0.375, 0.625}, {0.625, 0.375}, {0.875, 0.875}}
	dc, err := Discrepancy(clustered)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Discrepancy(spread)
	if err != nil {
		t.Fatal(err)
	}
	if dc <= ds {
		t.Fatalf("clustered %v not worse than spread %v", dc, ds)
	}
	if _, err := Discrepancy(nil); err == nil {
		t.Fatal("empty points accepted")
	}
}

func TestDesignNames(t *testing.T) {
	for _, d := range []Design{FullFactorial{Levels: 3}, UniformRandom{}, LatinHypercube{}} {
		if d.Name() == "" {
			t.Fatal("empty design name")
		}
	}
}

func TestPlackettBurmanOrthogonality(t *testing.T) {
	for _, d := range []int{3, 7, 11, 15, 19} {
		pts, err := PlackettBurman{}.Points(0, d)
		if err != nil {
			t.Fatal(err)
		}
		if !inUnitCube(pts) {
			t.Fatal("PB points outside [0,1)")
		}
		n := len(pts)
		// Recode to ±1.
		code := func(v float64) float64 {
			if v > 0.5 {
				return 1
			}
			return -1
		}
		// Each column balanced: sum = -1 (cyclic rows sum to +1... the
		// all-low row tips it); exact balance property: each column has
		// runs/2 highs.
		for j := 0; j < d; j++ {
			highs := 0
			for i := 0; i < n; i++ {
				if code(pts[i][j]) > 0 {
					highs++
				}
			}
			if highs != n/2 {
				t.Fatalf("d=%d: column %d has %d highs of %d runs", d, j, highs, n)
			}
		}
		// Pairwise orthogonality of the ±1 columns.
		for a := 0; a < d; a++ {
			for b := a + 1; b < d; b++ {
				var dot float64
				for i := 0; i < n; i++ {
					dot += code(pts[i][a]) * code(pts[i][b])
				}
				if dot != 0 {
					t.Fatalf("d=%d: columns %d,%d not orthogonal (dot %v)", d, a, b, dot)
				}
			}
		}
	}
}

func TestPlackettBurmanErrors(t *testing.T) {
	if _, err := (PlackettBurman{}).Points(0, 0); err == nil {
		t.Fatal("d=0 accepted")
	}
	if _, err := (PlackettBurman{}).Points(0, 20); err == nil {
		t.Fatal("d=20 accepted")
	}
}
