// Package doe implements Design-of-Experiments sample planners. The prior
// work the paper compares against ([2, 20, 21], §6) trained linear models
// "in the Design of Experiments (DOE) approach" with carefully designed
// runs; the paper's own method instead consumes "a rough mixture of data
// points". This package provides both styles so the sample-efficiency
// trade-off can be measured: full and fractional factorial grids,
// uniform-random designs, and Latin hypercube sampling.
//
// A Design is an abstract plan over the unit cube [0,1)^d; Scale maps it
// onto real parameter ranges (optionally snapping to integers), ready to
// feed the three-tier simulator or any other sample collector.
package doe

import (
	"errors"
	"fmt"
	"math"

	"nnwc/internal/rng"
)

// Design generates points in the unit cube [0,1)^d.
type Design interface {
	// Points returns n points of dimensionality d.
	Points(n, d int) ([][]float64, error)
	// Name identifies the design in reports.
	Name() string
}

// FullFactorial lays an evenly spaced grid with Levels points per
// dimension. Points ignores the requested n and returns Levels^d points —
// the classical DOE grid; the error grows combinatorially with d, which is
// exactly the weakness the paper's rough-mixture approach sidesteps.
type FullFactorial struct {
	Levels int
}

// Points implements Design.
func (f FullFactorial) Points(_, d int) ([][]float64, error) {
	if f.Levels < 2 {
		return nil, errors.New("doe: full factorial needs >= 2 levels")
	}
	if d < 1 {
		return nil, errors.New("doe: dimension must be positive")
	}
	total := 1
	for i := 0; i < d; i++ {
		total *= f.Levels
		if total > 1<<20 {
			return nil, fmt.Errorf("doe: %d^%d factorial is too large", f.Levels, d)
		}
	}
	out := make([][]float64, 0, total)
	idx := make([]int, d)
	for {
		p := make([]float64, d)
		for j, lv := range idx {
			p[j] = float64(lv) / float64(f.Levels-1)
			// Keep points in [0,1): shrink the top level marginally so
			// Scale's integer snapping still lands on the max value.
			if p[j] >= 1 {
				p[j] = 1 - 1e-12
			}
		}
		out = append(out, p)
		j := 0
		for ; j < d; j++ {
			idx[j]++
			if idx[j] < f.Levels {
				break
			}
			idx[j] = 0
		}
		if j == d {
			break
		}
	}
	return out, nil
}

// Name implements Design.
func (f FullFactorial) Name() string { return fmt.Sprintf("factorial(%d)", f.Levels) }

// UniformRandom scatters n points i.i.d. uniformly — the paper's "rough
// mixture of data points".
type UniformRandom struct {
	Seed uint64
}

// Points implements Design.
func (u UniformRandom) Points(n, d int) ([][]float64, error) {
	if n < 1 || d < 1 {
		return nil, errors.New("doe: n and d must be positive")
	}
	src := rng.New(u.Seed)
	out := make([][]float64, n)
	for i := range out {
		p := make([]float64, d)
		for j := range p {
			p[j] = src.Float64()
		}
		out[i] = p
	}
	return out, nil
}

// Name implements Design.
func (u UniformRandom) Name() string { return "uniform-random" }

// LatinHypercube produces n points whose projection onto every dimension
// hits each of n equal bins exactly once — far better space coverage than
// uniform random at the same budget.
type LatinHypercube struct {
	Seed uint64
	// Centered places points at bin centres instead of jittering within
	// the bin.
	Centered bool
}

// Points implements Design.
func (l LatinHypercube) Points(n, d int) ([][]float64, error) {
	if n < 1 || d < 1 {
		return nil, errors.New("doe: n and d must be positive")
	}
	src := rng.New(l.Seed)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, d)
	}
	for j := 0; j < d; j++ {
		perm := src.Perm(n)
		for i := 0; i < n; i++ {
			offset := 0.5
			if !l.Centered {
				offset = src.Float64()
			}
			out[i][j] = (float64(perm[i]) + offset) / float64(n)
		}
	}
	return out, nil
}

// Name implements Design.
func (l LatinHypercube) Name() string { return "latin-hypercube" }

// Dimension describes one real parameter's range for Scale.
type Dimension struct {
	Name    string
	Lo, Hi  float64
	Integer bool // snap scaled values to whole numbers
}

// Scale maps unit-cube points onto the given parameter ranges.
func Scale(points [][]float64, dims []Dimension) ([][]float64, error) {
	if len(dims) == 0 {
		return nil, errors.New("doe: no dimensions")
	}
	for _, dim := range dims {
		if dim.Hi < dim.Lo {
			return nil, fmt.Errorf("doe: dimension %q has Hi < Lo", dim.Name)
		}
	}
	out := make([][]float64, len(points))
	for i, p := range points {
		if len(p) != len(dims) {
			return nil, fmt.Errorf("doe: point %d has %d coordinates, want %d", i, len(p), len(dims))
		}
		row := make([]float64, len(dims))
		for j, dim := range dims {
			v := dim.Lo + p[j]*(dim.Hi-dim.Lo)
			if dim.Integer {
				v = math.Round(v)
				if v < dim.Lo {
					v = math.Ceil(dim.Lo)
				}
				if v > dim.Hi {
					v = math.Floor(dim.Hi)
				}
			}
			row[j] = v
		}
		out[i] = row
	}
	return out, nil
}

// Discrepancy estimates how uniformly points cover the unit cube using the
// centred L2-discrepancy (lower is more uniform). It is the standard
// figure of merit for comparing designs.
func Discrepancy(points [][]float64) (float64, error) {
	n := len(points)
	if n == 0 {
		return 0, errors.New("doe: no points")
	}
	d := len(points[0])
	if d == 0 {
		return 0, errors.New("doe: zero-dimensional points")
	}
	for _, p := range points {
		if len(p) != d {
			return 0, errors.New("doe: ragged points")
		}
	}
	// Centred L2 discrepancy (Hickernell 1998).
	term1 := math.Pow(13.0/12.0, float64(d))
	var sum2 float64
	for _, x := range points {
		prod := 1.0
		for j := 0; j < d; j++ {
			a := math.Abs(x[j] - 0.5)
			prod *= 1 + 0.5*a - 0.5*a*a
		}
		sum2 += prod
	}
	var sum3 float64
	for _, x := range points {
		for _, y := range points {
			prod := 1.0
			for j := 0; j < d; j++ {
				ax := math.Abs(x[j] - 0.5)
				ay := math.Abs(y[j] - 0.5)
				prod *= 1 + 0.5*ax + 0.5*ay - 0.5*math.Abs(x[j]-y[j])
			}
			sum3 += prod
		}
	}
	nf := float64(n)
	sq := term1 - 2/nf*sum2 + 1/(nf*nf)*sum3
	if sq < 0 {
		sq = 0
	}
	return math.Sqrt(sq), nil
}

// PlackettBurman is the classic two-level screening design: N runs screen
// up to N−1 factors with all main effects mutually orthogonal, at a
// fraction of a full factorial's cost. It is the canonical first step of
// the DOE methodology the paper's prior work followed — run a PB screen to
// find which parameters matter, then model only those. Points returns the
// design's low/high levels as 0/1 coordinates in the unit cube (Scale maps
// them onto real ranges); n selects the number of factors (columns).
type PlackettBurman struct{}

// pbGenerators holds the first rows of the cyclic Plackett–Burman
// constructions ('+' = high). Keyed by run count.
var pbGenerators = map[int]string{
	8:  "+++-+--",
	12: "++-+++---+-",
	16: "++++-+-++--+---",
	20: "++--++++-+-+----++-",
}

// Points implements Design: it picks the smallest PB construction with at
// least n+1 runs' worth of columns (runs ∈ {8, 12, 16, 20}) and returns
// its runs restricted to the first n factor columns.
func (PlackettBurman) Points(n, d int) ([][]float64, error) {
	if d < 1 {
		return nil, errors.New("doe: dimension must be positive")
	}
	if d > 19 {
		return nil, errors.New("doe: Plackett-Burman supports at most 19 factors here")
	}
	_ = n // the run count is dictated by the construction, not the budget
	runs := 0
	for _, r := range []int{8, 12, 16, 20} {
		if d <= r-1 {
			runs = r
			break
		}
	}
	gen := pbGenerators[runs]
	out := make([][]float64, 0, runs)
	// Rows 0..runs-2 are cyclic shifts of the generator; the last row is
	// all-low.
	for r := 0; r < runs-1; r++ {
		row := make([]float64, d)
		for j := 0; j < d; j++ {
			if gen[(j+r)%(runs-1)] == '+' {
				row[j] = 1 - 1e-12 // keep within [0,1) for Scale
			}
		}
		out = append(out, row)
	}
	out = append(out, make([]float64, d))
	return out, nil
}

// Name implements Design.
func (PlackettBurman) Name() string { return "plackett-burman" }
