// Package poly implements the "other non-linear functions such as
// polynomial and logarithmic" the paper's §7 proposes as analytic
// alternatives to the neural-network model: fixed feature maps (polynomial
// expansion with optional interaction terms, or logarithmic transforms)
// followed by a linear least-squares fit.
//
// These models trade the MLP's generality for analytical interpretability,
// exactly the trade-off §5.3 discusses.
package poly

import (
	"errors"
	"fmt"
	"math"

	"nnwc/internal/linear"
	"nnwc/internal/preprocess"
)

// FeatureMap expands an input vector into a derived feature vector.
type FeatureMap interface {
	// Expand returns the derived features for x.
	Expand(x []float64) []float64
	// Size returns the expanded dimensionality for n raw inputs.
	Size(n int) int
	// Name identifies the map in reports.
	Name() string
}

// Polynomial expands each feature to powers 1..Degree and, when
// Interactions is true, adds all pairwise products xᵢ·xⱼ (i<j).
type Polynomial struct {
	Degree       int
	Interactions bool
}

// Expand implements FeatureMap.
func (p Polynomial) Expand(x []float64) []float64 {
	deg := p.Degree
	if deg < 1 {
		deg = 1
	}
	out := make([]float64, 0, p.Size(len(x)))
	for _, v := range x {
		pw := v
		for d := 1; d <= deg; d++ {
			out = append(out, pw)
			pw *= v
		}
	}
	if p.Interactions {
		for i := 0; i < len(x); i++ {
			for j := i + 1; j < len(x); j++ {
				out = append(out, x[i]*x[j])
			}
		}
	}
	return out
}

// Size implements FeatureMap.
func (p Polynomial) Size(n int) int {
	deg := p.Degree
	if deg < 1 {
		deg = 1
	}
	size := n * deg
	if p.Interactions {
		size += n * (n - 1) / 2
	}
	return size
}

// Name implements FeatureMap.
func (p Polynomial) Name() string {
	if p.Interactions {
		return fmt.Sprintf("poly(%d)+interactions", p.Degree)
	}
	return fmt.Sprintf("poly(%d)", p.Degree)
}

// Logarithmic maps each feature to (x, ln(1+|x|)·sign(x)), giving the
// model logarithmic basis functions alongside the raw linear terms.
type Logarithmic struct{}

// Expand implements FeatureMap.
func (Logarithmic) Expand(x []float64) []float64 {
	out := make([]float64, 0, 2*len(x))
	for _, v := range x {
		out = append(out, v)
		if v >= 0 {
			out = append(out, math.Log1p(v))
		} else {
			out = append(out, -math.Log1p(-v))
		}
	}
	return out
}

// Size implements FeatureMap.
func (Logarithmic) Size(n int) int { return 2 * n }

// Name implements FeatureMap.
func (Logarithmic) Name() string { return "log" }

// Model is a linear model over a fixed feature expansion, optionally
// preceded by z-score standardization of the raw features.
type Model struct {
	Map    FeatureMap
	Linear *linear.Model

	scaler preprocess.Scaler
}

// Options configures fitting.
type Options struct {
	// Lambda is the ridge penalty passed to the linear solve. Strongly
	// recommended for Degree ≥ 2: powers of features that take only a few
	// distinct levels are exactly collinear, and raw-magnitude powers
	// condition the normal equations terribly.
	Lambda float64
	// Standardize z-scores the raw features before expansion, which keeps
	// the expanded design matrix well conditioned. On by default in
	// FitStandardized.
	Standardize bool
}

// Fit expands every input row through fmap and solves the least-squares
// problem in the expanded space.
func Fit(fmap FeatureMap, xs, ys [][]float64, opt Options) (*Model, error) {
	if fmap == nil {
		return nil, errors.New("poly: feature map is required")
	}
	if len(xs) == 0 {
		return nil, errors.New("poly: no samples")
	}
	var scaler preprocess.Scaler = preprocess.NewIdentity()
	if opt.Standardize {
		scaler = preprocess.NewStandardizer()
	}
	if err := scaler.Fit(xs); err != nil {
		return nil, err
	}
	ex := make([][]float64, len(xs))
	for i, x := range xs {
		ex[i] = fmap.Expand(scaler.Transform(x))
	}
	lm, err := linear.Fit(ex, ys, linear.Options{Lambda: opt.Lambda})
	if err != nil {
		return nil, fmt.Errorf("poly: fitting expanded model: %w", err)
	}
	return &Model{Map: fmap, Linear: lm, scaler: scaler}, nil
}

// Predict returns the model output for a raw (unexpanded) input.
func (m *Model) Predict(x []float64) []float64 {
	return m.Linear.Predict(m.Map.Expand(m.scaler.Transform(x)))
}

// PredictAll maps Predict over rows.
func (m *Model) PredictAll(xs [][]float64) [][]float64 {
	out := make([][]float64, len(xs))
	for i, x := range xs {
		out[i] = m.Predict(x)
	}
	return out
}
