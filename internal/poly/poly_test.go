package poly

import (
	"math"
	"testing"

	"nnwc/internal/rng"
)

func TestPolynomialExpandValues(t *testing.T) {
	p := Polynomial{Degree: 3}
	out := p.Expand([]float64{2, -1})
	want := []float64{2, 4, 8, -1, 1, -1}
	if len(out) != len(want) {
		t.Fatalf("expansion %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("expansion %v, want %v", out, want)
		}
	}
}

func TestPolynomialInteractions(t *testing.T) {
	p := Polynomial{Degree: 1, Interactions: true}
	out := p.Expand([]float64{2, 3, 5})
	// x1, x2, x3, x1x2, x1x3, x2x3
	want := []float64{2, 3, 5, 6, 10, 15}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("expansion %v, want %v", out, want)
		}
	}
}

func TestSizeMatchesExpand(t *testing.T) {
	maps := []FeatureMap{
		Polynomial{Degree: 1},
		Polynomial{Degree: 2},
		Polynomial{Degree: 4, Interactions: true},
		Polynomial{Degree: 0}, // clamps to 1
		Logarithmic{},
	}
	for _, m := range maps {
		for n := 1; n <= 5; n++ {
			x := make([]float64, n)
			for i := range x {
				x[i] = float64(i + 1)
			}
			if got, want := len(m.Expand(x)), m.Size(n); got != want {
				t.Fatalf("%s: Expand gives %d features, Size says %d", m.Name(), got, want)
			}
		}
	}
}

func TestLogarithmicExpand(t *testing.T) {
	out := Logarithmic{}.Expand([]float64{math.E - 1, -(math.E - 1)})
	if math.Abs(out[1]-1) > 1e-12 {
		t.Fatalf("ln(1+e-1) = %v, want 1", out[1])
	}
	if math.Abs(out[3]+1) > 1e-12 {
		t.Fatalf("signed log of negative: %v, want -1", out[3])
	}
}

func TestFitsQuadraticExactly(t *testing.T) {
	src := rng.New(1)
	var xs, ys [][]float64
	for i := 0; i < 60; i++ {
		a, b := src.Uniform(-2, 2), src.Uniform(-2, 2)
		xs = append(xs, []float64{a, b})
		ys = append(ys, []float64{a*a - 3*b*b + 2*a*b + a - 4})
	}
	m, err := Fit(Polynomial{Degree: 2, Interactions: true}, xs, ys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.5, -1.5}
	want := 0.25 - 3*2.25 + 2*0.5*-1.5 + 0.5 - 4
	if got := m.Predict(probe)[0]; math.Abs(got-want) > 1e-6 {
		t.Fatalf("quadratic fit predicts %v, want %v", got, want)
	}
}

func TestStandardizedFitMatchesRaw(t *testing.T) {
	// Standardization must not change the fitted function (it is a linear
	// reparameterization), only the conditioning.
	src := rng.New(2)
	var xs, ys [][]float64
	for i := 0; i < 50; i++ {
		a := src.Uniform(100, 900) // big magnitudes
		xs = append(xs, []float64{a})
		ys = append(ys, []float64{0.01*a*a - 2*a + 3})
	}
	raw, err := Fit(Polynomial{Degree: 2}, xs, ys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	std, err := Fit(Polynomial{Degree: 2}, xs, ys, Options{Standardize: true})
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{432}
	a, b := raw.Predict(probe)[0], std.Predict(probe)[0]
	if math.Abs(a-b) > 1e-4*(1+math.Abs(a)) {
		t.Fatalf("standardized fit differs: %v vs %v", a, b)
	}
}

func TestRidgeRescuesCollinearPowers(t *testing.T) {
	// A feature with two distinct levels makes x and x³ (standardized:
	// ±1 and ±1) exactly collinear — OLS fails, ridge copes.
	var xs, ys [][]float64
	for i := 0; i < 20; i++ {
		v := float64(8 + 8*(i%2)) // levels 8 and 16
		xs = append(xs, []float64{v})
		ys = append(ys, []float64{v * 2})
	}
	if _, err := Fit(Polynomial{Degree: 3}, xs, ys, Options{Standardize: true}); err == nil {
		t.Fatal("collinear powers accepted without ridge")
	}
	m, err := Fit(Polynomial{Degree: 3}, xs, ys, Options{Lambda: 1e-4, Standardize: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{8})[0]; math.Abs(got-16) > 0.1 {
		t.Fatalf("ridge poly predicts %v, want ~16", got)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, [][]float64{{1}}, [][]float64{{1}}, Options{}); err == nil {
		t.Fatal("nil feature map accepted")
	}
	if _, err := Fit(Polynomial{Degree: 2}, nil, nil, Options{}); err == nil {
		t.Fatal("empty samples accepted")
	}
}

func TestNames(t *testing.T) {
	if (Polynomial{Degree: 2}).Name() != "poly(2)" {
		t.Fatal("poly name wrong")
	}
	if (Polynomial{Degree: 3, Interactions: true}).Name() != "poly(3)+interactions" {
		t.Fatal("poly+interactions name wrong")
	}
	if (Logarithmic{}).Name() != "log" {
		t.Fatal("log name wrong")
	}
}

func TestPredictAll(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}}
	ys := [][]float64{{1}, {4}, {9}}
	m, err := Fit(Polynomial{Degree: 2}, xs, ys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := m.PredictAll(xs)
	if len(out) != 3 || math.Abs(out[1][0]-4) > 1e-9 {
		t.Fatalf("PredictAll %v", out)
	}
}
