package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"time"
)

// Canonical file names inside a run directory.
const (
	TraceFileName    = "trace.jsonl"
	ManifestFileName = "manifest.json"
)

// Manifest is a run's provenance record, written as manifest.json next to
// its trace: what ran, on what data, with what configuration and seeds, on
// which toolchain, and how it ended. `nnwc runs` lists, summarizes and
// diffs these.
type Manifest struct {
	RunID       string             `json:"run_id"`
	Command     string             `json:"command"`
	Args        []string           `json:"args,omitempty"`
	Start       string             `json:"start,omitempty"` // RFC3339Nano, UTC
	End         string             `json:"end,omitempty"`
	DurationSec float64            `json:"duration_sec,omitempty"`
	Seed        uint64             `json:"seed,omitempty"`
	Workers     int                `json:"workers,omitempty"`
	GoVersion   string             `json:"go_version"`
	GitRevision string             `json:"git_revision,omitempty"`
	Hostname    string             `json:"hostname,omitempty"`
	Config      map[string]any     `json:"config,omitempty"`
	DatasetPath string             `json:"dataset_path,omitempty"`
	DatasetHash string             `json:"dataset_sha256,omitempty"`
	Models      []ModelRef         `json:"models,omitempty"`
	Outcome     string             `json:"outcome,omitempty"` // "ok" or "error: ..."
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// ModelRef links a run to a model artifact by the same SHA-256 fingerprint
// the serve plane's registry keys versions with: a training run records the
// artifact it wrote, a serve run records every artifact it registered, and
// `nnwc runs show` prints the hashes so a fleet version can be traced back
// to the run that produced or served it.
type ModelRef struct {
	Name    string `json:"name"`              // tenant (serve) or artifact role (train: "trained")
	Version int    `json:"version,omitempty"` // registry version; 0 when not registry-assigned
	Path    string `json:"path"`
	SHA256  string `json:"sha256"`
}

// AddModel appends a model reference, fingerprinting the file at path.
// Re-adding the same name+hash is a no-op, so hot-reload loops don't grow
// the manifest.
func (m *Manifest) AddModel(name string, version int, path string) error {
	sha, err := HashFile(path)
	if err != nil {
		return err
	}
	for i, ref := range m.Models {
		if ref.Name == name && ref.SHA256 == sha {
			if version > ref.Version {
				m.Models[i].Version = version
			}
			return nil
		}
	}
	m.Models = append(m.Models, ModelRef{Name: name, Version: version, Path: path, SHA256: sha})
	return nil
}

// NewRunID derives a run identifier from the command name, the start time
// and the process id — unique enough for a runs directory without
// consuming any randomness.
func NewRunID(command string, start time.Time) string {
	return fmt.Sprintf("%s-%s-p%d", command, start.UTC().Format("20060102T150405.000"), os.Getpid())
}

// GitRevision reports the VCS revision stamped into the binary (via
// debug.ReadBuildInfo), with a "+dirty" suffix when the working tree was
// modified, or "" when the build carries no VCS info (e.g. `go test`).
func GitRevision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	return rev + dirty
}

// HashFile returns the hex SHA-256 of a file's bytes — the dataset
// fingerprint recorded in manifests so two runs can be compared on exactly
// the data they saw.
func HashFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// HashBytes is HashFile for in-memory content: the hex SHA-256 used to
// content-address artifacts and fingerprint distributed job specs.
func HashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// fillToolchain stamps the Go toolchain, VCS revision and hostname.
func (m *Manifest) fillToolchain() {
	m.GoVersion = runtime.Version()
	m.GitRevision = GitRevision()
	if host, err := os.Hostname(); err == nil {
		m.Hostname = host
	}
}

// WriteManifest writes m as indented JSON to path.
func WriteManifest(path string, m *Manifest) error {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// ReadManifest loads a manifest.json.
func ReadManifest(path string) (*Manifest, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m := &Manifest{}
	if err := json.Unmarshal(buf, m); err != nil {
		return nil, fmt.Errorf("obs: parsing %s: %w", path, err)
	}
	return m, nil
}
