package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"nnwc/internal/obs/metrics"
)

// StartDebugServer serves the profiling and introspection endpoints on
// addr in a background goroutine and returns the bound address (useful
// with ":0"):
//
//	/debug/pprof/*  net/http/pprof (CPU, heap, goroutine, block profiles)
//	/debug/vars     expvar (cmdline, memstats)
//	/metrics        the process-wide metrics registry, Prometheus text
//
// It backs the -pprof-addr flag of long-running commands. The server is
// deliberately not shut down gracefully — it dies with the process.
func StartDebugServer(addr string) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		metrics.Default().Write(w)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	// httpx.NewServer is the canonical timeout-setting constructor, but
	// httpx depends on obs, so the debug server sets the full timeout
	// quartet itself. Write/Idle are generous because profile endpoints
	// stream for the profiling window (/debug/pprof/profile?seconds=30).
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	//lint:waive goroutine-lifecycle -- the debug server is documented to live for the process; Serve returns only when the listener dies and the error is logged below
	go func() {
		// A debug server dying mid-run should be visible, not silent —
		// an operator staring at a dead /metrics endpoint needs the why.
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "obs: debug server on %s exited: %v\n", ln.Addr(), err)
		}
	}()
	return ln.Addr().String(), nil
}
