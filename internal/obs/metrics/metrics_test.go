package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "test counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
	var b strings.Builder
	r.Write(&b)
	want := "# HELP test_total test counter\n# TYPE test_total counter\ntest_total 5\n"
	if b.String() != want {
		t.Fatalf("rendered %q, want %q", b.String(), want)
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("Value = %d, want 8000", c.Value())
	}
}

func TestCounterVecSortedRendering(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "requests", "endpoint", "status")
	v.Inc("/predict", "500")
	v.Add(3, "/predict", "200")
	v.Inc("/healthz", "200")
	if v.Value("/predict", "200") != 3 {
		t.Fatalf("cell = %d, want 3", v.Value("/predict", "200"))
	}
	var b strings.Builder
	r.Write(&b)
	got := b.String()
	want := `# HELP req_total requests
# TYPE req_total counter
req_total{endpoint="/healthz",status="200"} 1
req_total{endpoint="/predict",status="200"} 3
req_total{endpoint="/predict",status="500"} 1
`
	if got != want {
		t.Fatalf("rendered %q, want %q", got, want)
	}
}

func TestCounterVecLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("x", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong label arity")
		}
	}()
	v.Inc("only-one")
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	val := 2.5
	r.GaugeFunc("g", "gauge", func() float64 { return val })
	var b strings.Builder
	r.Write(&b)
	if !strings.Contains(b.String(), "g 2.5\n") {
		t.Fatalf("rendered %q", b.String())
	}
	val = 7
	b.Reset()
	r.Write(&b)
	if !strings.Contains(b.String(), "g 7\n") {
		t.Fatalf("gauge not re-read at render: %q", b.String())
	}
}

func TestSummaryWindow(t *testing.T) {
	r := NewRegistry()
	s := r.Summary("lat", "latency", 4, 0.5)
	for _, v := range []float64{1, 2, 3, 4} {
		s.Observe(v)
	}
	count, sum := s.Stats()
	if count != 4 || sum != 10 {
		t.Fatalf("Stats = (%d, %g), want (4, 10)", count, sum)
	}
	// Overflow the window: the quantile must track only the recent 4.
	for _, v := range []float64{100, 100, 100, 100} {
		s.Observe(v)
	}
	var b strings.Builder
	r.Write(&b)
	got := b.String()
	if !strings.Contains(got, `lat{quantile="0.5"} 100`) {
		t.Fatalf("windowed quantile should be 100: %q", got)
	}
	if !strings.Contains(got, "lat_sum 410\n") || !strings.Contains(got, "lat_count 8\n") {
		t.Fatalf("lifetime sum/count wrong: %q", got)
	}
}

func TestRegistrationOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz", "")
	r.Counter("aaa", "")
	var b strings.Builder
	r.Write(&b)
	got := b.String()
	if strings.Index(got, "zzz") > strings.Index(got, "aaa") {
		t.Fatalf("metrics must render in registration order, got %q", got)
	}
}

func TestDefaultIsSingleton(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default registry must be process-wide")
	}
}

func TestGaugeVecSortedRendering(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("inflight", "in-flight requests", "model")
	v.Set(3, "web")
	v.Add(2, "web")
	v.Add(1, "db")
	if v.Value("web") != 5 || v.Value("db") != 1 {
		t.Fatalf("cells web=%g db=%g, want 5 and 1", v.Value("web"), v.Value("db"))
	}
	var b strings.Builder
	r.Write(&b)
	want := `# HELP inflight in-flight requests
# TYPE inflight gauge
inflight{model="db"} 1
inflight{model="web"} 5
`
	if b.String() != want {
		t.Fatalf("rendered %q, want %q", b.String(), want)
	}
}

func TestSummaryVecPerCellWindows(t *testing.T) {
	r := NewRegistry()
	v := r.SummaryVec("lat", "latency", 8, []string{"model"}, 0.5)
	for i := 1; i <= 4; i++ {
		v.Observe(float64(i), "web")
	}
	v.Observe(100, "db")
	count, sum := v.Stats("web")
	if count != 4 || sum != 10 {
		t.Fatalf("web stats count=%d sum=%g, want 4 and 10", count, sum)
	}
	if count, _ := v.Stats("missing"); count != 0 {
		t.Fatalf("missing cell count=%d, want 0", count)
	}
	var b strings.Builder
	r.Write(&b)
	got := b.String()
	for _, want := range []string{
		`lat{model="db",quantile="0.5"} 100`,
		`lat_sum{model="db"} 100`,
		`lat_count{model="db"} 1`,
		`lat{model="web",quantile="0.5"}`,
		`lat_sum{model="web"} 10`,
		`lat_count{model="web"} 4`,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("rendering missing %q:\n%s", want, got)
		}
	}
	// db sorts before web: labeled cells render in label order.
	if strings.Index(got, `model="db"`) > strings.Index(got, `model="web"`) {
		t.Fatalf("cells not sorted by label values:\n%s", got)
	}
}
