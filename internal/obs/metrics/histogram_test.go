package metrics

import (
	"strings"
	"testing"
)

func TestHistogramObserveAndRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ms", "latency", []float64{1, 10, 100})
	h.Observe(0.5) // ≤1
	h.Observe(1)   // ≤1 (inclusive upper edge)
	h.Observe(5)   // ≤10
	h.Observe(500) // +Inf
	var b strings.Builder
	r.Write(&b)
	want := `# HELP lat_ms latency
# TYPE lat_ms histogram
lat_ms_bucket{le="1"} 2
lat_ms_bucket{le="10"} 3
lat_ms_bucket{le="100"} 3
lat_ms_bucket{le="+Inf"} 4
lat_ms_sum 506.5
lat_ms_count 4
`
	if b.String() != want {
		t.Fatalf("rendered:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestHistogramDropsNaN(t *testing.T) {
	h := NewHistogram("x", "", []float64{1})
	h.Observe(nan())
	if s := h.Snapshot(); s.Count != 0 || s.Sum != 0 {
		t.Fatalf("NaN observation recorded: %+v", s)
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

func TestHistogramSnapshotMerge(t *testing.T) {
	a := NewHistogram("a", "", []float64{1, 10})
	a.Observe(0.5)
	a.Observe(5)
	b := NewHistogram("b", "", []float64{1, 10})
	b.Observe(5)
	b.Observe(50)

	var merged HistogramSnapshot // zero value adopts the first layout
	if err := merged.Merge(a.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := merged.Merge(b.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if merged.Count != 4 {
		t.Fatalf("merged count = %d, want 4", merged.Count)
	}
	wantCounts := []uint64{1, 2, 1}
	for i, n := range wantCounts {
		if merged.Counts[i] != n {
			t.Fatalf("merged counts = %v, want %v", merged.Counts, wantCounts)
		}
	}
	if merged.Sum != 60.5 {
		t.Fatalf("merged sum = %g, want 60.5", merged.Sum)
	}

	// Mismatched layouts must refuse to merge rather than mis-bucket.
	c := NewHistogram("c", "", []float64{2, 20})
	c.Observe(1)
	if err := merged.Merge(c.Snapshot()); err == nil {
		t.Fatal("merge with different bounds succeeded")
	}
}

func TestHistogramVecSetSnapshotIsIdempotent(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("task_ms", "tasks", []float64{1, 10}, "worker")
	src := NewHistogram("w", "", []float64{1, 10})
	src.Observe(5)
	src.Observe(5)

	// Pushing the same cumulative snapshot twice must not double-count.
	for i := 0; i < 2; i++ {
		if err := v.SetSnapshot(src.Snapshot(), "w1"); err != nil {
			t.Fatal(err)
		}
	}
	if got := v.CellSnapshot("w1"); got.Count != 2 {
		t.Fatalf("cell count after re-push = %d, want 2", got.Count)
	}

	// Bounds mismatch is an error, not a corrupt cell.
	bad := NewHistogram("bad", "", []float64{3})
	bad.Observe(1)
	if err := v.SetSnapshot(bad.Snapshot(), "w1"); err == nil {
		t.Fatal("SetSnapshot with different bounds succeeded")
	}
}

func TestHistogramVecMergedAcrossCells(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("task_ms", "tasks", []float64{1, 10}, "worker")
	v.Observe(0.5, "w1")
	v.Observe(5, "w2")
	v.Observe(50, "w2")
	m := v.Merged()
	if m.Count != 3 {
		t.Fatalf("merged count = %d, want 3", m.Count)
	}
	if m.Sum != 55.5 {
		t.Fatalf("merged sum = %g, want 55.5", m.Sum)
	}
	wantCounts := []uint64{1, 1, 1}
	for i, n := range wantCounts {
		if m.Counts[i] != n {
			t.Fatalf("merged counts = %v, want %v", m.Counts, wantCounts)
		}
	}
}

func TestHistogramVecRenderSortedByLabel(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("h", "", []float64{1}, "worker")
	v.Observe(0.5, "b")
	v.Observe(2, "a")
	var sb strings.Builder
	r.Write(&sb)
	out := sb.String()
	ia, ib := strings.Index(out, `worker="a"`), strings.Index(out, `worker="b"`)
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("cells not rendered in sorted label order:\n%s", out)
	}
}

func TestHistogramFuncRendersMergedView(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("per_worker", "", []float64{1, 10}, "worker")
	r.HistogramFunc("cluster", "merged view", func() HistogramSnapshot { return v.Merged() })
	v.Observe(5, "w1")
	v.Observe(0.5, "w2")
	var sb strings.Builder
	r.Write(&sb)
	out := sb.String()
	for _, want := range []string{
		`cluster_bucket{le="1"} 1`,
		`cluster_bucket{le="10"} 2`,
		`cluster_bucket{le="+Inf"} 2`,
		"cluster_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered output missing %q:\n%s", want, out)
		}
	}
}
