package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"nnwc/internal/stats"
)

// Histogram is a fixed-bucket distribution. Unlike Summary (whose
// ring-window quantiles are a function of *which* recent observations a
// process saw, and therefore cannot be combined across processes), a
// histogram's per-bucket counts add: merging the snapshots of N workers
// yields exactly the histogram one process observing all their events
// would have built. That additivity is what the dist plane's metrics
// federation rides on — workers push HistogramSnapshots with each lease
// renewal and the coordinator sums them into cluster-wide series.
//
// Bucket bounds are inclusive upper edges in ascending order; one
// implicit +Inf bucket catches everything above the last bound.
type Histogram struct {
	name, help string
	bounds     []float64
	mu         sync.Mutex
	counts     []uint64 // len(bounds)+1; the last cell is the +Inf bucket
	sum        float64
	count      uint64
}

// DefMillisBuckets is the default latency bucket layout (milliseconds):
// roughly exponential from sub-millisecond HTTP handling up to
// half-minute training tasks.
var DefMillisBuckets = []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}

// NewHistogram returns an unregistered histogram — a local accumulator
// whose snapshots feed federation (e.g. each dist worker's task timer)
// without appearing in any registry's exposition. Register with
// Registry.Histogram instead when the series should render locally.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{name: name, help: help, bounds: bs, counts: make([]uint64, len(bs)+1)}
}

// Histogram registers and returns a fixed-bucket histogram.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := NewHistogram(name, help, bounds)
	r.add(h)
	return h
}

// Observe records one value. NaN observations are dropped (they have no
// bucket and would poison the sum).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: its bucket
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Snapshot copies the current state into a mergeable, JSON-encodable
// value.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
}

func (h *Histogram) render(w io.Writer) {
	snap := h.Snapshot()
	header(w, h.name, h.help, "histogram")
	renderHistCells(w, h.name, "", snap)
}

// HistogramSnapshot is the wire/merge form of a histogram: bucket bounds,
// per-bucket counts (last cell = +Inf), lifetime sum and count. The zero
// value is an empty snapshot that adopts the bounds of whatever is merged
// into it.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// sameBounds reports whether two bound layouts are identical (exact
// comparison: layouts are configuration constants, not computed values).
func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !stats.ExactEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// valid reports a structurally consistent snapshot.
func (s HistogramSnapshot) valid() bool {
	return len(s.Counts) == len(s.Bounds)+1
}

// Merge adds another snapshot's counts into s. The receiver adopts o's
// bucket layout when empty; otherwise the layouts must match exactly —
// per-bucket counts only add between identical buckets.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) error {
	if !o.valid() {
		if len(o.Bounds) == 0 && len(o.Counts) == 0 && o.Count == 0 {
			return nil // merging an empty zero snapshot is a no-op
		}
		return fmt.Errorf("metrics: malformed histogram snapshot (%d bounds, %d counts)", len(o.Bounds), len(o.Counts))
	}
	if len(s.Bounds) == 0 && len(s.Counts) == 0 {
		s.Bounds = append([]float64(nil), o.Bounds...)
		s.Counts = make([]uint64, len(o.Counts))
	}
	if !sameBounds(s.Bounds, o.Bounds) {
		return fmt.Errorf("metrics: cannot merge histograms with different bucket bounds")
	}
	for i, n := range o.Counts {
		s.Counts[i] += n
	}
	s.Sum += o.Sum
	s.Count += o.Count
	return nil
}

// renderHistCells writes one histogram's Prometheus text lines:
// cumulative _bucket{le=...} counts (ending at +Inf == _count), then
// _sum and _count. labelPrefix, when non-empty, is a rendered
// `name="value"` pair list prepended to the le label.
func renderHistCells(w io.Writer, name, labelPrefix string, s HistogramSnapshot) {
	sep := ""
	if labelPrefix != "" {
		sep = ","
	}
	var cum uint64
	for i, n := range s.Counts {
		cum += n
		le := "+Inf"
		if i < len(s.Bounds) {
			le = strconv.FormatFloat(s.Bounds[i], 'g', -1, 64)
		}
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labelPrefix, sep, le, cum)
	}
	if labelPrefix != "" {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labelPrefix, s.Sum)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labelPrefix, s.Count)
	} else {
		fmt.Fprintf(w, "%s_sum %g\n", name, s.Sum)
		fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
	}
}

// HistogramVec is a labeled histogram: every cell shares one bucket
// layout (a federation requirement — Merged sums the cells). Cells are
// fed either locally via Observe or remotely via SetSnapshot, which
// replaces a cell wholesale with a pushed cumulative snapshot (idempotent
// under re-delivery, unlike an additive ingest would be).
type HistogramVec struct {
	name, help string
	labels     []string
	bounds     []float64
	mu         sync.Mutex
	cells      map[string]*histCell
}

type histCell struct {
	counts []uint64
	sum    float64
	count  uint64
}

// HistogramVec registers and returns a labeled histogram.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	v := &HistogramVec{name: name, help: help, labels: labels, bounds: bs, cells: make(map[string]*histCell)}
	r.add(v)
	return v
}

func (v *HistogramVec) key(values []string) string {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	return strings.Join(values, labelSep)
}

// Observe records one value in the cell identified by the label values.
func (v *HistogramVec) Observe(val float64, values ...string) {
	if math.IsNaN(val) {
		return
	}
	k := v.key(values)
	i := sort.SearchFloat64s(v.bounds, val)
	v.mu.Lock()
	c, ok := v.cells[k]
	if !ok {
		c = &histCell{counts: make([]uint64, len(v.bounds)+1)}
		v.cells[k] = c
	}
	c.counts[i]++
	c.sum += val
	c.count++
	v.mu.Unlock()
}

// SetSnapshot replaces the cell identified by the label values with a
// pushed snapshot. Snapshots are cumulative on the pushing side, so
// repeated pushes converge instead of double-counting. The snapshot's
// bucket layout must match the vec's.
func (v *HistogramVec) SetSnapshot(s HistogramSnapshot, values ...string) error {
	if !s.valid() {
		return fmt.Errorf("metrics: %s: malformed snapshot (%d bounds, %d counts)", v.name, len(s.Bounds), len(s.Counts))
	}
	if !sameBounds(v.bounds, s.Bounds) {
		return fmt.Errorf("metrics: %s: pushed snapshot has different bucket bounds", v.name)
	}
	k := v.key(values)
	v.mu.Lock()
	v.cells[k] = &histCell{counts: append([]uint64(nil), s.Counts...), sum: s.Sum, count: s.Count}
	v.mu.Unlock()
	return nil
}

// CellSnapshot returns one cell's snapshot (empty when the cell does not
// exist yet).
func (v *HistogramVec) CellSnapshot(values ...string) HistogramSnapshot {
	k := v.key(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	s := HistogramSnapshot{Bounds: append([]float64(nil), v.bounds...), Counts: make([]uint64, len(v.bounds)+1)}
	if c, ok := v.cells[k]; ok {
		copy(s.Counts, c.counts)
		s.Sum, s.Count = c.sum, c.count
	}
	return s
}

// Merged sums every cell into one cluster-wide snapshot — the federation
// read path behind HistogramFunc series like nnwc_cluster_task_ms.
func (v *HistogramVec) Merged() HistogramSnapshot {
	v.mu.Lock()
	defer v.mu.Unlock()
	s := HistogramSnapshot{Bounds: append([]float64(nil), v.bounds...), Counts: make([]uint64, len(v.bounds)+1)}
	for _, c := range v.cells { // accumulation is commutative: order-free
		for i, n := range c.counts {
			s.Counts[i] += n
		}
		s.Sum += c.sum
		s.Count += c.count
	}
	return s
}

func (v *HistogramVec) render(w io.Writer) {
	header(w, v.name, v.help, "histogram")
	type snap struct {
		key  string
		cell HistogramSnapshot
	}
	v.mu.Lock()
	snaps := make([]snap, 0, len(v.cells))
	for k, c := range v.cells {
		snaps = append(snaps, snap{key: k, cell: HistogramSnapshot{
			Bounds: v.bounds,
			Counts: append([]uint64(nil), c.counts...),
			Sum:    c.sum,
			Count:  c.count,
		}})
	}
	v.mu.Unlock()
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].key < snaps[j].key })
	for _, s := range snaps {
		renderHistCells(w, v.name, labelPairs(v.labels, s.key), s.cell)
	}
}

// HistogramFunc renders a histogram snapshot read from fn at exposition
// time — how a merged cluster-wide view of a federation vec is exposed
// without maintaining a second accumulator.
type HistogramFunc struct {
	name, help string
	fn         func() HistogramSnapshot
}

// HistogramFunc registers a render-time histogram.
func (r *Registry) HistogramFunc(name, help string, fn func() HistogramSnapshot) *HistogramFunc {
	h := &HistogramFunc{name: name, help: help, fn: fn}
	r.add(h)
	return h
}

func (h *HistogramFunc) render(w io.Writer) {
	s := h.fn()
	if !s.valid() {
		return
	}
	header(w, h.name, h.help, "histogram")
	renderHistCells(w, h.name, "", s)
}
