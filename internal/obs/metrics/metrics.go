// Package metrics is the shared Prometheus-text metrics registry: typed
// counters, labeled counter vectors, recent-window summaries and gauges
// with a deterministic exposition order, so both the prediction server's
// /metrics and the debug endpoint's training-side counters render through
// one exporter and the schema stays pin-testable.
//
// A Registry renders metrics in registration order; within a labeled
// metric, cells render sorted by label values. Quantile summaries compute
// over a fixed-capacity ring of recent observations (tracking current
// behaviour, not the process lifetime) exactly like the server's original
// registry did.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"nnwc/internal/stats"
)

// Registry holds metrics and renders them in registration order.
type Registry struct {
	mu   sync.Mutex
	list []renderer
}

type renderer interface {
	render(w io.Writer)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// defaultRegistry is the process-wide registry behind Default: library
// counters (training epochs, scheduler tasks) register here and the debug
// endpoint serves it at /metrics.
var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the process-wide registry.
func Default() *Registry {
	defaultOnce.Do(func() { defaultReg = NewRegistry() })
	return defaultReg
}

func (r *Registry) add(m renderer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.list = append(r.list, m)
}

// Write renders the Prometheus text exposition of every metric, in
// registration order.
func (r *Registry) Write(w io.Writer) {
	r.mu.Lock()
	list := append([]renderer(nil), r.list...)
	r.mu.Unlock()
	for _, m := range list {
		m.render(w)
	}
}

func header(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// Counter is a monotonically increasing uint64. Safe for concurrent use;
// Inc/Add never allocate, so counters may sit on hot loops.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.add(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) render(w io.Writer) {
	header(w, c.name, c.help, "counter")
	fmt.Fprintf(w, "%s %d\n", c.name, c.v.Load())
}

// labelSep joins label values into one map key; it cannot appear in a
// well-formed label value.
const labelSep = "\x1f"

// CounterVec is a counter with a fixed set of label names; each distinct
// label-value tuple is one cell. Cells render sorted by label values.
type CounterVec struct {
	name, help string
	labels     []string
	mu         sync.Mutex
	cells      map[string]uint64
}

// CounterVec registers and returns a labeled counter.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{name: name, help: help, labels: labels, cells: make(map[string]uint64)}
	r.add(v)
	return v
}

func (v *CounterVec) key(values []string) string {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	return strings.Join(values, labelSep)
}

// Inc adds one to the cell identified by the label values.
func (v *CounterVec) Inc(values ...string) { v.Add(1, values...) }

// Add adds n to the cell identified by the label values.
func (v *CounterVec) Add(n uint64, values ...string) {
	k := v.key(values)
	v.mu.Lock()
	v.cells[k] += n
	v.mu.Unlock()
}

// Value returns one cell's count.
func (v *CounterVec) Value(values ...string) uint64 {
	k := v.key(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.cells[k]
}

func (v *CounterVec) render(w io.Writer) {
	header(w, v.name, v.help, "counter")
	v.mu.Lock()
	keys := make([]string, 0, len(v.cells))
	for k := range v.cells {
		keys = append(keys, k)
	}
	vals := make(map[string]uint64, len(v.cells))
	for k, n := range v.cells {
		vals[k] = n
	}
	v.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s{%s} %d\n", v.name, labelPairs(v.labels, k), vals[k])
	}
}

// GaugeVec is a labeled gauge: each distinct label-value tuple is one cell
// holding the last Set value. Cells render sorted by label values.
type GaugeVec struct {
	name, help string
	labels     []string
	mu         sync.Mutex
	cells      map[string]float64
}

// GaugeVec registers and returns a labeled gauge.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	v := &GaugeVec{name: name, help: help, labels: labels, cells: make(map[string]float64)}
	r.add(v)
	return v
}

func (v *GaugeVec) key(values []string) string {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	return strings.Join(values, labelSep)
}

// Set stores the cell's current value.
func (v *GaugeVec) Set(val float64, values ...string) {
	k := v.key(values)
	v.mu.Lock()
	v.cells[k] = val
	v.mu.Unlock()
}

// Add shifts the cell's current value by delta (creating it at delta).
func (v *GaugeVec) Add(delta float64, values ...string) {
	k := v.key(values)
	v.mu.Lock()
	v.cells[k] += delta
	v.mu.Unlock()
}

// Value returns one cell's current value.
func (v *GaugeVec) Value(values ...string) float64 {
	k := v.key(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.cells[k]
}

func (v *GaugeVec) render(w io.Writer) {
	header(w, v.name, v.help, "gauge")
	v.mu.Lock()
	keys := make([]string, 0, len(v.cells))
	for k := range v.cells {
		keys = append(keys, k)
	}
	vals := make(map[string]float64, len(v.cells))
	for k, x := range v.cells {
		vals[k] = x
	}
	v.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s{%s} %g\n", v.name, labelPairs(v.labels, k), vals[k])
	}
}

// SummaryVec is a labeled Summary: each distinct label-value tuple gets its
// own recent-observation window and lifetime sum/count. Cells render sorted
// by label values.
type SummaryVec struct {
	name, help string
	labels     []string
	window     int
	quantiles  []float64
	mu         sync.Mutex
	cells      map[string]*summaryCell
}

type summaryCell struct {
	window *ring
	sum    float64
	count  uint64
}

// SummaryVec registers a labeled quantile summary; every cell gets the
// given window capacity.
func (r *Registry) SummaryVec(name, help string, window int, labels []string, quantiles ...float64) *SummaryVec {
	v := &SummaryVec{
		name: name, help: help, labels: labels,
		window: window, quantiles: quantiles,
		cells: make(map[string]*summaryCell),
	}
	r.add(v)
	return v
}

func (v *SummaryVec) key(values []string) string {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	return strings.Join(values, labelSep)
}

// Observe records one value in the cell identified by the label values.
func (v *SummaryVec) Observe(val float64, values ...string) {
	k := v.key(values)
	v.mu.Lock()
	c, ok := v.cells[k]
	if !ok {
		c = &summaryCell{window: newRing(v.window)}
		v.cells[k] = c
	}
	c.window.add(val)
	c.sum += val
	c.count++
	v.mu.Unlock()
}

// Stats returns one cell's lifetime count and sum.
func (v *SummaryVec) Stats(values ...string) (count uint64, sum float64) {
	k := v.key(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.cells[k]; ok {
		return c.count, c.sum
	}
	return 0, 0
}

func (v *SummaryVec) render(w io.Writer) {
	header(w, v.name, v.help, "summary")
	type snap struct {
		key    string
		window []float64
		sum    float64
		count  uint64
	}
	v.mu.Lock()
	snaps := make([]snap, 0, len(v.cells))
	for k, c := range v.cells {
		snaps = append(snaps, snap{key: k, window: c.window.snapshot(), sum: c.sum, count: c.count})
	}
	v.mu.Unlock()
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].key < snaps[j].key })
	for _, s := range snaps {
		pairs := labelPairs(v.labels, s.key)
		if len(s.window) > 0 {
			for _, q := range v.quantiles {
				fmt.Fprintf(w, "%s{%s,quantile=\"%g\"} %g\n", v.name, pairs, q, stats.Quantile(s.window, q))
			}
		}
		fmt.Fprintf(w, "%s_sum{%s} %g\n", v.name, pairs, s.sum)
		fmt.Fprintf(w, "%s_count{%s} %d\n", v.name, pairs, s.count)
	}
}

// labelPairs renders a joined cell key as name="value" pairs.
func labelPairs(labels []string, key string) string {
	parts := strings.Split(key, labelSep)
	pairs := make([]string, len(parts))
	for i, p := range parts {
		pairs[i] = fmt.Sprintf("%s=%q", labels[i], p)
	}
	return strings.Join(pairs, ",")
}

// GaugeFunc renders a single instantaneous value read from fn.
type GaugeFunc struct {
	name, help string
	fn         func() float64
}

// GaugeFunc registers a gauge whose value is read at render time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	g := &GaugeFunc{name: name, help: help, fn: fn}
	r.add(g)
	return g
}

func (g *GaugeFunc) render(w io.Writer) {
	header(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %g\n", g.name, g.fn())
}

// ring is a fixed-capacity ring buffer of recent observations; quantiles
// computed over it track current behaviour instead of averaging over the
// process lifetime.
type ring struct {
	buf  []float64
	n    int // observations stored (≤ cap)
	next int
}

func newRing(capacity int) *ring { return &ring{buf: make([]float64, capacity)} }

func (r *ring) add(v float64) {
	r.buf[r.next] = v
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// snapshot copies the stored observations (unordered — fine for quantiles).
func (r *ring) snapshot() []float64 {
	out := make([]float64, r.n)
	if r.n < len(r.buf) {
		copy(out, r.buf[:r.n])
	} else {
		copy(out, r.buf)
	}
	return out
}

// Summary tracks a distribution: lifetime sum and count plus quantiles
// over a recent-observation window.
type Summary struct {
	name, help string
	quantiles  []float64
	mu         sync.Mutex
	window     *ring
	sum        float64
	count      uint64
}

// Summary registers a quantile summary with the given window capacity.
func (r *Registry) Summary(name, help string, window int, quantiles ...float64) *Summary {
	s := &Summary{name: name, help: help, quantiles: quantiles, window: newRing(window)}
	r.add(s)
	return s
}

// Observe records one value.
func (s *Summary) Observe(v float64) {
	s.mu.Lock()
	s.window.add(v)
	s.sum += v
	s.count++
	s.mu.Unlock()
}

// Stats returns the lifetime count and sum.
func (s *Summary) Stats() (count uint64, sum float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count, s.sum
}

func (s *Summary) render(w io.Writer) {
	s.mu.Lock()
	snap := s.window.snapshot()
	sum, count := s.sum, s.count
	s.mu.Unlock()
	header(w, s.name, s.help, "summary")
	if len(snap) > 0 {
		for _, q := range s.quantiles {
			fmt.Fprintf(w, "%s{quantile=\"%g\"} %g\n", s.name, q, stats.Quantile(snap, q))
		}
	}
	fmt.Fprintf(w, "%s_sum %g\n", s.name, sum)
	fmt.Fprintf(w, "%s_count %d\n", s.name, count)
}
