package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// TraceSummary condenses a JSONL trace for display: event counts, the loss
// trajectory endpoints, per-fold errors, and per-scope span totals. It is
// what `nnwc runs show` prints.
type TraceSummary struct {
	Events      int
	ByName      map[string]int
	Epochs      int     // highest epoch seen
	FirstLoss   float64 // train loss of the first epoch event (NaN if none)
	FinalLoss   float64 // train loss of the last epoch event (NaN if none)
	FinalVal    float64 // validation loss of the last epoch event (NaN if none)
	StopReasons map[string]int
	FoldErrors  map[int]float64 // fold index → mean HMRE, from fold events
	Spans       map[string]SpanTotal
}

// SpanTotal aggregates one scope's spans.
type SpanTotal struct {
	Count   int
	TotalMS float64
}

// num extracts a float from a decoded JSON value, NaN otherwise (including
// the null that non-finite fields render as).
func num(v any) float64 {
	switch x := v.(type) {
	case json.Number:
		f, err := x.Float64()
		if err != nil {
			return math.NaN()
		}
		return f
	case float64:
		return x
	}
	return math.NaN()
}

// SummarizeTrace scans a JSONL trace stream.
func SummarizeTrace(r io.Reader) (*TraceSummary, error) {
	s := &TraceSummary{
		ByName:      map[string]int{},
		StopReasons: map[string]int{},
		FoldErrors:  map[int]float64{},
		Spans:       map[string]SpanTotal{},
		FirstLoss:   math.NaN(),
		FinalLoss:   math.NaN(),
		FinalVal:    math.NaN(),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(sc.Bytes()))
		dec.UseNumber()
		obj := map[string]any{}
		if err := dec.Decode(&obj); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		name, _ := obj["ev"].(string)
		s.Events++
		s.ByName[name]++
		switch name {
		case "epoch":
			if e := int(num(obj["epoch"])); e > s.Epochs {
				s.Epochs = e
			}
			loss := num(obj["train_loss"])
			if math.IsNaN(s.FirstLoss) {
				s.FirstLoss = loss
			}
			s.FinalLoss = loss
			s.FinalVal = num(obj["val_loss"])
		case "fit_end":
			if reason, ok := obj["stop_reason"].(string); ok {
				s.StopReasons[reason]++
			}
		case "fold":
			s.FoldErrors[int(num(obj["fold"]))] = num(obj["mean_hmre"])
		case "span":
			scope, _ := obj["scope"].(string)
			t := s.Spans[scope]
			t.Count++
			if ms := num(obj["ms"]); !math.IsNaN(ms) {
				t.TotalMS += ms
			}
			s.Spans[scope] = t
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// SortedNames returns the event names in lexical order.
func (s *TraceSummary) SortedNames() []string {
	names := make([]string, 0, len(s.ByName))
	for n := range s.ByName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SortedScopes returns the span scopes in lexical order.
func (s *TraceSummary) SortedScopes() []string {
	scopes := make([]string, 0, len(s.Spans))
	for sc := range s.Spans {
		scopes = append(scopes, sc)
	}
	sort.Strings(scopes)
	return scopes
}
