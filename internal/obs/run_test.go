package obs

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, ManifestFileName)
	m := &Manifest{
		RunID:       "crossval-20260805T120000.000-p1",
		Command:     "crossval",
		Args:        []string{"-data", "d.csv", "-k", "5"},
		Seed:        42,
		Workers:     4,
		Config:      map[string]any{"hidden": "16"},
		DatasetPath: "d.csv",
		DatasetHash: "abc123",
		Outcome:     "ok",
		Metrics:     map[string]float64{"overall_error": 0.05},
	}
	m.fillToolchain()
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.RunID != m.RunID || got.Command != m.Command || got.Seed != 42 || got.Workers != 4 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	if got.Metrics["overall_error"] != 0.05 {
		t.Fatalf("metrics lost: %v", got.Metrics)
	}
	if got.GoVersion == "" {
		t.Fatal("GoVersion not stamped")
	}
}

func TestNewRunIDShape(t *testing.T) {
	ts := time.Date(2026, 8, 5, 12, 30, 45, 123e6, time.UTC)
	id := NewRunID("crossval", ts)
	if !strings.HasPrefix(id, "crossval-20260805T123045.123-p") {
		t.Fatalf("run id %q has unexpected shape", id)
	}
}

func TestRunLifecycle(t *testing.T) {
	base := t.TempDir()
	r, err := StartRun(base, "crossval", []string{"-k", "4"})
	if err != nil {
		t.Fatal(err)
	}
	tr := r.Trace()
	if !tr.Enabled() {
		t.Fatal("run trace should be enabled")
	}
	tr.Emit("cv_start", Int("folds", 4))
	r.Manifest.Seed = 7
	r.Manifest.Metrics = map[string]float64{"overall_error": 0.04}
	if err := r.Finish(nil); err != nil {
		t.Fatal(err)
	}

	m, err := ReadManifest(filepath.Join(r.Dir, ManifestFileName))
	if err != nil {
		t.Fatal(err)
	}
	if m.Outcome != "ok" {
		t.Fatalf("outcome %q, want ok", m.Outcome)
	}
	if m.End == "" || m.DurationSec < 0 {
		t.Fatalf("end-side fields not stamped: %+v", m)
	}
	data, err := os.ReadFile(filepath.Join(r.Dir, TraceFileName))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"ev":"cv_start"`) {
		t.Fatalf("trace missing event: %q", data)
	}
}

func TestRunFinishError(t *testing.T) {
	base := t.TempDir()
	r, err := StartRun(base, "train", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Finish(errors.New("boom")); err != nil {
		t.Fatal(err)
	}
	m, err := ReadManifest(filepath.Join(r.Dir, ManifestFileName))
	if err != nil {
		t.Fatal(err)
	}
	if m.Outcome != "error: boom" {
		t.Fatalf("outcome %q, want error: boom", m.Outcome)
	}
}

func TestNilRunIsInert(t *testing.T) {
	var r *Run
	if r.Trace().Enabled() {
		t.Fatal("nil run's trace should be disabled")
	}
	r.SetDataset("whatever.csv")
	if err := r.Finish(nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetDataset(t *testing.T) {
	base := t.TempDir()
	ds := filepath.Join(base, "d.csv")
	if err := os.WriteFile(ds, []byte("a,b\n1,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := StartRun(base, "train", nil)
	if err != nil {
		t.Fatal(err)
	}
	r.SetDataset(ds)
	if r.Manifest.DatasetPath != ds {
		t.Fatalf("dataset path %q", r.Manifest.DatasetPath)
	}
	if len(r.Manifest.DatasetHash) != 64 {
		t.Fatalf("dataset hash %q is not a sha256 hex digest", r.Manifest.DatasetHash)
	}
	if err := r.Finish(nil); err != nil {
		t.Fatal(err)
	}
}
