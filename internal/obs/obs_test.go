package obs

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// collectSink buffers events in memory for assertions.
type collectSink struct {
	mu     sync.Mutex
	events []Event
}

func (c *collectSink) Emit(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}
func (c *collectSink) Close() error { return nil }

func TestEventRendering(t *testing.T) {
	e := Event{
		Name: "epoch",
		Fields: []Field{
			Int("epoch", 3),
			Float("train_loss", 0.25),
			String("mode", "batch"),
		},
	}
	got := string(e.appendJSON(nil))
	want := `{"ev":"epoch","epoch":3,"train_loss":0.25,"mode":"batch"}`
	if got != want {
		t.Fatalf("rendered %s, want %s", got, want)
	}
}

func TestEventRenderingTimestamp(t *testing.T) {
	ts := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	e := Event{Time: ts, Name: "x"}
	got := string(e.appendJSON(nil))
	want := `{"t":"2026-08-05T12:00:00Z","ev":"x"}`
	if got != want {
		t.Fatalf("rendered %s, want %s", got, want)
	}
}

func TestEventRenderingNonFinite(t *testing.T) {
	e := Event{Name: "x", Fields: []Field{
		Float("nan", math.NaN()),
		Float("posinf", math.Inf(1)),
		Float("neginf", math.Inf(-1)),
	}}
	got := string(e.appendJSON(nil))
	want := `{"ev":"x","nan":null,"posinf":null,"neginf":null}`
	if got != want {
		t.Fatalf("rendered %s, want %s", got, want)
	}
}

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	if tr.Enabled() {
		t.Fatal("nil trace reports enabled")
	}
	tr.Emit("x", Int("a", 1)) // must not panic

	fork := tr.Fork(4)
	if fork != nil {
		t.Fatal("Fork on nil trace should return nil")
	}
	slot := fork.Slot(2)
	if slot.Enabled() {
		t.Fatal("slot of a nil fork reports enabled")
	}
	slot.Emit("y")
	fork.Join()

	span := tr.StartSpan("scope", 0, 0)
	span.End() // must not panic
}

func TestWriterSinkLines(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTraceNoTime(NewWriterSink(&buf))
	if !tr.Enabled() {
		t.Fatal("trace with sink should be enabled")
	}
	tr.Emit("a", Int("i", 1))
	tr.Emit("b", Float("f", 2.5))
	want := `{"ev":"a","i":1}` + "\n" + `{"ev":"b","f":2.5}` + "\n"
	if buf.String() != want {
		t.Fatalf("sink wrote %q, want %q", buf.String(), want)
	}
}

func TestForkReplaysInSlotOrder(t *testing.T) {
	sink := &collectSink{}
	tr := NewTraceNoTime(sink)
	const n = 8
	fork := tr.Fork(n)
	var wg sync.WaitGroup
	// Start goroutines in reverse order to make scheduling-ordered output
	// unlikely to coincide with slot order by accident.
	for i := n - 1; i >= 0; i-- {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			slot := fork.Slot(i)
			slot.Emit("task", Int("i", i))
			slot.Emit("done", Int("i", i))
		}(i)
	}
	wg.Wait()
	fork.Join()
	if len(sink.events) != 2*n {
		t.Fatalf("got %d events, want %d", len(sink.events), 2*n)
	}
	for i := 0; i < n; i++ {
		for j, wantName := range []string{"task", "done"} {
			e := sink.events[2*i+j]
			if e.Name != wantName || e.Fields[0].i != int64(i) {
				t.Fatalf("event %d = %s(i=%d), want %s(i=%d)", 2*i+j, e.Name, e.Fields[0].i, wantName, i)
			}
		}
	}
}

func TestSpanEmission(t *testing.T) {
	sink := &collectSink{}
	tr := NewTraceNoTime(sink)
	span := tr.StartSpan("cv-fold", 3, 1)
	span.End()
	if len(sink.events) != 1 {
		t.Fatalf("got %d events, want 1", len(sink.events))
	}
	e := sink.events[0]
	if e.Name != "span" {
		t.Fatalf("event name %q, want span", e.Name)
	}
	keys := make([]string, len(e.Fields))
	for i, f := range e.Fields {
		keys[i] = f.Key
	}
	want := []string{"scope", "task", "worker", "ms"}
	if strings.Join(keys, ",") != strings.Join(want, ",") {
		t.Fatalf("span fields %v, want %v", keys, want)
	}
	if e.Fields[0].str != "cv-fold" || e.Fields[1].i != 3 || e.Fields[2].i != 1 {
		t.Fatalf("span payload wrong: %+v", e.Fields)
	}
	if e.Fields[3].num < 0 {
		t.Fatalf("span duration negative: %g", e.Fields[3].num)
	}
}

func TestCanonicalizeStripsVolatileKeys(t *testing.T) {
	in := []byte(`{"t":"2026-08-05T12:00:00Z","ev":"span","scope":"cv-fold","task":0,"worker":3,"ms":12.5}
{"t":"2026-08-05T12:00:01Z","ev":"epoch","epoch":1,"train_loss":0.5}
`)
	got, err := CanonicalizeJSONL(in)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"ev":"span","scope":"cv-fold","task":0}
{"epoch":1,"ev":"epoch","train_loss":0.5}
`
	if string(got) != want {
		t.Fatalf("canonicalized to %q, want %q", got, want)
	}
}

func TestCanonicalizeStripsClusterVolatileKeys(t *testing.T) {
	in := []byte(`{"t":"2026-08-05T12:00:00Z","ev":"cluster_job","job":"crossval-20260805-120000","kind":"crossval","tasks":4,"seed":7,"fingerprint":"abc"}
{"ev":"dist_task","kind":"crossval","index":2,"worker":"host-41","lease":3,"ms":812.5}
`)
	got, err := CanonicalizeJSONL(in)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"ev":"cluster_job","fingerprint":"abc","kind":"crossval","seed":7,"tasks":4}
{"ev":"dist_task","index":2,"kind":"crossval"}
`
	if string(got) != want {
		t.Fatalf("canonicalized to %q, want %q", got, want)
	}
}

func TestCanonicalizeDropsVolatileEventLines(t *testing.T) {
	in := []byte(`{"ev":"cluster_job","kind":"crossval","tasks":2}
{"ev":"dist_lease","worker":"a","lo":0,"hi":2,"lease":1}
{"ev":"dist_reassign","tasks":2,"leases":1}
{"ev":"http_request","service":"dist","route":"POST /dist/lease","code":200}
{"ev":"dist_task","kind":"crossval","index":0}
`)
	got, err := CanonicalizeJSONL(in)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"ev":"cluster_job","kind":"crossval","tasks":2}
{"ev":"dist_task","index":0,"kind":"crossval"}
`
	if string(got) != want {
		t.Fatalf("canonicalized to %q, want %q", got, want)
	}
}

func TestCanonicalizeIgnoresTimestampDifferences(t *testing.T) {
	a := []byte(`{"t":"2026-01-01T00:00:00Z","ev":"x","v":1}` + "\n")
	b := []byte(`{"t":"2027-12-31T23:59:59Z","ev":"x","v":1}` + "\n")
	ca, err := CanonicalizeJSONL(a)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := CanonicalizeJSONL(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Fatalf("canonical forms differ: %q vs %q", ca, cb)
	}
}

func TestSummarizeTrace(t *testing.T) {
	trace := `{"ev":"fit_start","samples":90}
{"ev":"epoch","epoch":1,"train_loss":0.5,"val_loss":0.6}
{"ev":"epoch","epoch":2,"train_loss":0.3,"val_loss":0.4}
{"ev":"fit_end","epochs":2,"stop_reason":"max_epochs"}
{"ev":"fold","fold":0,"mean_hmre":0.031}
{"ev":"fold","fold":1,"mean_hmre":0.042}
{"ev":"span","scope":"cv-fold","task":0,"worker":0,"ms":10.5}
{"ev":"span","scope":"cv-fold","task":1,"worker":1,"ms":9.5}
`
	s, err := SummarizeTrace(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	if s.Events != 8 {
		t.Fatalf("Events = %d, want 8", s.Events)
	}
	if s.Epochs != 2 || s.FirstLoss != 0.5 || s.FinalLoss != 0.3 || s.FinalVal != 0.4 {
		t.Fatalf("epoch aggregates wrong: %+v", s)
	}
	if s.StopReasons["max_epochs"] != 1 {
		t.Fatalf("StopReasons = %v", s.StopReasons)
	}
	if s.FoldErrors[0] != 0.031 || s.FoldErrors[1] != 0.042 {
		t.Fatalf("FoldErrors = %v", s.FoldErrors)
	}
	sp := s.Spans["cv-fold"]
	if sp.Count != 2 || sp.TotalMS != 20 {
		t.Fatalf("Spans = %+v", s.Spans)
	}
	if names := s.SortedNames(); strings.Join(names, ",") != "epoch,fit_end,fit_start,fold,span" {
		t.Fatalf("SortedNames = %v", names)
	}
}

// failAfterWriter accepts the first ok writes, then fails every one.
type failAfterWriter struct {
	ok  int
	err error
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.ok == 0 {
		return 0, w.err
	}
	w.ok--
	return len(p), nil
}

// TestWriterSinkCloseSurfacesWriteError pins the fix for silently
// truncated traces: Emit cannot fail its caller, so the first write
// error must be recorded and surfaced by Close instead of dropped.
func TestWriterSinkCloseSurfacesWriteError(t *testing.T) {
	wantErr := errors.New("disk full")
	sink := NewWriterSink(&failAfterWriter{ok: 1, err: wantErr})
	tr := NewTraceNoTime(sink)
	tr.Emit("a", Int("i", 1)) // succeeds
	tr.Emit("b", Int("i", 2)) // fails; recorded for Close
	tr.Emit("c", Int("i", 3)) // later failures must not mask the first
	if err := sink.Close(); !errors.Is(err, wantErr) {
		t.Fatalf("Close() = %v, want the first write error %v", err, wantErr)
	}

	clean := NewWriterSink(&bytes.Buffer{})
	NewTraceNoTime(clean).Emit("a", Int("i", 1))
	if err := clean.Close(); err != nil {
		t.Fatalf("clean sink Close() = %v, want nil", err)
	}
}
