package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Run is one traced invocation: a directory under the runs base holding
// trace.jsonl (the event stream) and manifest.json (provenance, written at
// Finish). A nil *Run is valid and inert, so commands can thread it
// unconditionally and only pay when the user asked for -trace.
type Run struct {
	Dir      string
	Manifest Manifest

	trace *Trace
	file  *os.File
	start time.Time
}

// StartRun creates baseDir/<run-id>/, opens the trace stream, and stamps
// the manifest's start-side fields (command, args, toolchain). Call Finish
// before exiting to complete the manifest.
func StartRun(baseDir, command string, args []string) (*Run, error) {
	start := time.Now()
	id := NewRunID(command, start)
	dir := filepath.Join(baseDir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: creating run directory: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, TraceFileName))
	if err != nil {
		return nil, fmt.Errorf("obs: creating trace: %w", err)
	}
	r := &Run{
		Dir:   dir,
		trace: NewTrace(NewWriterSink(f)),
		file:  f,
		start: start,
	}
	r.Manifest = Manifest{
		RunID:   id,
		Command: command,
		Args:    append([]string(nil), args...),
		Start:   start.UTC().Format(time.RFC3339Nano),
	}
	r.Manifest.fillToolchain()
	return r, nil
}

// Trace returns the run's event stream (nil on a nil run).
func (r *Run) Trace() *Trace {
	if r == nil {
		return nil
	}
	return r.trace
}

// SetDataset records the dataset's path and SHA-256 fingerprint in the
// manifest. Hash failures are recorded in place of the digest rather than
// failing the run — provenance must never abort the work it describes.
func (r *Run) SetDataset(path string) {
	if r == nil || path == "" {
		return
	}
	r.Manifest.DatasetPath = path
	if h, err := HashFile(path); err == nil {
		r.Manifest.DatasetHash = h
	} else {
		r.Manifest.DatasetHash = fmt.Sprintf("unavailable: %v", err)
	}
}

// Finish completes the run: stamps end time, duration and outcome, writes
// manifest.json, and closes the trace stream. Safe on a nil run.
func (r *Run) Finish(runErr error) error {
	if r == nil {
		return nil
	}
	end := time.Now()
	r.Manifest.End = end.UTC().Format(time.RFC3339Nano)
	r.Manifest.DurationSec = end.Sub(r.start).Seconds()
	if runErr != nil {
		r.Manifest.Outcome = "error: " + runErr.Error()
	} else {
		r.Manifest.Outcome = "ok"
	}
	merr := WriteManifest(filepath.Join(r.Dir, ManifestFileName), &r.Manifest)
	cerr := r.file.Close()
	if merr != nil {
		return merr
	}
	return cerr
}
