package obs

import "context"

// traceCtxKey keys the *Trace a context carries.
type traceCtxKey struct{}

// ContextWithTrace returns ctx carrying tr. The dist worker threads a
// per-task buffered trace to its runners this way: the Runner signature
// stays payload-only, and a runner that wants to emit events (fold
// summaries, surface rows) asks the context. A nil trace returns ctx
// unchanged, so disabled paths stay allocation-free.
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, tr)
}

// TraceFromContext returns the trace ctx carries, or nil — which is a
// valid, inert *Trace, so callers can guard with Enabled() as usual.
func TraceFromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return tr
}
