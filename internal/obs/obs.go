// Package obs is the run-telemetry layer: structured JSONL traces of
// training and experiment runs, spans over the deterministic scheduler's
// fan-outs, run manifests (provenance), and the debug/profiling HTTP
// endpoint long-running commands expose behind -pprof-addr.
//
// Two constraints shape the design. First, telemetry must never perturb
// the results: no RNG is consumed, no floating-point reduction is
// reordered, and events produced inside parallel regions are buffered per
// task index (Fork/Slot/Join) and flushed in task order, so a trace is
// deterministic for a fixed seed regardless of worker count or scheduling.
// Second, the disabled path must cost nothing on hot loops: a nil *Trace
// is a valid, fully inert handle, and every call site guards emission with
// Trace.Enabled() so no argument is even evaluated when tracing is off.
//
// Wall-clock artifacts (timestamps, durations, worker attribution, job
// IDs, peer addresses, lease IDs) are confined to the well-known volatile
// keys "t", "ms", "worker", "job", "addr" and "lease", and purely
// scheduling-narrative event types (lease grants, reassignments, HTTP
// request logs) to the volatileEvents set; CanonicalizeJSONL strips
// exactly those, and the remainder of a trace is byte-identical across
// runs — including the coordinator-merged cluster traces of the dist
// plane, at any worker count.
package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"
)

// fieldKind discriminates the payload of a Field.
type fieldKind uint8

const (
	kindString fieldKind = iota
	kindFloat
	kindInt
)

// Field is one ordered key/value pair of an Event. Construct with String,
// Float or Int; field order is preserved in the rendered JSON so traces
// are byte-stable.
type Field struct {
	Key  string
	kind fieldKind
	str  string
	num  float64
	i    int64
}

// String returns a string-valued field.
func String(key, v string) Field { return Field{Key: key, kind: kindString, str: v} }

// Float returns a float-valued field. Non-finite values render as null
// (JSON has no NaN/Inf).
func Float(key string, v float64) Field { return Field{Key: key, kind: kindFloat, num: v} }

// Int returns an integer-valued field.
func Int(key string, v int) Field { return Field{Key: key, kind: kindInt, i: int64(v)} }

// Event is one trace record: a name, an optional timestamp, and ordered
// fields. It renders as a single JSON line.
type Event struct {
	Time   time.Time
	Name   string
	Fields []Field
}

// appendJSON renders e as one JSON object (no trailing newline) onto b.
func (e *Event) appendJSON(b []byte) []byte {
	b = append(b, '{')
	if !e.Time.IsZero() {
		b = append(b, `"t":`...)
		b = strconv.AppendQuote(b, e.Time.UTC().Format(time.RFC3339Nano))
		b = append(b, ',')
	}
	b = append(b, `"ev":`...)
	b = strconv.AppendQuote(b, e.Name)
	for _, f := range e.Fields {
		b = append(b, ',')
		b = strconv.AppendQuote(b, f.Key)
		b = append(b, ':')
		switch f.kind {
		case kindString:
			b = strconv.AppendQuote(b, f.str)
		case kindInt:
			b = strconv.AppendInt(b, f.i, 10)
		case kindFloat:
			if math.IsNaN(f.num) || math.IsInf(f.num, 0) {
				b = append(b, `null`...)
			} else {
				b = strconv.AppendFloat(b, f.num, 'g', -1, 64)
			}
		}
	}
	return append(b, '}')
}

// Sink receives rendered events. Implementations must be safe for
// concurrent Emit calls unless documented otherwise.
type Sink interface {
	Emit(e Event)
	Close() error
}

// WriterSink renders events as JSONL onto an io.Writer under a mutex,
// reusing one scratch buffer across events.
type WriterSink struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
	err error // first write failure, surfaced by Close
}

// NewWriterSink returns a sink writing JSON lines to w.
func NewWriterSink(w io.Writer) *WriterSink { return &WriterSink{w: w} }

// Emit renders and writes one event line. Emit has no error return (a
// trace span should never fail its caller), so the first write failure
// is recorded and surfaced by Close — a silently truncated trace must
// not pass for a complete one.
func (s *WriterSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = e.appendJSON(s.buf[:0])
	s.buf = append(s.buf, '\n')
	if _, err := s.w.Write(s.buf); err != nil && s.err == nil {
		s.err = err
	}
}

// Close flushes nothing (the writer's owner closes it) but reports the
// first Emit write failure, so owners learn about a truncated stream.
func (s *WriterSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Trace is a run's event stream. The nil Trace is valid and inert — every
// method on it is a no-op — so call sites thread a *Trace unconditionally
// and pay one nil check when tracing is off. Guard any field construction
// with Enabled() to keep disabled paths allocation-free.
type Trace struct {
	sink Sink
	now  func() time.Time
}

// NewTrace returns a trace emitting timestamped events into sink.
func NewTrace(sink Sink) *Trace { return &Trace{sink: sink, now: time.Now} }

// NewTraceNoTime returns a trace that emits events without timestamps —
// its output is byte-deterministic without canonicalization (modulo span
// durations and worker attribution). Used by determinism tests.
func NewTraceNoTime(sink Sink) *Trace {
	return &Trace{sink: sink, now: func() time.Time { return time.Time{} }}
}

// Enabled reports whether events emitted on t go anywhere.
func (t *Trace) Enabled() bool { return t != nil && t.sink != nil }

// Emit records one event. No-op on a nil or sink-less trace, but prefer
// guarding with Enabled() at call sites: the variadic slice is otherwise
// still materialized.
func (t *Trace) Emit(name string, fields ...Field) {
	if !t.Enabled() {
		return
	}
	t.sink.Emit(Event{Time: t.now(), Name: name, Fields: fields})
}

// slotBuffer is the single-goroutine event buffer behind one Fork slot.
type slotBuffer struct {
	events []Event
}

func (s *slotBuffer) Emit(e Event) { s.events = append(s.events, e) }
func (s *slotBuffer) Close() error { return nil }

// Fork opens a deterministic parallel region with n ordered slots: each
// concurrent task writes its events into its own slot (Slot(i)), and Join
// flushes the slots to the parent in ascending index order. The event
// stream therefore does not depend on scheduling or worker count — the
// same order-replay trick the numeric reductions use. A nil receiver
// returns a nil Fork whose methods are no-ops.
func (t *Trace) Fork(n int) *Fork {
	if !t.Enabled() {
		return nil
	}
	return &Fork{parent: t, slots: make([]slotBuffer, n)}
}

// Fork is an in-flight parallel trace region; see Trace.Fork.
type Fork struct {
	parent *Trace
	slots  []slotBuffer
}

// Slot returns the trace for task i. Each slot must be used by one
// goroutine at a time (the task that owns index i).
func (f *Fork) Slot(i int) *Trace {
	if f == nil {
		return nil
	}
	return &Trace{sink: &f.slots[i], now: f.parent.now}
}

// Join flushes every slot's buffered events to the parent trace in slot
// order. Call after the parallel region completes.
func (f *Fork) Join() {
	if f == nil {
		return
	}
	for i := range f.slots {
		for _, e := range f.slots[i].events {
			f.parent.sink.Emit(e)
		}
		f.slots[i].events = nil
	}
}

// Span measures one scheduled task: wall time plus worker attribution.
// Obtain with StartSpan, finish with End. The zero Span is inert.
type Span struct {
	tr     *Trace
	scope  string
	task   int
	worker int
	start  time.Time
}

// StartSpan starts timing task `task` of the named scope, executed by
// `worker`. On a disabled trace it returns an inert span and reads no
// clock.
func (t *Trace) StartSpan(scope string, task, worker int) Span {
	if !t.Enabled() {
		return Span{}
	}
	return Span{tr: t, scope: scope, task: task, worker: worker, start: time.Now()}
}

// End emits the span event: {"ev":"span","scope":...,"task":...,
// "worker":...,"ms":...}. "ms" and "worker" are volatile keys stripped by
// CanonicalizeJSONL.
func (s Span) End() {
	if s.tr == nil {
		return
	}
	s.tr.Emit("span",
		String("scope", s.scope),
		Int("task", s.task),
		Int("worker", s.worker),
		Float("ms", float64(time.Since(s.start))/float64(time.Millisecond)))
}

// volatileKeys are the wall-clock and scheduling artifacts a trace may
// carry; everything else must be deterministic for a fixed seed. The
// cluster-trace additions: "job" (run IDs embed timestamps), "addr"
// (peer addresses), and "lease" (lease IDs count grants, whose order is
// an interleaving artifact).
var volatileKeys = []string{"t", "ms", "worker", "job", "addr", "lease"}

// volatileEvents are event types whose very *occurrence* is a scheduling
// artifact — lease grants, expiry reassignments, live HTTP request logs.
// Stripping keys cannot make such lines deterministic (a run with a
// straggler has more of them), so CanonicalizeJSONL drops the whole
// line. The raw trace keeps them: they are what `nnwc runs timeline`
// renders.
var volatileEvents = map[string]bool{
	"dist_lease":    true,
	"dist_reassign": true,
	"http_request":  true,
}

// CanonicalizeJSONL strips the volatile keys ("t" timestamps, "ms"
// durations, "worker" attribution, "job"/"addr"/"lease" cluster-trace
// identifiers) from every line of a JSONL trace, drops whole lines whose
// event type is itself scheduling-dependent (volatileEvents), and
// re-renders each remaining object with sorted keys. Two traces of the
// same seeded run canonicalize to identical bytes, at any worker count
// and under any lease interleaving.
func CanonicalizeJSONL(data []byte) ([]byte, error) {
	var out bytes.Buffer
	for lineNo, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.UseNumber() // keep the original number spelling
		obj := map[string]any{}
		if err := dec.Decode(&obj); err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo+1, err)
		}
		if ev, ok := obj["ev"].(string); ok && volatileEvents[ev] {
			continue
		}
		for _, k := range volatileKeys {
			delete(obj, k)
		}
		keys := make([]string, 0, len(obj))
		for k := range obj {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				out.WriteByte(',')
			}
			kb, _ := json.Marshal(k)
			vb, err := json.Marshal(obj[k])
			if err != nil {
				return nil, fmt.Errorf("obs: line %d key %q: %w", lineNo+1, k, err)
			}
			out.Write(kb)
			out.WriteByte(':')
			out.Write(vb)
		}
		out.WriteString("}\n")
	}
	return out.Bytes(), nil
}
