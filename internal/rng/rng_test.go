package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverge at draw %d: %d vs %d", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 100 draws", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	// The xoshiro state must not be all zero; a few draws should not all
	// be identical.
	v0 := r.Uint64()
	allSame := true
	for i := 0; i < 10; i++ {
		if r.Uint64() != v0 {
			allSame = false
		}
	}
	if allSame {
		t.Fatal("seed 0 produced a constant stream")
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(7)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %.4f, want ~0.5", mean)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(-5, 11)
		if v < -5 || v >= 11 {
			t.Fatalf("Uniform(-5,11) returned %v", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(4)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) returned %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d of 7 values in 10000 draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		p := New(seed).Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(9)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance %.4f, want ~1", variance)
	}
}

func TestNormMeanStd(t *testing.T) {
	r := New(10)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.NormMeanStd(42, 3)
	}
	if mean := sum / n; math.Abs(mean-42) > 0.1 {
		t.Fatalf("NormMeanStd mean %.3f, want ~42", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(4)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.25) > 0.005 {
		t.Fatalf("Exp(4) mean %.4f, want ~0.25", mean)
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestPoissonMeanSmall(t *testing.T) {
	r := New(12)
	const n = 100000
	var sum int
	for i := 0; i < n; i++ {
		sum += r.Poisson(3.5)
	}
	if mean := float64(sum) / n; math.Abs(mean-3.5) > 0.05 {
		t.Fatalf("Poisson(3.5) mean %.3f", mean)
	}
}

func TestPoissonMeanLarge(t *testing.T) {
	r := New(13)
	const n = 50000
	var sum int
	for i := 0; i < n; i++ {
		sum += r.Poisson(100)
	}
	if mean := float64(sum) / n; math.Abs(mean-100) > 0.5 {
		t.Fatalf("Poisson(100) mean %.2f", mean)
	}
}

func TestPoissonNonPositiveMean(t *testing.T) {
	r := New(14)
	if v := r.Poisson(0); v != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", v)
	}
	if v := r.Poisson(-1); v != 0 {
		t.Fatalf("Poisson(-1) = %d, want 0", v)
	}
}

func TestLogNormalMean(t *testing.T) {
	r := New(15)
	// E[lognormal(mu, sigma)] = exp(mu + sigma^2/2).
	mu, sigma := 0.5, 0.4
	want := math.Exp(mu + sigma*sigma/2)
	const n = 300000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.LogNormal(mu, sigma)
	}
	if mean := sum / n; math.Abs(mean-want)/want > 0.01 {
		t.Fatalf("LogNormal mean %.4f, want ~%.4f", mean, want)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(21)
	child := parent.Split()
	// Parent and child streams should not be identical.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and split child matched on %d of 100 draws", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	c1 := New(33).Split()
	c2 := New(33).Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(5)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements: sum %d", sum)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Norm()
	}
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Exp(1)
	}
}
