// Package rng provides deterministic, seedable pseudo-random number
// generation and the random variates the simulator and trainers need
// (uniform, normal, exponential, Poisson).
//
// Every stochastic component in this repository draws from an explicit
// *rng.Source so that experiments are reproducible end to end from a single
// seed. The generator is xoshiro256**, seeded through splitmix64, following
// Blackman & Vigna. Only the Go standard library is used.
package rng

import "math"

// Source is a deterministic pseudo-random number generator. It is not safe
// for concurrent use; create one Source per goroutine (see Split).
type Source struct {
	s        [4]uint64
	spare    float64 // cached Box–Muller variate
	hasSpare bool
}

// New returns a Source seeded with seed. Two Sources created with the same
// seed produce identical streams.
func New(seed uint64) *Source {
	r := &Source{}
	// splitmix64 seeding avoids the all-zero state and decorrelates
	// similar seeds.
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent Source from r. The derived stream is
// decorrelated from the parent's subsequent output, so a parent can hand
// child streams to subcomponents while continuing to draw itself.
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xa3ec647659359acd)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded sampling, simplified: the bias
	// for n << 2^64 is negligible for simulation purposes, but we still
	// reject to keep the distribution exact.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap, with the
// Fisher–Yates algorithm.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Norm returns a standard normal variate (mean 0, stddev 1) using the
// Box–Muller transform. The spare value is cached, so consecutive calls
// alternate between the sine and cosine branches.
func (r *Source) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v float64
	for {
		u = r.Float64()
		if u > 0 {
			break
		}
	}
	v = r.Float64()
	mag := math.Sqrt(-2 * math.Log(u))
	r.spare = mag * math.Sin(2*math.Pi*v)
	r.hasSpare = true
	return mag * math.Cos(2*math.Pi*v)
}

// NormMeanStd returns a normal variate with the given mean and standard
// deviation.
func (r *Source) NormMeanStd(mean, std float64) float64 {
	return mean + std*r.Norm()
}

// Exp returns an exponential variate with the given rate (mean 1/rate).
// It panics if rate <= 0.
func (r *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp called with rate <= 0")
	}
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u) / rate
		}
	}
}

// Poisson returns a Poisson variate with the given mean. For small means it
// uses Knuth's multiplication method; for large means a normal
// approximation with continuity correction, which is accurate enough for
// workload generation.
func (r *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	v := r.NormMeanStd(mean, math.Sqrt(mean)) + 0.5
	if v < 0 {
		return 0
	}
	return int(v)
}

// LogNormal returns a log-normal variate where the underlying normal has
// the given mu and sigma.
func (r *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Norm())
}
