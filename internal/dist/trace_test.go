package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"nnwc/internal/obs"
)

// tracingToyRunner emits a deterministic per-task event through the
// context trace, the way the real job runners do.
func tracingToyRunner(ctx context.Context, env Env, spec Spec, index int) (json.RawMessage, error) {
	if tr := obs.TraceFromContext(ctx); tr.Enabled() {
		tr.Emit("toy_task", obs.Int("index", index))
	}
	return toyRunner(ctx, env, spec, index)
}

// runClusterJob completes one toy job with `workers` in-process workers
// and returns the raw bytes of the merged cluster trace.
func runClusterJob(t *testing.T, workers, n int) []byte {
	t.Helper()
	tracePath := filepath.Join(t.TempDir(), ClusterTraceFileName)
	c := newTestCoordinator(t, CoordinatorConfig{
		Spec:             toySpec(n),
		LeaseSize:        2,
		PollInterval:     5 * time.Millisecond,
		LingerAfterDone:  3 * time.Second,
		ClusterTraceFile: tracePath,
	})
	runners := map[string]Runner{"toy": tracingToyRunner}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w, err := NewWorker(WorkerConfig{
				Coordinator: c.Addr(),
				ID:          fmt.Sprintf("trace-w%d", i),
				CacheDir:    t.TempDir(),
				Runners:     runners,
				BackoffMin:  5 * time.Millisecond,
				BackoffMax:  50 * time.Millisecond,
			})
			if err == nil {
				err = w.Run(context.Background())
			}
			errs[i] = err
		}(i)
	}
	if _, err := c.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("cluster trace not written: %v", err)
	}
	return raw
}

func TestClusterTraceDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 9
	var canon [][]byte
	for _, workers := range []int{1, 2, 8} {
		raw := runClusterJob(t, workers, n)
		// The raw trace keeps the wall-clock narrative the timeline needs.
		for _, want := range []string{`"ev":"cluster_job"`, `"ev":"dist_lease"`, `"ev":"dist_task"`, `"ev":"cluster_done"`} {
			if !strings.Contains(string(raw), want) {
				t.Fatalf("%d-worker raw trace missing %s:\n%s", workers, want, raw)
			}
		}
		c, err := obs.CanonicalizeJSONL(raw)
		if err != nil {
			t.Fatal(err)
		}
		canon = append(canon, c)
	}
	if !bytes.Equal(canon[0], canon[1]) || !bytes.Equal(canon[1], canon[2]) {
		t.Fatalf("canonical cluster traces differ across worker counts:\n1w:\n%s\n2w:\n%s\n8w:\n%s", canon[0], canon[1], canon[2])
	}
	// Task blocks appear in index order: runner event then the closing
	// dist_task span, per index.
	lines := strings.Split(strings.TrimSpace(string(canon[0])), "\n")
	var taskLines []string
	for _, l := range lines {
		if strings.Contains(l, "toy_task") {
			taskLines = append(taskLines, l)
		}
	}
	if len(taskLines) != n {
		t.Fatalf("canonical trace has %d toy_task lines, want %d:\n%s", len(taskLines), n, canon[0])
	}
	for i, l := range taskLines {
		if want := fmt.Sprintf(`{"ev":"toy_task","index":%d}`, i); l != want {
			t.Fatalf("task line %d = %s, want %s", i, l, want)
		}
	}
}

func TestClusterTraceSurvivesReassignment(t *testing.T) {
	// Reference: a clean single-worker run of the same spec.
	want, err := obs.CanonicalizeJSONL(runClusterJob(t, 1, 3))
	if err != nil {
		t.Fatal(err)
	}

	tracePath := filepath.Join(t.TempDir(), ClusterTraceFileName)
	c := newTestCoordinator(t, CoordinatorConfig{
		Spec:             toySpec(3),
		LeaseSize:        3,
		LeaseTTL:         50 * time.Millisecond,
		PollInterval:     5 * time.Millisecond,
		LingerAfterDone:  3 * time.Second,
		ClusterTraceFile: tracePath,
	})
	client := &http.Client{Timeout: 5 * time.Second}
	// A worker takes the whole job and dies without delivering anything.
	var dead leaseReply
	postJSONT(t, client, "http://"+c.Addr()+"/dist/lease", leaseRequest{Worker: "doomed"}, &dead)
	if dead.LeaseID == 0 {
		t.Fatal("no lease granted")
	}
	time.Sleep(80 * time.Millisecond)

	w, err := NewWorker(WorkerConfig{
		Coordinator: c.Addr(),
		ID:          "healthy",
		CacheDir:    t.TempDir(),
		Runners:     map[string]Runner{"toy": tracingToyRunner},
		BackoffMin:  5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w.Run(context.Background()) }()
	if _, err := c.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("worker: %v", err)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"ev":"dist_reassign"`) {
		t.Fatalf("raw trace records no reassignment:\n%s", raw)
	}
	got, err := obs.CanonicalizeJSONL(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("canonical trace after reassignment differs:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestClusterTraceNotWrittenOnCancel(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), ClusterTraceFileName)
	c := newTestCoordinator(t, CoordinatorConfig{
		Spec:             toySpec(4),
		ClusterTraceFile: tracePath,
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Wait(ctx); err == nil {
		t.Fatal("Wait on a canceled context should error")
	}
	if _, err := os.Stat(tracePath); !os.IsNotExist(err) {
		t.Fatalf("canceled run wrote a cluster trace (stat err: %v)", err)
	}
}

func TestClusterTraceResumesFromJournal(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, StateFileName)
	tracePath := filepath.Join(dir, ClusterTraceFileName)
	spec := toySpec(4)

	// Phase 1: two tasks land (with worker-shipped events), then the
	// coordinator dies before completion. No trace yet.
	c1 := newTestCoordinator(t, CoordinatorConfig{Spec: spec, LeaseSize: 4, StateFile: state, ClusterTraceFile: tracePath})
	client := &http.Client{Timeout: 5 * time.Second}
	base := "http://" + c1.Addr()
	var lr leaseReply
	postJSONT(t, client, base+"/dist/lease", leaseRequest{Worker: "w1"}, &lr)
	for i := 0; i < 2; i++ {
		payload, _ := toyRunner(context.Background(), nil, spec, i)
		events := fmt.Sprintf("{\"ev\":\"toy_task\",\"index\":%d}\n", i)
		var rr resultReply
		postJSONT(t, client, base+"/dist/result", resultRequest{LeaseID: lr.LeaseID, Worker: "w1", Index: i, Payload: payload, Events: events}, &rr)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c1.Wait(ctx) // tears down; job incomplete, so no trace is written
	if _, err := os.Stat(tracePath); !os.IsNotExist(err) {
		t.Fatal("incomplete run wrote a cluster trace")
	}

	// Phase 2: a restarted coordinator resumes the journal and a real
	// worker finishes the rest; the merged trace must carry all 4 blocks.
	c2 := newTestCoordinator(t, CoordinatorConfig{Spec: spec, LeaseSize: 4, StateFile: state, ClusterTraceFile: tracePath, LingerAfterDone: 3 * time.Second, PollInterval: 5 * time.Millisecond})
	w, err := NewWorker(WorkerConfig{
		Coordinator: c2.Addr(),
		ID:          "resume-w",
		CacheDir:    t.TempDir(),
		Runners:     map[string]Runner{"toy": tracingToyRunner},
		BackoffMin:  5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w.Run(context.Background()) }()
	if _, err := c2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("worker: %v", err)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		// Journaled blocks have no timestamp; live ones do. Match the tail.
		block := fmt.Sprintf(`"ev":"toy_task","index":%d}`, i)
		if !strings.Contains(string(raw), block) {
			t.Fatalf("merged trace missing task %d's journaled/shipped events:\n%s", i, raw)
		}
	}
}

func TestCoordinatorMetricsFederation(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorConfig{
		Spec:            toySpec(6),
		LeaseSize:       1, // several lease renewals → several snapshot pushes
		PollInterval:    5 * time.Millisecond,
		LingerAfterDone: 3 * time.Second,
	})
	w, err := NewWorker(WorkerConfig{
		Coordinator: c.Addr(),
		ID:          "fed-w1",
		CacheDir:    t.TempDir(),
		Runners:     map[string]Runner{"toy": toyRunner},
		BackoffMin:  5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w.Run(context.Background()) }()
	if _, err := c.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("worker: %v", err)
	}

	// The worker's final lease poll (the one answered Done) carried its
	// cumulative task histogram; /metrics must expose both the per-worker
	// cell and the merged cluster series.
	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	if !strings.Contains(body, `nnwc_dist_worker_task_ms_hist_count{worker="fed-w1"} 6`) {
		t.Fatalf("per-worker federated histogram missing from /metrics:\n%s", body)
	}
	if !strings.Contains(body, "nnwc_cluster_task_ms_hist_bucket") {
		t.Fatalf("merged cluster histogram missing from /metrics:\n%s", body)
	}
}
