package dist

import "nnwc/internal/obs/metrics"

// Dist counters live on the shared obs registry so `-pprof-addr`'s
// /metrics endpoint (and anything else scraping metrics.Default())
// exposes them alongside the sched/train/serve series.
var (
	leasesTotal = metrics.Default().Counter("nnwc_dist_leases_total",
		"work leases granted by the coordinator")
	reassignedTotal = metrics.Default().Counter("nnwc_dist_reassigned_tasks_total",
		"tasks reclaimed from expired leases and requeued")
	duplicatesTotal = metrics.Default().Counter("nnwc_dist_duplicate_results_total",
		"duplicate result deliveries dropped by the idempotent index-addressed store")
	resumedTotal = metrics.Default().Counter("nnwc_dist_resumed_tasks_total",
		"tasks skipped at coordinator startup because the state journal already held their results")
	resultsTotal = metrics.Default().CounterVec("nnwc_dist_results_total",
		"results accepted by the coordinator, by reporting worker", "worker")
	taskMillis = metrics.Default().SummaryVec("nnwc_dist_task_ms",
		"worker-reported per-task wall time in milliseconds", 512, []string{"worker"}, 0.5, 0.99)
	workerTasksTotal = metrics.Default().Counter("nnwc_dist_worker_tasks_total",
		"tasks executed by this process's dist workers")
)

// Metric roles a worker's lease-renewal snapshot push may carry. The
// names are the federation contract between Worker.metricSnapshots and
// absorbWorkerMetrics; unknown roles are ignored, so mixed-version
// clusters degrade to partial federation instead of erroring.
const (
	MetricTaskMS     = "task_ms"
	MetricArtifactMS = "artifact_ms"
)

// Federated series: per-worker histograms replaced wholesale by each
// worker's cumulative snapshot push, plus render-time cluster-wide
// merges. Histograms (not the ring-window summaries above) because
// bucket counts add across processes — see metrics.Histogram.
var (
	fedTaskMS = metrics.Default().HistogramVec("nnwc_dist_worker_task_ms_hist",
		"worker-pushed task wall-time histograms (ms), federated by the coordinator",
		metrics.DefMillisBuckets, "worker")
	fedArtifactMS = metrics.Default().HistogramVec("nnwc_dist_worker_artifact_ms_hist",
		"worker-pushed artifact fetch wall-time histograms (ms), federated by the coordinator",
		metrics.DefMillisBuckets, "worker")
	_ = metrics.Default().HistogramFunc("nnwc_cluster_task_ms_hist",
		"cluster-wide task wall-time histogram (ms): every worker's pushed snapshot, merged",
		func() metrics.HistogramSnapshot { return fedTaskMS.Merged() })
	_ = metrics.Default().HistogramFunc("nnwc_cluster_artifact_ms_hist",
		"cluster-wide artifact fetch wall-time histogram (ms): every worker's pushed snapshot, merged",
		func() metrics.HistogramSnapshot { return fedArtifactMS.Merged() })
)

// absorbWorkerMetrics folds one worker's snapshot push into the
// federated series. A bounds mismatch (version skew across the cluster)
// drops that series rather than failing the lease — federation is
// best-effort observability, never liveness.
func absorbWorkerMetrics(worker string, snaps map[string]metrics.HistogramSnapshot) {
	if worker == "" || len(snaps) == 0 {
		return
	}
	for role, snap := range snaps { // cells are keyed, not ordered: iteration order is irrelevant
		switch role {
		case MetricTaskMS:
			_ = fedTaskMS.SetSnapshot(snap, worker)
		case MetricArtifactMS:
			_ = fedArtifactMS.SetSnapshot(snap, worker)
		}
	}
}
